#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regression.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--series NAME ...]
      [--threshold 0.15]
  tools/bench_compare.py --selftest

Semantics:
  * A series is a benchmark name as emitted by google-benchmark
    (e.g. `BM_PwlMinEnvelope/64`).
  * If a file contains aggregate rows (``--benchmark_repetitions``), the
    *median* aggregate is used; otherwise the median of the per-iteration
    rows with that name (a single plain run is its own median). Medians
    keep the comparison stable under scheduler noise.
  * With ``--series``, exactly those series are compared and each must be
    present in both files. Without it, the intersection of series is
    compared and an empty intersection is an error.
  * The check fails (exit 1) when ``current > baseline * (1 + threshold)``
    for any compared series. Default threshold: 0.15 (15%), per the
    bench-smoke contract in DESIGN.md §8.

Exit codes: 0 ok, 1 regression/missing series, 2 usage or bad input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
from pathlib import Path


def load_series(path: Path) -> dict[str, float]:
    """Map series name -> representative real_time (ns-agnostic; the unit
    cancels in the ratio as long as both files use the same one)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    rows = doc.get("benchmarks")
    if not isinstance(rows, list):
        raise SystemExit(f"bench_compare: {path} has no 'benchmarks' array "
                         "(is it google-benchmark JSON?)")
    medians: dict[str, float] = {}
    iterations: dict[str, list[float]] = {}
    for row in rows:
        name = row.get("name")
        t = row.get("real_time")
        if not isinstance(name, str) or not isinstance(t, (int, float)):
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[row.get("run_name", name)] = float(t)
        else:
            iterations.setdefault(name, []).append(float(t))
    out = {name: statistics.median(ts) for name, ts in iterations.items()}
    out.update(medians)  # Aggregate medians win over raw repetition rows.
    return out


def compare(baseline: dict[str, float], current: dict[str, float],
            series: list[str], threshold: float,
            out=sys.stdout) -> list[str]:
    """Return a list of failure messages (empty == pass) and print a report."""
    if series:
        names = series
    else:
        names = sorted(set(baseline) & set(current))
        if not names:
            return ["no common series between baseline and current"]
    failures: list[str] = []
    width = max(len(n) for n in names)
    print(f"{'series':<{width}}  {'baseline':>12}  {'current':>12}  ratio",
          file=out)
    for name in names:
        if name not in baseline:
            failures.append(f"series {name!r} missing from baseline")
            continue
        if name not in current:
            failures.append(f"series {name!r} missing from current run")
            continue
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if cur > base * (1.0 + threshold):
            flag = f"  REGRESSION (> +{threshold:.0%})"
            failures.append(
                f"{name}: {base:.1f} -> {cur:.1f} ({ratio:.2f}x) exceeds "
                f"+{threshold:.0%} budget")
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  "
              f"{ratio:5.2f}x{flag}", file=out)
    return failures


# --- selftest -------------------------------------------------------------

def _doc(rows):
    return {"context": {}, "benchmarks": rows}


def _iter_row(name, t):
    return {"name": name, "run_type": "iteration", "real_time": t,
            "time_unit": "ns"}


def _median_row(name, t):
    return {"name": f"{name}_median", "run_name": name,
            "run_type": "aggregate", "aggregate_name": "median",
            "real_time": t, "time_unit": "ns"}


def selftest() -> int:
    import io

    def run(base_rows, cur_rows, series, threshold=0.15):
        with tempfile.TemporaryDirectory() as d:
            b, c = Path(d, "b.json"), Path(d, "c.json")
            b.write_text(json.dumps(_doc(base_rows)))
            c.write_text(json.dumps(_doc(cur_rows)))
            return compare(load_series(b), load_series(c), series,
                           threshold, out=io.StringIO())

    checks = []

    # 1. A >15% regression on a named series fails.
    fails = run([_iter_row("BM_A", 100.0)], [_iter_row("BM_A", 120.0)],
                ["BM_A"])
    checks.append(("regression detected", len(fails) == 1
                   and "BM_A" in fails[0]))

    # 2. Within-threshold drift passes.
    fails = run([_iter_row("BM_A", 100.0)], [_iter_row("BM_A", 114.0)],
                ["BM_A"])
    checks.append(("within threshold passes", fails == []))

    # 3. An improvement passes.
    fails = run([_iter_row("BM_A", 100.0)], [_iter_row("BM_A", 50.0)],
                ["BM_A"])
    checks.append(("improvement passes", fails == []))

    # 4. A named series missing from the current run fails.
    fails = run([_iter_row("BM_A", 100.0)], [_iter_row("BM_B", 100.0)],
                ["BM_A"])
    checks.append(("missing series fails", len(fails) == 1
                   and "missing" in fails[0]))

    # 5. Median aggregates shadow raw repetition rows: the median (102)
    #    is inside budget even though one noisy repetition (200) is not.
    fails = run([_iter_row("BM_A", 100.0)],
                [_iter_row("BM_A", 200.0), _iter_row("BM_A", 101.0),
                 _median_row("BM_A", 102.0)],
                ["BM_A"])
    checks.append(("median aggregate wins", fails == []))

    # 6. Without --series, the common subset is compared.
    fails = run([_iter_row("BM_A", 100.0), _iter_row("BM_B", 100.0)],
                [_iter_row("BM_B", 300.0), _iter_row("BM_C", 10.0)], [])
    checks.append(("intersection compared", len(fails) == 1
                   and "BM_B" in fails[0]))

    ok = True
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        ok &= passed
    print("bench_compare selftest:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", type=Path)
    parser.add_argument("current", nargs="?", type=Path)
    parser.add_argument("--series", action="append", default=[],
                        help="series name to compare (repeatable; "
                             "comma-separated lists accepted)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in behavioural checks and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current JSON files are required")

    series = [s for chunk in args.series for s in chunk.split(",") if s]
    failures = compare(load_series(args.baseline), load_series(args.current),
                       series, args.threshold)
    for msg in failures:
        print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
