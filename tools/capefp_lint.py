#!/usr/bin/env python3
"""capefp domain lint: repo-specific static rules the compiler can't check.

Runs as a ctest (label `lint`) and in tools/run_checks.sh. Rules:

  mutex-outside-util   std::mutex / std::lock_guard / std::unique_lock /
                       std::scoped_lock / std::shared_mutex /
                       std::recursive_mutex / std::condition_variable in
                       src/ outside src/util. Locks must go through
                       util::Mutex / util::MutexLock
                       (src/util/mutex.h) so Clang Thread Safety Analysis
                       sees every acquisition.
  dcheck-side-effect   CAPEFP_DCHECK* whose argument contains ++/--/an
                       assignment. DCHECKs compile to nothing under
                       NDEBUG, so a side effect inside one changes
                       release-build behavior.
  io-in-src            printf/fprintf/puts/fputs/putchar or
                       std::cout/std::cerr/std::clog in src/. Library code
                       reports through util::Status, obs, or JsonWriter —
                       stdout/stderr belong to tools/ and bench/.
                       (snprintf-style buffer formatting is fine.)
  include-guard        Header guards in src/ must be CAPEFP_<PATH>_H_
                       derived from the path (src/util/mutex.h ->
                       CAPEFP_UTIL_MUTEX_H_).
  own-header-first     foo.cc's first #include must be its own header
                       "src/<dir>/foo.h" (catches headers that only
                       compile because of include-order luck).
  no-relative-include  Project includes in src/ are always repo-rooted
                       ("src/..."), never "../" or "./".
  alloc-in-hot-loop    Allocating PWL forms (PwlFunction::Sum/SumMany/Min,
                       ComposePathWithEdge, ExpandPath[Reverse],
                       Edge[Reverse]TravelTimeFunction, MergedGrid,
                       .Shifted(, .Restricted() inside the core search
                       loops (profile_search.cc, reverse_profile_search.cc,
                       td_astar.cc, lower_border.cc). These run per edge
                       expansion; use the *Into variants with the
                       per-query arena scratch so a warm search makes zero
                       heap allocations (DESIGN.md §8).

Suppression: append `// capefp-lint: allow(<rule-id>)` to the offending
line. Every allow is a documented exception — keep a reason next to it.

Usage:
  capefp_lint.py --root /path/to/repo      # lint the tree, exit 1 on findings
  capefp_lint.py --selftest                # prove each rule fires (ctest)
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"//\s*capefp-lint:\s*allow\(([a-z0-9-]+)\)")

MUTEX_TOKEN_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)\b"
)

IO_TOKEN_RE = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b|"
    r"\b(?:std::)?(?:printf|fprintf|vfprintf|vprintf|puts|fputs|putchar|"
    r"fputc)\s*\("
)

DCHECK_RE = re.compile(r"\bCAPEFP_DCHECK(?:_OK|_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")

# Files containing the per-expansion search loops, where the allocating PWL
# forms are forbidden (the *Into variants recycle arena storage instead).
HOT_LOOP_FILES = {
    "src/core/profile_search.cc",
    "src/core/reverse_profile_search.cc",
    "src/core/td_astar.cc",
    "src/core/lower_border.cc",
    # The hierarchical index's corridor/overlay search loops (two-phase
    # query mode) share the flat searches' zero-allocation discipline.
    "src/core/hierarchical.cc",
}

# Allocating forms. The *Into variants never match: each name must be
# followed directly by "(" (SumInto, ComposePathWithEdgeInto etc. continue
# with "I" and fall through).
HOT_ALLOC_RE = re.compile(
    r"\bPwlFunction::(?:Sum|SumMany|Min)\s*\(|"
    r"\b(?:ComposePathWithEdge|ExpandPathReverse|ExpandPath|"
    r"EdgeTravelTimeFunction|EdgeReverseTravelTimeFunction|MergedGrid)"
    r"\s*\(|"
    r"\.(?:Shifted|Restricted)\s*\("
)

# ++/-- or an assignment that is not ==, !=, <=, >= (compound assignments
# included). Lookbehind keeps comparison operators out.
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|[+\-*/%&|^]=|<<=|>>=|(?<![=!<>+\-*/%&|^])=(?!=)"
)


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> str:
    """Remove comments and string/char literals, preserving line structure.

    Rule regexes then match only real code: a comment that *mentions*
    std::mutex, or a diagnostic string containing "printf", never trips a
    rule. Escapes inside literals are handled; raw strings are treated as
    plain strings (good enough for this codebase, which has none).
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        else:  # dq / sq literal
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


def allowed_rules_by_line(raw_lines: list[str]) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(idx, set()).add(m.group(1))
    return allows


def balanced_arg(text: str, open_paren: int) -> str:
    """Return the text between the paren at `open_paren` and its match."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j]
    return text[open_paren + 1 :]  # unbalanced (truncated file); best effort


def expected_guard(relpath: Path) -> str:
    # src/util/mutex.h -> CAPEFP_UTIL_MUTEX_H_ ; src/capefp.h ->
    # CAPEFP_CAPEFP_H_ (the leading "src" is dropped).
    parts = list(relpath.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return f"CAPEFP_{stem.upper()}_"


def lint_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    allows = allowed_rules_by_line(raw_lines)
    code = strip_code(raw)
    code_lines = code.splitlines()
    findings: list[Finding] = []

    def report(rule: str, line_no: int, message: str) -> None:
        if rule in allows.get(line_no, set()):
            return
        findings.append(Finding(rule, rel, line_no, message))

    in_src = rel.parts[0] == "src"
    in_util = in_src and len(rel.parts) > 1 and rel.parts[1] == "util"

    for line_no, line in enumerate(code_lines, start=1):
        if in_src and not in_util:
            for m in MUTEX_TOKEN_RE.finditer(line):
                report(
                    "mutex-outside-util",
                    line_no,
                    f"{m.group(0)} outside src/util; use util::Mutex / "
                    "util::MutexLock (src/util/mutex.h) so thread-safety "
                    "analysis sees the lock",
                )
        if in_src:
            for m in IO_TOKEN_RE.finditer(line):
                report(
                    "io-in-src",
                    line_no,
                    f"{m.group(0).strip()} in library code; report through "
                    "util::Status / obs instead (stdout/stderr belong to "
                    "tools/ and bench/)",
                )
        if rel.as_posix() in HOT_LOOP_FILES:
            for m in HOT_ALLOC_RE.finditer(line):
                report(
                    "alloc-in-hot-loop",
                    line_no,
                    f"allocating PWL form {m.group(0).strip('( ')} in a "
                    "search hot loop; use the *Into variant with arena "
                    "scratch (DESIGN.md §8)",
                )

    for m in DCHECK_RE.finditer(code):
        line_no = code.count("\n", 0, m.start()) + 1
        arg = balanced_arg(code, m.end() - 1)
        effect = SIDE_EFFECT_RE.search(arg)
        if effect:
            report(
                "dcheck-side-effect",
                line_no,
                f"'{effect.group(0)}' inside {m.group(0).strip('( ')}: "
                "DCHECKs compile out under NDEBUG, so side effects change "
                "release behavior",
            )

    if in_src and path.suffix in {".h", ".hpp"}:
        guard = expected_guard(rel)
        m = re.search(r"^#ifndef\s+(\S+)", code, re.MULTILINE)
        if m is None:
            report("include-guard", 1, f"missing header guard {guard}")
        elif m.group(1) != guard:
            line_no = code.count("\n", 0, m.start()) + 1
            report(
                "include-guard",
                line_no,
                f"header guard {m.group(1)} should be {guard}",
            )

    # Include rules read the *raw* line (the literal-stripper blanks quoted
    # paths), gated on the stripped line so commented-out includes do not
    # count.
    def includes() -> list[tuple[int, str]]:
        result = []
        for line_no, stripped in enumerate(code_lines, start=1):
            if not re.match(r"\s*#\s*include\b", stripped):
                continue
            m = re.match(r'\s*#\s*include\s+[<"]([^">]+)[">]',
                         raw_lines[line_no - 1])
            if m:
                result.append((line_no, m.group(1)))
        return result

    if in_src:
        included = includes()
        for line_no, target in included:
            if target.startswith(("../", "./")):
                report(
                    "no-relative-include",
                    line_no,
                    f'relative include "{target}"; use a repo-rooted '
                    '"src/..." path',
                )
        if path.suffix in {".cc", ".cpp"}:
            own_header = path.with_suffix(".h")
            if own_header.exists() and included:
                expected = own_header.relative_to(root).as_posix()
                line_no, first = included[0]
                if first != expected:
                    report(
                        "own-header-first",
                        line_no,
                        f'first include is "{first}"; a .cc includes its '
                        f'own header "{expected}" first so the header is '
                        "proven self-contained",
                    )
    return findings


def lint_tree(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    scan_dirs = [root / "src", root / "tests", root / "bench",
                 root / "examples"]
    for base in scan_dirs:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                findings.extend(lint_file(root, path))
    return findings


# --- self-test ------------------------------------------------------------

SELFTEST_CASES = {
    # rule-id -> (relative path, file contents). One seeded violation each.
    "mutex-outside-util": (
        "src/core/bad_mutex.cc",
        '#include "src/core/bad_mutex.h"\n'
        "#include <mutex>\n"
        "std::mutex mu;  // naked\n",
    ),
    "dcheck-side-effect": (
        "src/core/bad_dcheck.cc",
        '#include "src/core/bad_dcheck.h"\n'
        "void f(int n) { CAPEFP_DCHECK(n++ > 0); }\n",
    ),
    "io-in-src": (
        "src/core/bad_io.cc",
        '#include "src/core/bad_io.h"\n'
        '#include <cstdio>\n'
        'void g() { std::printf("hello\\n"); }\n',
    ),
    "include-guard": (
        "src/core/bad_guard.h",
        "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n",
    ),
    "no-relative-include": (
        "src/core/bad_relative.cc",
        '#include "src/core/bad_relative.h"\n'
        '#include "../util/status.h"\n',
    ),
    "own-header-first": (
        "src/core/bad_order.cc",
        "#include <vector>\n"
        '#include "src/core/bad_order.h"\n',
    ),
    "alloc-in-hot-loop": (
        "src/core/profile_search.cc",
        '#include "src/core/profile_search.h"\n'
        "void f() {\n"
        "  auto s = PwlFunction::Sum(a, b);\n"
        "  auto c = ComposePathWithEdge(a, b);\n"
        "  auto d = a.Shifted(1.0);\n"
        "}\n",
    ),
}

# Additional hot-loop seeds beyond the one in SELFTEST_CASES: each file
# must fire alloc-in-hot-loop at least once (guards the HOT_LOOP_FILES set
# itself — a path dropped from the set shows up here as a missing finding).
EXTRA_HOT_LOOP_CASES = [
    (
        "src/core/hierarchical.cc",
        '#include "src/core/hierarchical.h"\n'
        "void corridor() {\n"
        "  const PwlFunction restricted = edge.transit->Restricted(a, b);\n"
        "  auto combined = ComposePathWithEdge(fn, restricted);\n"
        "}\n",
    ),
]

# A hot-loop file using only the Into forms, plus one documented escape:
# must produce no alloc-in-hot-loop findings.
HOT_CLEAN_FILE = (
    "src/core/lower_border.cc",
    '#include "src/core/lower_border.h"\n'
    "void ok() {\n"
    "  PwlFunction::SumInto(a, b, &out);\n"
    "  PwlFunction::LowerEnvelopeInto(a, b, &out);\n"
    "  ComposePathWithEdgeInto(a, b, &out);\n"
    "  a.ShiftedInto(1.0, &out);\n"
    "  a.RestrictedInto(0.0, 1.0, &out);\n"
    "  MergedGridInto(a, b, &grid, arena);\n"
    "  // one-shot setup outside the loop:\n"
    "  auto s = PwlFunction::Sum(a, b);"
    "  // capefp-lint: allow(alloc-in-hot-loop)\n"
    "}\n",
)

CLEAN_FILE = (
    "src/core/clean.cc",
    '#include "src/core/clean.h"\n'
    "#include <vector>\n"
    "// a comment mentioning std::mutex and printf( must not fire\n"
    'static const char* kMsg = "std::cerr in a string literal";\n'
    "void h(int n) { CAPEFP_DCHECK(n == 0); CAPEFP_DCHECK_LE(n, 1); }\n"
    "void i() { char b[8]; (void)b; std::snprintf(b, sizeof(b), \"x\"); }\n"
    "// documented exception:\n"
    "void j();  // fprintf( would fire here but: "
    "// capefp-lint: allow(io-in-src)\n",
)


def selftest() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="capefp_lint_selftest.") as tmp:
        root = Path(tmp)
        for rule, (rel, contents) in SELFTEST_CASES.items():
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(contents)
            # own-header-first / no-relative-include need the own header
            # present to engage the rule.
            header = target.with_suffix(".h")
            if target.suffix == ".cc" and not header.exists():
                guard = expected_guard(header.relative_to(root))
                header.write_text(
                    f"#ifndef {guard}\n#define {guard}\n#endif  // {guard}\n"
                )
        for rel, contents in EXTRA_HOT_LOOP_CASES:
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(contents)
            header = target.with_suffix(".h")
            if not header.exists():
                guard = expected_guard(header.relative_to(root))
                header.write_text(
                    f"#ifndef {guard}\n#define {guard}\n#endif  // {guard}\n"
                )
        clean_rel, clean_contents = CLEAN_FILE
        clean = root / clean_rel
        clean.write_text(clean_contents)
        clean.with_suffix(".h").write_text(
            "#ifndef CAPEFP_CORE_CLEAN_H_\n#define CAPEFP_CORE_CLEAN_H_\n"
            "#endif  // CAPEFP_CORE_CLEAN_H_\n"
        )
        hot_clean_rel, hot_clean_contents = HOT_CLEAN_FILE
        hot_clean = root / hot_clean_rel
        hot_clean.write_text(hot_clean_contents)
        guard = expected_guard(hot_clean.with_suffix(".h").relative_to(root))
        hot_clean.with_suffix(".h").write_text(
            f"#ifndef {guard}\n#define {guard}\n#endif  // {guard}\n"
        )

        findings = lint_tree(root)
        fired = {(f.rule, f.path.as_posix()) for f in findings}
        for rule, (rel, _) in SELFTEST_CASES.items():
            if (rule, rel) not in fired:
                failures.append(f"rule {rule} did NOT fire on seeded {rel}")
        for rel, _ in EXTRA_HOT_LOOP_CASES:
            if ("alloc-in-hot-loop", rel) not in fired:
                failures.append(
                    f"alloc-in-hot-loop did NOT fire on seeded {rel}")
        for f in findings:
            if f.path.as_posix() == clean_rel:
                failures.append(f"false positive on clean file: {f}")
            if f.path.as_posix().endswith("clean.h"):
                failures.append(f"false positive on clean header: {f}")
            if (f.path.as_posix() == hot_clean_rel
                    and f.rule == "alloc-in-hot-loop"):
                failures.append(
                    f"false positive on Into-only hot-loop file: {f}")

        # The seeded tree must fail as a whole (exit-1 contract).
        if not findings:
            failures.append("seeded tree produced no findings at all")

    if failures:
        print("capefp_lint selftest FAILED:")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"capefp_lint selftest ok ({len(SELFTEST_CASES)} rules fire, "
          "clean file passes)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify each rule fires on a seeded violation")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"capefp_lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"capefp_lint: {len(findings)} finding(s)")
        return 1
    print("capefp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
