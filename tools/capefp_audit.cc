// capefp_audit — deep validation and randomized differential self-checks.
//
// Modes:
//   capefp_audit --db=<path>
//       Page-by-page structural audit of an existing CCAM page file
//       (CcamStore::DeepValidate) with a page census on success.
//
//   capefp_audit --selfcheck [--seeds=N] [--dir=D]
//       For each seed: generate a random network, audit it, freeze it into
//       a CCAM file, deep-validate the file (also after edge mutations),
//       then cross-check the three solvers against each other —
//       ProfileSearch (memory and disk-backed), fixed-departure TdAStar,
//       and the discrete-time baseline — and validate every intermediate
//       envelope. Finally, corrupt copies of the file (a raw bit flip and a
//       CRC-consistent semantic edit) and require both to be rejected with
//       a diagnostic. Exit 0 only if every seed passes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/capefp.h"
#include "src/util/check.h"
#include "src/util/crc32.h"
#include "src/util/random.h"

namespace capefp::tools {
namespace {

// Cross-solver agreement tolerance (minutes), matching the unit tests.
constexpr double kTol = 1e-6;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    flags[arg.substr(0, eq)] =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
  }
  return flags;
}

std::string GetFlag(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// --- file manipulation helpers for the corruption drills --------------------

bool CopyFile(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) return false;
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  char buf[4096];
  size_t n;
  bool ok = true;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (std::fwrite(buf, 1, n, out) != n) {
      ok = false;
      break;
    }
  }
  std::fclose(in);
  ok = std::fclose(out) == 0 && ok;
  return ok;
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

// XORs one byte at `offset`; the page CRC is left stale, so the pager must
// reject the page on read.
bool FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  unsigned char b;
  bool ok = std::fseek(f, offset, SEEK_SET) == 0 &&
            std::fread(&b, 1, 1, f) == 1;
  b ^= 0x40;
  ok = ok && std::fseek(f, offset, SEEK_SET) == 0 &&
       std::fwrite(&b, 1, 1, f) == 1;
  return std::fclose(f) == 0 && ok;
}

// Rewrites page `page_id` after mutating payload byte `offset_in_page`,
// recomputing the CRC trailer so only the *structural* validators can catch
// the damage. The CCAM meta page stores num_nodes in its second u32.
bool CorruptMetaNumNodes(const std::string& path, uint32_t page_size) {
  const long stride = static_cast<long>(page_size) + 4;
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  std::vector<char> page(page_size);
  bool ok = std::fseek(f, stride, SEEK_SET) == 0 &&  // Page 1 = CCAM meta.
            std::fread(page.data(), 1, page_size, f) == page_size;
  uint32_t num_nodes;
  std::memcpy(&num_nodes, page.data() + 4, sizeof(num_nodes));
  ++num_nodes;  // Claim one more node than the index holds.
  std::memcpy(page.data() + 4, &num_nodes, sizeof(num_nodes));
  const uint32_t crc = util::Crc32c(page.data(), page_size);
  ok = ok && std::fseek(f, stride, SEEK_SET) == 0 &&
       std::fwrite(page.data(), 1, page_size, f) == page_size &&
       std::fwrite(&crc, 1, sizeof(crc), f) == sizeof(crc);
  return std::fclose(f) == 0 && ok;
}

// Opens + deep-validates `path`; returns true (and prints the diagnostic)
// if either step rejects the file, false if it passes clean.
bool IsRejected(const std::string& path, const char* drill) {
  auto store = storage::CcamStore::Open(path);
  util::Status status =
      store.ok() ? (*store)->DeepValidate() : store.status();
  if (status.ok()) {
    std::fprintf(stderr, "FAIL [%s]: corrupted file passed the audit\n",
                 drill);
    return false;
  }
  std::printf("    rejected [%s]: %s\n", drill, status.ToString().c_str());
  return true;
}

// --- subcommands ------------------------------------------------------------

int CmdDb(const std::string& path) {
  auto store = storage::CcamStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  storage::CcamDeepValidateReport report;
  const util::Status status = (*store)->DeepValidate(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "AUDIT FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK\n", path.c_str());
  std::printf("  pages:   %u total = 1 header + %u meta + %u schema + %u "
              "index + %u data + %u free\n",
              report.total_pages, report.meta_pages, report.schema_pages,
              report.index_pages, report.data_pages, report.free_pages);
  std::printf("  records: %llu nodes, %llu successor edges\n",
              static_cast<unsigned long long>(report.records),
              static_cast<unsigned long long>(report.edges));
  return 0;
}

// One full differential pass over a single generated network.
bool RunSeed(uint64_t seed, const std::string& dir) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const std::string db = dir + "/audit_" + std::to_string(seed) + ".ccam";
  const std::string engine_db = db + ".engine";
  const std::string bad = db + ".bad";
  bool ok = true;

  // 1. Generate and audit the in-memory network.
  gen::RandomNetworkOptions gen_options;
  gen_options.seed = seed;
  gen_options.num_nodes = static_cast<int>(30 + rng.NextBounded(50));
  gen_options.num_patterns = static_cast<int>(2 + rng.NextBounded(3));
  const network::RoadNetwork net = gen::MakeRandomNetwork(gen_options);
  CAPEFP_CHECK_OK(net.ValidateInvariants());

  // 2. Freeze to disk and deep-validate the page file.
  storage::CcamBuildOptions build;
  build.page_size = rng.NextBool(0.5) ? 512 : 1024;
  auto report_or = storage::BuildCcamFile(net, db, build);
  CAPEFP_CHECK(report_or.ok()) << report_or.status().ToString();
  {
    auto store = storage::CcamStore::Open(db);
    CAPEFP_CHECK(store.ok()) << store.status().ToString();
    storage::CcamDeepValidateReport report;
    CAPEFP_CHECK_OK((*store)->DeepValidate(&report));
    CAPEFP_CHECK_EQ(report.records, net.num_nodes());

    // 2b. Mutate through the store (exercises in-place updates, compaction
    // and relocation) and re-audit after every phase.
    const int mutations = static_cast<int>(3 + rng.NextBounded(5));
    std::vector<std::pair<network::NodeId, network::NodeId>> added;
    for (int m = 0; m < mutations; ++m) {
      const auto from = static_cast<network::NodeId>(
          rng.NextBounded(static_cast<uint64_t>(net.num_nodes())));
      const auto to = static_cast<network::NodeId>(
          rng.NextBounded(static_cast<uint64_t>(net.num_nodes())));
      if (to == from) continue;
      network::NeighborEdge edge;
      edge.to = to;
      edge.distance_miles = rng.NextDouble(0.1, 2.0);
      edge.pattern = 0;
      edge.road_class = network::RoadClass::kLocalOutsideCity;
      CAPEFP_CHECK_OK((*store)->InsertEdge(from, edge));
      added.emplace_back(from, to);
    }
    CAPEFP_CHECK_OK((*store)->DeepValidate());
    for (const auto& [from, to] : added) {
      CAPEFP_CHECK_OK((*store)->DeleteEdge(from, to));
    }
    CAPEFP_CHECK_OK((*store)->Flush());
    CAPEFP_CHECK_OK((*store)->DeepValidate());
  }

  // 3. Differential solver checks: memory vs disk profile search, border vs
  // fixed-departure A*, border vs the discrete baseline.
  auto mem_engine = core::FastestPathEngine::Create(&net, {});
  CAPEFP_CHECK(mem_engine.ok()) << mem_engine.status().ToString();
  core::EngineOptions disk_options;
  disk_options.ccam_path = engine_db;
  disk_options.ccam_page_size = build.page_size;
  auto disk_engine = core::FastestPathEngine::Create(&net, disk_options);
  CAPEFP_CHECK(disk_engine.ok()) << disk_engine.status().ToString();
  network::InMemoryAccessor accessor(&net);
  core::ZeroEstimator zero;

  const int num_queries = 3;
  for (int q = 0; q < num_queries && ok; ++q) {
    const auto source = static_cast<network::NodeId>(
        rng.NextBounded(static_cast<uint64_t>(net.num_nodes())));
    const auto target = static_cast<network::NodeId>(
        rng.NextBounded(static_cast<uint64_t>(net.num_nodes())));
    const double lo = rng.NextDouble(0.0, tdf::kMinutesPerDay - 300.0);
    const double hi = lo + rng.NextDouble(30.0, 240.0);
    const core::ProfileQuery query{source, target, lo, hi};

    const core::AllFpResult mem = (*mem_engine)->AllFastestPaths(query);
    const core::AllFpResult disk = (*disk_engine)->AllFastestPaths(query);
    CAPEFP_CHECK_EQ(mem.found, disk.found);
    if (!mem.found) continue;  // Random nets are strongly connected; rare.

    // Disk-backed and in-memory searches must build the same border.
    if (!tdf::PwlFunction::ApproxEqual(*mem.border, *disk.border, kTol)) {
      std::fprintf(stderr,
                   "FAIL seed %llu: disk and memory borders differ "
                   "(%d -> %d, [%.3f, %.3f])\n",
                   static_cast<unsigned long long>(seed), source, target, lo,
                   hi);
      ok = false;
      break;
    }
    // The border is itself a travel-time envelope: audit it.
    CAPEFP_CHECK_OK(mem.border->ValidateInvariants(
        tdf::PwlFunction::Kind::kForwardTravelTime));

    // singleFP must attain the border minimum, and its path must really
    // cost that much when walked edge by edge.
    const core::SingleFpResult single =
        (*mem_engine)->SingleFastestPath(query);
    CAPEFP_CHECK(single.found);
    if (std::fabs(single.best_travel_minutes - mem.border->MinValue()) >
        kTol) {
      std::fprintf(stderr,
                   "FAIL seed %llu: singleFP %.9f != border min %.9f\n",
                   static_cast<unsigned long long>(seed),
                   single.best_travel_minutes, mem.border->MinValue());
      ok = false;
      break;
    }
    const double walked = core::EvaluatePathTravelTime(
        &accessor, single.path, single.best_leave_time);
    if (std::fabs(walked - single.best_travel_minutes) > kTol) {
      std::fprintf(stderr,
                   "FAIL seed %llu: singleFP path walks in %.9f, claimed "
                   "%.9f\n",
                   static_cast<unsigned long long>(seed), walked,
                   single.best_travel_minutes);
      ok = false;
      break;
    }

    // At sampled instants the border must match an independent
    // fixed-departure A*, and the piece owning the instant must be a path
    // that really achieves the border value.
    for (int i = 0; i < 5 && ok; ++i) {
      const double leave = rng.NextDouble(lo, hi);
      const core::TdAStarResult fixed =
          (*mem_engine)->FastestPathAt(source, target, leave);
      CAPEFP_CHECK(fixed.found);
      const double border_value = mem.border->Value(leave);
      if (std::fabs(fixed.travel_time_minutes - border_value) > kTol) {
        std::fprintf(stderr,
                     "FAIL seed %llu: TdAStar %.9f != border %.9f at "
                     "leave %.4f\n",
                     static_cast<unsigned long long>(seed),
                     fixed.travel_time_minutes, border_value, leave);
        ok = false;
        break;
      }
      for (const core::AllFpPiece& piece : mem.pieces) {
        if (leave < piece.leave_lo || leave > piece.leave_hi) continue;
        const double via_piece =
            core::EvaluatePathTravelTime(&accessor, piece.path, leave);
        if (std::fabs(via_piece - border_value) > kTol) {
          std::fprintf(stderr,
                       "FAIL seed %llu: allFP piece walks in %.9f, border "
                       "says %.9f at leave %.4f\n",
                       static_cast<unsigned long long>(seed), via_piece,
                       border_value, leave);
          ok = false;
        }
        break;
      }
    }
    if (!ok) break;

    // The discrete baseline probes exact instants, so its best must equal
    // the border minimum over exactly those instants.
    core::DiscreteQuery dq;
    dq.source = source;
    dq.target = target;
    dq.leave_lo = lo;
    dq.leave_hi = hi;
    dq.step_minutes = (hi - lo) / 7.0;
    const core::DiscreteSingleFpResult discrete =
        core::DiscreteSingleFp(&accessor, &zero, dq);
    CAPEFP_CHECK(discrete.found);
    double expected = mem.border->Value(lo);
    for (double l = lo; l < hi; l += dq.step_minutes) {
      expected = std::min(expected, mem.border->Value(l));
    }
    if (std::fabs(discrete.best_travel_minutes - expected) > kTol) {
      std::fprintf(stderr,
                   "FAIL seed %llu: discrete best %.9f != border-over-"
                   "probes %.9f\n",
                   static_cast<unsigned long long>(seed),
                   discrete.best_travel_minutes, expected);
      ok = false;
      break;
    }
  }

  // One-line observability snapshot for the seed: the disk engine's metric
  // tree ties the differential queries' search work to physical I/O.
  if (ok) {
    const obs::MetricsSnapshot snap = (*disk_engine)->metrics()->Snapshot();
    std::printf("    metrics: %llu expansions, %llu page reads, "
                "pool hit rate %.2f, ttf-cache hit rate %.2f\n",
                static_cast<unsigned long long>(
                    snap.counter("capefp.search.expansions")),
                static_cast<unsigned long long>(
                    snap.counter("capefp.storage.pager.page_reads")),
                snap.gauge("capefp.storage.pool.hit_rate"),
                snap.gauge("capefp.ttf_cache.hit_rate"));
  }

  // 4. Corruption drills: both a raw bit flip (caught by the page CRC) and
  // a CRC-consistent semantic edit (caught by DeepValidate) must be
  // rejected.
  if (ok) {
    const long size = FileSize(db);
    const long stride = static_cast<long>(build.page_size) + 4;
    CAPEFP_CHECK_GT(size, 2 * stride);
    // Any byte from page 1 onward; every client page is read by the audit.
    const long offset =
        stride + static_cast<long>(rng.NextBounded(
                     static_cast<uint64_t>(size - stride)));
    CAPEFP_CHECK(CopyFile(db, bad));
    CAPEFP_CHECK(FlipByteAt(bad, offset));
    ok = IsRejected(bad, "bit flip") && ok;

    CAPEFP_CHECK(CopyFile(db, bad));
    CAPEFP_CHECK(CorruptMetaNumNodes(bad, build.page_size));
    ok = IsRejected(bad, "meta node count") && ok;
  }

  std::remove(db.c_str());
  std::remove(engine_db.c_str());
  std::remove(bad.c_str());
  return ok;
}

int CmdSelfcheck(const std::map<std::string, std::string>& flags) {
  const int seeds = std::atoi(GetFlag(flags, "seeds", "10").c_str());
  const std::string dir = GetFlag(flags, "dir", "/tmp");
  int failures = 0;
  for (int s = 1; s <= seeds; ++s) {
    std::printf("  seed %d/%d\n", s, seeds);
    if (!RunSeed(static_cast<uint64_t>(s), dir)) ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr, "selfcheck FAILED: %d of %d seeds\n", failures,
                 seeds);
    return 1;
  }
  std::printf("selfcheck OK (%d seeds)\n", seeds);
  return 0;
}

int Main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  if (flags.count("db") != 0) return CmdDb(flags.at("db"));
  if (flags.count("selfcheck") != 0) return CmdSelfcheck(flags);
  std::fprintf(stderr,
               "usage: capefp_audit --db=<path> | --selfcheck [--seeds=N] "
               "[--dir=D]\n");
  return 2;
}

}  // namespace
}  // namespace capefp::tools

int main(int argc, char** argv) { return capefp::tools::Main(argc, argv); }
