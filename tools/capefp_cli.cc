// capefp_cli — command-line front end for the library.
//
// Subcommands:
//   generate   write a synthetic Suffolk-style network to a text file
//   build-ccam convert a network text file into a CCAM page file
//   inspect    print statistics about a CCAM page file
//   query      run allFP / singleFP / arrival queries on a network
//              (--trace prints the query's span tree; --mode=two-phase
//              routes interval queries through the hierarchical corridor,
//              --index=FILE reuses a prebuilt index)
//   stats      run a sampled query batch and print the engine metrics
//   hier       build/inspect a two-phase hierarchical index
//              (hier build --net=... --out=...)
//              (hier stats --net=... --index=...)
//   geojson    export a network as GeoJSON for map visualization
//   selftest   run the whole pipeline end-to-end in a temp directory
//
// Examples:
//   capefp_cli generate --out=/tmp/city.net --seed=42
//   capefp_cli build-ccam --net=/tmp/city.net --out=/tmp/city.ccam
//   capefp_cli inspect --db=/tmp/city.ccam
//   capefp_cli query --net=/tmp/city.net --from=12 --to=931 ...
//       ... --leave-lo=7:00 --leave-hi=9:00 --trace
//   capefp_cli query --net=/tmp/city.net --from=12 --to=931 ...
//       ... --arrive-lo=8:45 --arrive-hi=9:00
//   capefp_cli stats --net=/tmp/city.net --queries=64 --threads=4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/capefp.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp::tools {
namespace {

// --- tiny flag handling ----------------------------------------------------

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    flags[arg.substr(0, eq)] =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
  }
  return flags;
}

std::string GetFlag(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::string RequireFlag(const std::map<std::string, std::string>& flags,
                        const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

// Parses "H:MM" or plain minutes into minutes from midnight.
double ParseClock(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) return std::stod(text);
  return tdf::HhMm(std::stoi(text.substr(0, colon)),
                   std::stoi(text.substr(colon + 1)));
}

std::string FormatClock(double minutes) {
  const int total_seconds = static_cast<int>(minutes * 60.0 + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", total_seconds / 3600,
                (total_seconds / 60) % 60, total_seconds % 60);
  return buf;
}

// --- subcommands -------------------------------------------------------------

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  gen::SuffolkOptions options;
  options.seed = std::stoull(GetFlag(flags, "seed", "42"));
  options.extent_miles = std::stod(GetFlag(flags, "extent", "12"));
  options.city_radius_miles =
      std::stod(GetFlag(flags, "city-radius", "2.5"));
  options.suburb_spacing_miles =
      std::stod(GetFlag(flags, "spacing", "0.114"));
  options.target_segments =
      static_cast<int>(std::stol(GetFlag(flags, "segments", "20461")));
  const std::string out = RequireFlag(flags, "out");

  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  const util::Status status = network::WriteNetworkFile(sn.network, out);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu directed edges (%zu segments)\n",
              out.c_str(), sn.network.num_nodes(), sn.network.num_edges(),
              sn.network.num_edges() / 2);
  return 0;
}

int CmdBuildCcam(const std::map<std::string, std::string>& flags) {
  const std::string net_path = RequireFlag(flags, "net");
  const std::string out = RequireFlag(flags, "out");
  auto net = network::ReadNetworkFile(net_path);
  if (!net.ok()) {
    std::fprintf(stderr, "load failed: %s\n", net.status().ToString().c_str());
    return 1;
  }
  storage::CcamBuildOptions build;
  build.page_size =
      static_cast<uint32_t>(std::stoul(GetFlag(flags, "page-size", "2048")));
  auto report = storage::BuildCcamFile(*net, out, build);
  if (!report.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u data + %u index pages (%u total), "
              "%.1f%% intra-page edges\n",
              out.c_str(), report->data_pages, report->index_pages,
              report->total_pages, 100.0 * report->intra_page_edge_fraction);
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  const std::string db = RequireFlag(flags, "db");
  auto store = storage::CcamStore::Open(db);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  auto height = (*store)->IndexHeight();
  std::printf("%s:\n", db.c_str());
  std::printf("  nodes:          %zu\n", (*store)->num_nodes());
  std::printf("  patterns:       %zu\n", (*store)->patterns().size());
  std::printf("  calendar cycle: %zu days\n",
              (*store)->calendar().cycle().size());
  std::printf("  max speed:      %.3f miles/min (%.0f mph)\n",
              (*store)->max_speed(), (*store)->max_speed() * 60.0);
  std::printf("  page size:      %u bytes\n", (*store)->page_size());
  std::printf("  file pages:     %u\n", (*store)->file_pages());
  std::printf("  index height:   %d\n", height.ok() ? *height : -1);
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  const std::string net_path = RequireFlag(flags, "net");
  auto net = network::ReadNetworkFile(net_path);
  if (!net.ok()) {
    std::fprintf(stderr, "load failed: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const auto from =
      static_cast<network::NodeId>(std::stol(RequireFlag(flags, "from")));
  const auto to =
      static_cast<network::NodeId>(std::stol(RequireFlag(flags, "to")));
  if (from < 0 || static_cast<size_t>(from) >= net->num_nodes() || to < 0 ||
      static_cast<size_t>(to) >= net->num_nodes()) {
    std::fprintf(stderr, "node ids must be in [0, %zu)\n", net->num_nodes());
    return 2;
  }

  core::EngineOptions engine_options;
  engine_options.boundary_grid_dim =
      static_cast<int>(std::stol(GetFlag(flags, "grid", "16")));
  const std::string mode = GetFlag(flags, "mode", "flat");
  if (mode == "two-phase") {
    engine_options.query_mode =
        core::EngineOptions::QueryMode::kHierarchicalTwoPhase;
    engine_options.hierarchical.grid_dim =
        static_cast<int>(std::stol(GetFlag(flags, "hier-grid", "8")));
    engine_options.hierarchical.simplify_eps =
        std::stod(GetFlag(flags, "hier-eps", "0.5"));
    // A prebuilt index (capefp_cli hier build) skips the eager build; its
    // stored grid/eps/window override the flags above.
    engine_options.hierarchical_index_path = GetFlag(flags, "index", "");
  } else if (mode != "flat") {
    std::fprintf(stderr, "--mode must be flat or two-phase, got %s\n",
                 mode.c_str());
    return 2;
  }
  auto engine = core::FastestPathEngine::Create(&*net, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  if (flags.count("arrive-lo") != 0) {
    // Arrival-interval query.
    const double lo = ParseClock(RequireFlag(flags, "arrive-lo"));
    const double hi = ParseClock(RequireFlag(flags, "arrive-hi"));
    const core::ReverseAllFpResult all =
        (*engine)->ArrivalAllFastestPaths({from, to, lo, hi});
    if (!all.found) {
      std::printf("no route from %d to %d\n", from, to);
      return 1;
    }
    std::printf("arrival window [%s, %s], %zu fastest path(s):\n",
                FormatClock(lo).c_str(), FormatClock(hi).c_str(),
                all.pieces.size());
    for (const core::ReverseAllFpPiece& piece : all.pieces) {
      const double mid = 0.5 * (piece.arrive_lo + piece.arrive_hi);
      std::printf("  arrive [%s, %s]: %zu hops, e.g. leave %s\n",
                  FormatClock(piece.arrive_lo).c_str(),
                  FormatClock(piece.arrive_hi).c_str(),
                  piece.path.size() - 1,
                  FormatClock(mid - all.border->Value(mid)).c_str());
    }
    return 0;
  }

  const double lo = ParseClock(GetFlag(flags, "leave-lo", "7:00"));
  const double hi = ParseClock(GetFlag(flags, "leave-hi", "9:00"));
  const bool want_trace = flags.count("trace") != 0;
  obs::Trace trace;
  const core::AllFpResult all = (*engine)->AllFastestPaths(
      {from, to, lo, hi}, want_trace ? &trace : nullptr);
  if (!all.found) {
    std::printf("no route from %d to %d\n", from, to);
    return 1;
  }
  if (want_trace) {
    std::printf("trace:\n%s", trace.ToText().c_str());
  }
  std::printf("leaving window [%s, %s], %zu fastest path(s), "
              "%lld expansions:\n",
              FormatClock(lo).c_str(), FormatClock(hi).c_str(),
              all.pieces.size(),
              static_cast<long long>(all.stats.expansions));
  for (const core::AllFpPiece& piece : all.pieces) {
    std::printf("  leave [%s, %s): %zu hops, travel %.1f-%.1f min\n",
                FormatClock(piece.leave_lo).c_str(),
                FormatClock(piece.leave_hi).c_str(), piece.path.size() - 1,
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MinValue(),
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MaxValue());
  }
  const core::SingleFpResult single =
      (*engine)->SingleFastestPath({from, to, lo, hi});
  std::printf("best departure: %s (%.1f min)\n",
              FormatClock(single.best_leave_time).c_str(),
              single.best_travel_minutes);
  if (flags.count("print-path") != 0) {
    std::printf("path:");
    for (network::NodeId node : single.path) std::printf(" %d", node);
    std::printf("\n");
  }
  return 0;
}

// Runs a batch of sampled allFP queries and prints the engine metric tree
// (Prometheus text by default, --format=json for JSON). By default the
// engine is disk-backed through a temporary CCAM file so the storage
// counters are live; --mem skips the page file.
int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string net_path = RequireFlag(flags, "net");
  auto net = network::ReadNetworkFile(net_path);
  if (!net.ok()) {
    std::fprintf(stderr, "load failed: %s\n", net.status().ToString().c_str());
    return 1;
  }

  core::EngineOptions engine_options;
  engine_options.boundary_grid_dim =
      static_cast<int>(std::stol(GetFlag(flags, "grid", "16")));
  const bool in_memory = flags.count("mem") != 0;
  std::string db_path;
  if (!in_memory) {
    db_path = GetFlag(flags, "dir", "/tmp") + "/capefp_stats.ccam";
    engine_options.ccam_path = db_path;
  }
  auto engine = core::FastestPathEngine::Create(&*net, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  const int num_queries =
      static_cast<int>(std::stol(GetFlag(flags, "queries", "32")));
  const int threads =
      static_cast<int>(std::stol(GetFlag(flags, "threads", "4")));
  const double lo = ParseClock(GetFlag(flags, "leave-lo", "7:00"));
  const double hi = ParseClock(GetFlag(flags, "leave-hi", "9:00"));
  util::Rng rng(std::stoull(GetFlag(flags, "seed", "42")));
  std::vector<core::ProfileQuery> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  while (queries.size() < static_cast<size_t>(num_queries)) {
    const auto s = static_cast<network::NodeId>(
        rng.NextBounded(net->num_nodes()));
    const auto t = static_cast<network::NodeId>(
        rng.NextBounded(net->num_nodes()));
    if (s == t) continue;
    queries.push_back({s, t, lo, hi});
  }

  const core::BatchResult batch =
      (*engine)->RunBatchWithMetrics(queries, threads);
  if (!db_path.empty()) std::remove(db_path.c_str());

  std::printf("# %d queries on %d thread(s): mean %.3f ms, p50 %.3f ms, "
              "p95 %.3f ms\n",
              num_queries, threads, batch.latency_ms.mean(),
              batch.latency_ms.Percentile(50.0),
              batch.latency_ms.Percentile(95.0));
  if (GetFlag(flags, "format", "prom") == "json") {
    std::printf("%s\n", batch.metrics.ToJson().c_str());
  } else {
    std::fputs(batch.metrics.ToPrometheusText().c_str(), stdout);
  }
  return 0;
}

void PrintHierStats(const core::HierarchicalIndex& index) {
  const core::HierarchicalBuildStats& stats = index.build_stats();
  const core::HierarchicalOptions& options = index.options();
  std::printf("  grid:                %dx%d (%d fragments, %d non-empty)\n",
              options.grid_dim, options.grid_dim, index.num_fragments(),
              stats.fragments_used);
  std::printf("  build window:        [%s, %s]\n",
              FormatClock(options.window_lo).c_str(),
              FormatClock(options.window_hi).c_str());
  std::printf("  simplify eps:        %.3f min\n", options.simplify_eps);
  std::printf("  transit functions:   %zu (%zu breakpoints)\n",
              stats.transit_functions, stats.transit_breakpoints);
  std::printf("  simplified bounds:   %zu breakpoints\n",
              stats.approx_breakpoints);
  std::printf("  index size:          %.1f KiB\n",
              static_cast<double>(stats.index_bytes) / 1024.0);
  std::printf("  build time:          %.2f s\n", stats.build_seconds);
}

// `hier build`: precompute a two-phase index and serialize it; `hier
// stats`: reload a serialized index and print its footprint. The index
// format keys on the network, so both take --net.
int CmdHier(const std::string& verb,
            const std::map<std::string, std::string>& flags) {
  const std::string net_path = RequireFlag(flags, "net");
  auto net = network::ReadNetworkFile(net_path);
  if (!net.ok()) {
    std::fprintf(stderr, "load failed: %s\n", net.status().ToString().c_str());
    return 1;
  }

  if (verb == "build") {
    const std::string out = RequireFlag(flags, "out");
    core::HierarchicalOptions options;
    options.grid_dim = static_cast<int>(std::stol(GetFlag(flags, "grid", "8")));
    options.simplify_eps = std::stod(GetFlag(flags, "eps", "0.5"));
    options.window_lo = ParseClock(GetFlag(flags, "window-lo", "0:00"));
    options.window_hi = ParseClock(GetFlag(flags, "window-hi", "24:00"));
    const core::HierarchicalIndex index(&*net, options);
    const util::Status status = index.Save(out);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s:\n", out.c_str());
    PrintHierStats(index);
    return 0;
  }

  if (verb == "stats") {
    const std::string index_path = RequireFlag(flags, "index");
    auto index = core::HierarchicalIndex::Load(&*net, index_path);
    if (!index.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    std::printf("%s:\n", index_path.c_str());
    PrintHierStats(**index);
    return 0;
  }

  std::fprintf(stderr, "usage: capefp_cli hier <build|stats> [--flags]\n");
  return 2;
}

int CmdGeoJson(const std::map<std::string, std::string>& flags) {
  const std::string net_path = RequireFlag(flags, "net");
  const std::string out = RequireFlag(flags, "out");
  auto net = network::ReadNetworkFile(net_path);
  if (!net.ok()) {
    std::fprintf(stderr, "load failed: %s\n", net.status().ToString().c_str());
    return 1;
  }
  const util::Status status = network::WriteGeoJsonFile(*net, out);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdSelftest(const std::map<std::string, std::string>& flags) {
  const std::string dir = GetFlag(flags, "dir", "/tmp");
  const std::string net_path = dir + "/capefp_selftest.net";
  const std::string db_path = dir + "/capefp_selftest.ccam";

  // 1. Generate a small city and persist it.
  gen::SuffolkOptions options = gen::SuffolkOptions::Small();
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  CAPEFP_CHECK(network::WriteNetworkFile(sn.network, net_path).ok());

  // 2. Reload and verify scale.
  auto net = network::ReadNetworkFile(net_path);
  CAPEFP_CHECK(net.ok()) << net.status().ToString();
  CAPEFP_CHECK_EQ(net->num_nodes(), sn.network.num_nodes());

  // 3. Build + open the page file.
  auto report = storage::BuildCcamFile(*net, db_path, {});
  CAPEFP_CHECK(report.ok()) << report.status().ToString();
  auto store = storage::CcamStore::Open(db_path);
  CAPEFP_CHECK(store.ok()) << store.status().ToString();
  CAPEFP_CHECK_EQ((*store)->num_nodes(), net->num_nodes());

  // 4. Query through the engine, both in memory and disk-backed, and
  // compare borders.
  core::EngineOptions disk_options;
  disk_options.ccam_path = db_path;
  auto disk_engine = core::FastestPathEngine::Create(&*net, disk_options);
  CAPEFP_CHECK(disk_engine.ok());
  auto mem_engine = core::FastestPathEngine::Create(&*net, {});
  CAPEFP_CHECK(mem_engine.ok());
  const auto target = static_cast<network::NodeId>(net->num_nodes() - 1);
  const core::ProfileQuery query{0, target, tdf::HhMm(7, 0),
                                 tdf::HhMm(9, 0)};
  const core::AllFpResult a = (*disk_engine)->AllFastestPaths(query);
  const core::AllFpResult b = (*mem_engine)->AllFastestPaths(query);
  CAPEFP_CHECK_EQ(a.found, b.found);
  if (a.found) {
    CAPEFP_CHECK(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-9));
  }

  std::remove(net_path.c_str());
  std::remove(db_path.c_str());
  std::printf("selftest OK (%zu nodes, disk == memory)\n", net->num_nodes());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: capefp_cli <generate|build-ccam|inspect|query|stats|"
               "hier|geojson|selftest> [--flags]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "hier") {
    // hier takes a verb before its flags: capefp_cli hier build --net=...
    const std::string verb = argc >= 3 ? argv[2] : "";
    return CmdHier(verb, ParseFlags(argc, argv, 3));
  }
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build-ccam") return CmdBuildCcam(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "geojson") return CmdGeoJson(flags);
  if (command == "selftest") return CmdSelftest(flags);
  return Usage();
}

}  // namespace
}  // namespace capefp::tools

int main(int argc, char** argv) { return capefp::tools::Main(argc, argv); }
