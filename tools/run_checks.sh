#!/usr/bin/env bash
# Correctness gate: builds and tests capefp under each sanitizer preset and
# runs clang-tidy over src/. Intended for CI and pre-merge runs.
#
#   tools/run_checks.sh            # everything
#   tools/run_checks.sh asan       # just ASan+UBSan build + tests
#   tools/run_checks.sh tsan       # just TSan build + tests
#   tools/run_checks.sh obs        # just the observability tier (both presets)
#   tools/run_checks.sh tidy       # just clang-tidy
#
# Sanitizer stages configure with CAPEFP_EXTRA_WARNINGS=ON so -Wshadow
# -Wconversion regressions fail the gate. The tidy stage is skipped (with a
# notice, not a failure) when clang-tidy is not installed.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
STAGES=("$@")
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(asan tsan tidy)
fi

run_sanitizer_stage() {
  local preset="$1"
  shift
  local ctest_args=("$@")
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" -DCAPEFP_EXTRA_WARNINGS=ON >/dev/null
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> [${preset}] ctest ${ctest_args[*]:-<all>}"
  ctest --preset "${preset}" -j "${JOBS}" "${ctest_args[@]}"
}

run_tidy_stage() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [tidy] clang-tidy not installed; skipping (install clang-tidy" \
         "to enable this stage)"
    return 0
  fi
  echo "==> [tidy] configure (compile database)"
  cmake --preset tidy >/dev/null
  local db="build-tidy"
  mapfile -t sources < <(find src -name '*.cc' | sort)
  echo "==> [tidy] clang-tidy over ${#sources[@]} files"
  local log
  log="$(mktemp)"
  trap 'rm -f "${log}"' RETURN
  local failed=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${db}" -quiet "${sources[@]}" 2>/dev/null \
      | tee "${log}" || failed=1
  else
    for f in "${sources[@]}"; do
      clang-tidy -p "${db}" --quiet "${f}" 2>/dev/null | tee -a "${log}" \
        || failed=1
    done
  fi
  # Fail on any diagnostic, not just hard errors: the committed .clang-tidy
  # baseline is clean, so every warning here is a new one.
  if grep -qE 'warning:|error:' "${log}"; then
    echo "==> [tidy] FAILED: new clang-tidy diagnostics (see above)"
    return 1
  fi
  if [[ ${failed} -ne 0 ]]; then
    echo "==> [tidy] FAILED: clang-tidy exited non-zero"
    return 1
  fi
  echo "==> [tidy] clean"
}

for stage in "${STAGES[@]}"; do
  case "${stage}" in
    asan)
      # Full suite, including the randomized differential audit.
      run_sanitizer_stage asan-ubsan
      ;;
    tsan)
      # Unit + integration + obs covers the genuinely multi-threaded
      # pieces — parallel_engine_test drives RunBatch workers over the
      # shared TTF cache / buffer pool / pager, obs_test hammers the
      # metrics registry from four writer threads under a concurrent
      # snapshotter, and the bench-smoke label runs bench_throughput's
      # tiny batched workload — without re-running the (slow,
      # single-threaded) audit under TSan's ~10x overhead.
      run_sanitizer_stage tsan -L 'unit|integration|bench-smoke|obs'
      ;;
    obs)
      # The observability tier on its own: metrics/trace unit tests plus
      # the trace-vs-registry reconciliation test, under both sanitizer
      # presets (the TSan leg is what certifies the lock-cheap counters).
      run_sanitizer_stage asan-ubsan -L obs
      run_sanitizer_stage tsan -L obs
      ;;
    tidy)
      run_tidy_stage
      ;;
    *)
      echo "unknown stage '${stage}' (expected: asan, tsan, obs, tidy)" >&2
      exit 2
      ;;
  esac
done

echo "==> all requested checks passed"
