#!/usr/bin/env bash
# Correctness gate: builds and tests capefp under each sanitizer preset,
# runs clang-tidy over src/, compiles the tree under Clang's thread-safety
# analysis (plus the negative-compile cases), and runs the domain lint.
# Intended for CI and pre-merge runs.
#
#   tools/run_checks.sh                  # default: asan tsan tidy lint
#   tools/run_checks.sh asan             # just ASan+UBSan build + tests
#   tools/run_checks.sh tsan             # just TSan build + tests
#   tools/run_checks.sh obs              # just the observability tier
#   tools/run_checks.sh tidy             # just clang-tidy
#   tools/run_checks.sh thread-safety    # -Wthread-safety build + compile-fail
#   tools/run_checks.sh lint             # just tools/capefp_lint.py
#
# Flags:
#   --require-tools   Tool-dependent stages (tidy, thread-safety, lint) FAIL
#                     loudly instead of skipping when their tool (clang-tidy,
#                     clang++, python3) is missing. CI passes this so a broken
#                     tool install can't silently skip a gate; local runs
#                     without it degrade gracefully.
#
# Sanitizer stages configure with CAPEFP_EXTRA_WARNINGS=ON so -Wshadow
# -Wconversion regressions fail the gate.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
REQUIRE_TOOLS=0
STAGES=()
for arg in "$@"; do
  case "${arg}" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    --*)
      echo "unknown flag '${arg}' (expected: --require-tools)" >&2
      exit 2
      ;;
    *) STAGES+=("${arg}") ;;
  esac
done
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(asan tsan tidy lint)
fi

# Route compiles through ccache when it is installed (CI caches the ccache
# directory across runs); harmless no-op otherwise.
CCACHE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  CCACHE_ARGS=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
               -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Skip-or-fail for tool-dependent stages: under --require-tools a missing
# tool is a gate failure, otherwise a notice.
missing_tool() {
  local stage="$1" tool="$2"
  if [[ ${REQUIRE_TOOLS} -eq 1 ]]; then
    echo "==> [${stage}] FAILED: ${tool} not installed and --require-tools" \
         "was given" >&2
    return 1
  fi
  echo "==> [${stage}] ${tool} not installed; skipping (install ${tool} or" \
       "pass --require-tools to make this fatal)"
  return 0
}

find_clangxx() {
  local c
  for c in clang++ clang++-21 clang++-20 clang++-19 clang++-18 clang++-17 \
           clang++-16 clang++-15 clang++-14; do
    if command -v "${c}" >/dev/null 2>&1; then
      echo "${c}"
      return 0
    fi
  done
  return 1
}

run_sanitizer_stage() {
  local preset="$1"
  shift
  local ctest_args=("$@")
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" -DCAPEFP_EXTRA_WARNINGS=ON \
        "${CCACHE_ARGS[@]}" >/dev/null
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> [${preset}] ctest ${ctest_args[*]:-<all>}"
  ctest --preset "${preset}" -j "${JOBS}" "${ctest_args[@]}"
}

run_tidy_stage() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    missing_tool tidy clang-tidy
    return
  fi
  echo "==> [tidy] configure (compile database)"
  cmake --preset tidy >/dev/null
  local db="build-tidy"
  mapfile -t sources < <(find src -name '*.cc' | sort)
  echo "==> [tidy] clang-tidy over ${#sources[@]} files"
  local log
  log="$(mktemp)"
  trap 'rm -f "${log}"' RETURN
  local failed=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${db}" -quiet "${sources[@]}" 2>/dev/null \
      | tee "${log}" || failed=1
  else
    for f in "${sources[@]}"; do
      clang-tidy -p "${db}" --quiet "${f}" 2>/dev/null | tee -a "${log}" \
        || failed=1
    done
  fi
  # Fail on any diagnostic, not just hard errors: the committed .clang-tidy
  # baseline is clean, so every warning here is a new one.
  if grep -qE 'warning:|error:' "${log}"; then
    echo "==> [tidy] FAILED: new clang-tidy diagnostics (see above)"
    return 1
  fi
  if [[ ${failed} -ne 0 ]]; then
    echo "==> [tidy] FAILED: clang-tidy exited non-zero"
    return 1
  fi
  echo "==> [tidy] clean"
}

run_thread_safety_stage() {
  local clangxx
  if ! clangxx="$(find_clangxx)"; then
    missing_tool thread-safety clang++
    return
  fi
  # Full-tree build under -Wthread-safety -Werror=thread-safety: any
  # unguarded access to an annotated member fails compilation. The preset's
  # ctest leg then runs the negative-compile cases (label compile-fail),
  # proving the analysis still *rejects* the seeded violations.
  echo "==> [thread-safety] configure (${clangxx})"
  CXX="${clangxx}" cmake --preset thread-safety >/dev/null
  echo "==> [thread-safety] build (-Werror=thread-safety)"
  cmake --build --preset thread-safety -j "${JOBS}"
  echo "==> [thread-safety] ctest (negative-compile cases)"
  ctest --preset thread-safety
  echo "==> [thread-safety] clean"
}

run_lint_stage() {
  local py
  if command -v python3 >/dev/null 2>&1; then
    py=python3
  elif command -v python >/dev/null 2>&1; then
    py=python
  else
    missing_tool lint python3
    return
  fi
  echo "==> [lint] capefp_lint.py --selftest"
  "${py}" tools/capefp_lint.py --selftest
  echo "==> [lint] capefp_lint.py over the tree"
  "${py}" tools/capefp_lint.py --root "${REPO_ROOT}"
  echo "==> [lint] clean"
}

for stage in "${STAGES[@]}"; do
  case "${stage}" in
    asan)
      # Full suite, including the randomized differential audit.
      run_sanitizer_stage asan-ubsan
      ;;
    tsan)
      # Unit + integration + obs covers the genuinely multi-threaded
      # pieces — parallel_engine_test drives RunBatch workers over the
      # shared TTF cache / buffer pool / pager,
      # concurrency_regression_test races cache shard locks and metrics
      # snapshot callbacks against buffer-pool traffic, obs_test hammers
      # the metrics registry from four writer threads under a concurrent
      # snapshotter, and the bench-smoke label runs bench_throughput's
      # tiny batched workload — without re-running the (slow,
      # single-threaded) audit under TSan's ~10x overhead.
      run_sanitizer_stage tsan -L 'unit|integration|bench-smoke|obs'
      ;;
    obs)
      # The observability tier on its own: metrics/trace unit tests plus
      # the trace-vs-registry reconciliation test, under both sanitizer
      # presets (the TSan leg is what certifies the lock-cheap counters).
      run_sanitizer_stage asan-ubsan -L obs
      run_sanitizer_stage tsan -L obs
      ;;
    tidy)
      run_tidy_stage
      ;;
    thread-safety)
      run_thread_safety_stage
      ;;
    lint)
      run_lint_stage
      ;;
    *)
      echo "unknown stage '${stage}' (expected: asan, tsan, obs, tidy," \
           "thread-safety, lint)" >&2
      exit 2
      ;;
  esac
done

echo "==> all requested checks passed"
