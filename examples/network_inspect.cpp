// Storage walkthrough: build a network, persist it as text and as a CCAM
// page file, then run a disk-backed query and report the I/O it cost.
//
// Shows the full storage stack of §2.2: text interchange format, the
// connectivity-clustered page file, the B+-tree node index, and the buffer
// pool counters the benchmarks use.
//
//   $ ./examples/network_inspect [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/network_io.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/util/check.h"

namespace {

using namespace capefp;  // Example code; the library itself never does this.

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  gen::SuffolkOptions options = gen::SuffolkOptions::Small();
  options.seed = seed;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  const network::RoadNetwork& net = sn.network;

  std::printf("network: %zu nodes, %zu directed edges, %zu patterns\n",
              net.num_nodes(), net.num_edges(), net.num_patterns());
  size_t class_counts[network::kNumRoadClasses] = {};
  for (size_t e = 0; e < net.num_edges(); ++e) {
    ++class_counts[static_cast<size_t>(
        net.edge(static_cast<network::EdgeId>(e)).road_class)];
  }
  for (int rc = 0; rc < network::kNumRoadClasses; ++rc) {
    std::printf("  %-20s %6zu edges\n",
                network::RoadClassName(static_cast<network::RoadClass>(rc)),
                class_counts[rc]);
  }

  // --- Text round trip. ---------------------------------------------------
  const std::string text_path = "/tmp/capefp_example.net";
  CAPEFP_CHECK(network::WriteNetworkFile(net, text_path).ok());
  auto reloaded = network::ReadNetworkFile(text_path);
  CAPEFP_CHECK(reloaded.ok()) << reloaded.status().ToString();
  std::printf("\ntext format: wrote and re-read %s (%zu nodes)\n",
              text_path.c_str(), reloaded->num_nodes());

  // --- CCAM build. ----------------------------------------------------------
  const std::string ccam_path = "/tmp/capefp_example.ccam";
  auto report = storage::BuildCcamFile(net, ccam_path, {});
  CAPEFP_CHECK(report.ok()) << report.status().ToString();
  std::printf("\nCCAM file (%u-byte pages):\n", 2048u);
  std::printf("  data pages:            %u\n", report->data_pages);
  std::printf("  B+-tree index pages:   %u\n", report->index_pages);
  std::printf("  total pages:           %u\n", report->total_pages);
  std::printf("  intra-page edges:      %.1f%% (connectivity clustering)\n",
              100.0 * report->intra_page_edge_fraction);

  // --- Disk-backed query with fault accounting. ----------------------------
  storage::CcamOpenOptions open_options;
  open_options.buffer_pool_pages = 16;  // Deliberately small.
  auto store = storage::CcamStore::Open(ccam_path, open_options);
  CAPEFP_CHECK(store.ok()) << store.status().ToString();
  auto height = (*store)->IndexHeight();
  CAPEFP_CHECK(height.ok());
  std::printf("  B+-tree height:        %d\n", *height);

  storage::CcamAccessor accessor(store->get());
  const auto target =
      static_cast<network::NodeId>((*store)->num_nodes() - 1);
  core::EuclideanEstimator estimator(&accessor, target);
  const core::TdAStarResult result =
      core::TdAStar(&accessor, 0, target, tdf::HhMm(8, 0), &estimator);
  const storage::CcamStats stats = (*store)->stats();
  std::printf("\nTdAStar(0 -> %d) at 8:00 through the store:\n", target);
  std::printf("  found: %s, travel %.1f min, %lld nodes expanded\n",
              result.found ? "yes" : "no", result.travel_time_minutes,
              static_cast<long long>(result.expanded_nodes));
  std::printf("  page faults: %llu, pool hits: %llu (pool = 16 pages)\n",
              static_cast<unsigned long long>(stats.pool.faults),
              static_cast<unsigned long long>(stats.pool.hits));

  // --- An online update: close a road, query again. -------------------------
  auto record = (*store)->FindNode(0);
  CAPEFP_CHECK(record.ok());
  if (!record->edges.empty()) {
    const network::NeighborEdge closed = record->edges.front();
    CAPEFP_CHECK((*store)->DeleteEdge(0, closed.to).ok());
    std::printf("\nclosed road 0 -> %d; re-running the query...\n",
                closed.to);
    const core::TdAStarResult during =
        core::TdAStar(&accessor, 0, target, tdf::HhMm(8, 0), &estimator);
    std::printf("  while closed: found=%s%s\n", during.found ? "yes" : "no",
                during.found ? "" : " (that road was the only way out)");
    CAPEFP_CHECK((*store)->InsertEdge(0, closed).ok());
    const core::TdAStarResult after =
        core::TdAStar(&accessor, 0, target, tdf::HhMm(8, 0), &estimator);
    std::printf("  after reopening: found=%s, travel %.1f min\n",
                after.found ? "yes" : "no", after.travel_time_minutes);
    CAPEFP_CHECK((*store)->Flush().ok());
  }

  std::remove(text_path.c_str());
  std::remove(ccam_path.c_str());
  return 0;
}
