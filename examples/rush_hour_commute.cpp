// Rush-hour commute planning on a synthetic metropolitan network.
//
// Generates a Suffolk-style city (see src/gen), picks a suburb-to-downtown
// commute, and answers the question of the paper's introduction: "I may
// leave for work any time between 6am and 8am; please suggest all fastest
// paths". Also shows what a speed-limit-only navigation system would have
// recommended and how much that route costs at 8am.
//
//   $ ./examples/rush_hour_commute [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/analysis.h"
#include "src/core/boundary_estimator.h"
#include "src/core/constant_speed_solver.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/accessor.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace {

using namespace capefp;  // Example code; the library itself never does this.

std::string ClockTime(double minutes) {
  const int total_seconds = static_cast<int>(minutes * 60.0 + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", total_seconds / 3600,
                (total_seconds / 60) % 60, total_seconds % 60);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A mid-size city (a few thousand nodes) so the example runs in about a
  // second; use gen::SuffolkOptions{} for the full 14k-node network.
  gen::SuffolkOptions options;
  options.seed = seed;
  options.extent_miles = 7.0;
  options.city_radius_miles = 1.6;
  options.suburb_spacing_miles = 0.2;
  options.target_segments = 0;
  options.num_highways = 6;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  const network::RoadNetwork& net = sn.network;
  std::printf("generated city: %zu nodes, %zu road segments\n",
              net.num_nodes(), net.num_edges() / 2);

  // Pick a commute: a far suburban node to a downtown node.
  util::Rng rng(seed);
  network::NodeId home = network::kInvalidNode;
  network::NodeId work = network::kInvalidNode;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const auto a = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const double d = geo::EuclideanDistance(net.location(a), sn.city_center);
    if (home == network::kInvalidNode && d > 1.4 * sn.city_radius_miles) {
      home = a;
    } else if (work == network::kInvalidNode &&
               d < 0.3 * sn.city_radius_miles) {
      work = a;
    }
    if (home != network::kInvalidNode && work != network::kInvalidNode) break;
  }
  CAPEFP_CHECK(home != network::kInvalidNode &&
               work != network::kInvalidNode);
  std::printf("commute: node %d (suburbs) -> node %d (downtown), %.1f miles "
              "apart\n\n",
              home, work,
              geo::EuclideanDistance(net.location(home), net.location(work)));

  network::InMemoryAccessor accessor(&net);

  // The boundary-node estimator (§5) with travel-time weights.
  const core::BoundaryNodeIndex index(
      net, {.grid_dim = 8,
            .mode = core::BoundaryIndexOptions::Mode::kTravelTime});
  core::BoundaryNodeEstimator estimator(&index, &accessor, work);

  // allFP: all fastest paths for leaving times 6am-8am on a workday
  // (spanning the 7:00 rush onset, where the best route changes).
  core::ProfileSearch search(&accessor, &estimator);
  const core::AllFpResult all = search.RunAllFp(
      {home, work, tdf::HhMm(6, 0), tdf::HhMm(8, 0)});
  CAPEFP_CHECK(all.found);
  std::printf("allFP 6:00-8:00 (workday): %zu alternative fastest paths, "
              "%lld paths expanded\n",
              all.pieces.size(),
              static_cast<long long>(all.stats.expansions));
  for (const core::AllFpPiece& piece : all.pieces) {
    std::printf("  leave [%s, %s): %2zu-hop route, travel %.1f-%.1f min\n",
                ClockTime(piece.leave_lo).c_str(),
                ClockTime(piece.leave_hi).c_str(), piece.path.size() - 1,
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MinValue(),
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MaxValue());
  }

  const core::SingleFpResult single = search.RunSingleFp(
      {home, work, tdf::HhMm(6, 0), tdf::HhMm(8, 0)});
  std::printf("\nbest single departure: %s (travel %.1f min)\n",
              ClockTime(single.best_leave_time).c_str(),
              single.best_travel_minutes);

  // When is leaving still "almost as good"? (within 10% of the optimum)
  for (const core::DepartureWindow& window :
       core::RecommendDepartures(*all.border, 0.10)) {
    std::printf("  good window: [%s, %s] (worst case %.1f min)\n",
                ClockTime(window.leave_lo).c_str(),
                ClockTime(window.leave_hi).c_str(),
                window.worst_travel_minutes);
  }

  // What a speed-limit navigation system would do, evaluated at 8:00.
  const core::ConstantSpeedResult naive_route =
      core::ConstantSpeedRoute(&accessor, home, work);
  CAPEFP_CHECK(naive_route.found);
  const double naive_at_8 =
      core::EvaluatePathTravelTime(&accessor, naive_route.path,
                                   tdf::HhMm(8, 0));
  core::ZeroEstimator zero;
  const core::TdAStarResult aware_at_8 =
      core::TdAStar(&accessor, home, work, tdf::HhMm(8, 0), &zero);
  std::printf("\nat 8:00 sharp: speed-limit route takes %.1f min, "
              "CapeCod-aware route %.1f min (%.0f%% saved)\n",
              naive_at_8, aware_at_8.travel_time_minutes,
              100.0 * (naive_at_8 - aware_at_8.travel_time_minutes) /
                  naive_at_8);
  return 0;
}
