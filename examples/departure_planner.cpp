// Arrival-interval planning: "I must be at work between 8:45 and 9:00 —
// when should I leave, and which way should I go?"
//
// Demonstrates the reverse (arrival-anchored) variant of the allFP query
// (§2.1 allows the query interval to constrain the arrival at e), which
// runs backwards from the target with inverse edge functions.
//
//   $ ./examples/departure_planner [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/boundary_estimator.h"
#include "src/core/reverse_profile_search.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/accessor.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace {

using namespace capefp;  // Example code; the library itself never does this.

std::string ClockTime(double minutes) {
  const int total_seconds = static_cast<int>(minutes * 60.0 + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", total_seconds / 3600,
                (total_seconds / 60) % 60, total_seconds % 60);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;
  gen::SuffolkOptions options;
  options.seed = seed;
  options.extent_miles = 7.0;
  options.city_radius_miles = 1.6;
  options.suburb_spacing_miles = 0.2;
  options.target_segments = 0;
  options.num_highways = 6;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  const network::RoadNetwork& net = sn.network;

  // Suburban home, downtown office.
  util::Rng rng(seed ^ 0x5a5a);
  network::NodeId home = network::kInvalidNode;
  network::NodeId office = network::kInvalidNode;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const auto a = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const double d = geo::EuclideanDistance(net.location(a), sn.city_center);
    if (home == network::kInvalidNode && d > 1.3 * sn.city_radius_miles) {
      home = a;
    } else if (office == network::kInvalidNode &&
               d < 0.35 * sn.city_radius_miles) {
      office = a;
    }
    if (home != network::kInvalidNode && office != network::kInvalidNode) {
      break;
    }
  }
  CAPEFP_CHECK(home != network::kInvalidNode &&
               office != network::kInvalidNode);

  network::InMemoryAccessor accessor(&net);
  // Reverse searches estimate travel *from the source*, so the estimator is
  // anchored at `home` with kFromAnchor semantics.
  const core::BoundaryNodeIndex index(
      net, {.grid_dim = 8,
            .mode = core::BoundaryIndexOptions::Mode::kTravelTime});
  core::BoundaryNodeEstimator estimator(
      &index, &accessor, home,
      core::BoundaryNodeEstimator::Direction::kFromAnchor);

  core::ReverseProfileSearch search(&net, &estimator);
  const double arrive_lo = tdf::HhMm(8, 45);
  const double arrive_hi = tdf::HhMm(9, 0);
  std::printf("must arrive at node %d between %s and %s (workday)\n\n",
              office, ClockTime(arrive_lo).c_str(),
              ClockTime(arrive_hi).c_str());

  const core::ReverseAllFpResult all =
      search.RunAllFp({home, office, arrive_lo, arrive_hi});
  CAPEFP_CHECK(all.found) << "no route found";
  std::printf("%zu fastest path(s) across the arrival window:\n",
              all.pieces.size());
  for (const core::ReverseAllFpPiece& piece : all.pieces) {
    const double mid = 0.5 * (piece.arrive_lo + piece.arrive_hi);
    const double travel = all.border->Value(mid);
    std::printf(
        "  arrive in [%s, %s]: %2zu-hop route; e.g. arrive %s by leaving "
        "%s (%.1f min on the road)\n",
        ClockTime(piece.arrive_lo).c_str(),
        ClockTime(piece.arrive_hi).c_str(), piece.path.size() - 1,
        ClockTime(mid).c_str(), ClockTime(mid - travel).c_str(), travel);
  }

  const core::ReverseSingleFpResult best =
      search.RunSingleFp({home, office, arrive_lo, arrive_hi});
  std::printf(
      "\ncheapest commute in the window: leave %s, arrive %s "
      "(%.1f min, %lld paths expanded)\n",
      ClockTime(best.best_leave_time).c_str(),
      ClockTime(best.best_arrive_time).c_str(), best.best_travel_minutes,
      static_cast<long long>(best.stats.expansions));
  std::printf("latest viable departure (arrive %s): leave %s\n",
              ClockTime(arrive_hi).c_str(),
              ClockTime(arrive_hi - all.border->Value(arrive_hi)).c_str());
  return 0;
}
