// Quickstart: the paper's running example (Figure 2) end to end.
//
// Builds the three-node network of §4.3, asks for all fastest paths from s
// to e for leaving times between 6:50 and 7:05, and prints the partition
// the paper derives in §4.6 plus the singleFP answer of §4.5.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/network/accessor.h"
#include "src/network/road_network.h"
#include "src/util/check.h"

namespace {

using capefp::core::AllFpResult;
using capefp::core::EuclideanEstimator;
using capefp::core::ProfileSearch;
using capefp::core::SingleFpResult;
using capefp::network::InMemoryAccessor;
using capefp::network::NodeId;
using capefp::network::RoadClass;
using capefp::network::RoadNetwork;
using capefp::tdf::HhMm;

std::string ClockTime(double minutes) {
  const int total_seconds = static_cast<int>(minutes * 60.0 + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", total_seconds / 3600,
                (total_seconds / 60) % 60, total_seconds % 60);
  return buf;
}

std::string PathNames(const std::vector<NodeId>& path) {
  static const char* kNames[] = {"s", "e", "n"};
  std::string out;
  for (NodeId node : path) {
    if (!out.empty()) out += " -> ";
    out += kNames[node];
  }
  return out;
}

}  // namespace

int main() {
  // --- 1. Build the CapeCod network of Figure 2. -------------------------
  // One day category; three roads. Speeds are miles/minute.
  RoadNetwork net{capefp::tdf::Calendar::SingleCategory()};

  // s -> e: 6 miles at a constant 1 mpm (always 6 minutes).
  const auto pat_se =
      net.AddPattern(capefp::tdf::CapeCodPattern::ConstantSpeed(1.0));
  // s -> n: 2 miles; crawls at 1/3 mpm until 7:00, then 1 mpm.
  const auto pat_sn = net.AddPattern(capefp::tdf::CapeCodPattern(
      {capefp::tdf::DailySpeedPattern({{0.0, 1.0 / 3.0}, {HhMm(7, 0), 1.0}})}));
  // n -> e: 1 mile; 1/3 mpm until 7:08, then a 0.1 mpm crawl.
  const auto pat_ne = net.AddPattern(capefp::tdf::CapeCodPattern(
      {capefp::tdf::DailySpeedPattern(
          {{0.0, 1.0 / 3.0}, {HhMm(7, 8), 0.1}})}));

  const NodeId s = net.AddNode({0.0, 0.0});
  const NodeId e = net.AddNode({3.0, 0.0});
  const NodeId n = net.AddNode({2.0, 0.0});
  net.AddEdge(s, e, 6.0, pat_se, RoadClass::kLocalInCity);
  net.AddEdge(s, n, 2.0, pat_sn, RoadClass::kLocalInCity);
  net.AddEdge(n, e, 1.0, pat_ne, RoadClass::kLocalInCity);

  // --- 2. Run the time-interval queries. ---------------------------------
  InMemoryAccessor accessor(&net);
  EuclideanEstimator estimator(&accessor, e);  // naiveLB, as in §4.
  ProfileSearch search(&accessor, &estimator);
  const capefp::core::ProfileQuery query{s, e, HhMm(6, 50), HhMm(7, 5)};

  const SingleFpResult single = search.RunSingleFp(query);
  CAPEFP_CHECK(single.found);
  std::printf("singleFP: take %s, leave at %s, travel %.1f minutes\n",
              PathNames(single.path).c_str(),
              ClockTime(single.best_leave_time).c_str(),
              single.best_travel_minutes);

  const AllFpResult all = search.RunAllFp(query);
  CAPEFP_CHECK(all.found);
  std::printf("\nallFP over [%s, %s]:\n", ClockTime(query.leave_lo).c_str(),
              ClockTime(query.leave_hi).c_str());
  for (const capefp::core::AllFpPiece& piece : all.pieces) {
    std::printf("  leave in [%s, %s): take %-12s (travel %4.1f-%4.1f min)\n",
                ClockTime(piece.leave_lo).c_str(),
                ClockTime(piece.leave_hi).c_str(),
                PathNames(piece.path).c_str(),
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MinValue(),
                all.border->Restricted(piece.leave_lo, piece.leave_hi)
                    .MaxValue());
  }

  // --- 3. Sanity-check against the numbers printed in the paper. ---------
  CAPEFP_CHECK_EQ(all.pieces.size(), 3u);
  CAPEFP_CHECK(single.path == (std::vector<NodeId>{s, n, e}));
  CAPEFP_CHECK(all.pieces[0].path == (std::vector<NodeId>{s, e}));
  CAPEFP_CHECK(all.pieces[1].path == (std::vector<NodeId>{s, n, e}));
  CAPEFP_CHECK(all.pieces[2].path == (std::vector<NodeId>{s, e}));
  std::printf("\nMatches §4.5-4.6 of the paper: singleFP = s->n->e at 5 min; "
              "switch points 6:58:30 and 7:03:26.\n");
  return 0;
}
