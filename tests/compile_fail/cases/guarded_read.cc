// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety.
//
// Reads a CAPEFP_GUARDED_BY member without holding its mutex — the exact
// bug class the annotations on BufferPoolStats / PagerStats / the
// EdgeTtfCache shard counters exist to prevent. The harness asserts the
// compiler rejects this TU with a diagnostic matching
// "requires holding mutex".
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Stats {
 public:
  // BAD: no lock held; mirrors what BufferPool::stats() would be if it
  // dropped its MutexLock.
  int Unsafe() const { return value_; }

 private:
  mutable capefp::util::Mutex mu_;
  int value_ CAPEFP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Stats s;
  return s.Unsafe();
}
