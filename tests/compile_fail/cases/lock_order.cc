// MUST NOT COMPILE under -Wthread-safety-beta -Werror=thread-safety-beta.
//
// Violates the declared pool -> pager lock order. This mirrors the real
// annotation on BufferPool::mu_ (CAPEFP_ACQUIRED_BEFORE(pager_->mu_));
// the model below keeps both mutexes in one class, the shape Clang's
// acquired_before checking handles most robustly, so this test pins the
// analysis behavior itself. The harness asserts the compiler rejects this
// TU with a diagnostic matching "must be acquired before".
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

class Engine {
 public:
  // Same order contract as BufferPool::mu_ -> Pager::mu_.
  void Wrong() {
    capefp::util::MutexLock pager_lock(&pager_mu_);
    // BAD: acquiring the pool mutex while the pager mutex is held inverts
    // the declared order.
    capefp::util::MutexLock pool_lock(&pool_mu_);
  }

 private:
  capefp::util::Mutex pool_mu_ CAPEFP_ACQUIRED_BEFORE(pager_mu_);
  capefp::util::Mutex pager_mu_;
};

}  // namespace

int main() {
  Engine e;
  e.Wrong();
  return 0;
}
