// Positive control for the negative-compile harness: this TU includes the
// real annotated headers (storage, network cache, metrics) and performs a
// correctly locked guarded access. It MUST compile under -Wthread-safety
// -Werror=thread-safety — if it doesn't, the harness is broken (stale
// include paths, bad flags), and the "expected failures" below would pass
// for the wrong reason.
#include "src/network/ttf_cache.h"
#include "src/obs/metrics.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/pager.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace {

// The annotated-counter pattern used across the repo, locked correctly.
class Guarded {
 public:
  int Get() const {
    capefp::util::MutexLock lock(&mu_);
    return value_;
  }
  void Bump() {
    capefp::util::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  mutable capefp::util::Mutex mu_;
  int value_ CAPEFP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Bump();
  return g.Get();
}
