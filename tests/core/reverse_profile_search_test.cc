#include "src/core/reverse_profile_search.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/gen/random_network.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::PwlFunction;

// Inverts an increasing piecewise-linear function at `y`.
double InverseAt(const PwlFunction& f, double y) {
  const auto& pts = f.breakpoints();
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    if (y >= pts[i].y - 1e-9 && y <= pts[i + 1].y + 1e-9) {
      const double dy = pts[i + 1].y - pts[i].y;
      if (dy <= 1e-12) return pts[i].x;
      return pts[i].x + (y - pts[i].y) * (pts[i + 1].x - pts[i].x) / dy;
    }
  }
  return pts.back().x;
}

class ReverseCrossValidationTest : public ::testing::TestWithParam<uint64_t> {
};

// The fundamental identity: with EA(l) = l + B_forward(l) the (strictly
// increasing) earliest-arrival function, the reverse border satisfies
// B_reverse(a) = a − EA⁻¹(a).
TEST_P(ReverseCrossValidationTest, ReverseBorderInvertsForwardArrival) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 45;
  opt.extra_edge_fraction = 0.8;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam() ^ 0xaa);
  const auto s = static_cast<NodeId>(rng.NextBounded(45));
  auto t = static_cast<NodeId>(rng.NextBounded(45));
  if (t == s) t = static_cast<NodeId>((t + 1) % 45);

  // Forward border over a wide departure window.
  const double dep_lo = 400.0;
  const double dep_hi = 700.0;
  EuclideanEstimator fwd_est(&acc, t);
  ProfileSearch forward(&acc, &fwd_est);
  const AllFpResult fwd = forward.RunAllFp({s, t, dep_lo, dep_hi});
  ASSERT_TRUE(fwd.found);
  // EA(l) = l + border(l).
  std::vector<tdf::Breakpoint> ea_pts;
  for (const tdf::Breakpoint& bp : fwd.border->breakpoints()) {
    ea_pts.push_back({bp.x, bp.x + bp.y});
  }
  PwlFunction ea({{ea_pts.front().x, ea_pts.front().y}});
  {
    std::vector<tdf::Breakpoint> pts = ea_pts;
    ea = PwlFunction(std::move(pts));
  }

  // Reverse query over arrivals strictly inside EA's range.
  const double arr_lo = ea.Value(dep_lo + 20.0) + 1.0;
  const double arr_hi = ea.Value(dep_hi - 20.0) - 1.0;
  ASSERT_LT(arr_lo, arr_hi);
  EuclideanEstimator rev_est(&acc, s);
  ReverseProfileSearch reverse(&net, &rev_est);
  const ReverseAllFpResult rev =
      reverse.RunAllFp({s, t, arr_lo, arr_hi});
  ASSERT_TRUE(rev.found);

  for (int i = 0; i <= 40; ++i) {
    const double a = arr_lo + (arr_hi - arr_lo) * i / 40.0;
    const double departure = InverseAt(ea, a);
    EXPECT_NEAR(rev.border->Value(a), a - departure, 1e-5) << "a=" << a;
  }
}

TEST_P(ReverseCrossValidationTest, PiecePathsAreConsistent) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0xbb;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(40));
  auto t = static_cast<NodeId>(rng.NextBounded(40));
  if (t == s) t = static_cast<NodeId>((t + 1) % 40);

  EuclideanEstimator est(&acc, s);
  ReverseProfileSearch reverse(&net, &est);
  const ReverseAllFpResult rev = reverse.RunAllFp({s, t, 800.0, 900.0});
  ASSERT_TRUE(rev.found);
  ASSERT_FALSE(rev.pieces.empty());
  EXPECT_NEAR(rev.pieces.front().arrive_lo, 800.0, 1e-9);
  EXPECT_NEAR(rev.pieces.back().arrive_hi, 900.0, 1e-9);
  for (size_t i = 0; i < rev.pieces.size(); ++i) {
    const ReverseAllFpPiece& piece = rev.pieces[i];
    EXPECT_EQ(piece.path.front(), s);
    EXPECT_EQ(piece.path.back(), t);
    if (i > 0) {
      EXPECT_NEAR(rev.pieces[i - 1].arrive_hi, piece.arrive_lo, 1e-9);
      EXPECT_NE(rev.pieces[i - 1].path, piece.path);
    }
    // Departing at a − R(a) along the piece's path arrives at a.
    for (double frac : {0.3, 0.7}) {
      const double a =
          piece.arrive_lo + frac * (piece.arrive_hi - piece.arrive_lo);
      const double travel = rev.border->Value(a);
      EXPECT_NEAR(EvaluatePathTravelTime(&acc, piece.path, a - travel),
                  travel, 1e-6);
    }
  }
}

TEST_P(ReverseCrossValidationTest, SingleFpPicksGlobalOptimum) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0xcc;
  opt.num_nodes = 35;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(35));
  auto t = static_cast<NodeId>(rng.NextBounded(35));
  if (t == s) t = static_cast<NodeId>((t + 1) % 35);

  EuclideanEstimator est1(&acc, s);
  ReverseProfileSearch reverse(&net, &est1);
  const ReverseSingleFpResult single =
      reverse.RunSingleFp({s, t, 600.0, 720.0});
  ASSERT_TRUE(single.found);

  EuclideanEstimator est2(&acc, s);
  ReverseProfileSearch full(&net, &est2);
  const ReverseAllFpResult all = full.RunAllFp({s, t, 600.0, 720.0});
  ASSERT_TRUE(all.found);
  EXPECT_NEAR(single.best_travel_minutes, all.border->MinValue(), 1e-7);
  EXPECT_NEAR(single.best_leave_time,
              single.best_arrive_time - single.best_travel_minutes, 1e-9);
  // The reported path truly arrives at best_arrive_time.
  EXPECT_NEAR(
      EvaluatePathTravelTime(&acc, single.path, single.best_leave_time),
      single.best_travel_minutes, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseCrossValidationTest,
                         ::testing::Values(3, 29, 64, 118));

TEST(ReverseProfileSearchTest, UnreachableSourceNotFound) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  // Only 1 -> 0 exists, so no path 0 ⇒ 1.
  net.AddEdge(1, 0, 1.0, 0, network::RoadClass::kLocalInCity);
  ZeroEstimator est;
  ReverseProfileSearch reverse(&net, &est);
  EXPECT_FALSE(reverse.RunSingleFp({0, 1, 100.0, 160.0}).found);
  EXPECT_FALSE(reverse.RunAllFp({0, 1, 100.0, 160.0}).found);
}

TEST(ReverseProfileSearchTest, SourceEqualsTarget) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 12;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  ZeroEstimator est;
  ReverseProfileSearch reverse(&net, &est);
  const ReverseSingleFpResult r = reverse.RunSingleFp({3, 3, 50.0, 90.0});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path, (std::vector<NodeId>{3}));
  EXPECT_NEAR(r.best_travel_minutes, 0.0, 1e-12);
}

}  // namespace
}  // namespace capefp::core
