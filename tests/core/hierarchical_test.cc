#include "src/core/hierarchical.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/engine.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/accessor.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::HhMm;
using tdf::PwlFunction;

class HierarchicalPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

// The headline property: the overlay border is the flat border, exactly.
TEST_P(HierarchicalPropertyTest, BorderEqualsFlatSearch) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 70;
  opt.extra_edge_fraction = 0.9;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalOptions options;
  options.grid_dim = 3;
  options.window_lo = 0.0;
  options.window_hi = 2.0 * tdf::kMinutesPerDay;
  HierarchicalIndex index(&net, options);
  EXPECT_GT(index.build_stats().transit_functions, 0u);

  util::Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(70));
    const auto t = static_cast<NodeId>(rng.NextBounded(70));
    const ProfileQuery query{s, t, HhMm(6, 0), HhMm(8, 0)};

    EuclideanEstimator flat_est(&acc, t);
    ProfileSearch flat(&acc, &flat_est);
    const AllFpResult expected = flat.RunAllFp(query);

    EuclideanEstimator hier_est(&acc, t);
    auto actual = index.RunAllFp(query, &hier_est);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual->found, expected.found) << "s=" << s << " t=" << t;
    if (!expected.found) continue;
    EXPECT_TRUE(PwlFunction::ApproxEqual(*actual->border, *expected.border,
                                         1e-6))
        << "s=" << s << " t=" << t << "\n  hier: "
        << actual->border->ToString()
        << "\n  flat: " << expected.border->ToString();
    // Partition sanity.
    ASSERT_FALSE(actual->pieces.empty());
    EXPECT_NEAR(actual->pieces.front().leave_lo, query.leave_lo, 1e-9);
    EXPECT_NEAR(actual->pieces.back().leave_hi, query.leave_hi, 1e-9);
    for (const HierarchicalPiece& piece : actual->pieces) {
      ASSERT_FALSE(piece.waypoints.empty());
      EXPECT_EQ(piece.waypoints.front(), s);
      EXPECT_EQ(piece.waypoints.back(), t);
    }
  }
}

TEST_P(HierarchicalPropertyTest, SingleFpMatchesFlat) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x99;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(50));
    const auto t = static_cast<NodeId>(rng.NextBounded(50));
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(9, 0)};

    EuclideanEstimator flat_est(&acc, t);
    ProfileSearch flat(&acc, &flat_est);
    const SingleFpResult expected = flat.RunSingleFp(query);

    EuclideanEstimator hier_est(&acc, t);
    auto actual = index.RunSingleFp(query, &hier_est);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(actual->found, expected.found);
    if (!expected.found) continue;
    EXPECT_NEAR(actual->best_travel_minutes, expected.best_travel_minutes,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalPropertyTest,
                         ::testing::Values(9, 31, 73, 155));

TEST(HierarchicalTest, SameFragmentQueriesWork) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  HierarchicalIndex index(&sn.network, {.grid_dim = 2});
  // Find two nodes in the same fragment.
  NodeId a = 0;
  NodeId b = network::kInvalidNode;
  for (size_t i = 1; i < sn.network.num_nodes(); ++i) {
    if (index.FragmentOf(static_cast<NodeId>(i)) == index.FragmentOf(a)) {
      b = static_cast<NodeId>(i);
      break;
    }
  }
  ASSERT_NE(b, network::kInvalidNode);
  const ProfileQuery query{a, b, HhMm(7, 0), HhMm(8, 0)};
  EuclideanEstimator flat_est(&acc, b);
  ProfileSearch flat(&acc, &flat_est);
  const AllFpResult expected = flat.RunAllFp(query);
  EuclideanEstimator hier_est(&acc, b);
  auto actual = index.RunAllFp(query, &hier_est);
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->found, expected.found);
  if (expected.found) {
    EXPECT_TRUE(
        PwlFunction::ApproxEqual(*actual->border, *expected.border, 1e-6));
  }
}

TEST(HierarchicalTest, SourceEqualsTarget) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  ZeroEstimator zero;
  auto result = index.RunAllFp({5, 5, 100.0, 160.0}, &zero);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_NEAR(result->border->MaxValue(), 0.0, 1e-12);
  ASSERT_EQ(result->pieces.size(), 1u);
  EXPECT_EQ(result->pieces[0].waypoints, (std::vector<NodeId>{5}));
}

TEST(HierarchicalTest, QueryOutsideWindowIsOutOfRange) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalOptions options;
  options.window_lo = HhMm(6, 0);
  options.window_hi = HhMm(10, 0);
  HierarchicalIndex index(&net, options);
  ZeroEstimator zero;
  auto result = index.RunAllFp({0, 5, HhMm(4, 0), HhMm(5, 0)}, &zero);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
}

TEST(HierarchicalTest, UnreachableTargetNotFound) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({10, 10});
  net.AddNode({0.1, 0.1});
  net.AddEdge(0, 2, 0.5, 0, network::RoadClass::kLocalInCity);
  net.AddEdge(1, 0, 15.0, 0, network::RoadClass::kLocalInCity);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  ZeroEstimator zero;
  auto result = index.RunAllFp({0, 1, 0.0, 60.0}, &zero);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
}

TEST(HierarchicalTest, BuildStatsPopulated) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  HierarchicalIndex index(&sn.network, {.grid_dim = 3});
  const HierarchicalBuildStats& stats = index.build_stats();
  EXPECT_GT(stats.fragments_used, 1);
  EXPECT_GT(stats.transit_functions, 0u);
  EXPECT_GE(stats.transit_breakpoints, stats.transit_functions);
  EXPECT_GT(stats.approx_breakpoints, 0u);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

// --- Corridor phase (two-phase mode). ---

class TwoPhasePropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The two-phase contract: with the corridor filter installed, the exact
// search returns the flat search's border bit-for-bit (the corridor only
// removes nodes the optimum provably never needs).
TEST_P(TwoPhasePropertyTest, FilteredSearchBorderIsBitIdenticalToFlat) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 70;
  opt.extra_edge_fraction = 0.9;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalOptions options;
  options.grid_dim = 3;
  options.simplify_eps = 0.5;
  HierarchicalIndex index(&net, options);

  HierarchicalIndex::CorridorScratch corridor_scratch;
  ProfileSearch::Scratch scratch;
  util::Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 6; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(70));
    const auto t = static_cast<NodeId>(rng.NextBounded(70));
    const ProfileQuery query{s, t, HhMm(6, 0), HhMm(8, 0)};

    EuclideanEstimator flat_est(&acc, t);
    ProfileSearch flat(&acc, &flat_est);
    const AllFpResult expected = flat.RunAllFp(query);

    EuclideanEstimator est(&acc, t);
    auto corridor =
        index.ExtractCorridor(query, &est, corridor_scratch, &scratch.filter);
    ASSERT_TRUE(corridor.ok()) << corridor.status().ToString();
    ProfileSearch filtered(&acc, &est, {}, &scratch);
    const AllFpResult actual = filtered.RunAllFp(query);
    scratch.filter.Reset();

    ASSERT_EQ(actual.found, expected.found) << "s=" << s << " t=" << t;
    if (!expected.found) continue;
    // Bit-identical: the filtered search expands a subset of nodes but must
    // pop the same optimal labels in the same order.
    ASSERT_TRUE(
        PwlFunction::ApproxEqual(*actual.border, *expected.border, 0.0))
        << "s=" << s << " t=" << t
        << "\n  two-phase: " << actual.border->ToString()
        << "\n  flat:      " << expected.border->ToString();
    ASSERT_EQ(actual.pieces.size(), expected.pieces.size());
    for (size_t i = 0; i < actual.pieces.size(); ++i) {
      EXPECT_EQ(actual.pieces[i].path, expected.pieces[i].path);
    }
    // The corridor did restrict something (or covered everything: both are
    // legal; just check the stats are coherent).
    EXPECT_GE(corridor->fragments_marked, 1);
    EXPECT_LE(corridor->fragments_marked, index.num_fragments());
  }
}

// Same contract end-to-end through the engine's query mode.
TEST_P(TwoPhasePropertyTest, EngineModeMatchesFlatEngine) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x77;
  opt.num_nodes = 60;
  opt.extra_edge_fraction = 0.7;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);

  EngineOptions flat_opts;
  auto flat_engine = FastestPathEngine::Create(&net, flat_opts);
  ASSERT_TRUE(flat_engine.ok());

  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 3;
  auto hier_engine = FastestPathEngine::Create(&net, hier_opts);
  ASSERT_TRUE(hier_engine.ok());
  ASSERT_NE((*hier_engine)->hierarchical_index(), nullptr);

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(60));
    const auto t = static_cast<NodeId>(rng.NextBounded(60));
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(9, 0)};
    const AllFpResult expected = (*flat_engine)->AllFastestPaths(query);
    const AllFpResult actual = (*hier_engine)->AllFastestPaths(query);
    ASSERT_EQ(actual.found, expected.found) << "s=" << s << " t=" << t;
    if (!expected.found) continue;
    EXPECT_TRUE(
        PwlFunction::ApproxEqual(*actual.border, *expected.border, 0.0))
        << "s=" << s << " t=" << t;
    ASSERT_EQ(actual.pieces.size(), expected.pieces.size());
    for (size_t i = 0; i < actual.pieces.size(); ++i) {
      EXPECT_EQ(actual.pieces[i].path, expected.pieces[i].path);
    }
  }
  // The mode published its per-phase metrics.
  const auto snapshot = (*hier_engine)->metrics()->Snapshot();
  EXPECT_GE(snapshot.counter("capefp.hier.queries"), 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPhasePropertyTest,
                         ::testing::Values(5u, 21u, 101u, 203u));

TEST(TwoPhaseTest, QueryOutsideWindowFallsBackToFlat) {
  // The engine must answer (via flat fallback), not error, when the query
  // interval leaves the index build window.
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 2;
  hier_opts.hierarchical.window_lo = HhMm(6, 0);
  hier_opts.hierarchical.window_hi = HhMm(10, 0);
  auto engine = FastestPathEngine::Create(&net, hier_opts);
  ASSERT_TRUE(engine.ok());

  EngineOptions flat_opts;
  auto flat = FastestPathEngine::Create(&net, flat_opts);
  ASSERT_TRUE(flat.ok());

  const ProfileQuery query{0, 17, HhMm(4, 0), HhMm(5, 0)};
  const AllFpResult expected = (*flat)->AllFastestPaths(query);
  const AllFpResult actual = (*engine)->AllFastestPaths(query);
  ASSERT_EQ(actual.found, expected.found);
  if (expected.found) {
    EXPECT_TRUE(
        PwlFunction::ApproxEqual(*actual.border, *expected.border, 0.0));
  }
  const auto snapshot = (*engine)->metrics()->Snapshot();
  EXPECT_EQ(snapshot.counter("capefp.hier.fallbacks"), 1u);
}

TEST(TwoPhaseTest, CorridorUnreachableTargetConfirmedByExactPhase) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({10, 10});
  net.AddNode({0.1, 0.1});
  net.AddEdge(0, 2, 0.5, 0, network::RoadClass::kLocalInCity);
  net.AddEdge(1, 0, 15.0, 0, network::RoadClass::kLocalInCity);
  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 2;
  auto engine = FastestPathEngine::Create(&net, hier_opts);
  ASSERT_TRUE(engine.ok());
  const AllFpResult result = (*engine)->AllFastestPaths({0, 1, 0.0, 60.0});
  EXPECT_FALSE(result.found);
}

TEST(TwoPhaseTest, BatchMatchesSequentialBitIdentical) {
  gen::RandomNetworkOptions opt;
  opt.seed = 404;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 2;
  auto engine = FastestPathEngine::Create(&net, hier_opts);
  ASSERT_TRUE(engine.ok());
  std::vector<ProfileQuery> queries;
  util::Rng rng(404);
  for (int i = 0; i < 8; ++i) {
    queries.push_back({static_cast<NodeId>(rng.NextBounded(50)),
                       static_cast<NodeId>(rng.NextBounded(50)), HhMm(7, 0),
                       HhMm(8, 30)});
  }
  const auto batch = (*engine)->RunBatch(queries, /*threads=*/4);
  for (size_t i = 0; i < queries.size(); ++i) {
    const AllFpResult sequential = (*engine)->AllFastestPaths(queries[i]);
    ASSERT_EQ(batch[i].found, sequential.found) << "query " << i;
    if (!sequential.found) continue;
    EXPECT_TRUE(PwlFunction::ApproxEqual(*batch[i].border,
                                         *sequential.border, 0.0));
  }
}

// --- Serialization. ---

TEST(HierarchicalSerializationTest, SaveLoadRoundTripsTransitFunctions) {
  gen::RandomNetworkOptions opt;
  opt.seed = 11;
  opt.num_nodes = 60;
  opt.extra_edge_fraction = 0.8;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalOptions options;
  options.grid_dim = 3;
  HierarchicalIndex built(&net, options);

  const std::string path = ::testing::TempDir() + "/hier_index.cfh";
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = HierarchicalIndex::Load(&net, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->build_stats().transit_functions,
            built.build_stats().transit_functions);
  EXPECT_EQ((*loaded)->build_stats().transit_breakpoints,
            built.build_stats().transit_breakpoints);
  EXPECT_EQ((*loaded)->build_stats().approx_breakpoints,
            built.build_stats().approx_breakpoints);
  EXPECT_EQ((*loaded)->options().simplify_eps, options.simplify_eps);

  // Same answers from the loaded index.
  const ProfileQuery query{3, 42, HhMm(7, 0), HhMm(9, 0)};
  EuclideanEstimator est1(&acc, 42);
  auto from_built = built.RunAllFp(query, &est1);
  EuclideanEstimator est2(&acc, 42);
  auto from_loaded = (*loaded)->RunAllFp(query, &est2);
  ASSERT_TRUE(from_built.ok());
  ASSERT_TRUE(from_loaded.ok());
  ASSERT_EQ(from_built->found, from_loaded->found);
  if (from_built->found) {
    EXPECT_TRUE(PwlFunction::ApproxEqual(*from_built->border,
                                         *from_loaded->border, 0.0));
  }
  std::remove(path.c_str());
}

TEST(HierarchicalSerializationTest, LoadRejectsCorruptionAndWrongNetwork) {
  gen::RandomNetworkOptions opt;
  opt.seed = 12;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalIndex built(&net, {.grid_dim = 2});
  const std::string path = ::testing::TempDir() + "/hier_corrupt.cfh";
  ASSERT_TRUE(built.Save(path).ok());

  // Flip a payload byte: CRC must catch it.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto corrupt = HierarchicalIndex::Load(&net, path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), util::StatusCode::kCorruption);

  // A different network (node count mismatch) is rejected up front.
  ASSERT_TRUE(built.Save(path).ok());
  gen::RandomNetworkOptions other_opt;
  other_opt.seed = 13;
  other_opt.num_nodes = 41;
  const RoadNetwork other = gen::MakeRandomNetwork(other_opt);
  auto mismatched = HierarchicalIndex::Load(&other, path);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), util::StatusCode::kInvalidArgument);

  auto missing = HierarchicalIndex::Load(&net, path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(HierarchicalSerializationTest, EngineLoadsIndexFromPath) {
  gen::RandomNetworkOptions opt;
  opt.seed = 14;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalIndex built(&net, {.grid_dim = 2});
  const std::string path = ::testing::TempDir() + "/hier_engine.cfh";
  ASSERT_TRUE(built.Save(path).ok());

  EngineOptions opts;
  opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  opts.hierarchical_index_path = path;
  auto engine = FastestPathEngine::Create(&net, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE((*engine)->hierarchical_index(), nullptr);
  EXPECT_EQ((*engine)->hierarchical_index()->build_stats().transit_functions,
            built.build_stats().transit_functions);
  const AllFpResult result =
      (*engine)->AllFastestPaths({1, 30, HhMm(7, 0), HhMm(8, 0)});
  (void)result;  // Smoke: the loaded index serves queries without error.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capefp::core
