#include "src/core/hierarchical.h"

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/accessor.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::HhMm;
using tdf::PwlFunction;

class HierarchicalPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

// The headline property: the overlay border is the flat border, exactly.
TEST_P(HierarchicalPropertyTest, BorderEqualsFlatSearch) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 70;
  opt.extra_edge_fraction = 0.9;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalOptions options;
  options.grid_dim = 3;
  options.window_lo = 0.0;
  options.window_hi = 2.0 * tdf::kMinutesPerDay;
  HierarchicalIndex index(&net, options);
  EXPECT_GT(index.build_stats().transit_functions, 0u);

  util::Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(70));
    const auto t = static_cast<NodeId>(rng.NextBounded(70));
    const ProfileQuery query{s, t, HhMm(6, 0), HhMm(8, 0)};

    EuclideanEstimator flat_est(&acc, t);
    ProfileSearch flat(&acc, &flat_est);
    const AllFpResult expected = flat.RunAllFp(query);

    EuclideanEstimator hier_est(&acc, t);
    auto actual = index.RunAllFp(query, &hier_est);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual->found, expected.found) << "s=" << s << " t=" << t;
    if (!expected.found) continue;
    EXPECT_TRUE(PwlFunction::ApproxEqual(*actual->border, *expected.border,
                                         1e-6))
        << "s=" << s << " t=" << t << "\n  hier: "
        << actual->border->ToString()
        << "\n  flat: " << expected.border->ToString();
    // Partition sanity.
    ASSERT_FALSE(actual->pieces.empty());
    EXPECT_NEAR(actual->pieces.front().leave_lo, query.leave_lo, 1e-9);
    EXPECT_NEAR(actual->pieces.back().leave_hi, query.leave_hi, 1e-9);
    for (const HierarchicalPiece& piece : actual->pieces) {
      ASSERT_FALSE(piece.waypoints.empty());
      EXPECT_EQ(piece.waypoints.front(), s);
      EXPECT_EQ(piece.waypoints.back(), t);
    }
  }
}

TEST_P(HierarchicalPropertyTest, SingleFpMatchesFlat) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x99;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(50));
    const auto t = static_cast<NodeId>(rng.NextBounded(50));
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(9, 0)};

    EuclideanEstimator flat_est(&acc, t);
    ProfileSearch flat(&acc, &flat_est);
    const SingleFpResult expected = flat.RunSingleFp(query);

    EuclideanEstimator hier_est(&acc, t);
    auto actual = index.RunSingleFp(query, &hier_est);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(actual->found, expected.found);
    if (!expected.found) continue;
    EXPECT_NEAR(actual->best_travel_minutes, expected.best_travel_minutes,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalPropertyTest,
                         ::testing::Values(9, 31, 73, 155));

TEST(HierarchicalTest, SameFragmentQueriesWork) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  HierarchicalIndex index(&sn.network, {.grid_dim = 2});
  // Find two nodes in the same fragment.
  NodeId a = 0;
  NodeId b = network::kInvalidNode;
  for (size_t i = 1; i < sn.network.num_nodes(); ++i) {
    if (index.FragmentOf(static_cast<NodeId>(i)) == index.FragmentOf(a)) {
      b = static_cast<NodeId>(i);
      break;
    }
  }
  ASSERT_NE(b, network::kInvalidNode);
  const ProfileQuery query{a, b, HhMm(7, 0), HhMm(8, 0)};
  EuclideanEstimator flat_est(&acc, b);
  ProfileSearch flat(&acc, &flat_est);
  const AllFpResult expected = flat.RunAllFp(query);
  EuclideanEstimator hier_est(&acc, b);
  auto actual = index.RunAllFp(query, &hier_est);
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->found, expected.found);
  if (expected.found) {
    EXPECT_TRUE(
        PwlFunction::ApproxEqual(*actual->border, *expected.border, 1e-6));
  }
}

TEST(HierarchicalTest, SourceEqualsTarget) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  ZeroEstimator zero;
  auto result = index.RunAllFp({5, 5, 100.0, 160.0}, &zero);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_NEAR(result->border->MaxValue(), 0.0, 1e-12);
  ASSERT_EQ(result->pieces.size(), 1u);
  EXPECT_EQ(result->pieces[0].waypoints, (std::vector<NodeId>{5}));
}

TEST(HierarchicalTest, QueryOutsideWindowIsOutOfRange) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  HierarchicalOptions options;
  options.window_lo = HhMm(6, 0);
  options.window_hi = HhMm(10, 0);
  HierarchicalIndex index(&net, options);
  ZeroEstimator zero;
  auto result = index.RunAllFp({0, 5, HhMm(4, 0), HhMm(5, 0)}, &zero);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
}

TEST(HierarchicalTest, UnreachableTargetNotFound) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({10, 10});
  net.AddNode({0.1, 0.1});
  net.AddEdge(0, 2, 0.5, 0, network::RoadClass::kLocalInCity);
  net.AddEdge(1, 0, 15.0, 0, network::RoadClass::kLocalInCity);
  HierarchicalIndex index(&net, {.grid_dim = 2});
  ZeroEstimator zero;
  auto result = index.RunAllFp({0, 1, 0.0, 60.0}, &zero);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
}

TEST(HierarchicalTest, BuildStatsPopulated) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  HierarchicalIndex index(&sn.network, {.grid_dim = 3});
  const HierarchicalBuildStats& stats = index.build_stats();
  EXPECT_GT(stats.fragments_used, 1);
  EXPECT_GT(stats.transit_functions, 0u);
  EXPECT_GE(stats.transit_breakpoints, stats.transit_functions);
  EXPECT_GE(stats.build_seconds, 0.0);
}

}  // namespace
}  // namespace capefp::core
