#include "src/core/engine.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/capefp.h"  // Also verifies the umbrella header compiles.
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::core {
namespace {

using network::NodeId;
using tdf::HhMm;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : sn_(gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small())) {}
  gen::SuffolkNetwork sn_;
};

TEST_F(EngineTest, InMemoryQueriesWork) {
  auto engine = FastestPathEngine::Create(&sn_.network, {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->disk_backed());
  EXPECT_FALSE((*engine)->storage_stats().has_value());

  const auto t = static_cast<NodeId>(sn_.network.num_nodes() - 1);
  const AllFpResult all =
      (*engine)->AllFastestPaths({0, t, HhMm(7, 0), HhMm(8, 0)});
  ASSERT_TRUE(all.found);
  const SingleFpResult single =
      (*engine)->SingleFastestPath({0, t, HhMm(7, 0), HhMm(8, 0)});
  ASSERT_TRUE(single.found);
  EXPECT_NEAR(single.best_travel_minutes, all.border->MinValue(), 1e-9);
  const TdAStarResult at =
      (*engine)->FastestPathAt(0, t, HhMm(7, 30));
  ASSERT_TRUE(at.found);
  EXPECT_GE(at.travel_time_minutes, single.best_travel_minutes - 1e-9);
}

TEST_F(EngineTest, ArrivalQueriesWork) {
  auto engine = FastestPathEngine::Create(&sn_.network, {});
  ASSERT_TRUE(engine.ok());
  const auto t = static_cast<NodeId>(sn_.network.num_nodes() / 2);
  const ReverseAllFpResult all = (*engine)->ArrivalAllFastestPaths(
      {0, t, HhMm(8, 30), HhMm(9, 0)});
  const ReverseSingleFpResult single = (*engine)->ArrivalSingleFastestPath(
      {0, t, HhMm(8, 30), HhMm(9, 0)});
  ASSERT_TRUE(all.found);
  ASSERT_TRUE(single.found);
  EXPECT_NEAR(single.best_travel_minutes, all.border->MinValue(), 1e-7);
}

TEST_F(EngineTest, DiskBackedMatchesInMemory) {
  const std::string path = capefp::testing::UniqueTempPath("engine_test.ccam");
  EngineOptions disk_options;
  disk_options.ccam_path = path;
  auto disk = FastestPathEngine::Create(&sn_.network, disk_options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE((*disk)->disk_backed());
  auto memory = FastestPathEngine::Create(&sn_.network, {});
  ASSERT_TRUE(memory.ok());

  util::Rng rng(2);
  for (int trial = 0; trial < 3; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn_.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn_.network.num_nodes()));
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(9, 0)};
    const AllFpResult a = (*disk)->AllFastestPaths(query);
    const AllFpResult b = (*memory)->AllFastestPaths(query);
    ASSERT_EQ(a.found, b.found);
    if (!a.found) continue;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-9));
    ASSERT_EQ(a.pieces.size(), b.pieces.size());
  }
  ASSERT_TRUE((*disk)->storage_stats().has_value());
  EXPECT_GT((*disk)->storage_stats()->pool.faults +
                (*disk)->storage_stats()->pool.hits,
            0u);
  (*disk)->ResetStorageStats();
  EXPECT_EQ((*disk)->storage_stats()->pool.hits, 0u);
  std::remove(path.c_str());
}

TEST_F(EngineTest, EstimatorKindsAgreeOnAnswers) {
  const auto t = static_cast<NodeId>(sn_.network.num_nodes() - 3);
  const ProfileQuery query{1, t, HhMm(7, 0), HhMm(8, 30)};
  std::optional<double> reference;
  for (auto kind : {EngineOptions::EstimatorKind::kNaive,
                    EngineOptions::EstimatorKind::kBoundaryDistance,
                    EngineOptions::EstimatorKind::kBoundaryTravelTime}) {
    EngineOptions options;
    options.estimator = kind;
    options.boundary_grid_dim = 6;
    auto engine = FastestPathEngine::Create(&sn_.network, options);
    ASSERT_TRUE(engine.ok());
    const SingleFpResult single = (*engine)->SingleFastestPath(query);
    ASSERT_TRUE(single.found);
    if (!reference.has_value()) {
      reference = single.best_travel_minutes;
    } else {
      EXPECT_NEAR(single.best_travel_minutes, *reference, 1e-7);
    }
  }
}

TEST_F(EngineTest, BadCcamPathReportsError) {
  EngineOptions options;
  options.ccam_path = "/nonexistent-dir/engine.ccam";
  auto engine = FastestPathEngine::Create(&sn_.network, options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace capefp::core
