#include "src/core/constant_speed_solver.h"

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/gen/suffolk_generator.h"
#include "src/gen/table1_schema.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadClass;
using network::RoadNetwork;
using tdf::HhMm;

RoadNetwork MakeRushHourTrap() {
  // Two routes s -> t: a "highway" that is fast off-peak but crawls during
  // the rush, and a local road that is always medium.
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  const auto highway = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern(
          {{0.0, 1.0}, {HhMm(7, 0), 0.1}, {HhMm(10, 0), 1.0}})}));
  const auto local = net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(0.4));
  net.AddNode({0, 0});   // 0 = s
  net.AddNode({2, 1});   // 1 = highway midpoint
  net.AddNode({2, -1});  // 2 = local midpoint
  net.AddNode({4, 0});   // 3 = t
  net.AddBidirectionalEdge(0, 1, 2.5, highway, RoadClass::kInboundHighway);
  net.AddBidirectionalEdge(1, 3, 2.5, highway, RoadClass::kInboundHighway);
  net.AddBidirectionalEdge(0, 2, 2.5, local, RoadClass::kLocalOutsideCity);
  net.AddBidirectionalEdge(2, 3, 2.5, local, RoadClass::kLocalOutsideCity);
  return net;
}

TEST(ConstantSpeedSolverTest, PicksSpeedLimitRoute) {
  const RoadNetwork net = MakeRushHourTrap();
  InMemoryAccessor acc(&net);
  const ConstantSpeedResult r = ConstantSpeedRoute(&acc, 0, 3);
  ASSERT_TRUE(r.found);
  // At speed limits the highway (1 mpm) beats the local road (0.4 mpm).
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_NEAR(r.assumed_travel_minutes, 5.0, 1e-9);
}

TEST(ConstantSpeedSolverTest, RushHourMakesTheStaticRouteBad) {
  const RoadNetwork net = MakeRushHourTrap();
  InMemoryAccessor acc(&net);
  const ConstantSpeedResult route = ConstantSpeedRoute(&acc, 0, 3);
  ASSERT_TRUE(route.found);
  // During the rush, the chosen "fast" route actually takes 50 minutes;
  // the CapeCod-aware answer takes the local road at 12.5.
  const double rush = HhMm(8, 0);
  const double static_actual = EvaluatePathTravelTime(&acc, route.path, rush);
  EXPECT_NEAR(static_actual, 50.0, 1e-9);
  EuclideanEstimator est(&acc, 3);
  ProfileSearch search(&acc, &est);
  const SingleFpResult aware = search.RunSingleFp({0, 3, rush, rush});
  ASSERT_TRUE(aware.found);
  EXPECT_NEAR(aware.best_travel_minutes, 12.5, 1e-9);
  EXPECT_GT(static_actual / aware.best_travel_minutes, 1.5);
}

TEST(ConstantSpeedSolverTest, OffPeakStaticRouteIsOptimal) {
  const RoadNetwork net = MakeRushHourTrap();
  InMemoryAccessor acc(&net);
  const ConstantSpeedResult route = ConstantSpeedRoute(&acc, 0, 3);
  ASSERT_TRUE(route.found);
  const double night = HhMm(3, 0);
  EXPECT_NEAR(EvaluatePathTravelTime(&acc, route.path, night), 5.0, 1e-9);
}

TEST(ConstantSpeedSolverTest, CustomAssumption) {
  const RoadNetwork net = MakeRushHourTrap();
  InMemoryAccessor acc(&net);
  // Pessimistic assumption: everything crawls at the pattern *minimum* —
  // now the local road (constant 0.4) looks better than the highway (0.1).
  const ConstantSpeedResult r = ConstantSpeedRoute(
      &acc, 0, 3, [&acc](const network::NeighborEdge& edge) {
        return acc.Pattern(edge.pattern).min_speed();
      });
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 2, 3}));
}

TEST(ConstantSpeedSolverTest, UnreachableTarget) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddEdge(1, 0, 1.0, 0, RoadClass::kLocalInCity);
  InMemoryAccessor acc(&net);
  EXPECT_FALSE(ConstantSpeedRoute(&acc, 0, 1).found);
}

TEST(ConstantSpeedSolverTest, SuffolkRushHourImprovementIsSubstantial) {
  // The §6 comparison in miniature: across rush-hour commutes, CapeCod
  // routing should beat speed-limit routing by a clear margin on average.
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  util::Rng rng(12);
  double static_total = 0.0;
  double aware_total = 0.0;
  int measured = 0;
  for (int trial = 0; trial < 25 && measured < 15; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    if (s == t) continue;
    const ConstantSpeedResult route = ConstantSpeedRoute(&acc, s, t);
    if (!route.found) continue;
    const double leave = HhMm(8, 0);  // Workday morning rush.
    const double static_actual =
        EvaluatePathTravelTime(&acc, route.path, leave);
    ZeroEstimator zero;
    const TdAStarResult aware = TdAStar(&acc, s, t, leave, &zero);
    ASSERT_TRUE(aware.found);
    EXPECT_LE(aware.travel_time_minutes, static_actual + 1e-9);
    static_total += static_actual;
    aware_total += aware.travel_time_minutes;
    ++measured;
  }
  ASSERT_GT(measured, 5);
  EXPECT_LT(aware_total, static_total);
}

}  // namespace
}  // namespace capefp::core
