// Acceptance check of the arena refactor: a warm query loop on one Scratch
// reaches a steady state with zero fresh heap allocations from the PWL
// kernel — the arena's spill counter stops moving once every buffer has
// grown to its working-set size.
#include <vector>

#include <gtest/gtest.h>

#include "src/core/profile_search.h"
#include "src/core/reverse_profile_search.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"

namespace capefp::core {
namespace {

using network::NodeId;
using tdf::HhMm;

class ArenaSteadyStateTest : public ::testing::Test {
 protected:
  ArenaSteadyStateTest()
      : sn_(gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small())),
        accessor_(&sn_.network) {}

  std::vector<ProfileQuery> Queries() const {
    const auto n = static_cast<NodeId>(sn_.network.num_nodes());
    std::vector<ProfileQuery> queries;
    for (NodeId s = 0; s < n; s += n / 5) {
      queries.push_back({s, static_cast<NodeId>(n - 1 - s), HhMm(7, 0),
                         HhMm(8, 0)});
    }
    return queries;
  }

  gen::SuffolkNetwork sn_;
  network::InMemoryAccessor accessor_;
};

TEST_F(ArenaSteadyStateTest, WarmForwardSearchStopsSpilling) {
  ProfileSearch::Scratch scratch;
  ZeroEstimator estimator;
  const std::vector<ProfileQuery> queries = Queries();

  auto run_all = [&] {
    for (const ProfileQuery& q : queries) {
      ProfileSearch search(&accessor_, &estimator, {}, &scratch);
      const AllFpResult result = search.RunAllFp(q);
      ASSERT_TRUE(result.found);
    }
  };

  run_all();  // Cold pass: buffers grow, spills accumulate.
  const uint64_t cold_spills = scratch.arena.stats().spills;
  EXPECT_GT(cold_spills, 0u);

  run_all();  // Warm pass: identical workload, everything recycled.
  EXPECT_EQ(scratch.arena.stats().spills, cold_spills)
      << "a warm ProfileSearch pass must make zero fresh heap allocations "
         "through the arena";
  // Note: block_reuses may legitimately stay 0 here — on this small
  // workload every label function fits the 8-breakpoint inline buffer and
  // only the pooled scratch vectors cycle through the arena.
}

TEST_F(ArenaSteadyStateTest, WarmReverseSearchStopsSpilling) {
  ReverseProfileSearch::Scratch scratch;
  ZeroEstimator estimator;

  auto run_all = [&] {
    const auto n = static_cast<NodeId>(sn_.network.num_nodes());
    for (NodeId s = 0; s < n; s += n / 5) {
      ReverseProfileSearch search(&sn_.network, &estimator, {}, &scratch);
      const ReverseAllFpResult result = search.RunAllFp(
          {s, static_cast<NodeId>(n - 1 - s), HhMm(8, 0), HhMm(9, 0)});
      ASSERT_TRUE(result.found);
    }
  };

  run_all();
  const uint64_t cold_spills = scratch.arena.stats().spills;
  run_all();
  EXPECT_EQ(scratch.arena.stats().spills, cold_spills)
      << "a warm ReverseProfileSearch pass must make zero fresh heap "
         "allocations through the arena";
}

// The scratch path and the scratch-free path must produce bit-identical
// results (the determinism contract the parallel batch relies on).
TEST_F(ArenaSteadyStateTest, ScratchDoesNotChangeResults) {
  ProfileSearch::Scratch scratch;
  ZeroEstimator estimator;
  for (const ProfileQuery& q : Queries()) {
    ProfileSearch with_scratch(&accessor_, &estimator, {}, &scratch);
    ProfileSearch without(&accessor_, &estimator, {});
    const AllFpResult a = with_scratch.RunAllFp(q);
    const AllFpResult b = without.RunAllFp(q);
    ASSERT_EQ(a.found, b.found);
    ASSERT_TRUE(a.found);
    ASSERT_EQ(a.pieces.size(), b.pieces.size());
    for (size_t i = 0; i < a.pieces.size(); ++i) {
      EXPECT_EQ(a.pieces[i].leave_lo, b.pieces[i].leave_lo);
      EXPECT_EQ(a.pieces[i].leave_hi, b.pieces[i].leave_hi);
      EXPECT_EQ(a.pieces[i].path, b.pieces[i].path);
    }
    ASSERT_EQ(a.border->breakpoints().size(), b.border->breakpoints().size());
    for (size_t i = 0; i < a.border->breakpoints().size(); ++i) {
      EXPECT_EQ(a.border->breakpoints()[i].x, b.border->breakpoints()[i].x);
      EXPECT_EQ(a.border->breakpoints()[i].y, b.border->breakpoints()[i].y);
    }
  }
}

}  // namespace
}  // namespace capefp::core
