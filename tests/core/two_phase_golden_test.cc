// Golden contract of the two-phase hierarchical mode (DESIGN.md §9): on
// the paper's own workloads, the two-phase engine's allFP answers are
// bit-identical to the flat engine's — same borders, same partitions, same
// winning paths.
//
// Workload 1: the §4 running example (Figure 2), where the expected border
// is known in closed form.
// Workload 2: a scaled-down Fig. 9 §6.2 workload — a Suffolk-style
// network, morning-rush query interval, source/target pairs sampled across
// Euclidean distance buckets.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/profile_search.h"
#include "src/gen/suffolk_generator.h"
#include "src/network/road_network.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::NodeId;
using network::RoadClass;
using network::RoadNetwork;
using tdf::HhMm;
using tdf::PwlFunction;

constexpr NodeId kS = 0;
constexpr NodeId kE = 1;
constexpr NodeId kN = 2;

// The Figure 2 network of §4.3-§4.6 (same construction as
// paper_example_test.cc).
RoadNetwork MakeFigure2Network() {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  const auto pat_se = net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  const auto pat_sn = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0 / 3.0}, {HhMm(7, 0), 1.0}})}));
  const auto pat_ne = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0 / 3.0}, {HhMm(7, 8), 0.1}})}));
  net.AddNode({0.0, 0.0});  // s
  net.AddNode({3.0, 0.0});  // e
  net.AddNode({2.0, 0.0});  // n
  net.AddEdge(kS, kE, 6.0, pat_se, RoadClass::kLocalInCity);
  net.AddEdge(kS, kN, 2.0, pat_sn, RoadClass::kLocalInCity);
  net.AddEdge(kN, kE, 1.0, pat_ne, RoadClass::kLocalInCity);
  return net;
}

void ExpectBitIdentical(const AllFpResult& actual, const AllFpResult& expected,
                        const ProfileQuery& query) {
  ASSERT_EQ(actual.found, expected.found)
      << "s=" << query.source << " t=" << query.target;
  if (!expected.found) return;
  ASSERT_TRUE(actual.border.has_value());
  // Zero tolerance: the corridor must not perturb the exact search at all.
  EXPECT_TRUE(PwlFunction::ApproxEqual(*actual.border, *expected.border, 0.0))
      << "s=" << query.source << " t=" << query.target
      << "\n  two-phase: " << actual.border->ToString()
      << "\n  flat:      " << expected.border->ToString();
  ASSERT_EQ(actual.pieces.size(), expected.pieces.size());
  for (size_t i = 0; i < actual.pieces.size(); ++i) {
    EXPECT_EQ(actual.pieces[i].leave_lo, expected.pieces[i].leave_lo);
    EXPECT_EQ(actual.pieces[i].leave_hi, expected.pieces[i].leave_hi);
    EXPECT_EQ(actual.pieces[i].path, expected.pieces[i].path);
  }
}

TEST(TwoPhaseGoldenTest, Section4WorkedExample) {
  const RoadNetwork net = MakeFigure2Network();

  EngineOptions flat_opts;
  auto flat = FastestPathEngine::Create(&net, flat_opts);
  ASSERT_TRUE(flat.ok());

  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 2;
  hier_opts.hierarchical.window_lo = 0.0;
  hier_opts.hierarchical.window_hi = 2.0 * tdf::kMinutesPerDay;
  auto hier = FastestPathEngine::Create(&net, hier_opts);
  ASSERT_TRUE(hier.ok());

  const ProfileQuery query{kS, kE, HhMm(6, 50), HhMm(7, 5)};
  const AllFpResult expected = (*flat)->AllFastestPaths(query);
  const AllFpResult actual = (*hier)->AllFastestPaths(query);
  ExpectBitIdentical(actual, expected, query);

  // And against the paper's published numbers, not just against flat: the
  // three-piece partition s->e / s->n->e / s->e with the 5-minute optimum.
  ASSERT_TRUE(actual.found);
  ASSERT_EQ(actual.pieces.size(), 3u);
  EXPECT_EQ(actual.pieces[0].path, (std::vector<NodeId>{kS, kE}));
  EXPECT_EQ(actual.pieces[1].path, (std::vector<NodeId>{kS, kN, kE}));
  EXPECT_EQ(actual.pieces[2].path, (std::vector<NodeId>{kS, kE}));
  EXPECT_NEAR(actual.border->MinValue(), 5.0, 1e-9);
}

TEST(TwoPhaseGoldenTest, Fig9WorkloadBordersBitIdentical) {
  // Scaled-down §6.2 geometry (the full bench network is too slow for a
  // tier-1 test) with the Fig. 9 query recipe: morning-rush interval,
  // source/target pairs spread across distance buckets.
  gen::SuffolkOptions options;
  options.seed = 7;
  options.extent_miles = 4.0;
  options.city_radius_miles = 1.0;
  options.suburb_spacing_miles = 0.35;
  options.target_segments = 0;
  options.num_highways = 4;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);

  EngineOptions flat_opts;
  auto flat = FastestPathEngine::Create(&sn.network, flat_opts);
  ASSERT_TRUE(flat.ok());

  EngineOptions hier_opts;
  hier_opts.query_mode = EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = 4;
  hier_opts.hierarchical.window_lo = HhMm(5, 0);
  hier_opts.hierarchical.window_hi = HhMm(14, 0);
  auto hier = FastestPathEngine::Create(&sn.network, hier_opts);
  ASSERT_TRUE(hier.ok());

  // Distance-bucketed pairs as in Fig. 9: deterministic in the seed.
  const auto n = static_cast<uint64_t>(sn.network.num_nodes());
  util::Rng rng(1);
  int accepted = 0;
  for (int attempt = 0; attempt < 4000 && accepted < 12; ++attempt) {
    const auto s = static_cast<NodeId>(rng.NextBounded(n));
    const auto t = static_cast<NodeId>(rng.NextBounded(n));
    if (s == t) continue;
    const double miles = geo::EuclideanDistance(sn.network.location(s),
                                                sn.network.location(t));
    // Round-robin the buckets [0.5,1.5), [1.5,2.5), [2.5,3.5).
    const int want_bucket = accepted % 3;
    if (miles < 0.5 + want_bucket || miles >= 1.5 + want_bucket) continue;
    ++accepted;
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(10, 0)};
    const AllFpResult expected = (*flat)->AllFastestPaths(query);
    const AllFpResult actual = (*hier)->AllFastestPaths(query);
    ExpectBitIdentical(actual, expected, query);
  }
  ASSERT_GE(accepted, 9) << "workload sampling starved";
  // The corridor must actually have restricted the searches: with the
  // whole-graph corridor this test would still pass, but then the mode is
  // pointless — catch that regression here via the engine's own metrics.
  const auto snapshot = (*hier)->metrics()->Snapshot();
  EXPECT_EQ(snapshot.counter("capefp.hier.fallbacks"), 0u);
  EXPECT_GT(snapshot.counter("capefp.search.pruned_filtered"), 0u);
}

}  // namespace
}  // namespace capefp::core
