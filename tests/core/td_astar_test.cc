#include "src/core/td_astar.h"

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadClass;
using network::RoadNetwork;
using tdf::HhMm;

RoadNetwork MakeDiamond() {
  // s -> a -> t (fast in the morning), s -> b -> t (always medium).
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  const auto fast_then_slow = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0}, {HhMm(7, 0), 0.1}})}));
  const auto medium = net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(0.5));
  net.AddNode({0, 0});   // 0 = s
  net.AddNode({1, 1});   // 1 = a
  net.AddNode({1, -1});  // 2 = b
  net.AddNode({2, 0});   // 3 = t
  net.AddEdge(0, 1, 1.5, fast_then_slow, RoadClass::kLocalInCity);
  net.AddEdge(1, 3, 1.5, fast_then_slow, RoadClass::kLocalInCity);
  net.AddEdge(0, 2, 1.5, medium, RoadClass::kLocalInCity);
  net.AddEdge(2, 3, 1.5, medium, RoadClass::kLocalInCity);
  return net;
}

TEST(TdAStarTest, PicksRouteByDepartureTime) {
  const RoadNetwork net = MakeDiamond();
  InMemoryAccessor acc(&net);
  ZeroEstimator zero;
  // Early morning: via a takes 3 min, via b takes 6.
  const TdAStarResult early = TdAStar(&acc, 0, 3, HhMm(5, 0), &zero);
  ASSERT_TRUE(early.found);
  EXPECT_EQ(early.path, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_NEAR(early.travel_time_minutes, 3.0, 1e-9);
  // After 7:00 the a-route collapses to 30 min; b wins with 6.
  const TdAStarResult late = TdAStar(&acc, 0, 3, HhMm(8, 0), &zero);
  ASSERT_TRUE(late.found);
  EXPECT_EQ(late.path, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_NEAR(late.travel_time_minutes, 6.0, 1e-9);
}

TEST(TdAStarTest, SourceEqualsTarget) {
  const RoadNetwork net = MakeDiamond();
  InMemoryAccessor acc(&net);
  ZeroEstimator zero;
  const TdAStarResult r = TdAStar(&acc, 2, 2, 100.0, &zero);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path, (std::vector<NodeId>{2}));
  EXPECT_NEAR(r.travel_time_minutes, 0.0, 1e-12);
}

TEST(TdAStarTest, UnreachableTarget) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddEdge(1, 0, 1.0, 0, RoadClass::kLocalInCity);  // Only 1 -> 0.
  InMemoryAccessor acc(&net);
  ZeroEstimator zero;
  const TdAStarResult r = TdAStar(&acc, 0, 1, 0.0, &zero);
  EXPECT_FALSE(r.found);
}

TEST(TdAStarTest, EvaluatePathMatchesSearchResult) {
  const RoadNetwork net = MakeDiamond();
  InMemoryAccessor acc(&net);
  ZeroEstimator zero;
  for (double leave : {HhMm(5, 0), HhMm(6, 58), HhMm(8, 0)}) {
    const TdAStarResult r = TdAStar(&acc, 0, 3, leave, &zero);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(EvaluatePathTravelTime(&acc, r.path, leave),
                r.travel_time_minutes, 1e-9);
  }
}

class TdAStarPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TdAStarPropertyTest, EstimatorsPreserveOptimalityAndCutWork) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 150;
  opt.extra_edge_fraction = 1.2;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  const BoundaryNodeIndex index(
      net, {.grid_dim = 5, .mode = BoundaryIndexOptions::Mode::kTravelTime});
  util::Rng rng(GetParam() ^ 0xdead);
  int64_t dijkstra_pops = 0;
  int64_t astar_pops = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(150));
    const auto t = static_cast<NodeId>(rng.NextBounded(150));
    const double leave = rng.NextDouble(0.0, tdf::kMinutesPerDay);
    ZeroEstimator zero;
    EuclideanEstimator euclid(&acc, t);
    BoundaryNodeEstimator bd(&index, &acc, t);
    const TdAStarResult truth = TdAStar(&acc, s, t, leave, &zero);
    const TdAStarResult with_euclid = TdAStar(&acc, s, t, leave, &euclid);
    const TdAStarResult with_bd = TdAStar(&acc, s, t, leave, &bd);
    ASSERT_EQ(truth.found, with_euclid.found);
    ASSERT_EQ(truth.found, with_bd.found);
    if (!truth.found) continue;
    EXPECT_NEAR(with_euclid.travel_time_minutes, truth.travel_time_minutes,
                1e-7);
    EXPECT_NEAR(with_bd.travel_time_minutes, truth.travel_time_minutes,
                1e-7);
    dijkstra_pops += truth.expanded_nodes;
    astar_pops += with_bd.expanded_nodes;
  }
  // In aggregate the informed search must not expand more nodes.
  EXPECT_LE(astar_pops, dijkstra_pops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdAStarPropertyTest,
                         ::testing::Values(2, 13, 77, 301));

TEST(TdAStarTest, SuffolkRushHourDetoursExist) {
  // On the Suffolk-style network, at least some inbound commutes should
  // take different routes at 3 am vs 8 am on a workday.
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  ZeroEstimator zero;
  util::Rng rng(4);
  int different_routes = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const TdAStarResult night = TdAStar(&acc, s, t, HhMm(3, 0), &zero);
    const TdAStarResult rush = TdAStar(&acc, s, t, HhMm(8, 0), &zero);
    if (!night.found || !rush.found) continue;
    EXPECT_LE(night.travel_time_minutes, rush.travel_time_minutes + 1e-9);
    if (night.path != rush.path) ++different_routes;
  }
  EXPECT_GT(different_routes, 0);
}

}  // namespace
}  // namespace capefp::core
