#include "src/core/profile_envelope.h"

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/gen/random_network.h"
#include "src/network/accessor.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::HhMm;
using tdf::PwlFunction;

class EnvelopePropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The envelope at the target must equal the allFP lower border — two
// independently implemented algorithms computing the same object.
TEST_P(EnvelopePropertyTest, EnvelopeAtTargetEqualsAllFpBorder) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam() ^ 0x77);
  const auto s = static_cast<NodeId>(rng.NextBounded(40));
  auto t = static_cast<NodeId>(rng.NextBounded(40));
  if (t == s) t = static_cast<NodeId>((t + 1) % 40);
  const double lo = HhMm(6, 0);
  const double hi = HhMm(8, 0);

  const auto envelope = SingleSourceProfile(net, s, lo, hi);
  EuclideanEstimator est(&acc, t);
  ProfileSearch search(&acc, &est);
  const AllFpResult all = search.RunAllFp({s, t, lo, hi});

  ASSERT_TRUE(all.found);
  const auto it = envelope.find(t);
  ASSERT_NE(it, envelope.end());
  EXPECT_TRUE(PwlFunction::ApproxEqual(it->second, *all.border, 1e-6))
      << it->second.ToString() << " vs " << all.border->ToString();
}

// The target-anchored profile, converted to departure form, must agree
// with direct forward evaluation.
TEST_P(EnvelopePropertyTest, TargetProfileConvertsToForwardTravelTimes) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x3131;
  opt.num_nodes = 30;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto t = static_cast<NodeId>(rng.NextBounded(30));
  const double window_lo = HhMm(5, 0);
  const double window_hi = HhMm(12, 0);

  const auto arrival_profiles =
      SingleTargetProfile(net, t, window_lo, window_hi);
  ZeroEstimator zero;
  int checked = 0;
  for (const auto& [node, arrival_fn] : arrival_profiles) {
    if (node == t || checked >= 6) continue;
    const auto departure_fn = DepartureFunctionFromArrival(arrival_fn);
    if (!departure_fn.has_value()) continue;
    ++checked;
    // Sample strictly inside the converted domain.
    const double dlo = departure_fn->domain_lo();
    const double dhi = departure_fn->domain_hi();
    for (int i = 1; i < 8; ++i) {
      const double l = dlo + (dhi - dlo) * i / 8.0;
      const TdAStarResult truth = TdAStar(&acc, node, t, l, &zero);
      ASSERT_TRUE(truth.found);
      EXPECT_NEAR(departure_fn->Value(l), truth.travel_time_minutes, 1e-6)
          << "node " << node << " l=" << l;
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopePropertyTest,
                         ::testing::Values(4, 18, 52, 97));

TEST(EnvelopeTest, SourceMapsToZeroFunction) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 15;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  const auto envelope = SingleSourceProfile(net, 3, 100.0, 200.0);
  const auto it = envelope.find(3);
  ASSERT_NE(it, envelope.end());
  EXPECT_NEAR(it->second.MaxValue(), 0.0, 1e-12);
  // Every node of this connected network is reached.
  EXPECT_EQ(envelope.size(), net.num_nodes());
}

TEST(EnvelopeTest, AllowedMaskRestrictsReach) {
  // Path 0 -> 1 -> 2; masking out node 1 cuts node 2 off.
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddNode({2, 0});
  net.AddEdge(0, 1, 1.0, 0, network::RoadClass::kLocalInCity);
  net.AddEdge(1, 2, 1.0, 0, network::RoadClass::kLocalInCity);
  std::vector<bool> allowed = {true, false, true};
  EnvelopeOptions options;
  options.allowed = &allowed;
  const auto envelope = SingleSourceProfile(net, 0, 0.0, 60.0, options);
  EXPECT_EQ(envelope.size(), 1u);  // Only the source.
  const auto unrestricted = SingleSourceProfile(net, 0, 0.0, 60.0);
  EXPECT_EQ(unrestricted.size(), 3u);
  EXPECT_NEAR(unrestricted.at(2).Value(30.0), 2.0, 1e-9);
}

TEST(EnvelopeTest, DepartureConversionHandlesDegenerateDomain) {
  // A single-point arrival function cannot be converted.
  const PwlFunction point({{100.0, 5.0}});
  EXPECT_FALSE(DepartureFunctionFromArrival(point).has_value());
  // A proper function converts and inverts correctly: R(a) = 2 constant
  // means τ(l) = 2 on [98, 198].
  const PwlFunction constant = PwlFunction::Constant(100.0, 200.0, 2.0);
  const auto converted = DepartureFunctionFromArrival(constant);
  ASSERT_TRUE(converted.has_value());
  EXPECT_NEAR(converted->domain_lo(), 98.0, 1e-12);
  EXPECT_NEAR(converted->domain_hi(), 198.0, 1e-12);
  EXPECT_NEAR(converted->Value(150.0), 2.0, 1e-12);
}

TEST(EnvelopeTest, ExpansionCapStopsEarly) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 60;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  EnvelopeOptions options;
  options.max_expansions = 2;
  const auto envelope = SingleSourceProfile(net, 0, 0.0, 60.0, options);
  EXPECT_LT(envelope.size(), net.num_nodes());
}

}  // namespace
}  // namespace capefp::core
