#include "src/core/profile_search.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::HhMm;

// ---------------------------------------------------------------------------
// Cross-validation: the allFP border must equal an independent
// time-dependent Dijkstra at every sampled leaving instant, and the
// per-piece paths must realize the border.

class ProfileCrossValidationTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ProfileCrossValidationTest, BorderMatchesPointwiseDijkstra) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 60;
  opt.extra_edge_fraction = 0.8;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam() ^ 0xf00d);

  for (int trial = 0; trial < 4; ++trial) {
    const auto s = static_cast<NodeId>(rng.NextBounded(60));
    const auto t = static_cast<NodeId>(rng.NextBounded(60));
    if (s == t) continue;
    const double lo = rng.NextDouble(0.0, tdf::kMinutesPerDay);
    const double hi = lo + rng.NextDouble(10.0, 180.0);

    EuclideanEstimator est(&acc, t);
    ProfileSearch search(&acc, &est);
    const AllFpResult all = search.RunAllFp({s, t, lo, hi});
    ASSERT_TRUE(all.found);
    ASSERT_TRUE(all.border.has_value());

    ZeroEstimator zero;
    for (int i = 0; i <= 60; ++i) {
      const double l = lo + (hi - lo) * i / 60.0;
      const TdAStarResult truth = TdAStar(&acc, s, t, l, &zero);
      ASSERT_TRUE(truth.found);
      EXPECT_NEAR(all.border->Value(l), truth.travel_time_minutes, 1e-6)
          << "l=" << l << " s=" << s << " t=" << t;
    }
  }
}

TEST_P(ProfileCrossValidationTest, PiecePathsRealizeTheBorder) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x1111;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(50));
  auto t = static_cast<NodeId>(rng.NextBounded(50));
  if (t == s) t = static_cast<NodeId>((t + 1) % 50);
  const double lo = HhMm(6, 0);
  const double hi = HhMm(9, 0);

  EuclideanEstimator est(&acc, t);
  ProfileSearch search(&acc, &est);
  const AllFpResult all = search.RunAllFp({s, t, lo, hi});
  ASSERT_TRUE(all.found);

  // Partition properties (Definition 4).
  ASSERT_FALSE(all.pieces.empty());
  EXPECT_NEAR(all.pieces.front().leave_lo, lo, 1e-9);
  EXPECT_NEAR(all.pieces.back().leave_hi, hi, 1e-9);
  for (size_t i = 0; i < all.pieces.size(); ++i) {
    const AllFpPiece& piece = all.pieces[i];
    EXPECT_LT(piece.leave_lo, piece.leave_hi + 1e-9);
    EXPECT_EQ(piece.path.front(), s);
    EXPECT_EQ(piece.path.back(), t);
    if (i > 0) {
      EXPECT_NEAR(all.pieces[i - 1].leave_hi, piece.leave_lo, 1e-9);
      EXPECT_NE(all.pieces[i - 1].path, piece.path);
    }
    // The piece's path must achieve the border inside its interval.
    for (double frac : {0.25, 0.5, 0.75}) {
      const double l = piece.leave_lo + frac * (piece.leave_hi - piece.leave_lo);
      EXPECT_NEAR(EvaluatePathTravelTime(&acc, piece.path, l),
                  all.border->Value(l), 1e-6);
    }
  }
}

TEST_P(ProfileCrossValidationTest, SingleFpMatchesDenseSampling) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x2222;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(40));
  auto t = static_cast<NodeId>(rng.NextBounded(40));
  if (t == s) t = static_cast<NodeId>((t + 1) % 40);
  const double lo = HhMm(7, 0);
  const double hi = HhMm(8, 0);

  EuclideanEstimator est(&acc, t);
  ProfileSearch search(&acc, &est);
  const SingleFpResult single = search.RunSingleFp({s, t, lo, hi});
  ASSERT_TRUE(single.found);

  ZeroEstimator zero;
  double best = 1e18;
  for (int i = 0; i <= 600; ++i) {
    const double l = lo + (hi - lo) * i / 600.0;
    const TdAStarResult truth = TdAStar(&acc, s, t, l, &zero);
    ASSERT_TRUE(truth.found);
    best = std::min(best, truth.travel_time_minutes);
    // singleFP must lower-bound every instant's true fastest time.
    EXPECT_LE(single.best_travel_minutes, truth.travel_time_minutes + 1e-6);
  }
  // Dense sampling approaches the continuous optimum (functions are pw
  // linear, so the sampled min can only exceed it slightly).
  EXPECT_NEAR(single.best_travel_minutes, best, 0.5);
  // And the reported optimum is consistent with its own path.
  EXPECT_NEAR(
      EvaluatePathTravelTime(&acc, single.path, single.best_leave_time),
      single.best_travel_minutes, 1e-6);
}

TEST_P(ProfileCrossValidationTest, PruningOnOffGiveIdenticalBorders) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x3333;
  opt.num_nodes = 30;
  opt.extra_edge_fraction = 0.7;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(30));
  auto t = static_cast<NodeId>(rng.NextBounded(30));
  if (t == s) t = static_cast<NodeId>((t + 1) % 30);

  EuclideanEstimator est1(&acc, t);
  ProfileSearch pruned(&acc, &est1);
  const AllFpResult with = pruned.RunAllFp({s, t, 400.0, 480.0});

  EuclideanEstimator est2(&acc, t);
  ProfileSearchOptions options;
  options.dominance_pruning = false;
  options.max_expansions = 2'000'000;
  ProfileSearch unpruned(&acc, &est2, options);
  const AllFpResult without = unpruned.RunAllFp({s, t, 400.0, 480.0});

  ASSERT_TRUE(with.found);
  ASSERT_TRUE(without.found);
  ASSERT_FALSE(without.stats.hit_expansion_cap);
  EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*with.border, *without.border,
                                            1e-6));
  EXPECT_LE(with.stats.expansions, without.stats.expansions);
}

TEST_P(ProfileCrossValidationTest, PointwiseBoundPruningPreservesAnswers) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x4444;
  opt.num_nodes = 45;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(45));
  auto t = static_cast<NodeId>(rng.NextBounded(45));
  if (t == s) t = static_cast<NodeId>((t + 1) % 45);
  const ProfileQuery query{s, t, 420.0, 560.0};

  EuclideanEstimator est1(&acc, t);
  ProfileSearch plain(&acc, &est1);
  const AllFpResult a = plain.RunAllFp(query);

  EuclideanEstimator est2(&acc, t);
  ProfileSearchOptions options;
  options.pointwise_bound_pruning = true;
  ProfileSearch tighter(&acc, &est2, options);
  const AllFpResult b = tighter.RunAllFp(query);

  ASSERT_EQ(a.found, b.found);
  if (!a.found) return;
  EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-6));
  ASSERT_EQ(a.pieces.size(), b.pieces.size());
  for (size_t i = 0; i < a.pieces.size(); ++i) {
    EXPECT_EQ(a.pieces[i].path, b.pieces[i].path);
  }
  EXPECT_LE(b.stats.expansions, a.stats.expansions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileCrossValidationTest,
                         ::testing::Values(5, 23, 57, 91, 137));

// ---------------------------------------------------------------------------
// Estimator and accessor equivalences.

TEST(ProfileSearchTest, BoundaryEstimatorGivesSameBorderAsNaive) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  const BoundaryNodeIndex index(sn.network, {.grid_dim = 8});
  util::Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const ProfileQuery query{s, t, HhMm(7, 0), HhMm(9, 0)};

    EuclideanEstimator naive(&acc, t);
    ProfileSearch naive_search(&acc, &naive);
    const AllFpResult a = naive_search.RunAllFp(query);

    BoundaryNodeEstimator bd(&index, &acc, t);
    ProfileSearch bd_search(&acc, &bd);
    const AllFpResult b = bd_search.RunAllFp(query);

    ASSERT_EQ(a.found, b.found);
    if (!a.found) continue;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-6));
    // The tighter estimator can only help.
    EXPECT_LE(b.stats.expansions, a.stats.expansions);
  }
}

TEST(ProfileSearchTest, CcamAccessorGivesIdenticalResults) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::string path = capefp::testing::UniqueTempPath("profile_ccam.db");
  ASSERT_TRUE(storage::BuildCcamFile(sn.network, path, {}).ok());
  auto store_or = storage::CcamStore::Open(path);
  ASSERT_TRUE(store_or.ok());
  storage::CcamAccessor disk(store_or->get());
  InMemoryAccessor mem(&sn.network);

  util::Rng rng(8);
  for (int trial = 0; trial < 4; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const ProfileQuery query{s, t, HhMm(7, 30), HhMm(8, 30)};

    EuclideanEstimator est_mem(&mem, t);
    ProfileSearch search_mem(&mem, &est_mem);
    const AllFpResult a = search_mem.RunAllFp(query);

    EuclideanEstimator est_disk(&disk, t);
    ProfileSearch search_disk(&disk, &est_disk);
    const AllFpResult b = search_disk.RunAllFp(query);

    ASSERT_EQ(a.found, b.found);
    if (!a.found) continue;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-9));
    ASSERT_EQ(a.pieces.size(), b.pieces.size());
    for (size_t i = 0; i < a.pieces.size(); ++i) {
      EXPECT_EQ(a.pieces[i].path, b.pieces[i].path);
    }
    EXPECT_EQ(a.stats.expansions, b.stats.expansions);
    // The disk run actually touched pages.
    EXPECT_GT(store_or->get()->stats().pool.faults +
                  store_or->get()->stats().pool.hits,
              0u);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Edge cases.

TEST(ProfileSearchTest, SourceEqualsTarget) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 10;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  EuclideanEstimator est(&acc, 4);
  ProfileSearch search(&acc, &est);
  const SingleFpResult single = search.RunSingleFp({4, 4, 100.0, 160.0});
  ASSERT_TRUE(single.found);
  EXPECT_EQ(single.path, (std::vector<NodeId>{4}));
  EXPECT_NEAR(single.best_travel_minutes, 0.0, 1e-12);
  const AllFpResult all = search.RunAllFp({4, 4, 100.0, 160.0});
  ASSERT_TRUE(all.found);
  ASSERT_EQ(all.pieces.size(), 1u);
  EXPECT_NEAR(all.border->MaxValue(), 0.0, 1e-12);
}

TEST(ProfileSearchTest, UnreachableTargetReportsNotFound) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddNode({2, 0});
  net.AddEdge(0, 1, 1.0, 0, network::RoadClass::kLocalInCity);
  net.AddEdge(2, 1, 1.0, 0, network::RoadClass::kLocalInCity);
  InMemoryAccessor acc(&net);
  EuclideanEstimator est(&acc, 2);
  ProfileSearch search(&acc, &est);
  EXPECT_FALSE(search.RunSingleFp({0, 2, 0.0, 60.0}).found);
  EXPECT_FALSE(search.RunAllFp({0, 2, 0.0, 60.0}).found);
}

TEST(ProfileSearchTest, InstantIntervalDegradesToFixedDeparture) {
  gen::RandomNetworkOptions opt;
  opt.seed = 55;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  EuclideanEstimator est(&acc, 30);
  ProfileSearch search(&acc, &est);
  const SingleFpResult single = search.RunSingleFp({2, 30, 500.0, 500.0});
  ZeroEstimator zero;
  const TdAStarResult truth = TdAStar(&acc, 2, 30, 500.0, &zero);
  ASSERT_EQ(single.found, truth.found);
  if (truth.found) {
    EXPECT_NEAR(single.best_travel_minutes, truth.travel_time_minutes, 1e-7);
  }
}

TEST(ProfileSearchTest, ExpansionCapTriggers) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  EuclideanEstimator est(&acc, 0);
  ProfileSearchOptions options;
  options.max_expansions = 3;
  ProfileSearch search(&acc, &est,
                       options);
  const auto far_node =
      static_cast<NodeId>(sn.network.num_nodes() - 1);
  const AllFpResult all =
      search.RunAllFp({far_node, 0, HhMm(7, 0), HhMm(8, 0)});
  EXPECT_TRUE(all.stats.hit_expansion_cap);
}

TEST(ProfileSearchTest, StatsArePopulated) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor acc(&sn.network);
  const auto t = static_cast<NodeId>(sn.network.num_nodes() / 2);
  EuclideanEstimator est(&acc, t);
  ProfileSearch search(&acc, &est);
  const AllFpResult all = search.RunAllFp({0, t, HhMm(7, 0), HhMm(8, 0)});
  if (!all.found) GTEST_SKIP() << "unreachable pair";
  EXPECT_GT(all.stats.expansions, 0);
  EXPECT_GT(all.stats.pushes, all.stats.expansions / 4);
  EXPECT_GE(all.stats.expansions, all.stats.distinct_nodes);
}

}  // namespace
}  // namespace capefp::core
