#include "src/core/lower_border.h"

#include <gtest/gtest.h>

namespace capefp::core {
namespace {

using tdf::PwlFunction;

TEST(LowerBorderTest, EmptyUntilFirstMerge) {
  LowerBorder border(0.0, 10.0);
  EXPECT_TRUE(border.empty());
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 1);
  EXPECT_FALSE(border.empty());
  EXPECT_DOUBLE_EQ(border.MaxValue(), 5.0);
  ASSERT_EQ(border.pieces().size(), 1u);
  EXPECT_EQ(border.pieces()[0].tag, 1);
}

TEST(LowerBorderTest, CrossingSplitsPieces) {
  LowerBorder border(0.0, 10.0);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 1);
  // Tag 2 wins on [0, 4): below 5 before x=4.
  border.Merge(PwlFunction({{0.0, 1.0}, {10.0, 11.0}}), 2);
  ASSERT_EQ(border.pieces().size(), 2u);
  EXPECT_EQ(border.pieces()[0].tag, 2);
  EXPECT_NEAR(border.pieces()[0].hi, 4.0, 1e-9);
  EXPECT_EQ(border.pieces()[1].tag, 1);
  EXPECT_NEAR(border.pieces()[1].lo, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(border.Value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(border.Value(10.0), 5.0);
  EXPECT_DOUBLE_EQ(border.MaxValue(), 5.0);
}

TEST(LowerBorderTest, TieKeepsEarlierTag) {
  LowerBorder border(0.0, 10.0);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 1);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 2);
  ASSERT_EQ(border.pieces().size(), 1u);
  EXPECT_EQ(border.pieces()[0].tag, 1);
}

TEST(LowerBorderTest, WorseFunctionChangesNothing) {
  LowerBorder border(0.0, 10.0);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 1);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 9.0), 2);
  ASSERT_EQ(border.pieces().size(), 1u);
  EXPECT_EQ(border.pieces()[0].tag, 1);
  EXPECT_DOUBLE_EQ(border.MaxValue(), 5.0);
}

TEST(LowerBorderTest, VShapeCreatesThreePieces) {
  LowerBorder border(0.0, 10.0);
  border.Merge(PwlFunction::Constant(0.0, 10.0, 5.0), 1);
  // Dips below 5 between 2.5 and 7.5.
  border.Merge(PwlFunction({{0.0, 10.0}, {5.0, 0.0}, {10.0, 10.0}}), 2);
  ASSERT_EQ(border.pieces().size(), 3u);
  EXPECT_EQ(border.pieces()[0].tag, 1);
  EXPECT_EQ(border.pieces()[1].tag, 2);
  EXPECT_EQ(border.pieces()[2].tag, 1);
  EXPECT_NEAR(border.pieces()[0].hi, 2.5, 1e-9);
  EXPECT_NEAR(border.pieces()[2].lo, 7.5, 1e-9);
  EXPECT_DOUBLE_EQ(border.Value(5.0), 0.0);
}

TEST(LowerBorderTest, SequentialMergesComposeCorrectly) {
  LowerBorder border(0.0, 12.0);
  border.Merge(PwlFunction::Constant(0.0, 12.0, 8.0), 1);
  border.Merge(PwlFunction({{0.0, 2.0}, {12.0, 14.0}}), 2);   // Wins early.
  border.Merge(PwlFunction({{0.0, 14.0}, {12.0, 2.0}}), 3);   // Wins late.
  // Border is min of the three. Tag 1's reign shrinks to the single point
  // x = 6 where all three tie, so the partition has two pieces.
  for (double x = 0.0; x <= 12.0; x += 0.25) {
    const double expected =
        std::min({8.0, 2.0 + x, 14.0 - x});
    EXPECT_NEAR(border.Value(x), expected, 1e-9) << "x=" << x;
  }
  ASSERT_EQ(border.pieces().size(), 2u);
  EXPECT_EQ(border.pieces()[0].tag, 2);
  EXPECT_EQ(border.pieces()[1].tag, 3);
  EXPECT_NEAR(border.pieces()[0].hi, 6.0, 1e-9);
}

TEST(LowerBorderTest, DegenerateInstantInterval) {
  LowerBorder border(5.0, 5.0);
  border.Merge(PwlFunction::Constant(5.0, 5.0, 3.0), 7);
  EXPECT_DOUBLE_EQ(border.MaxValue(), 3.0);
  border.Merge(PwlFunction::Constant(5.0, 5.0, 1.0), 8);
  EXPECT_DOUBLE_EQ(border.MaxValue(), 1.0);
  ASSERT_EQ(border.pieces().size(), 1u);
  EXPECT_EQ(border.pieces()[0].tag, 8);
}

TEST(LowerBorderDeathTest, MergeRequiresMatchingDomain) {
  LowerBorder border(0.0, 10.0);
  EXPECT_DEATH(border.Merge(PwlFunction::Constant(0.0, 5.0, 1.0), 1),
               "cover the query interval");
}

}  // namespace
}  // namespace capefp::core
