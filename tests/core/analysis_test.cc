#include "src/core/analysis.h"

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/gen/random_network.h"
#include "src/network/accessor.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::PwlFunction;

TEST(RecommendDeparturesTest, FlatBorderIsOneFullWindow) {
  const PwlFunction border = PwlFunction::Constant(0.0, 120.0, 10.0);
  const auto windows = RecommendDepartures(border, 0.1);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].leave_lo, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].leave_hi, 120.0);
  EXPECT_DOUBLE_EQ(windows[0].worst_travel_minutes, 10.0);
}

TEST(RecommendDeparturesTest, VShapeYieldsOneCenteredWindow) {
  // Min 10 at x=60; threshold 11 → |f - 10| <= 1 → x in [54, 66].
  const PwlFunction border({{0.0, 20.0}, {60.0, 10.0}, {120.0, 20.0}});
  const auto windows = RecommendDepartures(border, 0.1);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_NEAR(windows[0].leave_lo, 54.0, 1e-6);
  EXPECT_NEAR(windows[0].leave_hi, 66.0, 1e-6);
  EXPECT_NEAR(windows[0].worst_travel_minutes, 11.0, 1e-6);
}

TEST(RecommendDeparturesTest, TwoValleysYieldTwoWindows) {
  const PwlFunction border(
      {{0.0, 10.0}, {30.0, 20.0}, {60.0, 10.5}, {90.0, 20.0}});
  const auto windows = RecommendDepartures(border, 0.1);  // Threshold 11.
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_NEAR(windows[0].leave_lo, 0.0, 1e-9);
  EXPECT_LT(windows[0].leave_hi, 30.0);
  EXPECT_GT(windows[1].leave_lo, 30.0);
  EXPECT_LT(windows[1].leave_lo, 60.0);
  EXPECT_GT(windows[1].leave_hi, 60.0);
}

TEST(RecommendDeparturesTest, ZeroSlackStillContainsArgMin) {
  const PwlFunction border({{0.0, 12.0}, {40.0, 8.0}, {80.0, 16.0}});
  const auto windows = RecommendDepartures(border, 0.0);
  ASSERT_FALSE(windows.empty());
  bool covers_argmin = false;
  for (const DepartureWindow& w : windows) {
    if (w.leave_lo <= 40.0 + 1e-9 && w.leave_hi >= 40.0 - 1e-9) {
      covers_argmin = true;
    }
  }
  EXPECT_TRUE(covers_argmin);
}

TEST(RecommendDeparturesTest, WindowsRespectBorderPointwise) {
  util::Rng rng(6);
  std::vector<tdf::Breakpoint> pts;
  for (int i = 0; i <= 12; ++i) {
    pts.push_back({i * 10.0, rng.NextDouble(5.0, 30.0)});
  }
  const PwlFunction border(pts);
  const double slack = 0.25;
  const auto windows = RecommendDepartures(border, slack);
  const double threshold = border.MinValue() * (1.0 + slack);
  ASSERT_FALSE(windows.empty());
  for (const DepartureWindow& w : windows) {
    EXPECT_LE(w.worst_travel_minutes, threshold + 1e-6);
    for (double x = w.leave_lo; x <= w.leave_hi; x += 0.5) {
      EXPECT_LE(border.Value(x), threshold + 1e-6) << "x=" << x;
    }
    // Just outside the window the border exceeds the threshold.
    if (w.leave_lo > border.domain_lo() + 0.2) {
      EXPECT_GT(border.Value(w.leave_lo - 0.2), threshold - 1e-6);
    }
  }
}

TEST(IsochroneTest, ClassifiesGuaranteedAndConditionalNodes) {
  // 0 -> 1 constant 5 min; 0 -> 2 is 5 min early but 20 min after t=60.
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  const auto fast = net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  const auto varies = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0}, {60.0, 0.25}})}));
  net.AddNode({0, 0});
  net.AddNode({4, 0});
  net.AddNode({0, 4});
  net.AddNode({40, 40});  // Unreachable within any reasonable budget.
  net.AddEdge(0, 1, 5.0, fast, network::RoadClass::kLocalInCity);
  net.AddEdge(0, 2, 5.0, varies, network::RoadClass::kLocalInCity);
  net.AddEdge(2, 3, 56.0, fast, network::RoadClass::kLocalOutsideCity);

  const Isochrone iso = ComputeIsochrone(net, 0, 0.0, 120.0, 10.0);
  // Node 0 (self) and node 1 are always within 10 minutes.
  EXPECT_EQ(iso.always, (std::vector<NodeId>{0, 1}));
  // Node 2 makes it only when leaving before the slowdown bites.
  EXPECT_EQ(iso.sometimes, (std::vector<NodeId>{2}));
}

TEST(IsochroneTest, AgreesWithPointQueries) {
  gen::RandomNetworkOptions opt;
  opt.seed = 77;
  opt.num_nodes = 40;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  const double lo = 400.0;
  const double hi = 500.0;
  const double budget = 8.0;
  const Isochrone iso = ComputeIsochrone(net, 0, lo, hi, budget);
  ZeroEstimator zero;
  // "always" nodes meet the budget at sampled departures; nodes in neither
  // set exceed it at sampled departures.
  std::vector<bool> always(net.num_nodes(), false);
  std::vector<bool> sometimes(net.num_nodes(), false);
  for (NodeId n : iso.always) always[static_cast<size_t>(n)] = true;
  for (NodeId n : iso.sometimes) sometimes[static_cast<size_t>(n)] = true;
  for (size_t n = 0; n < net.num_nodes(); ++n) {
    for (double l : {lo, 0.5 * (lo + hi), hi}) {
      const TdAStarResult r =
          TdAStar(&acc, 0, static_cast<NodeId>(n), l, &zero);
      ASSERT_TRUE(r.found);
      if (always[n]) {
        EXPECT_LE(r.travel_time_minutes, budget + 1e-6) << "node " << n;
      } else if (!sometimes[n]) {
        EXPECT_GT(r.travel_time_minutes, budget - 1e-6) << "node " << n;
      }
    }
  }
}

}  // namespace
}  // namespace capefp::core
