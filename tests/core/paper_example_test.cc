// Golden test: the paper's running example (Figure 2, §4.3-§4.6).
//
// Network: s --6mi--> e (constant 1 mpm); s --2mi--> n (1/3 mpm before
// 7:00, 1 mpm after); n --1mi--> e (1/3 mpm before 7:08, 0.1 mpm after).
// Query interval I = [6:50, 7:05].
//
// Expected (from the paper):
//   singleFP: s -> n -> e, 5 minutes, optimal leaving in [7:00, 7:03].
//   allFP:    s -> e        on [6:50,   6:58:30)
//             s -> n -> e   on [6:58:30, 7:03:26)   (7:03:25.71 exactly)
//             s -> e        on [7:03:26, 7:05]
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/profile_search.h"
#include "src/core/reverse_profile_search.h"
#include "src/network/accessor.h"
#include "src/network/road_network.h"

namespace capefp::core {
namespace {

using network::NodeId;
using network::RoadClass;
using network::RoadNetwork;
using tdf::HhMm;

constexpr NodeId kS = 0;
constexpr NodeId kE = 1;
constexpr NodeId kN = 2;

RoadNetwork MakeFigure2Network() {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  const auto pat_se =
      net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  const auto pat_sn = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0 / 3.0}, {HhMm(7, 0), 1.0}})}));
  const auto pat_ne = net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern({{0.0, 1.0 / 3.0}, {HhMm(7, 8), 0.1}})}));
  // Locations chosen so every edge is at least as long as the Euclidean
  // gap between its endpoints (estimator admissibility) while keeping the
  // paper's d_euc(n, e) = 1 mile, v_max = 1 mpm, hence T_est(n ⇒ e) = 1 min
  // (§4.3). The direct s -> e road is a 6-mile detour over a 3-mile gap.
  net.AddNode({0.0, 0.0});  // s
  net.AddNode({3.0, 0.0});  // e
  net.AddNode({2.0, 0.0});  // n
  net.AddEdge(kS, kE, 6.0, pat_se, RoadClass::kLocalInCity);
  net.AddEdge(kS, kN, 2.0, pat_sn, RoadClass::kLocalInCity);
  net.AddEdge(kN, kE, 1.0, pat_ne, RoadClass::kLocalInCity);
  return net;
}

// 7:03:25.714… = 7:06 − 18/7 minutes, the crossing computed in §4.6.
const double kSecondCrossing = HhMm(7, 6) - 18.0 / 7.0;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : net_(MakeFigure2Network()), accessor_(&net_) {}

  RoadNetwork net_;
  network::InMemoryAccessor accessor_;
  ProfileQuery query_{kS, kE, HhMm(6, 50), HhMm(7, 5)};
};

TEST_F(PaperExampleTest, SingleFpMatchesSection45) {
  EuclideanEstimator est(&accessor_, kE);
  ProfileSearch search(&accessor_, &est);
  const SingleFpResult result = search.RunSingleFp(query_);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.path, (std::vector<NodeId>{kS, kN, kE}));
  EXPECT_NEAR(result.best_travel_minutes, 5.0, 1e-9);
  // Any instant in [7:00, 7:03] is optimal; ArgMin returns the leftmost.
  EXPECT_NEAR(result.best_leave_time, HhMm(7, 0), 1e-6);
  ASSERT_TRUE(result.travel_time.has_value());
  EXPECT_NEAR(result.travel_time->Value(HhMm(7, 2)), 5.0, 1e-9);
}

TEST_F(PaperExampleTest, AllFpPartitionMatchesSection46) {
  EuclideanEstimator est(&accessor_, kE);
  ProfileSearch search(&accessor_, &est);
  const AllFpResult result = search.RunAllFp(query_);
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.pieces.size(), 3u);

  EXPECT_EQ(result.pieces[0].path, (std::vector<NodeId>{kS, kE}));
  EXPECT_NEAR(result.pieces[0].leave_lo, HhMm(6, 50), 1e-9);
  EXPECT_NEAR(result.pieces[0].leave_hi, HhMm(6, 58) + 0.5, 1e-6);

  EXPECT_EQ(result.pieces[1].path, (std::vector<NodeId>{kS, kN, kE}));
  EXPECT_NEAR(result.pieces[1].leave_lo, HhMm(6, 58) + 0.5, 1e-6);
  EXPECT_NEAR(result.pieces[1].leave_hi, kSecondCrossing, 1e-6);

  EXPECT_EQ(result.pieces[2].path, (std::vector<NodeId>{kS, kE}));
  EXPECT_NEAR(result.pieces[2].leave_lo, kSecondCrossing, 1e-6);
  EXPECT_NEAR(result.pieces[2].leave_hi, HhMm(7, 5), 1e-9);
}

TEST_F(PaperExampleTest, BorderMatchesFigure7) {
  EuclideanEstimator est(&accessor_, kE);
  ProfileSearch search(&accessor_, &est);
  const AllFpResult result = search.RunAllFp(query_);
  ASSERT_TRUE(result.found);
  ASSERT_TRUE(result.border.has_value());
  const tdf::PwlFunction& border = *result.border;
  // Before 6:58:30 the direct road (6 min) wins.
  EXPECT_NEAR(border.Value(HhMm(6, 52)), 6.0, 1e-9);
  // At 7:00-7:03 the detour costs 5 min.
  EXPECT_NEAR(border.Value(HhMm(7, 1)), 5.0, 1e-9);
  // On the final stretch the direct road caps the border at 6 min.
  EXPECT_NEAR(border.Value(HhMm(7, 4) + 0.5), 6.0, 1e-6);
  EXPECT_NEAR(border.MaxValue(), 6.0, 1e-9);
  EXPECT_NEAR(border.MinValue(), 5.0, 1e-9);
}

TEST_F(PaperExampleTest, BoundaryEstimatorGivesSameAnswers) {
  BoundaryNodeIndex index(net_, {.grid_dim = 2});
  BoundaryNodeEstimator est(&index, &accessor_, kE);
  ProfileSearch search(&accessor_, &est);
  const AllFpResult result = search.RunAllFp(query_);
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.pieces.size(), 3u);
  EXPECT_EQ(result.pieces[1].path, (std::vector<NodeId>{kS, kN, kE}));
  EXPECT_NEAR(result.pieces[1].leave_lo, HhMm(6, 58) + 0.5, 1e-6);
}

TEST_F(PaperExampleTest, SingleFpWithoutPruningIsIdentical) {
  EuclideanEstimator est(&accessor_, kE);
  ProfileSearchOptions options;
  options.dominance_pruning = false;
  ProfileSearch search(&accessor_, &est, options);
  const SingleFpResult result = search.RunSingleFp(query_);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.path, (std::vector<NodeId>{kS, kN, kE}));
  EXPECT_NEAR(result.best_travel_minutes, 5.0, 1e-9);
}

TEST_F(PaperExampleTest, ReverseQueryAgreesWithForwardAnswer) {
  // Arrivals in [7:00, 7:08]: e.g. arriving at 7:05 is best done by leaving
  // s at 7:00 via n (5 minutes).
  EuclideanEstimator est(&accessor_, kS);  // Anchored at the source.
  ReverseProfileSearch search(&net_, &est);
  const ReverseAllFpResult result =
      search.RunAllFp({kS, kE, HhMm(7, 0), HhMm(7, 8)});
  ASSERT_TRUE(result.found);
  ASSERT_TRUE(result.border.has_value());
  EXPECT_NEAR(result.border->Value(HhMm(7, 5)), 5.0, 1e-6);
  // Arriving at 7:00 means leaving during congestion: the detour arriving
  // at 7:00 requires departure 6:54:40-ish (travel > 5), the direct road
  // exactly 6. Border must be <= 6 everywhere.
  EXPECT_LE(result.border->MaxValue(), 6.0 + 1e-9);
}

}  // namespace
}  // namespace capefp::core
