// RunBatch determinism: batched parallel execution must return answers
// bit-identical to the sequential engine, on both the in-memory and the
// disk-backed (shared BufferPool/Pager) paths. Exercised under TSan by
// tools/run_checks.sh, where the assertions double as a race detector for
// the whole shared-state query stack (TTF cache, buffer pool, pager,
// boundary index).
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/engine.h"
#include "src/gen/suffolk_generator.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::core {
namespace {

using tdf::HhMm;

std::vector<ProfileQuery> MakeWorkload(const network::RoadNetwork& net,
                                       int count) {
  util::Rng rng(7);
  std::vector<ProfileQuery> queries;
  while (queries.size() < static_cast<size_t>(count)) {
    const auto s =
        static_cast<network::NodeId>(rng.NextBounded(net.num_nodes()));
    const auto t =
        static_cast<network::NodeId>(rng.NextBounded(net.num_nodes()));
    if (s == t) continue;
    queries.push_back({s, t, HhMm(7, 0), HhMm(10, 0)});
  }
  return queries;
}

// Exact equality — not ApproxEqual. Identical floating-point bits are the
// whole point: parallel scheduling, cache hits, and cache evictions must
// not leak into results.
void ExpectBitIdentical(const AllFpResult& a, const AllFpResult& b,
                        size_t query_index) {
  SCOPED_TRACE("query " + std::to_string(query_index));
  ASSERT_EQ(a.found, b.found);
  if (!a.found) return;

  ASSERT_TRUE(a.border.has_value());
  ASSERT_TRUE(b.border.has_value());
  const auto& border_a = a.border->breakpoints();
  const auto& border_b = b.border->breakpoints();
  ASSERT_EQ(border_a.size(), border_b.size());
  for (size_t i = 0; i < border_a.size(); ++i) {
    EXPECT_EQ(border_a[i].x, border_b[i].x) << "border breakpoint " << i;
    EXPECT_EQ(border_a[i].y, border_b[i].y) << "border breakpoint " << i;
  }

  ASSERT_EQ(a.pieces.size(), b.pieces.size());
  for (size_t i = 0; i < a.pieces.size(); ++i) {
    EXPECT_EQ(a.pieces[i].leave_lo, b.pieces[i].leave_lo) << "piece " << i;
    EXPECT_EQ(a.pieces[i].leave_hi, b.pieces[i].leave_hi) << "piece " << i;
    EXPECT_EQ(a.pieces[i].path, b.pieces[i].path) << "piece " << i;
  }
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  static constexpr int kQueries = 12;

  void RunDeterminismChecks(FastestPathEngine& engine,
                            const std::vector<ProfileQuery>& queries) {
    // Sequential reference through the one-query API.
    std::vector<AllFpResult> sequential;
    sequential.reserve(queries.size());
    for (const ProfileQuery& query : queries) {
      sequential.push_back(engine.AllFastestPaths(query));
    }

    const std::vector<AllFpResult> batch1 = engine.RunBatch(queries, 1);
    const std::vector<AllFpResult> batch4 = engine.RunBatch(queries, 4);
    ASSERT_EQ(batch1.size(), queries.size());
    ASSERT_EQ(batch4.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitIdentical(sequential[i], batch1[i], i);
      ExpectBitIdentical(sequential[i], batch4[i], i);
    }

    // A second 4-thread run against a warm (possibly partially evicted)
    // cache must still be bit-identical.
    const std::vector<AllFpResult> batch4_warm = engine.RunBatch(queries, 4);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitIdentical(batch4[i], batch4_warm[i], i);
    }
  }
};

TEST_F(ParallelEngineTest, BatchMatchesSequentialInMemory) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::vector<ProfileQuery> queries =
      MakeWorkload(sn.network, kQueries);

  EngineOptions options;
  options.boundary_grid_dim = 8;
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  RunDeterminismChecks(**engine, queries);

  const auto cache_stats = (*engine)->ttf_cache_stats();
  ASSERT_TRUE(cache_stats.has_value());
  EXPECT_GT(cache_stats->hits, 0u);  // The cache really was exercised.
}

TEST_F(ParallelEngineTest, BatchMatchesSequentialDiskBacked) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::vector<ProfileQuery> queries =
      MakeWorkload(sn.network, kQueries);

  EngineOptions options;
  options.boundary_grid_dim = 8;
  options.ccam_path = testing::UniqueTempPath("parallel_engine.ccam");
  // A pool far smaller than the file, so parallel queries contend on
  // faults and evictions, not just hits.
  options.ccam_buffer_pool_pages = 16;
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->disk_backed());
  RunDeterminismChecks(**engine, queries);

  const auto storage = (*engine)->storage_stats();
  ASSERT_TRUE(storage.has_value());
  EXPECT_GT(storage->pool.faults, 0u);
  std::remove(options.ccam_path.c_str());
}

TEST_F(ParallelEngineTest, BatchWithoutCacheMatchesSequential) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::vector<ProfileQuery> queries = MakeWorkload(sn.network, 6);

  EngineOptions options;
  options.boundary_grid_dim = 8;
  options.ttf_cache_entries = 0;  // Parallelism alone, no shared cache.
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->ttf_cache_enabled());
  EXPECT_FALSE((*engine)->ttf_cache_stats().has_value());
  RunDeterminismChecks(**engine, queries);
}

TEST_F(ParallelEngineTest, TinyCacheForcesEvictionsKeepsDeterminism) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::vector<ProfileQuery> queries = MakeWorkload(sn.network, 6);

  EngineOptions options;
  options.boundary_grid_dim = 8;
  options.ttf_cache_entries = 8;  // Constant churn.
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  RunDeterminismChecks(**engine, queries);

  const auto cache_stats = (*engine)->ttf_cache_stats();
  ASSERT_TRUE(cache_stats.has_value());
  EXPECT_GT(cache_stats->evictions, 0u);
}

TEST_F(ParallelEngineTest, PerQueryLatenciesReported) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::vector<ProfileQuery> queries = MakeWorkload(sn.network, 4);

  EngineOptions options;
  options.boundary_grid_dim = 8;
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<double> millis;
  const auto results = (*engine)->RunBatch(queries, 2, &millis);
  ASSERT_EQ(results.size(), queries.size());
  ASSERT_EQ(millis.size(), queries.size());
  for (double ms : millis) EXPECT_GT(ms, 0.0);
}

TEST_F(ParallelEngineTest, EmptyBatch) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  EngineOptions options;
  options.estimator = EngineOptions::EstimatorKind::kNaive;
  auto engine = FastestPathEngine::Create(&sn.network, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->RunBatch({}, 4).empty());
}

}  // namespace
}  // namespace capefp::core
