#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;

TEST(EuclideanEstimatorTest, ZeroAtAnchorAndSymmetricGeometry) {
  gen::RandomNetworkOptions opt;
  opt.seed = 3;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  EuclideanEstimator est(&acc, 5);
  EXPECT_DOUBLE_EQ(est.Estimate(5), 0.0);
  const double expected =
      geo::EuclideanDistance(net.location(2), net.location(5)) /
      net.max_speed();
  EXPECT_DOUBLE_EQ(est.Estimate(2), expected);
  // Cached second call returns the same value.
  EXPECT_DOUBLE_EQ(est.Estimate(2), expected);
}

TEST(ZeroEstimatorTest, AlwaysZero) {
  ZeroEstimator est;
  EXPECT_DOUBLE_EQ(est.Estimate(0), 0.0);
  EXPECT_DOUBLE_EQ(est.Estimate(12345), 0.0);
}

class EstimatorAdmissibilityTest : public ::testing::TestWithParam<uint64_t> {
};

// Both estimators, both modes, must lower-bound the true fastest travel
// time for random node pairs and random departure times.
TEST_P(EstimatorAdmissibilityTest, LowerBoundsTrueTravelTime) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 120;
  opt.extra_edge_fraction = 1.0;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  const BoundaryNodeIndex index_dist(
      net, {.grid_dim = 4, .mode = BoundaryIndexOptions::Mode::kDistance});
  const BoundaryNodeIndex index_time(
      net, {.grid_dim = 4, .mode = BoundaryIndexOptions::Mode::kTravelTime});

  util::Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 25; ++trial) {
    const auto target = static_cast<NodeId>(rng.NextBounded(120));
    const auto from = static_cast<NodeId>(rng.NextBounded(120));
    const double leave = rng.NextDouble(0.0, 2.0 * tdf::kMinutesPerDay);

    ZeroEstimator zero;
    const TdAStarResult truth = TdAStar(&acc, from, target, leave, &zero);
    ASSERT_TRUE(truth.found);

    EuclideanEstimator euclid(&acc, target);
    BoundaryNodeEstimator bd_dist(&index_dist, &acc, target);
    BoundaryNodeEstimator bd_time(&index_time, &acc, target);
    EXPECT_LE(euclid.Estimate(from), truth.travel_time_minutes + 1e-7);
    EXPECT_LE(bd_dist.Estimate(from), truth.travel_time_minutes + 1e-7);
    EXPECT_LE(bd_time.Estimate(from), truth.travel_time_minutes + 1e-7);
    // Reverse-direction estimator bounds target -> from travel.
    const TdAStarResult back = TdAStar(&acc, target, from, leave, &zero);
    ASSERT_TRUE(back.found);
    BoundaryNodeEstimator bd_rev(
        &index_time, &acc, target,
        BoundaryNodeEstimator::Direction::kFromAnchor);
    EXPECT_LE(bd_rev.Estimate(from), back.travel_time_minutes + 1e-7);
  }
}

TEST_P(EstimatorAdmissibilityTest, BoundaryDominatesEuclidNowhereWorse) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x77;
  opt.num_nodes = 80;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  const BoundaryNodeIndex index(net, {.grid_dim = 4});
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const auto target = static_cast<NodeId>(rng.NextBounded(80));
    const auto from = static_cast<NodeId>(rng.NextBounded(80));
    EuclideanEstimator euclid(&acc, target);
    BoundaryNodeEstimator bd(&index, &acc, target);
    // bdLB = max(boundary bound, Euclidean bound) >= naiveLB by design.
    EXPECT_GE(bd.Estimate(from), euclid.Estimate(from) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorAdmissibilityTest,
                         ::testing::Values(1, 7, 19, 42, 101));

TEST(BoundaryNodeIndexTest, TravelTimeModeIsAtLeastAsTightAsDistanceMode) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  const BoundaryNodeIndex dist(
      net, {.grid_dim = 6, .mode = BoundaryIndexOptions::Mode::kDistance});
  const BoundaryNodeIndex time(
      net, {.grid_dim = 6, .mode = BoundaryIndexOptions::Mode::kTravelTime});
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<NodeId>(rng.NextBounded(net.num_nodes()));
    const auto b = static_cast<NodeId>(rng.NextBounded(net.num_nodes()));
    EXPECT_GE(time.LowerBoundMinutes(a, b),
              dist.LowerBoundMinutes(a, b) - 1e-9);
  }
}

TEST(BoundaryNodeIndexTest, SameCellFallsBackToZero) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const BoundaryNodeIndex index(sn.network, {.grid_dim = 2});
  // Find two nodes in the same cell.
  for (size_t i = 1; i < sn.network.num_nodes(); ++i) {
    const auto node = static_cast<NodeId>(i);
    if (index.CellOf(node) == index.CellOf(0)) {
      EXPECT_DOUBLE_EQ(index.LowerBoundMinutes(0, node), 0.0);
      return;
    }
  }
  FAIL() << "no same-cell pair found";
}

TEST(BoundaryNodeIndexTest, SingleCellGridIsAlwaysZero) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 30;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  const BoundaryNodeIndex index(net, {.grid_dim = 1});
  EXPECT_EQ(index.num_exit_boundaries(), 0u);
  EXPECT_DOUBLE_EQ(index.LowerBoundMinutes(0, 29), 0.0);
}

TEST(BoundaryNodeIndexTest, FinerGridTightensTheSuffolkBound) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  const BoundaryNodeIndex coarse(net, {.grid_dim = 2});
  const BoundaryNodeIndex fine(net, {.grid_dim = 12});
  util::Rng rng(17);
  double coarse_sum = 0.0;
  double fine_sum = 0.0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<NodeId>(rng.NextBounded(net.num_nodes()));
    const auto b = static_cast<NodeId>(rng.NextBounded(net.num_nodes()));
    coarse_sum += coarse.LowerBoundMinutes(a, b);
    fine_sum += fine.LowerBoundMinutes(a, b);
  }
  // Not a theorem per-pair, but overwhelmingly true in aggregate.
  EXPECT_GT(fine_sum, coarse_sum);
}

}  // namespace
}  // namespace capefp::core
