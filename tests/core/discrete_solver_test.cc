#include "src/core/discrete_solver.h"

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/gen/random_network.h"
#include "src/util/random.h"

namespace capefp::core {
namespace {

using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;

TEST(DiscreteSolverTest, ProbeCountMatchesStep) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  ZeroEstimator est;
  // 120-minute half-open interval, 10-minute step: probes at 0,10,...,110.
  const DiscreteSingleFpResult r =
      DiscreteSingleFp(&acc, &est, {0, 5, 0.0, 120.0, 10.0});
  EXPECT_EQ(r.num_probes, 12);
  const DiscreteSingleFpResult hourly =
      DiscreteSingleFp(&acc, &est, {0, 5, 0.0, 120.0, 60.0});
  EXPECT_EQ(hourly.num_probes, 2);
}

TEST(DiscreteSolverTest, DegenerateIntervalSingleProbe) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 15;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  ZeroEstimator est;
  const DiscreteSingleFpResult r =
      DiscreteSingleFp(&acc, &est, {0, 5, 77.0, 77.0, 10.0});
  EXPECT_EQ(r.num_probes, 1);
}

class DiscreteConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiscreteConvergenceTest, ConvergesToContinuousOptimumFromAbove) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(50));
  auto t = static_cast<NodeId>(rng.NextBounded(50));
  if (t == s) t = static_cast<NodeId>((t + 1) % 50);
  const double lo = 420.0;
  const double hi = 540.0;

  EuclideanEstimator cont_est(&acc, t);
  ProfileSearch search(&acc, &cont_est);
  const SingleFpResult continuous = search.RunSingleFp({s, t, lo, hi});
  ASSERT_TRUE(continuous.found);

  double previous = 1e18;
  for (double step : {60.0, 10.0, 1.0, 1.0 / 6.0}) {
    EuclideanEstimator est(&acc, t);
    const DiscreteSingleFpResult discrete =
        DiscreteSingleFp(&acc, &est, {s, t, lo, hi, step});
    ASSERT_TRUE(discrete.found);
    // Discrete sampling can never beat the continuous optimum...
    EXPECT_GE(discrete.best_travel_minutes,
              continuous.best_travel_minutes - 1e-6);
    // ...and refining the step never hurts (sample sets are supersets only
    // for nested steps; allow tiny slack for non-nested grids).
    EXPECT_LE(discrete.best_travel_minutes, previous + 0.75);
    previous = discrete.best_travel_minutes;
  }
  // At a 10-second step the answer is essentially continuous (the optimum
  // can still sit up to one step away from the nearest sample).
  EXPECT_NEAR(previous, continuous.best_travel_minutes, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscreteConvergenceTest,
                         ::testing::Values(6, 47, 83, 222));

TEST(DiscreteSolverTest, AllFpProbesEveryInstant) {
  gen::RandomNetworkOptions opt;
  opt.seed = 14;
  opt.num_nodes = 30;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  ZeroEstimator est;
  const DiscreteAllFpResult r =
      DiscreteAllFp(&acc, &est, {1, 20, 0.0, 60.0, 15.0});
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.probes.size(), 4u);  // 0, 15, 30, 45 — half-open interval.
  for (const DiscreteProbe& probe : r.probes) {
    EXPECT_EQ(probe.path.front(), 1);
    EXPECT_EQ(probe.path.back(), 20);
    EXPECT_GT(probe.travel_minutes, 0.0);
  }
  EXPECT_GT(r.expanded_nodes, 0);
}

}  // namespace
}  // namespace capefp::core
