#include "src/network/ttf_cache.h"

#include "gtest/gtest.h"
#include "src/network/accessor.h"
#include "src/network/road_network.h"
#include "src/tdf/speed_pattern.h"
#include "src/tdf/travel_time.h"

namespace capefp::network {
namespace {

using tdf::HhMm;
using tdf::kMinutesPerDay;
using tdf::MphToMpm;
using tdf::PwlFunction;

// A two-category network: one node pair joined by an edge whose pattern is
// slow in the workday morning rush and constant on non-workdays.
RoadNetwork MakeTwoCategoryNetwork() {
  std::vector<tdf::DailySpeedPattern> per_category;
  per_category.push_back(tdf::DailySpeedPattern(
      {{0.0, MphToMpm(45.0)},
       {HhMm(7, 0), MphToMpm(20.0)},
       {HhMm(10, 0), MphToMpm(45.0)}}));
  per_category.push_back(tdf::DailySpeedPattern::Constant(MphToMpm(45.0)));

  RoadNetwork net(tdf::Calendar::StandardWeek(0, 1));
  net.AddPattern(tdf::CapeCodPattern(std::move(per_category)));
  net.AddNode({0.0, 0.0});
  net.AddNode({1.0, 0.0});
  net.AddEdge(0, 1, 1.0, 0, RoadClass::kLocalOutsideCity);
  return net;
}

TEST(EdgeTtfCacheTest, HitAndMissCounters) {
  EdgeTtfCache cache(/*capacity_entries=*/64);
  int derivations = 0;
  auto derive = [&]() {
    ++derivations;
    return PwlFunction::Constant(0.0, kMinutesPerDay, 5.0);
  };

  auto first = cache.GetOrDerive(/*pattern=*/0, /*distance_miles=*/1.0,
                                 /*day=*/0, derive);
  auto second = cache.GetOrDerive(0, 1.0, 0, derive);
  EXPECT_EQ(derivations, 1);
  EXPECT_EQ(first.get(), second.get());  // Same shared entry.

  const EdgeTtfCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);

  cache.RecordBypass();
  EXPECT_EQ(cache.stats().bypasses, 1u);

  cache.ResetStats();
  const EdgeTtfCacheStats reset = cache.stats();
  EXPECT_EQ(reset.hits, 0u);
  EXPECT_EQ(reset.misses, 0u);
  EXPECT_EQ(reset.bypasses, 0u);
  EXPECT_EQ(cache.size(), 1u);  // Entries survive a stats reset...

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);  // ...but not a Clear.
}

TEST(EdgeTtfCacheTest, DistinctKeysGetDistinctEntries) {
  EdgeTtfCache cache(64);
  auto derive_at = [](double value) {
    return [value]() {
      return PwlFunction::Constant(0.0, kMinutesPerDay, value);
    };
  };
  // Different pattern, different length, different day: all distinct.
  (void)cache.GetOrDerive(0, 1.0, 0, derive_at(1.0));
  (void)cache.GetOrDerive(1, 1.0, 0, derive_at(2.0));
  (void)cache.GetOrDerive(0, 2.0, 0, derive_at(3.0));
  (void)cache.GetOrDerive(0, 1.0, 1, derive_at(4.0));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);

  // Each key returns its own cached value.
  auto again = cache.GetOrDerive(0, 2.0, 0, derive_at(-1.0));
  EXPECT_DOUBLE_EQ(again->Value(0.0), 3.0);
}

TEST(EdgeTtfCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  EdgeTtfCache cache(/*capacity_entries=*/2, /*num_shards=*/1);
  auto derive = []() {
    return PwlFunction::Constant(0.0, kMinutesPerDay, 1.0);
  };
  (void)cache.GetOrDerive(0, 1.0, 0, derive);  // key A
  (void)cache.GetOrDerive(1, 1.0, 0, derive);  // key B
  (void)cache.GetOrDerive(0, 1.0, 0, derive);  // touch A -> B is LRU
  (void)cache.GetOrDerive(2, 1.0, 0, derive);  // key C evicts B

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // A and C are resident; B must be re-derived.
  (void)cache.GetOrDerive(0, 1.0, 0, derive);
  (void)cache.GetOrDerive(2, 1.0, 0, derive);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const uint64_t misses_before = cache.stats().misses;
  (void)cache.GetOrDerive(1, 1.0, 0, derive);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(EdgeTtfCacheTest, EvictedFunctionStaysValid) {
  EdgeTtfCache cache(/*capacity_entries=*/1, /*num_shards=*/1);
  auto held = cache.GetOrDerive(0, 1.0, 0, []() {
    return PwlFunction::Constant(0.0, kMinutesPerDay, 7.0);
  });
  (void)cache.GetOrDerive(1, 1.0, 0, []() {
    return PwlFunction::Constant(0.0, kMinutesPerDay, 9.0);
  });
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_DOUBLE_EQ(held->Value(100.0), 7.0);  // shared_ptr keeps it alive.
}

// The accessor-level contract the profile search relies on: cached lookups
// of the same edge on a workday vs a weekend day must produce the two
// different day-category functions, each matching direct derivation.
TEST(EdgeTtfAccessorTest, DayCategorySeparation) {
  const RoadNetwork net = MakeTwoCategoryNetwork();
  InMemoryAccessor accessor(&net);
  EdgeTtfCache cache(64);
  accessor.set_ttf_cache(&cache);

  // Day 0 is a Monday (category 0), day 5 a Saturday (category 1).
  const double monday_lo = HhMm(7, 30);
  const double monday_hi = HhMm(9, 30);
  const double saturday_lo = 5 * kMinutesPerDay + HhMm(7, 30);
  const double saturday_hi = 5 * kMinutesPerDay + HhMm(9, 30);

  const PwlFunction monday =
      accessor.EdgeTtf(0, 1.0, monday_lo, monday_hi);
  const PwlFunction saturday =
      accessor.EdgeTtf(0, 1.0, saturday_lo, saturday_hi);
  EXPECT_EQ(cache.size(), 2u);  // One full-day entry per day index.

  // Rush hour at 20 mph vs weekend 45 mph: clearly different functions.
  EXPECT_GT(monday.Value(HhMm(8, 0)), 2.5);
  EXPECT_LT(saturday.Value(5 * kMinutesPerDay + HhMm(8, 0)), 1.5);

  // Both match uncached derivation over the same interval.
  const PwlFunction monday_direct = tdf::EdgeTravelTimeFunction(
      accessor.SpeedView(0), 1.0, monday_lo, monday_hi);
  const PwlFunction saturday_direct = tdf::EdgeTravelTimeFunction(
      accessor.SpeedView(0), 1.0, saturday_lo, saturday_hi);
  EXPECT_TRUE(PwlFunction::ApproxEqual(monday, monday_direct, 1e-9));
  EXPECT_TRUE(PwlFunction::ApproxEqual(saturday, saturday_direct, 1e-9));

  // Served from the cache on repeat.
  const uint64_t misses = cache.stats().misses;
  (void)accessor.EdgeTtf(0, 1.0, monday_lo, monday_hi);
  (void)accessor.EdgeTtf(0, 1.0, saturday_lo, saturday_hi);
  EXPECT_EQ(cache.stats().misses, misses);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(EdgeTtfAccessorTest, MidnightSpanningIntervalBypassesCache) {
  const RoadNetwork net = MakeTwoCategoryNetwork();
  InMemoryAccessor accessor(&net);
  EdgeTtfCache cache(64);
  accessor.set_ttf_cache(&cache);

  const double lo = HhMm(23, 0);
  const double hi = kMinutesPerDay + HhMm(1, 0);  // Crosses midnight.
  const PwlFunction crossing = accessor.EdgeTtf(0, 1.0, lo, hi);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bypasses, 1u);

  const PwlFunction direct = tdf::EdgeTravelTimeFunction(
      accessor.SpeedView(0), 1.0, lo, hi);
  EXPECT_TRUE(PwlFunction::ApproxEqual(crossing, direct, 1e-9));
}

TEST(EdgeTtfAccessorTest, NoCacheAttachedDerivesDirectly) {
  const RoadNetwork net = MakeTwoCategoryNetwork();
  InMemoryAccessor accessor(&net);
  ASSERT_EQ(accessor.ttf_cache(), nullptr);

  const PwlFunction f = accessor.EdgeTtf(0, 1.0, HhMm(8, 0), HhMm(9, 0));
  const PwlFunction direct = tdf::EdgeTravelTimeFunction(
      accessor.SpeedView(0), 1.0, HhMm(8, 0), HhMm(9, 0));
  EXPECT_TRUE(PwlFunction::ApproxEqual(f, direct, 1e-12));
}

}  // namespace
}  // namespace capefp::network
