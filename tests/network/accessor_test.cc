#include "src/network/accessor.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/gen/random_network.h"

namespace capefp::network {
namespace {

TEST(InMemoryAccessorTest, MirrorsNetwork) {
  gen::RandomNetworkOptions opt;
  opt.seed = 4;
  opt.num_nodes = 30;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);

  EXPECT_EQ(acc.num_nodes(), net.num_nodes());
  EXPECT_DOUBLE_EQ(acc.max_speed(), net.max_speed());
  EXPECT_EQ(&acc.calendar(), &net.calendar());

  std::vector<NeighborEdge> neighbors;
  for (size_t n = 0; n < net.num_nodes(); ++n) {
    const auto id = static_cast<NodeId>(n);
    EXPECT_EQ(acc.Location(id), net.location(id));
    acc.GetSuccessors(id, &neighbors);
    ASSERT_EQ(neighbors.size(), net.OutEdges(id).size());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const Edge& e = net.edge(net.OutEdges(id)[i]);
      EXPECT_EQ(neighbors[i].to, e.to);
      EXPECT_DOUBLE_EQ(neighbors[i].distance_miles, e.distance_miles);
      EXPECT_EQ(neighbors[i].pattern, e.pattern);
      EXPECT_EQ(neighbors[i].road_class, e.road_class);
    }
  }
}

TEST(InMemoryAccessorTest, GetSuccessorsClearsOutput) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 5;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor acc(&net);
  std::vector<NeighborEdge> neighbors(7);
  acc.GetSuccessors(0, &neighbors);
  EXPECT_EQ(neighbors.size(), net.OutEdges(0).size());
}

TEST(InMemoryAccessorTest, SpeedViewReflectsPattern) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(0.25));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddEdge(0, 1, 1.0, 0, RoadClass::kLocalInCity);
  InMemoryAccessor acc(&net);
  EXPECT_DOUBLE_EQ(acc.SpeedView(0).SpeedAt(0.0), 0.25);
}

}  // namespace
}  // namespace capefp::network
