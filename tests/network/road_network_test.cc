#include "src/network/road_network.h"

#include <gtest/gtest.h>

#include "src/tdf/speed_pattern.h"

namespace capefp::network {
namespace {

RoadNetwork MakeTinyNetwork() {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(0.5));
  net.AddNode({0, 0});
  net.AddNode({3, 4});
  net.AddNode({6, 0});
  return net;
}

TEST(RoadNetworkTest, NodesAndBoundingBox) {
  const RoadNetwork net = MakeTinyNetwork();
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.location(1), (geo::Point{3, 4}));
  EXPECT_EQ(net.bounding_box().lo(), (geo::Point{0, 0}));
  EXPECT_EQ(net.bounding_box().hi(), (geo::Point{6, 4}));
}

TEST(RoadNetworkTest, EdgesAndAdjacency) {
  RoadNetwork net = MakeTinyNetwork();
  const EdgeId e0 =
      net.AddEdge(0, 1, 5.0, 0, RoadClass::kLocalInCity);
  const EdgeId e1 =
      net.AddEdge(1, 2, 5.0, 1, RoadClass::kInboundHighway);
  net.AddEdge(0, 2, 6.0, 0, RoadClass::kLocalOutsideCity);
  EXPECT_EQ(net.num_edges(), 3u);
  ASSERT_EQ(net.OutEdges(0).size(), 2u);
  EXPECT_EQ(net.OutEdges(0)[0], e0);
  ASSERT_EQ(net.OutEdges(1).size(), 1u);
  EXPECT_EQ(net.OutEdges(1)[0], e1);
  EXPECT_TRUE(net.OutEdges(2).empty());
  ASSERT_EQ(net.InEdges(2).size(), 2u);
  EXPECT_EQ(net.edge(e1).from, 1);
  EXPECT_EQ(net.edge(e1).to, 2);
  EXPECT_EQ(net.edge(e1).road_class, RoadClass::kInboundHighway);
}

TEST(RoadNetworkTest, BidirectionalAddsTwoEdges) {
  RoadNetwork net = MakeTinyNetwork();
  net.AddBidirectionalEdge(0, 1, 5.0, 0, RoadClass::kLocalInCity);
  EXPECT_EQ(net.num_edges(), 2u);
  EXPECT_EQ(net.OutEdges(0).size(), 1u);
  EXPECT_EQ(net.OutEdges(1).size(), 1u);
  EXPECT_EQ(net.edge(net.OutEdges(1)[0]).to, 0);
}

TEST(RoadNetworkTest, MaxSpeedAndMinEdgeTravelTime) {
  RoadNetwork net = MakeTinyNetwork();
  EXPECT_DOUBLE_EQ(net.max_speed(), 1.0);
  const EdgeId slow = net.AddEdge(0, 1, 5.0, 1, RoadClass::kLocalInCity);
  // Pattern 1 moves at 0.5 mpm: best case 10 minutes for 5 miles.
  EXPECT_DOUBLE_EQ(net.MinEdgeTravelTime(slow), 10.0);
}

TEST(RoadNetworkTest, SpeedViewUsesEdgePattern) {
  RoadNetwork net = MakeTinyNetwork();
  const EdgeId e = net.AddEdge(0, 1, 5.0, 1, RoadClass::kLocalInCity);
  EXPECT_DOUBLE_EQ(net.SpeedView(e).SpeedAt(100.0), 0.5);
}

TEST(RoadNetworkTest, RoadClassNames) {
  EXPECT_STREQ(RoadClassName(RoadClass::kInboundHighway), "inbound-highway");
  EXPECT_STREQ(RoadClassName(RoadClass::kOutboundHighway),
               "outbound-highway");
  EXPECT_STREQ(RoadClassName(RoadClass::kLocalInCity), "local-in-city");
  EXPECT_STREQ(RoadClassName(RoadClass::kLocalOutsideCity),
               "local-outside-city");
}

TEST(RoadNetworkDeathTest, RejectsInvalidEdges) {
  RoadNetwork net = MakeTinyNetwork();
  EXPECT_DEATH(net.AddEdge(0, 0, 1.0, 0, RoadClass::kLocalInCity),
               "self loops");
  EXPECT_DEATH(net.AddEdge(0, 7, 1.0, 0, RoadClass::kLocalInCity),
               "CHECK failed");
  EXPECT_DEATH(net.AddEdge(0, 1, 0.0, 0, RoadClass::kLocalInCity),
               "CHECK failed");
  EXPECT_DEATH(net.AddEdge(0, 1, 1.0, 9, RoadClass::kLocalInCity),
               "CHECK failed");
}

TEST(RoadNetworkDeathTest, RejectsInvalidLookups) {
  const RoadNetwork net = MakeTinyNetwork();
  EXPECT_DEATH(net.location(-1), "CHECK failed");
  EXPECT_DEATH(net.location(3), "CHECK failed");
  EXPECT_DEATH(net.edge(0), "CHECK failed");
  EXPECT_DEATH(net.pattern(2), "CHECK failed");
}

}  // namespace
}  // namespace capefp::network
