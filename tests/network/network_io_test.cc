#include "src/network/network_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "tests/testing/temp_path.h"

namespace capefp::network {
namespace {

void ExpectNetworksEqual(const RoadNetwork& a, const RoadNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_patterns(), b.num_patterns());
  EXPECT_EQ(a.calendar().cycle(), b.calendar().cycle());
  for (size_t n = 0; n < a.num_nodes(); ++n) {
    const auto id = static_cast<NodeId>(n);
    EXPECT_DOUBLE_EQ(a.location(id).x, b.location(id).x);
    EXPECT_DOUBLE_EQ(a.location(id).y, b.location(id).y);
  }
  for (size_t e = 0; e < a.num_edges(); ++e) {
    const auto id = static_cast<EdgeId>(e);
    EXPECT_EQ(a.edge(id).from, b.edge(id).from);
    EXPECT_EQ(a.edge(id).to, b.edge(id).to);
    EXPECT_DOUBLE_EQ(a.edge(id).distance_miles, b.edge(id).distance_miles);
    EXPECT_EQ(a.edge(id).pattern, b.edge(id).pattern);
    EXPECT_EQ(a.edge(id).road_class, b.edge(id).road_class);
  }
  for (size_t p = 0; p < a.num_patterns(); ++p) {
    const auto id = static_cast<PatternId>(p);
    ASSERT_EQ(a.pattern(id).num_categories(), b.pattern(id).num_categories());
    for (size_t c = 0; c < a.pattern(id).num_categories(); ++c) {
      const auto& da = a.pattern(id).pattern_for(static_cast<int32_t>(c));
      const auto& db = b.pattern(id).pattern_for(static_cast<int32_t>(c));
      ASSERT_EQ(da.pieces().size(), db.pieces().size());
      for (size_t i = 0; i < da.pieces().size(); ++i) {
        EXPECT_DOUBLE_EQ(da.pieces()[i].start_minute,
                         db.pieces()[i].start_minute);
        EXPECT_DOUBLE_EQ(da.pieces()[i].speed_mpm, db.pieces()[i].speed_mpm);
      }
    }
  }
}

TEST(NetworkIoTest, RoundTripRandomNetwork) {
  gen::RandomNetworkOptions opt;
  opt.seed = 99;
  opt.num_nodes = 40;
  const RoadNetwork original = gen::MakeRandomNetwork(opt);
  std::stringstream buffer;
  ASSERT_TRUE(WriteNetworkText(original, buffer).ok());
  auto restored = ReadNetworkText(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectNetworksEqual(original, *restored);
}

TEST(NetworkIoTest, RoundTripSuffolkSmall) {
  const auto generated = gen::GenerateSuffolkNetwork(
      gen::SuffolkOptions::Small());
  std::stringstream buffer;
  ASSERT_TRUE(WriteNetworkText(generated.network, buffer).ok());
  auto restored = ReadNetworkText(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectNetworksEqual(generated.network, *restored);
}

TEST(NetworkIoTest, FileRoundTrip) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 10;
  const RoadNetwork original = gen::MakeRandomNetwork(opt);
  const std::string path = capefp::testing::UniqueTempPath("capefp_io_test.net");
  ASSERT_TRUE(WriteNetworkFile(original, path).ok());
  auto restored = ReadNetworkFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectNetworksEqual(original, *restored);
  std::remove(path.c_str());
}

TEST(NetworkIoTest, RejectsWrongMagic) {
  std::stringstream buffer("not-a-network 1\n");
  EXPECT_EQ(ReadNetworkText(buffer).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(NetworkIoTest, RejectsWrongVersion) {
  std::stringstream buffer("capefp-network 9\n");
  EXPECT_EQ(ReadNetworkText(buffer).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(NetworkIoTest, RejectsTruncatedInput) {
  std::stringstream buffer("capefp-network 1\ncalendar 2 0 1\npatterns 1\n");
  EXPECT_EQ(ReadNetworkText(buffer).status().code(),
            util::StatusCode::kCorruption);
}

TEST(NetworkIoTest, RejectsDanglingEdge) {
  std::stringstream buffer(
      "capefp-network 1\n"
      "calendar 1 0\n"
      "patterns 1\npattern 1\ncategory 1 0 1.0\n"
      "nodes 2\n0 0\n1 1\n"
      "edges 1\n0 5 1.0 0 2\n");
  EXPECT_EQ(ReadNetworkText(buffer).status().code(),
            util::StatusCode::kCorruption);
}

TEST(NetworkIoTest, RejectsNegativeSpeed) {
  std::stringstream buffer(
      "capefp-network 1\n"
      "calendar 1 0\n"
      "patterns 1\npattern 1\ncategory 1 0 -1.0\n"
      "nodes 0\nedges 0\n");
  EXPECT_EQ(ReadNetworkText(buffer).status().code(),
            util::StatusCode::kCorruption);
}

TEST(NetworkIoTest, GeoJsonExportIsWellFormedAndDeduplicatesPairs) {
  RoadNetwork net{tdf::Calendar::SingleCategory()};
  net.AddPattern(tdf::CapeCodPattern::ConstantSpeed(1.0));
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddNode({2, 0});
  net.AddBidirectionalEdge(0, 1, 1.0, 0, RoadClass::kLocalInCity);
  net.AddEdge(1, 2, 1.0, 0, RoadClass::kInboundHighway);  // One-way.
  std::stringstream out;
  ASSERT_TRUE(WriteGeoJson(net, out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  // Two features: the bidirectional pair collapses to one.
  size_t features = 0;
  for (size_t pos = json.find("\"Feature\""); pos != std::string::npos;
       pos = json.find("\"Feature\"", pos + 1)) {
    ++features;
  }
  EXPECT_EQ(features, 2u);
  EXPECT_NE(json.find("\"one_way\":false"), std::string::npos);
  EXPECT_NE(json.find("\"one_way\":true"), std::string::npos);
  EXPECT_NE(json.find("inbound-highway"), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness check.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(NetworkIoTest, GeoJsonFileRoundTrip) {
  const auto generated =
      gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::string path = capefp::testing::UniqueTempPath("capefp_geo.json");
  ASSERT_TRUE(WriteGeoJsonFile(generated.network, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("FeatureCollection"), std::string::npos);
  std::remove(path.c_str());
}

TEST(NetworkIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadNetworkFile("/nonexistent/dir/net.txt").status().code(),
            util::StatusCode::kIoError);
}

}  // namespace
}  // namespace capefp::network
