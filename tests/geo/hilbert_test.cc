#include "src/geo/hilbert.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace capefp::geo {
namespace {

TEST(HilbertTest, Order1MatchesKnownCurve) {
  // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertXy2D(1, 0, 0), 0u);
  EXPECT_EQ(HilbertXy2D(1, 0, 1), 1u);
  EXPECT_EQ(HilbertXy2D(1, 1, 1), 2u);
  EXPECT_EQ(HilbertXy2D(1, 1, 0), 3u);
}

TEST(HilbertTest, RoundTripOrder4) {
  const int order = 4;
  const uint32_t n = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t y = 0; y < n; ++y) {
      const uint64_t d = HilbertXy2D(order, x, y);
      EXPECT_LT(d, static_cast<uint64_t>(n) * n);
      seen.insert(d);
      uint32_t rx;
      uint32_t ry;
      HilbertD2Xy(order, d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  // Bijection: every curve position is hit exactly once.
  EXPECT_EQ(seen.size(), static_cast<size_t>(n) * n);
}

TEST(HilbertTest, ConsecutivePositionsAreGridNeighbors) {
  const int order = 5;
  const uint32_t n = 1u << order;
  uint32_t px;
  uint32_t py;
  HilbertD2Xy(order, 0, &px, &py);
  for (uint64_t d = 1; d < static_cast<uint64_t>(n) * n; ++d) {
    uint32_t x;
    uint32_t y;
    HilbertD2Xy(order, d, &x, &y);
    const uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    EXPECT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, PointValueRespectsLocality) {
  const BoundingBox box({0, 0}, {100, 100});
  const uint64_t a = HilbertValue({10, 10}, box, 8);
  const uint64_t b = HilbertValue({10.4, 10.2}, box, 8);
  const uint64_t c = HilbertValue({90, 90}, box, 8);
  const auto gap_near = static_cast<int64_t>(b > a ? b - a : a - b);
  const auto gap_far = static_cast<int64_t>(c > a ? c - a : a - c);
  EXPECT_LT(gap_near, gap_far);
}

TEST(HilbertTest, PointOnBorderIsClamped) {
  const BoundingBox box({0, 0}, {1, 1});
  const uint64_t hv = HilbertValue({1, 1}, box, 6);
  EXPECT_LT(hv, (1ull << 6) * (1ull << 6));
  // Slightly outside also clamps rather than aborting.
  EXPECT_LT(HilbertValue({1.0001, -0.0001}, box, 6),
            (1ull << 6) * (1ull << 6));
}

TEST(HilbertTest, DegenerateBoxMapsToOrigin) {
  BoundingBox box;
  box.Extend({5, 5});
  EXPECT_EQ(HilbertValue({5, 5}, box, 8), HilbertXy2D(8, 0, 0));
}

}  // namespace
}  // namespace capefp::geo
