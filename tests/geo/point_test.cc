#include "src/geo/point.h"

#include <gtest/gtest.h>

namespace capefp::geo {
namespace {

TEST(PointTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({-1, 0}, {1, 0}), 2.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_FALSE((Point{1, 2}) == (Point{2, 1}));
}

TEST(BoundingBoxTest, EmptyByDefault) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.Contains({0, 0}));
  EXPECT_EQ(box.ToString(), "[empty]");
}

TEST(BoundingBoxTest, ExtendGrowsBox) {
  BoundingBox box;
  box.Extend({1, 2});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo(), (Point{1, 2}));
  EXPECT_EQ(box.hi(), (Point{1, 2}));
  box.Extend({-1, 5});
  EXPECT_EQ(box.lo(), (Point{-1, 2}));
  EXPECT_EQ(box.hi(), (Point{1, 5}));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

TEST(BoundingBoxTest, ContainsBorderAndInterior) {
  BoundingBox box({0, 0}, {10, 10});
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({10, 10}));
  EXPECT_TRUE(box.Contains({5, 5}));
  EXPECT_FALSE(box.Contains({10.001, 5}));
  EXPECT_FALSE(box.Contains({5, -0.001}));
}

TEST(BoundingBoxDeathTest, RejectsInvertedCorners) {
  EXPECT_DEATH(BoundingBox({1, 0}, {0, 1}), "CHECK failed");
}

}  // namespace
}  // namespace capefp::geo
