// Property tests for the bounded-error PWL simplification kernels
// (tdf/pwl_simplify.h), the corridor phase's workhorse. The load-bearing
// contracts, checked on randomized FIFO travel-time functions plus
// midnight-spanning and degenerate shapes:
//
//   SimplifyLower: f - eps <= g <= f everywhere (g never exceeds f);
//   SimplifyUpper: f <= g <= f + eps everywhere (g never undercuts f);
//   both: domain preserved, breakpoints never increase, FIFO preserved,
//   eps == 0 and <= 2-breakpoint inputs reproduce f exactly.
//
// Checking at the merged grid of f's and g's breakpoints suffices: both
// are piecewise linear, so extrema of f - g occur at grid points.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/tdf/pwl_function.h"
#include "src/tdf/pwl_simplify.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/random.h"

namespace capefp::tdf {
namespace {

// Absolute slack for the bracket checks: the kernels clamp every emitted
// vertex into the corridor, so only ulp-level drift from the slope
// arithmetic remains.
constexpr double kBracketTol = 1e-9;

// Max over the merged breakpoint grid of g - f (signed); the max of a
// piecewise-linear difference is attained at a grid point.
double MaxSignedExcess(const PwlFunction& f, const PwlFunction& g) {
  const std::vector<double> grid = MergedGrid(f, g);
  double worst = -std::numeric_limits<double>::infinity();
  for (double x : grid) worst = std::max(worst, g.Value(x) - f.Value(x));
  return worst;
}

double MinSignedExcess(const PwlFunction& f, const PwlFunction& g) {
  const std::vector<double> grid = MergedGrid(f, g);
  double worst = std::numeric_limits<double>::infinity();
  for (double x : grid) worst = std::min(worst, g.Value(x) - f.Value(x));
  return worst;
}

void ExpectLowerBracket(const PwlFunction& f, const PwlFunction& g,
                        double eps) {
  EXPECT_LE(MaxSignedExcess(f, g), kBracketTol)
      << "lower simplification exceeds f\n  f: " << f.ToString()
      << "\n  g: " << g.ToString();
  EXPECT_GE(MinSignedExcess(f, g), -eps - kBracketTol)
      << "lower simplification drops below f - eps\n  f: " << f.ToString()
      << "\n  g: " << g.ToString();
}

void ExpectUpperBracket(const PwlFunction& f, const PwlFunction& g,
                        double eps) {
  EXPECT_GE(MinSignedExcess(f, g), -kBracketTol)
      << "upper simplification undercuts f\n  f: " << f.ToString()
      << "\n  g: " << g.ToString();
  EXPECT_LE(MaxSignedExcess(f, g), eps + kBracketTol)
      << "upper simplification exceeds f + eps\n  f: " << f.ToString()
      << "\n  g: " << g.ToString();
}

// A random FIFO forward travel-time function on [lo, lo + span]: positive
// values, every segment slope > -1.
PwlFunction RandomFifoFunction(util::Rng& rng, double lo, double span,
                               int max_points) {
  const int n = 2 + static_cast<int>(rng.NextBounded(
                        static_cast<uint64_t>(max_points - 1)));
  std::vector<double> xs;
  xs.push_back(lo);
  xs.push_back(lo + span);
  for (int i = 2; i < n; ++i) xs.push_back(lo + rng.NextDouble() * span);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Breakpoint> pts;
  double y = 1.0 + rng.NextDouble() * 30.0;
  pts.push_back({xs[0], y});
  for (size_t i = 1; i < xs.size(); ++i) {
    const double dx = xs[i] - xs[i - 1];
    // Slope in (-1, 3], keeping y positive: FIFO and travel-time-shaped.
    const double max_drop = std::min(0.999 * dx, y - 0.01);
    const double delta = -max_drop + rng.NextDouble() * (max_drop + 3.0 * dx);
    y += delta;
    pts.push_back({xs[i], y});
  }
  return PwlFunction(pts);
}

class SimplifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyPropertyTest, BracketsHoldOnRandomFifoFunctions) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.NextDouble() * 1000.0;
    const double span = 10.0 + rng.NextDouble() * 1400.0;
    const PwlFunction f = RandomFifoFunction(rng, lo, span, 40);
    for (double eps : {0.01, 0.5, 5.0}) {
      const PwlFunction glo = SimplifyLower(f, eps);
      const PwlFunction ghi = SimplifyUpper(f, eps);
      ExpectLowerBracket(f, glo, eps);
      ExpectUpperBracket(f, ghi, eps);
      // Simplification must not grow the representation.
      EXPECT_LE(glo.breakpoints().size(), f.breakpoints().size());
      EXPECT_LE(ghi.breakpoints().size(), f.breakpoints().size());
      // Domain and left endpoint are preserved exactly.
      EXPECT_EQ(glo.domain_lo(), f.domain_lo());
      EXPECT_EQ(glo.domain_hi(), f.domain_hi());
      EXPECT_EQ(ghi.domain_lo(), f.domain_lo());
      EXPECT_EQ(ghi.domain_hi(), f.domain_hi());
    }
  }
}

TEST_P(SimplifyPropertyTest, FifoIsPreserved) {
  // The corridor search composes simplified bounds with
  // ComposePathWithEdge, which requires FIFO inputs — both kernels must
  // keep every output slope >= -1 when the input is FIFO.
  util::Rng rng(GetParam() ^ 0xf1f0);
  for (int trial = 0; trial < 40; ++trial) {
    const PwlFunction f = RandomFifoFunction(rng, 0.0, 500.0, 30);
    ASSERT_TRUE(
        f.ValidateInvariants(PwlFunction::Kind::kForwardTravelTime).ok());
    for (double eps : {0.25, 2.0}) {
      const PwlFunction glo = SimplifyLower(f, eps);
      const PwlFunction ghi = SimplifyUpper(f, eps);
      EXPECT_TRUE(
          glo.ValidateInvariants(PwlFunction::Kind::kForwardTravelTime).ok())
          << glo.ToString();
      EXPECT_TRUE(
          ghi.ValidateInvariants(PwlFunction::Kind::kForwardTravelTime).ok())
          << ghi.ToString();
    }
  }
}

TEST_P(SimplifyPropertyTest, ErrorNeverExceedsEpsButOftenCompresses) {
  util::Rng rng(GetParam() ^ 0xc0);
  size_t total_in = 0;
  size_t total_out = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const PwlFunction f = RandomFifoFunction(rng, 0.0, 1440.0, 60);
    const double eps = 1.0;
    const PwlFunction g = SimplifyLower(f, eps);
    EXPECT_LE(MaxAbsDifference(f, g), eps + kBracketTol);
    total_in += f.breakpoints().size();
    total_out += g.breakpoints().size();
  }
  // Not a tight guarantee, but the greedy cone must be doing *something*
  // across 20 random 60-point functions.
  EXPECT_LT(total_out, total_in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Values(3u, 17u, 99u, 2024u));

TEST(SimplifyTest, MidnightSpanningFunction) {
  // Domain straddling the day boundary (minute 1440), as produced for
  // windows like [23:00, 25:00): nothing in the kernel may assume
  // same-day abscissae.
  const double kDay = kMinutesPerDay;
  const PwlFunction f({{kDay - 60.0, 12.0},
                       {kDay - 10.0, 30.0},
                       {kDay, 31.0},
                       {kDay + 5.0, 30.5},
                       {kDay + 90.0, 8.0}});
  for (double eps : {0.1, 2.0}) {
    const PwlFunction glo = SimplifyLower(f, eps);
    const PwlFunction ghi = SimplifyUpper(f, eps);
    ExpectLowerBracket(f, glo, eps);
    ExpectUpperBracket(f, ghi, eps);
  }
}

TEST(SimplifyTest, DegenerateInputsCopiedExactly) {
  const PwlFunction single({{100.0, 7.0}});
  const PwlFunction segment({{0.0, 5.0}, {60.0, 9.0}});
  for (const PwlFunction* f : {&single, &segment}) {
    const PwlFunction glo = SimplifyLower(*f, 10.0);
    const PwlFunction ghi = SimplifyUpper(*f, 10.0);
    EXPECT_TRUE(PwlFunction::ApproxEqual(glo, *f, 0.0)) << glo.ToString();
    EXPECT_TRUE(PwlFunction::ApproxEqual(ghi, *f, 0.0)) << ghi.ToString();
  }
}

TEST(SimplifyTest, EpsZeroIsIdentity) {
  const PwlFunction f(
      {{0.0, 5.0}, {10.0, 8.0}, {20.0, 2.0}, {30.0, 2.5}, {40.0, 11.0}});
  EXPECT_TRUE(PwlFunction::ApproxEqual(SimplifyLower(f, 0.0), f, 0.0));
  EXPECT_TRUE(PwlFunction::ApproxEqual(SimplifyUpper(f, 0.0), f, 0.0));
}

TEST(SimplifyTest, CollapsesNearCollinearRuns) {
  // A 1-unit-amplitude zigzag around a line: eps = 2.5 must collapse it
  // to (close to) a single segment.
  std::vector<Breakpoint> pts;
  for (int i = 0; i <= 20; ++i) {
    pts.push_back({10.0 * i, 100.0 + 0.2 * i + ((i % 2 == 0) ? 1.0 : -1.0)});
  }
  const PwlFunction f(pts);
  const PwlFunction g = SimplifyLower(f, 2.5);
  EXPECT_LE(g.breakpoints().size(), 3u) << g.ToString();
  ExpectLowerBracket(f, g, 2.5);
}

TEST(SimplifyTest, IntoFormsReuseDestination) {
  const PwlFunction f(
      {{0.0, 5.0}, {10.0, 8.0}, {20.0, 2.0}, {30.0, 2.5}, {40.0, 11.0}});
  PwlArena arena;
  PwlFunction dest(&arena);
  SimplifyLowerInto(f, 0.5, &dest);
  ExpectLowerBracket(f, dest, 0.5);
  // Second fill of the same destination (the hot-loop usage pattern).
  SimplifyUpperInto(f, 0.5, &dest);
  ExpectUpperBracket(f, dest, 0.5);
}

TEST(SimplifyTest, MaxAbsDifferenceIsExactOnKnownPair) {
  const PwlFunction f({{0.0, 0.0}, {10.0, 10.0}});
  const PwlFunction g({{0.0, 0.0}, {5.0, 2.0}, {10.0, 10.0}});
  EXPECT_NEAR(MaxAbsDifference(f, g), 3.0, 1e-12);
}

}  // namespace
}  // namespace capefp::tdf
