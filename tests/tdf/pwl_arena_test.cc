#include "src/tdf/pwl_arena.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/tdf/pwl_function.h"

namespace capefp::tdf {
namespace {

Breakpoint Bp(double x, double y) { return {x, y}; }

void FillRamp(BreakpointVec* v, size_t n) {
  v->clear();
  for (size_t i = 0; i < n; ++i) {
    v->push_back(Bp(static_cast<double>(i), static_cast<double>(2 * i)));
  }
}

TEST(BreakpointVecTest, StaysInlineUpToCapacity) {
  BreakpointVec v;
  FillRamp(&v, BreakpointVec::kInlineBreakpoints);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), BreakpointVec::kInlineBreakpoints);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].x, static_cast<double>(i));
    EXPECT_EQ(v[i].y, static_cast<double>(2 * i));
  }
}

TEST(BreakpointVecTest, SpillsBeyondInlineCapacityAndKeepsContents) {
  BreakpointVec v;
  FillRamp(&v, 3 * BreakpointVec::kInlineBreakpoints);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 3 * BreakpointVec::kInlineBreakpoints);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].x, static_cast<double>(i));
  }
  // clear() keeps the spilled storage for reuse.
  const size_t capacity = v.capacity();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), capacity);
  EXPECT_FALSE(v.is_inline());
}

TEST(BreakpointVecTest, CopyConstructionDropsArenaBinding) {
  PwlArena arena;
  BreakpointVec bound(&arena);
  FillRamp(&bound, 20);
  ASSERT_EQ(bound.arena(), &arena);

  BreakpointVec copy(bound);
  EXPECT_EQ(copy.arena(), nullptr);
  ASSERT_EQ(copy.size(), bound.size());
  for (size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy[i].x, bound[i].x);
    EXPECT_EQ(copy[i].y, bound[i].y);
  }
}

TEST(BreakpointVecTest, CopyAssignmentKeepsDestinationBinding) {
  PwlArena arena;
  BreakpointVec bound(&arena);
  BreakpointVec unbound;
  FillRamp(&unbound, 20);

  bound = unbound;
  EXPECT_EQ(bound.arena(), &arena);
  EXPECT_EQ(bound.size(), 20u);
  // The spilled block came from the arena, so the arena saw the allocation.
  EXPECT_GE(arena.stats().spills, 1u);
  EXPECT_GT(arena.stats().in_use_bytes, 0u);
}

TEST(BreakpointVecTest, MoveCarriesStorageAndBinding) {
  PwlArena arena;
  BreakpointVec source(&arena);
  FillRamp(&source, 20);
  const Breakpoint* block = source.data();

  BreakpointVec moved(std::move(source));
  EXPECT_EQ(moved.arena(), &arena);
  EXPECT_EQ(moved.data(), block);  // No copy: same block.
  EXPECT_EQ(moved.size(), 20u);
  // Moved-from: empty, inline, still bound to its arena (reusable scratch).
  EXPECT_EQ(source.size(), 0u);
  EXPECT_TRUE(source.is_inline());
  EXPECT_EQ(source.arena(), &arena);
  FillRamp(&source, 20);  // Still usable.
  EXPECT_EQ(source.size(), 20u);
}

TEST(BreakpointVecTest, MoveAssignReleasesOldStorageToArena) {
  PwlArena arena;
  BreakpointVec a(&arena);
  BreakpointVec b(&arena);
  FillRamp(&a, 20);
  FillRamp(&b, 20);
  const uint64_t in_use_before = arena.stats().in_use_bytes;
  a = std::move(b);
  // a's old block went back to the freelist; only one block is lent out.
  EXPECT_LT(arena.stats().in_use_bytes, in_use_before);
  FillRamp(&b, 20);  // Reallocates from the freelist, not the heap.
  EXPECT_EQ(arena.stats().in_use_bytes, in_use_before);
}

TEST(PwlArenaTest, WarmAllocationsComeFromFreelist) {
  PwlArena arena;
  const uint64_t cold_spills = [&] {
    BreakpointVec v(&arena);
    FillRamp(&v, 100);
    return arena.stats().spills;
  }();  // v destroyed: its block returns to the freelist.
  EXPECT_GE(cold_spills, 1u);
  EXPECT_EQ(arena.stats().in_use_bytes, 0u);

  for (int round = 0; round < 5; ++round) {
    BreakpointVec v(&arena);
    FillRamp(&v, 100);
  }
  EXPECT_EQ(arena.stats().spills, cold_spills) << "warm rounds must not spill";
  EXPECT_GE(arena.stats().block_reuses, 5u);
  EXPECT_GT(arena.stats().high_water_bytes, 0u);
}

TEST(PwlArenaTest, ScratchDoublesRecyclesAndDetectsGrowth) {
  PwlArena arena;
  {
    ScratchDoubles s(&arena);
    s.get().resize(1000);  // Growth while borrowed.
  }
  const uint64_t spills_after_growth = arena.stats().spills;
  EXPECT_GE(spills_after_growth, 2u);  // Fresh vector + growth.
  for (int round = 0; round < 5; ++round) {
    ScratchDoubles s(&arena);
    s.get().resize(1000);  // Capacity retained: no further growth.
  }
  EXPECT_EQ(arena.stats().spills, spills_after_growth);
}

TEST(PwlArenaTest, ScratchDoublesWithoutArenaIsLocal) {
  ScratchDoubles s(nullptr);
  s.get().push_back(1.0);
  EXPECT_EQ(s.get().size(), 1u);
}

TEST(PwlFunctionArenaTest, CopiedResultSurvivesArenaDestruction) {
  PwlFunction escaped;
  {
    PwlArena arena;
    PwlFunction bound(&arena);
    bound.StartRebuild(/*reserve_hint=*/32);
    for (int i = 0; i < 32; ++i) {
      bound.AppendBreakpoint(static_cast<double>(i),
                             (i % 2 == 0) ? 1.0 : 2.0);
    }
    bound.FinishRebuild();
    ASSERT_EQ(bound.arena(), &arena);
    escaped = bound;  // Copy into an unbound function: plain heap.
    EXPECT_EQ(escaped.arena(), nullptr);
  }
  EXPECT_EQ(escaped.breakpoints().size(), 32u);
  EXPECT_EQ(escaped.Value(1.0), 2.0);
}

TEST(PwlFunctionArenaTest, ArenaBoundOpsMatchUnboundExactly) {
  PwlArena arena;
  const PwlFunction f({Bp(0, 5), Bp(10, 3), Bp(20, 7)});
  const PwlFunction g({Bp(0, 4), Bp(5, 6), Bp(20, 2)});

  PwlFunction bound_out(&arena);
  PwlFunction unbound_out;
  PwlFunction::LowerEnvelopeInto(f, g, &bound_out);
  PwlFunction::LowerEnvelopeInto(f, g, &unbound_out);
  ASSERT_EQ(bound_out.breakpoints().size(), unbound_out.breakpoints().size());
  for (size_t i = 0; i < bound_out.breakpoints().size(); ++i) {
    EXPECT_EQ(bound_out.breakpoints()[i].x, unbound_out.breakpoints()[i].x);
    EXPECT_EQ(bound_out.breakpoints()[i].y, unbound_out.breakpoints()[i].y);
  }
}

}  // namespace
}  // namespace capefp::tdf
