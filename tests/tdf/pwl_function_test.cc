#include "src/tdf/pwl_function.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace capefp::tdf {
namespace {

TEST(PwlFunctionTest, ConstantFunction) {
  const PwlFunction f = PwlFunction::Constant(0.0, 10.0, 3.5);
  EXPECT_DOUBLE_EQ(f.domain_lo(), 0.0);
  EXPECT_DOUBLE_EQ(f.domain_hi(), 10.0);
  EXPECT_DOUBLE_EQ(f.Value(0.0), 3.5);
  EXPECT_DOUBLE_EQ(f.Value(7.2), 3.5);
  EXPECT_DOUBLE_EQ(f.MinValue(), 3.5);
  EXPECT_DOUBLE_EQ(f.MaxValue(), 3.5);
  EXPECT_EQ(f.NumPieces(), 1u);
}

TEST(PwlFunctionTest, SinglePointDomain) {
  const PwlFunction f = PwlFunction::Constant(2.0, 2.0, 9.0);
  EXPECT_EQ(f.NumPieces(), 0u);
  EXPECT_DOUBLE_EQ(f.Value(2.0), 9.0);
  EXPECT_DOUBLE_EQ(f.MinValue(), 9.0);
  const LinearPiece p = f.PieceAt(2.0);
  EXPECT_DOUBLE_EQ(p.Eval(2.0), 9.0);
}

TEST(PwlFunctionTest, InterpolatesBetweenBreakpoints) {
  const PwlFunction f({{0, 0}, {2, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(f.Value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.Value(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f.Value(3.0), 2.0);
  EXPECT_DOUBLE_EQ(f.MinValue(), 0.0);
  EXPECT_DOUBLE_EQ(f.MaxValue(), 4.0);
}

TEST(PwlFunctionTest, NormalizationMergesCollinearPoints) {
  const PwlFunction f({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(f.NumPieces(), 1u);
  EXPECT_DOUBLE_EQ(f.Value(1.5), 1.5);
}

TEST(PwlFunctionDeathTest, RejectsNonIncreasingX) {
  EXPECT_DEATH(PwlFunction({{1, 0}, {1, 1}}), "strictly increase");
  EXPECT_DEATH(PwlFunction({{2, 0}, {1, 1}}), "strictly increase");
}

TEST(PwlFunctionDeathTest, ValueOutsideDomainAborts) {
  const PwlFunction f = PwlFunction::Constant(0.0, 1.0, 0.0);
  EXPECT_DEATH(f.Value(2.0), "CHECK failed");
  EXPECT_DEATH(f.Value(-1.0), "CHECK failed");
}

TEST(PwlFunctionTest, ArgMinIsLeftmost) {
  const PwlFunction f({{0, 5}, {1, 2}, {2, 3}, {3, 2}, {4, 6}});
  EXPECT_DOUBLE_EQ(f.ArgMin(), 1.0);
}

TEST(PwlFunctionTest, PieceAtReturnsCorrectSlopes) {
  const PwlFunction f({{0, 0}, {2, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(f.PieceAt(1.0).slope, 2.0);
  EXPECT_DOUBLE_EQ(f.PieceAt(3.0).slope, -2.0);
  // At the domain upper end, the piece to the left applies.
  EXPECT_DOUBLE_EQ(f.PieceAt(4.0).slope, -2.0);
  // At an interior breakpoint, the piece to the right applies.
  EXPECT_DOUBLE_EQ(f.PieceAt(2.0).slope, -2.0);
}

TEST(PwlFunctionTest, ShiftedAddsConstant) {
  const PwlFunction f({{0, 1}, {2, 3}});
  const PwlFunction g = f.Shifted(10.0);
  EXPECT_DOUBLE_EQ(g.Value(0.0), 11.0);
  EXPECT_DOUBLE_EQ(g.Value(2.0), 13.0);
}

TEST(PwlFunctionTest, RestrictedKeepsInteriorShape) {
  const PwlFunction f({{0, 0}, {2, 4}, {4, 0}});
  const PwlFunction g = f.Restricted(1.0, 3.0);
  EXPECT_DOUBLE_EQ(g.domain_lo(), 1.0);
  EXPECT_DOUBLE_EQ(g.domain_hi(), 3.0);
  EXPECT_DOUBLE_EQ(g.Value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(g.Value(2.0), 4.0);
  EXPECT_DOUBLE_EQ(g.Value(3.0), 2.0);
}

TEST(PwlFunctionTest, SumIsPointwise) {
  const PwlFunction f({{0, 0}, {4, 4}});
  const PwlFunction g({{0, 4}, {2, 0}, {4, 4}});
  const PwlFunction s = PwlFunction::Sum(f, g);
  EXPECT_DOUBLE_EQ(s.Value(0.0), 4.0);
  EXPECT_DOUBLE_EQ(s.Value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Value(3.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Value(4.0), 8.0);
}

TEST(PwlFunctionTest, MinFindsCrossing) {
  const PwlFunction f({{0, 0}, {4, 4}});   // y = x
  const PwlFunction g({{0, 4}, {4, 0}});   // y = 4 - x
  const PwlFunction m = PwlFunction::Min(f, g);
  EXPECT_DOUBLE_EQ(m.Value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.Value(2.0), 2.0);  // Crossing point.
  EXPECT_DOUBLE_EQ(m.Value(3.0), 1.0);
  EXPECT_DOUBLE_EQ(m.Value(4.0), 0.0);
  EXPECT_EQ(m.NumPieces(), 2u);
}

TEST(PwlFunctionTest, MergedGridContainsCrossings) {
  const PwlFunction f({{0, 0}, {4, 4}});
  const PwlFunction g({{0, 4}, {4, 0}});
  const std::vector<double> grid = MergedGrid(f, g);
  EXPECT_TRUE(std::any_of(grid.begin(), grid.end(),
                          [](double x) { return std::fabs(x - 2.0) < 1e-9; }));
}

TEST(PwlFunctionTest, DominatesOrEqual) {
  const PwlFunction f({{0, 2}, {4, 6}});
  const PwlFunction g({{0, 1}, {4, 6}});
  EXPECT_TRUE(PwlFunction::DominatesOrEqual(f, g));
  EXPECT_FALSE(PwlFunction::DominatesOrEqual(g, f));
  EXPECT_TRUE(PwlFunction::DominatesOrEqual(f, f));
}

TEST(PwlFunctionTest, DominanceDetectsInteriorViolation) {
  // Equal at endpoints; f dips below g in the middle.
  const PwlFunction f({{0, 2}, {2, 0}, {4, 2}});
  const PwlFunction g = PwlFunction::Constant(0.0, 4.0, 1.0);
  EXPECT_FALSE(PwlFunction::DominatesOrEqual(f, g));
}

TEST(PwlFunctionTest, ApproxEqual) {
  const PwlFunction f({{0, 0}, {4, 4}});
  const PwlFunction g({{0, 0}, {2, 2}, {4, 4}});
  EXPECT_TRUE(PwlFunction::ApproxEqual(f, g));
  const PwlFunction h({{0, 0}, {2, 2.1}, {4, 4}});
  EXPECT_FALSE(PwlFunction::ApproxEqual(f, h));
  const PwlFunction shifted({{0.5, 0.5}, {4, 4}});
  EXPECT_FALSE(PwlFunction::ApproxEqual(f, shifted));
}

TEST(PwlFunctionTest, ToStringListsBreakpoints) {
  const PwlFunction f({{0, 1}, {2, 3}});
  EXPECT_EQ(f.ToString(), "pwl{(0,1),(2,3)}");
}

// ---------------------------------------------------------------------------
// Property tests: random functions, pointwise identities.

class PwlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  PwlFunction RandomFunction(util::Rng& rng, double lo, double hi) {
    const int pieces = static_cast<int>(rng.NextInt(1, 8));
    std::vector<Breakpoint> pts;
    double x = lo;
    const double step = (hi - lo) / pieces;
    for (int i = 0; i <= pieces; ++i) {
      pts.push_back({x, rng.NextDouble(0.0, 20.0)});
      x += step * rng.NextDouble(0.8, 1.2);
    }
    pts.back().x = std::max(pts.back().x, hi);
    // Renormalize final x to hi exactly so domains match across functions.
    const double scale = (hi - lo) / (pts.back().x - lo);
    for (Breakpoint& p : pts) p.x = lo + (p.x - lo) * scale;
    pts.front().x = lo;
    pts.back().x = hi;
    return PwlFunction(pts);
  }
};

TEST_P(PwlPropertyTest, MinIsPointwiseMinimum) {
  util::Rng rng(GetParam());
  const PwlFunction f = RandomFunction(rng, 0.0, 100.0);
  const PwlFunction g = RandomFunction(rng, 0.0, 100.0);
  const PwlFunction m = PwlFunction::Min(f, g);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0.0, 100.0);
    EXPECT_NEAR(m.Value(x), std::min(f.Value(x), g.Value(x)), 1e-7);
  }
  EXPECT_TRUE(PwlFunction::DominatesOrEqual(f, m, 1e-7));
  EXPECT_TRUE(PwlFunction::DominatesOrEqual(g, m, 1e-7));
}

TEST_P(PwlPropertyTest, SumIsPointwiseSum) {
  util::Rng rng(GetParam() ^ 0x5bd1e995);
  const PwlFunction f = RandomFunction(rng, -50.0, 50.0);
  const PwlFunction g = RandomFunction(rng, -50.0, 50.0);
  const PwlFunction s = PwlFunction::Sum(f, g);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(-50.0, 50.0);
    EXPECT_NEAR(s.Value(x), f.Value(x) + g.Value(x), 1e-7);
  }
}

TEST_P(PwlPropertyTest, MinValueMatchesDenseSampling) {
  util::Rng rng(GetParam() ^ 0x9e3779b9);
  const PwlFunction f = RandomFunction(rng, 0.0, 10.0);
  double sampled = f.Value(0.0);
  for (int i = 0; i <= 2000; ++i) {
    sampled = std::min(sampled, f.Value(10.0 * i / 2000.0));
  }
  EXPECT_LE(f.MinValue(), sampled + 1e-9);
  EXPECT_NEAR(f.MinValue(), sampled, 0.2);  // Dense grid approximates min.
  EXPECT_NEAR(f.Value(f.ArgMin()), f.MinValue(), 1e-9);
}

TEST_P(PwlPropertyTest, RestrictionAgreesWithOriginal) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const PwlFunction f = RandomFunction(rng, 0.0, 100.0);
  const double lo = rng.NextDouble(0.0, 50.0);
  const double hi = lo + rng.NextDouble(0.1, 49.0);
  const PwlFunction r = f.Restricted(lo, hi);
  for (int i = 0; i <= 100; ++i) {
    const double x = lo + (hi - lo) * i / 100.0;
    EXPECT_NEAR(r.Value(x), f.Value(x), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwlPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace capefp::tdf
