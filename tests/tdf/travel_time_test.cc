#include "src/tdf/travel_time.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace capefp::tdf {
namespace {

// ---------------------------------------------------------------------------
// The running example of §4.3-4.5 (Figure 2 network), reverse-engineered
// from the travel-time functions printed in the paper:
//   s→n: 2 miles, speed 1/3 mpm before 7:00, 1 mpm after.
//   n→e: 1 mile, speed 1/3 mpm before 7:08, 0.1 mpm after.
//   s→e: 6 miles, constant 1 mpm.
// Leaving interval I = [6:50, 7:05].

constexpr double kT650 = HhMm(6, 50);
constexpr double kT654 = HhMm(6, 54);
constexpr double kT656 = HhMm(6, 56);
constexpr double kT700 = HhMm(7, 0);
constexpr double kT703 = HhMm(7, 3);
constexpr double kT705 = HhMm(7, 5);
constexpr double kT707 = HhMm(7, 7);
constexpr double kT708 = HhMm(7, 8);

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : calendar_(Calendar::SingleCategory()),
        pattern_sn_(
            {DailySpeedPattern({{0.0, 1.0 / 3.0}, {kT700, 1.0}})}),
        pattern_ne_(
            {DailySpeedPattern({{0.0, 1.0 / 3.0}, {kT708, 0.1}})}),
        pattern_se_(CapeCodPattern::ConstantSpeed(1.0)),
        speed_sn_(&pattern_sn_, &calendar_),
        speed_ne_(&pattern_ne_, &calendar_),
        speed_se_(&pattern_se_, &calendar_) {}

  Calendar calendar_;
  CapeCodPattern pattern_sn_;
  CapeCodPattern pattern_ne_;
  CapeCodPattern pattern_se_;
  EdgeSpeedView speed_sn_;
  EdgeSpeedView speed_ne_;
  EdgeSpeedView speed_se_;
};

TEST_F(PaperExampleTest, TravelTimePointQueries) {
  // §4.3: T(l, s→n) = 6 before 6:54, (2/3)(7:00−l)+2 in between, 2 after.
  EXPECT_NEAR(TravelTime(speed_sn_, 2.0, kT650), 6.0, 1e-9);
  EXPECT_NEAR(TravelTime(speed_sn_, 2.0, kT654), 6.0, 1e-9);
  EXPECT_NEAR(TravelTime(speed_sn_, 2.0, HhMm(6, 57)),
              (2.0 / 3.0) * 3.0 + 2.0, 1e-9);
  EXPECT_NEAR(TravelTime(speed_sn_, 2.0, kT700), 2.0, 1e-9);
  EXPECT_NEAR(TravelTime(speed_sn_, 2.0, kT705), 2.0, 1e-9);
  // s→e constant 6 minutes.
  EXPECT_NEAR(TravelTime(speed_se_, 6.0, kT650), 6.0, 1e-9);
  EXPECT_NEAR(TravelTime(speed_se_, 6.0, kT705), 6.0, 1e-9);
}

TEST_F(PaperExampleTest, EdgeFunctionForSnMatchesSection43) {
  const PwlFunction f = EdgeTravelTimeFunction(speed_sn_, 2.0, kT650, kT705);
  EXPECT_NEAR(f.Value(kT650), 6.0, 1e-9);
  EXPECT_NEAR(f.Value(kT654), 6.0, 1e-9);
  EXPECT_NEAR(f.Value(HhMm(6, 57)), 4.0, 1e-9);
  EXPECT_NEAR(f.Value(kT700), 2.0, 1e-9);
  EXPECT_NEAR(f.Value(kT705), 2.0, 1e-9);
  // Three linear pieces: constant, slope −2/3, constant.
  EXPECT_EQ(f.NumPieces(), 3u);
  EXPECT_NEAR(f.PieceAt(HhMm(6, 57)).slope, -2.0 / 3.0, 1e-9);
}

TEST_F(PaperExampleTest, EdgeFunctionForNeMatchesSection44) {
  // §4.4: during [6:56, 7:07], τ(l, n→e) = 3 before 7:05 and
  // 10 − (7/3)(7:08 − l) afterwards.
  const PwlFunction f = EdgeTravelTimeFunction(speed_ne_, 1.0, kT656, kT707);
  EXPECT_NEAR(f.Value(kT656), 3.0, 1e-9);
  EXPECT_NEAR(f.Value(kT705), 3.0, 1e-9);
  EXPECT_NEAR(f.Value(HhMm(7, 6)), 10.0 - (7.0 / 3.0) * 2.0, 1e-9);
  EXPECT_NEAR(f.Value(kT707), 10.0 - (7.0 / 3.0) * 1.0, 1e-9);
  EXPECT_EQ(f.NumPieces(), 2u);
}

TEST_F(PaperExampleTest, ExpandPathReproducesFigure5) {
  const PwlFunction path_sn =
      EdgeTravelTimeFunction(speed_sn_, 2.0, kT650, kT705);
  const PwlFunction combined = ExpandPath(path_sn, speed_ne_, 1.0);
  // §4.4's four pieces: 9, (2/3)(7:00−l)+5, 5, 12−(7/3)(7:06−l).
  EXPECT_NEAR(combined.Value(kT650), 9.0, 1e-9);
  EXPECT_NEAR(combined.Value(kT654), 9.0, 1e-9);
  EXPECT_NEAR(combined.Value(HhMm(6, 57)), (2.0 / 3.0) * 3.0 + 5.0, 1e-9);
  EXPECT_NEAR(combined.Value(kT700), 5.0, 1e-9);
  EXPECT_NEAR(combined.Value(kT703), 5.0, 1e-9);
  EXPECT_NEAR(combined.Value(kT705),
              12.0 - (7.0 / 3.0) * (HhMm(7, 6) - kT705), 1e-9);
  EXPECT_EQ(combined.NumPieces(), 4u);
  // §4.5: the singleFP optimum is 5 minutes, attained from 7:00 on.
  EXPECT_NEAR(combined.MinValue(), 5.0, 1e-9);
  EXPECT_NEAR(combined.ArgMin(), kT700, 1e-6);
}

TEST_F(PaperExampleTest, ArrivalIntervalMatchesFigure4) {
  // §4.4: the leaving interval at n is [6:56, 7:07].
  const double arrive_lo = kT650 + TravelTime(speed_sn_, 2.0, kT650);
  const double arrive_hi = kT705 + TravelTime(speed_sn_, 2.0, kT705);
  EXPECT_NEAR(arrive_lo, kT656, 1e-9);
  EXPECT_NEAR(arrive_hi, kT707, 1e-9);
}

TEST_F(PaperExampleTest, DepartureForArrivalInvertsTravelTime) {
  for (double l : {kT650, kT654, HhMm(6, 58), kT700, kT703, kT705}) {
    const double arrival = l + TravelTime(speed_sn_, 2.0, l);
    EXPECT_NEAR(DepartureForArrival(speed_sn_, 2.0, arrival), l, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Generic behaviour.

TEST(TravelTimeTest, ZeroDistanceIsInstant) {
  const Calendar cal = Calendar::SingleCategory();
  const CapeCodPattern pat = CapeCodPattern::ConstantSpeed(1.0);
  const EdgeSpeedView view(&pat, &cal);
  EXPECT_DOUBLE_EQ(TravelTime(view, 0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(DepartureForArrival(view, 0.0, 100.0), 100.0);
}

TEST(TravelTimeTest, MidnightCrossingUsesNextDayCategory) {
  // Workday ends at midnight; the next day is a non-workday with double the
  // speed. Leaving at 23:50 on day 0 (a Friday if day 0 = Monday... here we
  // use an explicit 2-day cycle) covers 10 minutes at 0.5 mpm (5 miles) and
  // the rest at 1 mpm.
  const Calendar cal({0, 1});
  const CapeCodPattern pat({DailySpeedPattern::Constant(0.5),
                            DailySpeedPattern::Constant(1.0)});
  const EdgeSpeedView view(&pat, &cal);
  const double leave = HhMm(23, 50);  // Day 0.
  // 8 miles: 10 min * 0.5 = 5 miles by midnight, 3 more miles at 1 mpm.
  EXPECT_NEAR(TravelTime(view, 8.0, leave), 13.0, 1e-9);
  // And the inverse.
  EXPECT_NEAR(DepartureForArrival(view, 8.0, leave + 13.0), leave, 1e-9);
}

TEST(TravelTimeTest, TraversalSpanningManyPieces) {
  // Three speed regimes inside one traversal (the "more than two different
  // speed patterns" case of §4.1).
  const Calendar cal = Calendar::SingleCategory();
  const CapeCodPattern pat({DailySpeedPattern(
      {{0.0, 1.0}, {HhMm(1, 0), 0.25}, {HhMm(1, 20), 2.0}})});
  const EdgeSpeedView view(&pat, &cal);
  // Leave at 0:50: 10 min at 1 mpm = 10 mi, 20 min at 0.25 = 5 mi,
  // 2.5 mi left at 2 mpm = 1.25 min. Total distance 17.5 mi in 31.25 min.
  EXPECT_NEAR(TravelTime(view, 17.5, HhMm(0, 50)), 31.25, 1e-9);
  const PwlFunction f =
      EdgeTravelTimeFunction(view, 17.5, HhMm(0, 30), HhMm(1, 30));
  EXPECT_NEAR(f.Value(HhMm(0, 50)), 31.25, 1e-9);
}

TEST(TravelTimeTest, SpeedViewBoundaries) {
  const Calendar cal({0, 1});
  const CapeCodPattern pat({DailySpeedPattern({{0.0, 1.0}, {HhMm(7, 0), 0.5}}),
                            DailySpeedPattern::Constant(2.0)});
  const EdgeSpeedView view(&pat, &cal);
  EXPECT_DOUBLE_EQ(view.SpeedAt(HhMm(6, 0)), 1.0);
  EXPECT_DOUBLE_EQ(view.SpeedAt(HhMm(8, 0)), 0.5);
  EXPECT_DOUBLE_EQ(view.SpeedAt(kMinutesPerDay + 10.0), 2.0);  // Day 1.
  EXPECT_DOUBLE_EQ(view.NextBoundaryAfter(HhMm(6, 0)), HhMm(7, 0));
  EXPECT_DOUBLE_EQ(view.NextBoundaryAfter(HhMm(8, 0)), kMinutesPerDay);
  EXPECT_DOUBLE_EQ(view.PrevBoundaryBefore(HhMm(8, 0)), HhMm(7, 0));
  EXPECT_DOUBLE_EQ(view.PrevBoundaryBefore(HhMm(6, 0)), 0.0);
  // At exactly midnight, the previous boundary lies in the previous day.
  EXPECT_DOUBLE_EQ(view.PrevBoundaryBefore(kMinutesPerDay), HhMm(7, 0));
  EXPECT_DOUBLE_EQ(view.max_speed(), 2.0);
  EXPECT_DOUBLE_EQ(view.min_speed(), 0.5);
}

// ---------------------------------------------------------------------------
// Property tests over random patterns.

class TravelTimePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static CapeCodPattern RandomPattern(util::Rng& rng) {
    std::vector<DailySpeedPattern> cats;
    const int ncats = static_cast<int>(rng.NextInt(1, 3));
    for (int c = 0; c < ncats; ++c) {
      std::vector<SpeedPiece> pieces;
      pieces.push_back({0.0, rng.NextDouble(0.1, 1.2)});
      const int extra = static_cast<int>(rng.NextInt(0, 5));
      double start = 0.0;
      for (int i = 0; i < extra; ++i) {
        start += rng.NextDouble(30.0, 300.0);
        if (start >= kMinutesPerDay - 1.0) break;
        pieces.push_back({start, rng.NextDouble(0.1, 1.2)});
      }
      cats.push_back(DailySpeedPattern(std::move(pieces)));
    }
    return CapeCodPattern(std::move(cats));
  }
};

TEST_P(TravelTimePropertyTest, FunctionMatchesDirectEvaluation) {
  util::Rng rng(GetParam());
  const CapeCodPattern pat = RandomPattern(rng);
  std::vector<DayCategoryId> cycle;
  for (int i = 0; i < 7; ++i) {
    cycle.push_back(static_cast<DayCategoryId>(
        rng.NextBounded(pat.num_categories())));
  }
  const Calendar cal(cycle);
  const EdgeSpeedView view(&pat, &cal);
  const double d = rng.NextDouble(0.05, 12.0);
  const double lo = rng.NextDouble(0.0, 5.0 * kMinutesPerDay);
  const double hi = lo + rng.NextDouble(1.0, 300.0);
  const PwlFunction f = EdgeTravelTimeFunction(view, d, lo, hi);
  for (int i = 0; i <= 300; ++i) {
    const double l = lo + (hi - lo) * i / 300.0;
    EXPECT_NEAR(f.Value(l), TravelTime(view, d, l), 1e-7)
        << "l=" << l << " d=" << d;
  }
}

TEST_P(TravelTimePropertyTest, FifoArrivalsAreMonotone) {
  util::Rng rng(GetParam() ^ 0x12345);
  const CapeCodPattern pat = RandomPattern(rng);
  const Calendar cal = Calendar::SingleCategory();
  const EdgeSpeedView view(&pat, &cal);
  const double d = rng.NextDouble(0.05, 8.0);
  double prev_arrival = -1.0;
  for (int i = 0; i <= 500; ++i) {
    const double l = i * 3.0;
    const double arrival = l + TravelTime(view, d, l);
    EXPECT_GE(arrival, prev_arrival - 1e-9) << "FIFO violated at l=" << l;
    prev_arrival = arrival;
  }
}

TEST_P(TravelTimePropertyTest, InverseIsConsistentEverywhere) {
  util::Rng rng(GetParam() ^ 0xfeed);
  const CapeCodPattern pat = RandomPattern(rng);
  const Calendar cal = Calendar::SingleCategory();
  const EdgeSpeedView view(&pat, &cal);
  const double d = rng.NextDouble(0.05, 8.0);
  for (int i = 0; i < 100; ++i) {
    const double l = rng.NextDouble(0.0, 3.0 * kMinutesPerDay);
    const double arrival = l + TravelTime(view, d, l);
    EXPECT_NEAR(DepartureForArrival(view, d, arrival), l, 1e-7);
  }
}

TEST_P(TravelTimePropertyTest, ComposeMatchesPointwiseDefinition) {
  util::Rng rng(GetParam() ^ 0xbeef);
  const CapeCodPattern pat1 = RandomPattern(rng);
  const CapeCodPattern pat2 = RandomPattern(rng);
  const Calendar cal = Calendar::SingleCategory();
  const EdgeSpeedView v1(&pat1, &cal);
  const EdgeSpeedView v2(&pat2, &cal);
  const double d1 = rng.NextDouble(0.1, 6.0);
  const double d2 = rng.NextDouble(0.1, 6.0);
  const double lo = rng.NextDouble(0.0, kMinutesPerDay);
  const double hi = lo + rng.NextDouble(5.0, 240.0);
  const PwlFunction first = EdgeTravelTimeFunction(v1, d1, lo, hi);
  const PwlFunction combined = ExpandPath(first, v2, d2);
  for (int i = 0; i <= 200; ++i) {
    const double l = lo + (hi - lo) * i / 200.0;
    const double t1 = TravelTime(v1, d1, l);
    const double expected = t1 + TravelTime(v2, d2, l + t1);
    EXPECT_NEAR(combined.Value(l), expected, 1e-7) << "l=" << l;
  }
}

TEST_P(TravelTimePropertyTest, ReverseFunctionMatchesDirectInverse) {
  util::Rng rng(GetParam() ^ 0xc0ffee);
  const CapeCodPattern pat = RandomPattern(rng);
  const Calendar cal = Calendar::SingleCategory();
  const EdgeSpeedView view(&pat, &cal);
  const double d = rng.NextDouble(0.1, 6.0);
  const double lo = rng.NextDouble(0.0, 2.0 * kMinutesPerDay);
  const double hi = lo + rng.NextDouble(5.0, 300.0);
  const PwlFunction rho = EdgeReverseTravelTimeFunction(view, d, lo, hi);
  for (int i = 0; i <= 200; ++i) {
    const double arrival = lo + (hi - lo) * i / 200.0;
    const double expected =
        arrival - DepartureForArrival(view, d, arrival);
    EXPECT_NEAR(rho.Value(arrival), expected, 1e-7) << "a=" << arrival;
  }
}

TEST_P(TravelTimePropertyTest, ExpandReverseMatchesPointwiseDefinition) {
  util::Rng rng(GetParam() ^ 0xd00d);
  const CapeCodPattern pat1 = RandomPattern(rng);
  const CapeCodPattern pat2 = RandomPattern(rng);
  const Calendar cal = Calendar::SingleCategory();
  const EdgeSpeedView v1(&pat1, &cal);
  const EdgeSpeedView v2(&pat2, &cal);
  const double d1 = rng.NextDouble(0.1, 5.0);
  const double d2 = rng.NextDouble(0.1, 5.0);
  const double lo = rng.NextDouble(60.0, kMinutesPerDay);
  const double hi = lo + rng.NextDouble(5.0, 200.0);
  // R = reverse function of the last edge; extend backwards across the
  // earlier edge.
  const PwlFunction last = EdgeReverseTravelTimeFunction(v2, d2, lo, hi);
  const PwlFunction combined = ExpandPathReverse(last, v1, d1);
  for (int i = 0; i <= 150; ++i) {
    const double arrival = lo + (hi - lo) * i / 150.0;
    const double mid_arrival =
        DepartureForArrival(v2, d2, arrival);  // Arrival at the middle node.
    const double departure = DepartureForArrival(v1, d1, mid_arrival);
    EXPECT_NEAR(combined.Value(arrival), arrival - departure, 1e-7)
        << "a=" << arrival;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TravelTimePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace capefp::tdf
