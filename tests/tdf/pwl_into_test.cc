// Satellite property test of the arena refactor: every *Into operation must
// be exactly equal — breakpoint for breakpoint, bit-for-bit on the doubles —
// to its allocating counterpart, on randomized CapeCod-derived travel-time
// functions, with and without an arena binding, cold and warm (reused
// destination). The allocating forms are thin wrappers over the Into forms,
// so any divergence here means a destination buffer leaked state between
// operations.
#include <vector>

#include <gtest/gtest.h>

#include "src/tdf/pwl_function.h"
#include "src/tdf/speed_pattern.h"
#include "src/tdf/travel_time.h"
#include "src/util/random.h"

namespace capefp::tdf {
namespace {

void ExpectExactlyEqual(const PwlFunction& a, const PwlFunction& b,
                        const char* what) {
  ASSERT_EQ(a.breakpoints().size(), b.breakpoints().size()) << what;
  for (size_t i = 0; i < a.breakpoints().size(); ++i) {
    EXPECT_EQ(a.breakpoints()[i].x, b.breakpoints()[i].x)
        << what << " breakpoint " << i;
    EXPECT_EQ(a.breakpoints()[i].y, b.breakpoints()[i].y)
        << what << " breakpoint " << i;
  }
}

// A random daily pattern with 1-5 speed changes at random instants.
CapeCodPattern RandomPattern(util::Rng& rng) {
  std::vector<SpeedPiece> pieces;
  pieces.push_back({0.0, rng.NextDouble(0.1, 1.5)});
  const int changes = static_cast<int>(rng.NextBounded(5));
  double at = 0.0;
  for (int i = 0; i < changes; ++i) {
    at += rng.NextDouble(30.0, 400.0);
    if (at >= 1439.0) break;
    pieces.push_back({at, rng.NextDouble(0.1, 1.5)});
  }
  return CapeCodPattern({DailySpeedPattern(pieces)});
}

class PwlIntoTest : public ::testing::Test {
 protected:
  PwlIntoTest() : calendar_(Calendar::SingleCategory()) {}

  Calendar calendar_;
};

// One exhaustive randomized sweep covering every op, repeated for unbound
// and arena-bound destinations. Windows include midnight-spanning ones
// (crossing the day-0/day-1 boundary at minute 1440) and the degenerate
// single-instant window lo == hi.
TEST_F(PwlIntoTest, IntoFormsExactlyMatchAllocatingForms) {
  for (const bool use_arena : {false, true}) {
    PwlArena arena_storage;
    PwlArena* arena = use_arena ? &arena_storage : nullptr;
    // Reused destinations: a warm buffer must produce the same bits as a
    // fresh allocation.
    PwlFunction out(arena), edge_scratch(arena), out2(arena);

    util::Rng rng(20260807);
    for (int trial = 0; trial < 60; ++trial) {
      const CapeCodPattern pattern_a = RandomPattern(rng);
      const CapeCodPattern pattern_b = RandomPattern(rng);
      const EdgeSpeedView speed_a(&pattern_a, &calendar_);
      const EdgeSpeedView speed_b(&pattern_b, &calendar_);
      const double dist_a = rng.NextDouble(0.2, 8.0);
      const double dist_b = rng.NextDouble(0.2, 8.0);

      double lo, hi;
      switch (trial % 3) {
        case 0:  // Plain in-day window.
          lo = rng.NextDouble(0.0, 1000.0);
          hi = lo + rng.NextDouble(1.0, 400.0);
          break;
        case 1:  // Midnight-spanning window.
          lo = rng.NextDouble(1300.0, 1439.0);
          hi = rng.NextDouble(1441.0, 1600.0);
          break;
        default:  // Degenerate single instant.
          lo = hi = rng.NextDouble(0.0, 1440.0);
          break;
      }

      // --- Edge TTF derivation.
      const PwlFunction f = EdgeTravelTimeFunction(speed_a, dist_a, lo, hi);
      EdgeTravelTimeFunctionInto(speed_a, dist_a, lo, hi, &out);
      ExpectExactlyEqual(out, f, "EdgeTravelTimeFunctionInto");

      const PwlFunction g = EdgeTravelTimeFunction(speed_b, dist_b, lo, hi);

      // --- Shift.
      const double dy = rng.NextDouble(-5.0, 5.0);
      f.ShiftedInto(dy, &out);
      ExpectExactlyEqual(out, f.Shifted(dy), "ShiftedInto");

      // --- Restriction (interior window; skip the degenerate case).
      if (hi - lo > 2.0) {
        const double rl = lo + rng.NextDouble(0.0, (hi - lo) / 3.0);
        const double rh = hi - rng.NextDouble(0.0, (hi - lo) / 3.0);
        f.RestrictedInto(rl, rh, &out);
        ExpectExactlyEqual(out, f.Restricted(rl, rh), "RestrictedInto");
      }

      // --- Sum and lower envelope (same domain by construction).
      PwlFunction::SumInto(f, g, &out);
      ExpectExactlyEqual(out, PwlFunction::Sum(f, g), "SumInto");
      PwlFunction::LowerEnvelopeInto(f, g, &out);
      ExpectExactlyEqual(out, PwlFunction::Min(f, g), "LowerEnvelopeInto");

      // --- n-way sum.
      const std::vector<PwlFunction> many = {f, g, PwlFunction::Sum(f, g)};
      PwlFunction::SumManyInto(many, &out);
      ExpectExactlyEqual(out, PwlFunction::SumMany(many), "SumManyInto");
      // SumMany must agree with the pairwise chain as a function (the
      // grids differ, so breakpoints may not be bitwise identical).
      EXPECT_TRUE(PwlFunction::ApproxEqual(
          PwlFunction::SumMany(many),
          PwlFunction::Sum(PwlFunction::Sum(f, g), many[2]), 1e-9));

      // --- Path expansion (forward), including the explicit compose form.
      ExpandPathInto(f, speed_b, dist_b, &edge_scratch, &out);
      ExpectExactlyEqual(out, ExpandPath(f, speed_b, dist_b),
                         "ExpandPathInto");
      const double arrive_lo = f.domain_lo() + f.Value(f.domain_lo());
      const double arrive_hi = f.domain_hi() + f.Value(f.domain_hi());
      const PwlFunction edge_tt =
          EdgeTravelTimeFunction(speed_b, dist_b, arrive_lo, arrive_hi);
      ComposePathWithEdgeInto(f, edge_tt, &out);
      ExpectExactlyEqual(out, ComposePathWithEdge(f, edge_tt),
                         "ComposePathWithEdgeInto");

      // --- Reverse forms.
      const PwlFunction rf =
          EdgeReverseTravelTimeFunction(speed_a, dist_a, lo, hi);
      EdgeReverseTravelTimeFunctionInto(speed_a, dist_a, lo, hi, &out);
      ExpectExactlyEqual(out, rf, "EdgeReverseTravelTimeFunctionInto");
      ExpandPathReverseInto(rf, speed_b, dist_b, &edge_scratch, &out);
      ExpectExactlyEqual(out, ExpandPathReverse(rf, speed_b, dist_b),
                         "ExpandPathReverseInto");

      // --- Warm-destination determinism: running the op again into the
      // (now dirty) buffer and into a second buffer must agree bitwise.
      PwlFunction::SumInto(f, g, &out);
      PwlFunction::SumInto(f, g, &out2);
      ExpectExactlyEqual(out, out2, "warm reuse");
    }
  }
}

TEST_F(PwlIntoTest, ArenaBoundResultsMatchUnboundResults) {
  PwlArena arena;
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const CapeCodPattern pattern = RandomPattern(rng);
    const EdgeSpeedView speed(&pattern, &calendar_);
    const double lo = rng.NextDouble(0.0, 1400.0);
    const double hi = lo + rng.NextDouble(1.0, 300.0);
    PwlFunction bound(&arena);
    PwlFunction unbound;
    EdgeTravelTimeFunctionInto(speed, 2.5, lo, hi, &bound);
    EdgeTravelTimeFunctionInto(speed, 2.5, lo, hi, &unbound);
    ExpectExactlyEqual(bound, unbound, "arena vs heap");
  }
}

}  // namespace
}  // namespace capefp::tdf
