#include "src/tdf/speed_pattern.h"

#include <gtest/gtest.h>

namespace capefp::tdf {
namespace {

TEST(TimeHelpersTest, HhMmAndMph) {
  EXPECT_DOUBLE_EQ(HhMm(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(HhMm(7, 30), 450.0);
  EXPECT_DOUBLE_EQ(HhMm(23, 59), 1439.0);
  EXPECT_DOUBLE_EQ(MphToMpm(60.0), 1.0);
  EXPECT_DOUBLE_EQ(MphToMpm(30.0), 0.5);
}

DailySpeedPattern RushHourPattern() {
  // 1 mpm except [7:00, 9:00) at 1/2 mpm — the example of §2.1.
  return DailySpeedPattern(
      {{0.0, 1.0}, {HhMm(7, 0), 0.5}, {HhMm(9, 0), 1.0}});
}

TEST(DailySpeedPatternTest, SpeedAtRespectsPieces) {
  const DailySpeedPattern p = RushHourPattern();
  EXPECT_DOUBLE_EQ(p.SpeedAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.SpeedAt(HhMm(6, 59)), 1.0);
  EXPECT_DOUBLE_EQ(p.SpeedAt(HhMm(7, 0)), 0.5);   // Inclusive start.
  EXPECT_DOUBLE_EQ(p.SpeedAt(HhMm(8, 30)), 0.5);
  EXPECT_DOUBLE_EQ(p.SpeedAt(HhMm(9, 0)), 1.0);   // Exclusive end.
  EXPECT_DOUBLE_EQ(p.SpeedAt(HhMm(23, 59)), 1.0);
}

TEST(DailySpeedPatternTest, NextBoundaryAfter) {
  const DailySpeedPattern p = RushHourPattern();
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(0.0), HhMm(7, 0));
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(HhMm(7, 0)), HhMm(9, 0));
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(HhMm(8, 59)), HhMm(9, 0));
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(HhMm(9, 0)), kMinutesPerDay);
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(HhMm(23, 0)), kMinutesPerDay);
}

TEST(DailySpeedPatternTest, MinMaxSpeeds) {
  const DailySpeedPattern p = RushHourPattern();
  EXPECT_DOUBLE_EQ(p.max_speed(), 1.0);
  EXPECT_DOUBLE_EQ(p.min_speed(), 0.5);
}

TEST(DailySpeedPatternTest, ConstantPattern) {
  const DailySpeedPattern p = DailySpeedPattern::Constant(0.75);
  EXPECT_DOUBLE_EQ(p.SpeedAt(100.0), 0.75);
  EXPECT_DOUBLE_EQ(p.NextBoundaryAfter(100.0), kMinutesPerDay);
}

TEST(DailySpeedPatternDeathTest, RejectsInvalidPatterns) {
  EXPECT_DEATH(DailySpeedPattern({}), "CHECK failed");
  EXPECT_DEATH(DailySpeedPattern({{5.0, 1.0}}), "midnight");
  EXPECT_DEATH(DailySpeedPattern({{0.0, 1.0}, {10.0, 0.0}}), "positive");
  EXPECT_DEATH(DailySpeedPattern({{0.0, 1.0}, {10.0, 1.0}, {5.0, 1.0}}),
               "increase");
  EXPECT_DEATH(DailySpeedPattern({{0.0, 1.0}, {kMinutesPerDay, 1.0}}),
               "CHECK failed");
}

TEST(CapeCodPatternTest, PerCategoryLookup) {
  const CapeCodPattern pat({RushHourPattern(), DailySpeedPattern::Constant(1.0)});
  EXPECT_EQ(pat.num_categories(), 2u);
  EXPECT_DOUBLE_EQ(pat.pattern_for(0).SpeedAt(HhMm(8, 0)), 0.5);
  EXPECT_DOUBLE_EQ(pat.pattern_for(1).SpeedAt(HhMm(8, 0)), 1.0);
  EXPECT_DOUBLE_EQ(pat.max_speed(), 1.0);
  EXPECT_DOUBLE_EQ(pat.min_speed(), 0.5);
}

TEST(CapeCodPatternTest, ConstantSpeedFactory) {
  const CapeCodPattern pat = CapeCodPattern::ConstantSpeed(0.6);
  EXPECT_EQ(pat.num_categories(), 1u);
  EXPECT_DOUBLE_EQ(pat.max_speed(), 0.6);
  EXPECT_DOUBLE_EQ(pat.min_speed(), 0.6);
}

TEST(CapeCodPatternDeathTest, RejectsBadCategory) {
  const CapeCodPattern pat = CapeCodPattern::ConstantSpeed(1.0);
  EXPECT_DEATH(pat.pattern_for(1), "CHECK failed");
  EXPECT_DEATH(pat.pattern_for(-1), "CHECK failed");
}

TEST(CalendarTest, SingleCategory) {
  const Calendar cal = Calendar::SingleCategory();
  EXPECT_EQ(cal.CategoryForDay(0), 0);
  EXPECT_EQ(cal.CategoryForDay(1000), 0);
  EXPECT_EQ(cal.CategoryForDay(-3), 0);
}

TEST(CalendarTest, StandardWeekCycles) {
  const Calendar cal = Calendar::StandardWeek(/*workday=*/0,
                                              /*nonworkday=*/1);
  // Day 0 is Monday.
  for (int d = 0; d < 5; ++d) EXPECT_EQ(cal.CategoryForDay(d), 0);
  EXPECT_EQ(cal.CategoryForDay(5), 1);  // Saturday.
  EXPECT_EQ(cal.CategoryForDay(6), 1);  // Sunday.
  EXPECT_EQ(cal.CategoryForDay(7), 0);  // Next Monday.
  EXPECT_EQ(cal.CategoryForDay(12), 1);
}

TEST(CalendarTest, NegativeDaysWrapCorrectly) {
  const Calendar cal = Calendar::StandardWeek(0, 1);
  EXPECT_EQ(cal.CategoryForDay(-1), 1);  // Sunday before day 0.
  EXPECT_EQ(cal.CategoryForDay(-2), 1);
  EXPECT_EQ(cal.CategoryForDay(-3), 0);
  EXPECT_EQ(cal.CategoryForDay(-7), 0);
}

}  // namespace
}  // namespace capefp::tdf
