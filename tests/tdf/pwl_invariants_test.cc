// Invariant-validator tests for PwlFunction: feed deliberately broken
// breakpoint vectors through the test-only unsafe factory (bypassing the
// normalizing constructor) and check each violation is rejected with a
// message precise enough to debug from.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/tdf/pwl_function.h"

namespace capefp::tdf {
namespace {

using Kind = PwlFunction::Kind;

PwlFunction Unsafe(std::vector<Breakpoint> pts) {
  return PwlFunction::UnsafeFromBreakpointsForTest(std::move(pts));
}

TEST(PwlInvariantsTest, WellFormedFunctionPasses) {
  const PwlFunction f({{0.0, 5.0}, {10.0, 7.0}, {20.0, 4.0}});
  EXPECT_TRUE(f.ValidateInvariants().ok());
  EXPECT_TRUE(f.ValidateInvariants(Kind::kForwardTravelTime).ok());
}

TEST(PwlInvariantsTest, EmptyFunctionRejected) {
  const PwlFunction f = Unsafe({});
  const util::Status status = f.ValidateInvariants();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no breakpoints"), std::string::npos);
}

TEST(PwlInvariantsTest, NonFiniteOrdinateRejectedWithIndex) {
  const PwlFunction f =
      Unsafe({{0.0, 1.0}, {5.0, std::numeric_limits<double>::infinity()}});
  const util::Status status = f.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("breakpoint 1"), std::string::npos);
  EXPECT_NE(status.message().find("not finite"), std::string::npos);
}

TEST(PwlInvariantsTest, OutOfOrderAbscissaeRejected) {
  const PwlFunction f = Unsafe({{0.0, 1.0}, {10.0, 2.0}, {7.0, 3.0}});
  const util::Status status = f.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("strictly increasing"), std::string::npos);
  // The message names the offending pair.
  EXPECT_NE(status.message().find("breakpoint 2"), std::string::npos);
  EXPECT_NE(status.message().find("10"), std::string::npos);
  EXPECT_NE(status.message().find("7"), std::string::npos);
}

TEST(PwlInvariantsTest, DuplicateAbscissaeRejected) {
  const PwlFunction f = Unsafe({{0.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}});
  const util::Status status = f.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("strictly increasing"), std::string::npos);
}

TEST(PwlInvariantsTest, ForwardFifoViolationRejected) {
  // Arrival l + tau(l) drops from 20 to 12: slope well below -1.
  const PwlFunction f = Unsafe({{0.0, 20.0}, {10.0, 2.0}});
  EXPECT_TRUE(f.ValidateInvariants().ok());  // Generic: shape-only checks.
  const util::Status status =
      f.ValidateInvariants(Kind::kForwardTravelTime);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FIFO violated"), std::string::npos);
  EXPECT_NE(status.message().find("piece 0"), std::string::npos);
}

TEST(PwlInvariantsTest, SlopeExactlyMinusOneIsFifoLegal) {
  // Arrival stays constant: the degenerate-but-legal FIFO boundary.
  const PwlFunction f({{0.0, 20.0}, {10.0, 10.0}});
  EXPECT_TRUE(f.ValidateInvariants(Kind::kForwardTravelTime).ok());
}

TEST(PwlInvariantsTest, ReverseFifoUsesTheMirroredRule) {
  // rho rises with slope 2 > +1: departure a - rho(a) decreases. Legal as
  // a forward function, illegal as a reverse one.
  const PwlFunction steep({{0.0, 1.0}, {10.0, 21.0}});
  EXPECT_TRUE(steep.ValidateInvariants(Kind::kForwardTravelTime).ok());
  const util::Status status =
      steep.ValidateInvariants(Kind::kReverseTravelTime);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reverse FIFO violated"),
            std::string::npos);
  // And the mirror image: slope -2 is fine in reverse, bad forward.
  const PwlFunction drop({{0.0, 21.0}, {10.0, 1.0}});
  EXPECT_TRUE(drop.ValidateInvariants(Kind::kReverseTravelTime).ok());
  EXPECT_FALSE(drop.ValidateInvariants(Kind::kForwardTravelTime).ok());
}

TEST(PwlInvariantsTest, NormalizingConstructorProducesValidFunctions) {
  // The public constructor drops collinear interior points; whatever it
  // builds must pass the validator (its DCHECK relies on this).
  const PwlFunction f({{0.0, 1.0}, {5.0, 2.0}, {10.0, 3.0}, {12.0, 9.0}});
  EXPECT_TRUE(f.ValidateInvariants().ok());
  EXPECT_EQ(f.breakpoints().size(), 3u);  // {5,2} is collinear and dropped.
}

}  // namespace
}  // namespace capefp::tdf
