// Robustness: hostile inputs and numeric stress.
#include <array>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/capefp.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp {
namespace {

using network::RoadNetwork;
using tdf::PwlFunction;

// Random bytes must never crash the network reader — only produce a clean
// error status.
TEST(RobustnessTest, NetworkReaderSurvivesRandomGarbage) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.NextBounded(400);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(96) + 32));
    }
    std::stringstream in(garbage);
    const auto result = network::ReadNetworkText(in);
    EXPECT_FALSE(result.ok());
  }
}

// Mutating individual tokens of a valid file must also fail cleanly (or
// parse to a network that is internally consistent).
TEST(RobustnessTest, NetworkReaderSurvivesTokenMutations) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 12;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  std::stringstream buffer;
  ASSERT_TRUE(network::WriteNetworkText(net, buffer).ok());
  const std::string valid = buffer.str();
  util::Rng rng(99);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextBounded(96) + 32);
    std::stringstream in(mutated);
    const auto result = network::ReadNetworkText(in);
    if (result.ok()) {
      // Accepted mutations must still be structurally sound.
      EXPECT_EQ(result->num_nodes(), net.num_nodes());
    }
  }
}

// Composing hundreds of edges must stay consistent with direct pointwise
// evaluation — guards against drift in the breakpoint arithmetic.
TEST(RobustnessTest, LongCompositionChainStaysExact) {
  util::Rng rng(5);
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  std::vector<tdf::CapeCodPattern> patterns;
  std::vector<double> distances;
  for (int i = 0; i < 200; ++i) {
    std::vector<tdf::SpeedPiece> pieces;
    pieces.push_back({0.0, rng.NextDouble(0.3, 1.0)});
    double start = 0.0;
    for (int p = 0; p < 3; ++p) {
      start += rng.NextDouble(100.0, 400.0);
      if (start >= tdf::kMinutesPerDay - 1.0) break;
      pieces.push_back({start, rng.NextDouble(0.3, 1.0)});
    }
    patterns.push_back(tdf::CapeCodPattern(
        {tdf::DailySpeedPattern(std::move(pieces))}));
    distances.push_back(rng.NextDouble(0.05, 0.4));
  }

  const double lo = 400.0;
  const double hi = 470.0;
  PwlFunction chain = PwlFunction::Constant(lo, hi, 0.0);
  for (size_t i = 0; i < patterns.size(); ++i) {
    const tdf::EdgeSpeedView view(&patterns[i], &cal);
    chain = tdf::ExpandPath(chain, view, distances[i]);
  }
  // Direct evaluation: walk the chain edge by edge.
  for (int s = 0; s <= 20; ++s) {
    const double l = lo + (hi - lo) * s / 20.0;
    double now = l;
    for (size_t i = 0; i < patterns.size(); ++i) {
      const tdf::EdgeSpeedView view(&patterns[i], &cal);
      now += tdf::TravelTime(view, distances[i], now);
    }
    EXPECT_NEAR(chain.Value(l), now - l, 1e-5) << "l=" << l;
  }
  // The function stays modest in size thanks to collinear merging.
  EXPECT_LT(chain.NumPieces(), 600u);
}

// A pathological pattern with many tiny pieces must not blow up the
// function representation.
TEST(RobustnessTest, ManyPiecePatternStaysBounded) {
  std::vector<tdf::SpeedPiece> pieces;
  for (int i = 0; i < 288; ++i) {  // One piece every 5 minutes.
    pieces.push_back({i * 5.0, 0.4 + 0.4 * (i % 2)});
  }
  const tdf::CapeCodPattern pat({tdf::DailySpeedPattern(std::move(pieces))});
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  const tdf::EdgeSpeedView view(&pat, &cal);
  const PwlFunction f =
      tdf::EdgeTravelTimeFunction(view, 3.0, 0.0, tdf::kMinutesPerDay - 1.0);
  // Sanity plus bounded size: breakpoints scale with pattern pieces, not
  // quadratically.
  EXPECT_LT(f.NumPieces(), 1200u);
  for (double l : {10.0, 500.0, 1000.0, 1400.0}) {
    EXPECT_NEAR(f.Value(l), tdf::TravelTime(view, 3.0, l), 1e-7);
  }
}

// Const access to the network, estimator index, and searches from several
// threads at once (each thread with its own per-query estimator), as the
// thread-safety notes in road_network.h and boundary_estimator.h promise.
TEST(RobustnessTest, ConcurrentConstQueriesAgree) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const core::BoundaryNodeIndex index(
      sn.network, {.grid_dim = 4,
                   .mode = core::BoundaryIndexOptions::Mode::kTravelTime});
  const auto target =
      static_cast<network::NodeId>(sn.network.num_nodes() - 1);
  const core::ProfileQuery query{0, target, tdf::HhMm(7, 0),
                                 tdf::HhMm(8, 0)};

  // Reference answer, single-threaded.
  network::InMemoryAccessor ref_acc(&sn.network);
  core::BoundaryNodeEstimator ref_est(&index, &ref_acc, target);
  core::ProfileSearch ref_search(&ref_acc, &ref_est);
  const core::AllFpResult reference = ref_search.RunAllFp(query);
  ASSERT_TRUE(reference.found);

  std::vector<std::thread> threads;
  std::array<bool, 4> ok{};
  for (size_t i = 0; i < ok.size(); ++i) {
    threads.emplace_back([&, i] {
      network::InMemoryAccessor acc(&sn.network);
      core::BoundaryNodeEstimator est(&index, &acc, target);
      core::ProfileSearch search(&acc, &est);
      const core::AllFpResult result = search.RunAllFp(query);
      ok[i] = result.found &&
              tdf::PwlFunction::ApproxEqual(*result.border,
                                            *reference.border, 1e-9);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "thread " << i;
  }
}

// The CCAM store must function (slowly) even with a pathologically tiny
// buffer pool — no pin-budget deadlocks in the B+-tree descent.
TEST(RobustnessTest, CcamWorksWithTinyBufferPool) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::string path = capefp::testing::UniqueTempPath("tiny_pool.ccam");
  ASSERT_TRUE(storage::BuildCcamFile(sn.network, path, {}).ok());
  storage::CcamOpenOptions open;
  open.buffer_pool_pages = 2;
  auto store = storage::CcamStore::Open(path, open);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  storage::CcamAccessor accessor(store->get());
  core::EuclideanEstimator est(&accessor, 0);
  const auto far_node =
      static_cast<network::NodeId>(sn.network.num_nodes() - 1);
  const core::TdAStarResult result =
      core::TdAStar(&accessor, far_node, 0, tdf::HhMm(8, 0), &est);
  EXPECT_TRUE(result.found);
  EXPECT_GT((*store)->stats().pool.faults, 100u);  // It really thrashed.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capefp
