// Cross-component concurrency regression test (TSan tier).
//
// Exercises, at runtime, exactly the lock interactions the thread-safety
// annotations encode statically:
//   * EdgeTtfCache shard mutexes are leaves — worker threads hammer
//     GetOrDerive on overlapping keys while a snapshotter thread polls the
//     cache's callback metrics through MetricsRegistry::Snapshot().
//   * MetricsRegistry::Snapshot() invokes callback metrics while holding
//     the registry mutex; those callbacks take component stats locks
//     (cache shard, pool, pager), pinning the registry -> component-stats
//     order as deadlock-free.
//   * BufferPool::Acquire() faults pages while holding the pool lock, the
//     one declared cross-component order (pool before pager).
//
// The test has no timing assertions; its value is running the real lock
// graph under ThreadSanitizer (tools/run_checks.sh tsan), where any data
// race or lock inversion the annotations failed to rule out reports.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/network/ttf_cache.h"
#include "src/obs/metrics.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/pager.h"
#include "src/tdf/pwl_function.h"
#include "src/tdf/speed_pattern.h"
#include "tests/testing/temp_path.h"

namespace capefp {
namespace {

constexpr int kWorkers = 4;
constexpr int kIterations = 400;

TEST(ConcurrencyRegressionTest, CacheMetricsAndPoolUnderContention) {
  // Small capacities on purpose: evictions exercise the shard LRU and the
  // pool's writeback path, not just the hit fast paths.
  network::EdgeTtfCache cache(/*capacity_entries=*/32, /*num_shards=*/4);

  const std::string path =
      capefp::testing::UniqueTempPath("concurrency_regression.db");
  auto pager_or = storage::Pager::Create(path, 256);
  ASSERT_TRUE(pager_or.ok());
  std::unique_ptr<storage::Pager> pager = std::move(*pager_or);
  storage::BufferPool pool(pager.get(), /*capacity_frames=*/4);

  // Seed more pages than frames so concurrent Acquire()s fault and evict,
  // repeatedly taking the pool lock and then the pager lock underneath it.
  std::vector<storage::PageId> pages;
  for (int i = 0; i < 16; ++i) {
    auto handle_or = pool.AllocateAndAcquire();
    ASSERT_TRUE(handle_or.ok());
    handle_or->mutable_data()[0] = static_cast<char>('a' + i % 26);
    pages.push_back(handle_or->page_id());
  }

  obs::MetricsRegistry registry;
  cache.RegisterMetrics(&registry, "test.cache");
  pool.RegisterMetrics(&registry, "test.pool");
  pager->RegisterMetrics(&registry, "test.pager");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> derivations{0};

  std::vector<std::thread> threads;
  // Cache workers: overlapping key ranges force same-shard contention and
  // concurrent derive-vs-hit interleavings.
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&cache, &derivations, w] {
      for (int i = 0; i < kIterations; ++i) {
        const network::PatternId pattern = (w + i) % 8;
        const double distance = 1.0 + (i % 4);
        auto fn = cache.GetOrDerive(pattern, distance, /*day=*/i % 2,
                                    [&derivations] {
                                      derivations.fetch_add(1);
                                      return tdf::PwlFunction::Constant(
                                          0.0, tdf::kMinutesPerDay, 5.0);
                                    });
        ASSERT_NE(fn, nullptr);
        // Returned functions must stay readable even if evicted behind us.
        ASSERT_GT(fn->Value(0.0), 0.0);
        if (i % 16 == 0) cache.RecordBypass();
      }
    });
  }
  // Pool workers: Acquire faults under the pool lock, which takes the
  // pager lock beneath it — the annotated pool -> pager order, exercised
  // concurrently with the snapshotter reading both components' stats.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&pool, &pages, w] {
      for (int i = 0; i < kIterations; ++i) {
        auto handle_or = pool.Acquire(pages[(w * 7 + i) % pages.size()]);
        ASSERT_TRUE(handle_or.ok());
        ASSERT_GE(handle_or->data()[0], 'a');
      }
    });
  }
  // Snapshotter: polls every callback metric (cache shard counters, pool
  // stats, pager stats) under the registry mutex until workers finish.
  threads.emplace_back([&registry, &stop] {
    uint64_t snapshots = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = registry.Snapshot();
      ASSERT_TRUE(snap.counters.count("test.cache.lookups"));
      ASSERT_TRUE(snap.counters.count("test.pool.hits"));
      ++snapshots;
    }
    ASSERT_GT(snapshots, 0u);
  });

  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  // The counters the snapshotter raced against must add up coherently now
  // that everything is quiescent.
  const network::EdgeTtfCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), uint64_t{kWorkers} * kIterations);
  EXPECT_EQ(stats.misses, derivations.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.bypasses, uint64_t{kWorkers} * (kIterations / 16));
  EXPECT_LE(cache.size(), cache.capacity());

  const obs::MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("test.cache.lookups"), stats.lookups());
  // Every worker Acquire() is either a hit or a fault (the initial
  // AllocateAndAcquire seeds count as allocations, not lookups).
  EXPECT_EQ(final_snap.counters.at("test.pool.hits") +
                final_snap.counters.at("test.pool.faults"),
            uint64_t{2} * kIterations);

  ASSERT_TRUE(pool.FlushAll().ok());
  pager.reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capefp
