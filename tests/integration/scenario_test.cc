// End-to-end scenario tests across module boundaries: calendar categories,
// midnight crossings, multi-day intervals, and the full storage pipeline,
// always cross-validated against independent point queries.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/capefp.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp {
namespace {

using core::AllFpResult;
using core::ProfileQuery;
using core::TdAStarResult;
using network::InMemoryAccessor;
using network::NodeId;
using network::RoadNetwork;
using tdf::HhMm;
using tdf::kMinutesPerDay;

// Friday is day 4 of Calendar::StandardWeek (day 0 = Monday).
constexpr double kFriday = 4.0 * kMinutesPerDay;
constexpr double kSaturday = 5.0 * kMinutesPerDay;
constexpr double kTuesday = 1.0 * kMinutesPerDay;

// Validates an allFP border against dense TdAStar probing.
void CrossValidateBorder(InMemoryAccessor& accessor, const ProfileQuery& q,
                         const AllFpResult& all, int samples = 50) {
  ASSERT_TRUE(all.found);
  core::ZeroEstimator zero;
  for (int i = 0; i <= samples; ++i) {
    const double l = q.leave_lo + (q.leave_hi - q.leave_lo) * i / samples;
    const TdAStarResult truth =
        core::TdAStar(&accessor, q.source, q.target, l, &zero);
    ASSERT_TRUE(truth.found);
    EXPECT_NEAR(all.border->Value(l), truth.travel_time_minutes, 1e-6)
        << "l=" << l;
  }
}

class ScenarioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioTest, MidnightCrossingIntoWeekendIsExact) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam();
  opt.num_nodes = 45;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor accessor(&net);
  util::Rng rng(GetParam() ^ 0x1);
  const auto s = static_cast<NodeId>(rng.NextBounded(45));
  auto t = static_cast<NodeId>(rng.NextBounded(45));
  if (t == s) t = static_cast<NodeId>((t + 1) % 45);

  // Leaving late Friday night: traversals spill into Saturday, which uses
  // the second (non-workday) day category.
  const ProfileQuery query{s, t, kFriday + HhMm(23, 0),
                           kFriday + HhMm(23, 59)};
  core::EuclideanEstimator est(&accessor, t);
  core::ProfileSearch search(&accessor, &est);
  const AllFpResult all = search.RunAllFp(query);
  CrossValidateBorder(accessor, query, all);
}

TEST_P(ScenarioTest, MultiDayIntervalIsExact) {
  gen::RandomNetworkOptions opt;
  opt.seed = GetParam() ^ 0x2;
  opt.num_nodes = 35;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  InMemoryAccessor accessor(&net);
  util::Rng rng(GetParam());
  const auto s = static_cast<NodeId>(rng.NextBounded(35));
  auto t = static_cast<NodeId>(rng.NextBounded(35));
  if (t == s) t = static_cast<NodeId>((t + 1) % 35);

  // A 4-hour window straddling the Friday/Saturday category change.
  const ProfileQuery wide{s, t, kFriday + HhMm(22, 0),
                          kSaturday + HhMm(2, 0)};
  core::EuclideanEstimator est(&accessor, t);
  core::ProfileSearch search(&accessor, &est);
  const AllFpResult all = search.RunAllFp(wide);
  CrossValidateBorder(accessor, wide, all, 80);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioTest,
                         ::testing::Values(21, 63, 149));

TEST(ScenarioSuiteTest, WeekendBeatsRushHourOnTable1Network) {
  gen::SuffolkOptions options = gen::SuffolkOptions::Small();
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);
  InMemoryAccessor accessor(&sn.network);
  util::Rng rng(3);
  int compared = 0;
  for (int trial = 0; trial < 40 && compared < 10; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    if (s == t) continue;
    // Tuesday 7-9am (workday rush) vs Saturday 7-9am (non-workday).
    core::EuclideanEstimator est1(&accessor, t);
    core::ProfileSearch search1(&accessor, &est1);
    const AllFpResult workday = search1.RunAllFp(
        {s, t, kTuesday + HhMm(7, 0), kTuesday + HhMm(9, 0)});
    core::EuclideanEstimator est2(&accessor, t);
    core::ProfileSearch search2(&accessor, &est2);
    const AllFpResult weekend = search2.RunAllFp(
        {s, t, kSaturday + HhMm(7, 0), kSaturday + HhMm(9, 0)});
    if (!workday.found || !weekend.found) continue;
    ++compared;
    // Pointwise: weekend can never be slower (speeds are >= everywhere).
    for (int i = 0; i <= 20; ++i) {
      const double frac = i / 20.0;
      const double wl = kTuesday + HhMm(7, 0) + frac * 120.0;
      const double sl = kSaturday + HhMm(7, 0) + frac * 120.0;
      EXPECT_LE(weekend.border->Value(sl),
                workday.border->Value(wl) + 1e-9);
    }
    // On non-workdays the Table 1 speeds are time-invariant, so the border
    // is a single constant piece.
    EXPECT_EQ(weekend.pieces.size(), 1u);
    EXPECT_NEAR(weekend.border->MinValue(), weekend.border->MaxValue(),
                1e-9);
  }
  EXPECT_GE(compared, 5);
}

TEST(ScenarioSuiteTest, FullPipelineGenerateSaveLoadStoreQuery) {
  // generate -> text -> reload -> CCAM -> engine(disk) == engine(memory),
  // with a rush-hour query whose partition is non-trivial.
  gen::SuffolkOptions options;
  options.seed = 11;
  options.extent_miles = 5.0;
  options.city_radius_miles = 1.2;
  options.suburb_spacing_miles = 0.25;
  options.target_segments = 0;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);

  const std::string net_path = capefp::testing::UniqueTempPath("pipeline.net");
  const std::string db_path = capefp::testing::UniqueTempPath("pipeline.ccam");
  ASSERT_TRUE(network::WriteNetworkFile(sn.network, net_path).ok());
  auto reloaded = network::ReadNetworkFile(net_path);
  ASSERT_TRUE(reloaded.ok());

  core::EngineOptions disk_options;
  disk_options.ccam_path = db_path;
  auto disk = core::FastestPathEngine::Create(&*reloaded, disk_options);
  ASSERT_TRUE(disk.ok());
  auto memory = core::FastestPathEngine::Create(&sn.network, {});
  ASSERT_TRUE(memory.ok());

  // A suburb-to-center commute across the rush onset.
  util::Rng rng(4);
  int validated = 0;
  for (int trial = 0; trial < 60 && validated < 5; ++trial) {
    const auto s = static_cast<NodeId>(
        rng.NextBounded(sn.network.num_nodes()));
    const auto t = static_cast<NodeId>(
        rng.NextBounded(sn.network.num_nodes()));
    if (geo::EuclideanDistance(sn.network.location(s),
                               sn.network.location(t)) < 2.0) {
      continue;
    }
    const ProfileQuery query{s, t, HhMm(6, 0), HhMm(8, 0)};
    const AllFpResult a = (*disk)->AllFastestPaths(query);
    const AllFpResult b = (*memory)->AllFastestPaths(query);
    ASSERT_EQ(a.found, b.found);
    if (!a.found) continue;
    ++validated;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*a.border, *b.border, 1e-9));
    ASSERT_EQ(a.pieces.size(), b.pieces.size());
    for (size_t i = 0; i < a.pieces.size(); ++i) {
      EXPECT_EQ(a.pieces[i].path, b.pieces[i].path);
    }
  }
  EXPECT_GE(validated, 5);
  std::remove(net_path.c_str());
  std::remove(db_path.c_str());
}

TEST(ScenarioSuiteTest, HierarchicalMatchesFlatOnTable1Network) {
  const gen::SuffolkNetwork sn =
      gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  InMemoryAccessor accessor(&sn.network);
  core::HierarchicalOptions options;
  options.grid_dim = 3;
  options.window_lo = HhMm(5, 0);
  options.window_hi = HhMm(14, 0);
  core::HierarchicalIndex index(&sn.network, options);
  util::Rng rng(9);
  int compared = 0;
  for (int trial = 0; trial < 20 && compared < 5; ++trial) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    const auto t =
        static_cast<NodeId>(rng.NextBounded(sn.network.num_nodes()));
    if (s == t) continue;
    const ProfileQuery query{s, t, HhMm(6, 30), HhMm(8, 30)};
    core::EuclideanEstimator flat_est(&accessor, t);
    core::ProfileSearch flat(&accessor, &flat_est);
    const AllFpResult expected = flat.RunAllFp(query);
    core::EuclideanEstimator hier_est(&accessor, t);
    auto actual = index.RunAllFp(query, &hier_est);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual->found, expected.found);
    if (!expected.found) continue;
    ++compared;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*actual->border,
                                              *expected.border, 1e-6));
  }
  EXPECT_GE(compared, 3);
}

}  // namespace
}  // namespace capefp
