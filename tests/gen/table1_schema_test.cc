#include "src/gen/table1_schema.h"

#include <gtest/gtest.h>

namespace capefp::gen {
namespace {

using network::RoadClass;
using tdf::HhMm;
using tdf::MphToMpm;

TEST(Table1SchemaTest, WorkdaySpeedsMatchTable) {
  const Table1Schema schema = MakeTable1Schema();

  const auto& inbound = schema.pattern_for(RoadClass::kInboundHighway)
                            .pattern_for(kWorkday);
  EXPECT_DOUBLE_EQ(inbound.SpeedAt(HhMm(6, 0)), MphToMpm(65));
  EXPECT_DOUBLE_EQ(inbound.SpeedAt(HhMm(8, 0)), MphToMpm(20));
  EXPECT_DOUBLE_EQ(inbound.SpeedAt(HhMm(10, 0)), MphToMpm(65));
  EXPECT_DOUBLE_EQ(inbound.SpeedAt(HhMm(17, 0)), MphToMpm(65));

  const auto& outbound = schema.pattern_for(RoadClass::kOutboundHighway)
                             .pattern_for(kWorkday);
  EXPECT_DOUBLE_EQ(outbound.SpeedAt(HhMm(8, 0)), MphToMpm(65));
  EXPECT_DOUBLE_EQ(outbound.SpeedAt(HhMm(17, 0)), MphToMpm(30));
  EXPECT_DOUBLE_EQ(outbound.SpeedAt(HhMm(19, 0)), MphToMpm(65));

  const auto& local_city = schema.pattern_for(RoadClass::kLocalInCity)
                               .pattern_for(kWorkday);
  EXPECT_DOUBLE_EQ(local_city.SpeedAt(HhMm(8, 0)), MphToMpm(20));
  EXPECT_DOUBLE_EQ(local_city.SpeedAt(HhMm(12, 0)), MphToMpm(40));
  EXPECT_DOUBLE_EQ(local_city.SpeedAt(HhMm(17, 0)), MphToMpm(20));
  EXPECT_DOUBLE_EQ(local_city.SpeedAt(HhMm(22, 0)), MphToMpm(40));

  const auto& local_out = schema.pattern_for(RoadClass::kLocalOutsideCity)
                              .pattern_for(kWorkday);
  EXPECT_DOUBLE_EQ(local_out.SpeedAt(HhMm(8, 0)), MphToMpm(40));
  EXPECT_DOUBLE_EQ(local_out.SpeedAt(HhMm(17, 0)), MphToMpm(40));
}

TEST(Table1SchemaTest, NonWorkdayIsUncongested) {
  const Table1Schema schema = MakeTable1Schema();
  for (int rc = 0; rc < network::kNumRoadClasses; ++rc) {
    const auto& daily = schema.patterns[static_cast<size_t>(rc)]
                            .pattern_for(kNonWorkday);
    EXPECT_EQ(daily.pieces().size(), 1u) << "class " << rc;
    const double expected = rc <= 1 ? MphToMpm(65) : MphToMpm(40);
    EXPECT_DOUBLE_EQ(daily.SpeedAt(HhMm(8, 0)), expected);
  }
}

TEST(Table1SchemaTest, MaxNetworkSpeedIs65Mph) {
  const Table1Schema schema = MakeTable1Schema();
  double vmax = 0.0;
  for (const auto& pat : schema.patterns) {
    vmax = std::max(vmax, pat.max_speed());
  }
  EXPECT_DOUBLE_EQ(vmax, MphToMpm(65));
}

TEST(Table1SchemaTest, SpeedLimitSchemaIsFlat) {
  const Table1Schema schema = MakeSpeedLimitSchema();
  for (int rc = 0; rc < network::kNumRoadClasses; ++rc) {
    const auto& pat = schema.patterns[static_cast<size_t>(rc)];
    EXPECT_DOUBLE_EQ(pat.max_speed(), pat.min_speed()) << "class " << rc;
  }
  EXPECT_DOUBLE_EQ(
      schema.pattern_for(RoadClass::kInboundHighway).max_speed(),
      MphToMpm(65));
  EXPECT_DOUBLE_EQ(schema.pattern_for(RoadClass::kLocalInCity).max_speed(),
                   MphToMpm(40));
}

TEST(Table1SchemaTest, RegisterAlignsPatternIdsWithRoadClasses) {
  network::RoadNetwork net{tdf::Calendar::StandardWeek(kWorkday,
                                                       kNonWorkday)};
  RegisterTable1Patterns(&net);
  ASSERT_EQ(net.num_patterns(), 4u);
  // Pattern id == RoadClass value: the inbound-highway pattern (id 0) has
  // the 7-10am workday dip.
  EXPECT_DOUBLE_EQ(net.pattern(0).pattern_for(kWorkday).SpeedAt(HhMm(8, 0)),
                   MphToMpm(20));
  EXPECT_DOUBLE_EQ(net.pattern(3).pattern_for(kWorkday).SpeedAt(HhMm(8, 0)),
                   MphToMpm(40));
}

}  // namespace
}  // namespace capefp::gen
