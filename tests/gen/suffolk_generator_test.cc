#include "src/gen/suffolk_generator.h"

#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "src/gen/table1_schema.h"

namespace capefp::gen {
namespace {

using network::NodeId;
using network::RoadClass;
using network::RoadNetwork;

// Counts nodes reachable from `start` along directed edges.
size_t ReachableCount(const RoadNetwork& net, NodeId start) {
  std::vector<bool> seen(net.num_nodes(), false);
  std::queue<NodeId> queue;
  queue.push(start);
  seen[static_cast<size_t>(start)] = true;
  size_t count = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    ++count;
    for (network::EdgeId e : net.OutEdges(u)) {
      const NodeId v = net.edge(e).to;
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        queue.push(v);
      }
    }
  }
  return count;
}

TEST(SuffolkGeneratorTest, SmallNetworkIsStronglyConnected) {
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  ASSERT_GT(net.num_nodes(), 50u);
  EXPECT_EQ(ReachableCount(net, 0), net.num_nodes());
  EXPECT_EQ(ReachableCount(net, static_cast<NodeId>(net.num_nodes() - 1)),
            net.num_nodes());
}

TEST(SuffolkGeneratorTest, DeterministicForSameSeed) {
  const SuffolkNetwork a = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const SuffolkNetwork b = GenerateSuffolkNetwork(SuffolkOptions::Small());
  ASSERT_EQ(a.network.num_nodes(), b.network.num_nodes());
  ASSERT_EQ(a.network.num_edges(), b.network.num_edges());
  for (size_t e = 0; e < a.network.num_edges(); ++e) {
    const auto id = static_cast<network::EdgeId>(e);
    EXPECT_EQ(a.network.edge(id).from, b.network.edge(id).from);
    EXPECT_EQ(a.network.edge(id).to, b.network.edge(id).to);
  }
}

TEST(SuffolkGeneratorTest, DifferentSeedsDiffer) {
  SuffolkOptions opt = SuffolkOptions::Small();
  const SuffolkNetwork a = GenerateSuffolkNetwork(opt);
  opt.seed = 777;
  const SuffolkNetwork b = GenerateSuffolkNetwork(opt);
  EXPECT_NE(a.network.num_nodes(), b.network.num_nodes());
}

TEST(SuffolkGeneratorTest, UsesAllFourRoadClassesWithAlignedPatterns) {
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  ASSERT_EQ(net.num_patterns(), 4u);
  std::array<size_t, 4> counts{};
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    counts[static_cast<size_t>(edge.road_class)]++;
    EXPECT_EQ(edge.pattern, static_cast<int>(edge.road_class));
  }
  for (size_t rc = 0; rc < counts.size(); ++rc) {
    EXPECT_GT(counts[rc], 0u) << "missing road class " << rc;
  }
  // Dual carriageway: same number of inbound and outbound lanes.
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(SuffolkGeneratorTest, InboundEdgesPointTowardsCenter) {
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    const double d_from =
        geo::EuclideanDistance(net.location(edge.from), sn.city_center);
    const double d_to =
        geo::EuclideanDistance(net.location(edge.to), sn.city_center);
    if (edge.road_class == RoadClass::kInboundHighway) {
      EXPECT_LT(d_to, d_from);
    } else if (edge.road_class == RoadClass::kOutboundHighway) {
      EXPECT_GT(d_to, d_from);
    }
  }
}

TEST(SuffolkGeneratorTest, LocalClassMatchesCityMembership) {
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    if (edge.road_class != RoadClass::kLocalInCity &&
        edge.road_class != RoadClass::kLocalOutsideCity) {
      continue;
    }
    const geo::Point a = net.location(edge.from);
    const geo::Point b = net.location(edge.to);
    const geo::Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
    const bool in_city =
        geo::EuclideanDistance(mid, sn.city_center) <= sn.city_radius_miles;
    EXPECT_EQ(edge.road_class == RoadClass::kLocalInCity, in_city);
  }
}

TEST(SuffolkGeneratorTest, EdgeDistancesAreEuclidean) {
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions::Small());
  const RoadNetwork& net = sn.network;
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    const double euclid = geo::EuclideanDistance(net.location(edge.from),
                                                 net.location(edge.to));
    EXPECT_NEAR(edge.distance_miles, euclid, 1e-9);
  }
}

TEST(SuffolkGeneratorTest, FullScaleMatchesPaperCounts) {
  // The paper's dataset: 14,456 nodes and 20,461 segments. Allow a few
  // percent slack — the generator hits the segment budget exactly when
  // enough extras exist, and node counts are stochastic.
  const SuffolkNetwork sn = GenerateSuffolkNetwork(SuffolkOptions{});
  const double nodes = static_cast<double>(sn.network.num_nodes());
  const double segments = static_cast<double>(sn.network.num_edges()) / 2.0;
  EXPECT_NEAR(nodes, 14456.0, 0.08 * 14456.0);
  EXPECT_NEAR(segments, 20461.0, 0.04 * 20461.0);
  EXPECT_EQ(ReachableCount(sn.network, 0), sn.network.num_nodes());
}

}  // namespace
}  // namespace capefp::gen
