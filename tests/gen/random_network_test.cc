#include "src/gen/random_network.h"

#include <queue>
#include <vector>

#include <gtest/gtest.h>

namespace capefp::gen {
namespace {

TEST(RandomNetworkTest, ConnectedAndSized) {
  RandomNetworkOptions opt;
  opt.seed = 5;
  opt.num_nodes = 60;
  const network::RoadNetwork net = MakeRandomNetwork(opt);
  EXPECT_EQ(net.num_nodes(), 60u);
  // Spanning tree alone contributes 59 bidirectional edges = 118 directed.
  EXPECT_GE(net.num_edges(), 118u);

  std::vector<bool> seen(net.num_nodes(), false);
  std::queue<network::NodeId> queue;
  queue.push(0);
  seen[0] = true;
  size_t count = 0;
  while (!queue.empty()) {
    const network::NodeId u = queue.front();
    queue.pop();
    ++count;
    for (network::EdgeId e : net.OutEdges(u)) {
      const network::NodeId v = net.edge(e).to;
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        queue.push(v);
      }
    }
  }
  EXPECT_EQ(count, net.num_nodes());
}

TEST(RandomNetworkTest, MaxSpeedIsExactlyConfigured) {
  RandomNetworkOptions opt;
  opt.seed = 9;
  opt.max_speed_mpm = 0.8;
  const network::RoadNetwork net = MakeRandomNetwork(opt);
  EXPECT_DOUBLE_EQ(net.max_speed(), 0.8);
}

TEST(RandomNetworkTest, DistancesRespectEuclideanLowerBound) {
  RandomNetworkOptions opt;
  opt.seed = 123;
  opt.num_nodes = 80;
  const network::RoadNetwork net = MakeRandomNetwork(opt);
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    const double euclid = geo::EuclideanDistance(net.location(edge.from),
                                                 net.location(edge.to));
    EXPECT_GE(edge.distance_miles, euclid - 1e-9);
  }
}

TEST(RandomNetworkTest, Deterministic) {
  RandomNetworkOptions opt;
  opt.seed = 77;
  const network::RoadNetwork a = MakeRandomNetwork(opt);
  const network::RoadNetwork b = MakeRandomNetwork(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    const auto id = static_cast<network::EdgeId>(e);
    EXPECT_EQ(a.edge(id).from, b.edge(id).from);
    EXPECT_EQ(a.edge(id).to, b.edge(id).to);
    EXPECT_DOUBLE_EQ(a.edge(id).distance_miles, b.edge(id).distance_miles);
  }
}

}  // namespace
}  // namespace capefp::gen
