#include "src/obs/metrics.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace capefp::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(-3.0);
  EXPECT_EQ(g.Value(), -0.5);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);
  h.Record(500.0);  // Overflow bucket.
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 555.5);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 555.5 / 4.0);
}

TEST(HistogramTest, EmptySnapshotIsSafe) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesAndClamps) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Record(1.5);  // All in the (1, 2] bucket.
  const HistogramSnapshot snap = h.Snapshot();
  const double p50 = snap.Percentile(50.0);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  h.Record(1000.0);  // Overflow answers clamp to the last finite bound.
  EXPECT_LE(h.Snapshot().Percentile(100.0), 4.0);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("capefp.test.counter");
  Counter* b = registry.GetCounter("capefp.test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("capefp.test.other"), a);
}

TEST(RegistryTest, SnapshotSeesAllMetricKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(7);
  registry.GetGauge("g")->Set(1.25);
  registry.GetHistogram("h")->Record(3.0);
  registry.AddCallbackCounter("cb.counter", [] { return uint64_t{11}; });
  registry.AddCallbackGauge("cb.gauge", [] { return 0.5; });

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c"), 7u);
  EXPECT_EQ(snap.counter("cb.counter"), 11u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.gauge("g"), 1.25);
  EXPECT_EQ(snap.gauge("cb.gauge"), 0.5);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(RegistryTest, DeltaSinceSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  h->Record(1.0);
  const MetricsSnapshot before = registry.Snapshot();
  c->Add(3);
  h->Record(2.0);
  h->Record(3.0);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counter("c"), 3u);
  EXPECT_EQ(delta.histograms.at("h").count, 2u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("h").sum, 5.0);
}

TEST(RegistryTest, PrometheusTextSanitizesNames) {
  MetricsRegistry registry;
  registry.GetCounter("capefp.search.expansions")->Add(3);
  registry.GetGauge("capefp.pool.hit-rate")->Set(0.5);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("capefp_search_expansions 3"), std::string::npos);
  EXPECT_NE(text.find("capefp_pool_hit_rate"), std::string::npos);
  EXPECT_EQ(text.find("capefp.search"), std::string::npos);
}

TEST(RegistryTest, HistogramPrometheusBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  h->Record(0.5);
  h->Record(1.5);
  h->Record(99.0);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3"), std::string::npos);
}

TEST(RegistryTest, JsonRoundTripsBasicShape) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(2);
  registry.GetHistogram("h")->Record(1.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// The TSan tier runs this binary: four threads hammer one counter, one
// gauge, and one histogram while a fifth snapshots concurrently; every
// increment must land (atomics may not lose updates, snapshots must not
// tear the totals once writers finish).
TEST(MetricsThreadingTest, ConcurrentUpdatesLoseNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer.counter");
  Gauge* gauge = registry.GetGauge("hammer.gauge");
  Histogram* hist = registry.GetHistogram("hammer.hist", {0.5, 1.5, 2.5});

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.Snapshot();
      const uint64_t now = snap.counter("hammer.counter");
      // Counter reads are monotone even mid-hammer.
      EXPECT_GE(now, last);
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        gauge->Set(static_cast<double>(t));
        hist->Record(static_cast<double>(i % 3));
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("hammer.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot h = snap.histograms.at("hammer.hist");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count);
  const double g = snap.gauge("hammer.gauge");
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, kThreads);
}

}  // namespace
}  // namespace capefp::obs
