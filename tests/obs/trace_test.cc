#include "src/obs/trace.h"

#include <string>
#include <utility>

#include "gtest/gtest.h"

namespace capefp::obs {
namespace {

// Finds the unique span with this name, or -1.
int FindSpan(const Trace& trace, const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    if (trace.spans()[i].name == name) {
      EXPECT_EQ(found, -1) << "duplicate span " << name;
      found = static_cast<int>(i);
    }
  }
  return found;
}

TEST(TraceTest, SpansNestUnderTheInnermostOpenSpan) {
  Trace trace;
  {
    Trace::Span root = trace.StartSpan("root");
    {
      Trace::Span child = trace.StartSpan("child");
      Trace::Span grandchild = trace.StartSpan("grandchild");
    }
    Trace::Span sibling = trace.StartSpan("sibling");
  }
  const int root = FindSpan(trace, "root");
  const int child = FindSpan(trace, "child");
  const int grandchild = FindSpan(trace, "grandchild");
  const int sibling = FindSpan(trace, "sibling");
  ASSERT_GE(root, 0);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(root)].parent, -1);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(child)].parent, root);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(grandchild)].parent, child);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(sibling)].parent, root);
}

TEST(TraceTest, EndStampsDurationAndClosesTheSpan) {
  Trace trace;
  Trace::Span span = trace.StartSpan("work");
  EXPECT_TRUE(span.active());
  span.End();
  EXPECT_FALSE(span.active());
  span.End();  // Idempotent on an inactive handle.
  const Trace::SpanData& data = trace.spans()[0];
  EXPECT_FALSE(data.open);
  EXPECT_GE(data.duration_ms, 0.0);
  EXPECT_GE(data.start_ms, 0.0);
}

TEST(TraceTest, SpanIsMovable) {
  Trace trace;
  Trace::Span a = trace.StartSpan("moved");
  Trace::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.active());
  b.AddAttr("k", 1.0);
  b.End();
  EXPECT_FALSE(trace.spans()[0].open);
  ASSERT_EQ(trace.spans()[0].attrs.size(), 1u);
  EXPECT_EQ(trace.spans()[0].attrs[0].first, "k");
}

TEST(TraceTest, AddLeafAggregatesRepeatedWorkIntoOneNode) {
  Trace trace;
  {
    Trace::Span root = trace.StartSpan("search");
    trace.AddLeaf("edge_ttf", 0.25, 10);
    trace.AddLeaf("edge_ttf", 0.75, 30);
    trace.AddLeaf("storage_io", 1.0);
  }
  const int root = FindSpan(trace, "search");
  const int leaf = FindSpan(trace, "edge_ttf");
  ASSERT_GE(leaf, 0);
  const Trace::SpanData& data = trace.spans()[static_cast<size_t>(leaf)];
  EXPECT_EQ(data.parent, root);
  EXPECT_EQ(data.count, 40u);
  EXPECT_DOUBLE_EQ(data.duration_ms, 1.0);
  EXPECT_GE(FindSpan(trace, "storage_io"), 0);
}

TEST(TraceTest, AddLeafAttrAccumulatesPerKey) {
  Trace trace;
  Trace::Span root = trace.StartSpan("search");
  trace.AddLeafAttr("edge_ttf", "points", 4.0);
  trace.AddLeafAttr("edge_ttf", "points", 6.0);
  trace.AddLeafAttr("edge_ttf", "segments", 1.0);
  root.End();
  const int leaf = FindSpan(trace, "edge_ttf");
  ASSERT_GE(leaf, 0);
  const Trace::SpanData& data = trace.spans()[static_cast<size_t>(leaf)];
  ASSERT_EQ(data.attrs.size(), 2u);
  EXPECT_EQ(data.attrs[0].first, "points");
  EXPECT_DOUBLE_EQ(data.attrs[0].second, 10.0);
  EXPECT_EQ(data.attrs[1].first, "segments");
  EXPECT_DOUBLE_EQ(data.attrs[1].second, 1.0);
}

TEST(TraceTest, TraceAddAttrTargetsTheInnermostOpenSpan) {
  Trace trace;
  trace.AddAttr("ignored", 1.0);  // No open span: silently dropped.
  EXPECT_TRUE(trace.spans().empty());
  Trace::Span outer = trace.StartSpan("outer");
  {
    Trace::Span inner = trace.StartSpan("inner");
    trace.AddAttr("depth", 2.0);
  }
  trace.AddAttr("depth", 1.0);
  outer.End();
  const int outer_id = FindSpan(trace, "outer");
  const int inner_id = FindSpan(trace, "inner");
  ASSERT_EQ(trace.spans()[static_cast<size_t>(inner_id)].attrs.size(), 1u);
  EXPECT_DOUBLE_EQ(
      trace.spans()[static_cast<size_t>(inner_id)].attrs[0].second, 2.0);
  ASSERT_EQ(trace.spans()[static_cast<size_t>(outer_id)].attrs.size(), 1u);
  EXPECT_DOUBLE_EQ(
      trace.spans()[static_cast<size_t>(outer_id)].attrs[0].second, 1.0);
}

TEST(TraceTest, ToTextIndentsChildrenAndShowsCountsAndAttrs) {
  Trace trace;
  {
    Trace::Span root = trace.StartSpan("query.all_fp");
    root.AddAttr("source", 0.0);
    {
      Trace::Span search = trace.StartSpan("search");
      trace.AddLeaf("edge_ttf", 0.5, 51);
    }
  }
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("query.all_fp"), std::string::npos);
  EXPECT_NE(text.find("[source=0]"), std::string::npos);
  EXPECT_NE(text.find("\n  search"), std::string::npos);
  EXPECT_NE(text.find("\n    edge_ttf"), std::string::npos);
  EXPECT_NE(text.find("(x51)"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

TEST(TraceTest, JsonListsSpansWithParentLinks) {
  Trace trace;
  {
    Trace::Span root = trace.StartSpan("root");
    Trace::Span child = trace.StartSpan("child");
    child.AddAttr("n", 3.0);
  }
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\": \"root\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"child\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"parent\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"attrs\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
}

}  // namespace
}  // namespace capefp::obs
