// End-to-end observability: a disk-backed FastestPathEngine answering
// traced queries must produce (a) a span tree with the documented shape and
// (b) trace attributes that reconcile exactly with the metric-registry
// deltas — the edge_ttf leaf count equals the TTF-cache lookups the query
// caused, hits + misses equals lookups, and engine counters advance by the
// work actually done.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/gen/suffolk_generator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tdf/speed_pattern.h"
#include "tests/testing/temp_path.h"

namespace capefp::core {
namespace {

using network::NodeId;
using tdf::HhMm;

// The unique span with this name, or nullptr.
const obs::Trace::SpanData* FindSpan(const obs::Trace& trace,
                                     const std::string& name) {
  const obs::Trace::SpanData* found = nullptr;
  for (const obs::Trace::SpanData& span : trace.spans()) {
    if (span.name == name) {
      EXPECT_EQ(found, nullptr) << "duplicate span " << name;
      found = &span;
    }
  }
  return found;
}

double Attr(const obs::Trace::SpanData& span, const std::string& key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing attr " << key << " on span " << span.name;
  return -1.0;
}

class ObservabilityIntegrationTest : public ::testing::Test {
 protected:
  ObservabilityIntegrationTest()
      : sn_(gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small())),
        path_(capefp::testing::UniqueTempPath("obs_integration.ccam")) {
    EngineOptions options;
    options.ccam_path = path_;
    options.ccam_buffer_pool_pages = 8;  // Small pool: queries must fault.
    auto engine = FastestPathEngine::Create(&sn_.network, options);
    CAPEFP_CHECK(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }
  ~ObservabilityIntegrationTest() override { std::remove(path_.c_str()); }

  ProfileQuery FarQuery() const {
    const auto t = static_cast<NodeId>(sn_.network.num_nodes() - 1);
    return {0, t, HhMm(7, 0), HhMm(9, 0)};
  }

  gen::SuffolkNetwork sn_;
  std::string path_;
  std::unique_ptr<FastestPathEngine> engine_;
};

TEST_F(ObservabilityIntegrationTest, TracedAllFpReconcilesWithRegistry) {
  const obs::MetricsSnapshot before = engine_->metrics()->Snapshot();
  obs::Trace trace;
  const AllFpResult result = engine_->AllFastestPaths(FarQuery(), &trace);
  ASSERT_TRUE(result.found);
  const obs::MetricsSnapshot delta =
      engine_->metrics()->Snapshot().DeltaSince(before);

  // Span tree shape: query.all_fp -> {estimator, search -> edge_ttf}.
  const obs::Trace::SpanData* root = FindSpan(trace, "query.all_fp");
  const obs::Trace::SpanData* estimator = FindSpan(trace, "estimator");
  const obs::Trace::SpanData* search = FindSpan(trace, "search");
  const obs::Trace::SpanData* edge_ttf = FindSpan(trace, "edge_ttf");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(estimator, nullptr);
  ASSERT_NE(search, nullptr);
  ASSERT_NE(edge_ttf, nullptr);
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(Attr(*root, "source"), 0.0);
  EXPECT_FALSE(root->open);
  EXPECT_GE(root->duration_ms,
            estimator->duration_ms + search->duration_ms - 1e-6);

  // The aggregated edge_ttf leaf counts one invocation per EdgeTtf call,
  // i.e. per TTF-cache lookup; the search span's hit/miss attrs and the
  // registry's cache counters must all tell the same story.
  const double hits = Attr(*search, "ttf_cache_hits");
  const double misses = Attr(*search, "ttf_cache_misses");
  EXPECT_EQ(static_cast<double>(edge_ttf->count), hits + misses);
  EXPECT_EQ(delta.counter("capefp.ttf_cache.hits"),
            static_cast<uint64_t>(hits));
  EXPECT_EQ(delta.counter("capefp.ttf_cache.misses"),
            static_cast<uint64_t>(misses));

  // Buffer-pool attribution: a fresh 8-page pool cannot serve the far
  // query without faulting, and every fault is a pager read recorded by
  // the storage_io leaf.
  const double faults = Attr(*search, "pages_faulted");
  EXPECT_GT(faults, 0.0);
  const obs::Trace::SpanData* storage_io = FindSpan(trace, "storage_io");
  ASSERT_NE(storage_io, nullptr);
  EXPECT_EQ(static_cast<double>(storage_io->count), faults);
  EXPECT_EQ(delta.counter("capefp.storage.pager.page_reads"),
            static_cast<uint64_t>(faults));

  // Engine counters advanced by exactly this query's work.
  EXPECT_EQ(delta.counter("capefp.engine.queries"), 1u);
  EXPECT_EQ(delta.counter("capefp.search.expansions"),
            static_cast<uint64_t>(result.stats.expansions));
  EXPECT_EQ(
      delta.histograms.at("capefp.engine.query_latency_ms").count, 1u);
  EXPECT_EQ(Attr(*search, "expansions"),
            static_cast<double>(result.stats.expansions));

  // The rendered tree mentions every span (smoke for ToText/ToJson).
  const std::string text = trace.ToText();
  for (const char* name :
       {"query.all_fp", "estimator", "search", "edge_ttf", "storage_io"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(trace.ToJson().find(name), std::string::npos) << name;
  }
}

TEST_F(ObservabilityIntegrationTest, RegistryCacheCountersReconcile) {
  for (int i = 0; i < 3; ++i) {
    engine_->AllFastestPaths(FarQuery());
  }
  const obs::MetricsSnapshot snap = engine_->metrics()->Snapshot();
  const uint64_t hits = snap.counter("capefp.ttf_cache.hits");
  const uint64_t misses = snap.counter("capefp.ttf_cache.misses");
  const uint64_t lookups = snap.counter("capefp.ttf_cache.lookups");
  EXPECT_GT(lookups, 0u);
  EXPECT_EQ(hits + misses, lookups);
  EXPECT_NEAR(snap.gauge("capefp.ttf_cache.hit_rate"),
              static_cast<double>(hits) / static_cast<double>(lookups),
              1e-12);

  const uint64_t pool_hits = snap.counter("capefp.storage.pool.hits");
  const uint64_t pool_faults = snap.counter("capefp.storage.pool.faults");
  ASSERT_GT(pool_hits + pool_faults, 0u);
  EXPECT_NEAR(snap.gauge("capefp.storage.pool.hit_rate"),
              static_cast<double>(pool_hits) /
                  static_cast<double>(pool_hits + pool_faults),
              1e-12);
}

TEST_F(ObservabilityIntegrationTest, SingleFpAndFixedDepartureAreTraced) {
  obs::Trace single_trace;
  const SingleFpResult single =
      engine_->SingleFastestPath(FarQuery(), &single_trace);
  ASSERT_TRUE(single.found);
  EXPECT_NE(FindSpan(single_trace, "query.single_fp"), nullptr);
  EXPECT_NE(FindSpan(single_trace, "search"), nullptr);

  const obs::MetricsSnapshot before = engine_->metrics()->Snapshot();
  obs::Trace td_trace;
  const TdAStarResult at = engine_->FastestPathAt(
      FarQuery().source, FarQuery().target, HhMm(7, 30), &td_trace);
  ASSERT_TRUE(at.found);
  const obs::Trace::SpanData* td = FindSpan(td_trace, "td_astar");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(Attr(*td, "expanded_nodes"),
            static_cast<double>(at.expanded_nodes));
  const obs::MetricsSnapshot delta =
      engine_->metrics()->Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counter("capefp.engine.td_queries"), 1u);
  EXPECT_EQ(delta.counter("capefp.td_astar.expanded_nodes"),
            static_cast<uint64_t>(at.expanded_nodes));
}

TEST_F(ObservabilityIntegrationTest, RunBatchWithMetricsPayload) {
  std::vector<ProfileQuery> queries;
  const size_t n = sn_.network.num_nodes();
  for (size_t i = 0; i < 6; ++i) {
    queries.push_back({static_cast<NodeId>(i),
                       static_cast<NodeId>(n - 1 - i), HhMm(7, 0),
                       HhMm(8, 0)});
  }
  const obs::MetricsSnapshot before = engine_->metrics()->Snapshot();
  std::vector<obs::Trace> traces;
  const BatchResult batch =
      engine_->RunBatchWithMetrics(queries, /*threads=*/2, &traces);

  ASSERT_EQ(batch.results.size(), queries.size());
  ASSERT_EQ(batch.per_query_millis.size(), queries.size());
  EXPECT_EQ(batch.latency_ms.count, queries.size());
  ASSERT_EQ(traces.size(), queries.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    const obs::Trace::SpanData* root = FindSpan(traces[i], "query.all_fp");
    ASSERT_NE(root, nullptr) << "query " << i;
    EXPECT_EQ(Attr(*root, "source"),
              static_cast<double>(queries[i].source));
  }
  const obs::MetricsSnapshot delta = batch.metrics.DeltaSince(before);
  EXPECT_EQ(delta.counter("capefp.engine.queries"), queries.size());
  EXPECT_EQ(delta.counter("capefp.engine.batches"), 1u);
  EXPECT_EQ(delta.histograms.at("capefp.engine.query_latency_ms").count,
            queries.size());

  // The batch answers must match untraced sequential answers bit-for-bit
  // (tracing must not perturb results).
  const std::vector<AllFpResult> reference = engine_->RunBatch(queries, 1);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch.results[i].found, reference[i].found);
    if (!reference[i].found) continue;
    EXPECT_TRUE(tdf::PwlFunction::ApproxEqual(*batch.results[i].border,
                                              *reference[i].border, 1e-12));
  }
}

TEST_F(ObservabilityIntegrationTest, PrometheusExportListsTheMetricTree) {
  engine_->AllFastestPaths(FarQuery());
  const std::string text =
      engine_->metrics()->Snapshot().ToPrometheusText();
  for (const char* family :
       {"capefp_engine_queries", "capefp_engine_query_latency_ms_bucket",
        "capefp_search_expansions", "capefp_ttf_cache_hits",
        "capefp_storage_pool_hit_rate", "capefp_storage_pager_page_reads"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace capefp::core
