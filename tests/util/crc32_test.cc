#include "src/util/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace capefp::util {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (RFC 3720 test vector).
  unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
  // 32 0xff bytes.
  unsigned char ones[32];
  std::memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); split += 7) {
    const uint32_t first = Crc32c(data.data(), split);
    const uint32_t resumed =
        Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(resumed, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(64, 'x');
  const uint32_t baseline = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 9) {
    std::string mutated = data;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x01);
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), baseline)
        << "flip at byte " << byte;
  }
}

TEST(Crc32cTest, DistinctInputsDistinctSums) {
  EXPECT_NE(Crc32c("abc", 3), Crc32c("abd", 3));
  EXPECT_NE(Crc32c("abc", 3), Crc32c("cba", 3));
}

}  // namespace
}  // namespace capefp::util
