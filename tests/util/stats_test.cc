#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace capefp::util {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.1180339887, 1e-9);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(75.0), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 30.0);
}

TEST(SummaryTest, SingleSample) {
  Summary s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, AddAfterPercentileKeepsWorking) {
  Summary s;
  s.Add(5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.Add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SummaryTest, EmptySummaryIsSafeEverywhere) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 0.0);
  EXPECT_EQ(s.ToString(), "n=0");
}

TEST(SummaryTest, ToStringMentionsCount) {
  Summary s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_NE(s.ToString().find("n=2"), std::string::npos);
  Summary empty;
  EXPECT_EQ(empty.ToString(), "n=0");
}

TEST(WallTimerTest, MeasuresNonNegativeTime) {
  WallTimer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Restart();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace capefp::util
