#include "src/util/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace capefp::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-4.0, 6.0);
    EXPECT_GE(d, -4.0);
    EXPECT_LT(d, 6.0);
  }
}

TEST(RngTest, NextBoolProbabilityRoughlyRespected) {
  Rng rng(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace capefp::util
