#include "src/util/check.h"

#include <gtest/gtest.h>

namespace capefp::util {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  CAPEFP_CHECK(true);
  CAPEFP_CHECK_EQ(1, 1);
  CAPEFP_CHECK_LT(1, 2) << "unused message";
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CAPEFP_CHECK(false) << "boom", "CHECK failed");
}

TEST(CheckDeathTest, FailingCheckIncludesMessage) {
  EXPECT_DEATH(CAPEFP_CHECK_EQ(1, 2) << "context 42", "context 42");
}

TEST(CheckTest, CheckInsideIfElseBindsCorrectly) {
  // Regression guard for the dangling-else shape of the macro.
  bool reached_else = false;
  if (1 == 1)
    CAPEFP_CHECK(true);
  else
    reached_else = true;
  EXPECT_FALSE(reached_else);
}

}  // namespace
}  // namespace capefp::util
