#include "src/util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace capefp::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::NotFound("node 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "node 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: node 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<std::string> v = Status::IoError("disk gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

Status FailingStep() { return Status::Corruption("bad page"); }

Status UsesReturnIfError() {
  CAPEFP_RETURN_IF_ERROR(FailingStep());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace capefp::util
