#include "src/storage/slotted_page.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace capefp::storage {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : buf_(256, 0), page_(buf_.data(), 256) {
    page_.Format();
  }
  std::vector<char> buf_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, AppendAndRead) {
  const int s0 = page_.AppendRecord("hello");
  const int s1 = page_.AppendRecord("world!");
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(page_.slot_count(), 2u);
  EXPECT_EQ(page_.Record(0), "hello");
  EXPECT_EQ(page_.Record(1), "world!");
}

TEST_F(SlottedPageTest, DeleteKeepsSlotIndicesStable) {
  page_.AppendRecord("aaa");
  page_.AppendRecord("bbb");
  page_.AppendRecord("ccc");
  page_.DeleteRecord(1);
  EXPECT_EQ(page_.Record(0), "aaa");
  EXPECT_TRUE(page_.Record(1).empty());
  EXPECT_EQ(page_.Record(2), "ccc");
  EXPECT_EQ(page_.slot_count(), 3u);
}

TEST_F(SlottedPageTest, UpdateInPlaceShrinks) {
  page_.AppendRecord("longrecord");
  EXPECT_TRUE(page_.UpdateRecordInPlace(0, "short"));
  EXPECT_EQ(page_.Record(0), "short");
  EXPECT_FALSE(page_.UpdateRecordInPlace(0, "muchlongerthanbefore"));
  EXPECT_EQ(page_.Record(0), "short");
}

TEST_F(SlottedPageTest, RejectsOversizedAppend) {
  const std::string big(300, 'x');
  EXPECT_EQ(page_.AppendRecord(big), -1);
}

TEST_F(SlottedPageTest, FillsUntilExactCapacity) {
  int appended = 0;
  while (page_.AppendRecord("0123456789") >= 0) ++appended;
  // 256-byte page: header 4 + k*(10 record + 4 slot) + 4 spare slot
  // reserve <= 256 → 18 records.
  EXPECT_EQ(appended, 18);
  EXPECT_LT(page_.ContiguousFreeBytes(), 10u);
}

TEST_F(SlottedPageTest, CompactReclaimsDeadSpace) {
  while (page_.AppendRecord("0123456789") >= 0) {
  }
  // Kill every other record; contiguous space stays tiny until compaction.
  for (uint16_t s = 0; s < page_.slot_count(); s += 2) {
    page_.DeleteRecord(s);
  }
  EXPECT_EQ(page_.AppendRecord("0123456789"), -1);
  page_.Compact();
  EXPECT_GE(page_.ContiguousFreeBytes(), 10u);
  const int slot = page_.AppendRecord("newrecordA");
  EXPECT_GE(slot, 0);
  // Survivors are intact.
  for (uint16_t s = 1; s < 17; s += 2) {
    EXPECT_EQ(page_.Record(s), "0123456789") << "slot " << s;
  }
  EXPECT_EQ(page_.Record(static_cast<uint16_t>(slot)), "newrecordA");
}

TEST_F(SlottedPageTest, TotalFreeCountsDeadRecords) {
  page_.AppendRecord("0123456789");
  page_.AppendRecord("0123456789");
  const uint32_t before = page_.TotalFreeBytes();
  page_.DeleteRecord(0);
  EXPECT_EQ(page_.TotalFreeBytes(), before + 10);
}

TEST_F(SlottedPageTest, EmptyRecordAppendIsValid) {
  const int slot = page_.AppendRecord("");
  EXPECT_EQ(slot, 0);
  EXPECT_TRUE(page_.Record(0).empty());
}

TEST(SlottedPageDeathTest, OutOfRangeSlotAborts) {
  std::vector<char> buf(256, 0);
  SlottedPage page(buf.data(), 256);
  page.Format();
  EXPECT_DEATH(page.Record(0), "CHECK failed");
  EXPECT_DEATH(page.DeleteRecord(5), "CHECK failed");
}

}  // namespace
}  // namespace capefp::storage
