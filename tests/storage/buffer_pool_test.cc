#include "src/storage/buffer_pool.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = capefp::testing::UniqueTempPath("bufpool_test.db");
    auto pager_or = Pager::Create(path_, 256);
    ASSERT_TRUE(pager_or.ok());
    pager_ = std::move(*pager_or);
  }
  void TearDown() override {
    pager_.reset();
    std::remove(path_.c_str());
  }

  PageId NewPageWithByte(BufferPool& pool, char fill) {
    auto handle_or = pool.AllocateAndAcquire();
    EXPECT_TRUE(handle_or.ok());
    handle_or->mutable_data()[0] = fill;
    return handle_or->page_id();
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(BufferPoolTest, HitOnSecondAcquire) {
  BufferPool pool(pager_.get(), 4);
  const PageId id = NewPageWithByte(pool, 'a');
  {
    auto h = pool.Acquire(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 'a');
  }
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().faults, 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(pager_.get(), 2);
  const PageId a = NewPageWithByte(pool, 'a');
  const PageId b = NewPageWithByte(pool, 'b');
  const PageId c = NewPageWithByte(pool, 'c');  // Evicts a (LRU).
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writebacks, 1u);
  // Re-acquiring a faults it back with its written contents.
  auto h = pool.Acquire(a);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->data()[0], 'a');
  EXPECT_GE(pool.stats().faults, 1u);
  (void)b;
  (void)c;
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(pager_.get(), 2);
  auto a_or = pool.AllocateAndAcquire();
  ASSERT_TRUE(a_or.ok());
  const PageId a = a_or->page_id();
  a_or->mutable_data()[0] = 'a';
  // Fill the other frame twice; 'a' must survive because it is pinned.
  NewPageWithByte(pool, 'b');
  NewPageWithByte(pool, 'c');
  auto again = pool.Acquire(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'a');
  EXPECT_EQ(pool.stats().faults, 0u);  // Never left the pool.
}

TEST_F(BufferPoolTest, ExhaustionWhenAllPinned) {
  BufferPool pool(pager_.get(), 2);
  auto a = pool.AllocateAndAcquire();
  auto b = pool.AllocateAndAcquire();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.AllocateAndAcquire();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), util::StatusCode::kInternal);
}

TEST_F(BufferPoolTest, ReleaseEarlyAllowsReuse) {
  BufferPool pool(pager_.get(), 1);
  auto a = pool.AllocateAndAcquire();
  ASSERT_TRUE(a.ok());
  a->Release();
  auto b = pool.AllocateAndAcquire();
  EXPECT_TRUE(b.ok());
}

TEST_F(BufferPoolTest, FlushAllPersists) {
  BufferPool pool(pager_.get(), 4);
  const PageId id = NewPageWithByte(pool, 'z');
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(256);
  ASSERT_TRUE(pager_->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(buf[0], 'z');
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  BufferPool pool(pager_.get(), 2);
  auto a = pool.AllocateAndAcquire();
  ASSERT_TRUE(a.ok());
  PageHandle moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
  // Frame is reusable now.
  auto b = pool.AllocateAndAcquire();
  auto c = pool.AllocateAndAcquire();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
}

TEST_F(BufferPoolTest, FreePageDropsFromCache) {
  BufferPool pool(pager_.get(), 4);
  const PageId id = NewPageWithByte(pool, 'q');
  ASSERT_TRUE(pool.FreePage(id).ok());
  // Reallocation recycles the freed page id.
  auto again = pool.AllocateAndAcquire();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->page_id(), id);
}

TEST_F(BufferPoolTest, FreeingPinnedPageFails) {
  BufferPool pool(pager_.get(), 4);
  auto a = pool.AllocateAndAcquire();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.FreePage(a->page_id()).code(),
            util::StatusCode::kInternal);
}

class BufferPoolModelTest : public BufferPoolTest,
                            public ::testing::WithParamInterface<uint64_t> {};

// Random acquire/write/release/free sequences against an in-memory
// reference model: whatever the cache does internally, reads must always
// return the bytes last written to that page.
TEST_P(BufferPoolModelTest, MatchesReferenceModelUnderRandomOps) {
  util::Rng rng(GetParam());
  BufferPool pool(pager_.get(), 4);
  std::map<PageId, char> model;           // page -> expected first byte
  std::vector<PageId> live_pages;
  std::vector<PageHandle> pins;
  std::vector<PageId> pinned_ids;

  for (int op = 0; op < 2000; ++op) {
    const int action = static_cast<int>(rng.NextBounded(10));
    if (action < 2 || live_pages.empty()) {
      // Allocate a new page with a known byte.
      auto handle = pool.AllocateAndAcquire();
      if (!handle.ok()) continue;  // All frames pinned.
      const char value = static_cast<char>('a' + rng.NextBounded(26));
      handle->mutable_data()[0] = value;
      model[handle->page_id()] = value;
      live_pages.push_back(handle->page_id());
    } else if (action < 7) {
      // Read (and sometimes rewrite) a random live page.
      const PageId id = live_pages[rng.NextBounded(live_pages.size())];
      auto handle = pool.Acquire(id);
      if (!handle.ok()) continue;
      ASSERT_EQ(handle->data()[0], model.at(id)) << "page " << id;
      if (rng.NextBool(0.4)) {
        const char value = static_cast<char>('a' + rng.NextBounded(26));
        handle->mutable_data()[0] = value;
        model[id] = value;
      }
      if (rng.NextBool(0.2) && pins.size() < 2) {
        pinned_ids.push_back(id);
        pins.push_back(std::move(*handle));  // Keep pinned for a while.
      }
    } else if (action < 8 && !pins.empty()) {
      pins.erase(pins.begin());
      pinned_ids.erase(pinned_ids.begin());
    } else if (live_pages.size() > 1) {
      // Free an unpinned page.
      const size_t idx = rng.NextBounded(live_pages.size());
      const PageId id = live_pages[idx];
      bool pinned = false;
      for (PageId p : pinned_ids) pinned = pinned || p == id;
      if (pinned) continue;
      ASSERT_TRUE(pool.FreePage(id).ok());
      model.erase(id);
      live_pages.erase(live_pages.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
  pins.clear();
  ASSERT_TRUE(pool.FlushAll().ok());
  // Everything the model knows must be on disk now.
  std::vector<char> buf(256);
  for (const auto& [id, value] : model) {
    ASSERT_TRUE(pager_->ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf[0], value) << "page " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolModelTest,
                         ::testing::Values(3, 41, 88, 157));

TEST_F(BufferPoolTest, StatsResetClearsCounters) {
  BufferPool pool(pager_.get(), 2);
  NewPageWithByte(pool, 'a');
  pool.ResetStats();
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().faults, 0u);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

}  // namespace
}  // namespace capefp::storage
