// Failure-injection tests: bit rot and truncation on the page file must
// surface as Corruption/IoError statuses, never as silently wrong data.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/gen/random_network.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/storage/pager.h"
#include "src/util/random.h"

namespace capefp::storage {
namespace {

// Flips one bit at `offset` in `path`.
void FlipBit(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/capefp_corruption.db";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CorruptionTest, PagerDetectsFlippedPayloadByte) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<char> buf(256, 'a');
    ASSERT_TRUE((*pager)->WritePage(*id, buf.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  // Page 1 payload starts at one physical stride (256 + 4).
  FlipBit(path_, 260 + 10);
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(1, buf.data()).code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, PagerDetectsFlippedCrcByte) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<char> buf(256, 'b');
    ASSERT_TRUE((*pager)->WritePage(*id, buf.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FlipBit(path_, 260 + 256);  // Inside the trailer itself.
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(1, buf.data()).code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, PagerDetectsHeaderCorruption) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FlipBit(path_, 12);  // num_pages field.
  EXPECT_EQ(Pager::Open(path_).status().code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, TruncatedFileIsAnIoError) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto a = (*pager)->AllocatePage();
    auto b = (*pager)->AllocatePage();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  ASSERT_EQ(::truncate(path_.c_str(), FileSize(path_) - 100), 0);
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());  // Header intact.
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(2, buf.data()).code(),
            util::StatusCode::kIoError);
}

TEST_F(CorruptionTest, CcamFindNodeSurfacesCorruptPages) {
  gen::RandomNetworkOptions opt;
  opt.seed = 19;
  opt.num_nodes = 120;
  const network::RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());

  // Flip one payload bit in every data-region page in turn; every FindNode
  // must either succeed (page untouched by that lookup), or fail with a
  // clean status — never crash or hand back mangled records silently.
  const long size = FileSize(path_);
  const long stride = 2048 + 4;
  util::Rng rng(5);
  int corrupt_hits = 0;
  for (long page = 2; page < size / stride; page += 3) {
    FlipBit(path_, page * stride + 100);
    auto store = CcamStore::Open(path_);
    if (!store.ok()) {
      // Meta/schema page was hit.
      EXPECT_EQ(store.status().code(), util::StatusCode::kCorruption);
      ++corrupt_hits;
    } else {
      for (int probe = 0; probe < 20; ++probe) {
        const auto node = static_cast<network::NodeId>(
            rng.NextBounded(net.num_nodes()));
        auto record = (*store)->FindNode(node);
        if (!record.ok()) {
          EXPECT_EQ(record.status().code(), util::StatusCode::kCorruption);
          ++corrupt_hits;
        }
      }
    }
    FlipBit(path_, page * stride + 100);  // Restore.
  }
  EXPECT_GT(corrupt_hits, 0) << "injection never reached a live page";
  // After restoring every flip the store is healthy again.
  auto store = CcamStore::Open(path_);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->FindNode(0).ok());
}

}  // namespace
}  // namespace capefp::storage
