// Failure-injection tests: bit rot and truncation on the page file must
// surface as Corruption/IoError statuses, never as silently wrong data.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/gen/random_network.h"
#include "src/storage/bplus_tree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/storage/pager.h"
#include "src/storage/slotted_page.h"
#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::storage {
namespace {

// Flips one bit at `offset` in `path`.
void FlipBit(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = capefp::testing::UniqueTempPath("capefp_corruption.db");
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CorruptionTest, PagerDetectsFlippedPayloadByte) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<char> buf(256, 'a');
    ASSERT_TRUE((*pager)->WritePage(*id, buf.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  // Page 1 payload starts at one physical stride (256 + 4).
  FlipBit(path_, 260 + 10);
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(1, buf.data()).code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, PagerDetectsFlippedCrcByte) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<char> buf(256, 'b');
    ASSERT_TRUE((*pager)->WritePage(*id, buf.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FlipBit(path_, 260 + 256);  // Inside the trailer itself.
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(1, buf.data()).code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, PagerDetectsHeaderCorruption) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FlipBit(path_, 12);  // num_pages field.
  EXPECT_EQ(Pager::Open(path_).status().code(),
            util::StatusCode::kCorruption);
}

TEST_F(CorruptionTest, TruncatedFileIsAnIoError) {
  {
    auto pager = Pager::Create(path_, 256);
    ASSERT_TRUE(pager.ok());
    auto a = (*pager)->AllocatePage();
    auto b = (*pager)->AllocatePage();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  ASSERT_EQ(::truncate(path_.c_str(), FileSize(path_) - 100), 0);
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());  // Header intact.
  std::vector<char> buf(256);
  EXPECT_EQ((*pager)->ReadPage(2, buf.data()).code(),
            util::StatusCode::kIoError);
}

TEST_F(CorruptionTest, CcamFindNodeSurfacesCorruptPages) {
  gen::RandomNetworkOptions opt;
  opt.seed = 19;
  opt.num_nodes = 120;
  const network::RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());

  // Flip one payload bit in every data-region page in turn; every FindNode
  // must either succeed (page untouched by that lookup), or fail with a
  // clean status — never crash or hand back mangled records silently.
  const long size = FileSize(path_);
  const long stride = 2048 + 4;
  util::Rng rng(5);
  int corrupt_hits = 0;
  for (long page = 2; page < size / stride; page += 3) {
    FlipBit(path_, page * stride + 100);
    auto store = CcamStore::Open(path_);
    if (!store.ok()) {
      // Meta/schema page was hit.
      EXPECT_EQ(store.status().code(), util::StatusCode::kCorruption);
      ++corrupt_hits;
    } else {
      for (int probe = 0; probe < 20; ++probe) {
        const auto node = static_cast<network::NodeId>(
            rng.NextBounded(net.num_nodes()));
        auto record = (*store)->FindNode(node);
        if (!record.ok()) {
          EXPECT_EQ(record.status().code(), util::StatusCode::kCorruption);
          ++corrupt_hits;
        }
      }
    }
    FlipBit(path_, page * stride + 100);  // Restore.
  }
  EXPECT_GT(corrupt_hits, 0) << "injection never reached a live page";
  // After restoring every flip the store is healthy again.
  auto store = CcamStore::Open(path_);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->FindNode(0).ok());
}

// --- structural (CRC-consistent) corruption: the invariant validators must
// catch damage the checksum cannot see. -------------------------------------

void StoreU16At(char* page, size_t offset, uint16_t v) {
  std::memcpy(page + offset, &v, sizeof(v));
}

// Slot directory entry `slot` lives at page_size - 4*(slot+1):
// [u16 offset][u16 length].
void SetRawSlot(char* page, uint32_t page_size, uint16_t slot,
                uint16_t offset, uint16_t length) {
  StoreU16At(page, page_size - 4 * (slot + 1u), offset);
  StoreU16At(page, page_size - 4 * (slot + 1u) + 2, length);
}

TEST(SlottedPageCorruptionTest, SlotCountOverflowingPageIsRejected) {
  std::vector<char> buf(256, 0);
  SlottedPage page(buf.data(), 256);
  page.Format();
  ASSERT_TRUE(page.ValidateInvariants().ok());
  StoreU16At(buf.data(), 0, 500);  // 500 slots cannot fit 256 bytes.
  const util::Status status = page.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("500 slots overflow"), std::string::npos);
}

TEST(SlottedPageCorruptionTest, FreeOffsetOutsideRecordAreaIsRejected) {
  std::vector<char> buf(256, 0);
  SlottedPage page(buf.data(), 256);
  page.Format();
  ASSERT_GE(page.AppendRecord("hello"), 0);
  StoreU16At(buf.data(), 2, 255);  // Past the slot directory.
  const util::Status status = page.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("free offset 255"), std::string::npos);
}

TEST(SlottedPageCorruptionTest, RecordPointingPastFreeOffsetIsRejected) {
  std::vector<char> buf(256, 0);
  SlottedPage page(buf.data(), 256);
  page.Format();
  ASSERT_EQ(page.AppendRecord("abcdef"), 0);
  // Push the record's extent beyond the used area.
  SetRawSlot(buf.data(), 256, 0, /*offset=*/200, /*length=*/6);
  const util::Status status = page.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("slot 0"), std::string::npos);
  EXPECT_NE(status.message().find("outside record area"), std::string::npos);
}

TEST(SlottedPageCorruptionTest, OverlappingRecordsAreRejected) {
  std::vector<char> buf(256, 0);
  SlottedPage page(buf.data(), 256);
  page.Format();
  ASSERT_EQ(page.AppendRecord("aaaaaaaa"), 0);  // [4, 12)
  ASSERT_EQ(page.AppendRecord("bbbbbbbb"), 1);  // [12, 20)
  ASSERT_TRUE(page.ValidateInvariants().ok());
  // Drag slot 1 back so it overlaps slot 0's bytes.
  SetRawSlot(buf.data(), 256, 1, /*offset=*/8, /*length=*/8);
  const util::Status status = page.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("overlaps"), std::string::npos);
}

class BPlusTreeCorruptionTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 256;  // Leaf fanout (256-8)/16 = 15.

  void SetUp() override {
    path_ = capefp::testing::UniqueTempPath("capefp_btree_corruption.db");
    auto pager = Pager::Create(path_, kPageSize);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(*pager);
    pool_ = std::make_unique<BufferPool>(pager_.get(), 16);
    tree_ = std::make_unique<BPlusTree>(pool_.get(), kInvalidPage);
    ASSERT_TRUE(tree_->Init().ok());
    for (uint64_t k = 0; k < 60; ++k) {  // Forces leaf and root splits.
      ASSERT_TRUE(tree_->Put(k * 2, k).ok());
    }
    ASSERT_TRUE(tree_->ValidateInvariants().ok());
  }

  void TearDown() override {
    tree_.reset();
    pool_.reset();
    pager_.reset();
    std::remove(path_.c_str());
  }

  // Leftmost leaf page id (root is internal after 60 inserts).
  PageId LeftmostLeaf() {
    PageId id = tree_->root();
    for (;;) {
      auto handle = pool_->Acquire(id);
      EXPECT_TRUE(handle.ok());
      const char* page = handle->data();
      if (page[0] == 1) return id;  // kLeaf.
      uint32_t child;                // First child of an internal node.
      std::memcpy(&child, page + 8 + 8, sizeof(child));
      id = child;
    }
  }

  // Mutates `page_id` in place through the buffer pool (CRC stays valid on
  // write-back, so only the structural validator can object).
  void CorruptPage(PageId page_id, size_t offset, const void* bytes,
                   size_t len) {
    auto handle = pool_->Acquire(page_id);
    ASSERT_TRUE(handle.ok());
    std::memcpy(handle->mutable_data() + offset, bytes, len);
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeCorruptionTest, UnknownNodeTypeIsRejected) {
  const uint8_t bogus = 9;
  CorruptPage(LeftmostLeaf(), 0, &bogus, 1);
  const util::Status status = tree_->ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown type 9"), std::string::npos);
}

TEST_F(BPlusTreeCorruptionTest, FanoutOverflowIsRejected) {
  const uint16_t count = 200;  // Far above the 15-entry leaf capacity.
  CorruptPage(LeftmostLeaf(), 2, &count, sizeof(count));
  const util::Status status = tree_->ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceed fanout bound"), std::string::npos);
}

TEST_F(BPlusTreeCorruptionTest, OutOfOrderKeysAreRejected) {
  const uint64_t huge = ~0ull - 1;  // Entry 0 now exceeds entry 1.
  CorruptPage(LeftmostLeaf(), 8, &huge, sizeof(huge));
  const util::Status status = tree_->ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not strictly increasing"),
            std::string::npos);
}

TEST_F(BPlusTreeCorruptionTest, BrokenLeafChainIsRejected) {
  const uint32_t nowhere = kInvalidPage;  // First leaf no longer links on.
  CorruptPage(LeftmostLeaf(), 4, &nowhere, sizeof(nowhere));
  const util::Status status = tree_->ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("broken leaf chain"), std::string::npos);
}

TEST_F(BPlusTreeCorruptionTest, KeyOutsideSeparatorRangeIsRejected) {
  // Smuggle a key above the subtree's separator into the leftmost leaf's
  // *last* entry: order within the leaf stays fine (999 exceeds every other
  // key there), so only the cross-node range check can see it.
  const PageId leaf = LeftmostLeaf();
  uint16_t count = 0;
  {
    auto handle = pool_->Acquire(leaf);
    ASSERT_TRUE(handle.ok());
    std::memcpy(&count, handle->data() + 2, sizeof(count));
    ASSERT_GT(count, 0);
  }
  const uint64_t huge = 999;  // Max key overall is 118; any separator < 999.
  CorruptPage(leaf, 8 + (count - 1u) * 16u, &huge, sizeof(huge));
  const util::Status status = tree_->ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("separator range"), std::string::npos);
}

TEST(CcamDeepValidateCorruptionTest, InflatedMetaNodeCountIsRejected) {
  const std::string path =
      capefp::testing::UniqueTempPath("capefp_deep_corruption.db");
  gen::RandomNetworkOptions opt;
  opt.seed = 7;
  opt.num_nodes = 60;
  const network::RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path, {}).ok());
  {
    auto store = CcamStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->DeepValidate().ok());
  }
  // Bump num_nodes on the meta page through the pager, so the CRC is
  // rewritten and only DeepValidate's cross-checks can notice.
  {
    auto pager = Pager::Open(path);
    ASSERT_TRUE(pager.ok());
    std::vector<char> page((*pager)->page_size());
    ASSERT_TRUE((*pager)->ReadPage(1, page.data()).ok());
    uint32_t num_nodes;
    std::memcpy(&num_nodes, page.data() + 4, sizeof(num_nodes));
    ++num_nodes;
    std::memcpy(page.data() + 4, &num_nodes, sizeof(num_nodes));
    ASSERT_TRUE((*pager)->WritePage(1, page.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  auto store = CcamStore::Open(path);
  ASSERT_TRUE(store.ok());
  const util::Status status = (*store)->DeepValidate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("index holds 60 entries for 61 nodes"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capefp::storage
