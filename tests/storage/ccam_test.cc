#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/gen/random_network.h"
#include "src/gen/suffolk_generator.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "tests/testing/temp_path.h"

namespace capefp::storage {
namespace {

using network::NeighborEdge;
using network::NodeId;
using network::RoadNetwork;

class CcamTest : public ::testing::Test {
 protected:
  std::string path_;
  void SetUp() override {
    path_ = capefp::testing::UniqueTempPath("ccam_test.db");
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(NodeRecordTest, EncodeDecodeRoundTrip) {
  NodeRecord record;
  record.location = {1.5, -2.25};
  record.edges = {
      {7, 0.5, 2, network::RoadClass::kLocalInCity},
      {9, 1.25, 0, network::RoadClass::kInboundHighway},
  };
  auto decoded = DecodeNodeRecord(EncodeNodeRecord(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->location, record.location);
  ASSERT_EQ(decoded->edges.size(), 2u);
  EXPECT_EQ(decoded->edges[1].to, 9);
  EXPECT_DOUBLE_EQ(decoded->edges[1].distance_miles, 1.25);
  EXPECT_EQ(decoded->edges[0].pattern, 2);
  EXPECT_EQ(decoded->edges[0].road_class, network::RoadClass::kLocalInCity);
}

TEST(NodeRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeNodeRecord("abc").ok());
  NodeRecord record;
  record.location = {0, 0};
  record.edges = {{1, 1.0, 0, network::RoadClass::kLocalInCity}};
  std::string bytes = EncodeNodeRecord(record);
  EXPECT_FALSE(DecodeNodeRecord(bytes.substr(0, bytes.size() - 3)).ok());
  bytes += "x";
  EXPECT_FALSE(DecodeNodeRecord(bytes).ok());
}

TEST_F(CcamTest, BuildOpenRoundTripMatchesNetwork) {
  gen::RandomNetworkOptions opt;
  opt.seed = 31;
  opt.num_nodes = 200;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  auto report = BuildCcamFile(net, path_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->data_pages, 0u);
  EXPECT_GT(report->index_pages, 0u);

  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  CcamStore& store = **store_or;
  EXPECT_EQ(store.num_nodes(), net.num_nodes());
  EXPECT_DOUBLE_EQ(store.max_speed(), net.max_speed());
  EXPECT_EQ(store.calendar().cycle(), net.calendar().cycle());
  ASSERT_EQ(store.patterns().size(), net.num_patterns());

  for (size_t n = 0; n < net.num_nodes(); ++n) {
    const auto id = static_cast<NodeId>(n);
    auto record = store.FindNode(id);
    ASSERT_TRUE(record.ok()) << "node " << n;
    EXPECT_DOUBLE_EQ(record->location.x, net.location(id).x);
    EXPECT_DOUBLE_EQ(record->location.y, net.location(id).y);
    ASSERT_EQ(record->edges.size(), net.OutEdges(id).size());
    for (size_t i = 0; i < record->edges.size(); ++i) {
      const network::Edge& e = net.edge(net.OutEdges(id)[i]);
      EXPECT_EQ(record->edges[i].to, e.to);
      EXPECT_DOUBLE_EQ(record->edges[i].distance_miles, e.distance_miles);
      EXPECT_EQ(record->edges[i].pattern, e.pattern);
      EXPECT_EQ(record->edges[i].road_class, e.road_class);
    }
  }
}

TEST_F(CcamTest, AccessorMirrorsInMemoryAccessor) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  ASSERT_TRUE(BuildCcamFile(sn.network, path_, {}).ok());
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  CcamAccessor disk(store_or->get());
  network::InMemoryAccessor mem(&sn.network);

  ASSERT_EQ(disk.num_nodes(), mem.num_nodes());
  EXPECT_DOUBLE_EQ(disk.max_speed(), mem.max_speed());
  std::vector<NeighborEdge> a;
  std::vector<NeighborEdge> b;
  for (size_t n = 0; n < disk.num_nodes(); ++n) {
    const auto id = static_cast<NodeId>(n);
    EXPECT_EQ(disk.Location(id), mem.Location(id));
    disk.GetSuccessors(id, &a);
    mem.GetSuccessors(id, &b);
    ASSERT_EQ(a.size(), b.size()) << "node " << n;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_DOUBLE_EQ(a[i].distance_miles, b[i].distance_miles);
      EXPECT_EQ(a[i].pattern, b[i].pattern);
    }
  }
}

TEST_F(CcamTest, PageFaultsAreCountedAndBounded) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  ASSERT_TRUE(BuildCcamFile(sn.network, path_, {}).ok());
  CcamOpenOptions opt;
  opt.buffer_pool_pages = 8;
  auto store_or = CcamStore::Open(path_, opt);
  ASSERT_TRUE(store_or.ok());
  CcamStore& store = **store_or;
  EXPECT_EQ(store.stats().pool.faults, 0u);
  (void)store.FindNode(0);
  EXPECT_GT(store.stats().pool.faults, 0u);
  // A second lookup of the same node is all hits.
  const auto faults = store.stats().pool.faults;
  (void)store.FindNode(0);
  EXPECT_EQ(store.stats().pool.faults, faults);
}

TEST_F(CcamTest, ConnectivityClusteringBeatsPlainHilbertPacking) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  CcamBuildOptions clustered;
  auto with = BuildCcamFile(sn.network, path_, clustered);
  ASSERT_TRUE(with.ok());
  CcamBuildOptions plain;
  plain.connectivity_clustering = false;
  auto without = BuildCcamFile(sn.network, path_, plain);
  ASSERT_TRUE(without.ok());
  EXPECT_GT(with->intra_page_edge_fraction,
            without->intra_page_edge_fraction * 0.99);
  EXPECT_GT(with->intra_page_edge_fraction, 0.3);
}

TEST_F(CcamTest, NonHilbertPackingStillRoundTrips) {
  gen::RandomNetworkOptions opt;
  opt.seed = 77;
  opt.num_nodes = 60;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  CcamBuildOptions build;
  build.spatial_ordering = false;
  build.connectivity_clustering = false;
  ASSERT_TRUE(BuildCcamFile(net, path_, build).ok());
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  for (size_t n = 0; n < net.num_nodes(); ++n) {
    auto record = (*store_or)->FindNode(static_cast<NodeId>(n));
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->edges.size(), net.OutEdges(static_cast<NodeId>(n)).size());
  }
}

TEST_F(CcamTest, InsertEdgeGrowsRecordAndSurvivesRelocation) {
  gen::RandomNetworkOptions opt;
  opt.seed = 8;
  opt.num_nodes = 50;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  CcamStore& store = **store_or;

  auto before = store.FindNode(3);
  ASSERT_TRUE(before.ok());
  const size_t degree = before->edges.size();
  // Grow node 3's record until it must relocate at least once.
  for (int i = 0; i < 120; ++i) {
    NeighborEdge e{static_cast<NodeId>((i * 7) % 50), 0.5 + i,
                   0, network::RoadClass::kLocalOutsideCity};
    if (e.to == 3) e.to = 4;
    ASSERT_TRUE(store.InsertEdge(3, e).ok()) << i;
  }
  auto after = store.FindNode(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->edges.size(), degree + 120);
  EXPECT_DOUBLE_EQ(after->edges.back().distance_miles, 0.5 + 119);
  // Other nodes untouched.
  auto other = store.FindNode(7);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->edges.size(), net.OutEdges(7).size());
}

TEST_F(CcamTest, DeleteEdgeRemovesExactlyOne) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 20;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  CcamStore& store = **store_or;
  auto record = store.FindNode(1);
  ASSERT_TRUE(record.ok());
  ASSERT_FALSE(record->edges.empty());
  const NodeId victim = record->edges.front().to;
  ASSERT_TRUE(store.DeleteEdge(1, victim).ok());
  auto after = store.FindNode(1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->edges.size(), record->edges.size() - 1);
  EXPECT_EQ(store.DeleteEdge(1, static_cast<NodeId>(9999)).code(),
            util::StatusCode::kNotFound);
}

TEST_F(CcamTest, MutationsPersistAcrossReopen) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 30;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());
  {
    auto store_or = CcamStore::Open(path_);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE((*store_or)
                    ->InsertEdge(5, {6, 9.5, 0,
                                     network::RoadClass::kLocalInCity})
                    .ok());
    ASSERT_TRUE((*store_or)->Flush().ok());
  }
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  auto record = (*store_or)->FindNode(5);
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(record->edges.back().distance_miles, 9.5);
}

TEST_F(CcamTest, RejectsInvalidOperations) {
  gen::RandomNetworkOptions opt;
  opt.num_nodes = 10;
  const RoadNetwork net = gen::MakeRandomNetwork(opt);
  ASSERT_TRUE(BuildCcamFile(net, path_, {}).ok());
  auto store_or = CcamStore::Open(path_);
  ASSERT_TRUE(store_or.ok());
  CcamStore& store = **store_or;
  EXPECT_FALSE(store.FindNode(-1).ok());
  EXPECT_FALSE(store.FindNode(10).ok());
  EXPECT_FALSE(
      store.InsertEdge(0, {99, 1.0, 0, network::RoadClass::kLocalInCity})
          .ok());
  EXPECT_FALSE(
      store.InsertEdge(0, {1, -2.0, 0, network::RoadClass::kLocalInCity})
          .ok());
  EXPECT_FALSE(
      store.InsertEdge(0, {1, 1.0, 99, network::RoadClass::kLocalInCity})
          .ok());
}

TEST_F(CcamTest, OpenRejectsNonCcamFile) {
  auto pager_or = Pager::Create(path_, 512);
  ASSERT_TRUE(pager_or.ok());
  ASSERT_TRUE((*pager_or)->Sync().ok());
  pager_or->reset();
  EXPECT_FALSE(CcamStore::Open(path_).ok());
}

}  // namespace
}  // namespace capefp::storage
