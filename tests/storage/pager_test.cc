#include "src/storage/pager.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "tests/testing/temp_path.h"

namespace capefp::storage {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return capefp::testing::UniqueTempPath(std::string("pager_") + name +
                                           ".db");
  }
  void TearDown() override {
    for (const std::string& p : created_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(PagerTest, CreateAllocateWriteRead) {
  const std::string path = Track(Path("basic"));
  auto pager_or = Pager::Create(path, 512);
  ASSERT_TRUE(pager_or.ok()) << pager_or.status().ToString();
  Pager& pager = **pager_or;
  EXPECT_EQ(pager.page_size(), 512u);
  EXPECT_EQ(pager.num_pages(), 1u);  // Header only.

  auto id_or = pager.AllocatePage();
  ASSERT_TRUE(id_or.ok());
  EXPECT_EQ(*id_or, 1u);

  std::vector<char> buf(512, 'x');
  ASSERT_TRUE(pager.WritePage(*id_or, buf.data()).ok());
  std::vector<char> readback(512, 0);
  ASSERT_TRUE(pager.ReadPage(*id_or, readback.data()).ok());
  EXPECT_EQ(buf, readback);
  EXPECT_GE(pager.stats().page_reads, 1u);
  EXPECT_GE(pager.stats().page_writes, 1u);
}

TEST_F(PagerTest, PersistsAcrossReopen) {
  const std::string path = Track(Path("reopen"));
  {
    auto pager_or = Pager::Create(path, 256);
    ASSERT_TRUE(pager_or.ok());
    auto id_or = (*pager_or)->AllocatePage();
    ASSERT_TRUE(id_or.ok());
    std::vector<char> buf(256, 7);
    ASSERT_TRUE((*pager_or)->WritePage(*id_or, buf.data()).ok());
    ASSERT_TRUE((*pager_or)->Sync().ok());
  }
  auto reopened_or = Pager::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  EXPECT_EQ((*reopened_or)->page_size(), 256u);
  EXPECT_EQ((*reopened_or)->num_pages(), 2u);
  std::vector<char> buf(256, 0);
  ASSERT_TRUE((*reopened_or)->ReadPage(1, buf.data()).ok());
  EXPECT_EQ(buf[0], 7);
  EXPECT_EQ(buf[255], 7);
}

TEST_F(PagerTest, FreeListRecyclesPages) {
  const std::string path = Track(Path("freelist"));
  auto pager_or = Pager::Create(path, 256);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  auto a = pager.AllocatePage();
  auto b = pager.AllocatePage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(pager.FreePage(*a).ok());
  auto c = pager.AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // Recycled.
  auto d = pager.AllocatePage();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 3u);  // Fresh.
}

TEST_F(PagerTest, FreeListSurvivesReopen) {
  const std::string path = Track(Path("freelist2"));
  PageId freed;
  {
    auto pager_or = Pager::Create(path, 256);
    ASSERT_TRUE(pager_or.ok());
    auto a = (*pager_or)->AllocatePage();
    auto b = (*pager_or)->AllocatePage();
    ASSERT_TRUE(a.ok() && b.ok());
    freed = *a;
    ASSERT_TRUE((*pager_or)->FreePage(freed).ok());
    ASSERT_TRUE((*pager_or)->Sync().ok());
  }
  auto pager_or = Pager::Open(path);
  ASSERT_TRUE(pager_or.ok());
  auto c = (*pager_or)->AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, freed);
}

TEST_F(PagerTest, RejectsOutOfRangeAccess) {
  const std::string path = Track(Path("range"));
  auto pager_or = Pager::Create(path, 256);
  ASSERT_TRUE(pager_or.ok());
  std::vector<char> buf(256);
  EXPECT_EQ((*pager_or)->ReadPage(0, buf.data()).code(),
            util::StatusCode::kOutOfRange);  // Header page protected.
  EXPECT_EQ((*pager_or)->ReadPage(9, buf.data()).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ((*pager_or)->WritePage(9, buf.data()).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ((*pager_or)->FreePage(0).code(), util::StatusCode::kOutOfRange);
}

TEST_F(PagerTest, RejectsTinyPageSize) {
  EXPECT_EQ(Pager::Create(Track(Path("tiny")), 16).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(PagerTest, OpenRejectsGarbageFile) {
  const std::string path = Track(Path("garbage"));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a page file at all, not even close......", f);
  std::fclose(f);
  EXPECT_EQ(Pager::Open(path).status().code(),
            util::StatusCode::kCorruption);
}

TEST_F(PagerTest, OpenMissingFileIsIoError) {
  EXPECT_EQ(Pager::Open("/nonexistent/nowhere.db").status().code(),
            util::StatusCode::kIoError);
}

}  // namespace
}  // namespace capefp::storage
