#include "src/storage/bplus_tree.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "tests/testing/temp_path.h"

namespace capefp::storage {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(256, 16); }

  void Recreate(uint32_t page_size, size_t pool_pages) {
    pool_.reset();
    pager_.reset();
    path_ = capefp::testing::UniqueTempPath("bptree_test.db");
    auto pager_or = Pager::Create(path_, page_size);
    ASSERT_TRUE(pager_or.ok());
    pager_ = std::move(*pager_or);
    pool_ = std::make_unique<BufferPool>(pager_.get(), pool_pages);
  }

  void TearDown() override {
    pool_.reset();
    pager_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BPlusTreeTest, EmptyTreeBehaviour) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  EXPECT_EQ(tree.Get(1).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(1).code(), util::StatusCode::kNotFound);
  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  auto height = tree.Height();
  ASSERT_TRUE(height.ok());
  EXPECT_EQ(*height, 1);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST_F(BPlusTreeTest, PutGetOverwrite) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  ASSERT_TRUE(tree.Put(42, 100).ok());
  auto v = tree.Get(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  ASSERT_TRUE(tree.Put(42, 200).ok());
  v = tree.Get(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 200u);
  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  // 256-byte pages hold (256-8)/16 = 15 leaf entries; 100 inserts force
  // several leaf and internal splits.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Put(k * 7919 % 1000, k).ok());
  }
  auto height = tree.Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2);
  EXPECT_TRUE(tree.Validate().ok());
  for (uint64_t k = 0; k < 100; ++k) {
    auto v = tree.Get(k * 7919 % 1000);
    ASSERT_TRUE(v.ok()) << "key " << k * 7919 % 1000;
  }
}

TEST_F(BPlusTreeTest, ScanReturnsSortedRange) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t k = 0; k < 200; k += 2) {
    ASSERT_TRUE(tree.Put(k, k * 10).ok());
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  ASSERT_TRUE(tree.Scan(50, 99, &out).ok());
  ASSERT_EQ(out.size(), 25u);
  EXPECT_EQ(out.front().first, 50u);
  EXPECT_EQ(out.back().first, 98u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
    EXPECT_EQ(out[i].second, out[i].first * 10);
  }
}

TEST_F(BPlusTreeTest, DeleteThenMiss) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(tree.Put(k, k).ok());
  ASSERT_TRUE(tree.Delete(25).ok());
  EXPECT_EQ(tree.Get(25).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(25).code(), util::StatusCode::kNotFound);
  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 49u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST_F(BPlusTreeTest, PersistsAcrossReopen) {
  PageId root;
  {
    BPlusTree tree(pool_.get(), kInvalidPage);
    ASSERT_TRUE(tree.Init().ok());
    for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(tree.Put(k, k + 1).ok());
    root = tree.root();
    ASSERT_TRUE(pool_->FlushAll().ok());
  }
  pool_.reset();
  auto pager_or = Pager::Open(path_);
  ASSERT_TRUE(pager_or.ok());
  pager_ = std::move(*pager_or);
  pool_ = std::make_unique<BufferPool>(pager_.get(), 16);
  BPlusTree tree(pool_.get(), root);
  for (uint64_t k = 0; k < 500; ++k) {
    auto v = tree.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, k + 1);
  }
  EXPECT_TRUE(tree.Validate().ok());
}

class BPlusTreeModelTest : public BPlusTreeTest,
                           public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BPlusTreeModelTest, MatchesStdMapUnderRandomOps) {
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  std::map<uint64_t, uint64_t> model;
  util::Rng rng(GetParam());
  for (int op = 0; op < 3000; ++op) {
    const uint64_t key = rng.NextBounded(400);
    const int action = static_cast<int>(rng.NextBounded(10));
    if (action < 6) {
      const uint64_t value = rng.Next();
      ASSERT_TRUE(tree.Put(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      const bool model_had = model.erase(key) > 0;
      EXPECT_EQ(tree.Delete(key).ok(), model_had);
    } else {
      auto v = tree.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(v.ok());
      } else {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, it->second);
      }
    }
  }
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  auto count = tree.CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, model.size());
  std::vector<std::pair<uint64_t, uint64_t>> all;
  ASSERT_TRUE(tree.Scan(0, ~0ull, &all).ok());
  ASSERT_EQ(all.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST_F(BPlusTreeTest, LargeSequentialLoad) {
  Recreate(512, 32);
  BPlusTree tree(pool_.get(), kInvalidPage);
  ASSERT_TRUE(tree.Init().ok());
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(tree.Put(k, ~k).ok());
  }
  EXPECT_TRUE(tree.Validate().ok());
  auto height = tree.Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 3);
  for (uint64_t k = 0; k < 20000; k += 997) {
    auto v = tree.Get(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ~k);
  }
}

}  // namespace
}  // namespace capefp::storage
