// Per-process unique temp paths for test fixtures.
//
// Parallel ctest (`ctest -j`) runs every discovered test in its own
// process; fixtures that hard-code one filename under TempDir() clobber
// each other's files when two instances overlap. A pid suffix makes the
// path unique per process while staying stable within one test.
#ifndef CAPEFP_TESTS_TESTING_TEMP_PATH_H_
#define CAPEFP_TESTS_TESTING_TEMP_PATH_H_

#include <unistd.h>

#include <string>

#include "gtest/gtest.h"

namespace capefp::testing {

inline std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + stem;
}

}  // namespace capefp::testing

#endif  // CAPEFP_TESTS_TESTING_TEMP_PATH_H_
