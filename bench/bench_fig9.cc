// Figure 9 reproduction: effect of the lower-bound estimator on the number
// of expanded nodes, varying the source-target Euclidean distance from 1 to
// 8 miles, for singleFP (Fig. 9a) and allFP (Fig. 9b).
//
// Setup per §6.2: query interval = the 3-hour morning rush (7am-10am on a
// workday), Suffolk-scale network, CCAM-backed disk access (page faults are
// reported alongside the paper's expanded-node metric).
//
// Flags:
//   --queries=N       queries per 1-mile distance bucket (default 8)
//   --seed=S          workload seed (default 1)
//   --grid=G          boundary estimator grid dimension (default 32)
//   --mode=time|dist  boundary estimator weight mode (default time)
//   --pool=P          buffer-pool pages for the CCAM store (default 256)
//   --json=PATH       also write the per-bucket rows as JSON
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/obs/metrics.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

struct BucketRow {
  double distance = 0.0;
  util::Summary single_naive;
  util::Summary single_bd;
  util::Summary all_naive;
  util::Summary all_bd;
  util::Summary faults;
  util::Summary ms_all_bd;
};

int Main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"queries", "seed", "grid", "mode", "pool"});
  const int queries = static_cast<int>(flags.GetInt("queries", 8));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int grid = static_cast<int>(flags.GetInt("grid", 32));
  const std::string mode_name = flags.GetString("mode", "time");
  const auto pool = static_cast<size_t>(flags.GetInt("pool", 256));

  const auto sn = MakeBenchNetwork();
  PrintHeader(
      "Figure 9: expanded nodes vs Euclidean distance (naiveLB vs bdLB)",
      {{"network nodes", std::to_string(sn.network.num_nodes())},
       {"network segments", std::to_string(sn.network.num_edges() / 2)},
       {"query interval", "07:00-10:00 workday (3h morning rush)"},
       {"queries per bucket", std::to_string(queries)},
       {"bdLB grid / mode", std::to_string(grid) + " / " + mode_name},
       {"access method", "CCAM, 2048-byte pages, pool " +
                             std::to_string(pool) + " pages"}});

  // Disk store.
  const std::string db_path = "/tmp/capefp_fig9.ccam";
  auto report = storage::BuildCcamFile(sn.network, db_path, {});
  CAPEFP_CHECK(report.ok()) << report.status().ToString();
  storage::CcamOpenOptions open_options;
  open_options.buffer_pool_pages = pool;
  auto store = storage::CcamStore::Open(db_path, open_options);
  CAPEFP_CHECK(store.ok()) << store.status().ToString();
  storage::CcamAccessor accessor(store->get());
  // Storage counters as a metric tree, snapshotted into the JSON output.
  // Note the per-query ResetStats below, so the final snapshot covers the
  // last bucket's bdLB allFP query (a representative single-query I/O
  // profile), not the whole run.
  obs::MetricsRegistry registry;
  (*store)->RegisterMetrics(&registry, "capefp.storage");

  // Estimator precomputation (offline, in-memory network).
  core::BoundaryIndexOptions index_options;
  index_options.grid_dim = grid;
  index_options.mode = mode_name == "dist"
                           ? core::BoundaryIndexOptions::Mode::kDistance
                           : core::BoundaryIndexOptions::Mode::kTravelTime;
  util::WallTimer index_timer;
  const core::BoundaryNodeIndex index(sn.network, index_options);
  std::printf("bdLB precomputation: %.2f s (%zu exit / %zu entry boundary "
              "nodes)\n\n",
              index_timer.ElapsedSeconds(), index.num_exit_boundaries(),
              index.num_entry_boundaries());

  const double lo = tdf::HhMm(7, 0);
  const double hi = tdf::HhMm(10, 0);

  std::vector<BucketRow> rows;
  for (int mile = 1; mile <= 8; ++mile) {
    BucketRow row;
    row.distance = mile;
    const auto pairs =
        SampleQueryPairs(sn.network, mile - 0.5, mile + 0.5, queries,
                         seed * 1000 + static_cast<uint64_t>(mile));
    for (const QueryPair& pair : pairs) {
      const core::ProfileQuery query{pair.source, pair.target, lo, hi};

      core::EuclideanEstimator naive(&accessor, pair.target);
      core::ProfileSearch naive_search(&accessor, &naive);
      row.single_naive.Add(static_cast<double>(
          naive_search.RunSingleFp(query).stats.expansions));

      core::BoundaryNodeEstimator bd1(&index, &accessor, pair.target);
      core::ProfileSearch bd_single(&accessor, &bd1);
      row.single_bd.Add(static_cast<double>(
          bd_single.RunSingleFp(query).stats.expansions));

      core::EuclideanEstimator naive2(&accessor, pair.target);
      core::ProfileSearch naive_all(&accessor, &naive2);
      row.all_naive.Add(static_cast<double>(
          naive_all.RunAllFp(query).stats.expansions));

      (*store)->ResetStats();
      util::WallTimer query_timer;
      core::BoundaryNodeEstimator bd2(&index, &accessor, pair.target);
      core::ProfileSearch bd_all(&accessor, &bd2);
      const core::AllFpResult result = bd_all.RunAllFp(query);
      row.ms_all_bd.Add(query_timer.ElapsedMillis());
      row.all_bd.Add(static_cast<double>(result.stats.expansions));
      row.faults.Add(static_cast<double>((*store)->stats().pool.faults));
      CAPEFP_CHECK(result.found);
    }
    rows.push_back(std::move(row));
  }

  std::printf("Figure 9(a) - singleFP, mean expanded nodes per query\n");
  std::printf("%8s %12s %12s %8s\n", "miles", "naiveLB", "bdLB",
              "ratio");
  for (const BucketRow& row : rows) {
    std::printf("%8.0f %12.0f %12.0f %7.2fx\n", row.distance,
                row.single_naive.mean(), row.single_bd.mean(),
                row.single_naive.mean() / row.single_bd.mean());
  }
  std::printf("\nFigure 9(b) - allFP, mean expanded nodes per query\n");
  std::printf("%8s %12s %12s %8s %14s %10s\n", "miles", "naiveLB", "bdLB",
              "ratio", "faults(bdLB)", "ms(bdLB)");
  for (const BucketRow& row : rows) {
    std::printf("%8.0f %12.0f %12.0f %7.2fx %14.0f %10.1f\n", row.distance,
                row.all_naive.mean(), row.all_bd.mean(),
                row.all_naive.mean() / row.all_bd.mean(),
                row.faults.mean(), row.ms_all_bd.mean());
  }
  if (const std::string json_path = flags.json_path(); !json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String("bench_fig9");
    w.Key("queries_per_bucket");
    w.Int(queries);
    w.Key("grid");
    w.Int(grid);
    w.Key("mode");
    w.String(mode_name);
    w.Key("buckets");
    w.BeginArray();
    for (const BucketRow& row : rows) {
      w.BeginObject();
      w.Key("distance_miles");
      w.Double(row.distance);
      w.Key("single_fp_expansions");
      w.BeginObject();
      w.Key("naive_lb_mean");
      w.Double(row.single_naive.mean());
      w.Key("bd_lb_mean");
      w.Double(row.single_bd.mean());
      w.EndObject();
      w.Key("all_fp_expansions");
      w.BeginObject();
      w.Key("naive_lb_mean");
      w.Double(row.all_naive.mean());
      w.Key("bd_lb_mean");
      w.Double(row.all_bd.mean());
      w.EndObject();
      w.Key("bd_lb_page_faults_mean");
      w.Double(row.faults.mean());
      w.Key("bd_lb_all_fp_ms_mean");
      w.Double(row.ms_all_bd.mean());
      w.EndObject();
    }
    w.EndArray();
    w.Key("storage_metrics_last_query");
    registry.Snapshot().WriteJson(&w);
    w.EndObject();
    WriteFileOrDie(json_path, w.str() + "\n");
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::remove(db_path.c_str());
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
