// Microbenchmarks for the storage substrate: B+-tree point ops, buffer
// pool hits, CCAM record fetches, and the Hilbert curve.
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "src/geo/hilbert.h"
#include "src/gen/suffolk_generator.h"
#include "src/storage/bplus_tree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/capefp_micro_") + name + ".db";
}

void BM_BPlusTreePut(benchmark::State& state) {
  const std::string path = TempPath("btree_put");
  auto pager = storage::Pager::Create(path, 2048);
  CAPEFP_CHECK(pager.ok());
  storage::BufferPool pool(pager->get(), 512);
  storage::BPlusTree tree(&pool, storage::kInvalidPage);
  CAPEFP_CHECK(tree.Init().ok());
  util::Rng rng(1);
  for (auto _ : state) {
    CAPEFP_CHECK(tree.Put(rng.Next() % 1000000, 42).ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BPlusTreePut);

void BM_BPlusTreeGet(benchmark::State& state) {
  const std::string path = TempPath("btree_get");
  auto pager = storage::Pager::Create(path, 2048);
  CAPEFP_CHECK(pager.ok());
  storage::BufferPool pool(pager->get(), 512);
  storage::BPlusTree tree(&pool, storage::kInvalidPage);
  CAPEFP_CHECK(tree.Init().ok());
  for (uint64_t k = 0; k < 100000; ++k) {
    CAPEFP_CHECK(tree.Put(k, k).ok());
  }
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.NextBounded(100000)));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BPlusTreeGet);

void BM_BufferPoolHit(benchmark::State& state) {
  const std::string path = TempPath("pool_hit");
  auto pager = storage::Pager::Create(path, 2048);
  CAPEFP_CHECK(pager.ok());
  storage::BufferPool pool(pager->get(), 16);
  auto handle = pool.AllocateAndAcquire();
  CAPEFP_CHECK(handle.ok());
  const storage::PageId id = handle->page_id();
  handle->Release();
  for (auto _ : state) {
    auto h = pool.Acquire(id);
    benchmark::DoNotOptimize(h->data());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BufferPoolHit);

// Shared CCAM fixture for record-fetch benchmarks.
struct CcamFixture {
  CcamFixture() {
    const auto sn =
        gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
    num_nodes = sn.network.num_nodes();
    path = TempPath("ccam");
    CAPEFP_CHECK(storage::BuildCcamFile(sn.network, path, {}).ok());
    auto opened = storage::CcamStore::Open(path);
    CAPEFP_CHECK(opened.ok());
    store = std::move(*opened);
  }
  ~CcamFixture() { std::remove(path.c_str()); }
  std::string path;
  size_t num_nodes = 0;
  std::unique_ptr<storage::CcamStore> store;
};

void BM_CcamFindNodeWarm(benchmark::State& state) {
  static CcamFixture* fixture = new CcamFixture();
  util::Rng rng(3);
  for (auto _ : state) {
    const auto node =
        static_cast<network::NodeId>(rng.NextBounded(fixture->num_nodes));
    benchmark::DoNotOptimize(fixture->store->FindNode(node));
  }
}
BENCHMARK(BM_CcamFindNodeWarm);

void BM_HilbertXy2D(benchmark::State& state) {
  util::Rng rng(4);
  uint32_t x = 0;
  uint32_t y = 0;
  for (auto _ : state) {
    x = (x + 7919) & 0xffff;
    y = (y + 104729) & 0xffff;
    benchmark::DoNotOptimize(geo::HilbertXy2D(16, x, y));
  }
}
BENCHMARK(BM_HilbertXy2D);

void BM_CcamBuildSmall(benchmark::State& state) {
  const auto sn = gen::GenerateSuffolkNetwork(gen::SuffolkOptions::Small());
  const std::string path = TempPath("ccam_build");
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::BuildCcamFile(sn.network, path, {}));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CcamBuildSmall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace capefp

BENCHMARK_MAIN();
