// Ablation A1/A4 (DESIGN.md): boundary-node estimator grid granularity and
// weight mode. Sweeps the g×g partition over {4, 8, 16, 32} for both the
// paper's distance mode and the travel-time extension, reporting estimate
// tightness (estimate / true fastest travel time; closer to 1 is better)
// and the resulting singleFP search effort.
//
// Flags: --queries=N (default 10), --seed=S.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/boundary_estimator.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed"});
  const int queries = static_cast<int>(flags.GetInt("queries", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  const auto sn = MakeBenchNetwork();
  PrintHeader("Ablation: boundary estimator grid dimension and weight mode",
              {{"network nodes", std::to_string(sn.network.num_nodes())},
               {"queries", std::to_string(queries)},
               {"distance", "6-8 miles"},
               {"query interval", "07:00-10:00 workday"}});

  network::InMemoryAccessor accessor(&sn.network);
  const auto pairs = SampleQueryPairs(sn.network, 6.0, 8.0, queries, seed);
  const double lo = tdf::HhMm(7, 0);
  const double hi = tdf::HhMm(10, 0);

  // True fastest times at 8:00 for the tightness column.
  std::vector<double> truth;
  for (const QueryPair& pair : pairs) {
    core::ZeroEstimator zero;
    const auto result = core::TdAStar(&accessor, pair.source, pair.target,
                                      tdf::HhMm(8, 0), &zero);
    CAPEFP_CHECK(result.found);
    truth.push_back(result.travel_time_minutes);
  }

  std::printf("%6s %6s %12s %12s %14s %12s\n", "grid", "mode", "build(s)",
              "tightness", "singleFP exp", "allFP exp");

  // naiveLB reference row.
  {
    util::Summary tightness;
    util::Summary single;
    util::Summary all;
    for (size_t i = 0; i < pairs.size(); ++i) {
      core::EuclideanEstimator est(&accessor, pairs[i].target);
      tightness.Add(est.Estimate(pairs[i].source) / truth[i]);
      core::ProfileSearch search(&accessor, &est);
      single.Add(static_cast<double>(
          search.RunSingleFp({pairs[i].source, pairs[i].target, lo, hi})
              .stats.expansions));
      core::EuclideanEstimator est2(&accessor, pairs[i].target);
      core::ProfileSearch search2(&accessor, &est2);
      all.Add(static_cast<double>(
          search2.RunAllFp({pairs[i].source, pairs[i].target, lo, hi})
              .stats.expansions));
    }
    std::printf("%6s %6s %12s %12.3f %14.0f %12.0f\n", "-", "naive", "-",
                tightness.mean(), single.mean(), all.mean());
  }

  for (const auto mode : {core::BoundaryIndexOptions::Mode::kDistance,
                          core::BoundaryIndexOptions::Mode::kTravelTime}) {
    for (int grid : {4, 8, 16, 32}) {
      util::WallTimer build_timer;
      const core::BoundaryNodeIndex index(sn.network, {grid, mode});
      const double build_s = build_timer.ElapsedSeconds();
      util::Summary tightness;
      util::Summary single;
      util::Summary all;
      for (size_t i = 0; i < pairs.size(); ++i) {
        core::BoundaryNodeEstimator est(&index, &accessor, pairs[i].target);
        tightness.Add(est.Estimate(pairs[i].source) / truth[i]);
        core::ProfileSearch search(&accessor, &est);
        single.Add(static_cast<double>(
            search.RunSingleFp({pairs[i].source, pairs[i].target, lo, hi})
                .stats.expansions));
        core::BoundaryNodeEstimator est2(&index, &accessor, pairs[i].target);
        core::ProfileSearch search2(&accessor, &est2);
        all.Add(static_cast<double>(
            search2.RunAllFp({pairs[i].source, pairs[i].target, lo, hi})
                .stats.expansions));
      }
      std::printf(
          "%6d %6s %12.2f %12.3f %14.0f %12.0f\n", grid,
          mode == core::BoundaryIndexOptions::Mode::kDistance ? "dist"
                                                              : "time",
          build_s, tightness.mean(), single.mean(), all.mean());
    }
  }
  std::printf("\n(tightness = mean estimate/true ratio at the source; 1.0 "
              "would be a perfect oracle)\n");
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
