// The §6 "commercial navigation system" comparison: routing on speed limits
// (time-independent, MapQuest-style) vs CapeCod-aware routing, evaluated at
// rush hour. The paper reports ≈50% travel-time improvement under its
// Table 1 speeds and notes the gap vanishes when congestion does; the
// off-peak column checks that.
//
// Flags: --queries=N (default 100), --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/constant_speed_solver.h"
#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed"});
  const int queries = static_cast<int>(flags.GetInt("queries", 100));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  const auto sn = MakeBenchNetwork();
  PrintHeader(
      "Table 1 setup: CapeCod-aware routing vs constant speed-limit routing",
      {{"network nodes", std::to_string(sn.network.num_nodes())},
       {"queries", std::to_string(queries)},
       {"distance", "3-8 miles"},
       {"rush-hour departure", "08:00 workday"},
       {"off-peak departure", "13:00 workday"}});

  network::InMemoryAccessor accessor(&sn.network);

  struct Row {
    const char* name;
    double leave;
    std::vector<QueryPair> pairs;
    util::Summary static_minutes;
    util::Summary aware_minutes;
    util::Summary improvement_pct;
    int different_routes = 0;
  };
  const auto random_pairs =
      SampleQueryPairs(sn.network, 3.0, 8.0, queries, seed);
  const auto commute_pairs = SampleCommutePairs(sn, queries, seed + 1);
  Row rows[] = {
      {"random rush 08:00", tdf::HhMm(8, 0), random_pairs, {}, {}, {}, 0},
      {"commute rush 08:00", tdf::HhMm(8, 0), commute_pairs, {}, {}, {}, 0},
      {"random 13:00", tdf::HhMm(13, 0), random_pairs, {}, {}, {}, 0},
  };

  for (Row& row : rows) {
    for (const QueryPair& pair : row.pairs) {
      const core::ConstantSpeedResult route =
          core::ConstantSpeedRoute(&accessor, pair.source, pair.target);
      CAPEFP_CHECK(route.found);
      const double static_actual =
          core::EvaluatePathTravelTime(&accessor, route.path, row.leave);
      core::ZeroEstimator zero;
      const core::TdAStarResult aware = core::TdAStar(
          &accessor, pair.source, pair.target, row.leave, &zero);
      CAPEFP_CHECK(aware.found);
      row.static_minutes.Add(static_actual);
      row.aware_minutes.Add(aware.travel_time_minutes);
      row.improvement_pct.Add(
          100.0 * (static_actual - aware.travel_time_minutes) /
          static_actual);
      if (aware.path != route.path) ++row.different_routes;
    }
  }

  std::printf("%-20s %12s %12s %12s %12s %10s\n", "workload",
              "static(min)", "aware(min)", "saved mean", "saved p95",
              "new route");
  for (const Row& row : rows) {
    std::printf("%-20s %12.1f %12.1f %11.1f%% %11.1f%% %7d/%d\n", row.name,
                row.static_minutes.mean(), row.aware_minutes.mean(),
                row.improvement_pct.mean(), row.improvement_pct.percentile(95),
                row.different_routes, queries);
  }
  std::printf(
      "\n(\"saved\" = travel-time reduction of CapeCod-aware routing over\n"
      " evaluating the speed-limit route under true rush-hour speeds.)\n");
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
