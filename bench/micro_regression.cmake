# ctest driver for the PWL microbench regression gate (label bench-smoke).
# Runs the hot-path series of bench_micro_pwl with repetitions, then lets
# tools/bench_compare.py compare the medians against the committed
# BENCH_micro_pwl.json baseline (>15% slowdown on a named series fails).
#
# Inputs (all -D): BENCH_BIN, PYTHON, COMPARE, BASELINE, OUT_JSON, SERIES
# (semicolon list, forwarded as comma-separated --series).

string(REPLACE ";" "," series_csv "${SERIES}")
string(REPLACE ";" "|" series_filter "${SERIES}")
# Anchor the filter so e.g. BM_PwlSum/64 does not also pull in
# BM_PwlSumMany or single-run rows of other series.
execute_process(
  COMMAND ${BENCH_BIN}
          "--benchmark_filter=^(${series_filter})$"
          --benchmark_repetitions=3
          --benchmark_min_time=0.1
          --benchmark_format=json
          "--benchmark_out=${OUT_JSON}"
  RESULT_VARIABLE bench_rv)
if(NOT bench_rv EQUAL 0)
  message(FATAL_ERROR "bench_micro_pwl failed (exit ${bench_rv})")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
          --series ${series_csv}
  RESULT_VARIABLE compare_rv)
if(NOT compare_rv EQUAL 0)
  message(FATAL_ERROR
    "bench_compare reported a regression vs BENCH_micro_pwl.json "
    "(exit ${compare_rv}); regenerate the baseline if the slowdown is "
    "intentional")
endif()
