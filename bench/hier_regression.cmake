# ctest driver for the two-phase hierarchical regression gate (label
# bench-smoke). Runs bench_hierarchical's committed-baseline workload once
# with JSON output, then gates twice with tools/bench_compare.py:
#
#  * the deterministic series (index size, breakpoint counts, corridor
#    size) at the default threshold — these are exact counts, so any
#    meaningful growth is a real pruning/size regression, not noise;
#  * the timing series at a loose threshold — the two-phase/flat ratio
#    cancels machine speed but still jitters with load, so only a gross
#    regression (ratio more than double the baseline) fails.
#
# Inputs (all -D): BENCH_BIN, PYTHON, COMPARE, BASELINE, OUT_JSON,
# DET_SERIES, TIME_SERIES (semicolon lists), TIME_THRESHOLD.

string(REPLACE ";" "," det_csv "${DET_SERIES}")
string(REPLACE ";" "," time_csv "${TIME_SERIES}")

execute_process(
  COMMAND ${BENCH_BIN}
          --network=full --grid=16 --eps=0.05 --leave=30
          --queries=8 --repeats=2
          "--json=${OUT_JSON}"
  RESULT_VARIABLE bench_rv
  OUTPUT_QUIET)
if(NOT bench_rv EQUAL 0)
  message(FATAL_ERROR "bench_hierarchical failed (exit ${bench_rv})")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
          --series ${det_csv}
  RESULT_VARIABLE det_rv)
if(NOT det_rv EQUAL 0)
  message(FATAL_ERROR
    "bench_compare reported a deterministic regression vs "
    "BENCH_hierarchical.json (exit ${det_rv}); the corridor got bigger or "
    "the index fatter — regenerate the baseline if that is intentional")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
          --series ${time_csv} --threshold ${TIME_THRESHOLD}
  RESULT_VARIABLE time_rv)
if(NOT time_rv EQUAL 0)
  message(FATAL_ERROR
    "bench_compare reported a timing regression vs BENCH_hierarchical.json "
    "(exit ${time_rv}); the two-phase/flat ratio more than doubled — "
    "regenerate the baseline if the slowdown is intentional")
endif()
