// Ablation A3 (DESIGN.md): CCAM storage parameters.
//
// Part 1 sweeps the page size (the paper fixes 2048 bytes) and the buffer
// pool capacity, reporting file size and page faults per time-dependent A*
// query through the store.
// Part 2 isolates CCAM's connectivity clustering against plain
// Hilbert-order packing at the paper's page size.
//
// Flags: --queries=N (default 20), --seed=S.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_builder.h"
#include "src/storage/ccam_store.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

struct RunStats {
  util::Summary faults;
  util::Summary hits;
  // Per-query pool hit rate, via BufferPoolStats::hit_rate() (guarded
  // against zero lookups) rather than a hand-rolled ratio.
  util::Summary hit_rate;
};

RunStats RunQueries(storage::CcamStore* store,
                    const std::vector<QueryPair>& pairs) {
  RunStats stats;
  storage::CcamAccessor accessor(store);
  for (const QueryPair& pair : pairs) {
    store->ResetStats();
    core::EuclideanEstimator est(&accessor, pair.target);
    const auto result = core::TdAStar(&accessor, pair.source, pair.target,
                                      tdf::HhMm(8, 0), &est);
    CAPEFP_CHECK(result.found);
    const storage::CcamStats after = store->stats();
    stats.faults.Add(static_cast<double>(after.pool.faults));
    stats.hits.Add(static_cast<double>(after.pool.hits));
    stats.hit_rate.Add(after.hit_rate());
  }
  return stats;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed"});
  const int queries = static_cast<int>(flags.GetInt("queries", 20));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 9));

  const auto sn = MakeBenchNetwork();
  PrintHeader("Ablation: CCAM page size, buffer pool, and clustering",
              {{"network nodes", std::to_string(sn.network.num_nodes())},
               {"queries", std::to_string(queries) +
                               " x TdAStar at 08:00, distance 4-8 miles"}});
  const auto pairs = SampleQueryPairs(sn.network, 4.0, 8.0, queries, seed);
  const std::string db_path = "/tmp/capefp_storage_ablation.ccam";

  std::printf("%10s %8s %12s %14s %14s %10s %12s\n", "page(B)", "pool",
              "file pages", "faults/query", "hits/query", "hit-rate",
              "intra-edge");
  for (uint32_t page_size : {1024u, 2048u, 4096u, 8192u}) {
    storage::CcamBuildOptions build;
    build.page_size = page_size;
    auto report = storage::BuildCcamFile(sn.network, db_path, build);
    CAPEFP_CHECK(report.ok()) << report.status().ToString();
    for (size_t pool : {8u, 64u, 512u}) {
      storage::CcamOpenOptions open;
      open.buffer_pool_pages = pool;
      auto store = storage::CcamStore::Open(db_path, open);
      CAPEFP_CHECK(store.ok()) << store.status().ToString();
      const RunStats stats = RunQueries(store->get(), pairs);
      std::printf("%10u %8zu %12u %14.0f %14.0f %9.1f%% %11.1f%%\n",
                  page_size, pool, report->total_pages, stats.faults.mean(),
                  stats.hits.mean(), 100.0 * stats.hit_rate.mean(),
                  100.0 * report->intra_page_edge_fraction);
    }
  }

  std::printf("\nRecord packing policies (2048-byte pages, pool 64):\n");
  std::printf("%16s %12s %14s %12s\n", "packing", "data pages",
              "faults/query", "intra-edge");
  struct Policy {
    const char* name;
    bool clustering;
    bool hilbert;
  };
  for (const Policy& policy :
       {Policy{"conn+hilbert", true, true},
        Policy{"hilbert-only", false, true},
        Policy{"conn-only", true, false},
        Policy{"insertion-order", false, false}}) {
    storage::CcamBuildOptions build;
    build.connectivity_clustering = policy.clustering;
    build.spatial_ordering = policy.hilbert;
    auto report = storage::BuildCcamFile(sn.network, db_path, build);
    CAPEFP_CHECK(report.ok()) << report.status().ToString();
    storage::CcamOpenOptions open;
    open.buffer_pool_pages = 64;
    auto store = storage::CcamStore::Open(db_path, open);
    CAPEFP_CHECK(store.ok()) << store.status().ToString();
    const RunStats stats = RunQueries(store->get(), pairs);
    std::printf("%16s %12u %14.0f %11.1f%%\n", policy.name,
                report->data_pages, stats.faults.mean(),
                100.0 * report->intra_page_edge_fraction);
  }
  std::remove(db_path.c_str());
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
