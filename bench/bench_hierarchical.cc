// Two-phase hierarchical query mode (DESIGN.md §9) vs the flat engine on
// the Fig. 9 workload recipe: morning-rush interval queries with
// source/target pairs spread across Euclidean distance buckets.
//
// Both sides run through FastestPathEngine — only query_mode differs — and
// every border is CHECKed bit-identical, so the numbers compare exactly
// equivalent answers. Per-phase latency (corridor vs exact refinement)
// comes from the engine's own capefp.hier.* metrics.
//
// Flags:
//   --network=small|mid|full|xl  Suffolk scale (default mid); "full" is
//                      the paper-scale network, "xl" a 4x-area variant for
//                      the hierarchical scaling story (§6.1)
//   --queries=N        query pairs (default 12)
//   --repeats=R        timed repetitions per query; min is kept (default 3)
//   --seed=S           workload seed (default 1)
//   --grid=G           fragment grid dimension (default 6)
//   --eps=E            corridor simplification eps, minutes (default 0.5)
//   --leave=M          per-query leave-interval length in minutes (default
//                      30); intervals are staggered across the 3h rush so
//                      the workload still covers all of 07:00-10:00. 180
//                      makes every query span the whole rush.
//   --json=PATH        write the JSON report (benchmarks array is
//                      google-benchmark-shaped for tools/bench_compare.py)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"
#include "src/obs/metrics.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

double Median(std::vector<double> v) {
  CAPEFP_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void BenchRow(JsonWriter* w, const std::string& name, double value,
              const char* unit) {
  w->BeginObject();
  w->Key("name");
  w->String(name);
  w->Key("run_type");
  w->String("iteration");
  w->Key("iterations");
  w->Int(1);
  w->Key("real_time");
  w->Double(value);
  w->Key("cpu_time");
  w->Double(value);
  w->Key("time_unit");
  w->String(unit);
  w->EndObject();
}

int Main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {"network", "queries", "repeats", "seed", "grid", "eps", "leave"});
  const std::string network_kind = flags.GetString("network", "mid");
  const int queries = static_cast<int>(flags.GetInt("queries", 12));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats", 3)));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int grid = static_cast<int>(flags.GetInt("grid", 6));
  const double eps = flags.GetDouble("eps", 0.5);
  const std::string json_path = flags.json_path();

  gen::SuffolkOptions net_options;  // "full": the paper-scale network.
  if (network_kind == "small") {
    net_options = gen::SuffolkOptions::Small();
  } else if (network_kind == "mid") {
    net_options.extent_miles = 6.0;
    net_options.city_radius_miles = 1.4;
    net_options.suburb_spacing_miles = 0.2;
    net_options.target_segments = 0;
    net_options.num_highways = 6;
  } else if (network_kind == "xl") {
    net_options.extent_miles = 24.0;
    net_options.city_radius_miles = 5.0;
    net_options.target_segments = 4 * 20461;
    net_options.num_highways = 10;
  } else {
    CAPEFP_CHECK(network_kind == "full")
        << "--network must be small|mid|full|xl, got " << network_kind;
  }
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(net_options);

  // Fig. 9 recipe: morning-rush interval queries, pairs across distance
  // buckets from short hops to cross-network trips. Each query asks allFP
  // over a `--leave`-minute interval; the intervals are staggered so the
  // workload as a whole covers the full 07:00-10:00 rush.
  const double rush_lo = tdf::HhMm(7, 0);
  const double rush_hi = tdf::HhMm(10, 0);
  const double leave_minutes = std::clamp(
      flags.GetDouble("leave", 30.0), 1.0, rush_hi - rush_lo);
  const double pair_lo = 0.2 * net_options.extent_miles;
  const double pair_hi = 0.8 * net_options.extent_miles;
  const auto pairs =
      SampleQueryPairs(sn.network, pair_lo, pair_hi, queries, seed);
  std::vector<std::pair<double, double>> intervals;
  for (int i = 0; i < queries; ++i) {
    const double span = rush_hi - rush_lo - leave_minutes;
    const double start =
        rush_lo + (queries > 1 ? span * i / (queries - 1) : 0.0);
    intervals.emplace_back(start, start + leave_minutes);
  }

  PrintHeader(
      "Two-phase hierarchical engine vs flat (Fig. 9 workload recipe)",
      {{"network", network_kind + " (" +
                       std::to_string(sn.network.num_nodes()) + " nodes, " +
                       std::to_string(sn.network.num_edges() / 2) +
                       " segments)"},
       {"fragment grid / eps",
        std::to_string(grid) + "x" + std::to_string(grid) + " / " +
            std::to_string(eps) + " min"},
       {"queries x repeats",
        std::to_string(queries) + " x " + std::to_string(repeats)},
       {"query interval",
        std::to_string(static_cast<int>(leave_minutes)) +
            " min leave windows staggered over 07:00-10:00 workday rush"}});

  core::EngineOptions flat_opts;
  auto flat = core::FastestPathEngine::Create(&sn.network, flat_opts);
  CAPEFP_CHECK(flat.ok()) << flat.status().ToString();

  core::EngineOptions hier_opts;
  hier_opts.query_mode = core::EngineOptions::QueryMode::kHierarchicalTwoPhase;
  hier_opts.hierarchical.grid_dim = grid;
  hier_opts.hierarchical.simplify_eps = eps;
  hier_opts.hierarchical.window_lo = tdf::HhMm(5, 0);
  hier_opts.hierarchical.window_hi = tdf::HhMm(14, 0);
  util::WallTimer build_timer;
  auto hier = core::FastestPathEngine::Create(&sn.network, hier_opts);
  CAPEFP_CHECK(hier.ok()) << hier.status().ToString();
  const double engine_build_s = build_timer.ElapsedSeconds();

  const auto& build = (*hier)->hierarchical_index()->build_stats();
  std::printf(
      "index build: %.2f s (engine create %.2f s), %d fragments, %zu "
      "transit functions, %zu -> %zu breakpoints (exact -> eps-simplified), "
      "%.1f KiB\n\n",
      build.build_seconds, engine_build_s, build.fragments_used,
      build.transit_functions, build.transit_breakpoints,
      build.approx_breakpoints,
      static_cast<double>(build.index_bytes) / 1024.0);

  // Warm pass: populates the TTF caches on both engines and CHECKs the
  // golden contract (bit-identical borders) on every pair before anything
  // is timed.
  for (size_t i = 0; i < pairs.size(); ++i) {
    const QueryPair& pair = pairs[i];
    const core::ProfileQuery query{pair.source, pair.target,
                                   intervals[i].first, intervals[i].second};
    const core::AllFpResult expected = (*flat)->AllFastestPaths(query);
    const core::AllFpResult actual = (*hier)->AllFastestPaths(query);
    CAPEFP_CHECK_EQ(actual.found, expected.found)
        << "s=" << pair.source << " t=" << pair.target;
    if (expected.found) {
      CAPEFP_CHECK(tdf::PwlFunction::ApproxEqual(*actual.border,
                                                 *expected.border, 0.0))
          << "two-phase border differs from flat; s=" << pair.source
          << " t=" << pair.target;
      CAPEFP_CHECK_EQ(actual.pieces.size(), expected.pieces.size());
    }
  }

  // Timed pass: per query keep the min over repeats (robust to scheduler
  // noise); the headline is the median over queries of flat/two-phase.
  const auto hier_before = (*hier)->metrics()->Snapshot();
  std::vector<double> flat_ms;
  std::vector<double> two_ms;
  std::vector<double> speedups;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const QueryPair& pair = pairs[i];
    const core::ProfileQuery query{pair.source, pair.target,
                                   intervals[i].first, intervals[i].second};
    double f_best = std::numeric_limits<double>::infinity();
    double h_best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      util::WallTimer timer;
      (void)(*flat)->AllFastestPaths(query);
      f_best = std::min(f_best, timer.ElapsedMillis());
      timer.Restart();
      (void)(*hier)->AllFastestPaths(query);
      h_best = std::min(h_best, timer.ElapsedMillis());
    }
    flat_ms.push_back(f_best);
    two_ms.push_back(h_best);
    speedups.push_back(f_best / h_best);
    std::printf("  %5.1f mi  flat %8.2f ms  two-phase %8.2f ms  (%.1fx)\n",
                pair.euclid_miles, f_best, h_best, f_best / h_best);
  }
  const auto hier_delta =
      (*hier)->metrics()->Snapshot().DeltaSince(hier_before);

  const double flat_med = Median(flat_ms);
  const double two_med = Median(two_ms);
  const double speedup_med = Median(speedups);
  const uint64_t runs = hier_delta.counter("capefp.hier.queries");
  CAPEFP_CHECK_EQ(runs, static_cast<uint64_t>(queries) * repeats);
  CAPEFP_CHECK_EQ(hier_delta.counter("capefp.hier.fallbacks"), 0u);
  const double corridor_fragments_mean =
      static_cast<double>(hier_delta.counter("capefp.hier.corridor_fragments")) /
      static_cast<double>(runs);
  const double corridor_nodes_mean =
      static_cast<double>(hier_delta.counter("capefp.hier.corridor_nodes")) /
      static_cast<double>(runs);
  const double corridor_expansions_mean =
      static_cast<double>(
          hier_delta.counter("capefp.hier.corridor_expansions")) /
      static_cast<double>(runs);
  const auto corridor_hist =
      hier_delta.histograms.find("capefp.hier.corridor_ms");
  const auto refine_hist = hier_delta.histograms.find("capefp.hier.refine_ms");
  const double corridor_ms_mean =
      corridor_hist != hier_delta.histograms.end() ? corridor_hist->second.mean()
                                                   : 0.0;
  const double refine_ms_mean =
      refine_hist != hier_delta.histograms.end() ? refine_hist->second.mean()
                                                 : 0.0;

  std::printf("\n%-32s %10.2f ms\n", "allFP flat (median)", flat_med);
  std::printf("%-32s %10.2f ms\n", "allFP two-phase (median)", two_med);
  std::printf("%-32s %10.1fx\n", "speedup (median over queries)",
              speedup_med);
  std::printf("%-32s %10.2f ms\n", "  corridor phase (mean)",
              corridor_ms_mean);
  std::printf("%-32s %10.2f ms\n", "  refine phase (mean)", refine_ms_mean);
  std::printf("%-32s %10.1f / %d\n", "corridor fragments (mean)",
              corridor_fragments_mean, build.fragments_used);
  std::printf("%-32s %10.1f / %zu\n", "corridor nodes (mean)",
              corridor_nodes_mean, static_cast<size_t>(sn.network.num_nodes()));

  if (!json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String("bench_hierarchical");
    w.Key("workload");
    w.BeginObject();
    w.Key("network");
    w.String(network_kind);
    w.Key("nodes");
    w.Uint(sn.network.num_nodes());
    w.Key("segments");
    w.Uint(sn.network.num_edges() / 2);
    w.Key("queries");
    w.Int(queries);
    w.Key("repeats");
    w.Int(repeats);
    w.Key("seed");
    w.Uint(seed);
    w.Key("grid_dim");
    w.Int(grid);
    w.Key("simplify_eps_minutes");
    w.Double(eps);
    w.Key("leave_interval_minutes");
    w.Double(leave_minutes);
    w.Key("rush_window_minutes");
    w.BeginArray();
    w.Double(rush_lo);
    w.Double(rush_hi);
    w.EndArray();
    w.EndObject();
    w.Key("build");
    w.BeginObject();
    w.Key("build_seconds");
    w.Double(build.build_seconds);
    w.Key("fragments_used");
    w.Int(build.fragments_used);
    w.Key("transit_functions");
    w.Uint(build.transit_functions);
    w.Key("transit_breakpoints");
    w.Uint(build.transit_breakpoints);
    w.Key("approx_breakpoints");
    w.Uint(build.approx_breakpoints);
    w.Key("index_bytes");
    w.Uint(build.index_bytes);
    w.EndObject();
    w.Key("summary");
    w.BeginObject();
    w.Key("allfp_flat_ms_median");
    w.Double(flat_med);
    w.Key("allfp_two_phase_ms_median");
    w.Double(two_med);
    w.Key("speedup_vs_flat_median");
    w.Double(speedup_med);
    w.Key("corridor_phase_ms_mean");
    w.Double(corridor_ms_mean);
    w.Key("refine_phase_ms_mean");
    w.Double(refine_ms_mean);
    w.Key("corridor_fragments_mean");
    w.Double(corridor_fragments_mean);
    w.Key("corridor_nodes_mean");
    w.Double(corridor_nodes_mean);
    w.Key("corridor_expansions_mean");
    w.Double(corridor_expansions_mean);
    w.EndObject();
    // google-benchmark-shaped rows so tools/bench_compare.py can gate on
    // them. The counter-derived series are deterministic in (network,
    // seed, grid, eps); the *_seconds/_ms/slowdown series are wall-clock
    // and gated with a loose threshold (see hier_regression.cmake).
    w.Key("context");
    w.BeginObject();
    w.Key("executable");
    w.String("bench_hierarchical");
    w.EndObject();
    w.Key("benchmarks");
    w.BeginArray();
    BenchRow(&w, "hier/index_bytes",
             static_cast<double>(build.index_bytes), "bytes");
    BenchRow(&w, "hier/transit_breakpoints",
             static_cast<double>(build.transit_breakpoints), "count");
    BenchRow(&w, "hier/approx_breakpoints",
             static_cast<double>(build.approx_breakpoints), "count");
    BenchRow(&w, "hier/corridor_fragments_mean", corridor_fragments_mean,
             "count");
    BenchRow(&w, "hier/corridor_nodes_mean", corridor_nodes_mean, "count");
    BenchRow(&w, "hier/corridor_expansions_mean", corridor_expansions_mean,
             "count");
    BenchRow(&w, "hier/build_seconds", build.build_seconds, "s");
    BenchRow(&w, "hier/allfp_flat_ms_median", flat_med, "ms");
    BenchRow(&w, "hier/allfp_two_phase_ms_median", two_med, "ms");
    BenchRow(&w, "hier/corridor_phase_ms_mean", corridor_ms_mean, "ms");
    BenchRow(&w, "hier/refine_phase_ms_mean", refine_ms_mean, "ms");
    // two-phase/flat: smaller is better, so bench_compare's "current >
    // baseline" direction catches the speedup eroding.
    BenchRow(&w, "hier/allfp_slowdown_vs_flat", two_med / flat_med, "ratio");
    w.EndArray();
    w.EndObject();
    WriteFileOrDie(json_path, w.str() + "\n");
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
