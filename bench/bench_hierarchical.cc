// Extension bench: two-level hierarchical search (the scaling strategy
// §6.1 sketches) vs the flat IntAllFastestPaths, on a mid-size city.
//
// The hierarchical index precomputes within-fragment transit functions
// once; each query then explores the boundary-node overlay instead of the
// full road graph. Borders are identical (property-tested); this bench
// measures what that costs and saves.
//
// Flags: --queries=N (default 10), --seed=S, --grid=G (default 4).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/estimator.h"
#include "src/core/hierarchical.h"
#include "src/core/profile_search.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed", "grid"});
  const int queries = static_cast<int>(flags.GetInt("queries", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 13));
  const int grid = static_cast<int>(flags.GetInt("grid", 4));

  gen::SuffolkOptions options;
  options.seed = 7;
  options.extent_miles = 7.0;
  options.city_radius_miles = 1.6;
  options.suburb_spacing_miles = 0.2;
  options.target_segments = 0;
  options.num_highways = 6;
  const gen::SuffolkNetwork sn = gen::GenerateSuffolkNetwork(options);

  PrintHeader("Extension: hierarchical (two-level) vs flat profile search",
              {{"network nodes", std::to_string(sn.network.num_nodes())},
               {"fragment grid", std::to_string(grid) + "x" +
                                     std::to_string(grid)},
               {"queries", std::to_string(queries)},
               {"query interval", "07:00-09:00 workday"}});

  network::InMemoryAccessor accessor(&sn.network);
  core::HierarchicalOptions hier_options;
  hier_options.grid_dim = grid;
  // Cover the morning query window plus generous arrival slack; a narrower
  // window makes both the precompute and the per-query stubs cheaper.
  hier_options.window_lo = tdf::HhMm(6, 0);
  hier_options.window_hi = tdf::HhMm(13, 0);
  core::HierarchicalIndex index(&sn.network, hier_options);
  const auto& build = index.build_stats();
  std::printf("precompute: %.2f s, %d fragments, %zu transit functions "
              "(%zu breakpoints, ~%.1f per function)\n\n",
              build.build_seconds, build.fragments_used,
              build.transit_functions, build.transit_breakpoints,
              static_cast<double>(build.transit_breakpoints) /
                  static_cast<double>(build.transit_functions));

  const auto pairs = SampleQueryPairs(
      sn.network, 0.35 * options.extent_miles, 0.8 * options.extent_miles,
      queries, seed);
  const double lo = tdf::HhMm(7, 0);
  const double hi = tdf::HhMm(9, 0);

  util::Summary flat_exp;
  util::Summary hier_exp;
  util::Summary flat_ms;
  util::Summary hier_ms;
  util::Summary flat_single_ms;
  util::Summary hier_single_ms;
  for (const QueryPair& pair : pairs) {
    const core::ProfileQuery query{pair.source, pair.target, lo, hi};
    util::WallTimer timer;
    core::EuclideanEstimator flat_est(&accessor, pair.target);
    core::ProfileSearch flat(&accessor, &flat_est);
    const core::AllFpResult expected = flat.RunAllFp(query);
    flat_ms.Add(timer.ElapsedMillis());
    flat_exp.Add(static_cast<double>(expected.stats.expansions));

    timer.Restart();
    core::EuclideanEstimator hier_est(&accessor, pair.target);
    auto actual = index.RunAllFp(query, &hier_est);
    hier_ms.Add(timer.ElapsedMillis());
    CAPEFP_CHECK(actual.ok()) << actual.status().ToString();
    CAPEFP_CHECK_EQ(actual->found, expected.found);
    if (expected.found) {
      CAPEFP_CHECK(tdf::PwlFunction::ApproxEqual(*actual->border,
                                                 *expected.border, 1e-6));
    }
    hier_exp.Add(static_cast<double>(actual->stats.expansions));

    timer.Restart();
    core::EuclideanEstimator flat_est2(&accessor, pair.target);
    core::ProfileSearch flat2(&accessor, &flat_est2);
    (void)flat2.RunSingleFp(query);
    flat_single_ms.Add(timer.ElapsedMillis());
    timer.Restart();
    core::EuclideanEstimator hier_est2(&accessor, pair.target);
    (void)index.RunSingleFp(query, &hier_est2);
    hier_single_ms.Add(timer.ElapsedMillis());
  }

  std::printf("%-24s %14s %12s\n", "metric", "flat", "hierarchical");
  std::printf("%-24s %14.0f %12.0f\n", "allFP expansions (mean)",
              flat_exp.mean(), hier_exp.mean());
  std::printf("%-24s %14.1f %12.1f\n", "allFP ms (mean)", flat_ms.mean(),
              hier_ms.mean());
  std::printf("%-24s %14.1f %12.1f\n", "singleFP ms (mean)",
              flat_single_ms.mean(), hier_single_ms.mean());
  std::printf("\n(identical lower borders asserted per query; hierarchical "
              "query cost includes the per-query source/target stubs)\n");
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
