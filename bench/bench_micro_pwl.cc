// Microbenchmarks for the piecewise-linear function algebra — the inner
// loop of IntAllFastestPaths (every expansion composes functions; every
// border update takes an envelope).
#include <benchmark/benchmark.h>

#include "src/core/lower_border.h"
#include "src/tdf/pwl_function.h"
#include "src/tdf/speed_pattern.h"
#include "src/tdf/travel_time.h"
#include "src/util/random.h"

namespace capefp {
namespace {

tdf::PwlFunction RandomFunction(util::Rng& rng, double lo, double hi,
                                int pieces) {
  std::vector<tdf::Breakpoint> pts;
  const double step = (hi - lo) / pieces;
  for (int i = 0; i <= pieces; ++i) {
    pts.push_back({lo + i * step, rng.NextDouble(5.0, 40.0)});
  }
  return tdf::PwlFunction(std::move(pts));
}

void BM_PwlValue(benchmark::State& state) {
  util::Rng rng(1);
  const tdf::PwlFunction f =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  double x = 0.0;
  for (auto _ : state) {
    x += 1.37;
    if (x > 180.0) x -= 180.0;
    benchmark::DoNotOptimize(f.Value(x));
  }
}
BENCHMARK(BM_PwlValue)->Arg(4)->Arg(16)->Arg(64);

void BM_PwlSum(benchmark::State& state) {
  util::Rng rng(2);
  const tdf::PwlFunction f =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  const tdf::PwlFunction g =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdf::PwlFunction::Sum(f, g));
  }
}
BENCHMARK(BM_PwlSum)->Arg(4)->Arg(16)->Arg(64);

void BM_PwlMinEnvelope(benchmark::State& state) {
  util::Rng rng(3);
  const tdf::PwlFunction f =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  const tdf::PwlFunction g =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdf::PwlFunction::Min(f, g));
  }
}
BENCHMARK(BM_PwlMinEnvelope)->Arg(4)->Arg(16)->Arg(64);

// --- Destination-buffer (*Into) + arena variants of the hot operations.
// These are what the search loops actually run (see DESIGN.md §8); the
// allocating series above stay as-is for cross-PR comparability.

void BM_PwlSumInto(benchmark::State& state) {
  util::Rng rng(2);
  const tdf::PwlFunction f =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  const tdf::PwlFunction g =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  tdf::PwlArena arena;
  tdf::PwlFunction out(&arena);
  for (auto _ : state) {
    tdf::PwlFunction::SumInto(f, g, &out);
    benchmark::DoNotOptimize(out.NumPieces());
  }
}
BENCHMARK(BM_PwlSumInto)->Arg(4)->Arg(16)->Arg(64);

void BM_PwlMinEnvelopeInto(benchmark::State& state) {
  util::Rng rng(3);
  const tdf::PwlFunction f =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  const tdf::PwlFunction g =
      RandomFunction(rng, 0.0, 180.0, static_cast<int>(state.range(0)));
  tdf::PwlArena arena;
  tdf::PwlFunction out(&arena);
  for (auto _ : state) {
    tdf::PwlFunction::LowerEnvelopeInto(f, g, &out);
    benchmark::DoNotOptimize(out.NumPieces());
  }
}
BENCHMARK(BM_PwlMinEnvelopeInto)->Arg(4)->Arg(16)->Arg(64);

// n-way sum: one shared grid (SumMany) vs the chained pairwise Sum it
// replaces (the chain re-grids after every step — the latent quadratic).
void BM_PwlSumMany(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<tdf::PwlFunction> fs;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    fs.push_back(RandomFunction(rng, 0.0, 180.0, 12));
  }
  tdf::PwlFunction out;
  for (auto _ : state) {
    tdf::PwlFunction::SumManyInto(fs, &out);
    benchmark::DoNotOptimize(out.NumPieces());
  }
}
BENCHMARK(BM_PwlSumMany)->Arg(4)->Arg(16);

void BM_PwlSumChain(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<tdf::PwlFunction> fs;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    fs.push_back(RandomFunction(rng, 0.0, 180.0, 12));
  }
  for (auto _ : state) {
    tdf::PwlFunction acc = fs[0];
    for (size_t i = 1; i < fs.size(); ++i) {
      acc = tdf::PwlFunction::Sum(acc, fs[i]);
    }
    benchmark::DoNotOptimize(acc.NumPieces());
  }
}
BENCHMARK(BM_PwlSumChain)->Arg(4)->Arg(16);

void BM_EdgeTravelTimeFunction(benchmark::State& state) {
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  const tdf::CapeCodPattern pat({tdf::DailySpeedPattern(
      {{0.0, 1.0}, {tdf::HhMm(7, 0), 0.3}, {tdf::HhMm(10, 0), 1.0},
       {tdf::HhMm(16, 0), 0.5}, {tdf::HhMm(19, 0), 1.0}})});
  const tdf::EdgeSpeedView view(&pat, &cal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdf::EdgeTravelTimeFunction(
        view, 2.0, tdf::HhMm(6, 30), tdf::HhMm(9, 30)));
  }
}
BENCHMARK(BM_EdgeTravelTimeFunction);

void BM_ExpandPath(benchmark::State& state) {
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  const tdf::CapeCodPattern pat({tdf::DailySpeedPattern(
      {{0.0, 1.0}, {tdf::HhMm(7, 0), 0.3}, {tdf::HhMm(10, 0), 1.0}})});
  const tdf::EdgeSpeedView view(&pat, &cal);
  const tdf::PwlFunction path = tdf::EdgeTravelTimeFunction(
      view, 3.0, tdf::HhMm(6, 30), tdf::HhMm(9, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdf::ExpandPath(path, view, 1.5));
  }
}
BENCHMARK(BM_ExpandPath);

void BM_EdgeTravelTimeFunctionInto(benchmark::State& state) {
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  const tdf::CapeCodPattern pat({tdf::DailySpeedPattern(
      {{0.0, 1.0}, {tdf::HhMm(7, 0), 0.3}, {tdf::HhMm(10, 0), 1.0},
       {tdf::HhMm(16, 0), 0.5}, {tdf::HhMm(19, 0), 1.0}})});
  const tdf::EdgeSpeedView view(&pat, &cal);
  tdf::PwlArena arena;
  tdf::PwlFunction out(&arena);
  for (auto _ : state) {
    tdf::EdgeTravelTimeFunctionInto(view, 2.0, tdf::HhMm(6, 30),
                                    tdf::HhMm(9, 30), &out);
    benchmark::DoNotOptimize(out.NumPieces());
  }
}
BENCHMARK(BM_EdgeTravelTimeFunctionInto);

void BM_ExpandPathInto(benchmark::State& state) {
  const tdf::Calendar cal = tdf::Calendar::SingleCategory();
  const tdf::CapeCodPattern pat({tdf::DailySpeedPattern(
      {{0.0, 1.0}, {tdf::HhMm(7, 0), 0.3}, {tdf::HhMm(10, 0), 1.0}})});
  const tdf::EdgeSpeedView view(&pat, &cal);
  const tdf::PwlFunction path = tdf::EdgeTravelTimeFunction(
      view, 3.0, tdf::HhMm(6, 30), tdf::HhMm(9, 30));
  tdf::PwlArena arena;
  tdf::PwlFunction edge_scratch(&arena);
  tdf::PwlFunction out(&arena);
  for (auto _ : state) {
    tdf::ExpandPathInto(path, view, 1.5, &edge_scratch, &out);
    benchmark::DoNotOptimize(out.NumPieces());
  }
}
BENCHMARK(BM_ExpandPathInto);

void BM_LowerBorderMerge(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<tdf::PwlFunction> candidates;
  for (int i = 0; i < 64; ++i) {
    candidates.push_back(RandomFunction(rng, 0.0, 180.0, 12));
  }
  for (auto _ : state) {
    core::LowerBorder border(0.0, 180.0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      border.Merge(candidates[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(border.pieces().size());
  }
}
BENCHMARK(BM_LowerBorderMerge);

void BM_LowerBorderMergeArena(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<tdf::PwlFunction> candidates;
  for (int i = 0; i < 64; ++i) {
    candidates.push_back(RandomFunction(rng, 0.0, 180.0, 12));
  }
  tdf::PwlArena arena;
  for (auto _ : state) {
    core::LowerBorder border(0.0, 180.0, &arena);
    for (size_t i = 0; i < candidates.size(); ++i) {
      border.Merge(candidates[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(border.pieces().size());
  }
}
BENCHMARK(BM_LowerBorderMergeArena);

void BM_TravelTimePointQuery(benchmark::State& state) {
  const tdf::Calendar cal = tdf::Calendar::StandardWeek(0, 1);
  const tdf::CapeCodPattern pat(
      {tdf::DailySpeedPattern({{0.0, 1.0}, {tdf::HhMm(7, 0), 0.3},
                               {tdf::HhMm(10, 0), 1.0}}),
       tdf::DailySpeedPattern::Constant(1.0)});
  const tdf::EdgeSpeedView view(&pat, &cal);
  double t = 0.0;
  for (auto _ : state) {
    t += 11.7;
    if (t > 7.0 * tdf::kMinutesPerDay) t = 0.0;
    benchmark::DoNotOptimize(tdf::TravelTime(view, 2.5, t));
  }
}
BENCHMARK(BM_TravelTimePointQuery);

}  // namespace
}  // namespace capefp

BENCHMARK_MAIN();
