// Shared plumbing for the paper-reproduction benchmark binaries: flag
// parsing, the query workload of §6.2 (node pairs sampled by Euclidean
// distance bucket), and table printing.
#ifndef CAPEFP_BENCH_BENCH_COMMON_H_
#define CAPEFP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gen/suffolk_generator.h"
#include "src/network/road_network.h"
#include "src/util/json_writer.h"

namespace capefp::bench {

// Minimal --key=value flag parser. Unknown flags abort with a message
// listing `known` flags. Every bench binary additionally understands
// --json=<path> (machine-readable output destination, empty = none) and
// --threads=<n>, so those never need to appear in `known`.
class Flags {
 public:
  Flags(int argc, char** argv, const std::vector<std::string>& known);

  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  // The shared flags (defaults when absent: "" and 1).
  std::string json_path() const { return GetString("json", ""); }
  int threads() const { return static_cast<int>(GetInt("threads", 1)); }

 private:
  std::map<std::string, std::string> values_;
};

// Streaming JSON writer for bench output. Lives in src/util (the
// observability layer renders metric snapshots through it too); aliased
// here so bench code keeps its historical spelling.
using JsonWriter = util::JsonWriter;

// Writes `content` to `path`, aborting with a message on failure.
void WriteFileOrDie(const std::string& path, const std::string& content);

// One source/target pair whose straight-line separation falls in a bucket.
struct QueryPair {
  network::NodeId source = network::kInvalidNode;
  network::NodeId target = network::kInvalidNode;
  double euclid_miles = 0.0;
};

// Samples `count` pairs with Euclidean distance in [lo_miles, hi_miles),
// deterministically in `seed`. Aborts if the network cannot supply them.
std::vector<QueryPair> SampleQueryPairs(const network::RoadNetwork& network,
                                        double lo_miles, double hi_miles,
                                        int count, uint64_t seed);

// Samples inbound commutes: sources in the suburbs (beyond 1.5x the city
// radius from the center), targets in the urban core (within half the city
// radius) — the workload the paper's rush-hour story is about.
std::vector<QueryPair> SampleCommutePairs(const gen::SuffolkNetwork& sn,
                                          int count, uint64_t seed);

// The full-scale Suffolk-style network used by all paper benches (seeded,
// so every bench sees the identical graph).
gen::SuffolkNetwork MakeBenchNetwork(uint64_t seed = 42);

// Prints "name = value" config lines in a uniform style.
void PrintHeader(const std::string& title,
                 const std::vector<std::pair<std::string, std::string>>&
                     config);

}  // namespace capefp::bench

#endif  // CAPEFP_BENCH_BENCH_COMMON_H_
