#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/geo/point.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp::bench {

Flags::Flags(int argc, char** argv, const std::vector<std::string>& known) {
  std::vector<std::string> all_known = known;
  all_known.push_back("json");
  all_known.push_back("threads");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    bool ok = false;
    for (const std::string& k : all_known) ok = ok || k == key;
    if (!ok) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", key.c_str());
      for (const std::string& k : all_known) std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_[key] = value;
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stod(it->second);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was just emitted; the value follows inline.
  }
  if (!scope_items_.empty()) {
    if (scope_items_.back() > 0) out_ += ',';
    ++scope_items_.back();
    out_ += '\n';
    Indent();
  }
}

void JsonWriter::Indent() {
  out_.append(2 * scope_items_.size(), ' ');
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scope_items_.push_back(0);
}

void JsonWriter::EndObject() {
  CAPEFP_CHECK(!scope_items_.empty());
  const int items = scope_items_.back();
  scope_items_.pop_back();
  if (items > 0) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scope_items_.push_back(0);
}

void JsonWriter::EndArray() {
  CAPEFP_CHECK(!scope_items_.empty());
  const int items = scope_items_.back();
  scope_items_.pop_back();
  if (items > 0) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

void JsonWriter::Key(const std::string& name) {
  CAPEFP_CHECK(!pending_key_);
  BeforeValue();
  AppendEscaped(&out_, name);
  out_ += ": ";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(&out_, value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  char buf[64];
  // %.17g round-trips; trim to something readable but lossless enough for
  // latencies and rates.
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

const std::string& JsonWriter::str() const {
  CAPEFP_CHECK(scope_items_.empty()) << "unclosed JSON scope";
  CAPEFP_CHECK(!pending_key_) << "dangling JSON key";
  return out_;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CAPEFP_CHECK(f != nullptr) << "cannot open " << path << " for writing";
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  CAPEFP_CHECK_EQ(written, content.size()) << "short write to " << path;
  CAPEFP_CHECK_EQ(std::fclose(f), 0) << "close failed for " << path;
}

std::vector<QueryPair> SampleQueryPairs(const network::RoadNetwork& net,
                                        double lo_miles, double hi_miles,
                                        int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<QueryPair> pairs;
  const int64_t max_attempts = static_cast<int64_t>(count) * 20000;
  for (int64_t attempt = 0;
       attempt < max_attempts && pairs.size() < static_cast<size_t>(count);
       ++attempt) {
    const auto s = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const auto t = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    if (s == t) continue;
    const double d =
        geo::EuclideanDistance(net.location(s), net.location(t));
    if (d >= lo_miles && d < hi_miles) pairs.push_back({s, t, d});
  }
  CAPEFP_CHECK_EQ(pairs.size(), static_cast<size_t>(count))
      << "could not sample enough pairs in [" << lo_miles << "," << hi_miles
      << ") miles";
  return pairs;
}

std::vector<QueryPair> SampleCommutePairs(const gen::SuffolkNetwork& sn,
                                          int count, uint64_t seed) {
  util::Rng rng(seed);
  const network::RoadNetwork& net = sn.network;
  std::vector<QueryPair> pairs;
  const int64_t max_attempts = static_cast<int64_t>(count) * 20000;
  for (int64_t attempt = 0;
       attempt < max_attempts && pairs.size() < static_cast<size_t>(count);
       ++attempt) {
    const auto s = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const auto t = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    if (s == t) continue;
    const double ds = geo::EuclideanDistance(net.location(s), sn.city_center);
    const double dt = geo::EuclideanDistance(net.location(t), sn.city_center);
    if (ds < 1.5 * sn.city_radius_miles || dt > 0.5 * sn.city_radius_miles) {
      continue;
    }
    pairs.push_back(
        {s, t, geo::EuclideanDistance(net.location(s), net.location(t))});
  }
  CAPEFP_CHECK_EQ(pairs.size(), static_cast<size_t>(count))
      << "could not sample enough commute pairs";
  return pairs;
}

gen::SuffolkNetwork MakeBenchNetwork(uint64_t seed) {
  gen::SuffolkOptions options;
  options.seed = seed;
  return gen::GenerateSuffolkNetwork(options);
}

void PrintHeader(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  for (const auto& [key, value] : config) {
    std::printf("  %-28s %s\n", (key + ":").c_str(), value.c_str());
  }
  std::printf("==============================================================\n");
}

}  // namespace capefp::bench
