#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/geo/point.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp::bench {

Flags::Flags(int argc, char** argv, const std::vector<std::string>& known) {
  std::vector<std::string> all_known = known;
  all_known.push_back("json");
  all_known.push_back("threads");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    bool ok = false;
    for (const std::string& k : all_known) ok = ok || k == key;
    if (!ok) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", key.c_str());
      for (const std::string& k : all_known) std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_[key] = value;
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stod(it->second);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CAPEFP_CHECK(f != nullptr) << "cannot open " << path << " for writing";
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  CAPEFP_CHECK_EQ(written, content.size()) << "short write to " << path;
  CAPEFP_CHECK_EQ(std::fclose(f), 0) << "close failed for " << path;
}

std::vector<QueryPair> SampleQueryPairs(const network::RoadNetwork& net,
                                        double lo_miles, double hi_miles,
                                        int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<QueryPair> pairs;
  const int64_t max_attempts = static_cast<int64_t>(count) * 20000;
  for (int64_t attempt = 0;
       attempt < max_attempts && pairs.size() < static_cast<size_t>(count);
       ++attempt) {
    const auto s = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const auto t = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    if (s == t) continue;
    const double d =
        geo::EuclideanDistance(net.location(s), net.location(t));
    if (d >= lo_miles && d < hi_miles) pairs.push_back({s, t, d});
  }
  CAPEFP_CHECK_EQ(pairs.size(), static_cast<size_t>(count))
      << "could not sample enough pairs in [" << lo_miles << "," << hi_miles
      << ") miles";
  return pairs;
}

std::vector<QueryPair> SampleCommutePairs(const gen::SuffolkNetwork& sn,
                                          int count, uint64_t seed) {
  util::Rng rng(seed);
  const network::RoadNetwork& net = sn.network;
  std::vector<QueryPair> pairs;
  const int64_t max_attempts = static_cast<int64_t>(count) * 20000;
  for (int64_t attempt = 0;
       attempt < max_attempts && pairs.size() < static_cast<size_t>(count);
       ++attempt) {
    const auto s = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    const auto t = static_cast<network::NodeId>(
        rng.NextBounded(net.num_nodes()));
    if (s == t) continue;
    const double ds = geo::EuclideanDistance(net.location(s), sn.city_center);
    const double dt = geo::EuclideanDistance(net.location(t), sn.city_center);
    if (ds < 1.5 * sn.city_radius_miles || dt > 0.5 * sn.city_radius_miles) {
      continue;
    }
    pairs.push_back(
        {s, t, geo::EuclideanDistance(net.location(s), net.location(t))});
  }
  CAPEFP_CHECK_EQ(pairs.size(), static_cast<size_t>(count))
      << "could not sample enough commute pairs";
  return pairs;
}

gen::SuffolkNetwork MakeBenchNetwork(uint64_t seed) {
  gen::SuffolkOptions options;
  options.seed = seed;
  return gen::GenerateSuffolkNetwork(options);
}

void PrintHeader(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  for (const auto& [key, value] : config) {
    std::printf("  %-28s %s\n", (key + ":").c_str(), value.c_str());
  }
  std::printf("==============================================================\n");
}

}  // namespace capefp::bench
