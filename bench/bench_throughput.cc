// Batched query throughput: the §6.2 distance-bucketed allFP workload
// replayed through FastestPathEngine::RunBatch at several thread counts,
// with the edge-TTF cache on and off, reporting QPS, latency percentiles,
// cache hit rates, and expansion counts. Results go to stdout as a table
// and (by default) to BENCH_throughput.json — the repo's machine-readable
// perf baseline.
//
// Flags:
//   --queries=N        queries per 1-mile distance bucket (default 16)
//   --buckets=B        distance buckets, 1..B miles (default 3)
//   --seed=S           workload seed (default 1)
//   --grid=G           boundary estimator grid dimension (default 16)
//   --network=small|full  Suffolk scale (default full)
//   --threads-list=L   comma-separated thread counts (default 1,2,4,8)
//   --json=PATH        output path (default BENCH_throughput.json; "" = off)
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"
#include "src/gen/suffolk_generator.h"
#include "src/obs/metrics.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

struct ConfigResult {
  int threads = 0;
  bool cache = false;
  double wall_ms = 0.0;
  double qps = 0.0;
  util::Summary latency_ms;
  int64_t expansions = 0;
  network::EdgeTtfCacheStats cache_stats;
  // This config's movement of the engine metric tree (counters diffed
  // against the pre-run snapshot) and its batch-local latency histogram.
  obs::MetricsSnapshot metrics_delta;
  obs::HistogramSnapshot batch_latency;
};

std::vector<int> ParseThreadsList(const std::string& spec) {
  std::vector<int> out;
  size_t at = 0;
  while (at < spec.size()) {
    size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stoi(spec.substr(at, comma - at)));
    at = comma + 1;
  }
  CAPEFP_CHECK(!out.empty()) << "empty --threads-list";
  return out;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"queries", "buckets", "seed", "grid", "network",
                     "threads-list"});
  const int queries = static_cast<int>(flags.GetInt("queries", 16));
  const int buckets = static_cast<int>(flags.GetInt("buckets", 3));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int grid = static_cast<int>(flags.GetInt("grid", 16));
  const std::string network_kind = flags.GetString("network", "full");
  const std::vector<int> thread_counts =
      ParseThreadsList(flags.GetString("threads-list", "1,2,4,8"));
  const std::string json_path =
      flags.GetString("json", "BENCH_throughput.json");

  gen::SuffolkOptions net_options;
  if (network_kind == "small") net_options = gen::SuffolkOptions::Small();
  net_options.seed = 42;
  const auto sn = gen::GenerateSuffolkNetwork(net_options);

  const unsigned hw_threads = std::thread::hardware_concurrency();
  PrintHeader(
      "Throughput: RunBatch over the distance-bucketed allFP workload",
      {{"network nodes", std::to_string(sn.network.num_nodes())},
       {"network segments", std::to_string(sn.network.num_edges() / 2)},
       {"query interval", "07:00-10:00 workday (3h morning rush)"},
       {"queries per bucket", std::to_string(queries)},
       {"distance buckets", "1.." + std::to_string(buckets) + " miles"},
       {"bdLB grid", std::to_string(grid)},
       {"host hardware threads", std::to_string(hw_threads)}});

  core::EngineOptions options;
  options.boundary_grid_dim = grid;
  auto engine_or = core::FastestPathEngine::Create(&sn.network, options);
  CAPEFP_CHECK(engine_or.ok()) << engine_or.status().ToString();
  core::FastestPathEngine& engine = **engine_or;

  const double lo = tdf::HhMm(7, 0);
  const double hi = tdf::HhMm(10, 0);
  std::vector<core::ProfileQuery> workload;
  for (int mile = 1; mile <= buckets; ++mile) {
    const auto pairs =
        SampleQueryPairs(sn.network, mile - 0.5, mile + 0.5, queries,
                         seed * 1000 + static_cast<uint64_t>(mile));
    for (const QueryPair& pair : pairs) {
      workload.push_back({pair.source, pair.target, lo, hi});
    }
  }

  // Reference run: results of every config must match it (the batch API
  // promises bit-identical answers regardless of thread count; across
  // cache settings the functions may differ in representation, so the
  // border is compared approximately).
  std::vector<core::AllFpResult> reference = engine.RunBatch(workload, 1);

  std::vector<ConfigResult> results;
  for (const bool cache_on : {true, false}) {
    for (const int threads : thread_counts) {
      engine.set_ttf_cache_enabled(cache_on);
      engine.ClearTtfCache();  // Every config starts cold.
      const obs::MetricsSnapshot before = engine.metrics()->Snapshot();
      util::WallTimer timer;
      const core::BatchResult batch =
          engine.RunBatchWithMetrics(workload, threads);
      ConfigResult config;
      config.wall_ms = timer.ElapsedMillis();
      config.threads = threads;
      config.cache = cache_on;
      config.qps =
          static_cast<double>(workload.size()) / (config.wall_ms / 1000.0);
      config.metrics_delta = batch.metrics.DeltaSince(before);
      config.batch_latency = batch.latency_ms;
      for (double ms : batch.per_query_millis) config.latency_ms.Add(ms);
      for (size_t i = 0; i < batch.results.size(); ++i) {
        CAPEFP_CHECK(batch.results[i].found);
        config.expansions += batch.results[i].stats.expansions;
        CAPEFP_CHECK(tdf::PwlFunction::ApproxEqual(
            *batch.results[i].border, *reference[i].border, 1e-6))
            << "config (threads=" << threads << ", cache=" << cache_on
            << ") diverged from the reference on query " << i;
      }
      if (const auto stats = engine.ttf_cache_stats(); stats.has_value()) {
        config.cache_stats = *stats;
      }
      results.push_back(config);
      std::printf("threads=%d cache=%-3s  %8.1f ms  %7.1f qps  p50 %6.2f ms"
                  "  p95 %6.2f ms  hit-rate %5.1f%%\n",
                  threads, cache_on ? "on" : "off", config.wall_ms,
                  config.qps, config.latency_ms.percentile(50),
                  config.latency_ms.percentile(95),
                  100.0 * config.cache_stats.hit_rate());
    }
  }
  engine.set_ttf_cache_enabled(true);

  double base_qps_cache = 0.0;
  double base_qps_nocache = 0.0;
  for (const ConfigResult& r : results) {
    if (r.threads == 1) (r.cache ? base_qps_cache : base_qps_nocache) = r.qps;
  }

  if (!json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String("bench_throughput");
    w.Key("workload");
    w.BeginObject();
    w.Key("network");
    w.String(network_kind);
    w.Key("nodes");
    w.Uint(sn.network.num_nodes());
    w.Key("segments");
    w.Uint(sn.network.num_edges() / 2);
    w.Key("queries");
    w.Uint(workload.size());
    w.Key("queries_per_bucket");
    w.Int(queries);
    w.Key("distance_buckets_miles");
    w.Int(buckets);
    w.Key("leave_interval_minutes");
    w.BeginArray();
    w.Double(lo);
    w.Double(hi);
    w.EndArray();
    w.Key("estimator_grid");
    w.Int(grid);
    w.Key("seed");
    w.Uint(seed);
    w.EndObject();
    w.Key("host");
    w.BeginObject();
    w.Key("hardware_concurrency");
    w.Uint(hw_threads);
    w.EndObject();
    w.Key("configs");
    w.BeginArray();
    for (const ConfigResult& r : results) {
      const double base = r.cache ? base_qps_cache : base_qps_nocache;
      w.BeginObject();
      w.Key("threads");
      w.Int(r.threads);
      w.Key("ttf_cache");
      w.Bool(r.cache);
      w.Key("wall_ms");
      w.Double(r.wall_ms);
      w.Key("qps");
      w.Double(r.qps);
      w.Key("speedup_vs_1_thread");
      w.Double(base > 0.0 ? r.qps / base : 0.0);
      w.Key("latency_ms");
      w.BeginObject();
      w.Key("mean");
      w.Double(r.latency_ms.mean());
      w.Key("p50");
      w.Double(r.latency_ms.percentile(50));
      w.Key("p95");
      w.Double(r.latency_ms.percentile(95));
      w.Key("max");
      w.Double(r.latency_ms.max());
      w.EndObject();
      w.Key("expansions");
      w.Int(r.expansions);
      w.Key("ttf_cache_stats");
      w.BeginObject();
      w.Key("hits");
      w.Uint(r.cache_stats.hits);
      w.Key("misses");
      w.Uint(r.cache_stats.misses);
      w.Key("evictions");
      w.Uint(r.cache_stats.evictions);
      w.Key("bypasses");
      w.Uint(r.cache_stats.bypasses);
      w.Key("hit_rate");
      w.Double(r.cache_stats.hit_rate());
      w.EndObject();
      w.Key("batch_latency_ms");
      w.BeginObject();
      w.Key("count");
      w.Uint(r.batch_latency.count);
      w.Key("mean");
      w.Double(r.batch_latency.mean());
      w.Key("p50");
      w.Double(r.batch_latency.Percentile(50.0));
      w.Key("p95");
      w.Double(r.batch_latency.Percentile(95.0));
      w.Key("p99");
      w.Double(r.batch_latency.Percentile(99.0));
      w.EndObject();
      w.Key("metrics");
      r.metrics_delta.WriteJson(&w);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    WriteFileOrDie(json_path, w.str() + "\n");
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
