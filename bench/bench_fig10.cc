// Figure 10 reproduction: CapeCod (continuous) vs Discrete Time model for
// the singleFP query, at four discretization levels (1 h, 10 min, 1 min,
// 10 s).
//
// Setup per §6.3: a 2-hour interval "during the rush hours (during which
// the speed changes)" — we use 08:00-10:00 so the interval covers the tail
// of the morning rush, where travel time genuinely varies with the leaving
// instant (inside a single constant-speed regime the discrete model would
// trivially be exact). Source-target Euclidean distance is 7-8 miles.
// Reported, as in the paper, as ratios against the CapeCod approach:
//   Fig 10(a): travel-time ratio  (discrete best / continuous best) — the
//              accuracy the discrete model loses between samples;
//   Fig 10(b): query-time ratio   (discrete wall time / continuous wall
//              time) — the cost of sampling.
//
// Flags: --queries=N (default 6), --seed=S, --grid=G (default 32).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/boundary_estimator.h"
#include "src/core/discrete_solver.h"
#include "src/core/profile_search.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed", "grid"});
  const int queries = static_cast<int>(flags.GetInt("queries", 6));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int grid = static_cast<int>(flags.GetInt("grid", 32));

  const auto sn = MakeBenchNetwork();
  PrintHeader(
      "Figure 10: CapeCod model vs Discrete Time model (singleFP)",
      {{"network nodes", std::to_string(sn.network.num_nodes())},
       {"query interval",
        "08:00-10:00 workday (2h, spans the rush-hour tail where the "
        "travel time actually changes)"},
       {"distance", "7-8 miles"},
       {"queries", std::to_string(queries)},
       {"discretization steps", "1h, 10min, 1min, 10s"}});

  network::InMemoryAccessor accessor(
      const_cast<const network::RoadNetwork*>(&sn.network));
  const core::BoundaryNodeIndex index(
      sn.network,
      {.grid_dim = grid,
       .mode = core::BoundaryIndexOptions::Mode::kTravelTime});

  const double lo = tdf::HhMm(8, 0);
  const double hi = tdf::HhMm(10, 0);
  const auto pairs = SampleQueryPairs(sn.network, 7.0, 8.0, queries, seed);

  struct Level {
    const char* name;
    double step;
    util::Summary travel_ratio;
    util::Summary query_ratio;
    util::Summary work_ratio;  // Expanded nodes, hardware-independent.
    util::Summary probes;
  };
  std::vector<Level> levels = {{"1 hour", 60.0, {}, {}, {}, {}},
                               {"10 min", 10.0, {}, {}, {}, {}},
                               {"1 min", 1.0, {}, {}, {}, {}},
                               {"10 sec", 1.0 / 6.0, {}, {}, {}, {}}};

  util::Summary continuous_ms;
  util::Summary continuous_travel;
  for (const QueryPair& pair : pairs) {
    // Continuous (CapeCod) answer.
    util::WallTimer timer;
    core::BoundaryNodeEstimator est(&index, &accessor, pair.target);
    core::ProfileSearch search(&accessor, &est);
    const core::SingleFpResult continuous =
        search.RunSingleFp({pair.source, pair.target, lo, hi});
    const double continuous_time = timer.ElapsedMillis();
    CAPEFP_CHECK(continuous.found);
    continuous_ms.Add(continuous_time);
    continuous_travel.Add(continuous.best_travel_minutes);

    for (Level& level : levels) {
      timer.Restart();
      core::BoundaryNodeEstimator probe_est(&index, &accessor, pair.target);
      const core::DiscreteSingleFpResult discrete = core::DiscreteSingleFp(
          &accessor, &probe_est,
          {pair.source, pair.target, lo, hi, level.step});
      const double discrete_time = timer.ElapsedMillis();
      CAPEFP_CHECK(discrete.found);
      level.travel_ratio.Add(discrete.best_travel_minutes /
                             continuous.best_travel_minutes);
      level.query_ratio.Add(discrete_time / continuous_time);
      level.work_ratio.Add(
          static_cast<double>(discrete.expanded_nodes) /
          static_cast<double>(continuous.stats.expansions));
      level.probes.Add(static_cast<double>(discrete.num_probes));
    }
  }

  std::printf("CapeCod (continuous) baseline: mean query %.1f ms, mean best "
              "travel %.1f min\n\n",
              continuous_ms.mean(), continuous_travel.mean());
  std::printf("Figure 10(a) - travel-time ratio (discrete / CapeCod)\n");
  std::printf("%10s %10s %12s %12s\n", "step", "probes", "mean", "max");
  for (const Level& level : levels) {
    std::printf("%10s %10.0f %12.4f %12.4f\n", level.name,
                level.probes.mean(), level.travel_ratio.mean(),
                level.travel_ratio.max());
  }
  std::printf("\nFigure 10(b) - query cost ratio (discrete / CapeCod)\n");
  std::printf("%10s %14s %14s %16s\n", "step", "time mean", "time max",
              "expanded-node");
  for (const Level& level : levels) {
    std::printf("%10s %13.1fx %13.1fx %15.1fx\n", level.name,
                level.query_ratio.mean(), level.query_ratio.max(),
                level.work_ratio.mean());
  }
  std::printf("\n(expanded-node ratio is deterministic and "
              "hardware-independent; wall-clock ratios vary with machine "
              "load)\n");
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
