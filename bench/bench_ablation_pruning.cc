// Ablation A2 (DESIGN.md): pruning rules of IntAllFastestPaths.
//
// Rows:
//   paper      — the paper's algorithm: only the scalar bound test
//                (min key vs border max) and termination rule;
//   dominance  — plus per-node dominance pruning (library default);
//   pointwise  — dominance plus pointwise bound pruning.
//
// The no-dominance row runs on a reduced network (a few hundred nodes):
// without dominance the number of queued paths grows combinatorially with
// network size, which is precisely why the default keeps it on.
//
// Flags: --queries=N (default 8), --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/network/accessor.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/stats.h"

namespace capefp::bench {
namespace {

struct RowResult {
  util::Summary expansions;
  util::Summary pushes;
  util::Summary ms;
  int capped = 0;
};

RowResult RunRow(network::NetworkAccessor* accessor,
                 const std::vector<QueryPair>& pairs, double lo, double hi,
                 const core::ProfileSearchOptions& options) {
  RowResult row;
  for (const QueryPair& pair : pairs) {
    util::WallTimer timer;
    core::EuclideanEstimator est(accessor, pair.target);
    core::ProfileSearch search(accessor, &est, options);
    const core::AllFpResult result =
        search.RunAllFp({pair.source, pair.target, lo, hi});
    row.ms.Add(timer.ElapsedMillis());
    row.expansions.Add(static_cast<double>(result.stats.expansions));
    row.pushes.Add(static_cast<double>(result.stats.pushes));
    if (result.stats.hit_expansion_cap) ++row.capped;
  }
  return row;
}

void PrintRow(const char* name, const RowResult& row) {
  std::printf("%-12s %14.0f %14.0f %10.1f %8d\n", name,
              row.expansions.mean(), row.pushes.mean(), row.ms.mean(),
              row.capped);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv, {"queries", "seed"});
  const int queries = static_cast<int>(flags.GetInt("queries", 8));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  const double lo = tdf::HhMm(7, 0);
  const double hi = tdf::HhMm(9, 0);

  core::ProfileSearchOptions paper_rules;
  paper_rules.dominance_pruning = false;
  paper_rules.max_expansions = 500000;
  core::ProfileSearchOptions with_dominance;  // Defaults.
  core::ProfileSearchOptions with_pointwise;
  with_pointwise.pointwise_bound_pruning = true;

  {
    const auto small = gen::GenerateSuffolkNetwork(
        gen::SuffolkOptions::Small());
    PrintHeader(
        "Ablation: IntAllFastestPaths pruning rules (reduced network)",
        {{"network nodes", std::to_string(small.network.num_nodes())},
         {"queries", std::to_string(queries)},
         {"query interval", "07:00-09:00 workday"},
         {"expansion cap (paper row)", "500000"}});
    network::InMemoryAccessor accessor(&small.network);
    const auto pairs =
        SampleQueryPairs(small.network, 1.0, 2.5, queries, seed);
    std::printf("%-12s %14s %14s %10s %8s\n", "rules", "expansions",
                "pushes", "ms", "capped");
    PrintRow("paper", RunRow(&accessor, pairs, lo, hi, paper_rules));
    PrintRow("dominance", RunRow(&accessor, pairs, lo, hi, with_dominance));
    PrintRow("pointwise", RunRow(&accessor, pairs, lo, hi, with_pointwise));
  }

  {
    const auto full = MakeBenchNetwork();
    PrintHeader(
        "Ablation: dominance vs pointwise at full scale (paper rules "
        "omitted: intractable without dominance)",
        {{"network nodes", std::to_string(full.network.num_nodes())},
         {"queries", std::to_string(queries)},
         {"distance", "5-7 miles"}});
    network::InMemoryAccessor accessor(&full.network);
    const auto pairs = SampleQueryPairs(full.network, 5.0, 7.0, queries,
                                        seed + 1);
    std::printf("%-12s %14s %14s %10s %8s\n", "rules", "expansions",
                "pushes", "ms", "capped");
    PrintRow("dominance", RunRow(&accessor, pairs, lo, hi, with_dominance));
    PrintRow("pointwise", RunRow(&accessor, pairs, lo, hi, with_pointwise));
  }
  return 0;
}

}  // namespace
}  // namespace capefp::bench

int main(int argc, char** argv) { return capefp::bench::Main(argc, argv); }
