#include "src/tdf/pwl_simplify.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace capefp::tdf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared greedy cone walk. `lower` selects the corridor side: the lower
// variant keeps the output in [f - eps, f] and hugs the corridor's top (the
// tightest under-approximation a single segment from the anchor allows);
// the upper variant keeps it in [f, f + eps] and hugs the bottom, clamped
// to slope >= -1 so simplified travel-time functions stay FIFO-composable.
void SimplifyInto(const PwlFunction& f, double eps, bool lower,
                  PwlFunction* out) {
  CAPEFP_CHECK(out != &f);
  CAPEFP_CHECK_GE(eps, 0.0);
  const BreakpointVec& pts = f.breakpoints();
  const size_t n = pts.size();
  out->StartRebuild(/*reserve_hint=*/8);
  if (n <= 2 || eps <= 0.0) {
    for (size_t i = 0; i < n; ++i) out->AppendBreakpoint(pts[i].x, pts[i].y);
    out->FinishRebuild();
    return;
  }
  // Corridor offsets around f at each breakpoint.
  const double off_lo = lower ? -eps : 0.0;
  const double off_hi = lower ? 0.0 : eps;
  auto pick_slope = [lower](double s_lo, double s_hi) {
    return lower ? s_hi : std::min(s_hi, std::max(s_lo, -1.0));
  };

  Breakpoint anchor = pts[0];
  out->AppendBreakpoint(anchor.x, anchor.y);
  double s_lo = -kInf;
  double s_hi = kInf;
  size_t span_end = 0;  // Last breakpoint the current cone satisfies.
  size_t i = 1;
  while (i < n) {
    const double dx = pts[i].x - anchor.x;
    const double new_lo =
        std::max(s_lo, (pts[i].y + off_lo - anchor.y) / dx);
    const double new_hi =
        std::min(s_hi, (pts[i].y + off_hi - anchor.y) / dx);
    if (new_lo <= new_hi) {
      s_lo = new_lo;
      s_hi = new_hi;
      span_end = i;
      ++i;
      continue;
    }
    // Cone emptied at pts[i]: finalize the segment at pts[span_end] and
    // restart from there. (The restarted cone toward pts[i] is never empty:
    // a fresh anchor reaches any value at pts[i].x with some slope.)
    double y = anchor.y +
               pick_slope(s_lo, s_hi) * (pts[span_end].x - anchor.x);
    // Clamp away floating-point drift so the vertex itself stays inside the
    // corridor at its own abscissa.
    y = std::clamp(y, pts[span_end].y + off_lo, pts[span_end].y + off_hi);
    anchor = {pts[span_end].x, y};
    out->AppendBreakpoint(anchor.x, anchor.y);
    s_lo = -kInf;
    s_hi = kInf;
    // i is intentionally not advanced: its constraints are recomputed
    // against the new anchor on the next iteration.
  }
  double y_end =
      anchor.y + pick_slope(s_lo, s_hi) * (pts[n - 1].x - anchor.x);
  y_end = std::clamp(y_end, pts[n - 1].y + off_lo, pts[n - 1].y + off_hi);
  out->AppendBreakpoint(pts[n - 1].x, y_end);
  out->FinishRebuild();
}

}  // namespace

void SimplifyLowerInto(const PwlFunction& f, double eps, PwlFunction* out) {
  SimplifyInto(f, eps, /*lower=*/true, out);
}

PwlFunction SimplifyLower(const PwlFunction& f, double eps) {
  PwlFunction out;
  SimplifyLowerInto(f, eps, &out);
  return out;
}

void SimplifyUpperInto(const PwlFunction& f, double eps, PwlFunction* out) {
  SimplifyInto(f, eps, /*lower=*/false, out);
}

PwlFunction SimplifyUpper(const PwlFunction& f, double eps) {
  PwlFunction out;
  SimplifyUpperInto(f, eps, &out);
  return out;
}

double MaxAbsDifference(const PwlFunction& f, const PwlFunction& g) {
  CAPEFP_CHECK_LE(std::abs(f.domain_lo() - g.domain_lo()), kTimeEps);
  CAPEFP_CHECK_LE(std::abs(f.domain_hi() - g.domain_hi()), kTimeEps);
  double worst = 0.0;
  for (const double x : MergedGrid(f, g)) {
    worst = std::max(worst, std::abs(f.Value(x) - g.Value(x)));
  }
  return worst;
}

}  // namespace capefp::tdf
