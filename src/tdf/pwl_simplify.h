// Bounded-error simplification of piecewise-linear functions.
//
// The two-phase hierarchical search (core/hierarchical) runs its corridor
// phase over *approximate* transit functions: every exact PWL is replaced
// by a pair of simplified functions that bracket it,
//
//   SimplifyLowerInto:  f(x) - eps <= g(x) <= f(x)        for all x,
//   SimplifyUpperInto:  f(x)       <= g(x) <= f(x) + eps  for all x,
//
// with (usually far) fewer breakpoints. The algorithm is the classic greedy
// slope-cone walk (Imai–Iri style): starting from an anchor vertex it keeps
// the interval of segment slopes that stay inside the corridor at every
// following breakpoint of f, and emits a vertex and restarts the cone when
// the interval empties. Because both f and the corridor bounds are PWL,
// checking the corridor at f's breakpoints suffices.
//
// Guarantees beyond the bracket:
//  * The domain is preserved exactly and g(domain_lo) = f(domain_lo).
//  * When f satisfies the forward-FIFO invariant (all slopes >= -1), so
//    does g: the lower variant hugs the corridor's top, whose cone is
//    provably never steeper than -1 for FIFO input; the upper variant
//    clamps its picked slope to >= -1 (always corridor-feasible).
//  * eps == 0 (or <= 2 breakpoints) degenerates to a normalized copy.
//
// The *Into forms rebuild the caller-owned `out` in place (reusing its
// storage and arena binding — no allocations beyond `out`'s own growth) and
// must not alias `f`. The bracket holds in exact arithmetic; floating-point
// evaluation can violate it by a few ulps, far below kTimeEps, which the
// corridor search's pruning slack absorbs.
#ifndef CAPEFP_TDF_PWL_SIMPLIFY_H_
#define CAPEFP_TDF_PWL_SIMPLIFY_H_

#include "src/tdf/pwl_function.h"

namespace capefp::tdf {

// g with f - eps <= g <= f everywhere; requires eps >= 0.
void SimplifyLowerInto(const PwlFunction& f, double eps, PwlFunction* out);
PwlFunction SimplifyLower(const PwlFunction& f, double eps);

// g with f <= g <= f + eps everywhere; requires eps >= 0.
void SimplifyUpperInto(const PwlFunction& f, double eps, PwlFunction* out);
PwlFunction SimplifyUpper(const PwlFunction& f, double eps);

// max_x |f(x) - g(x)| over the common domain (domains must coincide within
// kTimeEps). Exact for PWL operands: evaluates on the merged grid. Used by
// the simplification tests and the hier index stats.
double MaxAbsDifference(const PwlFunction& f, const PwlFunction& g);

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_PWL_SIMPLIFY_H_
