#include "src/tdf/travel_time.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/tdf/pwl_cursor.h"
#include "src/util/check.h"

namespace capefp::tdf {

namespace {

// Guards the interval-walking loops against malformed patterns.
constexpr int kMaxWalkSteps = 1 << 20;

}  // namespace

EdgeSpeedView::EdgeSpeedView(const CapeCodPattern* pattern,
                             const Calendar* calendar)
    : pattern_(pattern), calendar_(calendar) {
  CAPEFP_CHECK(pattern != nullptr);
  CAPEFP_CHECK(calendar != nullptr);
}

const DailySpeedPattern& EdgeSpeedView::DayPattern(int64_t day) const {
  return pattern_->pattern_for(calendar_->CategoryForDay(day));
}

double EdgeSpeedView::SpeedAt(double t) const {
  const auto day = static_cast<int64_t>(std::floor(t / kMinutesPerDay));
  double minute = t - static_cast<double>(day) * kMinutesPerDay;
  minute = std::clamp(minute, 0.0, kMinutesPerDay - 1e-12);
  return DayPattern(day).SpeedAt(minute);
}

double EdgeSpeedView::NextBoundaryAfter(double t) const {
  const auto day = static_cast<int64_t>(std::floor(t / kMinutesPerDay));
  const double day_start = static_cast<double>(day) * kMinutesPerDay;
  const double minute = std::clamp(t - day_start, 0.0, kMinutesPerDay);
  return day_start + DayPattern(day).NextBoundaryAfter(minute);
}

double EdgeSpeedView::PrevBoundaryBefore(double t) const {
  auto day = static_cast<int64_t>(std::floor(t / kMinutesPerDay));
  double minute = t - static_cast<double>(day) * kMinutesPerDay;
  if (minute <= kTimeEps) {
    // `t` sits on a midnight: the previous boundary is the last piece start
    // of the previous day.
    day -= 1;
    minute = kMinutesPerDay;
  }
  const DailySpeedPattern& pat = DayPattern(day);
  double best = 0.0;  // Midnight of `day` is always a boundary candidate.
  for (const SpeedPiece& p : pat.pieces()) {
    if (p.start_minute < minute - kTimeEps) best = p.start_minute;
  }
  return static_cast<double>(day) * kMinutesPerDay + best;
}

double TravelTime(const EdgeSpeedView& speed, double distance_miles,
                  double leave_time) {
  CAPEFP_CHECK_GE(distance_miles, 0.0);
  if (distance_miles == 0.0) return 0.0;
  double remaining = distance_miles;
  double t = leave_time;
  for (int step = 0; step < kMaxWalkSteps; ++step) {
    const double v = speed.SpeedAt(t);
    const double boundary = speed.NextBoundaryAfter(t);
    const double reachable = v * (boundary - t);
    if (reachable >= remaining) return (t + remaining / v) - leave_time;
    remaining -= reachable;
    t = boundary;
  }
  CAPEFP_CHECK(false) << "travel-time walk did not converge";
  return 0.0;
}

double DepartureForArrival(const EdgeSpeedView& speed, double distance_miles,
                           double arrival_time) {
  CAPEFP_CHECK_GE(distance_miles, 0.0);
  if (distance_miles == 0.0) return arrival_time;
  double remaining = distance_miles;
  double t = arrival_time;
  for (int step = 0; step < kMaxWalkSteps; ++step) {
    const double boundary = speed.PrevBoundaryBefore(t);
    // No boundary inside (boundary, t), so speed is constant there.
    const double v = speed.SpeedAt(0.5 * (boundary + t));
    const double reachable = v * (t - boundary);
    if (reachable >= remaining) return t - remaining / v;
    remaining -= reachable;
    t = boundary;
  }
  CAPEFP_CHECK(false) << "departure-for-arrival walk did not converge";
  return 0.0;
}

void EdgeTravelTimeFunctionInto(const EdgeSpeedView& speed,
                                double distance_miles, double lo, double hi,
                                PwlFunction* out) {
  CAPEFP_CHECK_LE(lo, hi + kTimeEps);
  if (hi - lo <= kTimeEps) {
    const double tt = TravelTime(speed, distance_miles, lo);
    out->StartRebuild(1);
    out->AppendBreakpoint(lo, tt);
    out->FinishRebuild();
    return;
  }

  ScratchDoubles candidates_scratch(out->arena());
  std::vector<double>& candidates = *candidates_scratch;
  candidates.reserve(16);
  candidates.push_back(lo);
  candidates.push_back(hi);
  // Case 1 breakpoints: the departure time crosses a speed boundary.
  for (double b = speed.NextBoundaryAfter(lo); b < hi - kTimeEps;
       b = speed.NextBoundaryAfter(b)) {
    candidates.push_back(b);
  }
  // Case 2 breakpoints: the arrival time crosses a speed boundary (the
  // paper's "135° line" construction of Fig. 5, inverted analytically).
  const double arrive_lo = lo + TravelTime(speed, distance_miles, lo);
  const double arrive_hi = hi + TravelTime(speed, distance_miles, hi);
  for (double b = speed.NextBoundaryAfter(arrive_lo); b < arrive_hi - kTimeEps;
       b = speed.NextBoundaryAfter(b)) {
    const double l = DepartureForArrival(speed, distance_miles, b);
    if (l > lo + kTimeEps && l < hi - kTimeEps) candidates.push_back(l);
  }

  std::sort(candidates.begin(), candidates.end());
  out->StartRebuild(candidates.size());
  bool have_last = false;
  double last_x = 0.0;
  for (double x : candidates) {
    if (have_last && x <= last_x + kTimeEps) continue;
    out->AppendBreakpoint(x, TravelTime(speed, distance_miles, x));
    last_x = x;
    have_last = true;
  }
  out->FinishRebuild();
  CAPEFP_DCHECK_OK(
      out->ValidateInvariants(PwlFunction::Kind::kForwardTravelTime));
}

PwlFunction EdgeTravelTimeFunction(const EdgeSpeedView& speed,
                                   double distance_miles, double lo,
                                   double hi) {
  PwlFunction out;
  EdgeTravelTimeFunctionInto(speed, distance_miles, lo, hi, &out);
  return out;
}

namespace {

// Shared core of forward and reverse expansion:
//   result(x) = first(x) + second(x + sign * first(x)).
// `sign` is +1 for forward composition (the map is the arrival function
// A(l) = l + T1(l)) and −1 for reverse composition (the map is the
// departure-at-intermediate function D(a) = a − R(a)); both maps are
// non-decreasing under FIFO.
void ComposeWithMapInto(const PwlFunction& path_tt, const PwlFunction& edge_tt,
                        double sign, PwlFunction* out) {
  CAPEFP_CHECK(out != &path_tt && out != &edge_tt);
  const double lo = path_tt.domain_lo();
  const double hi = path_tt.domain_hi();
  const auto& path_pts = path_tt.breakpoints();

  ScratchDoubles arrivals_scratch(out->arena());
  std::vector<double>& arrivals = *arrivals_scratch;
  arrivals.resize(path_pts.size());
  for (size_t i = 0; i < path_pts.size(); ++i) {
    arrivals[i] = path_pts[i].x + sign * path_pts[i].y;
    if (i > 0) {
      CAPEFP_CHECK_GE(arrivals[i], arrivals[i - 1] - 1e-6)
          << "path function violates FIFO";
    }
  }
  CAPEFP_CHECK_GE(arrivals.front(), edge_tt.domain_lo() - 1e-6)
      << "edge function does not cover the arrival interval (low)";
  CAPEFP_CHECK_LE(arrivals.back(), edge_tt.domain_hi() + 1e-6)
      << "edge function does not cover the arrival interval (high)";

  ScratchDoubles candidates_scratch(out->arena());
  std::vector<double>& candidates = *candidates_scratch;
  candidates.reserve(path_pts.size() + edge_tt.breakpoints().size());
  for (const Breakpoint& p : path_pts) candidates.push_back(p.x);
  // Pre-images of the edge function's breakpoints under A.
  for (const Breakpoint& eb : edge_tt.breakpoints()) {
    const double b = eb.x;
    if (b <= arrivals.front() + kTimeEps || b >= arrivals.back() - kTimeEps) {
      continue;
    }
    // Find the A-segment containing b.
    const auto it = std::lower_bound(arrivals.begin(), arrivals.end(), b);
    const size_t hi_idx = static_cast<size_t>(it - arrivals.begin());
    CAPEFP_CHECK_GT(hi_idx, 0u);
    const size_t lo_idx = hi_idx - 1;
    const double a0 = arrivals[lo_idx];
    const double a1 = arrivals[hi_idx];
    const double x0 = path_pts[lo_idx].x;
    const double x1 = path_pts[hi_idx].x;
    double l;
    if (a1 - a0 <= kTimeEps) {
      l = x0;  // Degenerate (slope −1) segment: any l maps to b.
    } else {
      l = x0 + (b - a0) * (x1 - x0) / (a1 - a0);
    }
    if (l > lo + kTimeEps && l < hi - kTimeEps) candidates.push_back(l);
  }

  std::sort(candidates.begin(), candidates.end());
  out->StartRebuild(candidates.size());
  PwlCursor path_cursor(path_tt);
  PwlCursor edge_cursor(edge_tt);
  bool have_last = false;
  double last_x = 0.0;
  for (double x : candidates) {
    if (have_last && x <= last_x + kTimeEps) continue;
    const double t1 = path_cursor.Value(x);
    const double arrive =
        std::clamp(x + sign * t1, edge_tt.domain_lo(), edge_tt.domain_hi());
    out->AppendBreakpoint(x, t1 + edge_cursor.Value(arrive));
    last_x = x;
    have_last = true;
  }
  out->FinishRebuild();
  CAPEFP_DCHECK_OK(out->ValidateInvariants(
      sign > 0 ? PwlFunction::Kind::kForwardTravelTime
               : PwlFunction::Kind::kReverseTravelTime));
}

}  // namespace

void ComposePathWithEdgeInto(const PwlFunction& path_tt,
                             const PwlFunction& edge_tt, PwlFunction* out) {
  ComposeWithMapInto(path_tt, edge_tt, +1.0, out);
}

PwlFunction ComposePathWithEdge(const PwlFunction& path_tt,
                                const PwlFunction& edge_tt) {
  PwlFunction out;
  ComposePathWithEdgeInto(path_tt, edge_tt, &out);
  return out;
}

void ExpandPathInto(const PwlFunction& path_tt, const EdgeSpeedView& speed,
                    double distance_miles, PwlFunction* edge_scratch,
                    PwlFunction* out) {
  CAPEFP_CHECK(edge_scratch != out && edge_scratch != &path_tt);
  const double arrive_lo = path_tt.domain_lo() + path_tt.Value(path_tt.domain_lo());
  const double arrive_hi = path_tt.domain_hi() + path_tt.Value(path_tt.domain_hi());
  EdgeTravelTimeFunctionInto(speed, distance_miles, arrive_lo, arrive_hi,
                             edge_scratch);
  ComposePathWithEdgeInto(path_tt, *edge_scratch, out);
}

PwlFunction ExpandPath(const PwlFunction& path_tt, const EdgeSpeedView& speed,
                       double distance_miles) {
  PwlFunction edge_tt;
  PwlFunction out;
  ExpandPathInto(path_tt, speed, distance_miles, &edge_tt, &out);
  return out;
}

void EdgeReverseTravelTimeFunctionInto(const EdgeSpeedView& speed,
                                       double distance_miles, double lo,
                                       double hi, PwlFunction* out) {
  CAPEFP_CHECK_LE(lo, hi + kTimeEps);
  auto reverse_tt = [&](double arrival) {
    return arrival - DepartureForArrival(speed, distance_miles, arrival);
  };
  if (hi - lo <= kTimeEps) {
    out->StartRebuild(1);
    out->AppendBreakpoint(lo, reverse_tt(lo));
    out->FinishRebuild();
    return;
  }

  ScratchDoubles candidates_scratch(out->arena());
  std::vector<double>& candidates = *candidates_scratch;
  candidates.reserve(16);
  candidates.push_back(lo);
  candidates.push_back(hi);
  // Breakpoints where the arrival time crosses a speed boundary.
  for (double b = speed.NextBoundaryAfter(lo); b < hi - kTimeEps;
       b = speed.NextBoundaryAfter(b)) {
    candidates.push_back(b);
  }
  // Breakpoints where the implied departure crosses a speed boundary: the
  // pre-image of boundary b is the arrival b + τ(b).
  const double depart_lo = DepartureForArrival(speed, distance_miles, lo);
  const double depart_hi = DepartureForArrival(speed, distance_miles, hi);
  for (double b = speed.NextBoundaryAfter(depart_lo); b < depart_hi - kTimeEps;
       b = speed.NextBoundaryAfter(b)) {
    const double arrival = b + TravelTime(speed, distance_miles, b);
    if (arrival > lo + kTimeEps && arrival < hi - kTimeEps) {
      candidates.push_back(arrival);
    }
  }

  std::sort(candidates.begin(), candidates.end());
  out->StartRebuild(candidates.size());
  bool have_last = false;
  double last_x = 0.0;
  for (double x : candidates) {
    if (have_last && x <= last_x + kTimeEps) continue;
    out->AppendBreakpoint(x, reverse_tt(x));
    last_x = x;
    have_last = true;
  }
  out->FinishRebuild();
  CAPEFP_DCHECK_OK(
      out->ValidateInvariants(PwlFunction::Kind::kReverseTravelTime));
}

PwlFunction EdgeReverseTravelTimeFunction(const EdgeSpeedView& speed,
                                          double distance_miles, double lo,
                                          double hi) {
  PwlFunction out;
  EdgeReverseTravelTimeFunctionInto(speed, distance_miles, lo, hi, &out);
  return out;
}

void ExpandPathReverseInto(const PwlFunction& path_rt,
                           const EdgeSpeedView& speed, double distance_miles,
                           PwlFunction* edge_scratch, PwlFunction* out) {
  CAPEFP_CHECK(edge_scratch != out && edge_scratch != &path_rt);
  const double alo = path_rt.domain_lo();
  const double ahi = path_rt.domain_hi();
  const double arrive_at_mid_lo = alo - path_rt.Value(alo);
  const double arrive_at_mid_hi = ahi - path_rt.Value(ahi);
  EdgeReverseTravelTimeFunctionInto(speed, distance_miles, arrive_at_mid_lo,
                                    arrive_at_mid_hi, edge_scratch);
  ComposeWithMapInto(path_rt, *edge_scratch, -1.0, out);
}

PwlFunction ExpandPathReverse(const PwlFunction& path_rt,
                              const EdgeSpeedView& speed,
                              double distance_miles) {
  PwlFunction edge_rt;
  PwlFunction out;
  ExpandPathReverseInto(path_rt, speed, distance_miles, &edge_rt, &out);
  return out;
}

}  // namespace capefp::tdf
