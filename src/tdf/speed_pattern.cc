#include "src/tdf/speed_pattern.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/tdf/pwl_function.h"
#include "src/util/check.h"

namespace capefp::tdf {

DailySpeedPattern::DailySpeedPattern(std::vector<SpeedPiece> pieces)
    : pieces_(std::move(pieces)) {
  CAPEFP_CHECK(!pieces_.empty());
  CAPEFP_CHECK_EQ(pieces_.front().start_minute, 0.0)
      << "first piece must start at midnight";
  double prev = -1.0;
  max_speed_ = 0.0;
  min_speed_ = pieces_.front().speed_mpm;
  for (const SpeedPiece& p : pieces_) {
    CAPEFP_CHECK_GT(p.start_minute, prev) << "piece starts must increase";
    CAPEFP_CHECK_LT(p.start_minute, kMinutesPerDay);
    CAPEFP_CHECK_GT(p.speed_mpm, 0.0) << "speeds must be positive";
    max_speed_ = std::max(max_speed_, p.speed_mpm);
    min_speed_ = std::min(min_speed_, p.speed_mpm);
    prev = p.start_minute;
  }
}

DailySpeedPattern DailySpeedPattern::Constant(double speed_mpm) {
  return DailySpeedPattern({{0.0, speed_mpm}});
}

double DailySpeedPattern::SpeedAt(double minute_of_day) const {
  CAPEFP_CHECK_GE(minute_of_day, -kTimeEps);
  CAPEFP_CHECK_LT(minute_of_day, kMinutesPerDay + kTimeEps);
  // Last piece whose start is <= minute_of_day (within tolerance).
  double speed = pieces_.front().speed_mpm;
  for (const SpeedPiece& p : pieces_) {
    if (p.start_minute <= minute_of_day + kTimeEps) {
      speed = p.speed_mpm;
    } else {
      break;
    }
  }
  return speed;
}

double DailySpeedPattern::NextBoundaryAfter(double minute_of_day) const {
  for (const SpeedPiece& p : pieces_) {
    if (p.start_minute > minute_of_day + kTimeEps) return p.start_minute;
  }
  return kMinutesPerDay;
}

util::Status DailySpeedPattern::ValidateInvariants() const {
  if (pieces_.empty()) {
    return util::Status::InvalidArgument("daily pattern: no pieces");
  }
  char buf[256];
  if (pieces_.front().start_minute != 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "daily pattern: day not covered from midnight (first piece "
                  "starts at %g)",
                  pieces_.front().start_minute);
    return util::Status::InvalidArgument(buf);
  }
  double lo = 0.0;
  double hi = 0.0;
  double prev = -1.0;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    const SpeedPiece& p = pieces_[i];
    if (!(p.start_minute > prev)) {
      std::snprintf(buf, sizeof(buf),
                    "daily pattern: piece %zu start %g does not increase past "
                    "%g",
                    i, p.start_minute, prev);
      return util::Status::InvalidArgument(buf);
    }
    if (p.start_minute >= kMinutesPerDay) {
      std::snprintf(buf, sizeof(buf),
                    "daily pattern: piece %zu starts at %g, beyond the day "
                    "(%g)",
                    i, p.start_minute, kMinutesPerDay);
      return util::Status::InvalidArgument(buf);
    }
    if (!std::isfinite(p.speed_mpm) || p.speed_mpm <= 0.0) {
      std::snprintf(buf, sizeof(buf),
                    "daily pattern: piece %zu speed %g is not positive", i,
                    p.speed_mpm);
      return util::Status::InvalidArgument(buf);
    }
    lo = i == 0 ? p.speed_mpm : std::min(lo, p.speed_mpm);
    hi = std::max(hi, p.speed_mpm);
    prev = p.start_minute;
  }
  if (lo != min_speed_ || hi != max_speed_) {
    std::snprintf(buf, sizeof(buf),
                  "daily pattern: cached speed range [%g,%g] != actual "
                  "[%g,%g]",
                  min_speed_, max_speed_, lo, hi);
    return util::Status::InvalidArgument(buf);
  }
  return util::Status::Ok();
}

std::string DailySpeedPattern::ToString() const {
  std::string out = "pattern{";
  char buf[256];
  for (size_t i = 0; i < pieces_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%.0f:%.3f mpm]", i == 0 ? "" : ",",
                  pieces_[i].start_minute, pieces_[i].speed_mpm);
    out += buf;
  }
  out += "}";
  return out;
}

CapeCodPattern::CapeCodPattern(std::vector<DailySpeedPattern> per_category)
    : per_category_(std::move(per_category)) {
  CAPEFP_CHECK(!per_category_.empty());
  max_speed_ = per_category_.front().max_speed();
  min_speed_ = per_category_.front().min_speed();
  for (const DailySpeedPattern& p : per_category_) {
    max_speed_ = std::max(max_speed_, p.max_speed());
    min_speed_ = std::min(min_speed_, p.min_speed());
  }
}

util::Status CapeCodPattern::ValidateInvariants() const {
  if (per_category_.empty()) {
    return util::Status::InvalidArgument("CapeCod pattern: no categories");
  }
  char buf[256];
  double lo = 0.0;
  double hi = 0.0;
  for (size_t c = 0; c < per_category_.size(); ++c) {
    const util::Status daily = per_category_[c].ValidateInvariants();
    if (!daily.ok()) {
      std::snprintf(buf, sizeof(buf), "CapeCod pattern: category %zu: %s", c,
                    daily.message().c_str());
      return util::Status::InvalidArgument(buf);
    }
    lo = c == 0 ? per_category_[c].min_speed()
                : std::min(lo, per_category_[c].min_speed());
    hi = std::max(hi, per_category_[c].max_speed());
  }
  if (lo != min_speed_ || hi != max_speed_) {
    std::snprintf(buf, sizeof(buf),
                  "CapeCod pattern: cached speed range [%g,%g] != actual "
                  "[%g,%g]",
                  min_speed_, max_speed_, lo, hi);
    return util::Status::InvalidArgument(buf);
  }
  return util::Status::Ok();
}

CapeCodPattern CapeCodPattern::ConstantSpeed(double speed_mpm) {
  return CapeCodPattern({DailySpeedPattern::Constant(speed_mpm)});
}

const DailySpeedPattern& CapeCodPattern::pattern_for(
    DayCategoryId category) const {
  CAPEFP_CHECK_GE(category, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(category), per_category_.size());
  return per_category_[static_cast<size_t>(category)];
}

Calendar::Calendar(std::vector<DayCategoryId> cycle)
    : cycle_(std::move(cycle)) {
  CAPEFP_CHECK(!cycle_.empty());
}

Calendar Calendar::SingleCategory() { return Calendar({0}); }

Calendar Calendar::StandardWeek(DayCategoryId workday,
                                DayCategoryId nonworkday) {
  return Calendar({workday, workday, workday, workday, workday, nonworkday,
                   nonworkday});
}

DayCategoryId Calendar::CategoryForDay(int64_t day) const {
  const auto n = static_cast<int64_t>(cycle_.size());
  int64_t idx = day % n;
  if (idx < 0) idx += n;
  return cycle_[static_cast<size_t>(idx)];
}

}  // namespace capefp::tdf
