// CapeCod speed patterns (§2.1 of the paper, Definitions 1-3).
//
// A *day-category set* partitions calendar days (e.g. workday vs
// non-workday). A *CapeCod pattern* gives, for every category, a 24-hour
// piecewise-constant speed profile. A *Calendar* maps absolute day indices
// to categories, so speed lookups work for arbitrary absolute times and
// traversals that cross midnight.
#ifndef CAPEFP_TDF_SPEED_PATTERN_H_
#define CAPEFP_TDF_SPEED_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace capefp::tdf {

inline constexpr double kMinutesPerDay = 1440.0;

// Minutes since midnight for hour:minute (e.g. HhMm(7, 30) == 450).
constexpr double HhMm(int hour, int minute) {
  return static_cast<double>(hour) * 60.0 + static_cast<double>(minute);
}

// Converts miles/hour to miles/minute (the paper's working unit).
constexpr double MphToMpm(double mph) { return mph / 60.0; }

// Identifies a day category within a DayCategorySet (e.g. 0 = workday).
using DayCategoryId = int32_t;

// One constant-speed piece of a daily pattern; applies from `start_minute`
// (inclusive) until the next piece's start (exclusive).
struct SpeedPiece {
  double start_minute = 0.0;  // In [0, kMinutesPerDay).
  double speed_mpm = 0.0;     // Miles per minute; must be positive.
};

// Piecewise-constant speed over one 24-hour day.
class DailySpeedPattern {
 public:
  // Requires: at least one piece, first piece starting at minute 0, strictly
  // increasing starts below kMinutesPerDay, all speeds positive.
  explicit DailySpeedPattern(std::vector<SpeedPiece> pieces);

  static DailySpeedPattern Constant(double speed_mpm);

  // Speed in effect at `minute_of_day` in [0, kMinutesPerDay).
  double SpeedAt(double minute_of_day) const;

  // Smallest piece boundary strictly greater than `minute_of_day`;
  // kMinutesPerDay if none (i.e. the next day's start).
  double NextBoundaryAfter(double minute_of_day) const;

  const std::vector<SpeedPiece>& pieces() const { return pieces_; }
  double max_speed() const { return max_speed_; }
  double min_speed() const { return min_speed_; }

  std::string ToString() const;

  // Deep audit of the constructor invariants plus cached-aggregate
  // consistency: full-day coverage (first piece at minute 0, all starts in
  // [0, kMinutesPerDay) and strictly increasing), positive finite speeds,
  // and min/max caches matching the pieces. Returns OK or InvalidArgument
  // with the offending piece index and values.
  util::Status ValidateInvariants() const;

 private:
  std::vector<SpeedPiece> pieces_;
  double max_speed_ = 0.0;
  double min_speed_ = 0.0;
};

// A CapeCod pattern: one daily pattern per day category (Definition 2).
class CapeCodPattern {
 public:
  explicit CapeCodPattern(std::vector<DailySpeedPattern> per_category);

  // Single-category, constant-speed pattern (the "commercial navigation
  // system" assumption of §6).
  static CapeCodPattern ConstantSpeed(double speed_mpm);

  size_t num_categories() const { return per_category_.size(); }
  const DailySpeedPattern& pattern_for(DayCategoryId category) const;

  double max_speed() const { return max_speed_; }
  double min_speed() const { return min_speed_; }

  // Validates every per-category daily pattern and the aggregate speed
  // caches. Returns OK or InvalidArgument naming the category at fault.
  util::Status ValidateInvariants() const;

 private:
  std::vector<DailySpeedPattern> per_category_;
  double max_speed_ = 0.0;
  double min_speed_ = 0.0;
};

// Maps absolute day index (floor(time / kMinutesPerDay)) to a day category,
// repeating a fixed cycle (typically a 7-day week).
class Calendar {
 public:
  // `cycle` lists the category of day 0, 1, ... and repeats. Must be
  // non-empty; entries must be valid for the paired CapeCodPattern.
  explicit Calendar(std::vector<DayCategoryId> cycle);

  // Every day has category 0.
  static Calendar SingleCategory();

  // Day 0 is a Monday: five `workday`s then two `nonworkday`s.
  static Calendar StandardWeek(DayCategoryId workday,
                               DayCategoryId nonworkday);

  DayCategoryId CategoryForDay(int64_t day) const;

  const std::vector<DayCategoryId>& cycle() const { return cycle_; }

 private:
  std::vector<DayCategoryId> cycle_;
};

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_SPEED_PATTERN_H_
