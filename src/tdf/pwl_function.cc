#include "src/tdf/pwl_function.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/tdf/pwl_cursor.h"
#include "src/util/check.h"

namespace capefp::tdf {

namespace {

// Tolerance used to decide whether an interior breakpoint is collinear with
// its neighbours and can be dropped.
constexpr double kCollinearEps = 1e-9;

void CheckSameDomain(const PwlFunction& f, const PwlFunction& g) {
  CAPEFP_CHECK(std::fabs(f.domain_lo() - g.domain_lo()) <= kTimeEps &&
               std::fabs(f.domain_hi() - g.domain_hi()) <= kTimeEps)
      << "domain mismatch: [" << f.domain_lo() << "," << f.domain_hi()
      << "] vs [" << g.domain_lo() << "," << g.domain_hi() << "]";
}

// Sorted union of breakpoint x values of both functions, clamped to f's
// domain, deduplicated within kTimeEps. Both inputs are sorted, so a merge
// produces the same sequence the previous concatenate-sort-dedup did.
void UnionXsInto(const PwlFunction& f, const PwlFunction& g,
                 std::vector<double>* out) {
  const BreakpointVec& fb = f.breakpoints();
  const BreakpointVec& gb = g.breakpoints();
  const double lo = f.domain_lo();
  const double hi = f.domain_hi();
  out->clear();
  out->reserve(fb.size() + gb.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  size_t i = 0, j = 0;
  while (i < fb.size() || j < gb.size()) {
    const double fx = i < fb.size() ? fb[i].x : kInf;
    const double gx = j < gb.size() ? std::clamp(gb[j].x, lo, hi) : kInf;
    double x;
    if (fx <= gx) {
      x = fx;
      ++i;
    } else {
      x = gx;
      ++j;
    }
    if (out->empty() || x > out->back() + kTimeEps) out->push_back(x);
  }
  // Keep exact domain endpoints.
  out->front() = lo;
  out->back() = hi;
}

}  // namespace

// Normalizes in place (no second allocation — construction is the hottest
// allocation site of the search inner loop): `kept` is the length of the
// normalized prefix, always <= the read cursor, so reads stay ahead of
// writes.
void PwlFunction::NormalizeInPlace() {
  CAPEFP_CHECK(!points_.empty());
  size_t kept = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const Breakpoint p = points_[i];
    if (kept > 0) {
      CAPEFP_CHECK_GT(p.x, points_[kept - 1].x)
          << "breakpoints must strictly increase";
    }
    // Drop the middle point of three (near-)collinear ones.
    while (kept >= 2) {
      const Breakpoint& a = points_[kept - 2];
      const Breakpoint& b = points_[kept - 1];
      const double t = (b.x - a.x) / (p.x - a.x);
      const double interp = a.y + t * (p.y - a.y);
      if (std::fabs(b.y - interp) <= kCollinearEps) {
        --kept;
      } else {
        break;
      }
    }
    points_[kept++] = p;
  }
  points_.resize(kept);
  CAPEFP_DCHECK_OK(ValidateInvariants());
}

PwlFunction::PwlFunction(const std::vector<Breakpoint>& breakpoints)
    : points_(breakpoints) {
  NormalizeInPlace();
}

PwlFunction PwlFunction::UnsafeFromBreakpointsForTest(
    std::vector<Breakpoint> breakpoints) {
  return PwlFunction(UnsafeTag{}, breakpoints);
}

util::Status PwlFunction::ValidateInvariants(Kind kind) const {
  if (points_.empty()) {
    return util::Status::InvalidArgument("pwl: no breakpoints");
  }
  char buf[256];
  for (size_t i = 0; i < points_.size(); ++i) {
    const Breakpoint& p = points_[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      std::snprintf(buf, sizeof(buf),
                    "pwl: breakpoint %zu not finite: (%g,%g)", i, p.x, p.y);
      return util::Status::InvalidArgument(buf);
    }
    if (i == 0) continue;
    const Breakpoint& q = points_[i - 1];
    if (p.x <= q.x) {
      std::snprintf(buf, sizeof(buf),
                    "pwl: abscissae not strictly increasing at breakpoint "
                    "%zu: x[%zu]=%.12g, x[%zu]=%.12g",
                    i, i - 1, q.x, i, p.x);
      return util::Status::InvalidArgument(buf);
    }
    // FIFO tolerances match the composition code (travel_time.cc), which
    // admits up to 1e-6 minutes of accumulated arithmetic slack.
    if (kind == Kind::kForwardTravelTime &&
        p.x + p.y < q.x + q.y - 1e-6) {
      std::snprintf(buf, sizeof(buf),
                    "pwl: FIFO violated (slope < -1) on piece %zu: "
                    "arrival drops from %.12g to %.12g",
                    i - 1, q.x + q.y, p.x + p.y);
      return util::Status::InvalidArgument(buf);
    }
    if (kind == Kind::kReverseTravelTime &&
        p.x - p.y < q.x - q.y - 1e-6) {
      std::snprintf(buf, sizeof(buf),
                    "pwl: reverse FIFO violated (slope > +1) on piece %zu: "
                    "departure drops from %.12g to %.12g",
                    i - 1, q.x - q.y, p.x - p.y);
      return util::Status::InvalidArgument(buf);
    }
  }
  return util::Status::Ok();
}

PwlFunction PwlFunction::Constant(double lo, double hi, double value) {
  CAPEFP_CHECK_LE(lo, hi);
  if (lo == hi) return PwlFunction({{lo, value}});
  return PwlFunction({{lo, value}, {hi, value}});
}

double PwlFunction::Value(double x) const {
  CAPEFP_CHECK_GE(x, domain_lo() - kTimeEps) << "x below domain";
  CAPEFP_CHECK_LE(x, domain_hi() + kTimeEps) << "x above domain";
  const double cx = std::clamp(x, domain_lo(), domain_hi());
  // First breakpoint with bp.x > cx.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), cx,
      [](double value, const Breakpoint& bp) { return value < bp.x; });
  if (it == points_.begin()) return points_.front().y;
  if (it == points_.end()) return points_.back().y;
  const Breakpoint& a = *(it - 1);
  const Breakpoint& b = *it;
  const double t = (cx - a.x) / (b.x - a.x);
  return a.y + t * (b.y - a.y);
}

double PwlFunction::MinValue() const {
  double m = points_.front().y;
  for (const Breakpoint& p : points_) m = std::min(m, p.y);
  return m;
}

double PwlFunction::MaxValue() const {
  double m = points_.front().y;
  for (const Breakpoint& p : points_) m = std::max(m, p.y);
  return m;
}

double PwlFunction::ArgMin() const {
  double best_x = points_.front().x;
  double best_y = points_.front().y;
  for (const Breakpoint& p : points_) {
    if (p.y < best_y - kTimeEps) {
      best_y = p.y;
      best_x = p.x;
    }
  }
  return best_x;
}

LinearPiece PwlFunction::PieceAt(double x) const {
  CAPEFP_CHECK_GE(x, domain_lo() - kTimeEps);
  CAPEFP_CHECK_LE(x, domain_hi() + kTimeEps);
  if (points_.size() == 1) return {0.0, points_.front().y};
  const double cx = std::clamp(x, domain_lo(), domain_hi());
  auto it = std::upper_bound(
      points_.begin(), points_.end(), cx,
      [](double value, const Breakpoint& bp) { return value < bp.x; });
  size_t idx;  // Index of the piece's left endpoint.
  if (it == points_.end()) {
    idx = points_.size() - 2;
  } else if (it == points_.begin()) {
    idx = 0;
  } else {
    idx = static_cast<size_t>(it - points_.begin()) - 1;
  }
  const Breakpoint& a = points_[idx];
  const Breakpoint& b = points_[idx + 1];
  const double slope = (b.y - a.y) / (b.x - a.x);
  return {slope, a.y - slope * a.x};
}

void PwlFunction::ShiftedInto(double dy, PwlFunction* out) const {
  CAPEFP_CHECK(out != this);
  out->points_ = points_;
  for (Breakpoint& p : out->points_) p.y += dy;
  out->NormalizeInPlace();
}

PwlFunction PwlFunction::Shifted(double dy) const {
  PwlFunction out;
  ShiftedInto(dy, &out);
  return out;
}

void PwlFunction::ShiftInPlace(double dy) {
  for (Breakpoint& p : points_) p.y += dy;
  NormalizeInPlace();
}

void PwlFunction::RestrictedInto(double lo, double hi,
                                 PwlFunction* out) const {
  CAPEFP_CHECK(out != this);
  CAPEFP_CHECK_GE(lo, domain_lo() - kTimeEps);
  CAPEFP_CHECK_LE(hi, domain_hi() + kTimeEps);
  CAPEFP_CHECK_LE(lo, hi + kTimeEps);
  const double clo = std::clamp(lo, domain_lo(), domain_hi());
  const double chi = std::clamp(hi, domain_lo(), domain_hi());
  out->StartRebuild(points_.size() + 2);
  out->AppendBreakpoint(clo, Value(clo));
  for (const Breakpoint& p : points_) {
    if (p.x > clo + kTimeEps && p.x < chi - kTimeEps) {
      out->AppendBreakpoint(p.x, p.y);
    }
  }
  if (chi > clo + kTimeEps) out->AppendBreakpoint(chi, Value(chi));
  out->FinishRebuild();
}

PwlFunction PwlFunction::Restricted(double lo, double hi) const {
  PwlFunction out;
  RestrictedInto(lo, hi, &out);
  return out;
}

void MergedGridInto(const PwlFunction& f, const PwlFunction& g,
                    std::vector<double>* out, PwlArena* arena) {
  CheckSameDomain(f, g);
  ScratchDoubles base_scratch(arena);
  std::vector<double>& base = *base_scratch;
  UnionXsInto(f, g, &base);
  out->clear();
  out->reserve(base.size() * 2);
  PwlCursor cf(f);
  PwlCursor cg(g);
  for (size_t i = 0; i + 1 < base.size(); ++i) {
    const double lo = base[i];
    const double hi = base[i + 1];
    out->push_back(lo);
    const double mid = 0.5 * (lo + hi);
    const LinearPiece pf = cf.Piece(mid);
    const LinearPiece pg = cg.Piece(mid);
    const double dslope = pf.slope - pg.slope;
    if (std::fabs(dslope) > 1e-15) {
      const double cross = (pg.intercept - pf.intercept) / dslope;
      if (cross > lo + kTimeEps && cross < hi - kTimeEps) {
        out->push_back(cross);
      }
    }
  }
  out->push_back(base.back());
}

std::vector<double> MergedGrid(const PwlFunction& f, const PwlFunction& g) {
  std::vector<double> out;
  MergedGridInto(f, g, &out);
  return out;
}

void PwlFunction::SumInto(const PwlFunction& f, const PwlFunction& g,
                          PwlFunction* out) {
  CAPEFP_CHECK(out != &f && out != &g);
  CheckSameDomain(f, g);
  ScratchDoubles xs_scratch(out->arena());
  std::vector<double>& xs = *xs_scratch;
  UnionXsInto(f, g, &xs);
  out->StartRebuild(xs.size());
  PwlCursor cf(f);
  PwlCursor cg(g);
  for (double x : xs) out->AppendBreakpoint(x, cf.Value(x) + cg.Value(x));
  out->FinishRebuild();
}

PwlFunction PwlFunction::Sum(const PwlFunction& f, const PwlFunction& g) {
  PwlFunction out;
  SumInto(f, g, &out);
  return out;
}

void PwlFunction::SumManyInto(std::span<const PwlFunction> fs,
                              PwlFunction* out) {
  CAPEFP_CHECK(!fs.empty());
  for (const PwlFunction& f : fs) {
    CAPEFP_CHECK(out != &f);
    CheckSameDomain(fs.front(), f);
  }
  const double lo = fs.front().domain_lo();
  const double hi = fs.front().domain_hi();
  ScratchDoubles xs_scratch(out->arena());
  std::vector<double>& xs = *xs_scratch;
  xs.clear();
  for (const PwlFunction& f : fs) {
    for (const Breakpoint& p : f.breakpoints()) {
      xs.push_back(std::clamp(p.x, lo, hi));
    }
  }
  std::sort(xs.begin(), xs.end());
  size_t kept = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (kept == 0 || xs[i] > xs[kept - 1] + kTimeEps) xs[kept++] = xs[i];
  }
  xs.resize(kept);
  xs.front() = lo;
  xs.back() = hi;
  std::vector<PwlCursor> cursors;
  cursors.reserve(fs.size());
  for (const PwlFunction& f : fs) cursors.emplace_back(f);
  out->StartRebuild(xs.size());
  for (double x : xs) {
    double y = 0.0;
    for (PwlCursor& c : cursors) y += c.Value(x);
    out->AppendBreakpoint(x, y);
  }
  out->FinishRebuild();
}

PwlFunction PwlFunction::SumMany(std::span<const PwlFunction> fs) {
  PwlFunction out;
  SumManyInto(fs, &out);
  return out;
}

void PwlFunction::LowerEnvelopeInto(const PwlFunction& f, const PwlFunction& g,
                                    PwlFunction* out) {
  CAPEFP_CHECK(out != &f && out != &g);
  ScratchDoubles grid_scratch(out->arena());
  std::vector<double>& grid = *grid_scratch;
  MergedGridInto(f, g, &grid, out->arena());
  out->StartRebuild(grid.size());
  PwlCursor cf(f);
  PwlCursor cg(g);
  for (double x : grid) {
    out->AppendBreakpoint(x, std::min(cf.Value(x), cg.Value(x)));
  }
  out->FinishRebuild();
}

PwlFunction PwlFunction::Min(const PwlFunction& f, const PwlFunction& g) {
  PwlFunction out;
  LowerEnvelopeInto(f, g, &out);
  return out;
}

bool PwlFunction::DominatesOrEqual(const PwlFunction& f, const PwlFunction& g,
                                   double tol, PwlArena* arena) {
  CheckSameDomain(f, g);
  ScratchDoubles xs_scratch(arena);
  std::vector<double>& xs = *xs_scratch;
  UnionXsInto(f, g, &xs);
  PwlCursor cf(f);
  PwlCursor cg(g);
  for (double x : xs) {
    if (cf.Value(x) < cg.Value(x) - tol) return false;
  }
  return true;
}

bool PwlFunction::ApproxEqual(const PwlFunction& f, const PwlFunction& g,
                              double tol) {
  if (std::fabs(f.domain_lo() - g.domain_lo()) > tol) return false;
  if (std::fabs(f.domain_hi() - g.domain_hi()) > tol) return false;
  std::vector<double> xs;
  UnionXsInto(f, g, &xs);
  for (double x : xs) {
    if (std::fabs(f.Value(x) - g.Value(x)) > tol) return false;
  }
  return true;
}

std::string PwlFunction::ToString() const {
  std::string out = "pwl{";
  char buf[256];
  for (size_t i = 0; i < points_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s(%.6g,%.6g)", i == 0 ? "" : ",",
                  points_[i].x, points_[i].y);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace capefp::tdf
