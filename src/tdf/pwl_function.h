// Continuous piecewise-linear functions of time.
//
// This is the algebra of §4 of the paper: travel time along any path is a
// continuous piecewise-linear (PWL) function of the leaving time (§4.1).
// IntAllFastestPaths stores one PwlFunction per queued path and needs
// evaluation, minima, pointwise sums, lower envelopes (for the lower border
// of §4.6), and composition with edge functions (§4.4).
//
// Conventions: the x axis is time in minutes from a reference midnight, the
// y axis is travel time in minutes. Functions are defined on a closed
// interval [domain_lo, domain_hi] and represented by their breakpoints;
// between consecutive breakpoints the function is linear.
//
// Storage is a small-buffer BreakpointVec, optionally bound to a PwlArena
// that recycles spilled blocks across operations (see pwl_arena.h for the
// memory model and the copy/move binding rules). The hot operations come in
// two forms: an allocating form returning a fresh function, and a *Into
// form writing into a caller-owned destination. The *Into form is the
// single implementation; the allocating form is an exact wrapper, so the
// two produce breakpoint-for-breakpoint identical results.
#ifndef CAPEFP_TDF_PWL_FUNCTION_H_
#define CAPEFP_TDF_PWL_FUNCTION_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/tdf/pwl_arena.h"
#include "src/util/status.h"

namespace capefp::tdf {

// Absolute tolerance for time comparisons, in minutes (~60 ns).
inline constexpr double kTimeEps = 1e-9;

// A linear piece y = slope * x + intercept.
struct LinearPiece {
  double slope = 0.0;
  double intercept = 0.0;

  double Eval(double x) const { return slope * x + intercept; }
};

// Continuous piecewise-linear function on a closed interval.
//
// Immutable through the const interface. Construction (and FinishRebuild)
// normalizes the representation: breakpoints are strictly increasing in x
// and collinear interior breakpoints are merged, so NumPieces() is minimal.
class PwlFunction {
 public:
  // Constructs from breakpoints. Requires at least one breakpoint and
  // strictly increasing x values; a single breakpoint denotes a function on
  // the degenerate domain [x, x].
  explicit PwlFunction(const std::vector<Breakpoint>& breakpoints);

  // The degenerate zero function on [0, 0]; a placeholder to rebuild into.
  PwlFunction() : PwlFunction(static_cast<PwlArena*>(nullptr)) {}

  // Same placeholder, with breakpoint storage bound to `arena` (may be
  // null for plain heap). See pwl_arena.h for binding semantics under
  // copy/move.
  explicit PwlFunction(PwlArena* arena) : points_(arena) {
    points_.push_back({0.0, 0.0});
  }

  // The constant function `value` on [lo, hi]. Requires lo <= hi.
  static PwlFunction Constant(double lo, double hi, double value);

  // Domain endpoints.
  double domain_lo() const { return points_.front().x; }
  double domain_hi() const { return points_.back().x; }

  const BreakpointVec& breakpoints() const { return points_; }
  size_t NumPieces() const {
    return points_.size() <= 1 ? 0 : points_.size() - 1;
  }

  // Evaluates the function at `x`. `x` must lie within the domain (a
  // kTimeEps slack is tolerated and clamped).
  double Value(double x) const;

  // Minimum / maximum value over the whole domain.
  double MinValue() const;
  double MaxValue() const;

  // Leftmost x at which MinValue() is attained.
  double ArgMin() const;

  // The linear piece covering `x` (for a breakpoint x, the piece to its
  // right, except at domain_hi where it is the piece to the left).
  LinearPiece PieceAt(double x) const;

  // f + c. The Into form writes into `out` (must not alias this).
  PwlFunction Shifted(double dy) const;
  void ShiftedInto(double dy, PwlFunction* out) const;
  void ShiftInPlace(double dy);

  // Restriction to [lo, hi] ⊆ domain (endpoints get interpolated
  // breakpoints). The Into form writes into `out` (must not alias this).
  PwlFunction Restricted(double lo, double hi) const;
  void RestrictedInto(double lo, double hi, PwlFunction* out) const;

  // Pointwise sum. Domains must coincide (within kTimeEps). `out` must not
  // alias either operand.
  static PwlFunction Sum(const PwlFunction& f, const PwlFunction& g);
  static void SumInto(const PwlFunction& f, const PwlFunction& g,
                      PwlFunction* out);

  // n-way pointwise sum over `fs` (at least one function, coinciding
  // domains). One shared grid instead of a chain of pairwise Sums, so the
  // cost is O(total breakpoints · (log + n)) rather than quadratic in n.
  // `out` must not alias any element of `fs`.
  static PwlFunction SumMany(std::span<const PwlFunction> fs);
  static void SumManyInto(std::span<const PwlFunction> fs, PwlFunction* out);

  // Pointwise minimum (lower envelope). Domains must coincide. `out` must
  // not alias either operand.
  static PwlFunction Min(const PwlFunction& f, const PwlFunction& g);
  static void LowerEnvelopeInto(const PwlFunction& f, const PwlFunction& g,
                                PwlFunction* out);

  // True if f(x) >= g(x) - tol for every x in the common domain. Domains
  // must coincide. `arena` (optional) supplies the comparison grid scratch.
  static bool DominatesOrEqual(const PwlFunction& f, const PwlFunction& g,
                               double tol = kTimeEps,
                               PwlArena* arena = nullptr);

  // True if the functions have (approximately) equal domains and values.
  static bool ApproxEqual(const PwlFunction& f, const PwlFunction& g,
                          double tol = 1e-7);

  // Streaming reconstruction, used by the *Into kernels (travel_time.cc):
  // StartRebuild clears the breakpoint storage (keeping its capacity and
  // arena binding), AppendBreakpoint pushes breakpoints in strictly
  // increasing x order (kTimeEps-deduplicated by the caller), and
  // FinishRebuild renormalizes exactly like the breakpoint constructor.
  // Between Start and Finish the object is not a valid function.
  void StartRebuild(size_t reserve_hint = 0) {
    points_.clear();
    if (reserve_hint > 0) points_.reserve(reserve_hint);
  }
  void AppendBreakpoint(double x, double y) { points_.push_back({x, y}); }
  void FinishRebuild() { NormalizeInPlace(); }

  // The arena this function's storage is bound to (null when unbound).
  PwlArena* arena() const { return points_.arena(); }

  // "pwl{(x0,y0),(x1,y1),...}" for diagnostics.
  std::string ToString() const;

  // What a travel-time function must additionally satisfy, selected by the
  // time axis it is anchored to (see ValidateInvariants()).
  enum class Kind {
    // Structural checks only.
    kGeneric,
    // τ(l) over leaving times: FIFO means the arrival l + τ(l) is
    // non-decreasing, i.e. every slope is >= -1 (§4.1, Eq. 1).
    kForwardTravelTime,
    // ρ(a) over arrival times: the implied departure a − ρ(a) is
    // non-decreasing, i.e. every slope is <= +1.
    kReverseTravelTime,
  };

  // Deep structural audit: at least one breakpoint, finite coordinates,
  // strictly increasing abscissae (no duplicate x), and — for the
  // travel-time kinds — the FIFO monotonicity above within a small
  // tolerance. Returns OK or an InvalidArgument status naming the first
  // violated invariant with its breakpoint index and values.
  util::Status ValidateInvariants(Kind kind = Kind::kGeneric) const;

  // Test-only escape hatch: builds a function from `breakpoints` verbatim,
  // skipping constructor normalization and its CHECKs, so tests can hand
  // ValidateInvariants() deliberately corrupt breakpoint lists.
  static PwlFunction UnsafeFromBreakpointsForTest(
      std::vector<Breakpoint> breakpoints);

 private:
  struct UnsafeTag {};
  PwlFunction(UnsafeTag, const std::vector<Breakpoint>& breakpoints)
      : points_(breakpoints) {}

  // Constructor normalization over the current points_ contents: CHECKs
  // strictly increasing x, merges collinear interior breakpoints in place.
  void NormalizeInPlace();

  BreakpointVec points_;
};

// Merged, sorted union of the two functions' breakpoint x values plus all
// interior intersection points of their pieces. Evaluating both functions
// on this grid suffices to compute Sum/Min exactly. Exposed for the
// annotated lower border (core/lower_border). The Into form reuses `out`
// and draws its internal scratch from `arena` (optional).
std::vector<double> MergedGrid(const PwlFunction& f, const PwlFunction& g);
void MergedGridInto(const PwlFunction& f, const PwlFunction& g,
                    std::vector<double>* out, PwlArena* arena = nullptr);

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_PWL_FUNCTION_H_
