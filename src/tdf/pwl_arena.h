// Memory model of the PWL kernel: small-buffer breakpoint storage and the
// per-query arena that recycles it (DESIGN.md §8).
//
// The §4.4 combination step creates one travel-time function per edge
// expansion; measured on the §6.2 commute workload ~99% of those functions
// have at most 8 breakpoints (see the histogram in DESIGN.md §8), so
// BreakpointVec keeps up to kInlineBreakpoints breakpoints inline and only
// functions beyond that touch heap blocks. A BreakpointVec bound to a
// PwlArena draws those blocks from the arena's per-size-class freelist, so
// a warm search loop reaches a steady state with zero heap allocations per
// expansion; an unbound vec uses plain new[]/delete[].
//
// Ownership and lifetime rules:
//  - An arena is single-threaded state: one arena per worker, never shared
//    between concurrently running searches (mirrors ProfileSearch::Scratch).
//  - Containers holding arena-bound functions must be declared *after* the
//    arena (destroyed before it): releasing a block requires a live arena.
//  - Copying never inherits a binding: a copy-constructed function owns
//    plain heap (or inline) storage, so results copied out of a search
//    (borders, label functions) are safe past the scratch's lifetime.
//    Copy-assignment keeps the destination's binding and only copies
//    contents. Moves carry the binding with the storage; a moved-from vec
//    is empty but keeps its own binding, so scratch objects stay reusable.
//  - Buffer reuse never changes arithmetic: a search using an arena is
//    bit-identical to one without (the PR-2 determinism contract).
#ifndef CAPEFP_TDF_PWL_ARENA_H_
#define CAPEFP_TDF_PWL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/check.h"

namespace capefp::tdf {

// A breakpoint (x, f(x)) of a piecewise-linear function.
struct Breakpoint {
  double x = 0.0;
  double y = 0.0;
};

// Recycles breakpoint blocks and scratch double vectors across the many
// PWL operations of one query (and across queries run on one Scratch).
// Not thread-safe; see the file comment for the ownership rules.
class PwlArena {
 public:
  struct Stats {
    // Fresh heap allocations made on behalf of clients: new blocks, new
    // scratch vectors, and scratch-vector growth observed at release. A
    // warm arena runs at zero; this is the "allocations per expansion"
    // metric (capefp.tdf.arena.spills).
    uint64_t spills = 0;
    // Block requests served from a freelist.
    uint64_t block_reuses = 0;
    // Bytes currently lent out to live containers.
    uint64_t in_use_bytes = 0;
    // Maximum of in_use_bytes, sampled at allocate/release boundaries.
    uint64_t high_water_bytes = 0;
    // Total heap owned by the arena (monotone until destruction).
    uint64_t footprint_bytes = 0;
  };

  PwlArena() = default;
  PwlArena(const PwlArena&) = delete;
  PwlArena& operator=(const PwlArena&) = delete;

  // A block of at least `min_capacity` breakpoints (actual capacity in
  // `*capacity_out`): from the matching size-class freelist when possible,
  // freshly allocated (counted as a spill) otherwise.
  Breakpoint* AllocateBlock(size_t min_capacity, size_t* capacity_out) {
    const size_t capacity = RoundUpCapacity(min_capacity);
    *capacity_out = capacity;
    const size_t cls = ClassIndex(capacity);
    const uint64_t bytes = capacity * sizeof(Breakpoint);
    Breakpoint* block;
    if (cls < free_blocks_.size() && !free_blocks_[cls].empty()) {
      block = free_blocks_[cls].back();
      free_blocks_[cls].pop_back();
      ++stats_.block_reuses;
    } else {
      owned_blocks_.emplace_back(new Breakpoint[capacity]);
      block = owned_blocks_.back().get();
      ++stats_.spills;
      stats_.footprint_bytes += bytes;
    }
    stats_.in_use_bytes += bytes;
    if (stats_.in_use_bytes > stats_.high_water_bytes) {
      stats_.high_water_bytes = stats_.in_use_bytes;
    }
    return block;
  }

  // Returns a block obtained from AllocateBlock (with the capacity it
  // reported) to its freelist.
  void ReleaseBlock(Breakpoint* block, size_t capacity) {
    const size_t cls = ClassIndex(capacity);
    if (cls >= free_blocks_.size()) free_blocks_.resize(cls + 1);
    free_blocks_[cls].push_back(block);
    stats_.in_use_bytes -= capacity * sizeof(Breakpoint);
  }

  // Borrows a cleared scratch vector (pair with ReleaseDoubles; prefer the
  // ScratchDoubles RAII wrapper below). `*capacity_out` records the
  // capacity at acquire so growth can be detected on release.
  std::vector<double>* AcquireDoubles(size_t* capacity_out) {
    std::vector<double>* v;
    if (!free_doubles_.empty()) {
      v = free_doubles_.back();
      free_doubles_.pop_back();
    } else {
      owned_doubles_.push_back(std::make_unique<std::vector<double>>());
      v = owned_doubles_.back().get();
      ++stats_.spills;
    }
    *capacity_out = v->capacity();
    stats_.in_use_bytes += v->capacity() * sizeof(double);
    if (stats_.in_use_bytes > stats_.high_water_bytes) {
      stats_.high_water_bytes = stats_.in_use_bytes;
    }
    return v;
  }

  void ReleaseDoubles(std::vector<double>* v, size_t capacity_at_acquire) {
    if (v->capacity() > capacity_at_acquire) {
      // The borrower grew the vector: at least one heap reallocation
      // happened mid-borrow. Coarse (multiple reallocations count once),
      // but any growth keeps the steady-state metric honest at nonzero.
      ++stats_.spills;
      stats_.footprint_bytes +=
          (v->capacity() - capacity_at_acquire) * sizeof(double);
    }
    stats_.in_use_bytes -= capacity_at_acquire * sizeof(double);
    v->clear();
    free_doubles_.push_back(v);
  }

  const Stats& stats() const { return stats_; }

 private:
  // Smallest heap block; the first spill out of the inline buffer (8
  // breakpoints) doubles into this class.
  static constexpr size_t kMinBlockCapacity = 16;

  static size_t RoundUpCapacity(size_t min_capacity) {
    size_t capacity = kMinBlockCapacity;
    while (capacity < min_capacity) capacity *= 2;
    return capacity;
  }

  static size_t ClassIndex(size_t capacity) {
    size_t cls = 0;
    for (size_t c = kMinBlockCapacity; c < capacity; c *= 2) ++cls;
    return cls;
  }

  Stats stats_;
  std::vector<std::vector<Breakpoint*>> free_blocks_;
  std::vector<std::unique_ptr<Breakpoint[]>> owned_blocks_;
  std::vector<std::vector<double>*> free_doubles_;
  std::vector<std::unique_ptr<std::vector<double>>> owned_doubles_;
};

// RAII borrow of a scratch double vector: from `arena`'s pool when
// non-null, a plain local vector otherwise (so the same kernel code serves
// both the arena-backed hot path and the allocating wrappers).
class ScratchDoubles {
 public:
  explicit ScratchDoubles(PwlArena* arena) : arena_(arena) {
    if (arena_ != nullptr) {
      borrowed_ = arena_->AcquireDoubles(&acquired_capacity_);
    }
  }
  ~ScratchDoubles() {
    if (arena_ != nullptr) {
      arena_->ReleaseDoubles(borrowed_, acquired_capacity_);
    }
  }
  ScratchDoubles(const ScratchDoubles&) = delete;
  ScratchDoubles& operator=(const ScratchDoubles&) = delete;

  std::vector<double>& get() { return arena_ != nullptr ? *borrowed_ : local_; }
  std::vector<double>& operator*() { return get(); }

 private:
  PwlArena* arena_;
  std::vector<double>* borrowed_ = nullptr;
  size_t acquired_capacity_ = 0;
  std::vector<double> local_;
};

// Breakpoint storage with an inline small-buffer and optional arena-backed
// heap spill. Interface mirrors the std::vector subset the PWL kernel
// uses; iterators are raw pointers. See the file comment for copy/move and
// binding semantics.
class BreakpointVec {
 public:
  // Covers ~99% of the label functions on the §6.2 workload (DESIGN.md §8).
  static constexpr size_t kInlineBreakpoints = 8;

  BreakpointVec() : BreakpointVec(static_cast<PwlArena*>(nullptr)) {}
  explicit BreakpointVec(PwlArena* arena)
      : data_(inline_),
        size_(0),
        capacity_(kInlineBreakpoints),
        arena_(arena) {}
  explicit BreakpointVec(const std::vector<Breakpoint>& points)
      : BreakpointVec() {
    assign(points.data(), points.data() + points.size());
  }

  BreakpointVec(const BreakpointVec& other) : BreakpointVec() {
    assign(other.data_, other.data_ + other.size_);
  }

  // Keeps this vec's arena binding; copies contents only.
  BreakpointVec& operator=(const BreakpointVec& other) {
    if (this != &other) assign(other.data_, other.data_ + other.size_);
    return *this;
  }

  BreakpointVec(BreakpointVec&& other) noexcept : arena_(other.arena_) {
    StealFrom(&other);
  }

  // Takes the source's storage *and* binding; the source is left empty
  // (inline) but keeps its own binding, so scratch objects stay reusable
  // after being moved from.
  BreakpointVec& operator=(BreakpointVec&& other) noexcept {
    if (this == &other) return *this;
    ReleaseHeap();
    arena_ = other.arena_;
    StealFrom(&other);
    return *this;
  }

  ~BreakpointVec() { ReleaseHeap(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_; }
  PwlArena* arena() const { return arena_; }

  Breakpoint* begin() { return data_; }
  Breakpoint* end() { return data_ + size_; }
  const Breakpoint* begin() const { return data_; }
  const Breakpoint* end() const { return data_ + size_; }
  const Breakpoint* data() const { return data_; }

  Breakpoint& operator[](size_t i) { return data_[i]; }
  const Breakpoint& operator[](size_t i) const { return data_[i]; }
  Breakpoint& front() { return data_[0]; }
  const Breakpoint& front() const { return data_[0]; }
  Breakpoint& back() { return data_[size_ - 1]; }
  const Breakpoint& back() const { return data_[size_ - 1]; }

  void reserve(size_t min_capacity) {
    if (min_capacity > capacity_) Grow(min_capacity);
  }

  // Keeps the current storage (inline or block) for reuse.
  void clear() { size_ = 0; }

  void push_back(const Breakpoint& p) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = p;
  }

  // Shrink-only (the normalization pass truncates in place).
  void resize(size_t n) {
    CAPEFP_DCHECK_LE(n, static_cast<size_t>(size_));
    size_ = static_cast<uint32_t>(n);
  }

  void assign(const Breakpoint* first, const Breakpoint* last) {
    const size_t n = static_cast<size_t>(last - first);
    if (n > capacity_) {
      // Old contents are dead; release before allocating so an arena can
      // hand back a (larger) recycled block without copying.
      ReleaseHeap();
      Grow(n);
    }
    for (size_t i = 0; i < n; ++i) data_[i] = first[i];
    size_ = static_cast<uint32_t>(n);
  }

 private:
  void StealFrom(BreakpointVec* other) noexcept {
    if (other->data_ == other->inline_) {
      data_ = inline_;
      capacity_ = kInlineBreakpoints;
      size_ = other->size_;
      for (uint32_t i = 0; i < size_; ++i) inline_[i] = other->inline_[i];
    } else {
      data_ = other->data_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->data_ = other->inline_;
      other->capacity_ = kInlineBreakpoints;
    }
    other->size_ = 0;
  }

  void Grow(size_t min_capacity) {
    size_t new_capacity;
    Breakpoint* new_data;
    const size_t want = std::max(min_capacity, 2 * static_cast<size_t>(capacity_));
    if (arena_ != nullptr) {
      new_data = arena_->AllocateBlock(want, &new_capacity);
    } else {
      new_capacity = want;
      new_data = new Breakpoint[new_capacity];
    }
    for (uint32_t i = 0; i < size_; ++i) new_data[i] = data_[i];
    ReleaseHeap();
    data_ = new_data;
    capacity_ = static_cast<uint32_t>(new_capacity);
  }

  void ReleaseHeap() {
    if (data_ == inline_) return;
    if (arena_ != nullptr) {
      arena_->ReleaseBlock(data_, capacity_);
    } else {
      delete[] data_;
    }
    data_ = inline_;
    capacity_ = kInlineBreakpoints;
  }

  Breakpoint* data_;
  uint32_t size_;
  uint32_t capacity_;
  PwlArena* arena_;
  Breakpoint inline_[kInlineBreakpoints];
};

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_PWL_ARENA_H_
