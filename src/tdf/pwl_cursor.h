// Internal to the PWL kernel (pwl_function.cc, travel_time.cc).
#ifndef CAPEFP_TDF_PWL_CURSOR_H_
#define CAPEFP_TDF_PWL_CURSOR_H_

#include <algorithm>
#include <cstddef>

#include "src/tdf/pwl_function.h"

namespace capefp::tdf {

// Incremental segment finder over one function for (nearly) sorted query
// sequences. Replicates PwlFunction::Value / PieceAt bit for bit — the same
// clamp, the same upper_bound segment selection (found by walking the hint
// index), and the same interpolation arithmetic — in amortized O(1) per
// query instead of O(log n). A rare backward correction keeps it exact even
// when FIFO slack makes a query sequence dip by up to ~1e-6.
struct PwlCursor {
  const Breakpoint* p;
  size_t n;
  double lo, hi;
  size_t j = 0;  // Maintained as: first index with p[j].x > clamped query.

  explicit PwlCursor(const PwlFunction& f)
      : p(f.breakpoints().data()),
        n(f.breakpoints().size()),
        lo(f.domain_lo()),
        hi(f.domain_hi()) {}

  void Seek(double cx) {
    while (j > 0 && p[j - 1].x > cx) --j;
    while (j < n && p[j].x <= cx) ++j;
  }

  double Value(double x) {
    const double cx = std::clamp(x, lo, hi);
    Seek(cx);
    if (j == 0) return p[0].y;
    if (j == n) return p[n - 1].y;
    const Breakpoint& a = p[j - 1];
    const Breakpoint& b = p[j];
    const double t = (cx - a.x) / (b.x - a.x);
    return a.y + t * (b.y - a.y);
  }

  LinearPiece Piece(double x) {
    if (n == 1) return {0.0, p[0].y};
    const double cx = std::clamp(x, lo, hi);
    Seek(cx);
    size_t idx;  // Index of the piece's left endpoint.
    if (j == n) {
      idx = n - 2;
    } else if (j == 0) {
      idx = 0;
    } else {
      idx = j - 1;
    }
    const Breakpoint& a = p[idx];
    const Breakpoint& b = p[idx + 1];
    const double slope = (b.y - a.y) / (b.x - a.x);
    return {slope, a.y - slope * a.x};
  }
};

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_PWL_CURSOR_H_
