// Deriving travel-time functions from CapeCod speed patterns (§4.1, §4.4).
//
// The flow-speed model (Sung et al. [19], adopted by the paper) says an
// object traversing an edge moves, at every instant t, at the edge's speed
// in effect at t — so mid-edge speed changes apply. The arrival time A(l)
// for a departure l solves  ∫_l^{A(l)} v(u) du = d  and is strictly
// increasing (FIFO). Travel time τ(l) = A(l) − l is continuous piecewise
// linear; Eq. 1 of the paper is the two-piece special case.
#ifndef CAPEFP_TDF_TRAVEL_TIME_H_
#define CAPEFP_TDF_TRAVEL_TIME_H_

#include "src/tdf/pwl_function.h"
#include "src/tdf/speed_pattern.h"

namespace capefp::tdf {

// Read-only view of an edge's speed as a function of absolute time, binding
// a CapeCodPattern to a Calendar. Does not own either; both must outlive
// the view.
class EdgeSpeedView {
 public:
  EdgeSpeedView(const CapeCodPattern* pattern, const Calendar* calendar);

  // Speed in effect at absolute time `t` (minutes from reference midnight).
  double SpeedAt(double t) const;

  // Smallest potential speed-change instant strictly greater than `t`
  // (a pattern piece boundary or a midnight).
  double NextBoundaryAfter(double t) const;

  // Largest potential speed-change instant strictly smaller than `t`.
  double PrevBoundaryBefore(double t) const;

  double max_speed() const { return pattern_->max_speed(); }
  double min_speed() const { return pattern_->min_speed(); }

 private:
  const DailySpeedPattern& DayPattern(int64_t day) const;

  const CapeCodPattern* pattern_;
  const Calendar* calendar_;
};

// Travel time over `distance_miles` when leaving at `leave_time`.
double TravelTime(const EdgeSpeedView& speed, double distance_miles,
                  double leave_time);

// The departure time whose traversal of `distance_miles` arrives exactly at
// `arrival_time` (inverse of the arrival function; unique by FIFO).
double DepartureForArrival(const EdgeSpeedView& speed, double distance_miles,
                           double arrival_time);

// The travel-time function τ(l) for leaving times l in [lo, hi]
// (lo == hi yields a single-point function).
//
// Throughout this header, each allocating form is an exact wrapper around
// its *Into counterpart (the single implementation), so the two produce
// breakpoint-for-breakpoint identical results; the Into form rebuilds the
// caller-owned `out` in place (reusing its storage and arena binding) and
// must not alias any input function.
PwlFunction EdgeTravelTimeFunction(const EdgeSpeedView& speed,
                                   double distance_miles, double lo,
                                   double hi);
void EdgeTravelTimeFunctionInto(const EdgeSpeedView& speed,
                                double distance_miles, double lo, double hi,
                                PwlFunction* out);

// §4.4 path expansion: given T1 = travel time of path s ⇒ n as a function of
// the leaving time l at s, and `edge_tt` = travel-time function of edge
// n → n_j covering the arrival interval [lo + T1(lo), hi + T1(hi)], returns
//   T(l) = T1(l) + edge_tt(l + T1(l)),
// the travel-time function of the expanded path s ⇒ n → n_j. Breakpoints are
// the union of T1's breakpoints with the pre-images (under the arrival
// function l + T1(l)) of edge_tt's breakpoints — the paper's "two cases" of
// Fig. 5.
PwlFunction ComposePathWithEdge(const PwlFunction& path_tt,
                                const PwlFunction& edge_tt);
void ComposePathWithEdgeInto(const PwlFunction& path_tt,
                             const PwlFunction& edge_tt, PwlFunction* out);

// Convenience: expands `path_tt` across an edge described by a speed view
// and distance (computes the needed edge function internally). The Into
// form derives the edge function into `*edge_scratch` (a distinct reusable
// buffer) before composing into `*out`.
PwlFunction ExpandPath(const PwlFunction& path_tt, const EdgeSpeedView& speed,
                       double distance_miles);
void ExpandPathInto(const PwlFunction& path_tt, const EdgeSpeedView& speed,
                    double distance_miles, PwlFunction* edge_scratch,
                    PwlFunction* out);

// --- Reverse (arrival-anchored) forms, for arrival-interval queries
// (§2.1 allows the query interval to constrain the arrival at e). ---

// Travel time as a function of the *arrival* time t at the edge head:
// ρ(t) = t − DepartureForArrival(t), for t in [lo, hi]. Piecewise linear
// by the same argument as the forward function.
PwlFunction EdgeReverseTravelTimeFunction(const EdgeSpeedView& speed,
                                          double distance_miles, double lo,
                                          double hi);
void EdgeReverseTravelTimeFunctionInto(const EdgeSpeedView& speed,
                                       double distance_miles, double lo,
                                       double hi, PwlFunction* out);

// Reverse path expansion: given R = travel time of a path n ⇒ e as a
// function of the arrival time a at e, and an edge u → n, returns
//   R'(a) = R(a) + ρ(a − R(a), u → n),
// the travel-time function of u ⇒ e. (a − R(a) is the required arrival
// time at n; it is increasing by FIFO.)
PwlFunction ExpandPathReverse(const PwlFunction& path_rt,
                              const EdgeSpeedView& speed,
                              double distance_miles);
void ExpandPathReverseInto(const PwlFunction& path_rt,
                           const EdgeSpeedView& speed, double distance_miles,
                           PwlFunction* edge_scratch, PwlFunction* out);

}  // namespace capefp::tdf

#endif  // CAPEFP_TDF_TRAVEL_TIME_H_
