#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace capefp::obs {

Trace::Span::Span(Span&& other) noexcept
    : trace_(other.trace_), index_(other.index_) {
  other.trace_ = nullptr;
  other.index_ = -1;
}

Trace::Span& Trace::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    index_ = other.index_;
    other.trace_ = nullptr;
    other.index_ = -1;
  }
  return *this;
}

void Trace::Span::AddAttr(std::string_view key, double value) {
  if (trace_ == nullptr) return;
  trace_->spans_[static_cast<size_t>(index_)].attrs.emplace_back(
      std::string(key), value);
}

void Trace::Span::End() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(index_);
  trace_ = nullptr;
  index_ = -1;
}

Trace::Trace() : epoch_(Clock::now()) {}

double Trace::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
      .count();
}

Trace::Span Trace::StartSpan(std::string_view name) {
  SpanData data;
  data.name = std::string(name);
  data.parent = open_stack_.empty() ? -1 : open_stack_.back();
  data.start_ms = ElapsedMs();
  data.open = true;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(data));
  open_stack_.push_back(index);
  return Span(this, index);
}

void Trace::EndSpan(int index) {
  SpanData& data = spans_[static_cast<size_t>(index)];
  CAPEFP_CHECK(data.open) << "span ended twice";
  data.duration_ms = ElapsedMs() - data.start_ms;
  data.open = false;
  // Spans close LIFO under RAII; tolerate out-of-order ends by popping
  // through the stack entry.
  const auto it = std::find(open_stack_.begin(), open_stack_.end(), index);
  if (it != open_stack_.end()) open_stack_.erase(it, open_stack_.end());
}

int Trace::LeafIndex(std::string_view name) {
  const int parent = open_stack_.empty() ? -1 : open_stack_.back();
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].aggregated && spans_[i].parent == parent &&
        spans_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  SpanData data;
  data.name = std::string(name);
  data.parent = parent;
  data.start_ms = ElapsedMs();
  data.count = 0;
  data.aggregated = true;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(data));
  return index;
}

void Trace::AddLeaf(std::string_view name, double duration_ms,
                    uint64_t count) {
  SpanData& leaf = spans_[static_cast<size_t>(LeafIndex(name))];
  leaf.duration_ms += duration_ms;
  leaf.count += count;
}

void Trace::AddLeafAttr(std::string_view name, std::string_view key,
                        double value) {
  SpanData& leaf = spans_[static_cast<size_t>(LeafIndex(name))];
  for (auto& [existing, accumulated] : leaf.attrs) {
    if (existing == key) {
      accumulated += value;
      return;
    }
  }
  leaf.attrs.emplace_back(std::string(key), value);
}

void Trace::AddAttr(std::string_view key, double value) {
  if (open_stack_.empty()) return;
  spans_[static_cast<size_t>(open_stack_.back())].attrs.emplace_back(
      std::string(key), value);
}

namespace {

std::string FormatAttrValue(double value) {
  char buf[64];
  // Counters are the common case; print them without a fraction.
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

}  // namespace

std::string Trace::ToText() const {
  // Children in insertion order per parent.
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<size_t>(spans_[i].parent)].push_back(
          static_cast<int>(i));
    }
  }
  std::string out;
  // Depth-first with explicit stack of (index, depth).
  std::vector<std::pair<int, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const SpanData& span = spans_[static_cast<size_t>(index)];
    out.append(static_cast<size_t>(2 * depth), ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", span.duration_ms);
    out += span.name + "  " + buf + " ms";
    if (span.count > 1) {
      out += "  (x" + std::to_string(span.count) + ")";
    }
    if (!span.attrs.empty()) {
      out += "  [";
      for (size_t a = 0; a < span.attrs.size(); ++a) {
        if (a > 0) out += " ";
        out += span.attrs[a].first + "=" +
               FormatAttrValue(span.attrs[a].second);
      }
      out += "]";
    }
    out += "\n";
    const auto& kids = children[static_cast<size_t>(index)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

void Trace::WriteJson(util::JsonWriter* w) const {
  w->BeginArray();
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanData& span = spans_[i];
    w->BeginObject();
    w->Key("id");
    w->Int(static_cast<int64_t>(i));
    w->Key("parent");
    w->Int(span.parent);
    w->Key("name");
    w->String(span.name);
    w->Key("start_ms");
    w->Double(span.start_ms);
    w->Key("duration_ms");
    w->Double(span.duration_ms);
    w->Key("count");
    w->Uint(span.count);
    if (!span.attrs.empty()) {
      w->Key("attrs");
      w->BeginObject();
      for (const auto& [key, value] : span.attrs) {
        w->Key(key);
        w->Double(value);
      }
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
}

std::string Trace::ToJson() const {
  util::JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace capefp::obs
