#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "src/util/check.h"

namespace capefp::obs {

size_t Counter::StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      observed, std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  CAPEFP_CHECK(p >= 0.0 && p <= 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target && counts[i] > 0) {
      if (i >= bounds.size()) return bounds.back();  // Overflow bucket.
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double into =
          (target - static_cast<double>(cumulative - counts[i])) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  CAPEFP_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CAPEFP_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed,
      std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + value),
      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.counts[i];
  }
  snapshot.sum =
      std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return snapshot;
}

std::vector<double> Histogram::LatencyBucketsMs() {
  return {0.01, 0.02, 0.05, 0.1,   0.2,   0.5,   1.0,    2.0,    5.0,
          10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  util::MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::AddCallbackCounter(std::string_view name,
                                         std::function<uint64_t()> fn) {
  CAPEFP_CHECK(fn != nullptr);
  util::MutexLock lock(&mu_);
  callback_counters_.insert_or_assign(std::string(name), std::move(fn));
}

void MetricsRegistry::AddCallbackGauge(std::string_view name,
                                       std::function<double()> fn) {
  CAPEFP_CHECK(fn != nullptr);
  util::MutexLock lock(&mu_);
  callback_gauges_.insert_or_assign(std::string(name), std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, fn] : callback_counters_) {
    snapshot.counters[name] = fn();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, fn] : callback_gauges_) {
    snapshot.gauges[name] = fn();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0.0 : it->second;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end() && it->second <= value) {
      value -= it->second;
    }
  }
  for (auto& [name, histogram] : delta.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end() ||
        it->second.counts.size() != histogram.counts.size() ||
        it->second.count > histogram.count) {
      continue;
    }
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (it->second.counts[i] <= histogram.counts[i]) {
        histogram.counts[i] -= it->second.counts[i];
      }
    }
    histogram.count -= it->second.count;
    histogram.sum -= it->second.sum;
  }
  return delta;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted tree paths map
// onto underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      const std::string le = i < histogram.bounds.size()
                                 ? FormatDouble(histogram.bounds[i])
                                 : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += prom + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

void MetricsSnapshot::WriteJson(util::JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : counters) {
    w->Key(name);
    w->Uint(value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : gauges) {
    w->Key(name);
    w->Double(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, histogram] : histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Uint(histogram.count);
    w->Key("sum");
    w->Double(histogram.sum);
    w->Key("p50");
    w->Double(histogram.Percentile(50.0));
    w->Key("p95");
    w->Double(histogram.Percentile(95.0));
    w->Key("p99");
    w->Double(histogram.Percentile(99.0));
    w->Key("buckets");
    w->BeginArray();
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (histogram.counts[i] == 0) continue;  // Keep the output compact.
      w->BeginObject();
      w->Key("le");
      if (i < histogram.bounds.size()) {
        w->Double(histogram.bounds[i]);
      } else {
        w->String("+Inf");
      }
      w->Key("count");
      w->Uint(histogram.counts[i]);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  util::JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace capefp::obs
