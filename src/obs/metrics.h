// Lock-cheap metrics: named counters, gauges, and fixed-bucket histograms
// behind one registry, with snapshot-on-read exposition.
//
// The paper's evaluation (§6) is phrased entirely in observable counters —
// page accesses, expanded nodes, response time — and every perf PR needs
// those numbers without a debugger attached. This registry is the single
// namespace-scoped metric tree the engine, the edge-TTF cache, and the
// storage stack publish into (names like "capefp.storage.pool.faults").
//
// Cost model:
//   * Update paths (Counter::Add, Gauge::Set, Histogram::Record) are
//     lock-free relaxed atomics; counters are striped across cache lines so
//     RunBatch workers do not bounce one line. No update ever takes a lock.
//   * Registration (GetCounter etc.) takes the registry mutex; callers
//     register once at setup and cache the returned handle. Handles stay
//     valid for the registry's lifetime.
//   * Snapshot() takes the mutex, sums stripes, and polls callbacks — a
//     read-side cost paid only when someone actually looks.
//
// Components that already maintain internal counters under their own locks
// (BufferPool, Pager, EdgeTtfCache) publish through *callback* metrics:
// the registry polls them at snapshot time instead of double-counting on
// the hot path.
#ifndef CAPEFP_OBS_METRICS_H_
#define CAPEFP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json_writer.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace capefp::obs {

// Monotonic counter. Add() is wait-free; Value() sums the stripes (reads
// are monotone but not linearizable with concurrent writers — exact totals
// require the writers to have finished, which is what snapshots report).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[StripeIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  // Threads are assigned round-robin to stripes on first touch.
  static size_t StripeIndex();

  Cell cells_[kStripes];
};

// Last-write-wins double value (queue depth, hit rate, config knobs).
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit_cast of 0.0 is all-zero.
};

// Point-in-time view of one histogram. `bounds` are the inclusive upper
// bucket edges; `counts` has bounds.size() + 1 entries, the last being the
// overflow (+Inf) bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  // Bucket-interpolated percentile, p in [0, 100]; 0 on an empty
  // histogram. Overflow-bucket answers clamp to the last finite bound.
  double Percentile(double p) const;
};

// Fixed-bucket histogram. Record() is lock-free (relaxed atomics on the
// bucket counters and a CAS loop on the sum).
class Histogram {
 public:
  // `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds = LatencyBucketsMs());

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

  // Default buckets for millisecond latencies: 10µs .. 5s, roughly
  // geometric (1-2-5 per decade).
  static std::vector<double> LatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1.
  std::atomic<uint64_t> sum_bits_{0};
};

// Everything the registry knew at one instant. Plain data: safe to copy,
// diff, and serialize after the registry is gone.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Lookup helpers; 0 / empty when the name is absent.
  uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;

  // Counter/histogram deltas against an earlier snapshot of the same
  // registry (gauges keep their current value). Used by benches to report
  // per-config numbers from cumulative engine metrics.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  // Prometheus text exposition ('.' in names becomes '_').
  std::string ToPrometheusText() const;
  // Emits one JSON object value ({"counters": {...}, ...}) into `w`.
  void WriteJson(util::JsonWriter* w) const;
  std::string ToJson() const;
};

// Name -> metric tree. Metric names are dot-separated paths
// ("capefp.search.expansions"); see DESIGN.md §7 for the naming scheme.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Create-or-get; the returned handle is valid for the registry's
  // lifetime and safe to update from any thread.
  Counter* GetCounter(std::string_view name) CAPEFP_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) CAPEFP_EXCLUDES(mu_);
  // On first call the histogram is created with `bounds`; later calls with
  // the same name return the existing histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds =
                              Histogram::LatencyBucketsMs())
      CAPEFP_EXCLUDES(mu_);

  // Callback metrics, polled at Snapshot() time. `fn` must stay valid for
  // the registry's lifetime and be safe to call from any snapshotting
  // thread. Registering the same name again replaces the callback.
  // Snapshot() invokes callbacks while holding the registry mutex, so a
  // callback must never call back into this registry (self-deadlock) —
  // component stats() getters that take only their own component lock are
  // the intended shape (see DESIGN.md §6's lock-order table).
  void AddCallbackCounter(std::string_view name,
                          std::function<uint64_t()> fn) CAPEFP_EXCLUDES(mu_);
  void AddCallbackGauge(std::string_view name, std::function<double()> fn)
      CAPEFP_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const CAPEFP_EXCLUDES(mu_);

 private:
  // Guards name resolution and snapshotting only; metric updates go
  // through the returned handles, never this mutex.
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CAPEFP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CAPEFP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CAPEFP_GUARDED_BY(mu_);
  std::map<std::string, std::function<uint64_t()>, std::less<>>
      callback_counters_ CAPEFP_GUARDED_BY(mu_);
  std::map<std::string, std::function<double()>, std::less<>>
      callback_gauges_ CAPEFP_GUARDED_BY(mu_);
};

}  // namespace capefp::obs

#endif  // CAPEFP_OBS_METRICS_H_
