// Per-query tracing: a tree of timed spans with numeric attributes.
//
// A Trace answers "why was this query slow": the engine opens a root span
// per query, nests child spans for the estimator build and the search, and
// the search accumulates leaf spans for repeated inner work (edge-TTF
// derivations) plus attribute counters (expansions, cache hits, pages
// faulted). Rendered as an indented span tree (ToText) or JSON.
//
//   obs::Trace trace;
//   auto all = engine->AllFastestPaths(query, &trace);
//   std::puts(trace.ToText().c_str());
//
// A Trace is deliberately NOT thread-safe: it belongs to one query on one
// thread (RunBatch hands each worker its own per-query Trace). Tracing is
// opt-in per query; a null Trace* everywhere costs nothing on the hot
// path.
#ifndef CAPEFP_OBS_TRACE_H_
#define CAPEFP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/json_writer.h"

namespace capefp::obs {

class Trace {
 public:
  // One node of the span tree. `count` > 1 marks an aggregated leaf — a
  // repeated inner operation merged into one node whose duration is the
  // total across invocations.
  struct SpanData {
    std::string name;
    int parent = -1;                 // Index into spans(); -1 for roots.
    double start_ms = 0.0;           // Offset from the trace epoch.
    double duration_ms = 0.0;
    uint64_t count = 1;
    std::vector<std::pair<std::string, double>> attrs;
    bool open = false;
    // True for AddLeaf/AddLeafAttr aggregation nodes (distinguishes them
    // from closed StartSpan spans of the same name under the same parent).
    bool aggregated = false;
  };

  // RAII handle on an open span; End() (or destruction) closes it and
  // stamps the duration. Movable, not copyable.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    void AddAttr(std::string_view key, double value);
    void End();
    bool active() const { return trace_ != nullptr; }

   private:
    friend class Trace;
    Span(Trace* trace, int index) : trace_(trace), index_(index) {}

    Trace* trace_ = nullptr;
    int index_ = -1;
  };

  Trace();

  // Opens a child of the innermost open span (a root when none is open).
  Span StartSpan(std::string_view name);

  // Merges `duration_ms` (over `count` invocations) into the aggregated
  // leaf named `name` under the innermost open span, creating it on first
  // use. For inner operations too frequent for a span each.
  void AddLeaf(std::string_view name, double duration_ms,
               uint64_t count = 1);
  // Like AddLeaf, but also accumulates attribute `key` on that leaf.
  void AddLeafAttr(std::string_view name, std::string_view key,
                   double value);

  // Sets attribute `key` on the innermost open span (ignored when no span
  // is open).
  void AddAttr(std::string_view key, double value);

  const std::vector<SpanData>& spans() const { return spans_; }
  double ElapsedMs() const;

  // Indented span tree with durations and attributes, one span per line.
  std::string ToText() const;
  // Emits one JSON value (array of span objects) into `w`.
  void WriteJson(util::JsonWriter* w) const;
  std::string ToJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  void EndSpan(int index);
  // The aggregated leaf `name` under the current span, created on demand.
  int LeafIndex(std::string_view name);

  Clock::time_point epoch_;
  std::vector<SpanData> spans_;
  std::vector<int> open_stack_;  // Indices of open spans, outermost first.
};

}  // namespace capefp::obs

#endif  // CAPEFP_OBS_TRACE_H_
