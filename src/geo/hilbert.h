// Hilbert space-filling curve.
//
// CCAM (Shekhar & Liu, TKDE'97) orders node records one-dimensionally by
// the Hilbert value of their spatial location before connectivity-aware
// page packing; the B+-tree over node ids then inherits spatial locality.
#ifndef CAPEFP_GEO_HILBERT_H_
#define CAPEFP_GEO_HILBERT_H_

#include <cstdint>

#include "src/geo/point.h"

namespace capefp::geo {

// Maps grid cell (x, y), each in [0, 2^order), to its distance along the
// Hilbert curve of the given order (order in [1, 31]).
uint64_t HilbertXy2D(int order, uint32_t x, uint32_t y);

// Inverse of HilbertXy2D.
void HilbertD2Xy(int order, uint64_t d, uint32_t* x, uint32_t* y);

// Hilbert value of a point within `box`, discretized to a 2^order grid.
// Points on the box border are clamped into range.
uint64_t HilbertValue(const Point& p, const BoundingBox& box, int order = 16);

}  // namespace capefp::geo

#endif  // CAPEFP_GEO_HILBERT_H_
