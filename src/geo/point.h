// Planar geometry primitives.
//
// Road-network coordinates are planar miles (the paper's Suffolk-county
// dataset spans a few miles; we keep the unit so speeds in miles/minute
// combine directly with distances).
#ifndef CAPEFP_GEO_POINT_H_
#define CAPEFP_GEO_POINT_H_

#include <string>

namespace capefp::geo {

// A point in the plane, coordinates in miles.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Euclidean distance between `a` and `b`, in miles.
double EuclideanDistance(const Point& a, const Point& b);

// Axis-aligned bounding box. A default-constructed box is empty.
class BoundingBox {
 public:
  BoundingBox() = default;
  BoundingBox(Point lo, Point hi);

  // Grows the box to contain `p`.
  void Extend(const Point& p);

  bool empty() const { return empty_; }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }
  double width() const { return hi_.x - lo_.x; }
  double height() const { return hi_.y - lo_.y; }
  bool Contains(const Point& p) const;

  std::string ToString() const;

 private:
  bool empty_ = true;
  Point lo_;
  Point hi_;
};

}  // namespace capefp::geo

#endif  // CAPEFP_GEO_POINT_H_
