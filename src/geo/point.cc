#include "src/geo/point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace capefp::geo {

double EuclideanDistance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

BoundingBox::BoundingBox(Point lo, Point hi) : empty_(false), lo_(lo), hi_(hi) {
  CAPEFP_CHECK_LE(lo.x, hi.x);
  CAPEFP_CHECK_LE(lo.y, hi.y);
}

void BoundingBox::Extend(const Point& p) {
  if (empty_) {
    lo_ = hi_ = p;
    empty_ = false;
    return;
  }
  lo_.x = std::min(lo_.x, p.x);
  lo_.y = std::min(lo_.y, p.y);
  hi_.x = std::max(hi_.x, p.x);
  hi_.y = std::max(hi_.y, p.y);
}

bool BoundingBox::Contains(const Point& p) const {
  return !empty_ && p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y &&
         p.y <= hi_.y;
}

std::string BoundingBox::ToString() const {
  if (empty_) return "[empty]";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "[(%.3f,%.3f)-(%.3f,%.3f)]", lo_.x, lo_.y,
                hi_.x, hi_.y);
  return buf;
}

}  // namespace capefp::geo
