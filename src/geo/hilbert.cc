#include "src/geo/hilbert.h"

#include <algorithm>

#include "src/util/check.h"

namespace capefp::geo {

namespace {

// Rotates/flips the quadrant-local coordinates per the classic iterative
// Hilbert construction (Warren, Hacker's Delight style).
void Rotate(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

uint64_t HilbertXy2D(int order, uint32_t x, uint32_t y) {
  CAPEFP_CHECK(order >= 1 && order <= 31);
  const uint32_t n = 1u << order;
  CAPEFP_CHECK_LT(x, n);
  CAPEFP_CHECK_LT(y, n);
  uint64_t d = 0;
  for (uint32_t s = n / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertD2Xy(int order, uint64_t d, uint32_t* x, uint32_t* y) {
  CAPEFP_CHECK(order >= 1 && order <= 31);
  const uint32_t n = 1u << order;
  CAPEFP_CHECK_LT(d, static_cast<uint64_t>(n) * n);
  *x = 0;
  *y = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < n; s *= 2) {
    const uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    const uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertValue(const Point& p, const BoundingBox& box, int order) {
  CAPEFP_CHECK(!box.empty());
  const uint32_t n = 1u << order;
  auto discretize = [n](double v, double lo, double extent) {
    if (extent <= 0.0) return 0u;
    const double frac = (v - lo) / extent;
    auto cell = static_cast<int64_t>(frac * n);
    cell = std::clamp<int64_t>(cell, 0, n - 1);
    return static_cast<uint32_t>(cell);
  };
  const uint32_t gx = discretize(p.x, box.lo().x, box.width());
  const uint32_t gy = discretize(p.y, box.lo().y, box.height());
  return HilbertXy2D(order, gx, gy);
}

}  // namespace capefp::geo
