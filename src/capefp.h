// Umbrella header: the full public API of capefp.
//
// Most applications only need this header plus, for custom data,
// src/network/network_io.h. See README.md for a walkthrough and
// examples/ for runnable programs.
#ifndef CAPEFP_CAPEFP_H_
#define CAPEFP_CAPEFP_H_

#include "src/core/boundary_estimator.h"    // §5 estimator
#include "src/core/constant_speed_solver.h" // speed-limit baseline
#include "src/core/discrete_solver.h"       // discrete-time baseline
#include "src/core/engine.h"                // FastestPathEngine façade
#include "src/core/estimator.h"             // naive estimator
#include "src/core/analysis.h"              // departure windows, isochrones
#include "src/core/hierarchical.h"          // two-level search (§6.1)
#include "src/core/profile_envelope.h"      // single-source/target profiles
#include "src/core/profile_search.h"        // IntAllFastestPaths (§4)
#include "src/core/reverse_profile_search.h"// arrival-interval queries
#include "src/core/td_astar.h"              // fixed-departure search
#include "src/gen/random_network.h"         // random test networks
#include "src/gen/suffolk_generator.h"      // synthetic metropolitan data
#include "src/gen/table1_schema.h"          // the paper's speed schema
#include "src/network/network_io.h"         // text interchange format
#include "src/network/road_network.h"       // the CapeCod network model
#include "src/obs/metrics.h"                // counters / histograms
#include "src/obs/trace.h"                  // per-query span traces
#include "src/storage/ccam_builder.h"       // CCAM page-file builder
#include "src/storage/ccam_store.h"         // disk store (§2.2)
#include "src/tdf/speed_pattern.h"          // CapeCod patterns (§2.1)
#include "src/tdf/travel_time.h"            // travel-time functions (§4.1)

#endif  // CAPEFP_CAPEFP_H_
