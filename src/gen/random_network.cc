#include "src/gen/random_network.h"

#include <utility>
#include <vector>

#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp::gen {

namespace {

tdf::DailySpeedPattern RandomDaily(util::Rng& rng, double max_speed) {
  std::vector<tdf::SpeedPiece> pieces;
  pieces.push_back({0.0, rng.NextDouble(0.15, 1.0) * max_speed});
  const int extra = static_cast<int>(rng.NextInt(0, 4));
  double start = 0.0;
  for (int i = 0; i < extra; ++i) {
    start += rng.NextDouble(60.0, 400.0);
    if (start >= tdf::kMinutesPerDay - 1.0) break;
    pieces.push_back({start, rng.NextDouble(0.15, 1.0) * max_speed});
  }
  return tdf::DailySpeedPattern(std::move(pieces));
}

}  // namespace

network::RoadNetwork MakeRandomNetwork(const RandomNetworkOptions& options) {
  CAPEFP_CHECK_GE(options.num_nodes, 2);
  CAPEFP_CHECK_GE(options.num_patterns, 1);
  util::Rng rng(options.seed);

  network::RoadNetwork net{tdf::Calendar::StandardWeek(0, 1)};
  for (int p = 0; p < options.num_patterns; ++p) {
    net.AddPattern(tdf::CapeCodPattern(
        {RandomDaily(rng, options.max_speed_mpm),
         RandomDaily(rng, options.max_speed_mpm)}));
  }
  // Make sure max_speed() equals options.max_speed_mpm exactly so Euclidean
  // admissibility arguments are tight and deterministic. Both calendar
  // categories must be covered.
  net.AddPattern(tdf::CapeCodPattern(
      {tdf::DailySpeedPattern::Constant(options.max_speed_mpm),
       tdf::DailySpeedPattern::Constant(options.max_speed_mpm)}));

  for (int i = 0; i < options.num_nodes; ++i) {
    net.AddNode({rng.NextDouble(0.0, options.extent_miles),
                 rng.NextDouble(0.0, options.extent_miles)});
  }

  auto random_pattern = [&] {
    return static_cast<network::PatternId>(
        rng.NextBounded(static_cast<uint64_t>(options.num_patterns) + 1));
  };
  auto random_class = [&] {
    return static_cast<network::RoadClass>(rng.NextBounded(4));
  };
  auto add_edge = [&](network::NodeId a, network::NodeId b) {
    if (a == b) return;
    const double euclid =
        geo::EuclideanDistance(net.location(a), net.location(b));
    const double dist = std::max(euclid * rng.NextDouble(1.0, 1.3), 1e-4);
    net.AddBidirectionalEdge(a, b, dist, random_pattern(), random_class());
  };

  // Random spanning tree: node i attaches to a random predecessor.
  for (int i = 1; i < options.num_nodes; ++i) {
    add_edge(static_cast<network::NodeId>(i),
             static_cast<network::NodeId>(rng.NextBounded(
                 static_cast<uint64_t>(i))));
  }
  const int extras = static_cast<int>(options.extra_edge_fraction *
                                      options.num_nodes);
  for (int i = 0; i < extras; ++i) {
    add_edge(static_cast<network::NodeId>(
                 rng.NextBounded(static_cast<uint64_t>(options.num_nodes))),
             static_cast<network::NodeId>(
                 rng.NextBounded(static_cast<uint64_t>(options.num_nodes))));
  }
  return net;
}

}  // namespace capefp::gen
