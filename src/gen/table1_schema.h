// The CapeCod pattern schema of Table 1 (§6.1).
//
//                Inbound Hwy   Outbound Hwy  Local in Boston       Local outside
//  Non-workday   65 MPH        65 MPH        40 MPH                40 MPH
//  Workday       20 MPH 7-10a  30 MPH 4-7p   20 MPH 7-10a & 4-7p   40 MPH
//                65 otherwise  65 otherwise  40 otherwise
#ifndef CAPEFP_GEN_TABLE1_SCHEMA_H_
#define CAPEFP_GEN_TABLE1_SCHEMA_H_

#include <array>

#include "src/network/road_network.h"
#include "src/tdf/speed_pattern.h"

namespace capefp::gen {

// Day-category ids used by the schema.
inline constexpr tdf::DayCategoryId kWorkday = 0;
inline constexpr tdf::DayCategoryId kNonWorkday = 1;

// One CapeCod pattern per road class, workday category first.
struct Table1Schema {
  std::array<tdf::CapeCodPattern, network::kNumRoadClasses> patterns;

  const tdf::CapeCodPattern& pattern_for(network::RoadClass rc) const {
    return patterns[static_cast<size_t>(rc)];
  }
};

// Builds the four patterns of Table 1.
Table1Schema MakeTable1Schema();

// Registers the schema's patterns on `network` in RoadClass order, so that
// PatternId == static_cast<int>(RoadClass). The network's calendar should
// map days to {kWorkday, kNonWorkday} (see Calendar::StandardWeek).
void RegisterTable1Patterns(network::RoadNetwork* network);

// A variant of the schema where every class moves at its speed limit all
// day (the "commercial navigation system" assumption of §6): inbound and
// outbound highways at 65 MPH, local roads at 40 MPH.
Table1Schema MakeSpeedLimitSchema();

}  // namespace capefp::gen

#endif  // CAPEFP_GEN_TABLE1_SCHEMA_H_
