// Synthetic metropolitan road network approximating the paper's dataset.
//
// The paper evaluates on the 2003 TIGER/Line roads of Suffolk County, MA
// (14,456 nodes / 20,461 road segments, §6.1) — data we cannot ship. This
// generator builds a structurally equivalent network (see DESIGN.md,
// "Data substitutions"): a dense urban grid inside a circular city, a
// sparser suburban grid outside, and radial dual-carriageway highways whose
// towards-center lanes are inbound and away-from-center lanes outbound.
// Edges carry the Table 1 CapeCod patterns keyed by road class.
//
// All randomness is seeded; the same options always yield the same network.
#ifndef CAPEFP_GEN_SUFFOLK_GENERATOR_H_
#define CAPEFP_GEN_SUFFOLK_GENERATOR_H_

#include <cstdint>

#include "src/geo/point.h"
#include "src/network/road_network.h"

namespace capefp::gen {

struct SuffolkOptions {
  uint64_t seed = 42;

  // Square world [0, extent]², city disk in the middle.
  double extent_miles = 12.0;
  double city_radius_miles = 2.5;

  // Suburban grid spacing; the city grid is twice as fine.
  double suburb_spacing_miles = 0.114;

  // Probability a lattice node exists (irregularity of real road networks).
  double node_keep_prob = 0.93;

  // Undirected segment budget: spanning-tree edges are always kept and
  // random extra grid edges are added up to this count (the paper's
  // dataset has 20,461 segments). <= 0 keeps a fixed 45% of extras instead.
  int target_segments = 20461;

  // Radial highways.
  int num_highways = 8;
  double highway_node_spacing_miles = 0.4;
  double highway_inner_radius_miles = 0.5;

  // A small network (a few hundred nodes) for unit tests.
  static SuffolkOptions Small();
};

struct SuffolkNetwork {
  network::RoadNetwork network;
  geo::Point city_center;
  double city_radius_miles = 0.0;
};

// Generates the network. The result is strongly connected (every segment is
// a directed pair) and uses pattern ids equal to RoadClass values
// (RegisterTable1Patterns). Aborts on nonsensical options.
SuffolkNetwork GenerateSuffolkNetwork(const SuffolkOptions& options);

}  // namespace capefp::gen

#endif  // CAPEFP_GEN_SUFFOLK_GENERATOR_H_
