// Small random connected networks for tests and micro-benchmarks.
#ifndef CAPEFP_GEN_RANDOM_NETWORK_H_
#define CAPEFP_GEN_RANDOM_NETWORK_H_

#include <cstdint>

#include "src/network/road_network.h"

namespace capefp::gen {

struct RandomNetworkOptions {
  uint64_t seed = 1;
  int num_nodes = 50;
  // Extra bidirectional edges beyond the random spanning tree, as a
  // fraction of num_nodes.
  double extra_edge_fraction = 0.6;
  // Number of distinct random CapeCod patterns to intern.
  int num_patterns = 3;
  // Maximum speed appearing in any generated pattern (mpm).
  double max_speed_mpm = 1.0;
  // Spatial extent (square side, miles).
  double extent_miles = 10.0;
};

// Generates a strongly connected network: random node locations, a random
// spanning tree plus extra edges (all bidirectional), random multi-piece
// speed patterns over a two-category week. Deterministic in the seed.
//
// Edge distances are Euclidean scaled by a random detour factor in
// [1, 1.3], so the triangle inequality in *distance* holds w.r.t. the
// Euclidean lower bound, as the estimators require.
network::RoadNetwork MakeRandomNetwork(const RandomNetworkOptions& options);

}  // namespace capefp::gen

#endif  // CAPEFP_GEN_RANDOM_NETWORK_H_
