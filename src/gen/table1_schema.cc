#include "src/gen/table1_schema.h"

#include <vector>

namespace capefp::gen {

namespace {

using tdf::DailySpeedPattern;
using tdf::HhMm;
using tdf::MphToMpm;
using tdf::SpeedPiece;

DailySpeedPattern MorningRush(double normal_mph, double rush_mph) {
  return DailySpeedPattern({{0.0, MphToMpm(normal_mph)},
                            {HhMm(7, 0), MphToMpm(rush_mph)},
                            {HhMm(10, 0), MphToMpm(normal_mph)}});
}

DailySpeedPattern EveningRush(double normal_mph, double rush_mph) {
  return DailySpeedPattern({{0.0, MphToMpm(normal_mph)},
                            {HhMm(16, 0), MphToMpm(rush_mph)},
                            {HhMm(19, 0), MphToMpm(normal_mph)}});
}

DailySpeedPattern DoubleRush(double normal_mph, double rush_mph) {
  return DailySpeedPattern({{0.0, MphToMpm(normal_mph)},
                            {HhMm(7, 0), MphToMpm(rush_mph)},
                            {HhMm(10, 0), MphToMpm(normal_mph)},
                            {HhMm(16, 0), MphToMpm(rush_mph)},
                            {HhMm(19, 0), MphToMpm(normal_mph)}});
}

DailySpeedPattern Flat(double mph) {
  return DailySpeedPattern::Constant(MphToMpm(mph));
}

}  // namespace

Table1Schema MakeTable1Schema() {
  return Table1Schema{{
      // kInboundHighway: 20 MPH 7-10am on workdays, 65 otherwise.
      tdf::CapeCodPattern({MorningRush(65.0, 20.0), Flat(65.0)}),
      // kOutboundHighway: 30 MPH 4-7pm on workdays, 65 otherwise.
      tdf::CapeCodPattern({EveningRush(65.0, 30.0), Flat(65.0)}),
      // kLocalInCity: 20 MPH in both rush windows on workdays, 40 otherwise.
      tdf::CapeCodPattern({DoubleRush(40.0, 20.0), Flat(40.0)}),
      // kLocalOutsideCity: 40 MPH always.
      tdf::CapeCodPattern({Flat(40.0), Flat(40.0)}),
  }};
}

Table1Schema MakeSpeedLimitSchema() {
  return Table1Schema{{
      tdf::CapeCodPattern({Flat(65.0), Flat(65.0)}),
      tdf::CapeCodPattern({Flat(65.0), Flat(65.0)}),
      tdf::CapeCodPattern({Flat(40.0), Flat(40.0)}),
      tdf::CapeCodPattern({Flat(40.0), Flat(40.0)}),
  }};
}

void RegisterTable1Patterns(network::RoadNetwork* network) {
  for (tdf::CapeCodPattern& pattern : MakeTable1Schema().patterns) {
    network->AddPattern(std::move(pattern));
  }
}

}  // namespace capefp::gen
