#include "src/gen/suffolk_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/gen/table1_schema.h"
#include "src/tdf/speed_pattern.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace capefp::gen {

namespace {

using network::NodeId;
using network::RoadClass;

// Disjoint-set forest for the spanning-tree edge selection.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

struct LatticeKey {
  int x;
  int y;
  bool operator==(const LatticeKey& o) const { return x == o.x && y == o.y; }
};

struct LatticeKeyHash {
  size_t operator()(const LatticeKey& k) const {
    return static_cast<size_t>(k.x) * 1000003u ^ static_cast<size_t>(k.y);
  }
};

struct CandidateNode {
  geo::Point pos;
  int lx = 0;  // Lattice coordinates at half-suburb-spacing resolution.
  int ly = 0;
};

struct CandidateEdge {
  int a = 0;
  int b = 0;
};

}  // namespace

SuffolkOptions SuffolkOptions::Small() {
  SuffolkOptions o;
  o.extent_miles = 3.2;
  o.city_radius_miles = 0.8;
  o.suburb_spacing_miles = 0.3;
  o.target_segments = 0;  // Keep a fixed fraction of extra edges.
  o.num_highways = 4;
  o.highway_node_spacing_miles = 0.35;
  o.highway_inner_radius_miles = 0.25;
  return o;
}

SuffolkNetwork GenerateSuffolkNetwork(const SuffolkOptions& options) {
  CAPEFP_CHECK_GT(options.extent_miles, 0.0);
  CAPEFP_CHECK_GT(options.suburb_spacing_miles, 0.0);
  CAPEFP_CHECK_GT(options.city_radius_miles, 0.0);
  CAPEFP_CHECK_LT(options.city_radius_miles, options.extent_miles / 2.0);
  CAPEFP_CHECK_GE(options.num_highways, 0);

  util::Rng rng(options.seed);
  const geo::Point center{options.extent_miles / 2.0,
                          options.extent_miles / 2.0};
  const double h = options.suburb_spacing_miles / 2.0;  // Lattice resolution.
  const int lattice_dim = static_cast<int>(options.extent_miles / h) + 1;

  auto in_city = [&](const geo::Point& p) {
    return geo::EuclideanDistance(p, center) <= options.city_radius_miles;
  };

  // --- 1. Lattice nodes: fine inside the city (every lattice point), coarse
  // outside (even lattice points only), each kept with node_keep_prob and
  // jittered off the exact lattice.
  std::vector<CandidateNode> nodes;
  std::unordered_map<LatticeKey, int, LatticeKeyHash> by_lattice;
  for (int ly = 0; ly <= lattice_dim; ++ly) {
    for (int lx = 0; lx <= lattice_dim; ++lx) {
      const geo::Point ideal{lx * h, ly * h};
      if (ideal.x > options.extent_miles || ideal.y > options.extent_miles) {
        continue;
      }
      const bool fine = in_city(ideal);
      if (!fine && ((lx | ly) & 1) != 0) continue;  // Coarse grid only.
      if (!rng.NextBool(options.node_keep_prob)) continue;
      const double jitter = 0.18 * h;
      geo::Point pos{ideal.x + rng.NextDouble(-jitter, jitter),
                     ideal.y + rng.NextDouble(-jitter, jitter)};
      pos.x = std::clamp(pos.x, 0.0, options.extent_miles);
      pos.y = std::clamp(pos.y, 0.0, options.extent_miles);
      const int id = static_cast<int>(nodes.size());
      nodes.push_back({pos, lx, ly});
      by_lattice[{lx, ly}] = id;
    }
  }
  CAPEFP_CHECK_GT(nodes.size(), 2u) << "degenerate generator options";

  // --- 2. Candidate grid edges: each node connects to the nearest existing
  // node in +x and +y (1 or 2 lattice steps away, bridging fine/coarse).
  std::vector<CandidateEdge> candidates;
  auto find_at = [&](int lx, int ly) -> int {
    auto it = by_lattice.find({lx, ly});
    return it == by_lattice.end() ? -1 : it->second;
  };
  for (int id = 0; id < static_cast<int>(nodes.size()); ++id) {
    const CandidateNode& n = nodes[static_cast<size_t>(id)];
    for (int axis = 0; axis < 2; ++axis) {
      for (int step = 1; step <= 2; ++step) {
        const int lx = n.lx + (axis == 0 ? step : 0);
        const int ly = n.ly + (axis == 1 ? step : 0);
        const int other = find_at(lx, ly);
        if (other >= 0) {
          candidates.push_back({id, other});
          break;
        }
      }
    }
  }

  // --- 3. Highways: radial chains of dedicated nodes with periodic ramps
  // onto the grid.
  struct HighwaySegment {
    int a;
    int b;          // b is closer to the center than a.
  };
  std::vector<HighwaySegment> highway_segments;
  std::vector<CandidateEdge> ramp_edges;
  std::vector<bool> is_highway_node(nodes.size(), false);
  const double max_radius = options.extent_miles / 2.0 - h;
  for (int hw = 0; hw < options.num_highways; ++hw) {
    const double angle =
        (2.0 * std::numbers::pi * hw) / options.num_highways +
        rng.NextDouble(-0.08, 0.08);
    int prev = -1;
    int steps_since_ramp = 0;
    for (double r = options.highway_inner_radius_miles; r <= max_radius;
         r += options.highway_node_spacing_miles) {
      const geo::Point pos{center.x + r * std::cos(angle),
                           center.y + r * std::sin(angle)};
      const int id = static_cast<int>(nodes.size());
      nodes.push_back(
          {pos, static_cast<int>(pos.x / h), static_cast<int>(pos.y / h)});
      is_highway_node.push_back(true);
      if (prev >= 0) highway_segments.push_back({id, prev});
      // Ramp: connect to the nearest grid node every ~2 highway nodes.
      if (++steps_since_ramp >= 2 || prev < 0) {
        steps_since_ramp = 0;
        int best = -1;
        double best_d = 3.0 * h;
        const int clx = static_cast<int>(pos.x / h);
        const int cly = static_cast<int>(pos.y / h);
        for (int dy = -2; dy <= 2; ++dy) {
          for (int dx = -2; dx <= 2; ++dx) {
            const int cand = find_at(clx + dx, cly + dy);
            if (cand < 0) continue;
            const double d = geo::EuclideanDistance(
                pos, nodes[static_cast<size_t>(cand)].pos);
            if (d < best_d && d > 1e-6) {
              best_d = d;
              best = cand;
            }
          }
        }
        if (best >= 0) ramp_edges.push_back({id, best});
      }
      prev = id;
    }
  }

  // --- 4. Connectivity: BFS over all candidate edges, keep the largest
  // component.
  std::vector<std::vector<int>> adj(nodes.size());
  auto add_adj = [&](int a, int b) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  };
  for (const CandidateEdge& e : candidates) add_adj(e.a, e.b);
  for (const CandidateEdge& e : ramp_edges) add_adj(e.a, e.b);
  for (const HighwaySegment& s : highway_segments) add_adj(s.a, s.b);

  std::vector<int> component(nodes.size(), -1);
  int best_component = -1;
  size_t best_size = 0;
  int num_components = 0;
  for (int start = 0; start < static_cast<int>(nodes.size()); ++start) {
    if (component[static_cast<size_t>(start)] >= 0) continue;
    const int comp = num_components++;
    std::vector<int> queue = {start};
    component[static_cast<size_t>(start)] = comp;
    size_t size = 0;
    while (!queue.empty()) {
      const int u = queue.back();
      queue.pop_back();
      ++size;
      for (int v : adj[static_cast<size_t>(u)]) {
        if (component[static_cast<size_t>(v)] < 0) {
          component[static_cast<size_t>(v)] = comp;
          queue.push_back(v);
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_component = comp;
    }
  }

  // Renumber surviving nodes.
  std::vector<NodeId> new_id(nodes.size(), network::kInvalidNode);
  tdf::Calendar calendar = tdf::Calendar::StandardWeek(kWorkday, kNonWorkday);
  SuffolkNetwork result{network::RoadNetwork(std::move(calendar)), center,
                        options.city_radius_miles};
  RegisterTable1Patterns(&result.network);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (component[i] == best_component) {
      new_id[i] = result.network.AddNode(nodes[i].pos);
    }
  }

  // --- 5. Edge selection: spanning tree always; extras up to the segment
  // budget; highway chains and ramps always.
  auto alive = [&](const CandidateEdge& e) {
    return new_id[static_cast<size_t>(e.a)] != network::kInvalidNode &&
           new_id[static_cast<size_t>(e.b)] != network::kInvalidNode;
  };
  // Shuffle so the kept extras are an unbiased sample.
  for (size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.NextBounded(i)]);
  }
  UnionFind uf(nodes.size());
  // Highway/ramp edges claim their tree slots first so chains stay intact.
  std::vector<CandidateEdge> always;
  for (const HighwaySegment& s : highway_segments) {
    always.push_back({s.a, s.b});
  }
  for (const CandidateEdge& e : ramp_edges) always.push_back(e);
  for (const CandidateEdge& e : always) {
    if (alive(e)) uf.Union(e.a, e.b);
  }
  std::vector<CandidateEdge> tree;
  std::vector<CandidateEdge> extra;
  for (const CandidateEdge& e : candidates) {
    if (!alive(e)) continue;
    if (uf.Union(e.a, e.b)) {
      tree.push_back(e);
    } else {
      extra.push_back(e);
    }
  }
  size_t extras_to_keep;
  if (options.target_segments > 0) {
    const size_t base = tree.size() + always.size();
    extras_to_keep =
        static_cast<size_t>(options.target_segments) > base
            ? std::min(extra.size(),
                       static_cast<size_t>(options.target_segments) - base)
            : 0;
  } else {
    extras_to_keep = static_cast<size_t>(0.45 * static_cast<double>(extra.size()));
  }

  auto class_for_local = [&](const geo::Point& a, const geo::Point& b) {
    const geo::Point mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
    return in_city(mid) ? RoadClass::kLocalInCity
                        : RoadClass::kLocalOutsideCity;
  };
  auto add_local = [&](const CandidateEdge& e) {
    const NodeId a = new_id[static_cast<size_t>(e.a)];
    const NodeId b = new_id[static_cast<size_t>(e.b)];
    const geo::Point& pa = result.network.location(a);
    const geo::Point& pb = result.network.location(b);
    const double dist = geo::EuclideanDistance(pa, pb);
    if (dist <= 1e-9) return;
    const RoadClass rc = class_for_local(pa, pb);
    result.network.AddBidirectionalEdge(
        a, b, dist, static_cast<network::PatternId>(rc), rc);
  };
  for (const CandidateEdge& e : tree) add_local(e);
  for (size_t i = 0; i < extras_to_keep; ++i) add_local(extra[i]);
  for (const CandidateEdge& e : ramp_edges) {
    if (alive(e)) add_local(e);
  }
  for (const HighwaySegment& s : highway_segments) {
    if (!alive({s.a, s.b})) continue;
    const NodeId outer = new_id[static_cast<size_t>(s.a)];
    const NodeId inner = new_id[static_cast<size_t>(s.b)];
    const double dist = geo::EuclideanDistance(
        result.network.location(outer), result.network.location(inner));
    if (dist <= 1e-9) continue;
    // Towards the center: inbound; away: outbound.
    result.network.AddEdge(
        outer, inner, dist,
        static_cast<network::PatternId>(RoadClass::kInboundHighway),
        RoadClass::kInboundHighway);
    result.network.AddEdge(
        inner, outer, dist,
        static_cast<network::PatternId>(RoadClass::kOutboundHighway),
        RoadClass::kOutboundHighway);
  }
  return result;
}

}  // namespace capefp::gen
