// Decision-support helpers on top of the profile queries — the answers an
// application actually shows a driver once it has the lower border.
#ifndef CAPEFP_CORE_ANALYSIS_H_
#define CAPEFP_CORE_ANALYSIS_H_

#include <vector>

#include "src/network/road_network.h"
#include "src/tdf/pwl_function.h"

namespace capefp::core {

// A maximal stretch of departure times whose travel time stays within a
// tolerance of the global optimum.
struct DepartureWindow {
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  // Worst travel time inside the window, in minutes.
  double worst_travel_minutes = 0.0;
};

// Given an allFP lower border, returns the maximal sub-intervals where the
// travel time is within `slack_fraction` of the border minimum (e.g. 0.1 =
// at most 10% slower than the best possible departure). Windows are
// disjoint, ordered, and non-empty (the ArgMin always qualifies).
std::vector<DepartureWindow> RecommendDepartures(
    const tdf::PwlFunction& border, double slack_fraction);

// Reachability classification for an isochrone query.
struct Isochrone {
  // Nodes whose fastest travel time is <= budget for EVERY departure in
  // the window (guaranteed reachable in time).
  std::vector<network::NodeId> always;
  // Nodes reachable within budget for SOME departure but not all.
  std::vector<network::NodeId> sometimes;
};

// "Where can I be within `budget_minutes`, leaving between window_lo and
// window_hi?" — classifies every node of `network` using single-source
// profile envelopes. Both vectors are sorted by node id.
Isochrone ComputeIsochrone(const network::RoadNetwork& network,
                           network::NodeId source, double window_lo,
                           double window_hi, double budget_minutes);

}  // namespace capefp::core

#endif  // CAPEFP_CORE_ANALYSIS_H_
