#include "src/core/lower_border.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace capefp::core {

using tdf::kTimeEps;
using tdf::PwlFunction;

LowerBorder::LowerBorder(double lo, double hi, tdf::PwlArena* arena)
    : lo_(lo), hi_(hi), arena_(arena), border_(arena), scratch_fn_(arena) {
  CAPEFP_CHECK_LE(lo, hi);
}

const PwlFunction& LowerBorder::function() const {
  CAPEFP_CHECK(!empty());
  return border_;
}

double LowerBorder::MaxValue() const { return function().MaxValue(); }

double LowerBorder::Value(double l) const { return function().Value(l); }

void LowerBorder::Merge(const PwlFunction& f, int64_t tag) {
  CAPEFP_CHECK(std::fabs(f.domain_lo() - lo_) <= kTimeEps &&
               std::fabs(f.domain_hi() - hi_) <= kTimeEps)
      << "merged function must cover the query interval";
  if (empty()) {
    border_ = f;
    has_border_ = true;
    pieces_.clear();
    pieces_.push_back({lo_, hi_, tag});
    return;
  }

  // Tag of the existing partition at leaving time `l`.
  auto old_tag_at = [this](double l) {
    for (const Piece& p : pieces_) {
      if (l <= p.hi) return p.tag;
    }
    return pieces_.back().tag;
  };

  tdf::ScratchDoubles grid_scratch(arena_);
  std::vector<double>& grid = *grid_scratch;
  tdf::MergedGridInto(border_, f, &grid, arena_);
  scratch_pieces_.clear();
  std::vector<Piece>& merged = scratch_pieces_;
  for (size_t i = 0; i + 1 < grid.size(); ++i) {
    const double a = grid[i];
    const double b = grid[i + 1];
    const double mid = 0.5 * (a + b);
    // Strictly-below wins; ties keep the earlier path.
    const bool takes_over = f.Value(mid) < border_.Value(mid) - kTimeEps;
    const int64_t winner = takes_over ? tag : old_tag_at(mid);
    if (!merged.empty() && merged.back().tag == winner) {
      merged.back().hi = b;
    } else {
      merged.push_back({a, b, winner});
    }
  }
  if (merged.empty()) {
    // Degenerate single-instant interval.
    const bool takes_over = f.Value(lo_) < border_.Value(lo_) - kTimeEps;
    merged.push_back({lo_, hi_, takes_over ? tag : pieces_.front().tag});
  }
  std::swap(pieces_, scratch_pieces_);
  PwlFunction::LowerEnvelopeInto(border_, f, &scratch_fn_);
  border_ = std::move(scratch_fn_);
}

}  // namespace capefp::core
