#include "src/core/reverse_profile_search.h"

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::EdgeId;
using network::NodeId;
using tdf::PwlFunction;

struct QueueEntry {
  double key;
  int64_t label;
  bool operator>(const QueueEntry& o) const { return key > o.key; }
};

using MinHeap =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

ReverseProfileSearch::ReverseProfileSearch(
    const network::RoadNetwork* network, TravelTimeEstimator* estimator,
    const ProfileSearchOptions& options)
    : network_(network), estimator_(estimator), options_(options) {
  CAPEFP_CHECK(network != nullptr);
  CAPEFP_CHECK(estimator != nullptr);
}

std::vector<NodeId> ReverseProfileSearch::ReconstructPath(
    const std::vector<Label>& labels, int64_t label_index) const {
  // Parents point towards the target, so walking them yields the path in
  // source..target order already.
  std::vector<NodeId> path;
  for (int64_t at = label_index; at >= 0;
       at = labels[static_cast<size_t>(at)].parent) {
    path.push_back(labels[static_cast<size_t>(at)].node);
  }
  return path;
}

LowerBorder ReverseProfileSearch::Run(const ReverseProfileQuery& query,
                                      bool stop_at_source,
                                      std::vector<Label>* labels,
                                      SearchStats* stats,
                                      int64_t* first_source_label) {
  CAPEFP_CHECK_LE(query.arrive_lo, query.arrive_hi);
  CAPEFP_CHECK_GE(query.source, 0);
  CAPEFP_CHECK_GE(query.target, 0);
  *first_source_label = -1;

  LowerBorder border(query.arrive_lo, query.arrive_hi);
  MinHeap queue;
  std::unordered_map<NodeId, PwlFunction> expanded_envelope;
  std::unordered_set<NodeId> distinct_nodes;

  labels->push_back({PwlFunction::Constant(query.arrive_lo, query.arrive_hi,
                                           0.0),
                     query.target, -1});
  queue.push({estimator_->Estimate(query.target), 0});
  ++stats->pushes;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (!border.empty() && top.key >= border.MaxValue() - tdf::kTimeEps) {
      break;
    }
    const NodeId node = (*labels)[static_cast<size_t>(top.label)].node;

    if (node == query.source) {
      border.Merge((*labels)[static_cast<size_t>(top.label)].travel_time,
                   top.label);
      if (*first_source_label < 0) *first_source_label = top.label;
      if (stop_at_source) break;
      continue;
    }

    if (options_.dominance_pruning) {
      const PwlFunction& tt =
          (*labels)[static_cast<size_t>(top.label)].travel_time;
      auto env = expanded_envelope.find(node);
      if (env != expanded_envelope.end()) {
        if (PwlFunction::DominatesOrEqual(tt, env->second)) {
          ++stats->pruned_dominated;
          continue;
        }
        env->second = PwlFunction::Min(env->second, tt);
      } else {
        expanded_envelope.emplace(node, tt);
      }
    }

    ++stats->expansions;
    distinct_nodes.insert(node);
    if (options_.max_expansions > 0 &&
        stats->expansions >= options_.max_expansions) {
      stats->hit_expansion_cap = true;
      break;
    }

    for (EdgeId edge_id : network_->InEdges(node)) {
      const network::Edge& edge = network_->edge(edge_id);
      const PwlFunction& path_rt =
          (*labels)[static_cast<size_t>(top.label)].travel_time;
      PwlFunction combined = tdf::ExpandPathReverse(
          path_rt, network_->SpeedView(edge_id), edge.distance_miles);
      const double estimate = estimator_->Estimate(edge.from);
      const double key = combined.MinValue() + estimate;
      if (!border.empty() && key >= border.MaxValue() - tdf::kTimeEps) {
        ++stats->pruned_bound;
        continue;
      }
      if (options_.pointwise_bound_pruning && !border.empty() &&
          PwlFunction::DominatesOrEqual(combined.Shifted(estimate),
                                        border.function())) {
        ++stats->pruned_bound;
        continue;
      }
      labels->push_back({std::move(combined), edge.from, top.label});
      queue.push({key, static_cast<int64_t>(labels->size()) - 1});
      ++stats->pushes;
    }
  }
  stats->distinct_nodes = static_cast<int64_t>(distinct_nodes.size());
  return border;
}

ReverseSingleFpResult ReverseProfileSearch::RunSingleFp(
    const ReverseProfileQuery& query) {
  ReverseSingleFpResult result;
  std::vector<Label> labels;
  int64_t first_source = -1;
  (void)Run(query, /*stop_at_source=*/true, &labels, &result.stats,
            &first_source);
  if (first_source < 0) return result;
  result.found = true;
  const Label& label = labels[static_cast<size_t>(first_source)];
  result.path = ReconstructPath(labels, first_source);
  result.travel_time = label.travel_time;
  result.best_arrive_time = label.travel_time.ArgMin();
  result.best_travel_minutes = label.travel_time.MinValue();
  result.best_leave_time = result.best_arrive_time - result.best_travel_minutes;
  return result;
}

ReverseAllFpResult ReverseProfileSearch::RunAllFp(
    const ReverseProfileQuery& query) {
  ReverseAllFpResult result;
  std::vector<Label> labels;
  int64_t first_source = -1;
  const LowerBorder border = Run(query, /*stop_at_source=*/false, &labels,
                                 &result.stats, &first_source);
  if (border.empty()) return result;
  result.found = true;
  result.border = border.function();
  for (const LowerBorder::Piece& piece : border.pieces()) {
    result.pieces.push_back(
        {piece.lo, piece.hi, ReconstructPath(labels, piece.tag)});
  }
  std::vector<ReverseAllFpPiece> merged;
  for (ReverseAllFpPiece& piece : result.pieces) {
    if (!merged.empty() && merged.back().path == piece.path) {
      merged.back().arrive_hi = piece.arrive_hi;
    } else {
      merged.push_back(std::move(piece));
    }
  }
  result.pieces = std::move(merged);
  return result;
}

}  // namespace capefp::core
