#include "src/core/reverse_profile_search.h"

#include <algorithm>

#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::EdgeId;
using network::NodeId;
using tdf::PwlFunction;

}  // namespace

ReverseProfileSearch::ReverseProfileSearch(
    const network::RoadNetwork* network, TravelTimeEstimator* estimator,
    const ProfileSearchOptions& options, Scratch* scratch)
    : network_(network),
      estimator_(estimator),
      options_(options),
      scratch_(scratch) {
  CAPEFP_CHECK(network != nullptr);
  CAPEFP_CHECK(estimator != nullptr);
}

std::vector<NodeId> ReverseProfileSearch::ReconstructPath(
    const std::vector<Label>& labels, int64_t label_index) const {
  // Parents point towards the target, so walking them yields the path in
  // source..target order already.
  std::vector<NodeId> path;
  for (int64_t at = label_index; at >= 0;
       at = labels[static_cast<size_t>(at)].parent) {
    path.push_back(labels[static_cast<size_t>(at)].node);
  }
  return path;
}

LowerBorder ReverseProfileSearch::Run(const ReverseProfileQuery& query,
                                      bool stop_at_source, Scratch& s,
                                      SearchStats* stats,
                                      int64_t* first_source_label) {
  CAPEFP_CHECK_LE(query.arrive_lo, query.arrive_hi);
  CAPEFP_CHECK_GE(query.source, 0);
  CAPEFP_CHECK_GE(query.target, 0);
  *first_source_label = -1;

  LowerBorder border(query.arrive_lo, query.arrive_hi, &s.arena);
  std::vector<Label>& labels = s.labels;
  std::vector<HeapEntry>& heap = s.heap;
  heap.clear();
  const size_t num_nodes = network_->num_nodes();
  s.envelope.BeginQuery(num_nodes);
  s.seen.BeginQuery(num_nodes);

  labels.push_back({PwlFunction::Constant(query.arrive_lo, query.arrive_hi,
                                          0.0),
                    query.target, -1});
  heap.push_back({estimator_->Estimate(query.target), 0});
  std::push_heap(heap.begin(), heap.end(), std::greater<>());
  ++stats->pushes;

  while (!heap.empty()) {
    const HeapEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    heap.pop_back();
    if (!border.empty() && top.key >= border.MaxValue() - tdf::kTimeEps) {
      break;
    }
    const NodeId node = labels[static_cast<size_t>(top.label)].node;

    if (node == query.source) {
      border.Merge(labels[static_cast<size_t>(top.label)].travel_time,
                   top.label);
      if (*first_source_label < 0) *first_source_label = top.label;
      if (stop_at_source) break;
      continue;
    }

    if (options_.dominance_pruning) {
      const PwlFunction& tt =
          labels[static_cast<size_t>(top.label)].travel_time;
      PwlFunction* env = s.envelope.Find(node);
      if (env != nullptr) {
        if (PwlFunction::DominatesOrEqual(tt, *env, tdf::kTimeEps,
                                          &s.arena)) {
          ++stats->pruned_dominated;
          continue;
        }
        PwlFunction::LowerEnvelopeInto(*env, tt, &s.envelope_tmp);
        *env = std::move(s.envelope_tmp);
      } else {
        *s.envelope.Insert(node, &s.arena) = tt;
      }
    }

    ++stats->expansions;
    if (s.seen.Insert(node)) ++stats->distinct_nodes;
    if (options_.max_expansions > 0 &&
        stats->expansions >= options_.max_expansions) {
      stats->hit_expansion_cap = true;
      break;
    }

    for (EdgeId edge_id : network_->InEdges(node)) {
      const network::Edge& edge = network_->edge(edge_id);
      // Corridor restriction (shared NodeFilter hook; see profile_search.h).
      if (!s.filter.Allows(edge.from)) {
        ++stats->pruned_filtered;
        continue;
      }
      // NOTE: path_rt may dangle after labels.push_back below; re-read.
      const PwlFunction& path_rt =
          labels[static_cast<size_t>(top.label)].travel_time;
      tdf::ExpandPathReverseInto(path_rt, network_->SpeedView(edge_id),
                                 edge.distance_miles, &s.edge_fn,
                                 &s.combined);
      const double estimate = estimator_->Estimate(edge.from);
      const double key = s.combined.MinValue() + estimate;
      if (!border.empty() && key >= border.MaxValue() - tdf::kTimeEps) {
        ++stats->pruned_bound;
        continue;
      }
      if (options_.pointwise_bound_pruning && !border.empty()) {
        s.combined.ShiftedInto(estimate, &s.shifted);
        if (PwlFunction::DominatesOrEqual(s.shifted, border.function(),
                                          tdf::kTimeEps, &s.arena)) {
          ++stats->pruned_bound;
          continue;
        }
      }
      labels.push_back({std::move(s.combined), edge.from, top.label});
      heap.push_back({key, static_cast<int64_t>(labels.size()) - 1});
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
      ++stats->pushes;
    }
  }
  return border;
}

ReverseSingleFpResult ReverseProfileSearch::RunSingleFp(
    const ReverseProfileQuery& query) {
  ReverseSingleFpResult result;
  Scratch local_scratch;
  Scratch& s = scratch_ != nullptr ? *scratch_ : local_scratch;
  s.labels.clear();
  int64_t first_source = -1;
  (void)Run(query, /*stop_at_source=*/true, s, &result.stats, &first_source);
  if (first_source < 0) return result;
  result.found = true;
  const Label& label = s.labels[static_cast<size_t>(first_source)];
  result.path = ReconstructPath(s.labels, first_source);
  result.travel_time = label.travel_time;
  result.best_arrive_time = label.travel_time.ArgMin();
  result.best_travel_minutes = label.travel_time.MinValue();
  result.best_leave_time = result.best_arrive_time - result.best_travel_minutes;
  return result;
}

ReverseAllFpResult ReverseProfileSearch::RunAllFp(
    const ReverseProfileQuery& query) {
  ReverseAllFpResult result;
  Scratch local_scratch;
  Scratch& s = scratch_ != nullptr ? *scratch_ : local_scratch;
  s.labels.clear();
  int64_t first_source = -1;
  {
    const LowerBorder border = Run(query, /*stop_at_source=*/false, s,
                                   &result.stats, &first_source);
    if (border.empty()) return result;
    result.found = true;
    result.border = border.function();
    for (const LowerBorder::Piece& piece : border.pieces()) {
      result.pieces.push_back(
          {piece.lo, piece.hi, ReconstructPath(s.labels, piece.tag)});
    }
  }
  std::vector<ReverseAllFpPiece> merged;
  for (ReverseAllFpPiece& piece : result.pieces) {
    if (!merged.empty() && merged.back().path == piece.path) {
      merged.back().arrive_hi = piece.arrive_hi;
    } else {
      merged.push_back(std::move(piece));
    }
  }
  result.pieces = std::move(merged);
  return result;
}

}  // namespace capefp::core
