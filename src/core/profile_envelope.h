// Single-source / single-target travel-time profiles.
//
// A label-correcting profile search (Dijkstra with piecewise-linear labels
// and per-node lower envelopes) that computes, for EVERY reachable node,
// the fastest-travel-time function from a source (or to a target) over a
// leaving-time window — optionally restricted to a node subset.
//
// These are the building blocks of the hierarchical index (§6.1 of the
// paper sketches scaling via hierarchical network partitioning): the
// envelope from a fragment entry to each fragment exit, restricted to the
// fragment, is exactly the overlay edge function. They also serve as an
// independent oracle for cross-validating ProfileSearch in tests.
#ifndef CAPEFP_CORE_PROFILE_ENVELOPE_H_
#define CAPEFP_CORE_PROFILE_ENVELOPE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/network/road_network.h"
#include "src/tdf/pwl_function.h"

namespace capefp::core {

struct EnvelopeOptions {
  // If set, only nodes with allowed[node] == true participate (edges must
  // have both endpoints allowed). Size must equal the network node count.
  const std::vector<bool>* allowed = nullptr;
  // Safety cap on label expansions (<= 0: unlimited).
  int64_t max_expansions = 0;
};

// For every node reachable from `source`, the lower envelope of travel-time
// functions over leaving times [window_lo, window_hi] at `source`.
// The source itself maps to the zero function.
std::unordered_map<network::NodeId, tdf::PwlFunction> SingleSourceProfile(
    const network::RoadNetwork& network, network::NodeId source,
    double window_lo, double window_hi, const EnvelopeOptions& options = {});

// For every node that can reach `target`, the lower envelope of travel-time
// functions *of the arrival time at target* over [window_lo, window_hi].
std::unordered_map<network::NodeId, tdf::PwlFunction> SingleTargetProfile(
    const network::RoadNetwork& network, network::NodeId target,
    double window_lo, double window_hi, const EnvelopeOptions& options = {});

// Converts an arrival-anchored profile R (travel time as a function of the
// arrival time a at the target) into the equivalent departure-anchored
// function τ(l) with l = a − R(a). Returns nullopt if the departure domain
// degenerates to a point.
std::optional<tdf::PwlFunction> DepartureFunctionFromArrival(
    const tdf::PwlFunction& arrival_fn);

}  // namespace capefp::core

#endif  // CAPEFP_CORE_PROFILE_ENVELOPE_H_
