// Lower-bound travel-time estimators (§4 naive, §5 boundary-node).
//
// A* correctness requires the estimate to lower-bound the true travel time
// for every leaving instant (§1). Both estimators here are time-independent
// scalars per node: the naive one divides the Euclidean distance by the
// network's maximum speed; the boundary-node one (boundary_estimator.h)
// adds a precomputed graph-distance bound.
#ifndef CAPEFP_CORE_ESTIMATOR_H_
#define CAPEFP_CORE_ESTIMATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/network/accessor.h"

namespace capefp::core {

// Reusable dense per-node estimate cache, epoch-stamped so successive
// queries reuse the O(num_nodes) arrays without clearing them: an entry is
// valid only when its stamp equals the current epoch. Owned by a per-worker
// scratch (ProfileSearch::Scratch) and handed to one estimator at a time;
// never shared across concurrently running estimators.
struct EstimatorScratch {
  std::vector<uint64_t> stamp;
  std::vector<double> value;
  uint64_t epoch = 0;

  // Starts a new query over a network of `num_nodes` nodes, invalidating
  // all cached estimates in O(1).
  void BeginQuery(size_t num_nodes) {
    if (stamp.size() < num_nodes) {
      stamp.resize(num_nodes, 0);
      value.resize(num_nodes, 0.0);
    }
    ++epoch;
  }
};

// Estimates, for a fixed anchor node, a lower bound on the travel time (in
// minutes) between `node` and the anchor, valid for every departure
// instant. Forward searches anchor at the query target (estimate of
// node ⇒ target); reverse searches anchor at the source (source ⇒ node).
//
// Implementations may cache per-node results; one estimator instance serves
// one query.
class TravelTimeEstimator {
 public:
  virtual ~TravelTimeEstimator() = default;

  // Must return 0 for the anchor itself and never exceed the true fastest
  // travel time.
  virtual double Estimate(network::NodeId node) = 0;
};

// The paper's naive estimator (naiveLB): Euclidean distance to the anchor
// divided by the maximum speed in the network.
class EuclideanEstimator : public TravelTimeEstimator {
 public:
  // `accessor` must outlive the estimator. `scratch` (optional) replaces
  // the internal per-node cache map with a reusable epoch-stamped array;
  // it must outlive the estimator and not be shared with a concurrently
  // live estimator.
  EuclideanEstimator(network::NetworkAccessor* accessor,
                     network::NodeId anchor,
                     EstimatorScratch* scratch = nullptr);

  double Estimate(network::NodeId node) override;

 private:
  network::NetworkAccessor* accessor_;
  geo::Point anchor_location_;
  double vmax_;
  EstimatorScratch* scratch_;
  std::unordered_map<network::NodeId, double> cache_;
};

// Trivial estimator (always 0) — degrades A* to Dijkstra; used as an
// ablation baseline and by tests.
class ZeroEstimator : public TravelTimeEstimator {
 public:
  double Estimate(network::NodeId) override { return 0.0; }
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_ESTIMATOR_H_
