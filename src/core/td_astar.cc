#include "src/core/td_astar.h"

#include <algorithm>
#include <limits>

#include "src/obs/trace.h"
#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::NeighborEdge;
using network::NodeId;

}  // namespace

TdAStarResult TdAStar(network::NetworkAccessor* accessor, NodeId source,
                      NodeId target, double leave_time,
                      TravelTimeEstimator* estimator, obs::Trace* trace,
                      TdAStarScratch* scratch) {
  CAPEFP_CHECK(accessor != nullptr);
  CAPEFP_CHECK(estimator != nullptr);
  TdAStarResult result;
  obs::Trace::Span span = trace != nullptr ? trace->StartSpan("td_astar")
                                           : obs::Trace::Span();

  TdAStarScratch local_scratch;
  TdAStarScratch& s = scratch != nullptr ? *scratch : local_scratch;
  s.BeginQuery(accessor->num_nodes());
  std::vector<TdAStarQueueEntry>& heap = s.heap;
  heap.clear();

  // An entry's node is stamped iff it has ever been pushed, so the stamp
  // check below replicates the map lookup of the pre-scratch version
  // exactly (a pushed node is always present in the map).
  s.stamp[static_cast<size_t>(source)] = s.epoch;
  s.best_arrival[static_cast<size_t>(source)] = leave_time;
  heap.push_back({leave_time + estimator->Estimate(source), leave_time,
                  source});
  std::push_heap(heap.begin(), heap.end(), std::greater<>());

  while (!heap.empty()) {
    const TdAStarQueueEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    heap.pop_back();
    const auto top_i = static_cast<size_t>(top.node);
    if (s.stamp[top_i] == s.epoch &&
        top.arrival > s.best_arrival[top_i] + 1e-12) {
      continue;  // Stale entry.
    }
    ++result.expanded_nodes;
    if (top.node == target) {
      result.found = true;
      result.arrival_time = top.arrival;
      result.travel_time_minutes = top.arrival - leave_time;
      // Reconstruct source..target.
      NodeId at = target;
      result.path.push_back(at);
      while (at != source) {
        at = s.parent[static_cast<size_t>(at)];
        result.path.push_back(at);
      }
      std::reverse(result.path.begin(), result.path.end());
      if (span.active()) {
        span.AddAttr("expanded_nodes",
                     static_cast<double>(result.expanded_nodes));
      }
      return result;
    }
    accessor->GetSuccessors(top.node, &s.neighbors);
    for (const NeighborEdge& edge : s.neighbors) {
      // Corridor restriction (shared NodeFilter hook; see node_filter.h).
      if (!s.filter.Allows(edge.to)) continue;
      const tdf::EdgeSpeedView speed = accessor->SpeedView(edge.pattern);
      const double arrival =
          top.arrival +
          tdf::TravelTime(speed, edge.distance_miles, top.arrival);
      const auto to_i = static_cast<size_t>(edge.to);
      if (s.stamp[to_i] != s.epoch ||
          arrival < s.best_arrival[to_i] - 1e-12) {
        s.stamp[to_i] = s.epoch;
        s.best_arrival[to_i] = arrival;
        s.parent[to_i] = top.node;
        heap.push_back({arrival + estimator->Estimate(edge.to), arrival,
                        edge.to});
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
      }
    }
  }
  if (span.active()) {
    span.AddAttr("expanded_nodes",
                 static_cast<double>(result.expanded_nodes));
  }
  return result;  // Not found.
}

double EvaluatePathTravelTime(network::NetworkAccessor* accessor,
                              const std::vector<NodeId>& path,
                              double leave_time) {
  CAPEFP_CHECK(!path.empty());
  double now = leave_time;
  std::vector<NeighborEdge> neighbors;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    accessor->GetSuccessors(path[i], &neighbors);
    const NeighborEdge* chosen = nullptr;
    double best = std::numeric_limits<double>::infinity();
    for (const NeighborEdge& edge : neighbors) {
      if (edge.to != path[i + 1]) continue;
      // Parallel edges: take the one fastest right now.
      const double tt = tdf::TravelTime(accessor->SpeedView(edge.pattern),
                                        edge.distance_miles, now);
      if (tt < best) {
        best = tt;
        chosen = &edge;
      }
    }
    CAPEFP_CHECK(chosen != nullptr)
        << "path edge " << path[i] << "->" << path[i + 1] << " not in network";
    now += best;
  }
  return now - leave_time;
}

}  // namespace capefp::core
