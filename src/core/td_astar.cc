#include "src/core/td_astar.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "src/obs/trace.h"
#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::NeighborEdge;
using network::NodeId;

struct QueueEntry {
  double priority;  // arrival + estimate.
  double arrival;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

}  // namespace

TdAStarResult TdAStar(network::NetworkAccessor* accessor, NodeId source,
                      NodeId target, double leave_time,
                      TravelTimeEstimator* estimator, obs::Trace* trace) {
  CAPEFP_CHECK(accessor != nullptr);
  CAPEFP_CHECK(estimator != nullptr);
  TdAStarResult result;
  obs::Trace::Span span = trace != nullptr ? trace->StartSpan("td_astar")
                                           : obs::Trace::Span();

  std::unordered_map<NodeId, double> best_arrival;
  std::unordered_map<NodeId, NodeId> parent;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  best_arrival[source] = leave_time;
  queue.push({leave_time + estimator->Estimate(source), leave_time, source});

  std::vector<NeighborEdge> neighbors;
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    auto it = best_arrival.find(top.node);
    if (it != best_arrival.end() && top.arrival > it->second + 1e-12) {
      continue;  // Stale entry.
    }
    ++result.expanded_nodes;
    if (top.node == target) {
      result.found = true;
      result.arrival_time = top.arrival;
      result.travel_time_minutes = top.arrival - leave_time;
      // Reconstruct source..target.
      NodeId at = target;
      result.path.push_back(at);
      while (at != source) {
        at = parent.at(at);
        result.path.push_back(at);
      }
      std::reverse(result.path.begin(), result.path.end());
      if (span.active()) {
        span.AddAttr("expanded_nodes",
                     static_cast<double>(result.expanded_nodes));
      }
      return result;
    }
    accessor->GetSuccessors(top.node, &neighbors);
    for (const NeighborEdge& edge : neighbors) {
      const tdf::EdgeSpeedView speed = accessor->SpeedView(edge.pattern);
      const double arrival =
          top.arrival +
          tdf::TravelTime(speed, edge.distance_miles, top.arrival);
      auto best = best_arrival.find(edge.to);
      if (best == best_arrival.end() || arrival < best->second - 1e-12) {
        best_arrival[edge.to] = arrival;
        parent[edge.to] = top.node;
        queue.push({arrival + estimator->Estimate(edge.to), arrival,
                    edge.to});
      }
    }
  }
  if (span.active()) {
    span.AddAttr("expanded_nodes",
                 static_cast<double>(result.expanded_nodes));
  }
  return result;  // Not found.
}

double EvaluatePathTravelTime(network::NetworkAccessor* accessor,
                              const std::vector<NodeId>& path,
                              double leave_time) {
  CAPEFP_CHECK(!path.empty());
  double now = leave_time;
  std::vector<NeighborEdge> neighbors;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    accessor->GetSuccessors(path[i], &neighbors);
    const NeighborEdge* chosen = nullptr;
    double best = std::numeric_limits<double>::infinity();
    for (const NeighborEdge& edge : neighbors) {
      if (edge.to != path[i + 1]) continue;
      // Parallel edges: take the one fastest right now.
      const double tt = tdf::TravelTime(accessor->SpeedView(edge.pattern),
                                        edge.distance_miles, now);
      if (tt < best) {
        best = tt;
        chosen = &edge;
      }
    }
    CAPEFP_CHECK(chosen != nullptr)
        << "path edge " << path[i] << "->" << path[i + 1] << " not in network";
    now += best;
  }
  return now - leave_time;
}

}  // namespace capefp::core
