#include "src/core/profile_envelope.h"

#include <queue>
#include <utility>

#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::EdgeId;
using network::NodeId;
using network::RoadNetwork;
using tdf::PwlFunction;

struct QueueEntry {
  double key;
  size_t label;
  bool operator>(const QueueEntry& o) const { return key > o.key; }
};

struct Label {
  PwlFunction fn;
  NodeId node;
};

// Shared engine for both directions. `Expand` produces the function of the
// extended label; `NextEdges` enumerates the edges to relax.
template <typename NextEdges, typename Expand>
std::unordered_map<NodeId, PwlFunction> RunEnvelope(
    const RoadNetwork& net, NodeId origin, double window_lo,
    double window_hi, const EnvelopeOptions& options, NextEdges next_edges,
    Expand expand) {
  CAPEFP_CHECK_LE(window_lo, window_hi);
  if (options.allowed != nullptr) {
    CAPEFP_CHECK_EQ(options.allowed->size(), net.num_nodes());
    CAPEFP_CHECK((*options.allowed)[static_cast<size_t>(origin)]);
  }
  auto node_allowed = [&](NodeId node) {
    return options.allowed == nullptr ||
           (*options.allowed)[static_cast<size_t>(node)];
  };

  std::unordered_map<NodeId, PwlFunction> envelope;
  std::vector<Label> labels;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  labels.push_back({PwlFunction::Constant(window_lo, window_hi, 0.0),
                    origin});
  queue.push({0.0, 0});

  int64_t expansions = 0;
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const NodeId node = labels[top.label].node;
    {
      const PwlFunction& fn = labels[top.label].fn;
      auto it = envelope.find(node);
      if (it != envelope.end()) {
        if (PwlFunction::DominatesOrEqual(fn, it->second)) continue;
        it->second = PwlFunction::Min(it->second, fn);
      } else {
        envelope.emplace(node, fn);
      }
    }
    if (options.max_expansions > 0 &&
        ++expansions >= options.max_expansions) {
      break;
    }
    for (EdgeId edge_id : next_edges(node)) {
      const network::Edge& edge = net.edge(edge_id);
      const NodeId neighbor = edge.from == node ? edge.to : edge.from;
      if (!node_allowed(neighbor)) continue;
      PwlFunction extended = expand(labels[top.label].fn, edge_id);
      const double key = extended.MinValue();
      labels.push_back({std::move(extended), neighbor});
      queue.push({key, labels.size() - 1});
    }
  }
  return envelope;
}

}  // namespace

std::unordered_map<NodeId, PwlFunction> SingleSourceProfile(
    const RoadNetwork& net, NodeId source, double window_lo,
    double window_hi, const EnvelopeOptions& options) {
  return RunEnvelope(
      net, source, window_lo, window_hi, options,
      [&net](NodeId node) { return net.OutEdges(node); },
      [&net](const PwlFunction& fn, EdgeId edge_id) {
        return tdf::ExpandPath(fn, net.SpeedView(edge_id),
                               net.edge(edge_id).distance_miles);
      });
}

std::unordered_map<NodeId, PwlFunction> SingleTargetProfile(
    const RoadNetwork& net, NodeId target, double window_lo,
    double window_hi, const EnvelopeOptions& options) {
  return RunEnvelope(
      net, target, window_lo, window_hi, options,
      [&net](NodeId node) { return net.InEdges(node); },
      [&net](const PwlFunction& fn, EdgeId edge_id) {
        return tdf::ExpandPathReverse(fn, net.SpeedView(edge_id),
                                      net.edge(edge_id).distance_miles);
      });
}

std::optional<tdf::PwlFunction> DepartureFunctionFromArrival(
    const tdf::PwlFunction& arrival_fn) {
  std::vector<tdf::Breakpoint> points;
  points.reserve(arrival_fn.breakpoints().size());
  for (const tdf::Breakpoint& bp : arrival_fn.breakpoints()) {
    const double departure = bp.x - bp.y;  // l = a − R(a), non-decreasing.
    if (!points.empty() && departure <= points.back().x + tdf::kTimeEps) {
      // A flat stretch of the departure map; keep the smaller travel time.
      if (bp.y < points.back().y) points.back().y = bp.y;
      continue;
    }
    points.push_back({departure, bp.y});
  }
  if (points.size() < 2) return std::nullopt;
  return tdf::PwlFunction(std::move(points));
}

}  // namespace capefp::core
