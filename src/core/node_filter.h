// Corridor restriction shared by the query searches.
//
// The two-phase hierarchical mode (core/hierarchical, DESIGN.md §9) first
// extracts a corridor — the set of nodes that can possibly carry an optimal
// departure — and then reruns the exact search restricted to it. The
// restriction is this NodeFilter: a dense epoch-stamped allow-set living in
// each search's scratch state (ProfileSearch::Scratch, the reverse search's
// shared Scratch, and TdAStarScratch), consulted once per relaxed edge.
//
// Inactive (the default) admits every node at the cost of one branch, so
// flat searches are unaffected. Strictly per-worker, like the rest of the
// scratch state.
#ifndef CAPEFP_CORE_NODE_FILTER_H_
#define CAPEFP_CORE_NODE_FILTER_H_

#include <cstdint>
#include <vector>

#include "src/network/road_network.h"

namespace capefp::core {

class NodeFilter {
 public:
  // Back to admit-everything (flat searches).
  void Reset() { active_ = false; }

  // Starts an empty corridor over a graph of `num_nodes` nodes; only nodes
  // subsequently Allow()ed pass until the next BeginCorridor/Reset. The
  // stamp storage is reused across queries without clearing.
  void BeginCorridor(size_t num_nodes) {
    if (stamp_.size() < num_nodes) stamp_.resize(num_nodes, 0);
    ++epoch_;
    active_ = true;
  }

  void Allow(network::NodeId node) {
    stamp_[static_cast<size_t>(node)] = epoch_;
  }

  bool active() const { return active_; }

  bool Allows(network::NodeId node) const {
    return !active_ || stamp_[static_cast<size_t>(node)] == epoch_;
  }

  // Allowed nodes this epoch (linear scan; diagnostics only).
  size_t CountAllowed() const {
    if (!active_) return 0;
    size_t count = 0;
    for (const uint64_t s : stamp_) count += (s == epoch_) ? 1 : 0;
    return count;
  }

 private:
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 0;
  bool active_ = false;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_NODE_FILTER_H_
