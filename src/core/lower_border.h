// The lower border function of §4.6.
//
// The running lower envelope of the travel-time functions of all paths to
// the end node identified so far, with each linear stretch annotated by the
// path (tag) that realizes it. Its maximum drives the IntAllFastestPaths
// termination test; its annotated pieces are the allFP answer: the
// partition I_1..I_k of the query interval (Definition 4).
#ifndef CAPEFP_CORE_LOWER_BORDER_H_
#define CAPEFP_CORE_LOWER_BORDER_H_

#include <cstdint>
#include <vector>

#include "src/tdf/pwl_arena.h"
#include "src/tdf/pwl_function.h"

namespace capefp::core {

class LowerBorder {
 public:
  // The border will live on the leaving-time interval [lo, hi]. `arena`
  // (optional) backs the border function and merge scratch so repeated
  // Merge calls recycle breakpoint storage; it must outlive the border.
  explicit LowerBorder(double lo, double hi, tdf::PwlArena* arena = nullptr);

  LowerBorder(LowerBorder&&) = default;
  LowerBorder& operator=(LowerBorder&&) = default;

  bool empty() const { return !has_border_; }

  // Current border function. Requires !empty().
  const tdf::PwlFunction& function() const;

  // Max over the interval of the current border. Requires !empty().
  double MaxValue() const;

  // Border value at leaving time `l`. Requires !empty().
  double Value(double l) const;

  // Merges a newly identified end-node path: wherever `f` is strictly
  // below the current border (beyond tdf::kTimeEps), `tag` takes over.
  // Ties keep the earlier path (identified-first wins, as in the paper's
  // example where the earlier path keeps the boundary instant).
  void Merge(const tdf::PwlFunction& f, int64_t tag);

  // One maximal sub-interval of the partition with its winning tag.
  struct Piece {
    double lo = 0.0;
    double hi = 0.0;
    int64_t tag = -1;
  };

  // The partition of [lo, hi], adjacent same-tag pieces merged, in order.
  const std::vector<Piece>& pieces() const { return pieces_; }

 private:
  double lo_;
  double hi_;
  tdf::PwlArena* arena_;  // Not owned; may be null.
  bool has_border_ = false;
  tdf::PwlFunction border_;
  tdf::PwlFunction scratch_fn_;  // Envelope destination, swapped with border_.
  std::vector<Piece> pieces_;
  std::vector<Piece> scratch_pieces_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_LOWER_BORDER_H_
