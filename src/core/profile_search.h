// IntAllFastestPaths (§4): the paper's primary contribution.
//
// An A*-style best-first search whose priority-queue entries are *paths*
// carrying piecewise-linear travel-time functions of the leaving time
// l ∈ I, ordered by min_l [ T(l, s⇒n) + T_est(n⇒e) ]. Expanding a path
// composes its function with the edge travel-time function over the arrival
// interval (§4.4). Paths reaching the end node feed the lower border
// (§4.6); the search stops when the next path's key cannot beat the
// border's maximum. The first end-node path popped answers the singleFP
// query (§4.5); the final border partition answers allFP.
//
// Beyond the paper, an optional per-node dominance rule prunes a popped
// path whose function is pointwise >= the lower envelope of functions
// already expanded at that node. Under FIFO any extension of a dominated
// path stays dominated, so pruning preserves both query answers; it also
// suppresses cyclic paths. It is on by default and benchmarked by
// bench_ablation_pruning.
#ifndef CAPEFP_CORE_PROFILE_SEARCH_H_
#define CAPEFP_CORE_PROFILE_SEARCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/lower_border.h"
#include "src/network/accessor.h"
#include "src/tdf/pwl_function.h"

namespace capefp::obs {
class Trace;
}  // namespace capefp::obs

namespace capefp::core {

struct ProfileQuery {
  network::NodeId source = network::kInvalidNode;
  network::NodeId target = network::kInvalidNode;
  // Leaving-time interval I = [leave_lo, leave_hi], minutes from the
  // reference midnight.
  double leave_lo = 0.0;
  double leave_hi = 0.0;
};

struct ProfileSearchOptions {
  // Per-node dominance pruning (see file comment).
  bool dominance_pruning = true;
  // Extension beyond the paper: discard a candidate label whose function
  // T(l) + T_est is >= the lower border *pointwise* (it can improve the
  // answer nowhere), instead of only comparing min(T + T_est) against
  // max(border) as the paper does. Off by default so the headline
  // experiments use the paper's rule; bench_ablation_pruning measures it.
  bool pointwise_bound_pruning = false;
  // Hard cap on path expansions; guards against pathological inputs when
  // pruning is disabled. <= 0 means unlimited.
  int64_t max_expansions = 0;
};

struct SearchStats {
  // Paths popped and expanded (the paper's "expanded nodes" measure).
  int64_t expansions = 0;
  // Distinct nodes among the expansions.
  int64_t distinct_nodes = 0;
  // Labels pushed into the queue.
  int64_t pushes = 0;
  // Labels discarded by dominance pruning.
  int64_t pruned_dominated = 0;
  // Labels discarded because they could not beat the border.
  int64_t pruned_bound = 0;
  bool hit_expansion_cap = false;
};

struct SingleFpResult {
  bool found = false;
  // Node sequence source..target.
  std::vector<network::NodeId> path;
  // Travel time as a function of leaving time for that path.
  std::optional<tdf::PwlFunction> travel_time;
  // Optimal leaving instant (leftmost if a whole stretch is optimal) and
  // its travel time.
  double best_leave_time = 0.0;
  double best_travel_minutes = 0.0;
  SearchStats stats;
};

struct AllFpPiece {
  // Sub-interval of I on which `path` is the fastest.
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  std::vector<network::NodeId> path;
};

struct AllFpResult {
  bool found = false;
  // The partition I_1..I_k in order; adjacent pieces have distinct paths.
  std::vector<AllFpPiece> pieces;
  // The lower border: fastest achievable travel time per leaving instant.
  std::optional<tdf::PwlFunction> border;
  SearchStats stats;
};

// Runs IntAllFastestPaths. `estimator` must be anchored at query.target.
// Both calls are independent (no shared state between invocations).
class ProfileSearch {
 public:
  struct Label {
    tdf::PwlFunction travel_time;
    network::NodeId node;
    int64_t parent;  // Label index, -1 for the source label.
  };

  // Reusable per-search allocations. A worker thread running many queries
  // passes one Scratch to every ProfileSearch it constructs: the label
  // arena and successor buffer keep their capacity across queries instead
  // of reallocating from empty each time. Never share a Scratch between
  // concurrently running searches.
  struct Scratch {
    std::vector<Label> labels;
    std::vector<network::NeighborEdge> neighbors;
  };

  // `trace`, when non-null, receives an aggregated "edge_ttf" leaf (total
  // derivation time and call count) plus the final SearchStats counters as
  // attributes on the innermost open span. Tracing a search adds two clock
  // reads per expanded edge; a null trace costs one branch.
  ProfileSearch(network::NetworkAccessor* accessor,
                TravelTimeEstimator* estimator,
                const ProfileSearchOptions& options = {},
                Scratch* scratch = nullptr, obs::Trace* trace = nullptr);

  // Stops at the first end-node path (§4.5).
  SingleFpResult RunSingleFp(const ProfileQuery& query);

  // Full run: lower border + partition (§4.6).
  AllFpResult RunAllFp(const ProfileQuery& query);

 private:
  // Shared engine; `stop_at_first_target` selects singleFP behaviour.
  // Returns the final border (empty if the target was never reached) and
  // the label arena for path reconstruction.
  LowerBorder Run(const ProfileQuery& query, bool stop_at_first_target,
                  std::vector<Label>* labels, SearchStats* stats,
                  int64_t* first_target_label);

  std::vector<network::NodeId> ReconstructPath(
      const std::vector<Label>& labels, int64_t label_index) const;

  network::NetworkAccessor* accessor_;
  TravelTimeEstimator* estimator_;
  ProfileSearchOptions options_;
  Scratch* scratch_;  // Not owned; may be null.
  obs::Trace* trace_;  // Not owned; may be null.
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_PROFILE_SEARCH_H_
