// IntAllFastestPaths (§4): the paper's primary contribution.
//
// An A*-style best-first search whose priority-queue entries are *paths*
// carrying piecewise-linear travel-time functions of the leaving time
// l ∈ I, ordered by min_l [ T(l, s⇒n) + T_est(n⇒e) ]. Expanding a path
// composes its function with the edge travel-time function over the arrival
// interval (§4.4). Paths reaching the end node feed the lower border
// (§4.6); the search stops when the next path's key cannot beat the
// border's maximum. The first end-node path popped answers the singleFP
// query (§4.5); the final border partition answers allFP.
//
// Beyond the paper, an optional per-node dominance rule prunes a popped
// path whose function is pointwise >= the lower envelope of functions
// already expanded at that node. Under FIFO any extension of a dominated
// path stays dominated, so pruning preserves both query answers; it also
// suppresses cyclic paths. It is on by default and benchmarked by
// bench_ablation_pruning.
#ifndef CAPEFP_CORE_PROFILE_SEARCH_H_
#define CAPEFP_CORE_PROFILE_SEARCH_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/lower_border.h"
#include "src/core/node_filter.h"
#include "src/network/accessor.h"
#include "src/tdf/pwl_arena.h"
#include "src/tdf/pwl_function.h"

namespace capefp::obs {
class Trace;
}  // namespace capefp::obs

namespace capefp::core {

// Dense epoch-stamped node set, reused across queries without O(num_nodes)
// clearing: membership is valid only when the stamp equals the current
// epoch (same scheme as EstimatorScratch).
struct NodeEpochSet {
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;

  void BeginQuery(size_t num_nodes) {
    if (stamp.size() < num_nodes) stamp.resize(num_nodes, 0);
    ++epoch;
  }

  // True the first time `node` is inserted this query.
  bool Insert(network::NodeId node) {
    uint64_t& s = stamp[static_cast<size_t>(node)];
    if (s == epoch) return false;
    s = epoch;
    return true;
  }
};

// Dense epoch-stamped node → PwlFunction map (the per-node lower envelope
// of expanded paths used by dominance pruning). Functions live in a packed
// vector, arena-bound, torn down at BeginQuery so their breakpoint blocks
// recycle through the arena.
struct NodeFunctionMap {
  std::vector<uint64_t> stamp;
  std::vector<uint32_t> slot;
  std::vector<tdf::PwlFunction> fns;
  uint64_t epoch = 0;

  void BeginQuery(size_t num_nodes) {
    if (stamp.size() < num_nodes) {
      stamp.resize(num_nodes, 0);
      slot.resize(num_nodes, 0);
    }
    ++epoch;
    fns.clear();
  }

  // Null if `node` has no function this query. The pointer is invalidated
  // by the next Insert.
  tdf::PwlFunction* Find(network::NodeId node) {
    const auto i = static_cast<size_t>(node);
    return stamp[i] == epoch ? &fns[slot[i]] : nullptr;
  }

  // Registers an empty arena-bound function for `node` (must not already
  // be present this query) and returns it for assignment.
  tdf::PwlFunction* Insert(network::NodeId node, tdf::PwlArena* arena) {
    const auto i = static_cast<size_t>(node);
    stamp[i] = epoch;
    slot[i] = static_cast<uint32_t>(fns.size());
    fns.emplace_back(arena);
    return &fns.back();
  }
};

// Priority-queue entry of the profile searches; kept in a plain vector
// driven by push_heap/pop_heap (replicating std::priority_queue exactly)
// so the heap storage survives across queries in a Scratch.
struct HeapEntry {
  double key = 0.0;  // min over I of (travel time + estimate).
  int64_t label = -1;
  bool operator>(const HeapEntry& o) const { return key > o.key; }
};

struct ProfileQuery {
  network::NodeId source = network::kInvalidNode;
  network::NodeId target = network::kInvalidNode;
  // Leaving-time interval I = [leave_lo, leave_hi], minutes from the
  // reference midnight.
  double leave_lo = 0.0;
  double leave_hi = 0.0;
};

struct ProfileSearchOptions {
  // Per-node dominance pruning (see file comment).
  bool dominance_pruning = true;
  // Extension beyond the paper: discard a candidate label whose function
  // T(l) + T_est is >= the lower border *pointwise* (it can improve the
  // answer nowhere), instead of only comparing min(T + T_est) against
  // max(border) as the paper does. Off by default so the headline
  // experiments use the paper's rule; bench_ablation_pruning measures it.
  bool pointwise_bound_pruning = false;
  // Hard cap on path expansions; guards against pathological inputs when
  // pruning is disabled. <= 0 means unlimited.
  int64_t max_expansions = 0;
  // An externally proven achievable travel-time bound over the whole leave
  // interval (e.g. the corridor phase's upper-bound border max). Activates
  // bound pruning before the first target pop. Labels are discarded only
  // STRICTLY above bound + kTimeEps: such a label exceeds the final border
  // everywhere by more than the merge tolerance, so the returned border is
  // bit-identical to an unbounded run. +inf disables.
  double initial_upper_bound = std::numeric_limits<double>::infinity();
};

struct SearchStats {
  // Paths popped and expanded (the paper's "expanded nodes" measure).
  int64_t expansions = 0;
  // Distinct nodes among the expansions.
  int64_t distinct_nodes = 0;
  // Labels pushed into the queue.
  int64_t pushes = 0;
  // Labels discarded by dominance pruning.
  int64_t pruned_dominated = 0;
  // Labels discarded because they could not beat the border.
  int64_t pruned_bound = 0;
  // Edges skipped because their head fell outside the active NodeFilter
  // corridor (always 0 for flat searches).
  int64_t pruned_filtered = 0;
  bool hit_expansion_cap = false;
};

struct SingleFpResult {
  bool found = false;
  // Node sequence source..target.
  std::vector<network::NodeId> path;
  // Travel time as a function of leaving time for that path.
  std::optional<tdf::PwlFunction> travel_time;
  // Optimal leaving instant (leftmost if a whole stretch is optimal) and
  // its travel time.
  double best_leave_time = 0.0;
  double best_travel_minutes = 0.0;
  SearchStats stats;
};

struct AllFpPiece {
  // Sub-interval of I on which `path` is the fastest.
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  std::vector<network::NodeId> path;
};

struct AllFpResult {
  bool found = false;
  // The partition I_1..I_k in order; adjacent pieces have distinct paths.
  std::vector<AllFpPiece> pieces;
  // The lower border: fastest achievable travel time per leaving instant.
  std::optional<tdf::PwlFunction> border;
  SearchStats stats;
};

// Runs IntAllFastestPaths. `estimator` must be anchored at query.target.
// Both calls are independent (no shared state between invocations).
class ProfileSearch {
 public:
  struct Label {
    tdf::PwlFunction travel_time;
    network::NodeId node;
    int64_t parent;  // Label index, -1 for the source label.
  };

  // Reusable per-search state. A worker thread running many queries passes
  // one Scratch to every ProfileSearch (or ReverseProfileSearch) it
  // constructs: the PWL arena, label vector, heap, dense per-node state and
  // function buffers all keep their storage across queries, so a warm
  // search loop reaches zero heap allocations per expansion (the arena's
  // spill counter measures this; the engine publishes it under
  // capefp.tdf.arena.*). Never share a Scratch between concurrently
  // running searches — it is strictly per-worker state.
  //
  // Declaration order matters: `arena` comes first so every arena-bound
  // member below it is destroyed while the arena is still alive.
  struct Scratch {
    tdf::PwlArena arena;
    std::vector<Label> labels;
    std::vector<network::NeighborEdge> neighbors;
    std::vector<HeapEntry> heap;
    NodeFunctionMap envelope;
    NodeEpochSet seen;
    EstimatorScratch estimator;
    // Optional corridor restriction (see NodeFilter). Inactive by default;
    // the hierarchical two-phase engine mode populates it per query.
    NodeFilter filter;
    // Reusable arena-bound destinations for the inner-loop Into operations.
    tdf::PwlFunction edge_fn{&arena};
    tdf::PwlFunction combined{&arena};
    tdf::PwlFunction envelope_tmp{&arena};
    tdf::PwlFunction shifted{&arena};
  };

  // `trace`, when non-null, receives an aggregated "edge_ttf" leaf (total
  // derivation time and call count) plus the final SearchStats counters as
  // attributes on the innermost open span. Tracing a search adds two clock
  // reads per expanded edge; a null trace costs one branch.
  ProfileSearch(network::NetworkAccessor* accessor,
                TravelTimeEstimator* estimator,
                const ProfileSearchOptions& options = {},
                Scratch* scratch = nullptr, obs::Trace* trace = nullptr);

  // Stops at the first end-node path (§4.5).
  SingleFpResult RunSingleFp(const ProfileQuery& query);

  // Full run: lower border + partition (§4.6).
  AllFpResult RunAllFp(const ProfileQuery& query);

 private:
  // Shared engine; `stop_at_first_target` selects singleFP behaviour.
  // Returns the final border (empty if the target was never reached); the
  // label arena for path reconstruction lives in `scratch`.
  LowerBorder Run(const ProfileQuery& query, bool stop_at_first_target,
                  Scratch& scratch, SearchStats* stats,
                  int64_t* first_target_label);

  std::vector<network::NodeId> ReconstructPath(
      const std::vector<Label>& labels, int64_t label_index) const;

  network::NetworkAccessor* accessor_;
  TravelTimeEstimator* estimator_;
  ProfileSearchOptions options_;
  Scratch* scratch_;  // Not owned; may be null.
  obs::Trace* trace_;  // Not owned; may be null.
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_PROFILE_SEARCH_H_
