#include "src/core/profile_search.h"

#include <algorithm>
#include <chrono>

#include "src/obs/trace.h"
#include "src/tdf/travel_time.h"
#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::NeighborEdge;
using network::NodeId;
using tdf::PwlFunction;

using TraceClock = std::chrono::steady_clock;

double MillisSince(TraceClock::time_point start) {
  return std::chrono::duration<double, std::milli>(TraceClock::now() - start)
      .count();
}

}  // namespace

ProfileSearch::ProfileSearch(network::NetworkAccessor* accessor,
                             TravelTimeEstimator* estimator,
                             const ProfileSearchOptions& options,
                             Scratch* scratch, obs::Trace* trace)
    : accessor_(accessor),
      estimator_(estimator),
      options_(options),
      scratch_(scratch),
      trace_(trace) {
  CAPEFP_CHECK(accessor != nullptr);
  CAPEFP_CHECK(estimator != nullptr);
}

std::vector<NodeId> ProfileSearch::ReconstructPath(
    const std::vector<Label>& labels, int64_t label_index) const {
  std::vector<NodeId> path;
  for (int64_t at = label_index; at >= 0; at = labels[static_cast<size_t>(at)].parent) {
    path.push_back(labels[static_cast<size_t>(at)].node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

LowerBorder ProfileSearch::Run(const ProfileQuery& query,
                               bool stop_at_first_target, Scratch& s,
                               SearchStats* stats,
                               int64_t* first_target_label) {
  CAPEFP_CHECK_LE(query.leave_lo, query.leave_hi);
  CAPEFP_CHECK_GE(query.source, 0);
  CAPEFP_CHECK_GE(query.target, 0);
  *first_target_label = -1;

  LowerBorder border(query.leave_lo, query.leave_hi, &s.arena);
  std::vector<Label>& labels = s.labels;
  std::vector<HeapEntry>& heap = s.heap;
  heap.clear();
  const size_t num_nodes = accessor_->num_nodes();
  // Lower envelope of expanded (popped) functions per node, for dominance.
  s.envelope.BeginQuery(num_nodes);
  s.seen.BeginQuery(num_nodes);

  labels.push_back({PwlFunction::Constant(query.leave_lo, query.leave_hi,
                                          0.0),
                    query.source, -1});
  heap.push_back({estimator_->Estimate(query.source), 0});
  std::push_heap(heap.begin(), heap.end(), std::greater<>());
  ++stats->pushes;

  // Per-edge derivations are far too frequent for a span each; accumulate
  // locally and flush one aggregated leaf when the search ends.
  const bool tracing = trace_ != nullptr;
  double edge_ttf_ms = 0.0;
  uint64_t edge_ttf_calls = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    heap.pop_back();
    // Termination (§4.6 step 5): the cheapest remaining path cannot improve
    // the border anywhere. The externally proven bound uses a strict
    // margin, so it never cuts a label the border-based rule would keep
    // alive into the final border (see ProfileSearchOptions).
    if (!border.empty() && top.key >= border.MaxValue() - tdf::kTimeEps) {
      break;
    }
    if (top.key > options_.initial_upper_bound + tdf::kTimeEps) {
      break;
    }
    const Label& label = labels[static_cast<size_t>(top.label)];
    const NodeId node = label.node;

    if (node == query.target) {
      // An identified end-node path: merge into the border (§4.6).
      border.Merge(label.travel_time, top.label);
      if (*first_target_label < 0) *first_target_label = top.label;
      if (stop_at_first_target) break;
      continue;  // End-node paths are not expanded further (FIFO).
    }

    // Dominance pruning against already-expanded paths at this node.
    if (options_.dominance_pruning) {
      PwlFunction* env = s.envelope.Find(node);
      if (env != nullptr) {
        if (PwlFunction::DominatesOrEqual(label.travel_time, *env,
                                          tdf::kTimeEps, &s.arena)) {
          ++stats->pruned_dominated;
          continue;
        }
        PwlFunction::LowerEnvelopeInto(*env, label.travel_time,
                                       &s.envelope_tmp);
        *env = std::move(s.envelope_tmp);
      } else {
        *s.envelope.Insert(node, &s.arena) = label.travel_time;
      }
    }

    ++stats->expansions;
    if (s.seen.Insert(node)) ++stats->distinct_nodes;
    if (options_.max_expansions > 0 &&
        stats->expansions >= options_.max_expansions) {
      stats->hit_expansion_cap = true;
      break;
    }

    accessor_->GetSuccessors(node, &s.neighbors);
    for (const NeighborEdge& edge : s.neighbors) {
      // Corridor restriction (two-phase hierarchical mode): an edge leaving
      // the corridor is skipped before any function work.
      if (!s.filter.Allows(edge.to)) {
        ++stats->pruned_filtered;
        continue;
      }
      // NOTE: label may dangle after labels.push_back below; re-read.
      const PwlFunction& path_tt =
          labels[static_cast<size_t>(top.label)].travel_time;
      // §4.4 expansion, routed through the accessor so the edge function
      // over the arrival interval can come from the shared TTF cache.
      const double arrive_lo =
          path_tt.domain_lo() + path_tt.Value(path_tt.domain_lo());
      const double arrive_hi =
          path_tt.domain_hi() + path_tt.Value(path_tt.domain_hi());
      TraceClock::time_point ttf_start;
      if (tracing) ttf_start = TraceClock::now();
      accessor_->EdgeTtfInto(edge.pattern, edge.distance_miles, arrive_lo,
                             arrive_hi, &s.edge_fn);
      if (tracing) {
        edge_ttf_ms += MillisSince(ttf_start);
        ++edge_ttf_calls;
      }
      tdf::ComposePathWithEdgeInto(path_tt, s.edge_fn, &s.combined);
      const double estimate = estimator_->Estimate(edge.to);
      const double key = s.combined.MinValue() + estimate;
      if (!border.empty() && key >= border.MaxValue() - tdf::kTimeEps) {
        ++stats->pruned_bound;
        continue;
      }
      if (key > options_.initial_upper_bound + tdf::kTimeEps) {
        ++stats->pruned_bound;
        continue;
      }
      if (options_.pointwise_bound_pruning && !border.empty()) {
        s.combined.ShiftedInto(estimate, &s.shifted);
        if (PwlFunction::DominatesOrEqual(s.shifted, border.function(),
                                          tdf::kTimeEps, &s.arena)) {
          ++stats->pruned_bound;
          continue;
        }
      }
      labels.push_back({std::move(s.combined), edge.to, top.label});
      heap.push_back({key, static_cast<int64_t>(labels.size()) - 1});
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
      ++stats->pushes;
    }
  }
  if (tracing) {
    if (edge_ttf_calls > 0) {
      trace_->AddLeaf("edge_ttf", edge_ttf_ms, edge_ttf_calls);
    }
    trace_->AddAttr("expansions", static_cast<double>(stats->expansions));
    trace_->AddAttr("distinct_nodes",
                    static_cast<double>(stats->distinct_nodes));
    trace_->AddAttr("pushes", static_cast<double>(stats->pushes));
    trace_->AddAttr("pruned_dominated",
                    static_cast<double>(stats->pruned_dominated));
    trace_->AddAttr("pruned_bound",
                    static_cast<double>(stats->pruned_bound));
  }
  return border;
}

SingleFpResult ProfileSearch::RunSingleFp(const ProfileQuery& query) {
  SingleFpResult result;
  Scratch local_scratch;
  Scratch& s = scratch_ != nullptr ? *scratch_ : local_scratch;
  s.labels.clear();
  int64_t first_target = -1;
  (void)Run(query, /*stop_at_first_target=*/true, s, &result.stats,
            &first_target);
  if (first_target < 0) return result;
  result.found = true;
  const Label& label = s.labels[static_cast<size_t>(first_target)];
  result.path = ReconstructPath(s.labels, first_target);
  result.travel_time = label.travel_time;
  result.best_leave_time = label.travel_time.ArgMin();
  result.best_travel_minutes = label.travel_time.MinValue();
  return result;
}

AllFpResult ProfileSearch::RunAllFp(const ProfileQuery& query) {
  AllFpResult result;
  Scratch local_scratch;
  Scratch& s = scratch_ != nullptr ? *scratch_ : local_scratch;
  s.labels.clear();
  int64_t first_target = -1;
  {
    const LowerBorder border = Run(query, /*stop_at_first_target=*/false, s,
                                   &result.stats, &first_target);
    if (border.empty()) return result;
    result.found = true;
    result.border = border.function();
    for (const LowerBorder::Piece& piece : border.pieces()) {
      result.pieces.push_back(
          {piece.lo, piece.hi, ReconstructPath(s.labels, piece.tag)});
    }
  }
  // Merge adjacent pieces whose *paths* coincide (distinct labels can
  // describe the same node sequence only via different parents, so this is
  // rare but keeps Definition 4's "adjacent sub-intervals have different
  // fastest paths" exact).
  std::vector<AllFpPiece> merged;
  for (AllFpPiece& piece : result.pieces) {
    if (!merged.empty() && merged.back().path == piece.path) {
      merged.back().leave_hi = piece.leave_hi;
    } else {
      merged.push_back(std::move(piece));
    }
  }
  result.pieces = std::move(merged);
  return result;
}

}  // namespace capefp::core
