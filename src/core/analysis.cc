#include "src/core/analysis.h"

#include <algorithm>
#include <cmath>

#include "src/core/profile_envelope.h"
#include "src/util/check.h"

namespace capefp::core {

std::vector<DepartureWindow> RecommendDepartures(
    const tdf::PwlFunction& border, double slack_fraction) {
  CAPEFP_CHECK_GE(slack_fraction, 0.0);
  const double threshold = border.MinValue() * (1.0 + slack_fraction) +
                           tdf::kTimeEps;

  // Walk the border pieces, cutting at threshold crossings.
  std::vector<DepartureWindow> windows;
  const auto& pts = border.breakpoints();
  auto open_or_extend = [&windows](double lo, double hi, double worst) {
    if (!windows.empty() &&
        std::fabs(windows.back().leave_hi - lo) <= tdf::kTimeEps) {
      windows.back().leave_hi = hi;
      windows.back().worst_travel_minutes =
          std::max(windows.back().worst_travel_minutes, worst);
    } else {
      windows.push_back({lo, hi, worst});
    }
  };
  if (pts.size() == 1) {
    if (pts[0].y <= threshold) {
      windows.push_back({pts[0].x, pts[0].x, pts[0].y});
    }
    return windows;
  }
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const tdf::Breakpoint& a = pts[i];
    const tdf::Breakpoint& b = pts[i + 1];
    const bool a_in = a.y <= threshold;
    const bool b_in = b.y <= threshold;
    if (a_in && b_in) {
      open_or_extend(a.x, b.x, std::max(a.y, b.y));
    } else if (a_in != b_in) {
      // One threshold crossing inside the piece.
      const double t = (threshold - a.y) / (b.y - a.y);
      const double cross = a.x + t * (b.x - a.x);
      if (a_in) {
        open_or_extend(a.x, cross, threshold);
      } else {
        open_or_extend(cross, b.x, threshold);
      }
    }
  }
  return windows;
}

Isochrone ComputeIsochrone(const network::RoadNetwork& network,
                           network::NodeId source, double window_lo,
                           double window_hi, double budget_minutes) {
  CAPEFP_CHECK_GE(budget_minutes, 0.0);
  const auto envelopes =
      SingleSourceProfile(network, source, window_lo, window_hi);
  Isochrone result;
  for (const auto& [node, envelope] : envelopes) {
    if (envelope.MaxValue() <= budget_minutes + tdf::kTimeEps) {
      result.always.push_back(node);
    } else if (envelope.MinValue() <= budget_minutes + tdf::kTimeEps) {
      result.sometimes.push_back(node);
    }
  }
  std::sort(result.always.begin(), result.always.end());
  std::sort(result.sometimes.begin(), result.sometimes.end());
  return result;
}

}  // namespace capefp::core
