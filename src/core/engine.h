// FastestPathEngine — the batteries-included entry point.
//
// Bundles the pieces a downstream application needs for the paper's
// queries: estimator precomputation, the profile searches (forward and
// arrival-anchored), fixed-departure A*, and optionally a CCAM page file so
// queries run disk-backed with I/O accounting. Lower-level control remains
// available through the individual headers; the engine only composes them.
//
//   auto engine = core::FastestPathEngine::Create(&network, {});
//   auto all = (*engine)->AllFastestPaths({s, t, HhMm(7,0), HhMm(9,0)});
#ifndef CAPEFP_CORE_ENGINE_H_
#define CAPEFP_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/boundary_estimator.h"
#include "src/core/profile_search.h"
#include "src/core/reverse_profile_search.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_store.h"
#include "src/util/status.h"

namespace capefp::core {

struct EngineOptions {
  enum class EstimatorKind {
    kNaive,                // Euclidean / v_max (§4).
    kBoundaryDistance,     // §5, distance weights.
    kBoundaryTravelTime,   // §5, per-edge min-travel-time weights (default).
  };
  EstimatorKind estimator = EstimatorKind::kBoundaryTravelTime;
  int boundary_grid_dim = 32;

  ProfileSearchOptions search;

  // When non-empty, a CCAM page file is built at this path (overwriting)
  // and forward queries run through it; page-fault statistics become
  // available via storage_stats().
  std::string ccam_path;
  uint32_t ccam_page_size = 2048;
  size_t ccam_buffer_pool_pages = 256;
};

class FastestPathEngine {
 public:
  // `network` must outlive the engine. Builds the estimator index (and the
  // CCAM file if requested) eagerly.
  static util::StatusOr<std::unique_ptr<FastestPathEngine>> Create(
      const network::RoadNetwork* network, const EngineOptions& options = {});

  // Time-interval queries (§4). Leaving times in minutes from midnight of
  // day 0 of the network calendar.
  AllFpResult AllFastestPaths(const ProfileQuery& query);
  SingleFpResult SingleFastestPath(const ProfileQuery& query);

  // Arrival-interval variants (§2.1). Always in-memory (the CCAM store has
  // no predecessor lists).
  ReverseAllFpResult ArrivalAllFastestPaths(const ReverseProfileQuery& query);
  ReverseSingleFpResult ArrivalSingleFastestPath(
      const ReverseProfileQuery& query);

  // Fixed-departure fastest path (the degenerate single-instant case).
  TdAStarResult FastestPathAt(network::NodeId source, network::NodeId target,
                              double leave_time);

  // Storage statistics; nullopt when running purely in memory.
  std::optional<storage::CcamStats> storage_stats() const;
  void ResetStorageStats();

  bool disk_backed() const { return store_ != nullptr; }
  const network::RoadNetwork& road_network() const { return *network_; }

 private:
  FastestPathEngine(const network::RoadNetwork* network,
                    const EngineOptions& options);

  // Builds the per-query estimator anchored at `anchor`.
  std::unique_ptr<TravelTimeEstimator> MakeEstimator(
      network::NodeId anchor, BoundaryNodeEstimator::Direction direction);

  network::NetworkAccessor* accessor() {
    return store_ != nullptr
               ? static_cast<network::NetworkAccessor*>(&*disk_accessor_)
               : &*memory_accessor_;
  }

  const network::RoadNetwork* network_;
  EngineOptions options_;
  std::optional<network::InMemoryAccessor> memory_accessor_;
  std::optional<BoundaryNodeIndex> boundary_index_;
  std::unique_ptr<storage::CcamStore> store_;
  std::optional<storage::CcamAccessor> disk_accessor_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_ENGINE_H_
