// FastestPathEngine — the batteries-included entry point.
//
// Bundles the pieces a downstream application needs for the paper's
// queries: estimator precomputation, the profile searches (forward and
// arrival-anchored), fixed-departure A*, and optionally a CCAM page file so
// queries run disk-backed with I/O accounting. Lower-level control remains
// available through the individual headers; the engine only composes them.
//
//   auto engine = core::FastestPathEngine::Create(&network, {});
//   auto all = (*engine)->AllFastestPaths({s, t, HhMm(7,0), HhMm(9,0)});
#ifndef CAPEFP_CORE_ENGINE_H_
#define CAPEFP_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/boundary_estimator.h"
#include "src/core/hierarchical.h"
#include "src/core/profile_search.h"
#include "src/core/reverse_profile_search.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_store.h"
#include "src/util/status.h"

namespace capefp::core {

struct EngineOptions {
  enum class EstimatorKind {
    kNaive,                // Euclidean / v_max (§4).
    kBoundaryDistance,     // §5, distance weights.
    kBoundaryTravelTime,   // §5, per-edge min-travel-time weights (default).
  };
  EstimatorKind estimator = EstimatorKind::kBoundaryTravelTime;
  int boundary_grid_dim = 32;

  // How interval (allFP) queries execute.
  enum class QueryMode {
    // IntAllFastestPaths over the full road graph (the paper's §4).
    kFlat,
    // Two-phase (DESIGN.md §9): a corridor phase over the hierarchical
    // index's simplified transit bounds marks the fragments that can carry
    // an optimal departure, then the flat search runs restricted to them
    // via a NodeFilter. Results are identical to kFlat; the index is built
    // (or loaded from hierarchical_index_path) eagerly in Create.
    kHierarchicalTwoPhase,
  };
  QueryMode query_mode = QueryMode::kFlat;
  // Index parameters for kHierarchicalTwoPhase (ignored otherwise).
  HierarchicalOptions hierarchical;
  // When non-empty and query_mode is kHierarchicalTwoPhase, the index is
  // loaded from this file (see HierarchicalIndex::Save) instead of built.
  std::string hierarchical_index_path;

  ProfileSearchOptions search;

  // When non-empty, a CCAM page file is built at this path (overwriting)
  // and forward queries run through it; page-fault statistics become
  // available via storage_stats().
  std::string ccam_path;
  uint32_t ccam_page_size = 2048;
  size_t ccam_buffer_pool_pages = 256;

  // Capacity (entries) of the shared edge travel-time-function cache that
  // memoizes per-(pattern, edge length, day) derived functions for the
  // forward profile searches. 0 disables the cache entirely.
  size_t ttf_cache_entries = 1 << 16;
};

// A RunBatchWithMetrics answer: the per-query results plus the batch's
// observability payload, ready to embed in a bench JSON or print.
struct BatchResult {
  std::vector<AllFpResult> results;
  // Wall-clock latency per query, in order.
  std::vector<double> per_query_millis;
  // Batch-local latency histogram (counts exactly this batch's queries).
  obs::HistogramSnapshot latency_ms;
  // Engine registry snapshot taken after the batch (cumulative; diff two
  // snapshots with DeltaSince for per-batch counters).
  obs::MetricsSnapshot metrics;
};

class FastestPathEngine {
 public:
  // Per-worker state for the full two-phase query path: the flat search
  // scratch plus the corridor-phase scratch. Strictly per-worker, like its
  // members.
  struct QueryScratch {
    ProfileSearch::Scratch search;
    HierarchicalIndex::CorridorScratch corridor;
  };

  // `network` must outlive the engine. Builds the estimator index (and the
  // CCAM file and hierarchical index if requested) eagerly.
  static util::StatusOr<std::unique_ptr<FastestPathEngine>> Create(
      const network::RoadNetwork* network, const EngineOptions& options = {});

  // Time-interval queries (§4). Leaving times in minutes from midnight of
  // day 0 of the network calendar. `trace`, when non-null, receives the
  // query's span tree (root "query.all_fp" / "query.single_fp" with
  // "estimator" and "search" children; see DESIGN.md §7).
  AllFpResult AllFastestPaths(const ProfileQuery& query,
                              obs::Trace* trace = nullptr);
  SingleFpResult SingleFastestPath(const ProfileQuery& query,
                                   obs::Trace* trace = nullptr);

  // Answers `queries` as AllFastestPaths would, one result per query in
  // order, using up to `threads` worker threads. Workers share the network,
  // boundary index, TTF cache, and (when disk-backed) the buffer pool, and
  // keep private search state, so results are bit-identical to running the
  // queries sequentially through this engine. If `per_query_millis` is
  // non-null it receives one wall-clock latency per query.
  std::vector<AllFpResult> RunBatch(
      std::span<const ProfileQuery> queries, int threads,
      std::vector<double>* per_query_millis = nullptr);

  // RunBatch plus the batch's observability payload: per-query latencies, a
  // batch-local latency histogram, and a registry snapshot taken after the
  // batch. `traces`, when non-null, is resized to queries.size() and trace
  // i records query i's spans (each query is traced by exactly one worker,
  // so the traces need no locking; per-query storage/cache deltas inside a
  // concurrent batch attribute shared-stats movement approximately).
  BatchResult RunBatchWithMetrics(std::span<const ProfileQuery> queries,
                                  int threads,
                                  std::vector<obs::Trace>* traces = nullptr);

  // Arrival-interval variants (§2.1). Always in-memory (the CCAM store has
  // no predecessor lists).
  ReverseAllFpResult ArrivalAllFastestPaths(const ReverseProfileQuery& query);
  ReverseSingleFpResult ArrivalSingleFastestPath(
      const ReverseProfileQuery& query);

  // Fixed-departure fastest path (the degenerate single-instant case).
  TdAStarResult FastestPathAt(network::NodeId source, network::NodeId target,
                              double leave_time,
                              obs::Trace* trace = nullptr);

  // The engine's metric tree ("capefp.*"): engine counters and latency
  // histograms plus callback metrics for the TTF cache and the CCAM
  // storage stack. Valid for the engine's lifetime.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  // Storage statistics; nullopt when running purely in memory.
  std::optional<storage::CcamStats> storage_stats() const;
  void ResetStorageStats();

  // Edge-TTF cache statistics; nullopt when the engine was created with
  // ttf_cache_entries == 0.
  std::optional<network::EdgeTtfCacheStats> ttf_cache_stats() const;
  void ResetTtfCacheStats();
  // Drops all cached functions (the next batch starts cold).
  void ClearTtfCache();
  // Detaches/reattaches the cache without discarding entries, so a
  // benchmark can compare cached vs uncached runs on one engine. No effect
  // when the engine has no cache.
  void set_ttf_cache_enabled(bool enabled);
  bool ttf_cache_enabled() const;

  bool disk_backed() const { return store_ != nullptr; }
  const network::RoadNetwork& road_network() const { return *network_; }

  // The hierarchical index; null unless query_mode is
  // kHierarchicalTwoPhase.
  const HierarchicalIndex* hierarchical_index() const {
    return hier_index_.get();
  }

 private:
  FastestPathEngine(const network::RoadNetwork* network,
                    const EngineOptions& options);

  // Registers the engine counters/histograms and the component callback
  // metrics (called once from Create, after store_/ttf_cache_ exist).
  void InitMetrics();

  // The one traced+metered allFP path, shared by AllFastestPaths and the
  // batch workers. `scratch` and `trace` may be null; `elapsed_ms`, if
  // non-null, receives the query wall-clock time.
  AllFpResult RunOneAllFp(const ProfileQuery& query, QueryScratch* scratch,
                          obs::Trace* trace, double* elapsed_ms);

  // Shared worker-pool body of RunBatch / RunBatchWithMetrics. `traces`
  // (pre-sized) and `batch_latency` may be null.
  void RunBatchImpl(std::span<const ProfileQuery> queries, int threads,
                    std::vector<AllFpResult>* results,
                    std::vector<double>* per_query_millis,
                    std::vector<obs::Trace>* traces,
                    obs::Histogram* batch_latency);

  // Builds the per-query estimator anchored at `anchor`. `scratch`, when
  // non-null, backs the estimator's per-node memo with dense epoch-stamped
  // storage reused across queries.
  std::unique_ptr<TravelTimeEstimator> MakeEstimator(
      network::NodeId anchor, BoundaryNodeEstimator::Direction direction,
      EstimatorScratch* scratch = nullptr);

  // Folds one query's arena-stat movement into the engine-wide atomics
  // published under capefp.tdf.arena.* (called on the worker thread that
  // owns `scratch`; the metric callbacks read only the atomics).
  void AccumulateArenaStats(const tdf::PwlArena::Stats& before,
                            const tdf::PwlArena::Stats& after);

  network::NetworkAccessor* accessor() {
    return store_ != nullptr
               ? static_cast<network::NetworkAccessor*>(&*disk_accessor_)
               : &*memory_accessor_;
  }

  const network::RoadNetwork* network_;
  EngineOptions options_;
  std::optional<network::InMemoryAccessor> memory_accessor_;
  std::optional<BoundaryNodeIndex> boundary_index_;
  std::unique_ptr<storage::CcamStore> store_;
  std::optional<storage::CcamAccessor> disk_accessor_;
  std::unique_ptr<network::EdgeTtfCache> ttf_cache_;
  std::unique_ptr<HierarchicalIndex> hier_index_;

  obs::MetricsRegistry metrics_;
  // Handles cached at InitMetrics time so the per-query cost is a few
  // striped atomic adds (no registry lock on the hot path).
  obs::Counter* queries_total_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* td_queries_total_ = nullptr;
  obs::Histogram* query_latency_ms_ = nullptr;
  obs::Counter* search_expansions_ = nullptr;
  obs::Counter* search_pushes_ = nullptr;
  obs::Counter* search_pruned_dominated_ = nullptr;
  obs::Counter* search_pruned_bound_ = nullptr;
  obs::Counter* search_pruned_filtered_ = nullptr;
  obs::Counter* td_expanded_nodes_ = nullptr;
  // Two-phase counters/histograms; registered only when hier_index_ exists.
  obs::Counter* hier_queries_ = nullptr;
  obs::Counter* hier_fallbacks_ = nullptr;
  obs::Counter* hier_corridor_expansions_ = nullptr;
  obs::Counter* hier_corridor_fragments_ = nullptr;
  obs::Counter* hier_corridor_nodes_ = nullptr;
  obs::Histogram* hier_corridor_ms_ = nullptr;
  obs::Histogram* hier_refine_ms_ = nullptr;

  // Engine-wide aggregates of the per-worker PWL arenas, maintained by
  // AccumulateArenaStats and exported as capefp.tdf.arena.* callback
  // metrics. Atomics only: the metric callbacks never touch an arena (the
  // arenas are strictly per-worker and die with their Scratch).
  std::atomic<uint64_t> arena_spills_{0};
  std::atomic<uint64_t> arena_block_reuses_{0};
  std::atomic<uint64_t> arena_bytes_{0};
  std::atomic<uint64_t> arena_high_water_bytes_{0};
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_ENGINE_H_
