// FastestPathEngine — the batteries-included entry point.
//
// Bundles the pieces a downstream application needs for the paper's
// queries: estimator precomputation, the profile searches (forward and
// arrival-anchored), fixed-departure A*, and optionally a CCAM page file so
// queries run disk-backed with I/O accounting. Lower-level control remains
// available through the individual headers; the engine only composes them.
//
//   auto engine = core::FastestPathEngine::Create(&network, {});
//   auto all = (*engine)->AllFastestPaths({s, t, HhMm(7,0), HhMm(9,0)});
#ifndef CAPEFP_CORE_ENGINE_H_
#define CAPEFP_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/boundary_estimator.h"
#include "src/core/profile_search.h"
#include "src/core/reverse_profile_search.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"
#include "src/storage/ccam_accessor.h"
#include "src/storage/ccam_store.h"
#include "src/util/status.h"

namespace capefp::core {

struct EngineOptions {
  enum class EstimatorKind {
    kNaive,                // Euclidean / v_max (§4).
    kBoundaryDistance,     // §5, distance weights.
    kBoundaryTravelTime,   // §5, per-edge min-travel-time weights (default).
  };
  EstimatorKind estimator = EstimatorKind::kBoundaryTravelTime;
  int boundary_grid_dim = 32;

  ProfileSearchOptions search;

  // When non-empty, a CCAM page file is built at this path (overwriting)
  // and forward queries run through it; page-fault statistics become
  // available via storage_stats().
  std::string ccam_path;
  uint32_t ccam_page_size = 2048;
  size_t ccam_buffer_pool_pages = 256;

  // Capacity (entries) of the shared edge travel-time-function cache that
  // memoizes per-(pattern, edge length, day) derived functions for the
  // forward profile searches. 0 disables the cache entirely.
  size_t ttf_cache_entries = 1 << 16;
};

class FastestPathEngine {
 public:
  // `network` must outlive the engine. Builds the estimator index (and the
  // CCAM file if requested) eagerly.
  static util::StatusOr<std::unique_ptr<FastestPathEngine>> Create(
      const network::RoadNetwork* network, const EngineOptions& options = {});

  // Time-interval queries (§4). Leaving times in minutes from midnight of
  // day 0 of the network calendar.
  AllFpResult AllFastestPaths(const ProfileQuery& query);
  SingleFpResult SingleFastestPath(const ProfileQuery& query);

  // Answers `queries` as AllFastestPaths would, one result per query in
  // order, using up to `threads` worker threads. Workers share the network,
  // boundary index, TTF cache, and (when disk-backed) the buffer pool, and
  // keep private search state, so results are bit-identical to running the
  // queries sequentially through this engine. If `per_query_millis` is
  // non-null it receives one wall-clock latency per query.
  std::vector<AllFpResult> RunBatch(
      std::span<const ProfileQuery> queries, int threads,
      std::vector<double>* per_query_millis = nullptr);

  // Arrival-interval variants (§2.1). Always in-memory (the CCAM store has
  // no predecessor lists).
  ReverseAllFpResult ArrivalAllFastestPaths(const ReverseProfileQuery& query);
  ReverseSingleFpResult ArrivalSingleFastestPath(
      const ReverseProfileQuery& query);

  // Fixed-departure fastest path (the degenerate single-instant case).
  TdAStarResult FastestPathAt(network::NodeId source, network::NodeId target,
                              double leave_time);

  // Storage statistics; nullopt when running purely in memory.
  std::optional<storage::CcamStats> storage_stats() const;
  void ResetStorageStats();

  // Edge-TTF cache statistics; nullopt when the engine was created with
  // ttf_cache_entries == 0.
  std::optional<network::EdgeTtfCacheStats> ttf_cache_stats() const;
  void ResetTtfCacheStats();
  // Drops all cached functions (the next batch starts cold).
  void ClearTtfCache();
  // Detaches/reattaches the cache without discarding entries, so a
  // benchmark can compare cached vs uncached runs on one engine. No effect
  // when the engine has no cache.
  void set_ttf_cache_enabled(bool enabled);
  bool ttf_cache_enabled() const;

  bool disk_backed() const { return store_ != nullptr; }
  const network::RoadNetwork& road_network() const { return *network_; }

 private:
  FastestPathEngine(const network::RoadNetwork* network,
                    const EngineOptions& options);

  // Builds the per-query estimator anchored at `anchor`.
  std::unique_ptr<TravelTimeEstimator> MakeEstimator(
      network::NodeId anchor, BoundaryNodeEstimator::Direction direction);

  network::NetworkAccessor* accessor() {
    return store_ != nullptr
               ? static_cast<network::NetworkAccessor*>(&*disk_accessor_)
               : &*memory_accessor_;
  }

  const network::RoadNetwork* network_;
  EngineOptions options_;
  std::optional<network::InMemoryAccessor> memory_accessor_;
  std::optional<BoundaryNodeIndex> boundary_index_;
  std::unique_ptr<storage::CcamStore> store_;
  std::optional<storage::CcamAccessor> disk_accessor_;
  std::unique_ptr<network::EdgeTtfCache> ttf_cache_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_ENGINE_H_
