#include "src/core/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "src/core/profile_envelope.h"
#include "src/tdf/travel_time.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace capefp::core {

namespace {

using network::EdgeId;
using network::NodeId;
using tdf::PwlFunction;

struct QueueEntry {
  double key;
  int64_t label;
  bool operator>(const QueueEntry& o) const { return key > o.key; }
};

struct Label {
  PwlFunction fn;
  NodeId node;
  int64_t parent;
};

}  // namespace

HierarchicalIndex::HierarchicalIndex(const network::RoadNetwork* network,
                                     const HierarchicalOptions& options)
    : network_(network), options_(options) {
  CAPEFP_CHECK(network != nullptr);
  CAPEFP_CHECK_GE(options.grid_dim, 1);
  CAPEFP_CHECK_LT(options.window_lo, options.window_hi);
  util::WallTimer timer;

  const size_t n = network->num_nodes();
  const int g = options.grid_dim;
  const int num_fragments = g * g;
  fragment_of_.resize(n);
  const geo::BoundingBox& box = network->bounding_box();
  const double w = std::max(box.width(), 1e-12);
  const double h = std::max(box.height(), 1e-12);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point& p = network->location(static_cast<NodeId>(i));
    const int cx =
        std::clamp(static_cast<int>((p.x - box.lo().x) / w * g), 0, g - 1);
    const int cy =
        std::clamp(static_cast<int>((p.y - box.lo().y) / h * g), 0, g - 1);
    fragment_of_[i] = cy * g + cx;
  }

  entries_.resize(static_cast<size_t>(num_fragments));
  exits_.resize(static_cast<size_t>(num_fragments));
  fragment_mask_.assign(static_cast<size_t>(num_fragments),
                        std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    fragment_mask_[static_cast<size_t>(fragment_of_[i])][i] = true;
  }
  std::vector<bool> is_entry(n, false);
  std::vector<bool> is_exit(n, false);
  for (size_t e = 0; e < network->num_edges(); ++e) {
    const network::Edge& edge = network->edge(static_cast<EdgeId>(e));
    const int ffrom = fragment_of_[static_cast<size_t>(edge.from)];
    const int fto = fragment_of_[static_cast<size_t>(edge.to)];
    if (ffrom == fto) continue;
    // Crossing edge: part of the overlay as-is.
    overlay_[edge.from].push_back(
        {edge.to, nullptr, edge.pattern, edge.distance_miles});
    if (!is_exit[static_cast<size_t>(edge.from)]) {
      is_exit[static_cast<size_t>(edge.from)] = true;
      exits_[static_cast<size_t>(ffrom)].push_back(edge.from);
    }
    if (!is_entry[static_cast<size_t>(edge.to)]) {
      is_entry[static_cast<size_t>(edge.to)] = true;
      entries_[static_cast<size_t>(fto)].push_back(edge.to);
    }
  }

  // Transit functions: per fragment, per entry, the within-fragment
  // envelope to each exit.
  for (int f = 0; f < num_fragments; ++f) {
    const auto& entry_nodes = entries_[static_cast<size_t>(f)];
    const auto& exit_nodes = exits_[static_cast<size_t>(f)];
    if (entry_nodes.empty() || exit_nodes.empty()) continue;
    ++build_stats_.fragments_used;
    EnvelopeOptions envelope_options;
    envelope_options.allowed = &fragment_mask_[static_cast<size_t>(f)];
    for (NodeId entry : entry_nodes) {
      const auto envelope =
          SingleSourceProfile(*network, entry, options.window_lo,
                              options.window_hi, envelope_options);
      for (NodeId exit : exit_nodes) {
        if (exit == entry) continue;
        const auto it = envelope.find(exit);
        if (it == envelope.end()) continue;  // Unreachable within fragment.
        transit_.push_back(std::make_unique<PwlFunction>(it->second));
        build_stats_.transit_breakpoints +=
            transit_.back()->breakpoints().size();
        overlay_[entry].push_back({exit, transit_.back().get(), 0, 0.0});
        ++build_stats_.transit_functions;
      }
    }
  }
  build_stats_.build_seconds = timer.ElapsedSeconds();
}

int HierarchicalIndex::FragmentOf(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), fragment_of_.size());
  return fragment_of_[static_cast<size_t>(node)];
}

util::StatusOr<HierarchicalIndex::RunOutput> HierarchicalIndex::Run(
    const ProfileQuery& query, TravelTimeEstimator* estimator,
    bool stop_at_first_target) {
  CAPEFP_CHECK(estimator != nullptr);
  CAPEFP_CHECK_LE(query.leave_lo, query.leave_hi);
  if (query.leave_lo < options_.window_lo - tdf::kTimeEps ||
      query.leave_hi > options_.window_hi + tdf::kTimeEps) {
    return util::Status::OutOfRange(
        "query interval outside the index build window");
  }

  RunOutput out{LowerBorder(query.leave_lo, query.leave_hi), {}, {}, false,
                0.0, 0.0, {}};
  const NodeId s = query.source;
  const NodeId t = query.target;

  // --- Query-specific stub edges. ---
  // Functions created here must outlive the labels; owned locally.
  std::vector<std::unique_ptr<PwlFunction>> local_functions;
  std::unordered_map<NodeId, std::vector<OverlayEdge>> stubs;
  if (s != t) {
    const int fs = FragmentOf(s);
    EnvelopeOptions s_options;
    s_options.allowed = &fragment_mask_[static_cast<size_t>(fs)];
    const auto s_envelope = SingleSourceProfile(
        *network_, s, query.leave_lo, query.leave_hi, s_options);
    auto add_stub = [&](NodeId from, NodeId to, const PwlFunction& fn) {
      local_functions.push_back(std::make_unique<PwlFunction>(fn));
      stubs[from].push_back({to, local_functions.back().get(), 0, 0.0});
    };
    for (NodeId exit : exits_[static_cast<size_t>(fs)]) {
      if (exit == s) continue;
      const auto it = s_envelope.find(exit);
      if (it != s_envelope.end()) add_stub(s, exit, it->second);
    }
    if (FragmentOf(t) == fs) {
      const auto it = s_envelope.find(t);
      if (it != s_envelope.end()) add_stub(s, t, it->second);
    }
    const int ft = FragmentOf(t);
    EnvelopeOptions t_options;
    t_options.allowed = &fragment_mask_[static_cast<size_t>(ft)];
    const auto t_envelope = SingleTargetProfile(
        *network_, t, options_.window_lo, options_.window_hi, t_options);
    for (NodeId entry : entries_[static_cast<size_t>(ft)]) {
      if (entry == t || entry == s) continue;
      const auto it = t_envelope.find(entry);
      if (it == t_envelope.end()) continue;
      const auto departure_fn = DepartureFunctionFromArrival(it->second);
      if (departure_fn.has_value()) add_stub(entry, t, *departure_fn);
    }
  }

  // --- Profile search over the overlay. ---
  std::vector<Label> labels;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  std::unordered_map<NodeId, PwlFunction> expanded_envelope;
  std::unordered_set<NodeId> distinct;
  labels.push_back({PwlFunction::Constant(query.leave_lo, query.leave_hi,
                                          0.0),
                    s, -1});
  queue.push({estimator->Estimate(s), 0});
  ++out.stats.pushes;
  int64_t first_target = -1;

  auto reconstruct = [&](int64_t index) {
    std::vector<NodeId> waypoints;
    for (int64_t at = index; at >= 0;
         at = labels[static_cast<size_t>(at)].parent) {
      waypoints.push_back(labels[static_cast<size_t>(at)].node);
    }
    std::reverse(waypoints.begin(), waypoints.end());
    return waypoints;
  };

  util::Status failure = util::Status::Ok();
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (!out.border.empty() &&
        top.key >= out.border.MaxValue() - tdf::kTimeEps) {
      break;
    }
    const NodeId node = labels[static_cast<size_t>(top.label)].node;
    if (node == t) {
      out.border.Merge(labels[static_cast<size_t>(top.label)].fn, top.label);
      if (first_target < 0) {
        first_target = top.label;
        out.found = true;
        out.best_leave = labels[static_cast<size_t>(top.label)].fn.ArgMin();
        out.best_travel =
            labels[static_cast<size_t>(top.label)].fn.MinValue();
        out.first_waypoints = reconstruct(top.label);
      }
      if (stop_at_first_target) break;
      continue;
    }
    {
      const PwlFunction& fn = labels[static_cast<size_t>(top.label)].fn;
      auto env = expanded_envelope.find(node);
      if (env != expanded_envelope.end()) {
        if (PwlFunction::DominatesOrEqual(fn, env->second)) {
          ++out.stats.pruned_dominated;
          continue;
        }
        env->second = PwlFunction::Min(env->second, fn);
      } else {
        expanded_envelope.emplace(node, fn);
      }
    }
    ++out.stats.expansions;
    distinct.insert(node);

    auto relax = [&](const OverlayEdge& edge) {
      const PwlFunction& fn = labels[static_cast<size_t>(top.label)].fn;
      PwlFunction combined = fn;  // Replaced below.
      if (edge.transit != nullptr) {
        const double a_lo = fn.domain_lo() + fn.Value(fn.domain_lo());
        const double a_hi = fn.domain_hi() + fn.Value(fn.domain_hi());
        if (a_lo < edge.transit->domain_lo() - 1e-6 ||
            a_hi > edge.transit->domain_hi() + 1e-6) {
          failure = util::Status::OutOfRange(
              "arrival time left the index build window; rebuild with a "
              "wider window");
          return;
        }
        const PwlFunction restricted = edge.transit->Restricted(
            std::max(a_lo, edge.transit->domain_lo()),
            std::min(a_hi, edge.transit->domain_hi()));
        combined = tdf::ComposePathWithEdge(fn, restricted);
      } else {
        const tdf::EdgeSpeedView speed(&network_->pattern(edge.pattern),
                                       &network_->calendar());
        combined = tdf::ExpandPath(fn, speed, edge.distance_miles);
      }
      const double key =
          combined.MinValue() + estimator->Estimate(edge.to);
      if (!out.border.empty() &&
          key >= out.border.MaxValue() - tdf::kTimeEps) {
        ++out.stats.pruned_bound;
        return;
      }
      labels.push_back({std::move(combined), edge.to, top.label});
      queue.push({key, static_cast<int64_t>(labels.size()) - 1});
      ++out.stats.pushes;
    };

    const auto static_it = overlay_.find(node);
    if (static_it != overlay_.end()) {
      for (const OverlayEdge& edge : static_it->second) {
        relax(edge);
        if (!failure.ok()) return failure;
      }
    }
    const auto stub_it = stubs.find(node);
    if (stub_it != stubs.end()) {
      for (const OverlayEdge& edge : stub_it->second) {
        relax(edge);
        if (!failure.ok()) return failure;
      }
    }
  }
  out.stats.distinct_nodes = static_cast<int64_t>(distinct.size());
  if (s == t) {
    // Degenerate query: zero-travel staying put.
    out.found = true;
    out.best_leave = query.leave_lo;
    out.best_travel = 0.0;
    out.first_waypoints = {s};
    out.border.Merge(
        PwlFunction::Constant(query.leave_lo, query.leave_hi, 0.0), 0);
  }
  if (!out.found && !out.border.empty()) out.found = true;
  for (const LowerBorder::Piece& piece : out.border.empty()
           ? std::vector<LowerBorder::Piece>{}
           : out.border.pieces()) {
    out.piece_waypoints.push_back(s == t ? std::vector<NodeId>{s}
                                         : reconstruct(piece.tag));
  }
  return out;
}

util::StatusOr<HierarchicalAllFpResult> HierarchicalIndex::RunAllFp(
    const ProfileQuery& query, TravelTimeEstimator* estimator) {
  auto run = Run(query, estimator, /*stop_at_first_target=*/false);
  if (!run.ok()) return run.status();
  HierarchicalAllFpResult result;
  result.stats = run->stats;
  if (!run->found) return result;
  result.found = true;
  result.border = run->border.function();
  const auto& pieces = run->border.pieces();
  for (size_t i = 0; i < pieces.size(); ++i) {
    result.pieces.push_back(
        {pieces[i].lo, pieces[i].hi, run->piece_waypoints[i]});
  }
  return result;
}

util::StatusOr<HierarchicalSingleFpResult> HierarchicalIndex::RunSingleFp(
    const ProfileQuery& query, TravelTimeEstimator* estimator) {
  auto run = Run(query, estimator, /*stop_at_first_target=*/true);
  if (!run.ok()) return run.status();
  HierarchicalSingleFpResult result;
  result.stats = run->stats;
  if (!run->found) return result;
  result.found = true;
  result.waypoints = run->first_waypoints;
  result.best_leave_time = run->best_leave;
  result.best_travel_minutes = run->best_travel;
  return result;
}

}  // namespace capefp::core
