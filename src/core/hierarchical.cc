#include "src/core/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "src/core/profile_envelope.h"
#include "src/tdf/pwl_simplify.h"
#include "src/tdf/travel_time.h"
#include "src/util/check.h"
#include "src/util/crc32.h"
#include "src/util/stats.h"

namespace capefp::core {

namespace {

using network::EdgeId;
using network::NodeId;
using tdf::PwlFunction;

struct QueueEntry {
  double key;
  int64_t label;
  bool operator>(const QueueEntry& o) const { return key > o.key; }
};

struct Label {
  PwlFunction fn;
  NodeId node;
  int64_t parent;
};

// Width of the time bands for the per-edge scalar extremes. A query's
// scalar passes take extremes over the bands overlapping its own arrival
// window instead of the whole build window, which is what makes the
// corridor's scalar pruning tight during rush hour (the full-window min is
// a free-flow value, the full-window max an extreme-congestion one).
constexpr double kScalarBandMinutes = 60.0;

// Extremes of f over [lo, hi] clamped to f's domain. An empty overlap
// falls back to the global extreme, which is still a sound bound.
double MinValueOver(const PwlFunction& f, double lo, double hi) {
  lo = std::max(lo, f.domain_lo());
  hi = std::min(hi, f.domain_hi());
  if (lo > hi) return f.MinValue();
  double best = std::min(f.Value(lo), f.Value(hi));
  for (const tdf::Breakpoint& bp : f.breakpoints()) {
    if (bp.x > lo && bp.x < hi) best = std::min(best, bp.y);
  }
  return best;
}

double MaxValueOver(const PwlFunction& f, double lo, double hi) {
  lo = std::max(lo, f.domain_lo());
  hi = std::min(hi, f.domain_hi());
  if (lo > hi) return f.MaxValue();
  double best = std::max(f.Value(lo), f.Value(hi));
  for (const tdf::Breakpoint& bp : f.breakpoints()) {
    if (bp.x > lo && bp.x < hi) best = std::max(best, bp.y);
  }
  return best;
}

}  // namespace

HierarchicalIndex::HierarchicalIndex(const network::RoadNetwork* network,
                                     const HierarchicalOptions& options)
    : network_(network), options_(options) {
  CAPEFP_CHECK(network != nullptr);
  CAPEFP_CHECK_GE(options.grid_dim, 1);
  CAPEFP_CHECK_LT(options.window_lo, options.window_hi);
  CAPEFP_CHECK_GE(options.simplify_eps, 0.0);
  util::WallTimer timer;
  BuildPartition();
  BuildTransit();
  BuildApprox();
  build_stats_.build_seconds = timer.ElapsedSeconds();
}

HierarchicalIndex::HierarchicalIndex(LoadTag,
                                     const network::RoadNetwork* network,
                                     const HierarchicalOptions& options)
    : network_(network), options_(options) {
  CAPEFP_CHECK(network != nullptr);
  BuildPartition();
  // The caller (Load) attaches the stored transit functions and then runs
  // BuildApprox.
}

void HierarchicalIndex::BuildPartition() {
  const size_t n = network_->num_nodes();
  const int g = options_.grid_dim;
  const int num_fragments = g * g;
  fragment_of_.resize(n);
  const geo::BoundingBox& box = network_->bounding_box();
  const double w = std::max(box.width(), 1e-12);
  const double h = std::max(box.height(), 1e-12);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point& p = network_->location(static_cast<NodeId>(i));
    const int cx =
        std::clamp(static_cast<int>((p.x - box.lo().x) / w * g), 0, g - 1);
    const int cy =
        std::clamp(static_cast<int>((p.y - box.lo().y) / h * g), 0, g - 1);
    fragment_of_[i] = cy * g + cx;
  }

  entries_.resize(static_cast<size_t>(num_fragments));
  exits_.resize(static_cast<size_t>(num_fragments));
  fragment_nodes_.resize(static_cast<size_t>(num_fragments));
  fragment_mask_.assign(static_cast<size_t>(num_fragments),
                        std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    const auto f = static_cast<size_t>(fragment_of_[i]);
    fragment_mask_[f][i] = true;
    fragment_nodes_[f].push_back(static_cast<NodeId>(i));
  }
  std::vector<bool> is_entry(n, false);
  std::vector<bool> is_exit(n, false);
  for (size_t e = 0; e < network_->num_edges(); ++e) {
    const network::Edge& edge = network_->edge(static_cast<EdgeId>(e));
    const int ffrom = fragment_of_[static_cast<size_t>(edge.from)];
    const int fto = fragment_of_[static_cast<size_t>(edge.to)];
    if (ffrom == fto) continue;
    // Crossing edge: part of the overlay as-is.
    overlay_[edge.from].push_back(
        {edge.to, nullptr, edge.pattern, edge.distance_miles, nullptr,
         nullptr});
    if (!is_exit[static_cast<size_t>(edge.from)]) {
      is_exit[static_cast<size_t>(edge.from)] = true;
      exits_[static_cast<size_t>(ffrom)].push_back(edge.from);
    }
    if (!is_entry[static_cast<size_t>(edge.to)]) {
      is_entry[static_cast<size_t>(edge.to)] = true;
      entries_[static_cast<size_t>(fto)].push_back(edge.to);
    }
  }
  for (int f = 0; f < num_fragments; ++f) {
    if (!entries_[static_cast<size_t>(f)].empty() &&
        !exits_[static_cast<size_t>(f)].empty()) {
      ++build_stats_.fragments_used;
    }
  }
}

void HierarchicalIndex::BuildTransit() {
  // Transit functions: per fragment, per entry, the within-fragment
  // envelope to each exit.
  const int num_fragments = this->num_fragments();
  for (int f = 0; f < num_fragments; ++f) {
    const auto& entry_nodes = entries_[static_cast<size_t>(f)];
    const auto& exit_nodes = exits_[static_cast<size_t>(f)];
    if (entry_nodes.empty() || exit_nodes.empty()) continue;
    EnvelopeOptions envelope_options;
    envelope_options.allowed = &fragment_mask_[static_cast<size_t>(f)];
    for (NodeId entry : entry_nodes) {
      const auto envelope =
          SingleSourceProfile(*network_, entry, options_.window_lo,
                              options_.window_hi, envelope_options);
      for (NodeId exit : exit_nodes) {
        if (exit == entry) continue;
        const auto it = envelope.find(exit);
        if (it == envelope.end()) continue;  // Unreachable within fragment.
        transit_.push_back(std::make_unique<PwlFunction>(it->second));
        build_stats_.transit_breakpoints +=
            transit_.back()->breakpoints().size();
        overlay_[entry].push_back(
            {exit, transit_.back().get(), 0, 0.0, nullptr, nullptr});
        ++build_stats_.transit_functions;
      }
    }
  }
}

void HierarchicalIndex::BuildApprox() {
  const double eps = options_.simplify_eps;
  PwlFunction edge_fn;  // Crossing-edge full-window function scratch.
  for (auto& [from, edges] : overlay_) {
    (void)from;
    for (OverlayEdge& edge : edges) {
      const PwlFunction* exact = edge.transit;
      if (exact == nullptr) {
        const tdf::EdgeSpeedView speed(&network_->pattern(edge.pattern),
                                       &network_->calendar());
        tdf::EdgeTravelTimeFunctionInto(speed, edge.distance_miles,
                                        options_.window_lo,
                                        options_.window_hi, &edge_fn);
        exact = &edge_fn;
      }
      approx_.push_back(
          std::make_unique<PwlFunction>(tdf::SimplifyLower(*exact, eps)));
      edge.lower = approx_.back().get();
      approx_.push_back(
          std::make_unique<PwlFunction>(tdf::SimplifyUpper(*exact, eps)));
      edge.upper = approx_.back().get();
      edge.min_lower = edge.lower->MinValue();
      edge.max_upper = edge.upper->MaxValue();
      build_stats_.approx_breakpoints +=
          edge.lower->breakpoints().size() + edge.upper->breakpoints().size();
    }
  }

  // --- Scalar-pass CSR. ---
  // Dense ids for every node the overlay touches, in node-id order (the
  // overlay map iterates in hash order; sorting keeps the layout — and so
  // the corridor's float summations — deterministic across builds).
  const size_t n = network_->num_nodes();
  dense_of_.assign(n, -1);
  node_of_dense_.clear();
  for (const auto& [from, edges] : overlay_) {
    dense_of_[static_cast<size_t>(from)] = 0;
    for (const OverlayEdge& edge : edges) {
      dense_of_[static_cast<size_t>(edge.to)] = 0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (dense_of_[i] == 0) {
      dense_of_[i] = static_cast<int32_t>(node_of_dense_.size());
      node_of_dense_.push_back(static_cast<NodeId>(i));
    }
  }
  const auto m = static_cast<int32_t>(node_of_dense_.size());

  // Forward CSR in dense-tail order, band tables filled per edge row.
  const int nb = NumScalarBands();
  size_t num_edges = 0;
  for (const auto& [from, edges] : overlay_) {
    (void)from;
    num_edges += edges.size();
  }
  fwd_off_.assign(static_cast<size_t>(m) + 1, 0);
  fwd_to_.clear();
  fwd_to_.reserve(num_edges);
  fwd_band_.clear();
  fwd_band_.reserve(num_edges);
  fwd_max_upper_.clear();
  fwd_max_upper_.reserve(num_edges);
  fwd_upper_fn_.clear();
  fwd_upper_fn_.reserve(num_edges);
  band_min_flat_.assign(num_edges * static_cast<size_t>(nb), 0.0);
  band_max_flat_.assign(num_edges * static_cast<size_t>(nb), 0.0);
  for (int32_t d = 0; d < m; ++d) {
    const auto it = overlay_.find(node_of_dense_[static_cast<size_t>(d)]);
    if (it != overlay_.end()) {
      for (const OverlayEdge& edge : it->second) {
        const auto row = static_cast<int32_t>(fwd_to_.size());
        fwd_to_.push_back(dense_of_[static_cast<size_t>(edge.to)]);
        fwd_band_.push_back(row);
        fwd_max_upper_.push_back(edge.max_upper);
        fwd_upper_fn_.push_back(edge.upper);
        double* row_min = band_min_flat_.data() +
                          static_cast<size_t>(row) * static_cast<size_t>(nb);
        double* row_max = band_max_flat_.data() +
                          static_cast<size_t>(row) * static_cast<size_t>(nb);
        for (int b = 0; b < nb; ++b) {
          const double lo = options_.window_lo + b * kScalarBandMinutes;
          const double hi =
              (b + 1 == nb) ? options_.window_hi : lo + kScalarBandMinutes;
          row_min[b] = MinValueOver(*edge.lower, lo, hi);
          row_max[b] = MaxValueOver(*edge.upper, lo, hi);
        }
      }
    }
    fwd_off_[static_cast<size_t>(d) + 1] =
        static_cast<int32_t>(fwd_to_.size());
  }

  // Backward CSR by counting sort over the forward edges.
  bwd_off_.assign(static_cast<size_t>(m) + 1, 0);
  for (const int32_t head : fwd_to_) {
    ++bwd_off_[static_cast<size_t>(head) + 1];
  }
  for (int32_t d = 0; d < m; ++d) {
    bwd_off_[static_cast<size_t>(d) + 1] += bwd_off_[static_cast<size_t>(d)];
  }
  bwd_from_.assign(num_edges, 0);
  bwd_band_.assign(num_edges, 0);
  std::vector<int32_t> fill(bwd_off_.begin(), bwd_off_.end() - 1);
  for (int32_t tail = 0; tail < m; ++tail) {
    for (int32_t e = fwd_off_[static_cast<size_t>(tail)];
         e < fwd_off_[static_cast<size_t>(tail) + 1]; ++e) {
      const auto slot =
          static_cast<size_t>(fill[static_cast<size_t>(fwd_to_[
              static_cast<size_t>(e)])]++);
      bwd_from_[slot] = tail;
      bwd_band_[slot] = fwd_band_[static_cast<size_t>(e)];
    }
  }

  // Resident-footprint accounting (dominant terms; small map/vector
  // overheads approximated by element sizes).
  size_t bytes = 0;
  for (const auto& fn : transit_) {
    bytes += sizeof(PwlFunction) + fn->breakpoints().size() * sizeof(tdf::Breakpoint);
  }
  for (const auto& fn : approx_) {
    bytes += sizeof(PwlFunction) + fn->breakpoints().size() * sizeof(tdf::Breakpoint);
  }
  for (const auto& [node, edges] : overlay_) {
    (void)node;
    bytes += sizeof(NodeId) + edges.size() * sizeof(OverlayEdge);
  }
  bytes += dense_of_.size() * sizeof(int32_t);
  bytes += node_of_dense_.size() * sizeof(NodeId);
  bytes += (fwd_off_.size() + fwd_to_.size() + fwd_band_.size() +
            bwd_off_.size() + bwd_from_.size() + bwd_band_.size()) *
           sizeof(int32_t);
  bytes += fwd_max_upper_.size() * sizeof(double);
  bytes += fwd_upper_fn_.size() * sizeof(const PwlFunction*);
  bytes += (band_min_flat_.size() + band_max_flat_.size()) * sizeof(double);
  bytes += fragment_of_.size() * sizeof(int);
  bytes += fragment_mask_.size() * (n / 8 + 1);
  for (const auto& v : fragment_nodes_) bytes += v.size() * sizeof(NodeId);
  for (const auto& v : entries_) bytes += v.size() * sizeof(NodeId);
  for (const auto& v : exits_) bytes += v.size() * sizeof(NodeId);
  build_stats_.index_bytes = bytes;
}

int HierarchicalIndex::NumScalarBands() const {
  return std::max(
      1, static_cast<int>(std::ceil((options_.window_hi - options_.window_lo) /
                                        kScalarBandMinutes -
                                    1e-9)));
}

int HierarchicalIndex::FragmentOf(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), fragment_of_.size());
  return fragment_of_[static_cast<size_t>(node)];
}

util::StatusOr<HierarchicalIndex::RunOutput> HierarchicalIndex::Run(
    const ProfileQuery& query, TravelTimeEstimator* estimator,
    bool stop_at_first_target) {
  CAPEFP_CHECK(estimator != nullptr);
  CAPEFP_CHECK_LE(query.leave_lo, query.leave_hi);
  if (query.leave_lo < options_.window_lo - tdf::kTimeEps ||
      query.leave_hi > options_.window_hi + tdf::kTimeEps) {
    return util::Status::OutOfRange(
        "query interval outside the index build window");
  }

  RunOutput out{LowerBorder(query.leave_lo, query.leave_hi), {}, {}, false,
                0.0, 0.0, {}};
  const NodeId s = query.source;
  const NodeId t = query.target;

  // --- Query-specific stub edges. ---
  // Functions created here must outlive the labels; owned locally.
  std::vector<std::unique_ptr<PwlFunction>> local_functions;
  std::unordered_map<NodeId, std::vector<OverlayEdge>> stubs;
  if (s != t) {
    const int fs = FragmentOf(s);
    EnvelopeOptions s_options;
    s_options.allowed = &fragment_mask_[static_cast<size_t>(fs)];
    const auto s_envelope = SingleSourceProfile(
        *network_, s, query.leave_lo, query.leave_hi, s_options);
    auto add_stub = [&](NodeId from, NodeId to, const PwlFunction& fn) {
      local_functions.push_back(std::make_unique<PwlFunction>(fn));
      stubs[from].push_back(
          {to, local_functions.back().get(), 0, 0.0, nullptr, nullptr});
    };
    for (NodeId exit : exits_[static_cast<size_t>(fs)]) {
      if (exit == s) continue;
      const auto it = s_envelope.find(exit);
      if (it != s_envelope.end()) add_stub(s, exit, it->second);
    }
    if (FragmentOf(t) == fs) {
      const auto it = s_envelope.find(t);
      if (it != s_envelope.end()) add_stub(s, t, it->second);
    }
    const int ft = FragmentOf(t);
    EnvelopeOptions t_options;
    t_options.allowed = &fragment_mask_[static_cast<size_t>(ft)];
    const auto t_envelope = SingleTargetProfile(
        *network_, t, options_.window_lo, options_.window_hi, t_options);
    for (NodeId entry : entries_[static_cast<size_t>(ft)]) {
      if (entry == t || entry == s) continue;
      const auto it = t_envelope.find(entry);
      if (it == t_envelope.end()) continue;
      const auto departure_fn = DepartureFunctionFromArrival(it->second);
      if (departure_fn.has_value()) add_stub(entry, t, *departure_fn);
    }
  }

  // --- Profile search over the overlay. ---
  std::vector<Label> labels;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  std::unordered_map<NodeId, PwlFunction> expanded_envelope;
  std::unordered_set<NodeId> distinct;
  labels.push_back({PwlFunction::Constant(query.leave_lo, query.leave_hi,
                                          0.0),
                    s, -1});
  queue.push({estimator->Estimate(s), 0});
  ++out.stats.pushes;
  int64_t first_target = -1;

  auto reconstruct = [&](int64_t index) {
    std::vector<NodeId> waypoints;
    for (int64_t at = index; at >= 0;
         at = labels[static_cast<size_t>(at)].parent) {
      waypoints.push_back(labels[static_cast<size_t>(at)].node);
    }
    std::reverse(waypoints.begin(), waypoints.end());
    return waypoints;
  };

  // Reusable destinations for the inner-loop Into operations (the overlay
  // search is not per-expansion hot like ProfileSearch, but it shares the
  // same no-allocating-forms discipline so capefp_lint covers it).
  PwlFunction restricted_buf;
  PwlFunction combined_buf;
  PwlFunction edge_scratch;
  PwlFunction envelope_buf;

  util::Status failure = util::Status::Ok();
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (!out.border.empty() &&
        top.key >= out.border.MaxValue() - tdf::kTimeEps) {
      break;
    }
    const NodeId node = labels[static_cast<size_t>(top.label)].node;
    if (node == t) {
      out.border.Merge(labels[static_cast<size_t>(top.label)].fn, top.label);
      if (first_target < 0) {
        first_target = top.label;
        out.found = true;
        out.best_leave = labels[static_cast<size_t>(top.label)].fn.ArgMin();
        out.best_travel =
            labels[static_cast<size_t>(top.label)].fn.MinValue();
        out.first_waypoints = reconstruct(top.label);
      }
      if (stop_at_first_target) break;
      continue;
    }
    {
      const PwlFunction& fn = labels[static_cast<size_t>(top.label)].fn;
      auto env = expanded_envelope.find(node);
      if (env != expanded_envelope.end()) {
        if (PwlFunction::DominatesOrEqual(fn, env->second)) {
          ++out.stats.pruned_dominated;
          continue;
        }
        PwlFunction::LowerEnvelopeInto(env->second, fn, &envelope_buf);
        env->second = std::move(envelope_buf);
      } else {
        expanded_envelope.emplace(node, fn);
      }
    }
    ++out.stats.expansions;
    distinct.insert(node);

    auto relax = [&](const OverlayEdge& edge) {
      const PwlFunction& fn = labels[static_cast<size_t>(top.label)].fn;
      if (edge.transit != nullptr) {
        const double a_lo = fn.domain_lo() + fn.Value(fn.domain_lo());
        const double a_hi = fn.domain_hi() + fn.Value(fn.domain_hi());
        if (a_lo < edge.transit->domain_lo() - 1e-6 ||
            a_hi > edge.transit->domain_hi() + 1e-6) {
          failure = util::Status::OutOfRange(
              "arrival time left the index build window; rebuild with a "
              "wider window");
          return;
        }
        edge.transit->RestrictedInto(
            std::max(a_lo, edge.transit->domain_lo()),
            std::min(a_hi, edge.transit->domain_hi()), &restricted_buf);
        tdf::ComposePathWithEdgeInto(fn, restricted_buf, &combined_buf);
      } else {
        const tdf::EdgeSpeedView speed(&network_->pattern(edge.pattern),
                                       &network_->calendar());
        tdf::ExpandPathInto(fn, speed, edge.distance_miles, &edge_scratch,
                            &combined_buf);
      }
      const double key =
          combined_buf.MinValue() + estimator->Estimate(edge.to);
      if (!out.border.empty() &&
          key >= out.border.MaxValue() - tdf::kTimeEps) {
        ++out.stats.pruned_bound;
        return;
      }
      labels.push_back({std::move(combined_buf), edge.to, top.label});
      queue.push({key, static_cast<int64_t>(labels.size()) - 1});
      ++out.stats.pushes;
    };

    const auto static_it = overlay_.find(node);
    if (static_it != overlay_.end()) {
      for (const OverlayEdge& edge : static_it->second) {
        relax(edge);
        if (!failure.ok()) return failure;
      }
    }
    const auto stub_it = stubs.find(node);
    if (stub_it != stubs.end()) {
      for (const OverlayEdge& edge : stub_it->second) {
        relax(edge);
        if (!failure.ok()) return failure;
      }
    }
  }
  out.stats.distinct_nodes = static_cast<int64_t>(distinct.size());
  if (s == t) {
    // Degenerate query: zero-travel staying put.
    out.found = true;
    out.best_leave = query.leave_lo;
    out.best_travel = 0.0;
    out.first_waypoints = {s};
    out.border.Merge(
        PwlFunction::Constant(query.leave_lo, query.leave_hi, 0.0), 0);
  }
  if (!out.found && !out.border.empty()) out.found = true;
  for (const LowerBorder::Piece& piece : out.border.empty()
           ? std::vector<LowerBorder::Piece>{}
           : out.border.pieces()) {
    out.piece_waypoints.push_back(s == t ? std::vector<NodeId>{s}
                                         : reconstruct(piece.tag));
  }
  return out;
}

util::StatusOr<HierarchicalAllFpResult> HierarchicalIndex::RunAllFp(
    const ProfileQuery& query, TravelTimeEstimator* estimator) {
  auto run = Run(query, estimator, /*stop_at_first_target=*/false);
  if (!run.ok()) return run.status();
  HierarchicalAllFpResult result;
  result.stats = run->stats;
  if (!run->found) return result;
  result.found = true;
  result.border = run->border.function();
  const auto& pieces = run->border.pieces();
  for (size_t i = 0; i < pieces.size(); ++i) {
    result.pieces.push_back(
        {pieces[i].lo, pieces[i].hi, run->piece_waypoints[i]});
  }
  return result;
}

util::StatusOr<HierarchicalSingleFpResult> HierarchicalIndex::RunSingleFp(
    const ProfileQuery& query, TravelTimeEstimator* estimator) {
  auto run = Run(query, estimator, /*stop_at_first_target=*/true);
  if (!run.ok()) return run.status();
  HierarchicalSingleFpResult result;
  result.stats = run->stats;
  if (!run->found) return result;
  result.found = true;
  result.waypoints = run->first_waypoints;
  result.best_leave_time = run->best_leave;
  result.best_travel_minutes = run->best_travel;
  return result;
}

// --- Corridor phase (two-phase mode; see DESIGN.md §9). ---
//
// Label-setting scalar A* over the overlay, bracketed by the simplified
// PWL bounds. (An earlier function-level per-node envelope search was
// abandoned: overlay graphs have exponentially many near-tied paths, and
// every sub-eps improvement of a node's lower envelope re-queues it, so
// the search degenerates into a re-expansion cascade on grid-like
// networks. Scalar Dijkstra is label-setting — each node settles once.)
//
// Passes, all over scalar extremes of the simplified PWL brackets:
//  1. Forward A* from s over full-window per-edge UPPER maxima:
//     dist_hi(t) = ub0, the worst case of a real path — achievable at
//     every leaving instant. ub0 defines the query's arrival window
//     W = [leave_lo, leave_hi + ub0]: a path prefix whose arrival leaves W
//     already costs more than ub0, so only W-banded extremes matter.
//  2. Forward A* from s over W-banded UPPER maxima with parent tracking:
//     a tighter achievable cap ub <= ub0, then tightened again by
//     composing the simplified upper brackets exactly along the argmin
//     path (a real path, so the composed max stays achievable).
//  3. Backward Dijkstra from t over W-banded LOWER minima, truncated at
//     the cap: h_lo(v) lower-bounds every in-contention overlay path
//     v -> t at every departure (an admissible, congestion-aware
//     heuristic for pass 4).
//  4. Forward Dijkstra from s over W-banded LOWER minima, pruned at push
//     against ub via max(h_lo, estimator): every settled node v has
//     dist_lo(v) + guide(v) <= ub + kTimeEps and marks its fragment.
//
// Soundness of the marking: for a node v on an exact optimal path at some
// leaving time tau, dist_lo(v) lower-bounds the prefix, and h_lo(v) and
// the estimator both lower-bound the suffix, so their sum is at most
// opt(tau) <= max(opt) <= ub — v always survives the pruning rule (the
// h_lo potential satisfies the triangle inequality, so no predecessor on
// v's shortest scalar path is pruned either). The corridor is therefore a
// superset of the overlay nodes of every path that can carry an optimal
// departure, and the restricted exact phase returns the flat answer
// bit-identically.
util::StatusOr<CorridorResult> HierarchicalIndex::ExtractCorridor(
    const ProfileQuery& query, TravelTimeEstimator* estimator,
    CorridorScratch& s, NodeFilter* filter) const {
  CAPEFP_CHECK(estimator != nullptr);
  CAPEFP_CHECK(filter != nullptr);
  CAPEFP_CHECK_LE(query.leave_lo, query.leave_hi);
  if (query.leave_lo < options_.window_lo - tdf::kTimeEps ||
      query.leave_hi > options_.window_hi + tdf::kTimeEps) {
    return util::Status::OutOfRange(
        "query interval outside the index build window");
  }

  CorridorResult out;
  out.upper_bound_max = std::numeric_limits<double>::infinity();
  const NodeId sn = query.source;
  const NodeId tn = query.target;
  const size_t n = network_->num_nodes();
  const auto num_frags = static_cast<size_t>(num_fragments());
  if (s.fragment_stamp.size() < num_frags) {
    s.fragment_stamp.resize(num_frags, 0);
  }
  ++s.fragment_epoch;
  filter->BeginCorridor(n);
  s.heap.clear();
  s.t_stubs.clear();

  // The scalar passes run over the dense CSR ids; a non-boundary endpoint
  // gets a virtual slot past the dense range (m for s, m+1 for t).
  const auto m = static_cast<int32_t>(node_of_dense_.size());
  const int32_t sd =
      dense_of_[static_cast<size_t>(sn)] >= 0
          ? dense_of_[static_cast<size_t>(sn)] : m;
  const int32_t td =
      dense_of_[static_cast<size_t>(tn)] >= 0
          ? dense_of_[static_cast<size_t>(tn)] : m + 1;
  const auto num_slots = static_cast<size_t>(m) + 2;
  const auto node_at = [&](int32_t d) {
    if (d < m) return node_of_dense_[static_cast<size_t>(d)];
    return d == m ? sn : tn;
  };
  if (s.scalar_parent.size() < num_slots) s.scalar_parent.resize(num_slots);

  auto mark_fragment = [&](int f) {
    uint64_t& stamp = s.fragment_stamp[static_cast<size_t>(f)];
    if (stamp == s.fragment_epoch) return;
    stamp = s.fragment_epoch;
    ++out.fragments_marked;
    for (NodeId nd : fragment_nodes_[static_cast<size_t>(f)]) {
      filter->Allow(nd);
    }
    out.corridor_nodes += fragment_nodes_[static_cast<size_t>(f)].size();
  };
  const int fs = FragmentOf(sn);
  const int ft = FragmentOf(tn);
  // The endpoint fragments always belong to the corridor: the exact phase
  // recomputes the s/t stubs itself from the road graph.
  mark_fragment(fs);
  mark_fragment(ft);
  if (sn == tn) {
    out.found = true;
    out.upper_bound_max = 0.0;
    return out;
  }

  const double eps = options_.simplify_eps;

  // --- Per-query stub brackets. ---
  // s-side: simplified bounds of the within-fragment envelopes s -> exit
  // (plus s -> t when t shares the fragment), relaxed when s pops. Exits
  // head crossing edges, so they always carry a dense id.
  std::vector<std::pair<int32_t, StubBound>> s_stubs;
  {
    EnvelopeOptions s_options;
    s_options.allowed = &fragment_mask_[static_cast<size_t>(fs)];
    const auto s_envelope = SingleSourceProfile(
        *network_, sn, query.leave_lo, query.leave_hi, s_options);
    auto add_s_stub = [&](int32_t to, const PwlFunction& fn) {
      StubBound stub{tdf::SimplifyLower(fn, eps), tdf::SimplifyUpper(fn, eps),
                     0.0, 0.0};
      stub.min_lower = stub.lower.MinValue();
      stub.max_upper = stub.upper.MaxValue();
      s_stubs.emplace_back(to, std::move(stub));
    };
    for (NodeId exit : exits_[static_cast<size_t>(fs)]) {
      if (exit == sn) continue;
      const auto it = s_envelope.find(exit);
      if (it == s_envelope.end()) continue;
      add_s_stub(dense_of_[static_cast<size_t>(exit)], it->second);
    }
    if (ft == fs) {
      const auto it = s_envelope.find(tn);
      if (it != s_envelope.end()) add_s_stub(td, it->second);
    }
  }
  // t-side: simplified bounds of the departure-anchored within-fragment
  // envelopes entry -> t, relaxed when an ft entry pops. Entries tail
  // crossing edges, so they always carry a dense id.
  s.t_stub_at.BeginQuery(num_slots);
  {
    EnvelopeOptions t_options;
    t_options.allowed = &fragment_mask_[static_cast<size_t>(ft)];
    const auto t_envelope = SingleTargetProfile(
        *network_, tn, options_.window_lo, options_.window_hi, t_options);
    for (NodeId entry : entries_[static_cast<size_t>(ft)]) {
      if (entry == tn || entry == sn) continue;
      const auto it = t_envelope.find(entry);
      if (it == t_envelope.end()) continue;
      const auto departure_fn = DepartureFunctionFromArrival(it->second);
      if (!departure_fn.has_value()) continue;
      StubBound stub{tdf::SimplifyLower(*departure_fn, eps),
                     tdf::SimplifyUpper(*departure_fn, eps), 0.0, 0.0};
      stub.min_lower = stub.lower.MinValue();
      stub.max_upper = stub.upper.MaxValue();
      const int32_t entry_d = dense_of_[static_cast<size_t>(entry)];
      s.t_stub_at.Improve(entry_d, static_cast<double>(s.t_stubs.size()));
      s.t_stubs.emplace_back(entry_d, std::move(stub));
    }
  }
  // --- Scalar passes (see the algorithm comment above). ---
  // Forward all-upper-bounds A* from s (passes 1 and 2). The estimator
  // lower-bounds the exact remaining travel, which lower-bounds the
  // remaining upper-weight sum, and free-flow bounds are consistent — so
  // the first t pop carries the exact scalar distance while the search
  // explores an ellipse instead of a ball.
  auto forward_upper_pass = [&](auto&& edge_max_of, bool track_parents) {
    s.dist_hi.BeginQuery(num_slots);
    s.heap.clear();
    s.dist_hi.Improve(sd, 0.0);
    s.heap.push_back({estimator->Estimate(sn), static_cast<int64_t>(sd)});
    ++out.stats.pushes;
    while (!s.heap.empty()) {
      const HeapEntry top = s.heap.front();
      std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
      s.heap.pop_back();
      const auto d = static_cast<int32_t>(top.label);
      const double g = s.dist_hi.Get(d);
      const double est_d = estimator->Estimate(node_at(d));
      if (top.key > g + est_d) continue;  // Stale.
      if (d == td) break;
      ++out.stats.expansions;
      auto relax_hi = [&](int32_t to, double weight,
                          const PwlFunction* upper) {
        const double cand = g + weight;
        if (s.dist_hi.Improve(to, cand)) {
          if (track_parents) {
            s.scalar_parent[static_cast<size_t>(to)] = {d, upper};
          }
          s.heap.push_back({cand + estimator->Estimate(node_at(to)),
                            static_cast<int64_t>(to)});
          std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
          ++out.stats.pushes;
        }
      };
      if (d == sd) {
        for (const auto& [to, stub] : s_stubs) {
          relax_hi(to, stub.max_upper, &stub.upper);
        }
      }
      if (d < m) {
        for (int32_t e = fwd_off_[static_cast<size_t>(d)];
             e < fwd_off_[static_cast<size_t>(d) + 1]; ++e) {
          relax_hi(fwd_to_[static_cast<size_t>(e)], edge_max_of(e),
                   fwd_upper_fn_[static_cast<size_t>(e)]);
        }
        const double stub_at = s.t_stub_at.Get(d);
        if (std::isfinite(stub_at)) {
          const StubBound& stub =
              s.t_stubs[static_cast<size_t>(stub_at)].second;
          relax_hi(td, stub.max_upper, &stub.upper);
        }
      }
    }
    s.heap.clear();
    return s.dist_hi.Get(td);
  };
  const double ub0 = forward_upper_pass(
      [&](int32_t e) { return fwd_max_upper_[static_cast<size_t>(e)]; },
      /*track_parents=*/false);

  // The query's arrival window W = [leave_lo, leave_hi + ub0]: a path that
  // is still in contention has travel time <= ub0 somewhere, and any
  // prefix whose arrival leaves W already costs more than the achievable
  // cap — so scalar extremes over W's bands bound every path that matters
  // while excluding the off-peak extremes of the rest of the build window.
  const double w_lo = query.leave_lo;
  const double w_hi = std::isfinite(ub0)
                          ? std::min(options_.window_hi, query.leave_hi + ub0)
                          : options_.window_hi;
  const int nb = NumScalarBands();
  const auto band_of = [&](double x) {
    return std::clamp(
        static_cast<int>((x - options_.window_lo) / kScalarBandMinutes), 0,
        nb - 1);
  };
  const int band_lo = band_of(w_lo);
  const int band_hi = band_of(w_hi);
  auto band_row_min = [&](int32_t row) {
    const double* bands = band_min_flat_.data() +
                          static_cast<size_t>(row) * static_cast<size_t>(nb);
    double v = std::numeric_limits<double>::infinity();
    for (int b = band_lo; b <= band_hi; ++b) v = std::min(v, bands[b]);
    return v;
  };
  auto edge_min = [&](int32_t e) {
    return band_row_min(fwd_band_[static_cast<size_t>(e)]);
  };
  auto edge_max = [&](int32_t e) {
    const double* bands =
        band_max_flat_.data() +
        static_cast<size_t>(fwd_band_[static_cast<size_t>(e)]) *
            static_cast<size_t>(nb);
    double v = -std::numeric_limits<double>::infinity();
    for (int b = band_lo; b <= band_hi; ++b) v = std::max(v, bands[b]);
    return v;
  };
  // Tighten the t-stub scalars to W (the s-stub domains already equal the
  // leave interval, so their extremes are tight as built).
  for (auto& [entry_d, stub] : s.t_stubs) {
    (void)entry_d;
    stub.min_lower = MinValueOver(stub.lower, w_lo, w_hi);
    stub.max_upper = MaxValueOver(stub.upper, w_lo, w_hi);
  }

  // Pass 2: the achievable cap — W-banded upper pass with parent tracking
  // (<= ub0 along the pass-1 optimum), tightened by composing the
  // simplified upper brackets exactly along the argmin path. The composed
  // function describes a REAL path, so its max stays achievable, yet it is
  // far tighter than the scalar cap on long paths (the scalar cap pays the
  // worst band of every hop; the composition pays each hop at its actual
  // arrival time).
  double ub = std::min(
      ub0, forward_upper_pass(edge_max, /*track_parents=*/true));
  if (std::isfinite(ub)) {
    out.found = true;
    s.path_uppers.clear();
    bool have_path = true;
    for (int32_t at = td; at != sd;) {
      const ScalarParent& parent = s.scalar_parent[static_cast<size_t>(at)];
      if (parent.from < 0 || parent.upper == nullptr ||
          s.path_uppers.size() > num_slots) {
        have_path = false;
        break;
      }
      s.path_uppers.push_back(parent.upper);
      at = parent.from;
    }
    if (have_path) {
      s.envelope_tmp =
          PwlFunction::Constant(query.leave_lo, query.leave_hi, 0.0);
      bool composed = true;
      for (auto it = s.path_uppers.rbegin(); it != s.path_uppers.rend();
           ++it) {
        const PwlFunction& hop = **it;
        const PwlFunction& path_fn = s.envelope_tmp;
        const double a_lo =
            path_fn.domain_lo() + path_fn.Value(path_fn.domain_lo());
        const double a_hi =
            path_fn.domain_hi() + path_fn.Value(path_fn.domain_hi());
        if (a_lo < hop.domain_lo() - 1e-6 || a_hi > hop.domain_hi() + 1e-6) {
          // Arrival left the index build window; keep the scalar cap.
          composed = false;
          break;
        }
        hop.RestrictedInto(std::max(a_lo, hop.domain_lo()),
                           std::min(a_hi, hop.domain_hi()), &s.restricted);
        tdf::ComposePathWithEdgeInto(path_fn, s.restricted, &s.combined);
        tdf::SimplifyUpperInto(s.combined, eps, &s.envelope_tmp);
      }
      if (composed) ub = std::min(ub, s.envelope_tmp.MaxValue());
    }
  }
  out.upper_bound_max = ub;

  // Pass 3: backward banded-lower Dijkstra from t, truncated at the cap:
  // h_lo(v) lower-bounds the travel time of every in-contention overlay
  // path v -> t at every departure, so max(h_lo, estimator) is an
  // admissible, overlay-aware heuristic for the marking pass. A node left
  // unreached at truncation has scalar distance > ub, so (dist_lo >= 0) it
  // could never pass the marking test — reading its h_lo as +inf is exact.
  s.h_lo.BeginQuery(num_slots);
  s.heap.clear();
  s.h_lo.Improve(td, 0.0);
  s.heap.push_back({0.0, static_cast<int64_t>(td)});
  for (const auto& [entry_d, stub] : s.t_stubs) {
    if (s.h_lo.Improve(entry_d, stub.min_lower)) {
      s.heap.push_back({stub.min_lower, static_cast<int64_t>(entry_d)});
      std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
    }
  }
  while (!s.heap.empty()) {
    const HeapEntry top = s.heap.front();
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
    s.heap.pop_back();
    if (top.key > ub + tdf::kTimeEps) break;  // Beyond the cap: see above.
    const auto d = static_cast<int32_t>(top.label);
    if (top.key > s.h_lo.Get(d)) continue;  // Stale.
    if (d >= m) continue;  // Virtual endpoints have no overlay in-edges.
    for (int32_t e = bwd_off_[static_cast<size_t>(d)];
         e < bwd_off_[static_cast<size_t>(d) + 1]; ++e) {
      const double cand =
          top.key + band_row_min(bwd_band_[static_cast<size_t>(e)]);
      const int32_t from = bwd_from_[static_cast<size_t>(e)];
      if (s.h_lo.Improve(from, cand)) {
        s.heap.push_back({cand, static_cast<int64_t>(from)});
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
      }
    }
  }
  s.heap.clear();

  // Pass 4: forward banded-lower Dijkstra from s, pruned at push against
  // the achievable cap via the overlay-aware admissible heuristic. Every
  // settled node can carry an optimal departure (see the algorithm comment
  // above); its fragment joins the corridor. Label-setting: each node is
  // expanded exactly once, so no re-expansion cascade is possible.
  s.dist_lo.BeginQuery(num_slots);
  s.heap.clear();
  s.dist_lo.Improve(sd, 0.0);
  s.heap.push_back({0.0, static_cast<int64_t>(sd)});
  ++out.stats.pushes;
  while (!s.heap.empty()) {
    const HeapEntry top = s.heap.front();
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
    s.heap.pop_back();
    const auto d = static_cast<int32_t>(top.label);
    if (top.key > s.dist_lo.Get(d)) continue;  // Stale.
    ++out.stats.expansions;
    ++out.stats.distinct_nodes;
    mark_fragment(FragmentOf(node_at(d)));
    // Fastest paths visit t once, at the end (FIFO): not expanding t can
    // only shrink dist_lo along s->v prefixes that never pass t, which are
    // the only prefixes the marking rule needs.
    if (d == td) continue;
    auto relax_lo = [&](int32_t to, double weight) {
      const double cand = top.key + weight;
      const double guide =
          std::max(estimator->Estimate(node_at(to)), s.h_lo.Get(to));
      if (cand + guide > ub + tdf::kTimeEps) {
        ++out.stats.pruned_bound;
        return;
      }
      if (s.dist_lo.Improve(to, cand)) {
        s.heap.push_back({cand, static_cast<int64_t>(to)});
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
        ++out.stats.pushes;
      }
    };
    if (d == sd) {
      for (const auto& [to, stub] : s_stubs) relax_lo(to, stub.min_lower);
    }
    if (d < m) {
      for (int32_t e = fwd_off_[static_cast<size_t>(d)];
           e < fwd_off_[static_cast<size_t>(d) + 1]; ++e) {
        relax_lo(fwd_to_[static_cast<size_t>(e)], edge_min(e));
      }
      const double stub_at = s.t_stub_at.Get(d);
      if (std::isfinite(stub_at)) {
        relax_lo(td, s.t_stubs[static_cast<size_t>(stub_at)].second.min_lower);
      }
    }
  }
  s.heap.clear();
  return out;
}

// --- Serialization. ---
//
// Only the expensive build product — the transit functions — is stored;
// the partition, crossing edges and simplified bounds are rebuilt
// deterministically from the network at load. Host-endian binary:
//   "CFH1" | u32 version | u32 crc32c(payload) | u64 payload_size | payload
// payload:
//   i32 grid_dim | f64 window_lo | f64 window_hi | f64 simplify_eps
//   u64 num_nodes | u64 num_edges | f64 build_seconds | u64 num_transit
//   num_transit × { i32 entry | i32 exit | u64 nbp | nbp × (f64 x, f64 y) }

namespace {

constexpr char kIndexMagic[4] = {'C', 'F', 'H', '1'};
constexpr uint32_t kIndexFormatVersion = 1;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

struct PayloadReader {
  const char* data;
  size_t size;
  size_t at = 0;

  template <typename T>
  bool Pod(T* value) {
    if (at + sizeof(T) > size) return false;
    std::memcpy(value, data + at, sizeof(T));
    at += sizeof(T);
    return true;
  }
};

}  // namespace

util::Status HierarchicalIndex::Save(const std::string& path) const {
  std::string payload;
  AppendPod<int32_t>(&payload, options_.grid_dim);
  AppendPod<double>(&payload, options_.window_lo);
  AppendPod<double>(&payload, options_.window_hi);
  AppendPod<double>(&payload, options_.simplify_eps);
  AppendPod<uint64_t>(&payload, network_->num_nodes());
  AppendPod<uint64_t>(&payload, network_->num_edges());
  AppendPod<double>(&payload, build_stats_.build_seconds);

  // Deterministic record order regardless of the overlay map's iteration.
  std::vector<std::tuple<NodeId, NodeId, const PwlFunction*>> records;
  for (const auto& [from, edges] : overlay_) {
    for (const OverlayEdge& edge : edges) {
      if (edge.transit != nullptr) {
        records.emplace_back(from, edge.to, edge.transit);
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  AppendPod<uint64_t>(&payload, records.size());
  for (const auto& [entry, exit, fn] : records) {
    AppendPod<int32_t>(&payload, entry);
    AppendPod<int32_t>(&payload, exit);
    AppendPod<uint64_t>(&payload, fn->breakpoints().size());
    for (const tdf::Breakpoint& bp : fn->breakpoints()) {
      AppendPod<double>(&payload, bp.x);
      AppendPod<double>(&payload, bp.y);
    }
  }

  const uint32_t crc = util::Crc32c(payload.data(), payload.size());
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  bool ok = std::fwrite(kIndexMagic, 1, sizeof(kIndexMagic), f) ==
            sizeof(kIndexMagic);
  ok = ok && std::fwrite(&kIndexFormatVersion, sizeof(uint32_t), 1, f) == 1;
  ok = ok && std::fwrite(&crc, sizeof(uint32_t), 1, f) == 1;
  const uint64_t payload_size = payload.size();
  ok = ok && std::fwrite(&payload_size, sizeof(uint64_t), 1, f) == 1;
  ok = ok && std::fwrite(payload.data(), 1, payload.size(), f) ==
                 payload.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write to " + path);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<HierarchicalIndex>> HierarchicalIndex::Load(
    const network::RoadNetwork* network, const std::string& path) {
  CAPEFP_CHECK(network != nullptr);
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint32_t crc = 0;
  uint64_t payload_size = 0;
  bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic);
  ok = ok && std::fread(&version, sizeof(uint32_t), 1, f) == 1;
  ok = ok && std::fread(&crc, sizeof(uint32_t), 1, f) == 1;
  ok = ok && std::fread(&payload_size, sizeof(uint64_t), 1, f) == 1;
  if (!ok || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    std::fclose(f);
    return util::Status::Corruption(path + ": not a hierarchical index file");
  }
  if (version != kIndexFormatVersion) {
    std::fclose(f);
    return util::Status::Corruption(path + ": unsupported index version");
  }
  std::string payload(payload_size, '\0');
  ok = std::fread(payload.data(), 1, payload_size, f) == payload_size;
  std::fclose(f);
  if (!ok) return util::Status::Corruption(path + ": truncated index file");
  if (util::Crc32c(payload.data(), payload.size()) != crc) {
    return util::Status::Corruption(path + ": payload checksum mismatch");
  }

  PayloadReader r{payload.data(), payload.size()};
  HierarchicalOptions options;
  int32_t grid_dim = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double build_seconds = 0.0;
  uint64_t num_transit = 0;
  if (!r.Pod(&grid_dim) || !r.Pod(&options.window_lo) ||
      !r.Pod(&options.window_hi) || !r.Pod(&options.simplify_eps) ||
      !r.Pod(&num_nodes) || !r.Pod(&num_edges) || !r.Pod(&build_seconds) ||
      !r.Pod(&num_transit)) {
    return util::Status::Corruption(path + ": truncated index header");
  }
  options.grid_dim = grid_dim;
  if (grid_dim < 1 || options.window_lo >= options.window_hi ||
      options.simplify_eps < 0.0) {
    return util::Status::Corruption(path + ": invalid index parameters");
  }
  if (num_nodes != network->num_nodes() ||
      num_edges != network->num_edges()) {
    return util::Status::InvalidArgument(
        path + ": index was built for a different network (node/edge "
               "counts differ)");
  }

  auto index = std::unique_ptr<HierarchicalIndex>(
      new HierarchicalIndex(LoadTag{}, network, options));
  index->build_stats_.build_seconds = build_seconds;
  std::vector<tdf::Breakpoint> points;
  for (uint64_t rec = 0; rec < num_transit; ++rec) {
    int32_t entry = 0;
    int32_t exit = 0;
    uint64_t nbp = 0;
    if (!r.Pod(&entry) || !r.Pod(&exit) || !r.Pod(&nbp) || nbp == 0) {
      return util::Status::Corruption(path + ": truncated transit record");
    }
    if (entry < 0 || exit < 0 ||
        static_cast<uint64_t>(entry) >= num_nodes ||
        static_cast<uint64_t>(exit) >= num_nodes || entry == exit) {
      return util::Status::Corruption(path + ": transit record node ids");
    }
    const int frag = index->fragment_of_[static_cast<size_t>(entry)];
    if (index->fragment_of_[static_cast<size_t>(exit)] != frag) {
      return util::Status::Corruption(
          path + ": transit record crosses fragments");
    }
    const auto& frag_entries = index->entries_[static_cast<size_t>(frag)];
    const auto& frag_exits = index->exits_[static_cast<size_t>(frag)];
    if (std::find(frag_entries.begin(), frag_entries.end(), entry) ==
            frag_entries.end() ||
        std::find(frag_exits.begin(), frag_exits.end(), exit) ==
            frag_exits.end()) {
      return util::Status::Corruption(
          path + ": transit record endpoints are not boundary nodes");
    }
    points.clear();
    points.reserve(nbp);
    double prev_x = -std::numeric_limits<double>::infinity();
    for (uint64_t i = 0; i < nbp; ++i) {
      tdf::Breakpoint bp{0.0, 0.0};
      if (!r.Pod(&bp.x) || !r.Pod(&bp.y)) {
        return util::Status::Corruption(path + ": truncated breakpoints");
      }
      if (!std::isfinite(bp.x) || !std::isfinite(bp.y) || bp.x <= prev_x) {
        return util::Status::Corruption(path + ": malformed breakpoints");
      }
      prev_x = bp.x;
      points.push_back(bp);
    }
    index->transit_.push_back(std::make_unique<PwlFunction>(points));
    index->build_stats_.transit_breakpoints +=
        index->transit_.back()->breakpoints().size();
    index->overlay_[entry].push_back({exit, index->transit_.back().get(), 0,
                                      0.0, nullptr, nullptr});
    ++index->build_stats_.transit_functions;
  }
  if (r.at != r.size) {
    return util::Status::Corruption(path + ": trailing bytes");
  }
  index->BuildApprox();
  return index;
}

}  // namespace capefp::core
