// Arrival-interval fastest-path queries (§2.1: "a leaving time interval at
// s (or e)").
//
// The mirror image of ProfileSearch: the user fixes an interval of arrival
// times at the target (e.g. "I must be at work between 8:45 and 9:00") and
// asks for the fastest path per arrival sub-interval. Labels grow backwards
// from the target and carry travel time as a piecewise-linear function of
// the *arrival* time at the target; expansion uses the inverse
// (departure-for-arrival) edge functions.
//
// Reverse expansion needs predecessor lists, which the CCAM store does not
// materialize (it mirrors the paper's successor-only records), so this
// search runs on the in-memory RoadNetwork.
#ifndef CAPEFP_CORE_REVERSE_PROFILE_SEARCH_H_
#define CAPEFP_CORE_REVERSE_PROFILE_SEARCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/lower_border.h"
#include "src/core/profile_search.h"
#include "src/network/road_network.h"

namespace capefp::core {

struct ReverseProfileQuery {
  network::NodeId source = network::kInvalidNode;
  network::NodeId target = network::kInvalidNode;
  // Arrival-time interval at `target`, minutes from the reference midnight.
  double arrive_lo = 0.0;
  double arrive_hi = 0.0;
};

struct ReverseSingleFpResult {
  bool found = false;
  std::vector<network::NodeId> path;  // source..target.
  // Travel time as a function of the arrival time at the target.
  std::optional<tdf::PwlFunction> travel_time;
  double best_arrive_time = 0.0;
  double best_travel_minutes = 0.0;
  // Implied departure: best_arrive_time − best_travel_minutes.
  double best_leave_time = 0.0;
  SearchStats stats;
};

struct ReverseAllFpPiece {
  double arrive_lo = 0.0;
  double arrive_hi = 0.0;
  std::vector<network::NodeId> path;  // source..target.
};

struct ReverseAllFpResult {
  bool found = false;
  std::vector<ReverseAllFpPiece> pieces;
  // Fastest achievable travel time per arrival instant.
  std::optional<tdf::PwlFunction> border;
  SearchStats stats;
};

class ReverseProfileSearch {
 public:
  // Shares ProfileSearch's label/scratch types: the travel_time member is a
  // function of the arrival time at the target here, and `parent` points
  // towards the target (-1 for the target label).
  using Label = ProfileSearch::Label;
  using Scratch = ProfileSearch::Scratch;

  // `estimator` must be anchored at query.source with
  // Direction::kFromAnchor semantics: Estimate(n) lower-bounds the travel
  // time source ⇒ n. `scratch` (optional, not owned) follows the same
  // reuse rules as ProfileSearch::Scratch — strictly per-worker.
  ReverseProfileSearch(const network::RoadNetwork* network,
                       TravelTimeEstimator* estimator,
                       const ProfileSearchOptions& options = {},
                       Scratch* scratch = nullptr);

  ReverseSingleFpResult RunSingleFp(const ReverseProfileQuery& query);
  ReverseAllFpResult RunAllFp(const ReverseProfileQuery& query);

 private:
  LowerBorder Run(const ReverseProfileQuery& query, bool stop_at_source,
                  Scratch& scratch, SearchStats* stats,
                  int64_t* first_source_label);

  std::vector<network::NodeId> ReconstructPath(
      const std::vector<Label>& labels, int64_t label_index) const;

  const network::RoadNetwork* network_;
  TravelTimeEstimator* estimator_;
  ProfileSearchOptions options_;
  Scratch* scratch_;  // Not owned; may be null.
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_REVERSE_PROFILE_SEARCH_H_
