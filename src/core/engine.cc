#include "src/core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "src/storage/ccam_builder.h"
#include "src/util/check.h"

namespace capefp::core {

FastestPathEngine::FastestPathEngine(const network::RoadNetwork* network,
                                     const EngineOptions& options)
    : network_(network), options_(options) {
  memory_accessor_.emplace(network);
}

util::StatusOr<std::unique_ptr<FastestPathEngine>> FastestPathEngine::Create(
    const network::RoadNetwork* network, const EngineOptions& options) {
  CAPEFP_CHECK(network != nullptr);
  auto engine = std::unique_ptr<FastestPathEngine>(
      new FastestPathEngine(network, options));

  if (options.estimator != EngineOptions::EstimatorKind::kNaive) {
    BoundaryIndexOptions index_options;
    index_options.grid_dim = options.boundary_grid_dim;
    index_options.mode =
        options.estimator == EngineOptions::EstimatorKind::kBoundaryDistance
            ? BoundaryIndexOptions::Mode::kDistance
            : BoundaryIndexOptions::Mode::kTravelTime;
    engine->boundary_index_.emplace(*network, index_options);
  }

  if (!options.ccam_path.empty()) {
    storage::CcamBuildOptions build;
    build.page_size = options.ccam_page_size;
    auto report =
        storage::BuildCcamFile(*network, options.ccam_path, build);
    if (!report.ok()) return report.status();
    storage::CcamOpenOptions open;
    open.buffer_pool_pages = options.ccam_buffer_pool_pages;
    auto store = storage::CcamStore::Open(options.ccam_path, open);
    if (!store.ok()) return store.status();
    engine->store_ = std::move(*store);
    engine->disk_accessor_.emplace(engine->store_.get());
  }

  if (options.ttf_cache_entries > 0) {
    engine->ttf_cache_ =
        std::make_unique<network::EdgeTtfCache>(options.ttf_cache_entries);
    engine->set_ttf_cache_enabled(true);
  }
  return engine;
}

std::unique_ptr<TravelTimeEstimator> FastestPathEngine::MakeEstimator(
    network::NodeId anchor, BoundaryNodeEstimator::Direction direction) {
  if (boundary_index_.has_value()) {
    return std::make_unique<BoundaryNodeEstimator>(&*boundary_index_,
                                                   accessor(), anchor,
                                                   direction);
  }
  return std::make_unique<EuclideanEstimator>(accessor(), anchor);
}

AllFpResult FastestPathEngine::AllFastestPaths(const ProfileQuery& query) {
  auto estimator =
      MakeEstimator(query.target, BoundaryNodeEstimator::Direction::kToAnchor);
  ProfileSearch search(accessor(), estimator.get(), options_.search);
  return search.RunAllFp(query);
}

SingleFpResult FastestPathEngine::SingleFastestPath(
    const ProfileQuery& query) {
  auto estimator =
      MakeEstimator(query.target, BoundaryNodeEstimator::Direction::kToAnchor);
  ProfileSearch search(accessor(), estimator.get(), options_.search);
  return search.RunSingleFp(query);
}

std::vector<AllFpResult> FastestPathEngine::RunBatch(
    std::span<const ProfileQuery> queries, int threads,
    std::vector<double>* per_query_millis) {
  std::vector<AllFpResult> results(queries.size());
  if (per_query_millis != nullptr) {
    per_query_millis->assign(queries.size(), 0.0);
  }
  if (queries.empty()) return results;

  std::atomic<size_t> next{0};
  // Queries are handed out one at a time, so stragglers cannot leave a
  // whole stripe on one worker. Each worker reuses one Scratch across its
  // queries; everything shared (network, boundary index, TTF cache, buffer
  // pool) is immutable or internally synchronized.
  auto worker = [&]() {
    ProfileSearch::Scratch scratch;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < queries.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      const auto start = std::chrono::steady_clock::now();
      const ProfileQuery& query = queries[i];
      auto estimator = MakeEstimator(
          query.target, BoundaryNodeEstimator::Direction::kToAnchor);
      ProfileSearch search(accessor(), estimator.get(), options_.search,
                           &scratch);
      results[i] = search.RunAllFp(query);
      if (per_query_millis != nullptr) {
        (*per_query_millis)[i] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      }
    }
  };

  const int num_workers = std::max(
      1, std::min(threads, static_cast<int>(queries.size())));
  if (num_workers == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(num_workers));
  for (int t = 0; t < num_workers; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return results;
}

ReverseAllFpResult FastestPathEngine::ArrivalAllFastestPaths(
    const ReverseProfileQuery& query) {
  auto estimator = MakeEstimator(
      query.source, BoundaryNodeEstimator::Direction::kFromAnchor);
  ReverseProfileSearch search(network_, estimator.get(), options_.search);
  return search.RunAllFp(query);
}

ReverseSingleFpResult FastestPathEngine::ArrivalSingleFastestPath(
    const ReverseProfileQuery& query) {
  auto estimator = MakeEstimator(
      query.source, BoundaryNodeEstimator::Direction::kFromAnchor);
  ReverseProfileSearch search(network_, estimator.get(), options_.search);
  return search.RunSingleFp(query);
}

TdAStarResult FastestPathEngine::FastestPathAt(network::NodeId source,
                                               network::NodeId target,
                                               double leave_time) {
  auto estimator =
      MakeEstimator(target, BoundaryNodeEstimator::Direction::kToAnchor);
  return TdAStar(accessor(), source, target, leave_time, estimator.get());
}

std::optional<storage::CcamStats> FastestPathEngine::storage_stats() const {
  if (store_ == nullptr) return std::nullopt;
  return store_->stats();
}

void FastestPathEngine::ResetStorageStats() {
  if (store_ != nullptr) store_->ResetStats();
}

std::optional<network::EdgeTtfCacheStats> FastestPathEngine::ttf_cache_stats()
    const {
  if (ttf_cache_ == nullptr) return std::nullopt;
  return ttf_cache_->stats();
}

void FastestPathEngine::ResetTtfCacheStats() {
  if (ttf_cache_ != nullptr) ttf_cache_->ResetStats();
}

void FastestPathEngine::ClearTtfCache() {
  if (ttf_cache_ != nullptr) ttf_cache_->Clear();
}

void FastestPathEngine::set_ttf_cache_enabled(bool enabled) {
  network::EdgeTtfCache* cache = enabled ? ttf_cache_.get() : nullptr;
  if (enabled && cache == nullptr) return;  // No cache to enable.
  memory_accessor_->set_ttf_cache(cache);
  if (disk_accessor_.has_value()) disk_accessor_->set_ttf_cache(cache);
}

bool FastestPathEngine::ttf_cache_enabled() const {
  return memory_accessor_->ttf_cache() != nullptr;
}

}  // namespace capefp::core
