#include "src/core/engine.h"

#include <utility>

#include "src/storage/ccam_builder.h"
#include "src/util/check.h"

namespace capefp::core {

FastestPathEngine::FastestPathEngine(const network::RoadNetwork* network,
                                     const EngineOptions& options)
    : network_(network), options_(options) {
  memory_accessor_.emplace(network);
}

util::StatusOr<std::unique_ptr<FastestPathEngine>> FastestPathEngine::Create(
    const network::RoadNetwork* network, const EngineOptions& options) {
  CAPEFP_CHECK(network != nullptr);
  auto engine = std::unique_ptr<FastestPathEngine>(
      new FastestPathEngine(network, options));

  if (options.estimator != EngineOptions::EstimatorKind::kNaive) {
    BoundaryIndexOptions index_options;
    index_options.grid_dim = options.boundary_grid_dim;
    index_options.mode =
        options.estimator == EngineOptions::EstimatorKind::kBoundaryDistance
            ? BoundaryIndexOptions::Mode::kDistance
            : BoundaryIndexOptions::Mode::kTravelTime;
    engine->boundary_index_.emplace(*network, index_options);
  }

  if (!options.ccam_path.empty()) {
    storage::CcamBuildOptions build;
    build.page_size = options.ccam_page_size;
    auto report =
        storage::BuildCcamFile(*network, options.ccam_path, build);
    if (!report.ok()) return report.status();
    storage::CcamOpenOptions open;
    open.buffer_pool_pages = options.ccam_buffer_pool_pages;
    auto store = storage::CcamStore::Open(options.ccam_path, open);
    if (!store.ok()) return store.status();
    engine->store_ = std::move(*store);
    engine->disk_accessor_.emplace(engine->store_.get());
  }
  return engine;
}

std::unique_ptr<TravelTimeEstimator> FastestPathEngine::MakeEstimator(
    network::NodeId anchor, BoundaryNodeEstimator::Direction direction) {
  if (boundary_index_.has_value()) {
    return std::make_unique<BoundaryNodeEstimator>(&*boundary_index_,
                                                   accessor(), anchor,
                                                   direction);
  }
  return std::make_unique<EuclideanEstimator>(accessor(), anchor);
}

AllFpResult FastestPathEngine::AllFastestPaths(const ProfileQuery& query) {
  auto estimator =
      MakeEstimator(query.target, BoundaryNodeEstimator::Direction::kToAnchor);
  ProfileSearch search(accessor(), estimator.get(), options_.search);
  return search.RunAllFp(query);
}

SingleFpResult FastestPathEngine::SingleFastestPath(
    const ProfileQuery& query) {
  auto estimator =
      MakeEstimator(query.target, BoundaryNodeEstimator::Direction::kToAnchor);
  ProfileSearch search(accessor(), estimator.get(), options_.search);
  return search.RunSingleFp(query);
}

ReverseAllFpResult FastestPathEngine::ArrivalAllFastestPaths(
    const ReverseProfileQuery& query) {
  auto estimator = MakeEstimator(
      query.source, BoundaryNodeEstimator::Direction::kFromAnchor);
  ReverseProfileSearch search(network_, estimator.get(), options_.search);
  return search.RunAllFp(query);
}

ReverseSingleFpResult FastestPathEngine::ArrivalSingleFastestPath(
    const ReverseProfileQuery& query) {
  auto estimator = MakeEstimator(
      query.source, BoundaryNodeEstimator::Direction::kFromAnchor);
  ReverseProfileSearch search(network_, estimator.get(), options_.search);
  return search.RunSingleFp(query);
}

TdAStarResult FastestPathEngine::FastestPathAt(network::NodeId source,
                                               network::NodeId target,
                                               double leave_time) {
  auto estimator =
      MakeEstimator(target, BoundaryNodeEstimator::Direction::kToAnchor);
  return TdAStar(accessor(), source, target, leave_time, estimator.get());
}

std::optional<storage::CcamStats> FastestPathEngine::storage_stats() const {
  if (store_ == nullptr) return std::nullopt;
  return store_->stats();
}

void FastestPathEngine::ResetStorageStats() {
  if (store_ != nullptr) store_->ResetStats();
}

}  // namespace capefp::core
