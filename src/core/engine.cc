#include "src/core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "src/storage/ccam_builder.h"
#include "src/util/check.h"

namespace capefp::core {

FastestPathEngine::FastestPathEngine(const network::RoadNetwork* network,
                                     const EngineOptions& options)
    : network_(network), options_(options) {
  memory_accessor_.emplace(network);
}

util::StatusOr<std::unique_ptr<FastestPathEngine>> FastestPathEngine::Create(
    const network::RoadNetwork* network, const EngineOptions& options) {
  CAPEFP_CHECK(network != nullptr);
  auto engine = std::unique_ptr<FastestPathEngine>(
      new FastestPathEngine(network, options));

  if (options.estimator != EngineOptions::EstimatorKind::kNaive) {
    BoundaryIndexOptions index_options;
    index_options.grid_dim = options.boundary_grid_dim;
    index_options.mode =
        options.estimator == EngineOptions::EstimatorKind::kBoundaryDistance
            ? BoundaryIndexOptions::Mode::kDistance
            : BoundaryIndexOptions::Mode::kTravelTime;
    engine->boundary_index_.emplace(*network, index_options);
  }

  if (!options.ccam_path.empty()) {
    storage::CcamBuildOptions build;
    build.page_size = options.ccam_page_size;
    auto report =
        storage::BuildCcamFile(*network, options.ccam_path, build);
    if (!report.ok()) return report.status();
    storage::CcamOpenOptions open;
    open.buffer_pool_pages = options.ccam_buffer_pool_pages;
    auto store = storage::CcamStore::Open(options.ccam_path, open);
    if (!store.ok()) return store.status();
    engine->store_ = std::move(*store);
    engine->disk_accessor_.emplace(engine->store_.get());
  }

  if (options.ttf_cache_entries > 0) {
    engine->ttf_cache_ =
        std::make_unique<network::EdgeTtfCache>(options.ttf_cache_entries);
    engine->set_ttf_cache_enabled(true);
  }

  if (options.query_mode == EngineOptions::QueryMode::kHierarchicalTwoPhase) {
    if (!options.hierarchical_index_path.empty()) {
      auto loaded =
          HierarchicalIndex::Load(network, options.hierarchical_index_path);
      if (!loaded.ok()) return loaded.status();
      engine->hier_index_ = std::move(*loaded);
    } else {
      engine->hier_index_ =
          std::make_unique<HierarchicalIndex>(network, options.hierarchical);
    }
  }
  engine->InitMetrics();
  return engine;
}

void FastestPathEngine::InitMetrics() {
  queries_total_ = metrics_.GetCounter("capefp.engine.queries");
  batches_total_ = metrics_.GetCounter("capefp.engine.batches");
  td_queries_total_ = metrics_.GetCounter("capefp.engine.td_queries");
  query_latency_ms_ = metrics_.GetHistogram("capefp.engine.query_latency_ms");
  search_expansions_ = metrics_.GetCounter("capefp.search.expansions");
  search_pushes_ = metrics_.GetCounter("capefp.search.pushes");
  search_pruned_dominated_ =
      metrics_.GetCounter("capefp.search.pruned_dominated");
  search_pruned_bound_ = metrics_.GetCounter("capefp.search.pruned_bound");
  search_pruned_filtered_ =
      metrics_.GetCounter("capefp.search.pruned_filtered");
  td_expanded_nodes_ = metrics_.GetCounter("capefp.td_astar.expanded_nodes");
  if (hier_index_ != nullptr) {
    hier_queries_ = metrics_.GetCounter("capefp.hier.queries");
    hier_fallbacks_ = metrics_.GetCounter("capefp.hier.fallbacks");
    hier_corridor_expansions_ =
        metrics_.GetCounter("capefp.hier.corridor_expansions");
    hier_corridor_fragments_ =
        metrics_.GetCounter("capefp.hier.corridor_fragments");
    hier_corridor_nodes_ = metrics_.GetCounter("capefp.hier.corridor_nodes");
    hier_corridor_ms_ = metrics_.GetHistogram("capefp.hier.corridor_ms");
    hier_refine_ms_ = metrics_.GetHistogram("capefp.hier.refine_ms");
  }
  // Per-worker PWL-arena aggregates (see AccumulateArenaStats). Callbacks
  // read engine atomics only — never the arenas themselves — so they are
  // safe under the registry mutex and touch no per-worker state.
  metrics_.AddCallbackCounter("capefp.tdf.arena.spills",
                              [this] { return arena_spills_.load(); });
  metrics_.AddCallbackCounter("capefp.tdf.arena.block_reuses",
                              [this] { return arena_block_reuses_.load(); });
  metrics_.AddCallbackGauge("capefp.tdf.arena.bytes", [this] {
    return static_cast<double>(arena_bytes_.load());
  });
  metrics_.AddCallbackGauge("capefp.tdf.arena.high_water_bytes", [this] {
    return static_cast<double>(arena_high_water_bytes_.load());
  });
  if (ttf_cache_ != nullptr) {
    ttf_cache_->RegisterMetrics(&metrics_, "capefp.ttf_cache");
  }
  if (store_ != nullptr) {
    store_->RegisterMetrics(&metrics_, "capefp.storage");
  }
}

std::unique_ptr<TravelTimeEstimator> FastestPathEngine::MakeEstimator(
    network::NodeId anchor, BoundaryNodeEstimator::Direction direction,
    EstimatorScratch* scratch) {
  if (boundary_index_.has_value()) {
    return std::make_unique<BoundaryNodeEstimator>(&*boundary_index_,
                                                   accessor(), anchor,
                                                   direction, scratch);
  }
  return std::make_unique<EuclideanEstimator>(accessor(), anchor, scratch);
}

void FastestPathEngine::AccumulateArenaStats(
    const tdf::PwlArena::Stats& before, const tdf::PwlArena::Stats& after) {
  arena_spills_.fetch_add(after.spills - before.spills,
                          std::memory_order_relaxed);
  arena_block_reuses_.fetch_add(after.block_reuses - before.block_reuses,
                                std::memory_order_relaxed);
  // Footprint/high-water are per-arena gauges; publish the engine-wide
  // maximum seen across workers.
  auto raise_to = [](std::atomic<uint64_t>& slot, uint64_t value) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < value &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  };
  raise_to(arena_bytes_, after.footprint_bytes);
  raise_to(arena_high_water_bytes_, after.high_water_bytes);
}

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

uint64_t AsU64(int64_t v) { return v < 0 ? 0 : static_cast<uint64_t>(v); }

}  // namespace

AllFpResult FastestPathEngine::RunOneAllFp(const ProfileQuery& query,
                                           QueryScratch* scratch,
                                           obs::Trace* trace,
                                           double* elapsed_ms) {
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = trace != nullptr;
  // One-shot callers get a local scratch so the estimator memo and arena
  // metrics behave identically to the batch path (cold arena, so the first
  // allocations count as spills — warm reuse is what RunBatch measures).
  QueryScratch local_scratch;
  QueryScratch* q = scratch != nullptr ? scratch : &local_scratch;
  ProfileSearch::Scratch* s = &q->search;
  const tdf::PwlArena::Stats arena_before = s->arena.stats();

  // Storage and cache movement is attributed by before/after deltas of the
  // components' own counters (exact when queries run sequentially; see the
  // RunBatchWithMetrics comment for the concurrent caveat).
  std::optional<storage::CcamStats> storage_before;
  std::optional<network::EdgeTtfCacheStats> cache_before;
  obs::Trace::Span root;
  if (tracing) {
    storage_before = storage_stats();
    cache_before = ttf_cache_stats();
    root = trace->StartSpan("query.all_fp");
    root.AddAttr("source", static_cast<double>(query.source));
    root.AddAttr("target", static_cast<double>(query.target));
  }

  std::unique_ptr<TravelTimeEstimator> estimator;
  {
    obs::Trace::Span est_span =
        tracing ? trace->StartSpan("estimator") : obs::Trace::Span();
    estimator = MakeEstimator(query.target,
                              BoundaryNodeEstimator::Direction::kToAnchor,
                              &s->estimator);
  }

  // Corridor phase (two-phase mode): restrict the exact search below to the
  // fragments the approximate overlay search proves can carry an optimal
  // departure. Identical answers either way — on any corridor failure the
  // filter stays inactive and the query runs flat.
  s->filter.Reset();
  double corridor_upper_bound = std::numeric_limits<double>::infinity();
  if (hier_index_ != nullptr) {
    const auto corridor_start = std::chrono::steady_clock::now();
    obs::Trace::Span corridor_span =
        tracing ? trace->StartSpan("hier.corridor") : obs::Trace::Span();
    auto corridor = hier_index_->ExtractCorridor(query, estimator.get(),
                                                 q->corridor, &s->filter);
    hier_queries_->Add(1);
    if (corridor.ok()) {
      corridor_upper_bound = corridor->upper_bound_max;
      hier_corridor_expansions_->Add(AsU64(corridor->stats.expansions));
      hier_corridor_fragments_->Add(
          AsU64(static_cast<int64_t>(corridor->fragments_marked)));
      hier_corridor_nodes_->Add(corridor->corridor_nodes);
      if (corridor_span.active()) {
        corridor_span.AddAttr(
            "fragments", static_cast<double>(corridor->fragments_marked));
        corridor_span.AddAttr(
            "corridor_nodes",
            static_cast<double>(corridor->corridor_nodes));
        corridor_span.AddAttr(
            "expansions", static_cast<double>(corridor->stats.expansions));
      }
    } else {
      // E.g. the query interval or an approximate arrival left the build
      // window: fall back to the flat search for this query.
      s->filter.Reset();
      hier_fallbacks_->Add(1);
      if (corridor_span.active()) corridor_span.AddAttr("fallback", 1.0);
    }
    hier_corridor_ms_->Record(MillisSince(corridor_start));
  }

  AllFpResult result;
  const auto refine_start = std::chrono::steady_clock::now();
  {
    obs::Trace::Span search_span =
        tracing ? trace->StartSpan("search") : obs::Trace::Span();
    // The corridor's upper-bound border max is achievable over the whole
    // leave interval; seeding it activates the refine search's bound
    // pruning before the first target pop (no-op in flat mode: +inf).
    ProfileSearchOptions search_options = options_.search;
    search_options.initial_upper_bound = corridor_upper_bound;
    ProfileSearch search(accessor(), estimator.get(), search_options, s,
                         trace);
    result = search.RunAllFp(query);
    if (tracing) {
      if (cache_before.has_value()) {
        const network::EdgeTtfCacheStats after = *ttf_cache_stats();
        search_span.AddAttr(
            "ttf_cache_hits",
            static_cast<double>(after.hits - cache_before->hits));
        search_span.AddAttr(
            "ttf_cache_misses",
            static_cast<double>(after.misses - cache_before->misses));
      }
      if (storage_before.has_value()) {
        const storage::CcamStats after = *storage_stats();
        const uint64_t reads =
            after.pager.page_reads - storage_before->pager.page_reads;
        const uint64_t writes =
            after.pager.page_writes - storage_before->pager.page_writes;
        const double io_ms =
            after.pager.io_millis() - storage_before->pager.io_millis();
        if (reads + writes > 0) {
          trace->AddLeaf("storage_io", io_ms, reads + writes);
        }
        search_span.AddAttr(
            "pages_hit",
            static_cast<double>(after.pool.hits - storage_before->pool.hits));
        search_span.AddAttr("pages_faulted",
                            static_cast<double>(after.pool.faults -
                                                storage_before->pool.faults));
      }
    }
  }

  if (hier_index_ != nullptr) {
    hier_refine_ms_->Record(MillisSince(refine_start));
    // The filter is per-query state; never leak it into a later query that
    // might run without a corridor.
    s->filter.Reset();
  }
  AccumulateArenaStats(arena_before, s->arena.stats());
  const double ms = MillisSince(start);
  if (elapsed_ms != nullptr) *elapsed_ms = ms;
  queries_total_->Add(1);
  query_latency_ms_->Record(ms);
  search_expansions_->Add(AsU64(result.stats.expansions));
  search_pushes_->Add(AsU64(result.stats.pushes));
  search_pruned_dominated_->Add(AsU64(result.stats.pruned_dominated));
  search_pruned_bound_->Add(AsU64(result.stats.pruned_bound));
  search_pruned_filtered_->Add(AsU64(result.stats.pruned_filtered));
  return result;
}

AllFpResult FastestPathEngine::AllFastestPaths(const ProfileQuery& query,
                                               obs::Trace* trace) {
  return RunOneAllFp(query, /*scratch=*/nullptr, trace,
                     /*elapsed_ms=*/nullptr);
}

SingleFpResult FastestPathEngine::SingleFastestPath(const ProfileQuery& query,
                                                    obs::Trace* trace) {
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = trace != nullptr;
  obs::Trace::Span root =
      tracing ? trace->StartSpan("query.single_fp") : obs::Trace::Span();
  std::unique_ptr<TravelTimeEstimator> estimator;
  {
    obs::Trace::Span est_span =
        tracing ? trace->StartSpan("estimator") : obs::Trace::Span();
    estimator = MakeEstimator(query.target,
                              BoundaryNodeEstimator::Direction::kToAnchor);
  }
  SingleFpResult result;
  {
    obs::Trace::Span search_span =
        tracing ? trace->StartSpan("search") : obs::Trace::Span();
    ProfileSearch search(accessor(), estimator.get(), options_.search,
                         /*scratch=*/nullptr, trace);
    result = search.RunSingleFp(query);
  }
  queries_total_->Add(1);
  query_latency_ms_->Record(MillisSince(start));
  search_expansions_->Add(AsU64(result.stats.expansions));
  search_pushes_->Add(AsU64(result.stats.pushes));
  search_pruned_dominated_->Add(AsU64(result.stats.pruned_dominated));
  search_pruned_bound_->Add(AsU64(result.stats.pruned_bound));
  search_pruned_filtered_->Add(AsU64(result.stats.pruned_filtered));
  return result;
}

void FastestPathEngine::RunBatchImpl(std::span<const ProfileQuery> queries,
                                     int threads,
                                     std::vector<AllFpResult>* results,
                                     std::vector<double>* per_query_millis,
                                     std::vector<obs::Trace>* traces,
                                     obs::Histogram* batch_latency) {
  std::atomic<size_t> next{0};
  // Queries are handed out one at a time, so stragglers cannot leave a
  // whole stripe on one worker. Each worker reuses one Scratch across its
  // queries; everything shared (network, boundary index, TTF cache, buffer
  // pool) is immutable or internally synchronized, and a query's trace is
  // touched only by the worker that claimed it.
  auto worker = [&]() {
    QueryScratch scratch;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < queries.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      double ms = 0.0;
      obs::Trace* trace = traces != nullptr ? &(*traces)[i] : nullptr;
      (*results)[i] = RunOneAllFp(queries[i], &scratch, trace, &ms);
      if (per_query_millis != nullptr) (*per_query_millis)[i] = ms;
      if (batch_latency != nullptr) batch_latency->Record(ms);
    }
  };

  const int num_workers = std::max(
      1, std::min(threads, static_cast<int>(queries.size())));
  if (num_workers == 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(num_workers));
  for (int t = 0; t < num_workers; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
}

std::vector<AllFpResult> FastestPathEngine::RunBatch(
    std::span<const ProfileQuery> queries, int threads,
    std::vector<double>* per_query_millis) {
  std::vector<AllFpResult> results(queries.size());
  if (per_query_millis != nullptr) {
    per_query_millis->assign(queries.size(), 0.0);
  }
  if (queries.empty()) return results;
  batches_total_->Add(1);
  RunBatchImpl(queries, threads, &results, per_query_millis,
               /*traces=*/nullptr, /*batch_latency=*/nullptr);
  return results;
}

BatchResult FastestPathEngine::RunBatchWithMetrics(
    std::span<const ProfileQuery> queries, int threads,
    std::vector<obs::Trace>* traces) {
  BatchResult batch;
  batch.results.resize(queries.size());
  batch.per_query_millis.assign(queries.size(), 0.0);
  if (traces != nullptr) {
    traces->clear();
    traces->resize(queries.size());
  }
  obs::Histogram latency;
  if (!queries.empty()) {
    batches_total_->Add(1);
    RunBatchImpl(queries, threads, &batch.results, &batch.per_query_millis,
                 traces, &latency);
  }
  batch.latency_ms = latency.Snapshot();
  batch.metrics = metrics_.Snapshot();
  return batch;
}

ReverseAllFpResult FastestPathEngine::ArrivalAllFastestPaths(
    const ReverseProfileQuery& query) {
  ReverseProfileSearch::Scratch scratch;
  auto estimator =
      MakeEstimator(query.source,
                    BoundaryNodeEstimator::Direction::kFromAnchor,
                    &scratch.estimator);
  ReverseProfileSearch search(network_, estimator.get(), options_.search,
                              &scratch);
  const tdf::PwlArena::Stats before = scratch.arena.stats();
  ReverseAllFpResult result = search.RunAllFp(query);
  AccumulateArenaStats(before, scratch.arena.stats());
  return result;
}

ReverseSingleFpResult FastestPathEngine::ArrivalSingleFastestPath(
    const ReverseProfileQuery& query) {
  ReverseProfileSearch::Scratch scratch;
  auto estimator =
      MakeEstimator(query.source,
                    BoundaryNodeEstimator::Direction::kFromAnchor,
                    &scratch.estimator);
  ReverseProfileSearch search(network_, estimator.get(), options_.search,
                              &scratch);
  const tdf::PwlArena::Stats before = scratch.arena.stats();
  ReverseSingleFpResult result = search.RunSingleFp(query);
  AccumulateArenaStats(before, scratch.arena.stats());
  return result;
}

TdAStarResult FastestPathEngine::FastestPathAt(network::NodeId source,
                                               network::NodeId target,
                                               double leave_time,
                                               obs::Trace* trace) {
  const bool tracing = trace != nullptr;
  obs::Trace::Span root =
      tracing ? trace->StartSpan("query.fixed_departure") : obs::Trace::Span();
  std::unique_ptr<TravelTimeEstimator> estimator;
  {
    obs::Trace::Span est_span =
        tracing ? trace->StartSpan("estimator") : obs::Trace::Span();
    estimator = MakeEstimator(target,
                              BoundaryNodeEstimator::Direction::kToAnchor);
  }
  TdAStarResult result =
      TdAStar(accessor(), source, target, leave_time, estimator.get(), trace);
  td_queries_total_->Add(1);
  td_expanded_nodes_->Add(AsU64(result.expanded_nodes));
  return result;
}

std::optional<storage::CcamStats> FastestPathEngine::storage_stats() const {
  if (store_ == nullptr) return std::nullopt;
  return store_->stats();
}

void FastestPathEngine::ResetStorageStats() {
  if (store_ != nullptr) store_->ResetStats();
}

std::optional<network::EdgeTtfCacheStats> FastestPathEngine::ttf_cache_stats()
    const {
  if (ttf_cache_ == nullptr) return std::nullopt;
  return ttf_cache_->stats();
}

void FastestPathEngine::ResetTtfCacheStats() {
  if (ttf_cache_ != nullptr) ttf_cache_->ResetStats();
}

void FastestPathEngine::ClearTtfCache() {
  if (ttf_cache_ != nullptr) ttf_cache_->Clear();
}

void FastestPathEngine::set_ttf_cache_enabled(bool enabled) {
  network::EdgeTtfCache* cache = enabled ? ttf_cache_.get() : nullptr;
  if (enabled && cache == nullptr) return;  // No cache to enable.
  memory_accessor_->set_ttf_cache(cache);
  if (disk_accessor_.has_value()) disk_accessor_->set_ttf_cache(cache);
}

bool FastestPathEngine::ttf_cache_enabled() const {
  return memory_accessor_->ttf_cache() != nullptr;
}

}  // namespace capefp::core
