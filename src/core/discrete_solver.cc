#include "src/core/discrete_solver.h"

#include <vector>

#include "src/util/check.h"

namespace capefp::core {

namespace {

// "Pose a query every step_minutes" (§6.3): instants lo, lo+step, ... in
// the half-open interval [lo, hi). This is what makes the discrete model
// inaccurate — the fastest departure can fall between (or after) the
// samples. A degenerate interval yields the single instant lo.
std::vector<double> SampleInstants(const DiscreteQuery& query) {
  CAPEFP_CHECK_GT(query.step_minutes, 0.0);
  CAPEFP_CHECK_LE(query.leave_lo, query.leave_hi);
  std::vector<double> instants;
  if (query.leave_hi - query.leave_lo <= 1e-9) {
    instants.push_back(query.leave_lo);
    return instants;
  }
  for (double t = query.leave_lo; t < query.leave_hi - 1e-9;
       t += query.step_minutes) {
    instants.push_back(t);
  }
  return instants;
}

}  // namespace

DiscreteSingleFpResult DiscreteSingleFp(network::NetworkAccessor* accessor,
                                        TravelTimeEstimator* estimator,
                                        const DiscreteQuery& query) {
  DiscreteSingleFpResult result;
  for (double t : SampleInstants(query)) {
    TdAStarResult probe =
        TdAStar(accessor, query.source, query.target, t, estimator);
    ++result.num_probes;
    result.expanded_nodes += probe.expanded_nodes;
    if (!probe.found) continue;
    if (!result.found ||
        probe.travel_time_minutes < result.best_travel_minutes) {
      result.found = true;
      result.best_travel_minutes = probe.travel_time_minutes;
      result.best_leave_time = t;
      result.path = std::move(probe.path);
    }
  }
  return result;
}

DiscreteAllFpResult DiscreteAllFp(network::NetworkAccessor* accessor,
                                  TravelTimeEstimator* estimator,
                                  const DiscreteQuery& query) {
  DiscreteAllFpResult result;
  for (double t : SampleInstants(query)) {
    TdAStarResult probe =
        TdAStar(accessor, query.source, query.target, t, estimator);
    result.expanded_nodes += probe.expanded_nodes;
    if (!probe.found) continue;
    result.found = true;
    result.probes.push_back(
        {t, probe.travel_time_minutes, std::move(probe.path)});
  }
  return result;
}

}  // namespace capefp::core
