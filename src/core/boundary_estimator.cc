#include "src/core/boundary_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/util/check.h"

namespace capefp::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using network::EdgeId;
using network::NodeId;
using network::RoadNetwork;

// Min-heap entry for the Dijkstra sweeps.
struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

double BoundaryNodeIndex::EdgeWeight(const RoadNetwork& net,
                                     EdgeId edge) const {
  return options_.mode == BoundaryIndexOptions::Mode::kDistance
             ? net.edge(edge).distance_miles
             : net.MinEdgeTravelTime(edge);
}

BoundaryNodeIndex::BoundaryNodeIndex(const RoadNetwork& net,
                                     const BoundaryIndexOptions& options)
    : options_(options), vmax_(net.max_speed()) {
  CAPEFP_CHECK_GE(options.grid_dim, 1);
  const size_t n = net.num_nodes();
  CAPEFP_CHECK_GT(n, 0u);
  const int g = options_.grid_dim;
  num_cells_ = g * g;

  // --- Cell assignment.
  cell_of_.resize(n);
  const geo::BoundingBox& box = net.bounding_box();
  const double w = std::max(box.width(), 1e-12);
  const double h = std::max(box.height(), 1e-12);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point& p = net.location(static_cast<NodeId>(i));
    const int cx = std::clamp(
        static_cast<int>((p.x - box.lo().x) / w * g), 0, g - 1);
    const int cy = std::clamp(
        static_cast<int>((p.y - box.lo().y) / h * g), 0, g - 1);
    cell_of_[i] = cy * g + cx;
  }

  // --- Boundary detection.
  std::vector<bool> is_exit(n, false);
  std::vector<bool> is_entry(n, false);
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<EdgeId>(e));
    if (cell_of_[static_cast<size_t>(edge.from)] !=
        cell_of_[static_cast<size_t>(edge.to)]) {
      is_exit[static_cast<size_t>(edge.from)] = true;
      is_entry[static_cast<size_t>(edge.to)] = true;
    }
  }
  std::vector<std::vector<NodeId>> exits(static_cast<size_t>(num_cells_));
  std::vector<std::vector<NodeId>> entries(static_cast<size_t>(num_cells_));
  for (size_t i = 0; i < n; ++i) {
    if (is_exit[i]) {
      exits[static_cast<size_t>(cell_of_[i])].push_back(
          static_cast<NodeId>(i));
      ++num_exit_boundaries_;
    }
    if (is_entry[i]) {
      entries[static_cast<size_t>(cell_of_[i])].push_back(
          static_cast<NodeId>(i));
      ++num_entry_boundaries_;
    }
  }

  // --- (3) Within-cell multi-source sweeps.
  to_exit_.assign(n, kInf);
  from_entry_.assign(n, kInf);
  {
    // to_exit_: Dijkstra over reversed within-cell edges from all exits.
    MinHeap heap;
    for (size_t i = 0; i < n; ++i) {
      if (is_exit[i]) {
        to_exit_[i] = 0.0;
        heap.push({0.0, static_cast<NodeId>(i)});
      }
    }
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.dist > to_exit_[static_cast<size_t>(top.node)]) continue;
      for (EdgeId e : net.InEdges(top.node)) {
        const network::Edge& edge = net.edge(e);
        if (cell_of_[static_cast<size_t>(edge.from)] !=
            cell_of_[static_cast<size_t>(edge.to)]) {
          continue;  // Within-cell restriction.
        }
        const double nd = top.dist + EdgeWeight(net, e);
        if (nd < to_exit_[static_cast<size_t>(edge.from)]) {
          to_exit_[static_cast<size_t>(edge.from)] = nd;
          heap.push({nd, edge.from});
        }
      }
    }
  }
  {
    // from_entry_: forward within-cell Dijkstra from all entries.
    MinHeap heap;
    for (size_t i = 0; i < n; ++i) {
      if (is_entry[i]) {
        from_entry_[i] = 0.0;
        heap.push({0.0, static_cast<NodeId>(i)});
      }
    }
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.dist > from_entry_[static_cast<size_t>(top.node)]) continue;
      for (EdgeId e : net.OutEdges(top.node)) {
        const network::Edge& edge = net.edge(e);
        if (cell_of_[static_cast<size_t>(edge.from)] !=
            cell_of_[static_cast<size_t>(edge.to)]) {
          continue;
        }
        const double nd = top.dist + EdgeWeight(net, e);
        if (nd < from_entry_[static_cast<size_t>(edge.to)]) {
          from_entry_[static_cast<size_t>(edge.to)] = nd;
          heap.push({nd, edge.to});
        }
      }
    }
  }

  // --- (2) Cell-pair table: one full-graph multi-source Dijkstra per cell
  // with exit boundaries.
  cell_pair_.assign(static_cast<size_t>(num_cells_) * num_cells_, kInf);
  std::vector<double> dist(n);
  for (int c = 0; c < num_cells_; ++c) {
    const auto& sources = exits[static_cast<size_t>(c)];
    if (sources.empty()) continue;
    std::fill(dist.begin(), dist.end(), kInf);
    MinHeap heap;
    for (NodeId s : sources) {
      dist[static_cast<size_t>(s)] = 0.0;
      heap.push({0.0, s});
    }
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.dist > dist[static_cast<size_t>(top.node)]) continue;
      for (EdgeId e : net.OutEdges(top.node)) {
        const network::Edge& edge = net.edge(e);
        const double nd = top.dist + EdgeWeight(net, e);
        if (nd < dist[static_cast<size_t>(edge.to)]) {
          dist[static_cast<size_t>(edge.to)] = nd;
          heap.push({nd, edge.to});
        }
      }
    }
    double* row = &cell_pair_[static_cast<size_t>(c) * num_cells_];
    for (size_t i = 0; i < n; ++i) {
      if (is_entry[i] && dist[i] < row[cell_of_[i]]) {
        row[cell_of_[i]] = dist[i];
      }
    }
  }
}

int BoundaryNodeIndex::CellOf(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), cell_of_.size());
  return cell_of_[static_cast<size_t>(node)];
}

double BoundaryNodeIndex::LowerBoundMinutes(NodeId from, NodeId to) const {
  const int c_from = CellOf(from);
  const int c_to = CellOf(to);
  if (c_from == c_to) return 0.0;
  const double head = to_exit_[static_cast<size_t>(from)];
  const double middle =
      cell_pair_[static_cast<size_t>(c_from) * num_cells_ + c_to];
  const double tail = from_entry_[static_cast<size_t>(to)];
  if (std::isinf(head) || std::isinf(middle) || std::isinf(tail)) {
    // Unreachable under the bound's assumptions (e.g. isolated cell);
    // fall back to the trivial bound.
    return 0.0;
  }
  const double bound = head + middle + tail;
  return options_.mode == BoundaryIndexOptions::Mode::kDistance
             ? bound / vmax_
             : bound;
}

BoundaryNodeEstimator::BoundaryNodeEstimator(const BoundaryNodeIndex* index,
                                             network::NetworkAccessor* accessor,
                                             network::NodeId anchor,
                                             Direction direction,
                                             EstimatorScratch* scratch)
    : index_(index),
      accessor_(accessor),
      anchor_(anchor),
      direction_(direction),
      anchor_location_(accessor->Location(anchor)),
      vmax_(accessor->max_speed()),
      scratch_(scratch) {
  CAPEFP_CHECK(index != nullptr);
  CAPEFP_CHECK_GT(vmax_, 0.0);
  if (scratch_ != nullptr) scratch_->BeginQuery(accessor->num_nodes());
}

double BoundaryNodeEstimator::Compute(network::NodeId node) {
  const double euclid =
      geo::EuclideanDistance(accessor_->Location(node), anchor_location_) /
      vmax_;
  const double boundary = direction_ == Direction::kToAnchor
                              ? index_->LowerBoundMinutes(node, anchor_)
                              : index_->LowerBoundMinutes(anchor_, node);
  return std::max(euclid, boundary);
}

double BoundaryNodeEstimator::Estimate(network::NodeId node) {
  if (scratch_ != nullptr) {
    const auto i = static_cast<size_t>(node);
    if (scratch_->stamp[i] == scratch_->epoch) return scratch_->value[i];
    const double estimate = Compute(node);
    scratch_->stamp[i] = scratch_->epoch;
    scratch_->value[i] = estimate;
    return estimate;
  }
  const auto it = cache_.find(node);
  if (it != cache_.end()) return it->second;
  const double estimate = Compute(node);
  cache_.emplace(node, estimate);
  return estimate;
}

}  // namespace capefp::core
