// Two-level hierarchical fastest-path search.
//
// §6.1 of the paper: "our fastest path algorithm can easily scale in larger
// networks by employing hierarchical network partitioning [9, 7, 8, 16]".
// This module implements that sketch for two levels:
//
//  * The plane is cut into a g×g grid of fragments (reusing the §5
//    partitioning notions: an *entry* boundary node heads a crossing edge,
//    an *exit* boundary node tails one).
//  * For every fragment and every entry node, a within-fragment profile
//    search precomputes the travel-time envelope to each exit node over a
//    build window — the *transit functions*.
//  * A query runs IntAllFastestPaths over the much smaller overlay graph
//    whose nodes are boundary nodes (plus s and t) and whose edges are the
//    original crossing edges plus the transit functions; s- and t-side
//    stubs are computed per query with SingleSourceProfile /
//    SingleTargetProfile restricted to their fragments.
//
// Correctness: any road path decomposes at its crossing edges into maximal
// within-fragment segments whose endpoints are boundary nodes, so the
// overlay border equals the flat IntAllFastestPaths border exactly
// (property-tested against the flat search).
//
// On top of the exact overlay search, the index supports the *two-phase*
// query mode (DESIGN.md §9): ExtractCorridor runs a fast approximate
// profile search over bounded-error simplified transit bounds
// (tdf/pwl_simplify.h) — every label carries a lower AND an upper bound on
// its exact travel-time function — and marks the fragments that can
// possibly carry an optimal departure. The engine then reruns the exact
// flat ProfileSearch restricted to those fragments via a NodeFilter, so the
// final border is the exact one while the exact search touches only a small
// slice of the graph.
//
// The index trades memory for query effort (|entries|·|exits| functions per
// fragment); it targets mid-size networks or fragment sizes tuned so each
// fragment stays small — see bench_hierarchical.
#ifndef CAPEFP_CORE_HIERARCHICAL_H_
#define CAPEFP_CORE_HIERARCHICAL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/node_filter.h"
#include "src/core/profile_search.h"
#include "src/network/road_network.h"
#include "src/tdf/pwl_function.h"
#include "src/util/status.h"

namespace capefp::core {

struct HierarchicalOptions {
  // Fragment grid dimension (g×g fragments).
  int grid_dim = 4;
  // Leaving-time window the transit functions cover. Queries must satisfy
  // [leave_lo, leave_hi + worst in-query arrival slack] ⊆ window; a query
  // needing more returns OutOfRange.
  double window_lo = 0.0;
  double window_hi = 2.0 * tdf::kMinutesPerDay;
  // Maximum absolute error, in minutes, of each simplified transit bound
  // the corridor phase searches over (tdf/pwl_simplify.h). Larger values
  // shrink the overlay functions (faster corridor phase) but loosen the
  // bracket, growing the corridor the exact phase must re-search. Per-hop:
  // a corridor path of k overlay edges carries up to k·eps slack between
  // its lower and upper bound beyond the exact spread.
  double simplify_eps = 0.5;
};

struct HierarchicalBuildStats {
  int fragments_used = 0;
  size_t transit_functions = 0;
  size_t transit_breakpoints = 0;
  // Breakpoints across all simplified lower/upper bound pairs (transit and
  // crossing edges), for the corridor phase.
  size_t approx_breakpoints = 0;
  // Total resident footprint of the index (functions, bounds, adjacency,
  // fragment tables).
  size_t index_bytes = 0;
  double build_seconds = 0.0;
};

// allFP answer at the overlay level: the exact border plus, per piece, the
// boundary-node waypoints of the winning route (s, boundary..., t).
struct HierarchicalPiece {
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  std::vector<network::NodeId> waypoints;
};

struct HierarchicalAllFpResult {
  bool found = false;
  std::vector<HierarchicalPiece> pieces;
  std::optional<tdf::PwlFunction> border;
  SearchStats stats;
};

struct HierarchicalSingleFpResult {
  bool found = false;
  std::vector<network::NodeId> waypoints;
  double best_leave_time = 0.0;
  double best_travel_minutes = 0.0;
  SearchStats stats;
};

// ExtractCorridor's answer: the corridor itself is delivered through the
// NodeFilter passed in; this reports its size and the phase's work.
struct CorridorResult {
  // Target reached at the overlay level. When false the corridor holds
  // just the s/t fragments and the exact phase will confirm "not found".
  bool found = false;
  int fragments_marked = 0;
  // Road-graph nodes admitted by the filter.
  size_t corridor_nodes = 0;
  // Max over the leaving interval of the overlay upper-bound border
  // (infinity when the target was never reached).
  double upper_bound_max = 0.0;
  SearchStats stats;
};

// Dense epoch-stamped node -> double map for the corridor phase's scalar
// passes (same stamping scheme as NodeEpochSet). Absent reads as +inf,
// matching Dijkstra-relaxation semantics.
struct NodeScalarMap {
  std::vector<uint64_t> stamp;
  std::vector<double> value;
  uint64_t epoch = 0;

  void BeginQuery(size_t num_nodes) {
    if (stamp.size() < num_nodes) {
      stamp.resize(num_nodes, 0);
      value.resize(num_nodes, 0.0);
    }
    ++epoch;
  }

  double Get(network::NodeId node) const {
    const auto i = static_cast<size_t>(node);
    return stamp[i] == epoch ? value[i]
                             : std::numeric_limits<double>::infinity();
  }

  // True when `v` improves (or first sets) the node's value.
  bool Improve(network::NodeId node, double v) {
    const auto i = static_cast<size_t>(node);
    if (stamp[i] == epoch && value[i] <= v) return false;
    stamp[i] = epoch;
    value[i] = v;
    return true;
  }
};

class HierarchicalIndex {
 public:
  // A per-query stub bound: simplified bracket of a within-fragment
  // envelope, plus its scalar extremes for the corridor's scalar passes.
  struct StubBound {
    tdf::PwlFunction lower;
    tdf::PwlFunction upper;
    double min_lower = 0.0;
    double max_upper = 0.0;
  };

  // One hop of the scalar upper pass's argmin path: the predecessor (a
  // dense overlay id, see dense_of_) and the hop's simplified upper bound
  // (borrowed from the index or the per-query stubs, both stable for the
  // query's duration).
  struct ScalarParent {
    int32_t from = -1;
    const tdf::PwlFunction* upper = nullptr;
  };

  // Reusable per-worker state of ExtractCorridor; same ownership rules as
  // ProfileSearch::Scratch (arena first, strictly per-worker).
  struct CorridorScratch {
    tdf::PwlArena arena;
    std::vector<HeapEntry> heap;
    // Scalar passes (see the algorithm comment in hierarchical.cc): h_lo
    // is the backward banded-lower distance to t (an admissible
    // overlay-aware heuristic); dist_hi the forward banded-upper distance
    // from s (the achievable cap); dist_lo the forward banded-lower
    // distance from s (the marking pass).
    NodeScalarMap h_lo;
    NodeScalarMap dist_hi;
    NodeScalarMap dist_lo;
    // Predecessor tree of the parent-tracked dist_hi pass, walked to
    // compose the exact upper bracket along the scalar argmin path. Never
    // cleared: the walk starts at the target only when the pass reached it
    // this query, so every entry it follows was written this query.
    std::vector<ScalarParent> scalar_parent;
    std::vector<const tdf::PwlFunction*> path_uppers;
    // Epoch-stamped per-fragment corridor marks.
    std::vector<uint64_t> fragment_stamp;
    uint64_t fragment_epoch = 0;
    // Per-query t-side stub bounds, (dense entry id, bracket), plus an
    // epoch-stamped dense-id -> stub index lookup (value is the index into
    // t_stubs; +inf means none).
    std::vector<std::pair<int32_t, StubBound>> t_stubs;
    NodeScalarMap t_stub_at;
    // Arena-bound destinations for the upper-path composition.
    tdf::PwlFunction restricted{&arena};
    tdf::PwlFunction combined{&arena};
    tdf::PwlFunction envelope_tmp{&arena};
  };

  // Precomputes fragments, transit functions and their simplified bounds.
  // `network` must outlive the index.
  HierarchicalIndex(const network::RoadNetwork* network,
                    const HierarchicalOptions& options = {});

  const HierarchicalBuildStats& build_stats() const { return build_stats_; }
  const HierarchicalOptions& options() const { return options_; }
  int num_fragments() const {
    return options_.grid_dim * options_.grid_dim;
  }
  int FragmentOf(network::NodeId node) const;
  // Exact transit functions (diagnostics: `capefp_cli hier stats`).
  const std::vector<std::unique_ptr<tdf::PwlFunction>>& transit_functions()
      const {
    return transit_;
  }

  // Exact allFP border over the overlay. `estimator` must be anchored at
  // query.target (any admissible TravelTimeEstimator; pass ZeroEstimator to
  // disable guidance). Returns OutOfRange if the query needs leaving times
  // outside the build window.
  util::StatusOr<HierarchicalAllFpResult> RunAllFp(
      const ProfileQuery& query, TravelTimeEstimator* estimator);

  // Stops at the first target pop, as in §4.5.
  util::StatusOr<HierarchicalSingleFpResult> RunSingleFp(
      const ProfileQuery& query, TravelTimeEstimator* estimator);

  // Phase 1 of the two-phase mode: approximate overlay profile search over
  // the simplified bounds, marking into `filter` every node of every
  // fragment that can possibly carry an optimal departure (plus the s/t
  // fragments). `estimator` must be anchored at query.target and
  // admissible. Thread-safe for concurrent callers with distinct scratches.
  // Returns OutOfRange when an approximate arrival leaves the build window
  // (callers fall back to the flat search).
  util::StatusOr<CorridorResult> ExtractCorridor(const ProfileQuery& query,
                                                 TravelTimeEstimator* estimator,
                                                 CorridorScratch& scratch,
                                                 NodeFilter* filter) const;

  // Serialization of the expensive build products (the transit functions;
  // the partition is rebuilt deterministically from the network at load).
  // The format is host-endian binary with a CRC32 payload check.
  util::Status Save(const std::string& path) const;
  static util::StatusOr<std::unique_ptr<HierarchicalIndex>> Load(
      const network::RoadNetwork* network, const std::string& path);

 private:
  struct OverlayEdge {
    network::NodeId to = network::kInvalidNode;
    // Transit edges carry a precomputed function; crossing edges carry the
    // original pattern/distance.
    const tdf::PwlFunction* transit = nullptr;  // Borrowed from transit_.
    network::PatternId pattern = 0;
    double distance_miles = 0.0;
    // Simplified bracket of this edge's exact travel-time function over the
    // build window (borrowed from approx_; set by BuildApprox), plus its
    // full-window scalar extremes. The per-band extremes the corridor's
    // scalar passes consume live in the flat CSR tables below.
    const tdf::PwlFunction* lower = nullptr;
    const tdf::PwlFunction* upper = nullptr;
    double min_lower = 0.0;
    double max_upper = 0.0;
  };

  struct RunOutput {
    LowerBorder border;
    std::vector<std::vector<network::NodeId>> piece_waypoints;
    SearchStats stats;
    bool found = false;
    double best_leave = 0.0;
    double best_travel = 0.0;
    std::vector<network::NodeId> first_waypoints;
  };

  struct LoadTag {};
  HierarchicalIndex(LoadTag, const network::RoadNetwork* network,
                    const HierarchicalOptions& options);

  // Fragment assignment, boundary detection, crossing-edge overlay
  // adjacency, per-fragment node lists/masks.
  void BuildPartition();
  // Per-(fragment, entry, exit) transit functions via within-fragment
  // envelope searches (the expensive build step).
  void BuildTransit();
  // Simplified lower/upper bounds for every overlay edge (transit and
  // crossing) plus the final index_bytes accounting.
  void BuildApprox();

  // Number of fixed-width time bands the per-edge scalar extremes are
  // computed over (see kScalarBandMinutes in hierarchical.cc).
  int NumScalarBands() const;

  util::StatusOr<RunOutput> Run(const ProfileQuery& query,
                                TravelTimeEstimator* estimator,
                                bool stop_at_first_target);

  const network::RoadNetwork* network_;
  HierarchicalOptions options_;
  HierarchicalBuildStats build_stats_;
  std::vector<int> fragment_of_;
  std::vector<std::vector<network::NodeId>> entries_;  // Per fragment.
  std::vector<std::vector<network::NodeId>> exits_;
  std::vector<std::vector<bool>> fragment_mask_;       // Per fragment.
  std::vector<std::vector<network::NodeId>> fragment_nodes_;
  // Static overlay adjacency: transit + crossing edges per boundary node.
  // Used by the exact overlay search (Run); the corridor's scalar passes
  // use the CSR mirror below instead.
  std::unordered_map<network::NodeId, std::vector<OverlayEdge>> overlay_;
  // Scalar-pass CSR (built by BuildApprox, frozen afterwards): every node
  // that appears in the overlay gets a dense id so the corridor's four
  // scalar sweeps run over flat arrays instead of hash adjacency. Edge e's
  // per-band extremes occupy row e of the flattened band tables
  // (row-major, NumScalarBands() doubles per row; shared between the
  // forward and backward directions via the band row index).
  std::vector<int32_t> dense_of_;               // node -> dense id, or -1.
  std::vector<network::NodeId> node_of_dense_;  // dense id -> node.
  std::vector<int32_t> fwd_off_;                // size m+1.
  std::vector<int32_t> fwd_to_;                 // dense head.
  std::vector<int32_t> fwd_band_;               // band-table row.
  std::vector<double> fwd_max_upper_;           // full-window max (pass 1).
  std::vector<const tdf::PwlFunction*> fwd_upper_fn_;
  std::vector<int32_t> bwd_off_;                // size m+1.
  std::vector<int32_t> bwd_from_;               // dense tail.
  std::vector<int32_t> bwd_band_;               // band-table row.
  std::vector<double> band_min_flat_;           // [edge][band] min lower.
  std::vector<double> band_max_flat_;           // [edge][band] max upper.
  // Owns the transit functions the overlay points into.
  std::vector<std::unique_ptr<tdf::PwlFunction>> transit_;
  // Owns the simplified bound functions the overlay points into.
  std::vector<std::unique_ptr<tdf::PwlFunction>> approx_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_HIERARCHICAL_H_
