// Two-level hierarchical fastest-path search.
//
// §6.1 of the paper: "our fastest path algorithm can easily scale in larger
// networks by employing hierarchical network partitioning [9, 7, 8, 16]".
// This module implements that sketch for two levels:
//
//  * The plane is cut into a g×g grid of fragments (reusing the §5
//    partitioning notions: an *entry* boundary node heads a crossing edge,
//    an *exit* boundary node tails one).
//  * For every fragment and every entry node, a within-fragment profile
//    search precomputes the travel-time envelope to each exit node over a
//    build window — the *transit functions*.
//  * A query runs IntAllFastestPaths over the much smaller overlay graph
//    whose nodes are boundary nodes (plus s and t) and whose edges are the
//    original crossing edges plus the transit functions; s- and t-side
//    stubs are computed per query with SingleSourceProfile /
//    SingleTargetProfile restricted to their fragments.
//
// Correctness: any road path decomposes at its crossing edges into maximal
// within-fragment segments whose endpoints are boundary nodes, so the
// overlay border equals the flat IntAllFastestPaths border exactly
// (property-tested against the flat search).
//
// The index trades memory for query effort (|entries|·|exits| functions per
// fragment); it targets mid-size networks or fragment sizes tuned so each
// fragment stays small — see bench_hierarchical.
#ifndef CAPEFP_CORE_HIERARCHICAL_H_
#define CAPEFP_CORE_HIERARCHICAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/profile_search.h"
#include "src/network/road_network.h"
#include "src/tdf/pwl_function.h"
#include "src/util/status.h"

namespace capefp::core {

struct HierarchicalOptions {
  // Fragment grid dimension (g×g fragments).
  int grid_dim = 4;
  // Leaving-time window the transit functions cover. Queries must satisfy
  // [leave_lo, leave_hi + worst in-query arrival slack] ⊆ window; a query
  // needing more returns OutOfRange.
  double window_lo = 0.0;
  double window_hi = 2.0 * tdf::kMinutesPerDay;
};

struct HierarchicalBuildStats {
  int fragments_used = 0;
  size_t transit_functions = 0;
  size_t transit_breakpoints = 0;
  double build_seconds = 0.0;
};

// allFP answer at the overlay level: the exact border plus, per piece, the
// boundary-node waypoints of the winning route (s, boundary..., t).
struct HierarchicalPiece {
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  std::vector<network::NodeId> waypoints;
};

struct HierarchicalAllFpResult {
  bool found = false;
  std::vector<HierarchicalPiece> pieces;
  std::optional<tdf::PwlFunction> border;
  SearchStats stats;
};

struct HierarchicalSingleFpResult {
  bool found = false;
  std::vector<network::NodeId> waypoints;
  double best_leave_time = 0.0;
  double best_travel_minutes = 0.0;
  SearchStats stats;
};

class HierarchicalIndex {
 public:
  // Precomputes fragments and transit functions. `network` must outlive
  // the index.
  HierarchicalIndex(const network::RoadNetwork* network,
                    const HierarchicalOptions& options = {});

  const HierarchicalBuildStats& build_stats() const { return build_stats_; }
  int FragmentOf(network::NodeId node) const;

  // Exact allFP border over the overlay. `estimator` must be anchored at
  // query.target (any admissible TravelTimeEstimator; pass ZeroEstimator to
  // disable guidance). Returns OutOfRange if the query needs leaving times
  // outside the build window.
  util::StatusOr<HierarchicalAllFpResult> RunAllFp(
      const ProfileQuery& query, TravelTimeEstimator* estimator);

  // Stops at the first target pop, as in §4.5.
  util::StatusOr<HierarchicalSingleFpResult> RunSingleFp(
      const ProfileQuery& query, TravelTimeEstimator* estimator);

 private:
  struct OverlayEdge {
    network::NodeId to = network::kInvalidNode;
    // Transit edges carry a precomputed function; crossing edges carry the
    // original pattern/distance.
    const tdf::PwlFunction* transit = nullptr;  // Borrowed from transit_.
    network::PatternId pattern = 0;
    double distance_miles = 0.0;
  };

  struct RunOutput {
    LowerBorder border;
    std::vector<std::vector<network::NodeId>> piece_waypoints;
    SearchStats stats;
    bool found = false;
    double best_leave = 0.0;
    double best_travel = 0.0;
    std::vector<network::NodeId> first_waypoints;
  };

  util::StatusOr<RunOutput> Run(const ProfileQuery& query,
                                TravelTimeEstimator* estimator,
                                bool stop_at_first_target);

  const network::RoadNetwork* network_;
  HierarchicalOptions options_;
  HierarchicalBuildStats build_stats_;
  std::vector<int> fragment_of_;
  std::vector<std::vector<network::NodeId>> entries_;  // Per fragment.
  std::vector<std::vector<network::NodeId>> exits_;
  std::vector<std::vector<bool>> fragment_mask_;       // Per fragment.
  // Static overlay adjacency: transit + crossing edges per boundary node.
  std::unordered_map<network::NodeId, std::vector<OverlayEdge>> overlay_;
  // Owns the transit functions the overlay points into.
  std::vector<std::unique_ptr<tdf::PwlFunction>> transit_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_HIERARCHICAL_H_
