#include "src/core/constant_speed_solver.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "src/util/check.h"

namespace capefp::core {

namespace {

using network::NeighborEdge;
using network::NodeId;

struct QueueEntry {
  double priority;
  double cost;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

}  // namespace

ConstantSpeedResult ConstantSpeedRoute(network::NetworkAccessor* accessor,
                                       NodeId source, NodeId target,
                                       EdgeSpeedAssumption assumption) {
  CAPEFP_CHECK(accessor != nullptr);
  if (!assumption) {
    assumption = [accessor](const NeighborEdge& edge) {
      return accessor->Pattern(edge.pattern).max_speed();
    };
  }
  ConstantSpeedResult result;
  const double vmax = accessor->max_speed();
  const geo::Point target_loc = accessor->Location(target);

  std::unordered_map<NodeId, double> best;
  std::unordered_map<NodeId, NodeId> parent;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  best[source] = 0.0;
  queue.push({geo::EuclideanDistance(accessor->Location(source), target_loc) /
                  vmax,
              0.0, source});

  std::vector<NeighborEdge> neighbors;
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    auto it = best.find(top.node);
    if (it != best.end() && top.cost > it->second + 1e-12) continue;
    ++result.expanded_nodes;
    if (top.node == target) {
      result.found = true;
      result.assumed_travel_minutes = top.cost;
      NodeId at = target;
      result.path.push_back(at);
      while (at != source) {
        at = parent.at(at);
        result.path.push_back(at);
      }
      std::reverse(result.path.begin(), result.path.end());
      return result;
    }
    accessor->GetSuccessors(top.node, &neighbors);
    for (const NeighborEdge& edge : neighbors) {
      const double speed = assumption(edge);
      CAPEFP_CHECK_GT(speed, 0.0);
      const double cost = top.cost + edge.distance_miles / speed;
      auto b = best.find(edge.to);
      if (b == best.end() || cost < b->second - 1e-12) {
        best[edge.to] = cost;
        parent[edge.to] = top.node;
        const double estimate =
            geo::EuclideanDistance(accessor->Location(edge.to), target_loc) /
            vmax;
        queue.push({cost + estimate, cost, edge.to});
      }
    }
  }
  return result;
}

}  // namespace capefp::core
