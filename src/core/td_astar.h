// Time-dependent A* for a fixed leaving instant.
//
// The "special case" of §1-§2: when the departure time is a single instant,
// arrival times per edge are fixed and the fastest-path problem degrades to
// a shortest-path search. Under FIFO (guaranteed by the flow-speed model)
// label-setting A* with an admissible estimator is exact. This is also the
// building block of the discrete-time baseline (§3, §6.3).
#ifndef CAPEFP_CORE_TD_ASTAR_H_
#define CAPEFP_CORE_TD_ASTAR_H_

#include <cstdint>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/node_filter.h"
#include "src/network/accessor.h"

namespace capefp::obs {
class Trace;
}  // namespace capefp::obs

namespace capefp::core {

// Priority-queue entry of TdAStar; lives in a plain vector driven by
// push_heap/pop_heap so the storage survives across queries in a scratch.
struct TdAStarQueueEntry {
  double priority = 0.0;  // arrival + estimate.
  double arrival = 0.0;
  network::NodeId node = network::kInvalidNode;
  bool operator>(const TdAStarQueueEntry& o) const {
    return priority > o.priority;
  }
};

// Reusable per-query state for TdAStar: dense epoch-stamped arrival/parent
// arrays plus queue and neighbor storage that keep their capacity across
// queries. Strictly per-worker, never shared between concurrent searches.
struct TdAStarScratch {
  std::vector<uint64_t> stamp;
  std::vector<double> best_arrival;
  std::vector<network::NodeId> parent;
  std::vector<network::NeighborEdge> neighbors;
  std::vector<TdAStarQueueEntry> heap;
  // Optional corridor restriction (see node_filter.h); inactive by default.
  NodeFilter filter;
  uint64_t epoch = 0;

  void BeginQuery(size_t num_nodes) {
    if (stamp.size() < num_nodes) {
      stamp.resize(num_nodes, 0);
      best_arrival.resize(num_nodes, 0.0);
      parent.resize(num_nodes, network::kInvalidNode);
    }
    ++epoch;
  }
};

struct TdAStarResult {
  bool found = false;
  double travel_time_minutes = 0.0;
  double arrival_time = 0.0;
  // Node sequence source..target (empty if not found).
  std::vector<network::NodeId> path;
  // Nodes popped from the priority queue (the paper's "expanded nodes").
  int64_t expanded_nodes = 0;
};

// Fastest path from `source` leaving at `leave_time` to `target`.
// `estimator` must be anchored at `target` (pass a ZeroEstimator for plain
// time-dependent Dijkstra). `trace`, when non-null, gets a "td_astar"
// span with the expanded-node count. `scratch`, when non-null, lets a
// query loop reuse the search state across calls (local state otherwise).
TdAStarResult TdAStar(network::NetworkAccessor* accessor,
                      network::NodeId source, network::NodeId target,
                      double leave_time, TravelTimeEstimator* estimator,
                      obs::Trace* trace = nullptr,
                      TdAStarScratch* scratch = nullptr);

// Travel time along the explicit `path` (node sequence) leaving the first
// node at `leave_time`, evaluated under the accessor's true CapeCod
// patterns. Aborts if consecutive nodes are not connected.
double EvaluatePathTravelTime(network::NetworkAccessor* accessor,
                              const std::vector<network::NodeId>& path,
                              double leave_time);

}  // namespace capefp::core

#endif  // CAPEFP_CORE_TD_ASTAR_H_
