// The discrete-time baseline of §3 / §6.3.
//
// Discretizes the query interval into instants `step_minutes` apart and
// runs one time-dependent A* per instant. Its singleFP answer converges to
// the continuous one as the step shrinks, but the query cost grows in
// 1/step — the trade-off Figure 10 quantifies.
#ifndef CAPEFP_CORE_DISCRETE_SOLVER_H_
#define CAPEFP_CORE_DISCRETE_SOLVER_H_

#include <cstdint>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/td_astar.h"
#include "src/network/accessor.h"

namespace capefp::core {

struct DiscreteQuery {
  network::NodeId source = network::kInvalidNode;
  network::NodeId target = network::kInvalidNode;
  double leave_lo = 0.0;
  double leave_hi = 0.0;
  // Discretization step (the paper sweeps 1 h, 10 min, 1 min, 10 s).
  double step_minutes = 1.0;
};

struct DiscreteSingleFpResult {
  bool found = false;
  std::vector<network::NodeId> path;
  double best_leave_time = 0.0;
  double best_travel_minutes = 0.0;
  // Number of A* invocations (time instants probed).
  int64_t num_probes = 0;
  // Total expanded nodes across all probes.
  int64_t expanded_nodes = 0;
};

// One sampled instant of the discrete allFP approximation.
struct DiscreteProbe {
  double leave_time = 0.0;
  double travel_minutes = 0.0;
  std::vector<network::NodeId> path;
};

struct DiscreteAllFpResult {
  bool found = false;
  std::vector<DiscreteProbe> probes;
  int64_t expanded_nodes = 0;
};

// Best single departure among the sampled instants lo, lo+step, ... in the
// half-open interval [lo, hi) — "pose a query every step" (§6.3).
// `estimator` must be anchored at query.target and is shared across probes.
DiscreteSingleFpResult DiscreteSingleFp(network::NetworkAccessor* accessor,
                                        TravelTimeEstimator* estimator,
                                        const DiscreteQuery& query);

// Fastest path per sampled instant — the discrete allFP approximation
// (what happens between samples is unknown, §3).
DiscreteAllFpResult DiscreteAllFp(network::NetworkAccessor* accessor,
                                  TravelTimeEstimator* estimator,
                                  const DiscreteQuery& query);

}  // namespace capefp::core

#endif  // CAPEFP_CORE_DISCRETE_SOLVER_H_
