#include "src/core/estimator.h"

#include "src/util/check.h"

namespace capefp::core {

EuclideanEstimator::EuclideanEstimator(network::NetworkAccessor* accessor,
                                       network::NodeId anchor)
    : accessor_(accessor),
      anchor_location_(accessor->Location(anchor)),
      vmax_(accessor->max_speed()) {
  CAPEFP_CHECK_GT(vmax_, 0.0);
}

double EuclideanEstimator::Estimate(network::NodeId node) {
  const auto it = cache_.find(node);
  if (it != cache_.end()) return it->second;
  const double estimate =
      geo::EuclideanDistance(accessor_->Location(node), anchor_location_) /
      vmax_;
  cache_.emplace(node, estimate);
  return estimate;
}

}  // namespace capefp::core
