#include "src/core/estimator.h"

#include "src/util/check.h"

namespace capefp::core {

EuclideanEstimator::EuclideanEstimator(network::NetworkAccessor* accessor,
                                       network::NodeId anchor,
                                       EstimatorScratch* scratch)
    : accessor_(accessor),
      anchor_location_(accessor->Location(anchor)),
      vmax_(accessor->max_speed()),
      scratch_(scratch) {
  CAPEFP_CHECK_GT(vmax_, 0.0);
  if (scratch_ != nullptr) scratch_->BeginQuery(accessor->num_nodes());
}

double EuclideanEstimator::Estimate(network::NodeId node) {
  if (scratch_ != nullptr) {
    const auto i = static_cast<size_t>(node);
    if (scratch_->stamp[i] == scratch_->epoch) return scratch_->value[i];
    const double estimate =
        geo::EuclideanDistance(accessor_->Location(node), anchor_location_) /
        vmax_;
    scratch_->stamp[i] = scratch_->epoch;
    scratch_->value[i] = estimate;
    return estimate;
  }
  const auto it = cache_.find(node);
  if (it != cache_.end()) return it->second;
  const double estimate =
      geo::EuclideanDistance(accessor_->Location(node), anchor_location_) /
      vmax_;
  cache_.emplace(node, estimate);
  return estimate;
}

}  // namespace capefp::core
