// The boundary-node lower-bound estimator of §5.
//
// Precomputation over a g×g spatial grid (the "non-overlapping cells"):
//  (1) boundary nodes: nodes incident to an edge crossing cells — split
//      into exit boundaries (tail of a crossing out-edge) and entry
//      boundaries (head of a crossing in-edge) for a directed-graph-tight
//      bound;
//  (2) per cell pair (C1, C2): the smallest shortest-path weight from any
//      exit boundary of C1 to any entry boundary of C2 (full-graph
//      multi-source Dijkstra per cell);
//  (3) per node: weight to its cell's nearest exit boundary and from its
//      cell's nearest entry boundary, computed with Dijkstras restricted to
//      within-cell edges (valid: the prefix of any escaping path up to its
//      first exit boundary stays inside the cell, and symmetrically for the
//      suffix).
// Query (Theorem 1):  lb(n, e) = toExit(n) + cellPair(C_n, C_e) + fromEntry(e),
// with a fallback to 0 when the nodes share a cell.
//
// Edge weights are either distances in miles (kDistance — the paper's
// presentation; converted to time by dividing by v_max) or per-edge minimum
// travel times in minutes (kTravelTime — the "extension to travel time" the
// paper omits for space; tighter because each edge uses its own best
// speed).
//
// The final estimate is max(boundary bound, Euclidean bound): a max of
// lower bounds is a lower bound.
#ifndef CAPEFP_CORE_BOUNDARY_ESTIMATOR_H_
#define CAPEFP_CORE_BOUNDARY_ESTIMATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/estimator.h"
#include "src/network/road_network.h"

namespace capefp::core {

struct BoundaryIndexOptions {
  // Grid dimension g (g*g cells over the network bounding box).
  int grid_dim = 16;
  enum class Mode {
    kDistance,    // Miles; estimate = bound / v_max.
    kTravelTime,  // Minutes; estimate = bound directly.
  };
  Mode mode = Mode::kDistance;
};

// Precomputed per-network structure; build once, share across queries
// (thread-safe reads).
class BoundaryNodeIndex {
 public:
  BoundaryNodeIndex(const network::RoadNetwork& network,
                    const BoundaryIndexOptions& options = {});

  // Lower bound (in minutes) on the fastest travel time from `from` to
  // `to`, at any departure instant. Returns 0 when the nodes share a cell.
  double LowerBoundMinutes(network::NodeId from, network::NodeId to) const;

  int CellOf(network::NodeId node) const;
  size_t num_exit_boundaries() const { return num_exit_boundaries_; }
  size_t num_entry_boundaries() const { return num_entry_boundaries_; }
  int grid_dim() const { return options_.grid_dim; }
  BoundaryIndexOptions::Mode mode() const { return options_.mode; }

 private:
  double EdgeWeight(const network::RoadNetwork& network,
                    network::EdgeId edge) const;

  BoundaryIndexOptions options_;
  double vmax_;
  std::vector<int> cell_of_;
  // to_exit_[n]: weight of n -> nearest exit boundary of n's cell.
  std::vector<double> to_exit_;
  // from_entry_[n]: weight of nearest entry boundary of n's cell -> n.
  std::vector<double> from_entry_;
  // cell_pair_[c1 * cells + c2]: min weight exit(c1) -> entry(c2).
  std::vector<double> cell_pair_;
  int num_cells_ = 0;
  size_t num_exit_boundaries_ = 0;
  size_t num_entry_boundaries_ = 0;
};

// Per-query estimator combining the boundary bound with the Euclidean one
// (bdLB in the experiments).
class BoundaryNodeEstimator : public TravelTimeEstimator {
 public:
  enum class Direction {
    kToAnchor,    // Estimate(node) bounds node ⇒ anchor (forward search).
    kFromAnchor,  // Estimate(node) bounds anchor ⇒ node (reverse search).
  };

  // `index` and `accessor` must outlive the estimator. `scratch`
  // (optional) replaces the internal per-node cache map with a reusable
  // epoch-stamped array; it must outlive the estimator and not be shared
  // with a concurrently live estimator.
  BoundaryNodeEstimator(const BoundaryNodeIndex* index,
                        network::NetworkAccessor* accessor,
                        network::NodeId anchor,
                        Direction direction = Direction::kToAnchor,
                        EstimatorScratch* scratch = nullptr);

  double Estimate(network::NodeId node) override;

 private:
  double Compute(network::NodeId node);

  const BoundaryNodeIndex* index_;
  network::NetworkAccessor* accessor_;
  network::NodeId anchor_;
  Direction direction_;
  geo::Point anchor_location_;
  double vmax_;
  EstimatorScratch* scratch_;
  std::unordered_map<network::NodeId, double> cache_;
};

}  // namespace capefp::core

#endif  // CAPEFP_CORE_BOUNDARY_ESTIMATOR_H_
