// The "commercial navigation system" baseline of §6.
//
// MapQuest-style routing assumes every segment moves at its speed limit,
// so the route ignores the departure time. This solver computes that
// static route (A* over constant per-edge costs) and exposes it so callers
// can evaluate its *actual* travel time under the true CapeCod patterns —
// the comparison behind the paper's "CapeCod gives ≈50% travel-time
// improvement during rush hours" claim.
#ifndef CAPEFP_CORE_CONSTANT_SPEED_SOLVER_H_
#define CAPEFP_CORE_CONSTANT_SPEED_SOLVER_H_

#include <functional>
#include <vector>

#include "src/network/accessor.h"

namespace capefp::core {

// Assumed constant speed (miles/minute) for an edge; must be positive.
// The default uses the edge pattern's maximum speed — the "speed limit".
using EdgeSpeedAssumption =
    std::function<double(const network::NeighborEdge&)>;

struct ConstantSpeedResult {
  bool found = false;
  std::vector<network::NodeId> path;
  // Travel time predicted by the constant-speed assumption (minutes).
  double assumed_travel_minutes = 0.0;
  int64_t expanded_nodes = 0;
};

// Static fastest path under `assumption` (nullptr → pattern max speed).
ConstantSpeedResult ConstantSpeedRoute(network::NetworkAccessor* accessor,
                                       network::NodeId source,
                                       network::NodeId target,
                                       EdgeSpeedAssumption assumption =
                                           nullptr);

}  // namespace capefp::core

#endif  // CAPEFP_CORE_CONSTANT_SPEED_SOLVER_H_
