#include "src/network/accessor.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace capefp::network {

void NetworkAccessor::EdgeTtfInto(PatternId pattern, double distance_miles,
                                  double lo, double hi,
                                  tdf::PwlFunction* out) {
  if (ttf_cache_ != nullptr) {
    const double day_f = std::floor(lo / tdf::kMinutesPerDay);
    const int64_t day = static_cast<int64_t>(day_f);
    const double day_lo = day_f * tdf::kMinutesPerDay;
    const double day_hi = day_lo + tdf::kMinutesPerDay;
    if (lo >= day_lo - tdf::kTimeEps && hi <= day_hi + tdf::kTimeEps) {
      const EdgeTtfCache::FunctionPtr full_day = EdgeTtfFullDayShared(
          pattern, distance_miles, day);
      full_day->RestrictedInto(std::max(lo, day_lo), std::min(hi, day_hi),
                               out);
      return;
    }
    ttf_cache_->RecordBypass();
  }
  tdf::EdgeTravelTimeFunctionInto(SpeedView(pattern), distance_miles, lo, hi,
                                  out);
}

tdf::PwlFunction NetworkAccessor::EdgeTtf(PatternId pattern,
                                          double distance_miles, double lo,
                                          double hi) {
  tdf::PwlFunction out;
  EdgeTtfInto(pattern, distance_miles, lo, hi, &out);
  return out;
}

EdgeTtfCache::FunctionPtr NetworkAccessor::EdgeTtfFullDayShared(
    PatternId pattern, double distance_miles, int64_t day) {
  CAPEFP_CHECK(ttf_cache_ != nullptr);
  const double day_lo = static_cast<double>(day) * tdf::kMinutesPerDay;
  const double day_hi = day_lo + tdf::kMinutesPerDay;
  return ttf_cache_->GetOrDerive(pattern, distance_miles, day, [&]() {
    return tdf::EdgeTravelTimeFunction(SpeedView(pattern), distance_miles,
                                       day_lo, day_hi);
  });
}

InMemoryAccessor::InMemoryAccessor(const RoadNetwork* network)
    : network_(network), max_speed_(network->max_speed()) {
  CAPEFP_CHECK(network != nullptr);
}

size_t InMemoryAccessor::num_nodes() const { return network_->num_nodes(); }

geo::Point InMemoryAccessor::Location(NodeId node) {
  return network_->location(node);
}

void InMemoryAccessor::GetSuccessors(NodeId node,
                                     std::vector<NeighborEdge>* out) {
  out->clear();
  for (EdgeId edge_id : network_->OutEdges(node)) {
    const Edge& e = network_->edge(edge_id);
    out->push_back({e.to, e.distance_miles, e.pattern, e.road_class});
  }
}

const tdf::CapeCodPattern& InMemoryAccessor::Pattern(PatternId id) const {
  return network_->pattern(id);
}

const tdf::Calendar& InMemoryAccessor::calendar() const {
  return network_->calendar();
}

double InMemoryAccessor::max_speed() const { return max_speed_; }

}  // namespace capefp::network
