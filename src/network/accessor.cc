#include "src/network/accessor.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace capefp::network {

tdf::PwlFunction NetworkAccessor::EdgeTtf(PatternId pattern,
                                          double distance_miles, double lo,
                                          double hi) {
  if (ttf_cache_ != nullptr) {
    const double day_f = std::floor(lo / tdf::kMinutesPerDay);
    const int64_t day = static_cast<int64_t>(day_f);
    const double day_lo = day_f * tdf::kMinutesPerDay;
    const double day_hi = day_lo + tdf::kMinutesPerDay;
    if (lo >= day_lo - tdf::kTimeEps && hi <= day_hi + tdf::kTimeEps) {
      const EdgeTtfCache::FunctionPtr full_day = ttf_cache_->GetOrDerive(
          pattern, distance_miles, day, [&]() {
            return tdf::EdgeTravelTimeFunction(SpeedView(pattern),
                                               distance_miles, day_lo, day_hi);
          });
      return full_day->Restricted(std::max(lo, day_lo),
                                  std::min(hi, day_hi));
    }
    ttf_cache_->RecordBypass();
  }
  return tdf::EdgeTravelTimeFunction(SpeedView(pattern), distance_miles, lo,
                                     hi);
}

InMemoryAccessor::InMemoryAccessor(const RoadNetwork* network)
    : network_(network), max_speed_(network->max_speed()) {
  CAPEFP_CHECK(network != nullptr);
}

size_t InMemoryAccessor::num_nodes() const { return network_->num_nodes(); }

geo::Point InMemoryAccessor::Location(NodeId node) {
  return network_->location(node);
}

void InMemoryAccessor::GetSuccessors(NodeId node,
                                     std::vector<NeighborEdge>* out) {
  out->clear();
  for (EdgeId edge_id : network_->OutEdges(node)) {
    const Edge& e = network_->edge(edge_id);
    out->push_back({e.to, e.distance_miles, e.pattern, e.road_class});
  }
}

const tdf::CapeCodPattern& InMemoryAccessor::Pattern(PatternId id) const {
  return network_->pattern(id);
}

const tdf::Calendar& InMemoryAccessor::calendar() const {
  return network_->calendar();
}

double InMemoryAccessor::max_speed() const { return max_speed_; }

}  // namespace capefp::network
