#include "src/network/accessor.h"

#include "src/util/check.h"

namespace capefp::network {

InMemoryAccessor::InMemoryAccessor(const RoadNetwork* network)
    : network_(network), max_speed_(network->max_speed()) {
  CAPEFP_CHECK(network != nullptr);
}

size_t InMemoryAccessor::num_nodes() const { return network_->num_nodes(); }

geo::Point InMemoryAccessor::Location(NodeId node) {
  return network_->location(node);
}

void InMemoryAccessor::GetSuccessors(NodeId node,
                                     std::vector<NeighborEdge>* out) {
  out->clear();
  for (EdgeId edge_id : network_->OutEdges(node)) {
    const Edge& e = network_->edge(edge_id);
    out->push_back({e.to, e.distance_miles, e.pattern, e.road_class});
  }
}

const tdf::CapeCodPattern& InMemoryAccessor::Pattern(PatternId id) const {
  return network_->pattern(id);
}

const tdf::Calendar& InMemoryAccessor::calendar() const {
  return network_->calendar();
}

double InMemoryAccessor::max_speed() const { return max_speed_; }

}  // namespace capefp::network
