#include "src/network/ttf_cache.h"

#include <algorithm>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace capefp::network {

EdgeTtfCache::EdgeTtfCache(size_t capacity_entries, size_t num_shards) {
  CAPEFP_CHECK_GE(capacity_entries, 1u);
  CAPEFP_CHECK_GE(num_shards, 1u);
  num_shards = std::min(num_shards, capacity_entries);
  shard_capacity_ = (capacity_entries + num_shards - 1) / num_shards;
  shards_ = std::vector<Shard>(num_shards);
}

EdgeTtfCacheStats EdgeTtfCache::stats() const {
  EdgeTtfCacheStats out;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
  }
  out.bypasses = bypasses_.load(std::memory_order_relaxed);
  return out;
}

void EdgeTtfCache::ResetStats() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
  bypasses_.store(0, std::memory_order_relaxed);
}

void EdgeTtfCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
  bypasses_.store(0, std::memory_order_relaxed);
}

size_t EdgeTtfCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    n += shard.map.size();
  }
  return n;
}

void EdgeTtfCache::RegisterMetrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->AddCallbackCounter(prefix + ".hits",
                               [this] { return stats().hits; });
  registry->AddCallbackCounter(prefix + ".misses",
                               [this] { return stats().misses; });
  registry->AddCallbackCounter(prefix + ".evictions",
                               [this] { return stats().evictions; });
  registry->AddCallbackCounter(prefix + ".bypasses",
                               [this] { return stats().bypasses; });
  registry->AddCallbackCounter(prefix + ".lookups",
                               [this] { return stats().lookups(); });
  registry->AddCallbackGauge(prefix + ".hit_rate",
                             [this] { return stats().hit_rate(); });
  registry->AddCallbackGauge(prefix + ".entries", [this] {
    return static_cast<double>(size());
  });
}

}  // namespace capefp::network
