#include "src/network/network_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace capefp::network {

namespace {

constexpr char kMagic[] = "capefp-network";
constexpr int kVersion = 1;

}  // namespace

void WriteScheduleText(const tdf::Calendar& calendar,
                       const std::vector<const tdf::CapeCodPattern*>& patterns,
                       std::ostream& out) {
  const auto& cycle = calendar.cycle();
  out << "calendar " << cycle.size();
  for (tdf::DayCategoryId c : cycle) out << " " << c;
  out << "\n";

  out << "patterns " << patterns.size() << "\n";
  out.precision(17);
  for (const tdf::CapeCodPattern* pat : patterns) {
    out << "pattern " << pat->num_categories() << "\n";
    for (size_t c = 0; c < pat->num_categories(); ++c) {
      const auto& daily = pat->pattern_for(static_cast<tdf::DayCategoryId>(c));
      out << "category " << daily.pieces().size();
      for (const tdf::SpeedPiece& piece : daily.pieces()) {
        out << " " << piece.start_minute << " " << piece.speed_mpm;
      }
      out << "\n";
    }
  }
}

util::StatusOr<ParsedSchedule> ReadScheduleText(std::istream& in) {
  std::string keyword;
  size_t cycle_len = 0;
  if (!(in >> keyword >> cycle_len) || keyword != "calendar" ||
      cycle_len == 0) {
    return util::Status::Corruption("bad calendar header");
  }
  std::vector<tdf::DayCategoryId> cycle(cycle_len);
  for (tdf::DayCategoryId& c : cycle) {
    if (!(in >> c) || c < 0) return util::Status::Corruption("bad calendar");
  }

  size_t num_patterns = 0;
  if (!(in >> keyword >> num_patterns) || keyword != "patterns") {
    return util::Status::Corruption("bad patterns header");
  }
  std::vector<tdf::CapeCodPattern> patterns;
  patterns.reserve(num_patterns);
  for (size_t p = 0; p < num_patterns; ++p) {
    size_t num_categories = 0;
    if (!(in >> keyword >> num_categories) || keyword != "pattern" ||
        num_categories == 0) {
      return util::Status::Corruption("bad pattern header");
    }
    std::vector<tdf::DailySpeedPattern> categories;
    categories.reserve(num_categories);
    for (size_t c = 0; c < num_categories; ++c) {
      size_t num_pieces = 0;
      if (!(in >> keyword >> num_pieces) || keyword != "category" ||
          num_pieces == 0) {
        return util::Status::Corruption("bad category header");
      }
      std::vector<tdf::SpeedPiece> pieces(num_pieces);
      double prev_start = -1.0;
      for (tdf::SpeedPiece& piece : pieces) {
        if (!(in >> piece.start_minute >> piece.speed_mpm)) {
          return util::Status::Corruption("bad speed piece");
        }
        if (piece.speed_mpm <= 0.0 || piece.start_minute <= prev_start ||
            piece.start_minute >= tdf::kMinutesPerDay) {
          return util::Status::Corruption("invalid speed piece values");
        }
        prev_start = piece.start_minute;
      }
      if (pieces.front().start_minute != 0.0) {
        return util::Status::Corruption("first piece must start at 0");
      }
      categories.push_back(tdf::DailySpeedPattern(std::move(pieces)));
    }
    patterns.push_back(tdf::CapeCodPattern(std::move(categories)));
  }
  return ParsedSchedule{tdf::Calendar(std::move(cycle)), std::move(patterns)};
}

util::Status WriteNetworkText(const RoadNetwork& network, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";

  std::vector<const tdf::CapeCodPattern*> patterns;
  patterns.reserve(network.num_patterns());
  for (size_t p = 0; p < network.num_patterns(); ++p) {
    patterns.push_back(&network.pattern(static_cast<PatternId>(p)));
  }
  WriteScheduleText(network.calendar(), patterns, out);

  out.precision(17);
  out << "nodes " << network.num_nodes() << "\n";
  for (size_t n = 0; n < network.num_nodes(); ++n) {
    const geo::Point& loc = network.location(static_cast<NodeId>(n));
    out << loc.x << " " << loc.y << "\n";
  }

  out << "edges " << network.num_edges() << "\n";
  for (size_t e = 0; e < network.num_edges(); ++e) {
    const Edge& edge = network.edge(static_cast<EdgeId>(e));
    out << edge.from << " " << edge.to << " " << edge.distance_miles << " "
        << edge.pattern << " " << static_cast<int>(edge.road_class) << "\n";
  }

  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::Ok();
}

util::StatusOr<RoadNetwork> ReadNetworkText(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return util::Status::InvalidArgument("not a capefp network file");
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported network file version");
  }

  auto schedule_or = ReadScheduleText(in);
  if (!schedule_or.ok()) return schedule_or.status();
  RoadNetwork network{std::move(schedule_or->calendar)};
  const size_t num_patterns = schedule_or->patterns.size();
  for (tdf::CapeCodPattern& pattern : schedule_or->patterns) {
    network.AddPattern(std::move(pattern));
  }

  std::string keyword;
  size_t num_nodes = 0;
  if (!(in >> keyword >> num_nodes) || keyword != "nodes") {
    return util::Status::Corruption("bad nodes header");
  }
  for (size_t n = 0; n < num_nodes; ++n) {
    geo::Point p;
    if (!(in >> p.x >> p.y)) return util::Status::Corruption("bad node");
    network.AddNode(p);
  }

  size_t num_edges = 0;
  if (!(in >> keyword >> num_edges) || keyword != "edges") {
    return util::Status::Corruption("bad edges header");
  }
  for (size_t e = 0; e < num_edges; ++e) {
    int64_t from = 0;
    int64_t to = 0;
    double dist = 0.0;
    int64_t pattern = 0;
    int road_class = 0;
    if (!(in >> from >> to >> dist >> pattern >> road_class)) {
      return util::Status::Corruption("bad edge");
    }
    if (from < 0 || static_cast<size_t>(from) >= num_nodes || to < 0 ||
        static_cast<size_t>(to) >= num_nodes || from == to || dist <= 0.0 ||
        pattern < 0 || static_cast<size_t>(pattern) >= num_patterns ||
        road_class < 0 || road_class >= kNumRoadClasses) {
      return util::Status::Corruption("invalid edge values");
    }
    network.AddEdge(static_cast<NodeId>(from), static_cast<NodeId>(to), dist,
                    static_cast<PatternId>(pattern),
                    static_cast<RoadClass>(road_class));
  }
  return network;
}

util::Status WriteGeoJson(const RoadNetwork& network, std::ostream& out) {
  out << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  out.precision(9);
  // Emit one feature per directed edge unless its exact mirror exists, in
  // which case only the canonical (from < to) direction is written.
  auto has_mirror = [&network](const Edge& edge) {
    for (EdgeId other : network.OutEdges(edge.to)) {
      const Edge& back = network.edge(other);
      if (back.to == edge.from && back.pattern == edge.pattern &&
          back.road_class == edge.road_class &&
          back.distance_miles == edge.distance_miles) {
        return true;
      }
    }
    return false;
  };
  bool first = true;
  for (size_t e = 0; e < network.num_edges(); ++e) {
    const Edge& edge = network.edge(static_cast<EdgeId>(e));
    const bool mirrored = has_mirror(edge);
    if (mirrored && edge.from > edge.to) continue;  // Canonical copy only.
    const geo::Point& a = network.location(edge.from);
    const geo::Point& b = network.location(edge.to);
    if (!first) out << ",\n";
    first = false;
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        << "\"coordinates\":[[" << a.x << "," << a.y << "],[" << b.x << ","
        << b.y << "]]},\"properties\":{\"road_class\":\""
        << RoadClassName(edge.road_class)
        << "\",\"distance_miles\":" << edge.distance_miles
        << ",\"one_way\":" << (mirrored ? "false" : "true") << "}}";
  }
  out << "\n]}\n";
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::Ok();
}

util::Status WriteGeoJsonFile(const RoadNetwork& network,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return WriteGeoJson(network, out);
}

util::Status WriteNetworkFile(const RoadNetwork& network,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return WriteNetworkText(network, out);
}

util::StatusOr<RoadNetwork> ReadNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return ReadNetworkText(in);
}

}  // namespace capefp::network
