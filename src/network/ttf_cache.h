// Sharded LRU cache of derived edge travel-time functions.
//
// Every ProfileSearch expansion needs the edge's piecewise-linear
// travel-time function τ(l) over the arrival interval of the path being
// extended. Deriving τ from the edge's CapeCod speed pattern (§4.4 of the
// paper) walks the pattern's speed boundaries and is the single most
// repeated computation of a query batch: the same edge is re-derived by
// every label routed through it, in every query of the batch.
//
// The cache memoizes one *full-day* function per (pattern, distance, day)
// key — the engine's EdgeTtf() answers any sub-interval of that day by
// restriction, so queries with different (but same-day) leaving intervals
// share entries. The day index pins the day category (and the category of
// the following day, which a traversal crossing midnight reads), so
// workday and non-workday lookups of the same edge are distinct entries and
// never alias. Entries are immutable once derived; the derivation must be
// a pure function of the key, which makes results independent of cache
// state — a batch run and a sequential run produce bit-identical answers.
//
// Thread safety: fully internally synchronized. Keys are hashed onto
// independently locked shards, so the read-mostly query workload contends
// only on same-shard misses. Returned functions are shared_ptrs and stay
// valid after eviction. Each shard's LRU state is CAPEFP_GUARDED_BY its
// own mutex, so under CAPEFP_THREAD_SAFETY the compiler proves no shard
// structure is ever touched without that shard's lock; shard locks are
// leaves — nothing is acquired while one is held.
#ifndef CAPEFP_NETWORK_TTF_CACHE_H_
#define CAPEFP_NETWORK_TTF_CACHE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/network/road_network.h"
#include "src/tdf/pwl_function.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace capefp::obs {
class MetricsRegistry;
}  // namespace capefp::obs

namespace capefp::network {

// Aggregated counters (a snapshot across all shards). A "bypass" is a
// request the cache declined to serve — the leaving interval spanned a
// midnight, so no single day entry covers it.
struct EdgeTtfCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bypasses = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class EdgeTtfCache {
 public:
  using FunctionPtr = std::shared_ptr<const tdf::PwlFunction>;

  // `capacity_entries` is the total entry budget, split evenly across
  // `num_shards` (each shard keeps at least one entry).
  explicit EdgeTtfCache(size_t capacity_entries, size_t num_shards = 8);

  EdgeTtfCache(const EdgeTtfCache&) = delete;
  EdgeTtfCache& operator=(const EdgeTtfCache&) = delete;

  // The cached full-day function for (pattern, distance, day), deriving it
  // with `derive` on a miss. `derive` runs under the shard lock and MUST be
  // a pure function of the key (same key -> bit-identical function).
  template <typename Fn>
  FunctionPtr GetOrDerive(PatternId pattern, double distance_miles,
                          int64_t day, Fn&& derive) {
    const Key key = MakeKey(pattern, distance_miles, day);
    Shard& shard = shards_[ShardIndex(key)];
    util::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    ++shard.misses;
    FunctionPtr fn =
        std::make_shared<const tdf::PwlFunction>(derive());
    shard.lru.emplace_front(key, fn);
    shard.map[key] = shard.lru.begin();
    while (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    return fn;
  }

  // Counts a request the cache could not serve (multi-day interval).
  void RecordBypass() {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
  }

  EdgeTtfCacheStats stats() const;
  void ResetStats();

  // Publishes this cache's counters into `registry` under `prefix`
  // (e.g. "capefp.ttf_cache" -> "capefp.ttf_cache.hits"). Registered as
  // callback metrics polled at snapshot time, so the hot path pays
  // nothing. The cache must outlive the registry's snapshots.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  // Drops every entry (and resets counters); the next batch starts cold.
  void Clear();

  size_t size() const;
  size_t capacity() const { return shard_capacity_ * shards_.size(); }

 private:
  struct Key {
    PatternId pattern = 0;
    int64_t day = 0;
    // Bit representation of the edge length: exact keying without
    // tolerance games (equal edges have bit-equal stored distances).
    uint64_t distance_bits = 0;

    bool operator==(const Key& o) const {
      return pattern == o.pattern && day == o.day &&
             distance_bits == o.distance_bits;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.pattern) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<uint64_t>(k.day) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      h ^= k.distance_bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Shard {
    mutable util::Mutex mu;
    // Most recent first.
    std::list<std::pair<Key, FunctionPtr>> lru CAPEFP_GUARDED_BY(mu);
    std::unordered_map<Key, std::list<std::pair<Key, FunctionPtr>>::iterator,
                       KeyHash>
        map CAPEFP_GUARDED_BY(mu);
    uint64_t hits CAPEFP_GUARDED_BY(mu) = 0;
    uint64_t misses CAPEFP_GUARDED_BY(mu) = 0;
    uint64_t evictions CAPEFP_GUARDED_BY(mu) = 0;
  };

  static Key MakeKey(PatternId pattern, double distance_miles, int64_t day) {
    Key key;
    key.pattern = pattern;
    key.day = day;
    std::memcpy(&key.distance_bits, &distance_miles,
                sizeof(key.distance_bits));
    return key;
  }

  size_t ShardIndex(const Key& key) const {
    return KeyHash()(key) % shards_.size();
  }

  size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> bypasses_{0};
};

}  // namespace capefp::network

#endif  // CAPEFP_NETWORK_TTF_CACHE_H_
