// In-memory CapeCod road network (Definition 3 of the paper).
//
// A directed graph whose nodes carry planar locations and whose edges carry
// a Euclidean distance and a CapeCod speed pattern. Patterns are interned:
// edges reference them by PatternId, matching how the paper's Table 1 schema
// assigns one pattern per road class and how the CCAM store keeps pattern
// ids (not pattern bodies) in disk records.
#ifndef CAPEFP_NETWORK_ROAD_NETWORK_H_
#define CAPEFP_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/geo/point.h"
#include "src/tdf/speed_pattern.h"
#include "src/tdf/travel_time.h"
#include "src/util/status.h"

namespace capefp::network {

using NodeId = int32_t;
using EdgeId = int32_t;
using PatternId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

// Road classification used by the paper's experimental setup (§6.1).
enum class RoadClass : uint8_t {
  kInboundHighway = 0,
  kOutboundHighway = 1,
  kLocalInCity = 2,
  kLocalOutsideCity = 3,
};

inline constexpr int kNumRoadClasses = 4;

// Short human-readable name, e.g. "inbound-highway".
const char* RoadClassName(RoadClass road_class);

// A directed road segment n_from -> n_to.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double distance_miles = 0.0;
  PatternId pattern = 0;
  RoadClass road_class = RoadClass::kLocalOutsideCity;
};

// Mutable in-memory network. Node/edge/pattern ids are dense and assigned
// in insertion order. Not thread-safe for mutation; concurrent const access
// is safe.
class RoadNetwork {
 public:
  explicit RoadNetwork(tdf::Calendar calendar);

  // Registers a speed pattern and returns its id. The reference returned by
  // pattern() stays valid across later insertions.
  PatternId AddPattern(tdf::CapeCodPattern pattern);

  NodeId AddNode(geo::Point location);

  // Adds a directed edge. Requires valid endpoint and pattern ids and a
  // positive distance.
  EdgeId AddEdge(NodeId from, NodeId to, double distance_miles,
                 PatternId pattern, RoadClass road_class);

  // Adds both directions with identical attributes; returns the first id.
  EdgeId AddBidirectionalEdge(NodeId a, NodeId b, double distance_miles,
                              PatternId pattern, RoadClass road_class);

  size_t num_nodes() const { return locations_.size(); }
  size_t num_edges() const { return edges_.size(); }
  size_t num_patterns() const { return patterns_.size(); }

  const geo::Point& location(NodeId node) const;
  const Edge& edge(EdgeId edge_id) const;
  const tdf::CapeCodPattern& pattern(PatternId id) const;
  const tdf::Calendar& calendar() const { return calendar_; }

  // Ids of edges leaving / entering `node`.
  std::span<const EdgeId> OutEdges(NodeId node) const;
  std::span<const EdgeId> InEdges(NodeId node) const;

  // Speed view bound to `edge_id`'s pattern and the network calendar.
  // Valid as long as the network is alive.
  tdf::EdgeSpeedView SpeedView(EdgeId edge_id) const;

  // Maximum speed over all registered patterns (the naive estimator's
  // v_max). Requires at least one pattern.
  double max_speed() const;

  // The fastest possible traversal of `edge_id` (distance / pattern max
  // speed) — a per-edge lower bound used by the travel-time-mode
  // boundary-node estimator.
  double MinEdgeTravelTime(EdgeId edge_id) const;

  // Bounding box of all node locations.
  const geo::BoundingBox& bounding_box() const { return bbox_; }

  // Deep structural audit: adjacency-list sizes match the node count; every
  // edge has in-range endpoints (no dangling references), a positive finite
  // distance, and a registered pattern covering every calendar category;
  // every edge id appears exactly once in its tail's out-list and its
  // head's in-list; every location is finite and inside the bounding box;
  // every interned pattern validates. Returns OK or InvalidArgument naming
  // the first violation.
  util::Status ValidateInvariants() const;

 private:
  tdf::Calendar calendar_;
  std::vector<geo::Point> locations_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  // deque: stable addresses for EdgeSpeedView binding.
  std::deque<tdf::CapeCodPattern> patterns_;
  geo::BoundingBox bbox_;
};

}  // namespace capefp::network

#endif  // CAPEFP_NETWORK_ROAD_NETWORK_H_
