// Network access interface used by all query algorithms.
//
// The paper stores the network on disk via CCAM (§2.2) and its algorithms
// touch it only through FindNode / GetSuccessor operations. We mirror that:
// search code consumes this interface, so the same algorithm runs against
// the in-memory RoadNetwork or the disk-backed CCAM store, and the CCAM
// implementation can count page faults per query.
//
// Pattern bodies and the calendar are part of the network schema and are
// always memory-resident; disk records carry pattern *ids*.
#ifndef CAPEFP_NETWORK_ACCESSOR_H_
#define CAPEFP_NETWORK_ACCESSOR_H_

#include <cstdint>
#include <vector>

#include "src/geo/point.h"
#include "src/network/road_network.h"
#include "src/network/ttf_cache.h"
#include "src/tdf/speed_pattern.h"
#include "src/tdf/travel_time.h"

namespace capefp::network {

// One outgoing road segment as seen through an accessor.
struct NeighborEdge {
  NodeId to = kInvalidNode;
  double distance_miles = 0.0;
  PatternId pattern = 0;
  RoadClass road_class = RoadClass::kLocalOutsideCity;
};

// Abstract node-centric view of a CapeCod network.
class NetworkAccessor {
 public:
  virtual ~NetworkAccessor() = default;

  virtual size_t num_nodes() const = 0;

  // Location of `node` (the paper's FindNode). May perform page I/O.
  virtual geo::Point Location(NodeId node) = 0;

  // Appends `node`'s outgoing edges to `out` (cleared first); the paper's
  // GetSuccessor. May perform page I/O.
  virtual void GetSuccessors(NodeId node, std::vector<NeighborEdge>* out) = 0;

  // Schema access (always memory-resident).
  virtual const tdf::CapeCodPattern& Pattern(PatternId id) const = 0;
  virtual const tdf::Calendar& calendar() const = 0;
  virtual double max_speed() const = 0;

  // Speed view for an edge with pattern `id`. The view borrows schema
  // storage owned by the accessor's network.
  tdf::EdgeSpeedView SpeedView(PatternId id) const {
    return tdf::EdgeSpeedView(&Pattern(id), &calendar());
  }

  // The edge travel-time function τ(l) for leaving times l in [lo, hi],
  // equivalent to tdf::EdgeTravelTimeFunction over the same interval. With
  // a cache attached and [lo, hi] inside one day, the function is cut from
  // the memoized full-day derivation; multi-day intervals bypass the cache.
  // Thread-safe when the attached cache is (the derivation itself only
  // reads the immutable schema).
  //
  // EdgeTtfInto is the implementation; it rebuilds the caller-owned `out`
  // in place (reusing its storage and arena binding) with a result exactly
  // equal to EdgeTtf's, so cache hits cut the shared full-day function
  // directly into a reusable buffer instead of copying it.
  tdf::PwlFunction EdgeTtf(PatternId pattern, double distance_miles,
                           double lo, double hi);
  void EdgeTtfInto(PatternId pattern, double distance_miles, double lo,
                   double hi, tdf::PwlFunction* out);

  // The memoized full-day function for `day` as a shared handle (no copy),
  // for callers that want the whole-day view rather than a restriction.
  // Requires an attached cache. Thread-safe when the cache is.
  EdgeTtfCache::FunctionPtr EdgeTtfFullDayShared(PatternId pattern,
                                                 double distance_miles,
                                                 int64_t day);

  // Attaches a shared derived-function cache (not owned; null detaches).
  // The cache may be shared by several accessors over networks with the
  // same schema — e.g. the memory and disk accessors of one engine — since
  // keys depend only on pattern id, edge length, and day.
  void set_ttf_cache(EdgeTtfCache* cache) { ttf_cache_ = cache; }
  EdgeTtfCache* ttf_cache() const { return ttf_cache_; }

 private:
  EdgeTtfCache* ttf_cache_ = nullptr;
};

// Accessor over an in-memory RoadNetwork (no I/O, no counters). The network
// must outlive the accessor.
class InMemoryAccessor : public NetworkAccessor {
 public:
  explicit InMemoryAccessor(const RoadNetwork* network);

  size_t num_nodes() const override;
  geo::Point Location(NodeId node) override;
  void GetSuccessors(NodeId node, std::vector<NeighborEdge>* out) override;
  const tdf::CapeCodPattern& Pattern(PatternId id) const override;
  const tdf::Calendar& calendar() const override;
  double max_speed() const override;

 private:
  const RoadNetwork* network_;
  double max_speed_;
};

}  // namespace capefp::network

#endif  // CAPEFP_NETWORK_ACCESSOR_H_
