// Text serialization of CapeCod networks.
//
// A simple line-oriented format so that real datasets (e.g. TIGER/Line
// extracts such as the paper's Suffolk-county roads) can be converted
// externally and loaded here; see README.md for the grammar.
#ifndef CAPEFP_NETWORK_NETWORK_IO_H_
#define CAPEFP_NETWORK_NETWORK_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/network/road_network.h"
#include "src/util/status.h"

namespace capefp::network {

// Writes `network` to `out` in capefp text format.
util::Status WriteNetworkText(const RoadNetwork& network, std::ostream& out);

// Parses a network from `in`. Returns InvalidArgument/Corruption on
// malformed input.
util::StatusOr<RoadNetwork> ReadNetworkText(std::istream& in);

// File-path convenience wrappers.
util::Status WriteNetworkFile(const RoadNetwork& network,
                              const std::string& path);
util::StatusOr<RoadNetwork> ReadNetworkFile(const std::string& path);

// Writes the network as a GeoJSON FeatureCollection of LineString features
// (one per undirected segment pair, or per directed edge for one-way
// roads), each carrying "road_class" and "distance_miles" properties —
// handy for dropping onto any web map to eyeball generated cities.
// Coordinates are the planar mile coordinates, not WGS84.
util::Status WriteGeoJson(const RoadNetwork& network, std::ostream& out);
util::Status WriteGeoJsonFile(const RoadNetwork& network,
                              const std::string& path);

// --- Schedule (calendar + pattern table) sections. ---
//
// These serialize the schema half of a network; the CCAM store reuses them
// for its on-disk schema blob (§2.2: pattern bodies are schema, records
// carry pattern ids).

// A parsed schedule: the calendar plus the interned pattern table.
struct ParsedSchedule {
  tdf::Calendar calendar;
  std::vector<tdf::CapeCodPattern> patterns;
};

// Writes "calendar ..." and "patterns ..." sections.
void WriteScheduleText(const tdf::Calendar& calendar,
                       const std::vector<const tdf::CapeCodPattern*>& patterns,
                       std::ostream& out);

// Parses the sections written by WriteScheduleText.
util::StatusOr<ParsedSchedule> ReadScheduleText(std::istream& in);

}  // namespace capefp::network

#endif  // CAPEFP_NETWORK_NETWORK_IO_H_
