#include "src/network/road_network.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace capefp::network {

const char* RoadClassName(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kInboundHighway:
      return "inbound-highway";
    case RoadClass::kOutboundHighway:
      return "outbound-highway";
    case RoadClass::kLocalInCity:
      return "local-in-city";
    case RoadClass::kLocalOutsideCity:
      return "local-outside-city";
  }
  return "unknown";
}

RoadNetwork::RoadNetwork(tdf::Calendar calendar)
    : calendar_(std::move(calendar)) {}

PatternId RoadNetwork::AddPattern(tdf::CapeCodPattern pattern) {
  patterns_.push_back(std::move(pattern));
  return static_cast<PatternId>(patterns_.size() - 1);
}

NodeId RoadNetwork::AddNode(geo::Point location) {
  locations_.push_back(location);
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  bbox_.Extend(location);
  return static_cast<NodeId>(locations_.size() - 1);
}

EdgeId RoadNetwork::AddEdge(NodeId from, NodeId to, double distance_miles,
                            PatternId pattern, RoadClass road_class) {
  CAPEFP_CHECK_GE(from, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(from), num_nodes());
  CAPEFP_CHECK_GE(to, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(to), num_nodes());
  CAPEFP_CHECK_NE(from, to) << "self loops are not road segments";
  CAPEFP_CHECK_GT(distance_miles, 0.0);
  CAPEFP_CHECK_GE(pattern, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(pattern), num_patterns());
  // The pattern must define a daily profile for every category the
  // calendar can produce, or time lookups would fault at query time.
  for (tdf::DayCategoryId category : calendar_.cycle()) {
    CAPEFP_CHECK_LT(static_cast<size_t>(category),
                    patterns_[static_cast<size_t>(pattern)].num_categories())
        << "edge pattern lacks day category " << category;
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, distance_miles, pattern, road_class});
  out_edges_[static_cast<size_t>(from)].push_back(id);
  in_edges_[static_cast<size_t>(to)].push_back(id);
  return id;
}

EdgeId RoadNetwork::AddBidirectionalEdge(NodeId a, NodeId b,
                                         double distance_miles,
                                         PatternId pattern,
                                         RoadClass road_class) {
  const EdgeId first = AddEdge(a, b, distance_miles, pattern, road_class);
  AddEdge(b, a, distance_miles, pattern, road_class);
  return first;
}

const geo::Point& RoadNetwork::location(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), num_nodes());
  return locations_[static_cast<size_t>(node)];
}

const Edge& RoadNetwork::edge(EdgeId edge_id) const {
  CAPEFP_CHECK_GE(edge_id, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(edge_id), num_edges());
  return edges_[static_cast<size_t>(edge_id)];
}

const tdf::CapeCodPattern& RoadNetwork::pattern(PatternId id) const {
  CAPEFP_CHECK_GE(id, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(id), num_patterns());
  return patterns_[static_cast<size_t>(id)];
}

std::span<const EdgeId> RoadNetwork::OutEdges(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), num_nodes());
  return out_edges_[static_cast<size_t>(node)];
}

std::span<const EdgeId> RoadNetwork::InEdges(NodeId node) const {
  CAPEFP_CHECK_GE(node, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(node), num_nodes());
  return in_edges_[static_cast<size_t>(node)];
}

tdf::EdgeSpeedView RoadNetwork::SpeedView(EdgeId edge_id) const {
  const Edge& e = edge(edge_id);
  return tdf::EdgeSpeedView(&patterns_[static_cast<size_t>(e.pattern)],
                            &calendar_);
}

double RoadNetwork::max_speed() const {
  CAPEFP_CHECK_GT(num_patterns(), 0u);
  double v = 0.0;
  for (const tdf::CapeCodPattern& p : patterns_) {
    v = std::max(v, p.max_speed());
  }
  return v;
}

util::Status RoadNetwork::ValidateInvariants() const {
  char buf[256];
  if (out_edges_.size() != locations_.size() ||
      in_edges_.size() != locations_.size()) {
    std::snprintf(buf, sizeof(buf),
                  "network: adjacency sizes (out=%zu, in=%zu) != node count "
                  "%zu",
                  out_edges_.size(), in_edges_.size(), locations_.size());
    return util::Status::InvalidArgument(buf);
  }
  for (size_t i = 0; i < locations_.size(); ++i) {
    const geo::Point& p = locations_[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      std::snprintf(buf, sizeof(buf),
                    "network: node %zu location not finite: (%g,%g)", i, p.x,
                    p.y);
      return util::Status::InvalidArgument(buf);
    }
    if (!bbox_.Contains(p)) {
      std::snprintf(buf, sizeof(buf),
                    "network: node %zu at (%g,%g) outside bounding box %s", i,
                    p.x, p.y, bbox_.ToString().c_str());
      return util::Status::InvalidArgument(buf);
    }
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    if (edge.from < 0 || static_cast<size_t>(edge.from) >= num_nodes() ||
        edge.to < 0 || static_cast<size_t>(edge.to) >= num_nodes()) {
      std::snprintf(buf, sizeof(buf),
                    "network: edge %zu has dangling endpoint %d -> %d "
                    "(%zu nodes)",
                    e, edge.from, edge.to, num_nodes());
      return util::Status::InvalidArgument(buf);
    }
    if (edge.from == edge.to) {
      std::snprintf(buf, sizeof(buf), "network: edge %zu is a self loop at %d",
                    e, edge.from);
      return util::Status::InvalidArgument(buf);
    }
    if (!std::isfinite(edge.distance_miles) || edge.distance_miles <= 0.0) {
      std::snprintf(buf, sizeof(buf),
                    "network: edge %zu distance %g is not positive", e,
                    edge.distance_miles);
      return util::Status::InvalidArgument(buf);
    }
    if (edge.pattern < 0 ||
        static_cast<size_t>(edge.pattern) >= num_patterns()) {
      std::snprintf(buf, sizeof(buf),
                    "network: edge %zu references unknown pattern %d "
                    "(%zu registered)",
                    e, edge.pattern, num_patterns());
      return util::Status::InvalidArgument(buf);
    }
    for (tdf::DayCategoryId category : calendar_.cycle()) {
      if (static_cast<size_t>(category) >=
          patterns_[static_cast<size_t>(edge.pattern)].num_categories()) {
        std::snprintf(buf, sizeof(buf),
                      "network: edge %zu pattern %d lacks calendar day "
                      "category %d",
                      e, edge.pattern, category);
        return util::Status::InvalidArgument(buf);
      }
    }
  }
  // Adjacency-list bijection: every edge id in exactly the right lists,
  // each exactly once.
  std::vector<uint8_t> seen_out(edges_.size(), 0);
  std::vector<uint8_t> seen_in(edges_.size(), 0);
  for (size_t node = 0; node < locations_.size(); ++node) {
    for (EdgeId e : out_edges_[node]) {
      if (e < 0 || static_cast<size_t>(e) >= edges_.size() ||
          seen_out[static_cast<size_t>(e)]++ != 0 ||
          edges_[static_cast<size_t>(e)].from !=
              static_cast<NodeId>(node)) {
        std::snprintf(buf, sizeof(buf),
                      "network: out-list of node %zu holds bad edge id %d",
                      node, e);
        return util::Status::InvalidArgument(buf);
      }
    }
    for (EdgeId e : in_edges_[node]) {
      if (e < 0 || static_cast<size_t>(e) >= edges_.size() ||
          seen_in[static_cast<size_t>(e)]++ != 0 ||
          edges_[static_cast<size_t>(e)].to != static_cast<NodeId>(node)) {
        std::snprintf(buf, sizeof(buf),
                      "network: in-list of node %zu holds bad edge id %d",
                      node, e);
        return util::Status::InvalidArgument(buf);
      }
    }
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (!seen_out[e] || !seen_in[e]) {
      std::snprintf(buf, sizeof(buf),
                    "network: edge %zu missing from %s adjacency list", e,
                    !seen_out[e] ? "out" : "in");
      return util::Status::InvalidArgument(buf);
    }
  }
  for (size_t p = 0; p < patterns_.size(); ++p) {
    const util::Status pattern_status = patterns_[p].ValidateInvariants();
    if (!pattern_status.ok()) {
      std::snprintf(buf, sizeof(buf), "network: pattern %zu: %s", p,
                    pattern_status.message().c_str());
      return util::Status::InvalidArgument(buf);
    }
  }
  return util::Status::Ok();
}

double RoadNetwork::MinEdgeTravelTime(EdgeId edge_id) const {
  const Edge& e = edge(edge_id);
  return e.distance_miles / pattern(e.pattern).max_speed();
}

}  // namespace capefp::network
