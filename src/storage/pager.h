// File-backed page store.
//
// The lowest layer of the CCAM stack (§2.2): a single file of fixed-size
// pages with a header page, a free list, and read/write I/O counters. All
// higher layers (buffer pool, B+-tree, CCAM data pages) see only PageIds.
//
// Every page carries a CRC-32C trailer on disk, verified on every read, so
// torn writes and bit rot surface as Corruption instead of silently wrong
// query answers. page_size() is the client-visible payload size; the
// on-disk stride is 4 bytes larger.
#ifndef CAPEFP_STORAGE_PAGER_H_
#define CAPEFP_STORAGE_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace capefp::obs {
class MetricsRegistry;
}  // namespace capefp::obs

namespace capefp::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

// Cumulative physical I/O counters. The microsecond totals time the
// physical fseek+fread/fwrite (plus CRC handling) so per-query I/O *time*
// is observable, not just operation counts; two steady_clock reads per
// page are noise next to the file I/O itself.
struct PagerStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t read_micros = 0;
  uint64_t write_micros = 0;

  uint64_t total_ios() const { return page_reads + page_writes; }
  double io_millis() const {
    return static_cast<double>(read_micros + write_micros) / 1000.0;
  }
  // Mean physical read cost; 0.0 before any read (never NaN). The pager
  // has no hit/miss notion — cache hit rates live one layer up in
  // BufferPoolStats::hit_rate().
  double avg_read_micros() const {
    return page_reads == 0 ? 0.0
                           : static_cast<double>(read_micros) /
                                 static_cast<double>(page_reads);
  }
};

// Fixed-size page file. Page 0 holds the pager header and is not available
// to clients; AllocatePage() hands out ids >= 1.
//
// Thread-safe: every public operation takes an internal mutex (the file
// position, the shared I/O scratch buffer, and the free-list head all need
// it), so concurrent readers through a shared BufferPool serialize here.
// The guarded members and the REQUIRES contracts on the `*Locked()`
// helpers are compiler-checked under CAPEFP_THREAD_SAFETY; the pool→pager
// lock order is declared on BufferPool::mu_ (CAPEFP_ACQUIRED_BEFORE),
// which is why BufferPool is a friend.
class Pager {
 public:
  // Creates (truncating) a page file with the given page size
  // (>= kMinPageSize, power of two not required).
  static util::StatusOr<std::unique_ptr<Pager>> Create(
      const std::string& path, uint32_t page_size);

  // Opens an existing page file, reading the page size from its header.
  static util::StatusOr<std::unique_ptr<Pager>> Open(const std::string& path);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  uint32_t page_size() const { return page_size_; }
  // Total pages in the file, including the header page and freed pages.
  uint32_t num_pages() const CAPEFP_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return num_pages_;
  }

  // Reads page `id` into `buf` (page_size() bytes). Returns Corruption if
  // the stored checksum does not match the contents.
  util::Status ReadPage(PageId id, char* buf) CAPEFP_EXCLUDES(mu_);

  // Writes page `id` from `buf` (page_size() bytes).
  util::Status WritePage(PageId id, const char* buf) CAPEFP_EXCLUDES(mu_);

  // Allocates a page (recycling the free list first). Contents are
  // unspecified until written.
  util::StatusOr<PageId> AllocatePage() CAPEFP_EXCLUDES(mu_);

  // Returns `id` to the free list.
  util::Status FreePage(PageId id) CAPEFP_EXCLUDES(mu_);

  // Flushes buffered writes and the header to the OS.
  util::Status Sync() CAPEFP_EXCLUDES(mu_);

  // Walks the free list and returns the freed page ids in chain order.
  // Corruption if the chain links out of bounds or cycles (used by
  // CcamStore::DeepValidate to classify free pages).
  util::StatusOr<std::vector<PageId>> FreeListPages() CAPEFP_EXCLUDES(mu_);

  PagerStats stats() const CAPEFP_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() CAPEFP_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    stats_ = PagerStats();
  }

  // Publishes the pager's I/O counters into `registry` under `prefix` as
  // snapshot-time callbacks. The pager must outlive the registry's
  // snapshots.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  static constexpr uint32_t kMinPageSize = 128;

 private:
  // BufferPool::mu_ declares itself CAPEFP_ACQUIRED_BEFORE(pager_->mu_),
  // which needs access to this class's private mutex member.
  friend class BufferPool;

  Pager(std::FILE* file, uint32_t page_size, uint32_t num_pages,
        PageId free_head);

  util::Status WriteHeader() CAPEFP_REQUIRES(mu_);
  // Unlocked bodies, for operations that compose several page I/Os under
  // one mutex hold (AllocatePage, FreePage, FreeListPages).
  util::Status ReadPageLocked(PageId id, char* buf) CAPEFP_REQUIRES(mu_);
  util::Status WritePageLocked(PageId id, const char* buf)
      CAPEFP_REQUIRES(mu_);
  // On-disk bytes per page: payload plus the CRC trailer.
  uint32_t PhysicalPageSize() const { return page_size_ + sizeof(uint32_t); }

  // Guards the file position, counters, free-list head, and I/O buffer.
  mutable util::Mutex mu_;
  std::FILE* file_ CAPEFP_GUARDED_BY(mu_);
  uint32_t page_size_;  // Immutable after construction.
  uint32_t num_pages_ CAPEFP_GUARDED_BY(mu_);
  PageId free_head_ CAPEFP_GUARDED_BY(mu_);
  PagerStats stats_ CAPEFP_GUARDED_BY(mu_);
  // Scratch buffer for trailer handling on the I/O path.
  std::vector<char> io_buffer_ CAPEFP_GUARDED_BY(mu_);
};

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_PAGER_H_
