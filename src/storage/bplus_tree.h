// Disk-page B+-tree mapping uint64 keys to uint64 values.
//
// CCAM (§2.2) keeps a B+-tree over the one-dimensional node ordering so any
// node's record can be located in O(log n) page accesses. Keys here are
// node ids (assigned in Hilbert order by the builder) and values are record
// locators (page id << 16 | slot).
//
// Structure: classic B+-tree. Internal separators satisfy
// key[i] == max key of child[i]'s subtree at the time of the split; leaves
// are chained left-to-right for range scans. Deletes are lazy (no merging):
// leaves may become sparse but invariants and search remain correct, which
// matches the read-mostly workload of a road network store.
#ifndef CAPEFP_STORAGE_BPLUS_TREE_H_
#define CAPEFP_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/util/status.h"

namespace capefp::storage {

class BPlusTree {
 public:
  // Attaches to an existing tree rooted at `root`, or pass kInvalidPage and
  // call Init() to create an empty tree. `pool` must outlive the tree.
  BPlusTree(BufferPool* pool, PageId root);

  // Creates an empty root leaf. Requires root() == kInvalidPage.
  util::Status Init();

  // Current root page (persist this; splits change it).
  PageId root() const { return root_; }

  // Inserts or overwrites `key`.
  util::Status Put(uint64_t key, uint64_t value);

  // Value for `key`, or NotFound.
  util::StatusOr<uint64_t> Get(uint64_t key);

  // Removes `key`; NotFound if absent.
  util::Status Delete(uint64_t key);

  // Appends all (key, value) pairs with lo <= key <= hi, in key order.
  util::Status Scan(uint64_t lo, uint64_t hi,
                    std::vector<std::pair<uint64_t, uint64_t>>* out);

  // Number of live entries (O(leaves)).
  util::StatusOr<uint64_t> CountEntries();

  // Tree height in levels (1 = a single leaf).
  util::StatusOr<int> Height();

  // Deep structural audit: key ordering within and across nodes, separator
  // ranges, fanout bounds (no node over capacity), uniform leaf depth, and
  // leaf-chain consistency. Returns OK or Corruption naming the violated
  // invariant. O(pages); mutation sites additionally run node-local audits
  // under CAPEFP_DCHECK. If `visited_pages` is non-null, every page id the
  // traversal touches is appended (used by CcamStore::DeepValidate to
  // classify index pages).
  util::Status ValidateInvariants(std::vector<PageId>* visited_pages = nullptr);

  // Back-compat alias for ValidateInvariants().
  util::Status Validate() { return ValidateInvariants(); }

 private:
  struct SplitResult {
    bool split = false;
    uint64_t separator = 0;  // Max key in the left (original) node.
    PageId right = kInvalidPage;
  };

  util::StatusOr<SplitResult> PutRec(PageId page, uint64_t key,
                                     uint64_t value);
  util::Status ValidateRec(PageId page, uint64_t lo, uint64_t hi, int depth,
                           int* leaf_depth, PageId* prev_leaf,
                           std::vector<PageId>* visited_pages);

  uint32_t LeafCapacity() const;
  uint32_t InternalCapacity() const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_BPLUS_TREE_H_
