#include "src/storage/ccam_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/network/network_io.h"
#include "src/storage/slotted_page.h"
#include "src/util/check.h"

namespace capefp::storage {

namespace {

template <typename T>
void AppendRaw(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view& in, T* v) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(v, in.data(), sizeof(T));
  in.remove_prefix(sizeof(T));
  return true;
}

uint64_t MakeLocator(PageId page, uint16_t slot) {
  return (static_cast<uint64_t>(page) << 32) | slot;
}

PageId LocatorPage(uint64_t locator) {
  return static_cast<PageId>(locator >> 32);
}

uint16_t LocatorSlot(uint64_t locator) {
  return static_cast<uint16_t>(locator & 0xffff);
}

}  // namespace

std::string EncodeNodeRecord(const NodeRecord& record) {
  std::string out;
  out.reserve(18 + record.edges.size() * 15);
  AppendRaw(out, record.location.x);
  AppendRaw(out, record.location.y);
  AppendRaw(out, static_cast<uint16_t>(record.edges.size()));
  for (const network::NeighborEdge& e : record.edges) {
    AppendRaw(out, static_cast<uint32_t>(e.to));
    AppendRaw(out, e.distance_miles);
    AppendRaw(out, static_cast<uint16_t>(e.pattern));
    AppendRaw(out, static_cast<uint8_t>(e.road_class));
  }
  return out;
}

util::StatusOr<NodeRecord> DecodeNodeRecord(std::string_view bytes) {
  NodeRecord record;
  uint16_t degree = 0;
  if (!ReadRaw(bytes, &record.location.x) ||
      !ReadRaw(bytes, &record.location.y) || !ReadRaw(bytes, &degree)) {
    return util::Status::Corruption("truncated node record header");
  }
  record.edges.reserve(degree);
  for (uint16_t i = 0; i < degree; ++i) {
    uint32_t to = 0;
    double distance = 0.0;
    uint16_t pattern = 0;
    uint8_t road_class = 0;
    if (!ReadRaw(bytes, &to) || !ReadRaw(bytes, &distance) ||
        !ReadRaw(bytes, &pattern) || !ReadRaw(bytes, &road_class)) {
      return util::Status::Corruption("truncated node record edge");
    }
    if (road_class >= network::kNumRoadClasses) {
      return util::Status::Corruption("bad road class in record");
    }
    record.edges.push_back({static_cast<network::NodeId>(to), distance,
                            static_cast<network::PatternId>(pattern),
                            static_cast<network::RoadClass>(road_class)});
  }
  if (!bytes.empty()) {
    return util::Status::Corruption("trailing bytes in node record");
  }
  return record;
}

namespace ccam_internal {

util::Status WriteMeta(BufferPool* pool, const Meta& meta) {
  auto handle_or = pool->Acquire(kMetaPage);
  if (!handle_or.ok()) return handle_or.status();
  char* page = handle_or->mutable_data();
  uint32_t fields[5] = {kMetaMagic, meta.num_nodes, meta.tree_root,
                        meta.schema_head, meta.schema_bytes};
  std::memcpy(page, fields, sizeof(fields));
  return util::Status::Ok();
}

util::StatusOr<Meta> ReadMeta(BufferPool* pool) {
  auto handle_or = pool->Acquire(kMetaPage);
  if (!handle_or.ok()) return handle_or.status();
  uint32_t fields[5];
  std::memcpy(fields, handle_or->data(), sizeof(fields));
  if (fields[0] != kMetaMagic) {
    return util::Status::Corruption("bad CCAM meta magic");
  }
  Meta meta;
  meta.num_nodes = fields[1];
  meta.tree_root = fields[2];
  meta.schema_head = fields[3];
  meta.schema_bytes = fields[4];
  return meta;
}

util::StatusOr<PageId> WriteBlobChain(BufferPool* pool,
                                      const std::string& blob) {
  const auto payload =
      static_cast<uint32_t>(pool->page_size() - sizeof(uint32_t));
  PageId head = kInvalidPage;
  PageHandle prev;
  size_t offset = 0;
  do {
    auto handle_or = pool->AllocateAndAcquire();
    if (!handle_or.ok()) return handle_or.status();
    char* page = handle_or->mutable_data();
    const uint32_t next = kInvalidPage;
    std::memcpy(page, &next, sizeof(next));
    const size_t chunk = std::min<size_t>(payload, blob.size() - offset);
    std::memcpy(page + sizeof(uint32_t), blob.data() + offset, chunk);
    offset += chunk;
    if (head == kInvalidPage) {
      head = handle_or->page_id();
    } else {
      const uint32_t this_page = handle_or->page_id();
      std::memcpy(prev.mutable_data(), &this_page, sizeof(this_page));
    }
    prev = std::move(*handle_or);
  } while (offset < blob.size());
  return head;
}

util::StatusOr<std::string> ReadBlobChain(BufferPool* pool, PageId head,
                                          uint32_t total_bytes) {
  const auto payload =
      static_cast<uint32_t>(pool->page_size() - sizeof(uint32_t));
  std::string blob;
  blob.reserve(total_bytes);
  PageId page_id = head;
  while (blob.size() < total_bytes) {
    if (page_id == kInvalidPage) {
      return util::Status::Corruption("schema blob chain too short");
    }
    auto handle_or = pool->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    const char* page = handle_or->data();
    uint32_t next;
    std::memcpy(&next, page, sizeof(next));
    const size_t chunk =
        std::min<size_t>(payload, total_bytes - blob.size());
    blob.append(page + sizeof(uint32_t), chunk);
    page_id = next;
  }
  return blob;
}

}  // namespace ccam_internal

CcamStore::CcamStore(std::unique_ptr<Pager> pager, size_t pool_pages)
    : pager_(std::move(pager)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
      calendar_(tdf::Calendar::SingleCategory()) {}

CcamStore::~CcamStore() {
  if (pool_ != nullptr) Flush().ok();
}

util::StatusOr<std::unique_ptr<CcamStore>> CcamStore::Open(
    const std::string& path, const CcamOpenOptions& options) {
  auto pager_or = Pager::Open(path);
  if (!pager_or.ok()) return pager_or.status();
  auto store = std::unique_ptr<CcamStore>(
      new CcamStore(std::move(*pager_or), options.buffer_pool_pages));
  CAPEFP_RETURN_IF_ERROR(store->LoadMeta());
  return store;
}

util::Status CcamStore::LoadMeta() {
  auto meta_or = ccam_internal::ReadMeta(pool_.get());
  if (!meta_or.ok()) return meta_or.status();
  num_nodes_ = meta_or->num_nodes;
  meta_page_ = ccam_internal::kMetaPage;
  tree_ = std::make_unique<BPlusTree>(pool_.get(), meta_or->tree_root);

  auto blob_or = ccam_internal::ReadBlobChain(pool_.get(),
                                              meta_or->schema_head,
                                              meta_or->schema_bytes);
  if (!blob_or.ok()) return blob_or.status();
  std::istringstream in(*blob_or);
  auto schedule_or = network::ReadScheduleText(in);
  if (!schedule_or.ok()) return schedule_or.status();
  calendar_ = std::move(schedule_or->calendar);
  patterns_ = std::move(schedule_or->patterns);
  max_speed_ = 0.0;
  for (const tdf::CapeCodPattern& p : patterns_) {
    max_speed_ = std::max(max_speed_, p.max_speed());
  }
  // Cold cache for fault accounting.
  ResetStats();
  return util::Status::Ok();
}

util::StatusOr<uint64_t> CcamStore::Locator(network::NodeId node) {
  if (node < 0 || static_cast<size_t>(node) >= num_nodes_) {
    return util::Status::OutOfRange("node id out of range");
  }
  return tree_->Get(static_cast<uint64_t>(node));
}

util::StatusOr<NodeRecord> CcamStore::FindNode(network::NodeId node) {
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto handle_or = pool_->Acquire(LocatorPage(*locator_or));
  if (!handle_or.ok()) return handle_or.status();
  // SlottedPage wants char*; reads only.
  SlottedPage page(const_cast<char*>(handle_or->data()),
                   pool_->page_size());
  const std::string_view bytes = page.Record(LocatorSlot(*locator_or));
  if (bytes.empty()) {
    return util::Status::Corruption("dead record behind live locator");
  }
  return DecodeNodeRecord(bytes);
}

util::Status CcamStore::RewriteRecord(network::NodeId node, uint64_t locator,
                                      const NodeRecord& record) {
  const std::string bytes = EncodeNodeRecord(record);
  {
    auto handle_or = pool_->Acquire(LocatorPage(locator));
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage page(handle_or->mutable_data(), pool_->page_size());
    if (page.UpdateRecordInPlace(LocatorSlot(locator), bytes)) {
      return util::Status::Ok();
    }
    // Try appending to the same page (best clustering), compacting first if
    // fragmentation is the only obstacle.
    if (page.TotalFreeBytes() >= bytes.size()) {
      if (page.ContiguousFreeBytes() < bytes.size()) page.Compact();
      const int slot = page.AppendRecord(bytes);
      if (slot >= 0) {
        page.DeleteRecord(LocatorSlot(locator));
        return tree_->Put(static_cast<uint64_t>(node),
                          MakeLocator(LocatorPage(locator),
                                      static_cast<uint16_t>(slot)));
      }
    }
    page.DeleteRecord(LocatorSlot(locator));
  }
  // Relocate: try the hint page, else a fresh data page.
  if (relocation_hint_ != kInvalidPage) {
    auto handle_or = pool_->Acquire(relocation_hint_);
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage page(handle_or->mutable_data(), pool_->page_size());
    const int slot = page.AppendRecord(bytes);
    if (slot >= 0) {
      return tree_->Put(static_cast<uint64_t>(node),
                        MakeLocator(relocation_hint_,
                                    static_cast<uint16_t>(slot)));
    }
  }
  auto fresh_or = pool_->AllocateAndAcquire();
  if (!fresh_or.ok()) return fresh_or.status();
  SlottedPage page(fresh_or->mutable_data(), pool_->page_size());
  page.Format();
  const int slot = page.AppendRecord(bytes);
  if (slot < 0) {
    return util::Status::InvalidArgument("record larger than a page");
  }
  relocation_hint_ = fresh_or->page_id();
  return tree_->Put(static_cast<uint64_t>(node),
                    MakeLocator(relocation_hint_,
                                static_cast<uint16_t>(slot)));
}

util::Status CcamStore::InsertEdge(network::NodeId node,
                                   const network::NeighborEdge& edge) {
  if (edge.to < 0 || static_cast<size_t>(edge.to) >= num_nodes_) {
    return util::Status::InvalidArgument("edge target out of range");
  }
  if (edge.pattern < 0 ||
      static_cast<size_t>(edge.pattern) >= patterns_.size()) {
    return util::Status::InvalidArgument("edge pattern out of range");
  }
  if (edge.distance_miles <= 0.0) {
    return util::Status::InvalidArgument("edge distance must be positive");
  }
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto record_or = FindNode(node);
  if (!record_or.ok()) return record_or.status();
  record_or->edges.push_back(edge);
  return RewriteRecord(node, *locator_or, *record_or);
}

util::Status CcamStore::DeleteEdge(network::NodeId node, network::NodeId to) {
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto record_or = FindNode(node);
  if (!record_or.ok()) return record_or.status();
  auto& edges = record_or->edges;
  const auto it =
      std::find_if(edges.begin(), edges.end(),
                   [to](const network::NeighborEdge& e) { return e.to == to; });
  if (it == edges.end()) {
    return util::Status::NotFound("edge not present");
  }
  edges.erase(it);
  // Shrinking always fits in place.
  return RewriteRecord(node, *locator_or, *record_or);
}

namespace {

// Page classes for the DeepValidate census. kData is the default for any
// client page not claimed by another class.
enum class PageClass : uint8_t { kData = 0, kMeta, kSchema, kIndex, kFree };

const char* PageClassName(PageClass c) {
  switch (c) {
    case PageClass::kData: return "data";
    case PageClass::kMeta: return "meta";
    case PageClass::kSchema: return "schema";
    case PageClass::kIndex: return "index";
    case PageClass::kFree: return "free";
  }
  return "?";
}

}  // namespace

util::Status CcamStore::DeepValidate(CcamDeepValidateReport* report) {
  char msg[256];
  const uint32_t total_pages = pager_->num_pages();
  // Client pages are 1..total_pages-1; class defaults to kData and the
  // claims below must never collide.
  std::vector<PageClass> page_class(total_pages, PageClass::kData);
  auto claim = [&](PageId id, PageClass c) -> util::Status {
    if (id == 0 || id >= total_pages) {
      std::snprintf(msg, sizeof(msg),
                    "%s structure references page %u outside the file "
                    "(%u pages)",
                    PageClassName(c), id, total_pages);
      return util::Status::Corruption(msg);
    }
    if (page_class[id] != PageClass::kData) {
      std::snprintf(msg, sizeof(msg),
                    "page %u claimed as both %s and %s", id,
                    PageClassName(page_class[id]), PageClassName(c));
      return util::Status::Corruption(msg);
    }
    page_class[id] = c;
    return util::Status::Ok();
  };

  // --- Meta page.
  auto meta_or = ccam_internal::ReadMeta(pool_.get());
  if (!meta_or.ok()) return meta_or.status();
  CAPEFP_RETURN_IF_ERROR(claim(ccam_internal::kMetaPage, PageClass::kMeta));
  if (meta_or->num_nodes != num_nodes_) {
    std::snprintf(msg, sizeof(msg),
                  "meta page says %u nodes but the open store has %zu",
                  meta_or->num_nodes, num_nodes_);
    return util::Status::Corruption(msg);
  }

  // --- Free list.
  auto free_or = pager_->FreeListPages();
  if (!free_or.ok()) return free_or.status();
  for (PageId id : *free_or) {
    CAPEFP_RETURN_IF_ERROR(claim(id, PageClass::kFree));
  }

  // --- Schema blob chain: walk exactly the pages WriteBlobChain produced.
  const auto payload =
      static_cast<uint32_t>(pool_->page_size() - sizeof(uint32_t));
  uint32_t schema_pages = 0;
  {
    PageId id = meta_or->schema_head;
    uint32_t remaining = meta_or->schema_bytes;
    do {
      if (id == kInvalidPage) {
        std::snprintf(msg, sizeof(msg),
                      "schema chain ends with %u of %u bytes unread",
                      remaining, meta_or->schema_bytes);
        return util::Status::Corruption(msg);
      }
      CAPEFP_RETURN_IF_ERROR(claim(id, PageClass::kSchema));
      ++schema_pages;
      auto handle_or = pool_->Acquire(id);
      if (!handle_or.ok()) return handle_or.status();
      uint32_t next;
      std::memcpy(&next, handle_or->data(), sizeof(next));
      remaining -= std::min(payload, remaining);
      id = next;
    } while (remaining > 0);
    // Re-parse the blob and audit every pattern it defines.
    auto blob_or = ccam_internal::ReadBlobChain(
        pool_.get(), meta_or->schema_head, meta_or->schema_bytes);
    if (!blob_or.ok()) return blob_or.status();
    std::istringstream in(*blob_or);
    auto schedule_or = network::ReadScheduleText(in);
    if (!schedule_or.ok()) return schedule_or.status();
    if (schedule_or->patterns.size() != patterns_.size()) {
      std::snprintf(msg, sizeof(msg),
                    "schema blob defines %zu patterns but the open store "
                    "holds %zu",
                    schedule_or->patterns.size(), patterns_.size());
      return util::Status::Corruption(msg);
    }
    for (size_t p = 0; p < schedule_or->patterns.size(); ++p) {
      const util::Status s = schedule_or->patterns[p].ValidateInvariants();
      if (!s.ok()) {
        return util::Status::Corruption("schema pattern " + std::to_string(p) +
                                        ": " + s.message());
      }
    }
  }

  // --- Index: full structural audit, collecting the tree's page set.
  std::vector<PageId> tree_pages;
  CAPEFP_RETURN_IF_ERROR(tree_->ValidateInvariants(&tree_pages));
  for (PageId id : tree_pages) {
    CAPEFP_RETURN_IF_ERROR(claim(id, PageClass::kIndex));
  }

  // --- Locators: every node id 0..n-1 present, each pointing at a distinct
  // live slot on a data page whose record decodes and stays in range.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  CAPEFP_RETURN_IF_ERROR(tree_->Scan(0, ~0ull, &entries));
  if (entries.size() != num_nodes_) {
    std::snprintf(msg, sizeof(msg),
                  "index holds %zu entries for %zu nodes", entries.size(),
                  num_nodes_);
    return util::Status::Corruption(msg);
  }
  uint64_t total_edges = 0;
  std::vector<uint64_t> referenced;
  referenced.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first != i) {
      std::snprintf(msg, sizeof(msg),
                    "index key %llu where node id %zu was expected",
                    static_cast<unsigned long long>(entries[i].first), i);
      return util::Status::Corruption(msg);
    }
    const uint64_t locator = entries[i].second;
    const PageId page_id = LocatorPage(locator);
    const uint16_t slot = LocatorSlot(locator);
    if (page_id == 0 || page_id >= total_pages ||
        page_class[page_id] != PageClass::kData) {
      std::snprintf(msg, sizeof(msg),
                    "node %zu locator points at page %u (class %s), not a "
                    "data page",
                    i, page_id,
                    page_id < total_pages ? PageClassName(page_class[page_id])
                                          : "out-of-file");
      return util::Status::Corruption(msg);
    }
    referenced.push_back(locator);
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage sp(const_cast<char*>(handle_or->data()), pool_->page_size());
    if (slot >= sp.slot_count()) {
      std::snprintf(msg, sizeof(msg),
                    "node %zu locator slot %u out of range on page %u "
                    "(%u slots)",
                    i, slot, page_id, sp.slot_count());
      return util::Status::Corruption(msg);
    }
    const std::string_view bytes = sp.Record(slot);
    if (bytes.empty()) {
      std::snprintf(msg, sizeof(msg),
                    "node %zu locator points at dead slot %u on page %u", i,
                    slot, page_id);
      return util::Status::Corruption(msg);
    }
    auto record_or = DecodeNodeRecord(bytes);
    if (!record_or.ok()) {
      std::snprintf(msg, sizeof(msg), "node %zu (page %u slot %u): %s", i,
                    page_id, slot, record_or.status().message().c_str());
      return util::Status::Corruption(msg);
    }
    if (!std::isfinite(record_or->location.x) ||
        !std::isfinite(record_or->location.y)) {
      std::snprintf(msg, sizeof(msg), "node %zu location is not finite", i);
      return util::Status::Corruption(msg);
    }
    for (const network::NeighborEdge& e : record_or->edges) {
      if (e.to < 0 || static_cast<size_t>(e.to) >= num_nodes_) {
        std::snprintf(msg, sizeof(msg),
                      "node %zu has an edge to out-of-range node %d", i,
                      static_cast<int>(e.to));
        return util::Status::Corruption(msg);
      }
      if (e.pattern < 0 ||
          static_cast<size_t>(e.pattern) >= patterns_.size()) {
        std::snprintf(msg, sizeof(msg),
                      "node %zu edge uses out-of-range pattern %d", i,
                      static_cast<int>(e.pattern));
        return util::Status::Corruption(msg);
      }
      if (!(e.distance_miles > 0.0) || !std::isfinite(e.distance_miles)) {
        std::snprintf(msg, sizeof(msg),
                      "node %zu edge to %d has non-positive distance %g", i,
                      static_cast<int>(e.to), e.distance_miles);
        return util::Status::Corruption(msg);
      }
      ++total_edges;
    }
  }
  std::sort(referenced.begin(), referenced.end());
  const auto dup = std::adjacent_find(referenced.begin(), referenced.end());
  if (dup != referenced.end()) {
    std::snprintf(msg, sizeof(msg),
                  "two index entries share the locator page %u slot %u",
                  LocatorPage(*dup), LocatorSlot(*dup));
    return util::Status::Corruption(msg);
  }

  // --- Data pages: structural audit plus the record/locator bijection
  // (every live record is referenced by exactly one index entry).
  uint32_t data_pages = 0;
  uint64_t live_records = 0;
  for (PageId id = 2; id < total_pages; ++id) {
    if (page_class[id] != PageClass::kData) continue;
    ++data_pages;
    auto handle_or = pool_->Acquire(id);
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage sp(const_cast<char*>(handle_or->data()), pool_->page_size());
    const util::Status s = sp.ValidateInvariants();
    if (!s.ok()) {
      return util::Status::Corruption("data page " + std::to_string(id) +
                                      ": " + s.message());
    }
    for (uint16_t slot = 0; slot < sp.slot_count(); ++slot) {
      if (!sp.Record(slot).empty()) ++live_records;
    }
  }
  if (live_records != num_nodes_) {
    std::snprintf(msg, sizeof(msg),
                  "data pages hold %llu live records for %zu indexed nodes "
                  "(orphaned records)",
                  static_cast<unsigned long long>(live_records), num_nodes_);
    return util::Status::Corruption(msg);
  }

  if (report != nullptr) {
    report->total_pages = total_pages;
    report->meta_pages = 1;
    report->schema_pages = schema_pages;
    report->index_pages = static_cast<uint32_t>(tree_pages.size());
    report->data_pages = data_pages;
    report->free_pages = static_cast<uint32_t>(free_or->size());
    report->records = live_records;
    report->edges = total_edges;
  }
  return util::Status::Ok();
}

util::Status CcamStore::Flush() {
  // Persist a possibly-moved B+-tree root.
  ccam_internal::Meta meta;
  auto old_or = ccam_internal::ReadMeta(pool_.get());
  if (!old_or.ok()) return old_or.status();
  meta = *old_or;
  meta.tree_root = tree_->root();
  CAPEFP_RETURN_IF_ERROR(ccam_internal::WriteMeta(pool_.get(), meta));
  return pool_->FlushAll();
}

CcamStats CcamStore::stats() const {
  return {pool_->stats(), pager_->stats()};
}

void CcamStore::ResetStats() {
  pool_->ResetStats();
  pager_->ResetStats();
}

void CcamStore::RegisterMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  pool_->RegisterMetrics(registry, prefix + ".pool");
  pager_->RegisterMetrics(registry, prefix + ".pager");
}

}  // namespace capefp::storage
