#include "src/storage/ccam_store.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/network/network_io.h"
#include "src/storage/slotted_page.h"
#include "src/util/check.h"

namespace capefp::storage {

namespace {

template <typename T>
void AppendRaw(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view& in, T* v) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(v, in.data(), sizeof(T));
  in.remove_prefix(sizeof(T));
  return true;
}

uint64_t MakeLocator(PageId page, uint16_t slot) {
  return (static_cast<uint64_t>(page) << 32) | slot;
}

PageId LocatorPage(uint64_t locator) {
  return static_cast<PageId>(locator >> 32);
}

uint16_t LocatorSlot(uint64_t locator) {
  return static_cast<uint16_t>(locator & 0xffff);
}

}  // namespace

std::string EncodeNodeRecord(const NodeRecord& record) {
  std::string out;
  out.reserve(18 + record.edges.size() * 15);
  AppendRaw(out, record.location.x);
  AppendRaw(out, record.location.y);
  AppendRaw(out, static_cast<uint16_t>(record.edges.size()));
  for (const network::NeighborEdge& e : record.edges) {
    AppendRaw(out, static_cast<uint32_t>(e.to));
    AppendRaw(out, e.distance_miles);
    AppendRaw(out, static_cast<uint16_t>(e.pattern));
    AppendRaw(out, static_cast<uint8_t>(e.road_class));
  }
  return out;
}

util::StatusOr<NodeRecord> DecodeNodeRecord(std::string_view bytes) {
  NodeRecord record;
  uint16_t degree = 0;
  if (!ReadRaw(bytes, &record.location.x) ||
      !ReadRaw(bytes, &record.location.y) || !ReadRaw(bytes, &degree)) {
    return util::Status::Corruption("truncated node record header");
  }
  record.edges.reserve(degree);
  for (uint16_t i = 0; i < degree; ++i) {
    uint32_t to = 0;
    double distance = 0.0;
    uint16_t pattern = 0;
    uint8_t road_class = 0;
    if (!ReadRaw(bytes, &to) || !ReadRaw(bytes, &distance) ||
        !ReadRaw(bytes, &pattern) || !ReadRaw(bytes, &road_class)) {
      return util::Status::Corruption("truncated node record edge");
    }
    if (road_class >= network::kNumRoadClasses) {
      return util::Status::Corruption("bad road class in record");
    }
    record.edges.push_back({static_cast<network::NodeId>(to), distance,
                            static_cast<network::PatternId>(pattern),
                            static_cast<network::RoadClass>(road_class)});
  }
  if (!bytes.empty()) {
    return util::Status::Corruption("trailing bytes in node record");
  }
  return record;
}

namespace ccam_internal {

util::Status WriteMeta(BufferPool* pool, const Meta& meta) {
  auto handle_or = pool->Acquire(kMetaPage);
  if (!handle_or.ok()) return handle_or.status();
  char* page = handle_or->mutable_data();
  uint32_t fields[5] = {kMetaMagic, meta.num_nodes, meta.tree_root,
                        meta.schema_head, meta.schema_bytes};
  std::memcpy(page, fields, sizeof(fields));
  return util::Status::Ok();
}

util::StatusOr<Meta> ReadMeta(BufferPool* pool) {
  auto handle_or = pool->Acquire(kMetaPage);
  if (!handle_or.ok()) return handle_or.status();
  uint32_t fields[5];
  std::memcpy(fields, handle_or->data(), sizeof(fields));
  if (fields[0] != kMetaMagic) {
    return util::Status::Corruption("bad CCAM meta magic");
  }
  Meta meta;
  meta.num_nodes = fields[1];
  meta.tree_root = fields[2];
  meta.schema_head = fields[3];
  meta.schema_bytes = fields[4];
  return meta;
}

util::StatusOr<PageId> WriteBlobChain(BufferPool* pool,
                                      const std::string& blob) {
  const uint32_t payload = pool->page_size() - sizeof(uint32_t);
  PageId head = kInvalidPage;
  PageHandle prev;
  size_t offset = 0;
  do {
    auto handle_or = pool->AllocateAndAcquire();
    if (!handle_or.ok()) return handle_or.status();
    char* page = handle_or->mutable_data();
    const uint32_t next = kInvalidPage;
    std::memcpy(page, &next, sizeof(next));
    const size_t chunk = std::min<size_t>(payload, blob.size() - offset);
    std::memcpy(page + sizeof(uint32_t), blob.data() + offset, chunk);
    offset += chunk;
    if (head == kInvalidPage) {
      head = handle_or->page_id();
    } else {
      const uint32_t this_page = handle_or->page_id();
      std::memcpy(prev.mutable_data(), &this_page, sizeof(this_page));
    }
    prev = std::move(*handle_or);
  } while (offset < blob.size());
  return head;
}

util::StatusOr<std::string> ReadBlobChain(BufferPool* pool, PageId head,
                                          uint32_t total_bytes) {
  const uint32_t payload = pool->page_size() - sizeof(uint32_t);
  std::string blob;
  blob.reserve(total_bytes);
  PageId page_id = head;
  while (blob.size() < total_bytes) {
    if (page_id == kInvalidPage) {
      return util::Status::Corruption("schema blob chain too short");
    }
    auto handle_or = pool->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    const char* page = handle_or->data();
    uint32_t next;
    std::memcpy(&next, page, sizeof(next));
    const size_t chunk =
        std::min<size_t>(payload, total_bytes - blob.size());
    blob.append(page + sizeof(uint32_t), chunk);
    page_id = next;
  }
  return blob;
}

}  // namespace ccam_internal

CcamStore::CcamStore(std::unique_ptr<Pager> pager, size_t pool_pages)
    : pager_(std::move(pager)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
      calendar_(tdf::Calendar::SingleCategory()) {}

CcamStore::~CcamStore() {
  if (pool_ != nullptr) Flush().ok();
}

util::StatusOr<std::unique_ptr<CcamStore>> CcamStore::Open(
    const std::string& path, const CcamOpenOptions& options) {
  auto pager_or = Pager::Open(path);
  if (!pager_or.ok()) return pager_or.status();
  auto store = std::unique_ptr<CcamStore>(
      new CcamStore(std::move(*pager_or), options.buffer_pool_pages));
  CAPEFP_RETURN_IF_ERROR(store->LoadMeta());
  return store;
}

util::Status CcamStore::LoadMeta() {
  auto meta_or = ccam_internal::ReadMeta(pool_.get());
  if (!meta_or.ok()) return meta_or.status();
  num_nodes_ = meta_or->num_nodes;
  meta_page_ = ccam_internal::kMetaPage;
  tree_ = std::make_unique<BPlusTree>(pool_.get(), meta_or->tree_root);

  auto blob_or = ccam_internal::ReadBlobChain(pool_.get(),
                                              meta_or->schema_head,
                                              meta_or->schema_bytes);
  if (!blob_or.ok()) return blob_or.status();
  std::istringstream in(*blob_or);
  auto schedule_or = network::ReadScheduleText(in);
  if (!schedule_or.ok()) return schedule_or.status();
  calendar_ = std::move(schedule_or->calendar);
  patterns_ = std::move(schedule_or->patterns);
  max_speed_ = 0.0;
  for (const tdf::CapeCodPattern& p : patterns_) {
    max_speed_ = std::max(max_speed_, p.max_speed());
  }
  // Cold cache for fault accounting.
  ResetStats();
  return util::Status::Ok();
}

util::StatusOr<uint64_t> CcamStore::Locator(network::NodeId node) {
  if (node < 0 || static_cast<size_t>(node) >= num_nodes_) {
    return util::Status::OutOfRange("node id out of range");
  }
  return tree_->Get(static_cast<uint64_t>(node));
}

util::StatusOr<NodeRecord> CcamStore::FindNode(network::NodeId node) {
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto handle_or = pool_->Acquire(LocatorPage(*locator_or));
  if (!handle_or.ok()) return handle_or.status();
  // SlottedPage wants char*; reads only.
  SlottedPage page(const_cast<char*>(handle_or->data()),
                   pool_->page_size());
  const std::string_view bytes = page.Record(LocatorSlot(*locator_or));
  if (bytes.empty()) {
    return util::Status::Corruption("dead record behind live locator");
  }
  return DecodeNodeRecord(bytes);
}

util::Status CcamStore::RewriteRecord(network::NodeId node, uint64_t locator,
                                      const NodeRecord& record) {
  const std::string bytes = EncodeNodeRecord(record);
  {
    auto handle_or = pool_->Acquire(LocatorPage(locator));
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage page(handle_or->mutable_data(), pool_->page_size());
    if (page.UpdateRecordInPlace(LocatorSlot(locator), bytes)) {
      return util::Status::Ok();
    }
    // Try appending to the same page (best clustering), compacting first if
    // fragmentation is the only obstacle.
    if (page.TotalFreeBytes() >= bytes.size()) {
      if (page.ContiguousFreeBytes() < bytes.size()) page.Compact();
      const int slot = page.AppendRecord(bytes);
      if (slot >= 0) {
        page.DeleteRecord(LocatorSlot(locator));
        return tree_->Put(static_cast<uint64_t>(node),
                          MakeLocator(LocatorPage(locator),
                                      static_cast<uint16_t>(slot)));
      }
    }
    page.DeleteRecord(LocatorSlot(locator));
  }
  // Relocate: try the hint page, else a fresh data page.
  if (relocation_hint_ != kInvalidPage) {
    auto handle_or = pool_->Acquire(relocation_hint_);
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage page(handle_or->mutable_data(), pool_->page_size());
    const int slot = page.AppendRecord(bytes);
    if (slot >= 0) {
      return tree_->Put(static_cast<uint64_t>(node),
                        MakeLocator(relocation_hint_,
                                    static_cast<uint16_t>(slot)));
    }
  }
  auto fresh_or = pool_->AllocateAndAcquire();
  if (!fresh_or.ok()) return fresh_or.status();
  SlottedPage page(fresh_or->mutable_data(), pool_->page_size());
  page.Format();
  const int slot = page.AppendRecord(bytes);
  if (slot < 0) {
    return util::Status::InvalidArgument("record larger than a page");
  }
  relocation_hint_ = fresh_or->page_id();
  return tree_->Put(static_cast<uint64_t>(node),
                    MakeLocator(relocation_hint_,
                                static_cast<uint16_t>(slot)));
}

util::Status CcamStore::InsertEdge(network::NodeId node,
                                   const network::NeighborEdge& edge) {
  if (edge.to < 0 || static_cast<size_t>(edge.to) >= num_nodes_) {
    return util::Status::InvalidArgument("edge target out of range");
  }
  if (edge.pattern < 0 ||
      static_cast<size_t>(edge.pattern) >= patterns_.size()) {
    return util::Status::InvalidArgument("edge pattern out of range");
  }
  if (edge.distance_miles <= 0.0) {
    return util::Status::InvalidArgument("edge distance must be positive");
  }
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto record_or = FindNode(node);
  if (!record_or.ok()) return record_or.status();
  record_or->edges.push_back(edge);
  return RewriteRecord(node, *locator_or, *record_or);
}

util::Status CcamStore::DeleteEdge(network::NodeId node, network::NodeId to) {
  auto locator_or = Locator(node);
  if (!locator_or.ok()) return locator_or.status();
  auto record_or = FindNode(node);
  if (!record_or.ok()) return record_or.status();
  auto& edges = record_or->edges;
  const auto it =
      std::find_if(edges.begin(), edges.end(),
                   [to](const network::NeighborEdge& e) { return e.to == to; });
  if (it == edges.end()) {
    return util::Status::NotFound("edge not present");
  }
  edges.erase(it);
  // Shrinking always fits in place.
  return RewriteRecord(node, *locator_or, *record_or);
}

util::Status CcamStore::Flush() {
  // Persist a possibly-moved B+-tree root.
  ccam_internal::Meta meta;
  auto old_or = ccam_internal::ReadMeta(pool_.get());
  if (!old_or.ok()) return old_or.status();
  meta = *old_or;
  meta.tree_root = tree_->root();
  CAPEFP_RETURN_IF_ERROR(ccam_internal::WriteMeta(pool_.get(), meta));
  return pool_->FlushAll();
}

CcamStats CcamStore::stats() const {
  return {pool_->stats(), pager_->stats()};
}

void CcamStore::ResetStats() {
  pool_->ResetStats();
  pager_->ResetStats();
}

}  // namespace capefp::storage
