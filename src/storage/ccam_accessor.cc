#include "src/storage/ccam_accessor.h"

#include "src/util/check.h"

namespace capefp::storage {

CcamAccessor::CcamAccessor(CcamStore* store) : store_(store) {
  CAPEFP_CHECK(store != nullptr);
}

size_t CcamAccessor::num_nodes() const { return store_->num_nodes(); }

geo::Point CcamAccessor::Location(network::NodeId node) {
  auto record_or = store_->FindNode(node);
  CAPEFP_CHECK(record_or.ok()) << record_or.status().ToString();
  return record_or->location;
}

void CcamAccessor::GetSuccessors(network::NodeId node,
                                 std::vector<network::NeighborEdge>* out) {
  auto record_or = store_->FindNode(node);
  CAPEFP_CHECK(record_or.ok()) << record_or.status().ToString();
  *out = std::move(record_or->edges);
}

const tdf::CapeCodPattern& CcamAccessor::Pattern(
    network::PatternId id) const {
  CAPEFP_CHECK_GE(id, 0);
  CAPEFP_CHECK_LT(static_cast<size_t>(id), store_->patterns().size());
  return store_->patterns()[static_cast<size_t>(id)];
}

const tdf::Calendar& CcamAccessor::calendar() const {
  return store_->calendar();
}

double CcamAccessor::max_speed() const { return store_->max_speed(); }

}  // namespace capefp::storage
