// Builds a CCAM page file from an in-memory RoadNetwork.
//
// CCAM's clustering idea (§2.2): order node records one-dimensionally by
// the Hilbert value of their location, then pack them into pages while
// preserving connectivity — a node prefers the page that already holds the
// most of its graph neighbours (if it has room), falling back to the
// current fill page. Queries then touch few pages because search frontiers
// are spatially and topologically local.
#ifndef CAPEFP_STORAGE_CCAM_BUILDER_H_
#define CAPEFP_STORAGE_CCAM_BUILDER_H_

#include <cstdint>
#include <string>

#include "src/network/road_network.h"
#include "src/util/status.h"

namespace capefp::storage {

struct CcamBuildOptions {
  // Page size in bytes; the paper uses 2048 (§6.1).
  uint32_t page_size = 2048;
  // Hilbert curve order for the node ordering.
  int hilbert_order = 16;
  // If false, records are packed purely in scan order (no connectivity
  // preference) — an ablation baseline.
  bool connectivity_clustering = true;
  // If false, records are scanned in node-insertion order instead of
  // Hilbert order — the "no spatial locality" ablation baseline.
  bool spatial_ordering = true;
};

struct CcamBuildReport {
  uint32_t data_pages = 0;
  uint32_t index_pages = 0;
  uint32_t total_pages = 0;
  // Fraction of directed edges whose endpoints share a page (CCAM's
  // clustering quality measure).
  double intra_page_edge_fraction = 0.0;
};

// Writes `network` to a fresh CCAM file at `path`.
util::StatusOr<CcamBuildReport> BuildCcamFile(
    const network::RoadNetwork& network, const std::string& path,
    const CcamBuildOptions& options = {});

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_CCAM_BUILDER_H_
