// NetworkAccessor implementation backed by a CCAM store.
//
// Lets every query algorithm run against the disk-resident network exactly
// as the paper does, with page faults counted by the store's buffer pool.
#ifndef CAPEFP_STORAGE_CCAM_ACCESSOR_H_
#define CAPEFP_STORAGE_CCAM_ACCESSOR_H_

#include "src/network/accessor.h"
#include "src/storage/ccam_store.h"

namespace capefp::storage {

class CcamAccessor : public network::NetworkAccessor {
 public:
  // `store` must outlive the accessor.
  explicit CcamAccessor(CcamStore* store);

  size_t num_nodes() const override;
  geo::Point Location(network::NodeId node) override;
  void GetSuccessors(network::NodeId node,
                     std::vector<network::NeighborEdge>* out) override;
  const tdf::CapeCodPattern& Pattern(network::PatternId id) const override;
  const tdf::Calendar& calendar() const override;
  double max_speed() const override;

 private:
  CcamStore* store_;
};

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_CCAM_ACCESSOR_H_
