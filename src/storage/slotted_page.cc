#include "src/storage/slotted_page.h"

#include <cstring>
#include <vector>

#include "src/util/check.h"

namespace capefp::storage {

namespace {

constexpr uint32_t kHeaderBytes = 4;
constexpr uint32_t kSlotBytes = 4;

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

SlottedPage::SlottedPage(char* data, uint32_t page_size)
    : data_(data), page_size_(page_size) {
  CAPEFP_CHECK(data != nullptr);
  CAPEFP_CHECK_GE(page_size, 64u);
}

void SlottedPage::Format() {
  StoreU16(data_, 0);                                    // slot_count
  StoreU16(data_ + 2, static_cast<uint16_t>(kHeaderBytes));  // free_off
}

uint16_t SlottedPage::slot_count() const { return LoadU16(data_); }

uint16_t SlottedPage::SlotOffset(uint16_t slot) const {
  return LoadU16(data_ + page_size_ - kSlotBytes * (slot + 1));
}

uint16_t SlottedPage::SlotLength(uint16_t slot) const {
  return LoadU16(data_ + page_size_ - kSlotBytes * (slot + 1) + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  StoreU16(data_ + page_size_ - kSlotBytes * (slot + 1), offset);
  StoreU16(data_ + page_size_ - kSlotBytes * (slot + 1) + 2, length);
}

uint32_t SlottedPage::ContiguousFreeBytes() const {
  const uint32_t free_off = LoadU16(data_ + 2);
  const uint32_t dir_start = page_size_ - kSlotBytes * slot_count();
  const uint32_t gap = dir_start - free_off;
  return gap >= kSlotBytes ? gap - kSlotBytes : 0;
}

uint32_t SlottedPage::TotalFreeBytes() const {
  uint32_t live = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) live += SlotLength(s);
  const uint32_t dir = kSlotBytes * slot_count();
  const uint32_t used = kHeaderBytes + live + dir + kSlotBytes;
  return used >= page_size_ ? 0 : page_size_ - used;
}

int SlottedPage::AppendRecord(std::string_view record) {
  if (record.size() > 0xffff) return -1;
  if (ContiguousFreeBytes() < record.size()) return -1;
  const uint16_t free_off = LoadU16(data_ + 2);
  const uint16_t slot = slot_count();
  std::memcpy(data_ + free_off, record.data(), record.size());
  SetSlot(slot, free_off, static_cast<uint16_t>(record.size()));
  StoreU16(data_, static_cast<uint16_t>(slot + 1));
  StoreU16(data_ + 2, static_cast<uint16_t>(free_off + record.size()));
  return slot;
}

std::string_view SlottedPage::Record(uint16_t slot) const {
  CAPEFP_CHECK_LT(slot, slot_count());
  const uint16_t length = SlotLength(slot);
  if (length == 0) return {};
  return {data_ + SlotOffset(slot), length};
}

void SlottedPage::DeleteRecord(uint16_t slot) {
  CAPEFP_CHECK_LT(slot, slot_count());
  SetSlot(slot, SlotOffset(slot), 0);
}

bool SlottedPage::UpdateRecordInPlace(uint16_t slot,
                                      std::string_view record) {
  CAPEFP_CHECK_LT(slot, slot_count());
  if (record.size() > SlotLength(slot)) return false;
  std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
  SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(record.size()));
  return true;
}

void SlottedPage::Compact() {
  const uint16_t n = slot_count();
  std::vector<std::string> records(n);
  for (uint16_t s = 0; s < n; ++s) {
    records[s] = std::string(Record(s));
  }
  uint16_t free_off = static_cast<uint16_t>(kHeaderBytes);
  for (uint16_t s = 0; s < n; ++s) {
    if (records[s].empty()) {
      SetSlot(s, free_off, 0);
      continue;
    }
    std::memcpy(data_ + free_off, records[s].data(), records[s].size());
    SetSlot(s, free_off, static_cast<uint16_t>(records[s].size()));
    free_off = static_cast<uint16_t>(free_off + records[s].size());
  }
  StoreU16(data_ + 2, free_off);
}

}  // namespace capefp::storage
