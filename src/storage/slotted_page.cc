#include "src/storage/slotted_page.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/util/check.h"

namespace capefp::storage {

namespace {

constexpr uint32_t kHeaderBytes = 4;
constexpr uint32_t kSlotBytes = 4;

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

SlottedPage::SlottedPage(char* data, uint32_t page_size)
    : data_(data), page_size_(page_size) {
  CAPEFP_CHECK(data != nullptr);
  CAPEFP_CHECK_GE(page_size, 64u);
}

void SlottedPage::Format() {
  StoreU16(data_, 0);                                    // slot_count
  StoreU16(data_ + 2, static_cast<uint16_t>(kHeaderBytes));  // free_off
}

uint16_t SlottedPage::slot_count() const { return LoadU16(data_); }

uint16_t SlottedPage::SlotOffset(uint16_t slot) const {
  return LoadU16(data_ + page_size_ - kSlotBytes * (slot + 1));
}

uint16_t SlottedPage::SlotLength(uint16_t slot) const {
  return LoadU16(data_ + page_size_ - kSlotBytes * (slot + 1) + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  StoreU16(data_ + page_size_ - kSlotBytes * (slot + 1), offset);
  StoreU16(data_ + page_size_ - kSlotBytes * (slot + 1) + 2, length);
}

uint32_t SlottedPage::ContiguousFreeBytes() const {
  const uint32_t free_off = LoadU16(data_ + 2);
  const uint32_t dir_start = page_size_ - kSlotBytes * slot_count();
  const uint32_t gap = dir_start - free_off;
  return gap >= kSlotBytes ? gap - kSlotBytes : 0;
}

uint32_t SlottedPage::TotalFreeBytes() const {
  uint32_t live = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) live += SlotLength(s);
  const uint32_t dir = kSlotBytes * slot_count();
  const uint32_t used = kHeaderBytes + live + dir + kSlotBytes;
  return used >= page_size_ ? 0 : page_size_ - used;
}

int SlottedPage::AppendRecord(std::string_view record) {
  if (record.size() > 0xffff) return -1;
  if (ContiguousFreeBytes() < record.size()) return -1;
  const uint16_t free_off = LoadU16(data_ + 2);
  const uint16_t slot = slot_count();
  std::memcpy(data_ + free_off, record.data(), record.size());
  SetSlot(slot, free_off, static_cast<uint16_t>(record.size()));
  StoreU16(data_, static_cast<uint16_t>(slot + 1));
  StoreU16(data_ + 2, static_cast<uint16_t>(free_off + record.size()));
  CAPEFP_DCHECK_OK(ValidateInvariants());
  return slot;
}

std::string_view SlottedPage::Record(uint16_t slot) const {
  CAPEFP_CHECK_LT(slot, slot_count());
  const uint16_t length = SlotLength(slot);
  if (length == 0) return {};
  return {data_ + SlotOffset(slot), length};
}

void SlottedPage::DeleteRecord(uint16_t slot) {
  CAPEFP_CHECK_LT(slot, slot_count());
  SetSlot(slot, SlotOffset(slot), 0);
}

bool SlottedPage::UpdateRecordInPlace(uint16_t slot,
                                      std::string_view record) {
  CAPEFP_CHECK_LT(slot, slot_count());
  if (record.size() > SlotLength(slot)) return false;
  std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
  SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(record.size()));
  CAPEFP_DCHECK_OK(ValidateInvariants());
  return true;
}

util::Status SlottedPage::ValidateInvariants() const {
  char buf[256];
  const uint32_t n = slot_count();
  const uint32_t free_off = LoadU16(data_ + 2);
  if (kHeaderBytes + kSlotBytes * n > page_size_) {
    std::snprintf(buf, sizeof(buf),
                  "slotted page: %u slots overflow a %u-byte page", n,
                  page_size_);
    return util::Status::Corruption(buf);
  }
  const uint32_t dir_start = page_size_ - kSlotBytes * n;
  if (free_off < kHeaderBytes || free_off > dir_start) {
    std::snprintf(buf, sizeof(buf),
                  "slotted page: free offset %u outside [%u, %u]", free_off,
                  kHeaderBytes, dir_start);
    return util::Status::Corruption(buf);
  }
  // Live records, sorted by offset, must tile [header, free_off) without
  // overlap.
  std::vector<std::pair<uint32_t, uint32_t>> live;  // (offset, slot)
  live.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    const uint32_t length = SlotLength(static_cast<uint16_t>(s));
    if (length == 0) continue;  // Deleted slot.
    const uint32_t offset = SlotOffset(static_cast<uint16_t>(s));
    if (offset < kHeaderBytes || offset + length > free_off) {
      std::snprintf(buf, sizeof(buf),
                    "slotted page: slot %u record [%u, %u) outside record "
                    "area [%u, %u)",
                    s, offset, offset + length, kHeaderBytes, free_off);
      return util::Status::Corruption(buf);
    }
    live.emplace_back(offset, s);
  }
  std::sort(live.begin(), live.end());
  for (size_t i = 1; i < live.size(); ++i) {
    const uint32_t prev_slot = live[i - 1].second;
    const uint32_t prev_end =
        live[i - 1].first + SlotLength(static_cast<uint16_t>(prev_slot));
    if (live[i].first < prev_end) {
      std::snprintf(buf, sizeof(buf),
                    "slotted page: slot %u (offset %u) overlaps slot %u "
                    "(ends at %u)",
                    live[i].second, live[i].first, prev_slot, prev_end);
      return util::Status::Corruption(buf);
    }
  }
  return util::Status::Ok();
}

void SlottedPage::Compact() {
  const uint16_t n = slot_count();
  std::vector<std::string> records(n);
  for (uint16_t s = 0; s < n; ++s) {
    records[s] = std::string(Record(s));
  }
  uint16_t free_off = static_cast<uint16_t>(kHeaderBytes);
  for (uint16_t s = 0; s < n; ++s) {
    if (records[s].empty()) {
      SetSlot(s, free_off, 0);
      continue;
    }
    std::memcpy(data_ + free_off, records[s].data(), records[s].size());
    SetSlot(s, free_off, static_cast<uint16_t>(records[s].size()));
    free_off = static_cast<uint16_t>(free_off + records[s].size());
  }
  StoreU16(data_ + 2, free_off);
  CAPEFP_DCHECK_OK(ValidateInvariants());
}

}  // namespace capefp::storage
