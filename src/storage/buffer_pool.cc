#include "src/storage/buffer_pool.h"

#include <cstring>

#include "src/util/check.h"

namespace capefp::storage {

PageHandle::PageHandle(BufferPool* pool, size_t frame, PageId page_id)
    : pool_(pool), frame_(frame), page_id_(page_id) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_id_(other.page_id_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
    pool_ = nullptr;
  }
}

const char* PageHandle::data() const {
  CAPEFP_CHECK(valid());
  return pool_->frames_[frame_].data.data();
}

char* PageHandle::mutable_data() {
  CAPEFP_CHECK(valid());
  pool_->frames_[frame_].dirty = true;
  return pool_->frames_[frame_].data.data();
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  CAPEFP_CHECK(pager != nullptr);
  CAPEFP_CHECK_GE(capacity_pages, 1u);
  frames_.resize(capacity_);
  for (Frame& f : frames_) f.data.resize(pager_->page_size());
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  // Deliberately no implicit flush: callers own durability via FlushAll().
  // (CHECK here would turn test teardown into aborts; drop silently.)
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  Frame& f = frames_[frame_index];
  CAPEFP_CHECK_GT(f.pin_count, 0);
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), frame_index);
    f.in_lru = true;
  }
}

util::StatusOr<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return util::Status::Internal("buffer pool exhausted: all pages pinned");
  }
  const size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  ++stats_.evictions;
  if (f.dirty) {
    CAPEFP_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.data()));
    ++stats_.writebacks;
    f.dirty = false;
  }
  page_to_frame_.erase(f.page_id);
  f.page_id = kInvalidPage;
  return victim;
}

util::StatusOr<PageHandle> BufferPool::Acquire(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageHandle(this, it->second, id);
  }
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  const size_t idx = *frame_or;
  Frame& f = frames_[idx];
  util::Status status = pager_->ReadPage(id, f.data.data());
  if (!status.ok()) {
    free_frames_.push_back(idx);
    return status;
  }
  ++stats_.faults;
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  page_to_frame_[id] = idx;
  return PageHandle(this, idx, id);
}

util::StatusOr<PageHandle> BufferPool::AllocateAndAcquire() {
  auto id_or = pager_->AllocatePage();
  if (!id_or.ok()) return id_or.status();
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  const size_t idx = *frame_or;
  Frame& f = frames_[idx];
  std::memset(f.data.data(), 0, f.data.size());
  f.page_id = *id_or;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  page_to_frame_[*id_or] = idx;
  return PageHandle(this, idx, *id_or);
}

util::Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPage && f.dirty) {
      CAPEFP_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.data()));
      ++stats_.writebacks;
      f.dirty = false;
    }
  }
  return pager_->Sync();
}

util::Status BufferPool::FreePage(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return util::Status::Internal("freeing a pinned page");
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.page_id = kInvalidPage;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_to_frame_.erase(it);
  }
  return pager_->FreePage(id);
}

}  // namespace capefp::storage
