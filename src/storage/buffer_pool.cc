#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace capefp::storage {

PageHandle::PageHandle(BufferPool* pool, size_t frame, PageId page_id)
    : pool_(pool), frame_(frame), page_id_(page_id) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_id_(other.page_id_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, /*dirty=*/false);
    pool_ = nullptr;
  }
}

// Deliberately lock-free (see the class comment in buffer_pool.h): the pin
// taken under the pool lock in Acquire() is the synchronization point, the
// frame array never reallocates, and a pinned frame's bytes cannot be
// evicted or overwritten. The analysis cannot express pin-based exclusion,
// so this is the repo's one sanctioned suppression.
const char* PageHandle::data() const CAPEFP_NO_THREAD_SAFETY_ANALYSIS {
  CAPEFP_CHECK(valid());
  return pool_->frames_[frame_].data.data();
}

// Same pin-protected access as data(); the dirty bit itself is flipped
// under the pool lock.
char* PageHandle::mutable_data() CAPEFP_NO_THREAD_SAFETY_ANALYSIS {
  CAPEFP_CHECK(valid());
  {
    util::MutexLock lock(&pool_->mu_);
    pool_->frames_[frame_].dirty = true;
  }
  return pool_->frames_[frame_].data.data();
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  CAPEFP_CHECK(pager != nullptr);
  CAPEFP_CHECK_GE(capacity_pages, 1u);
  frames_.resize(capacity_);
  for (Frame& f : frames_) f.data.resize(pager_->page_size());
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  // Deliberately no implicit flush: callers own durability via FlushAll().
  // (CHECK here would turn test teardown into aborts; drop silently.)
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  util::MutexLock lock(&mu_);
  Frame& f = frames_[frame_index];
  CAPEFP_CHECK_GT(f.pin_count, 0);
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), frame_index);
    f.in_lru = true;
  }
  CAPEFP_DCHECK_OK(ValidateInvariantsLocked());
}

util::Status BufferPool::ValidateInvariants() const {
  util::MutexLock lock(&mu_);
  return ValidateInvariantsLocked();
}

util::Status BufferPool::ValidateInvariantsLocked() const {
  char buf[256];
  size_t mapped = 0;
  std::vector<uint8_t> free_count(frames_.size(), 0);
  for (size_t idx : free_frames_) {
    if (idx >= frames_.size()) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: free list holds bad frame index %zu", idx);
      return util::Status::Internal(buf);
    }
    ++free_count[idx];
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pin_count < 0) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: frame %zu pin count %d is negative", i,
                    f.pin_count);
      return util::Status::Internal(buf);
    }
    if (f.page_id == kInvalidPage) {
      if (f.pin_count != 0 || f.in_lru || f.dirty) {
        std::snprintf(buf, sizeof(buf),
                      "buffer pool: unmapped frame %zu has state "
                      "(pins=%d, lru=%d, dirty=%d)",
                      i, f.pin_count, f.in_lru ? 1 : 0, f.dirty ? 1 : 0);
        return util::Status::Internal(buf);
      }
      if (free_count[i] != 1) {
        std::snprintf(buf, sizeof(buf),
                      "buffer pool: unmapped frame %zu on the free list %u "
                      "times (want 1)",
                      i, free_count[i]);
        return util::Status::Internal(buf);
      }
      continue;
    }
    if (free_count[i] != 0) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: mapped frame %zu (page %u) also on the "
                    "free list",
                    i, f.page_id);
      return util::Status::Internal(buf);
    }
    ++mapped;
    const auto it = page_to_frame_.find(f.page_id);
    if (it == page_to_frame_.end() || it->second != i) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: frame %zu holds page %u but the page table "
                    "maps it to %s",
                    i, f.page_id,
                    it == page_to_frame_.end() ? "nothing" : "another frame");
      return util::Status::Internal(buf);
    }
    if (f.in_lru != (f.pin_count == 0)) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: frame %zu (page %u) pin ledger broken: "
                    "pins=%d but in_lru=%d",
                    i, f.page_id, f.pin_count, f.in_lru ? 1 : 0);
      return util::Status::Internal(buf);
    }
    if (f.in_lru && *f.lru_pos != i) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: frame %zu LRU position points at frame %zu",
                    i, *f.lru_pos);
      return util::Status::Internal(buf);
    }
    if (f.data.size() != pager_->page_size()) {
      std::snprintf(buf, sizeof(buf),
                    "buffer pool: frame %zu buffer is %zu bytes, page size "
                    "is %u",
                    i, f.data.size(), pager_->page_size());
      return util::Status::Internal(buf);
    }
  }
  if (mapped != page_to_frame_.size()) {
    std::snprintf(buf, sizeof(buf),
                  "buffer pool: %zu mapped frames but %zu page-table entries",
                  mapped, page_to_frame_.size());
    return util::Status::Internal(buf);
  }
  const size_t unpinned =
      static_cast<size_t>(std::count_if(frames_.begin(), frames_.end(),
                                        [](const Frame& f) {
                                          return f.in_lru;
                                        }));
  if (unpinned != lru_.size()) {
    std::snprintf(buf, sizeof(buf),
                  "buffer pool: %zu frames flagged in_lru but LRU list has "
                  "%zu entries",
                  unpinned, lru_.size());
    return util::Status::Internal(buf);
  }
  return util::Status::Ok();
}

util::StatusOr<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return util::Status::Internal("buffer pool exhausted: all pages pinned");
  }
  const size_t victim = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[victim];
  f.in_lru = false;
  ++stats_.evictions;
  if (f.dirty) {
    CAPEFP_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.data()));
    ++stats_.writebacks;
    f.dirty = false;
  }
  page_to_frame_.erase(f.page_id);
  f.page_id = kInvalidPage;
  return victim;
}

util::StatusOr<PageHandle> BufferPool::Acquire(PageId id) {
  util::MutexLock lock(&mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageHandle(this, it->second, id);
  }
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  const size_t idx = *frame_or;
  Frame& f = frames_[idx];
  util::Status status = pager_->ReadPage(id, f.data.data());
  if (!status.ok()) {
    free_frames_.push_back(idx);
    return status;
  }
  ++stats_.faults;
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  page_to_frame_[id] = idx;
  CAPEFP_DCHECK_OK(ValidateInvariantsLocked());
  return PageHandle(this, idx, id);
}

util::StatusOr<PageHandle> BufferPool::AllocateAndAcquire() {
  util::MutexLock lock(&mu_);
  auto id_or = pager_->AllocatePage();
  if (!id_or.ok()) return id_or.status();
  auto frame_or = GrabFrame();
  if (!frame_or.ok()) return frame_or.status();
  const size_t idx = *frame_or;
  Frame& f = frames_[idx];
  std::memset(f.data.data(), 0, f.data.size());
  f.page_id = *id_or;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  page_to_frame_[*id_or] = idx;
  CAPEFP_DCHECK_OK(ValidateInvariantsLocked());
  return PageHandle(this, idx, *id_or);
}

util::Status BufferPool::FlushAll() {
  util::MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPage && f.dirty) {
      CAPEFP_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.data()));
      ++stats_.writebacks;
      f.dirty = false;
    }
  }
  return pager_->Sync();
}

util::Status BufferPool::FreePage(PageId id) {
  util::MutexLock lock(&mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return util::Status::Internal("freeing a pinned page");
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.page_id = kInvalidPage;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_to_frame_.erase(it);
  }
  CAPEFP_DCHECK_OK(ValidateInvariantsLocked());
  return pager_->FreePage(id);
}

void BufferPool::RegisterMetrics(obs::MetricsRegistry* registry,
                                 const std::string& prefix) const {
  registry->AddCallbackCounter(prefix + ".hits",
                               [this] { return stats().hits; });
  registry->AddCallbackCounter(prefix + ".faults",
                               [this] { return stats().faults; });
  registry->AddCallbackCounter(prefix + ".evictions",
                               [this] { return stats().evictions; });
  registry->AddCallbackCounter(prefix + ".writebacks",
                               [this] { return stats().writebacks; });
  registry->AddCallbackGauge(prefix + ".hit_rate",
                             [this] { return stats().hit_rate(); });
  registry->AddCallbackGauge(prefix + ".capacity_pages", [this] {
    return static_cast<double>(capacity());
  });
}

}  // namespace capefp::storage
