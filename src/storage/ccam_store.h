// CCAM: Connectivity-Clustered Access Method store (§2.2; Shekhar & Liu,
// TKDE'97).
//
// A single page file holding the road network:
//   page 0        pager header
//   page 1        CCAM meta (node count, B+-tree root, schema blob chain)
//   schema pages  chained blob with the calendar + pattern table
//   data pages    slotted pages of node records, packed in Hilbert order
//                 with a connectivity heuristic (see CcamBuilder)
//   index pages   B+-tree mapping node id -> record locator
//
// Node records store the node location and its successor list (the paper's
// info_i: loc_i plus, per neighbor, distance and pattern). FindNode /
// GetSuccessors go through the buffer pool, so every query has an exact
// page-fault count.
#ifndef CAPEFP_STORAGE_CCAM_STORE_H_
#define CAPEFP_STORAGE_CCAM_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/network/accessor.h"
#include "src/network/road_network.h"
#include "src/storage/bplus_tree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/pager.h"
#include "src/util/status.h"

namespace capefp::obs {
class MetricsRegistry;
}  // namespace capefp::obs

namespace capefp::storage {

// A node record parsed from a data page.
struct NodeRecord {
  geo::Point location;
  std::vector<network::NeighborEdge> edges;
};

// Serializes `record` into the on-disk byte layout (exposed for the
// builder and tests).
std::string EncodeNodeRecord(const NodeRecord& record);

// Inverse of EncodeNodeRecord; Corruption on malformed bytes.
util::StatusOr<NodeRecord> DecodeNodeRecord(std::string_view bytes);

struct CcamOpenOptions {
  // Buffer pool capacity, in pages. The paper's small-network experiments
  // keep the pool far smaller than the file so queries actually fault.
  size_t buffer_pool_pages = 64;
};

struct CcamStats {
  BufferPoolStats pool;
  PagerStats pager;

  // The store's cache hit rate is the buffer pool's: every FindNode /
  // index probe goes through the pool, and the pager below it has no
  // hit/miss notion.
  double hit_rate() const { return pool.hit_rate(); }
};

// Page census produced by CcamStore::DeepValidate.
struct CcamDeepValidateReport {
  uint32_t total_pages = 0;   // Including the pager header page.
  uint32_t meta_pages = 0;    // Always 1 on success.
  uint32_t schema_pages = 0;  // Blob chain length.
  uint32_t index_pages = 0;   // B+-tree nodes.
  uint32_t data_pages = 0;    // Slotted record pages.
  uint32_t free_pages = 0;    // On the pager free list.
  uint64_t records = 0;       // Live node records decoded.
  uint64_t edges = 0;         // Successor entries across all records.
};

class CcamStore {
 public:
  // Opens an existing CCAM file (see CcamBuilder to create one).
  static util::StatusOr<std::unique_ptr<CcamStore>> Open(
      const std::string& path, const CcamOpenOptions& options = {});

  ~CcamStore();
  CcamStore(const CcamStore&) = delete;
  CcamStore& operator=(const CcamStore&) = delete;

  size_t num_nodes() const { return num_nodes_; }
  const tdf::Calendar& calendar() const { return calendar_; }
  const std::vector<tdf::CapeCodPattern>& patterns() const {
    return patterns_;
  }
  double max_speed() const { return max_speed_; }

  // The paper's FindNode(n): the full record for `node`.
  util::StatusOr<NodeRecord> FindNode(network::NodeId node);

  // Adds a successor edge to `node`'s record, relocating the record when
  // it outgrows its page.
  util::Status InsertEdge(network::NodeId node,
                          const network::NeighborEdge& edge);

  // Removes the first successor edge `node` -> `to`; NotFound if absent.
  util::Status DeleteEdge(network::NodeId node, network::NodeId to);

  // Flushes dirty pages and the pager header.
  util::Status Flush();

  CcamStats stats() const;
  void ResetStats();

  // Publishes the buffer-pool and pager counters into `registry` under
  // `prefix` + ".pool" / ".pager" (snapshot-time callbacks; the store must
  // outlive the registry's snapshots).
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  // Pages currently used by the file (diagnostics / space benches).
  uint32_t file_pages() const { return pager_->num_pages(); }
  uint32_t page_size() const { return pager_->page_size(); }

  // Index depth (B+-tree height), for diagnostics.
  util::StatusOr<int> IndexHeight() { return tree_->Height(); }

  // Page-by-page structural audit of the whole file. Classifies every page
  // (meta / schema / index / data / free), checks the classes are disjoint,
  // runs the B+-tree and slotted-page validators, decodes every record
  // reachable through the index, and checks record/locator bijection (no
  // orphan records, no double-referenced slots, every locator live).
  // Returns the first violation as Corruption with a page-precise message.
  // O(file) page reads; `report`, if non-null, receives the page census.
  util::Status DeepValidate(CcamDeepValidateReport* report = nullptr);

 private:
  CcamStore(std::unique_ptr<Pager> pager, size_t pool_pages);

  util::Status LoadMeta();
  util::StatusOr<uint64_t> Locator(network::NodeId node);
  util::Status RewriteRecord(network::NodeId node, uint64_t locator,
                             const NodeRecord& record);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
  size_t num_nodes_ = 0;
  tdf::Calendar calendar_;
  std::vector<tdf::CapeCodPattern> patterns_;
  double max_speed_ = 0.0;
  PageId meta_page_ = kInvalidPage;
  // Data page that most recently had room, tried first for relocations.
  PageId relocation_hint_ = kInvalidPage;
};

// Meta-page plumbing shared between CcamStore and CcamBuilder.
namespace ccam_internal {

constexpr uint32_t kMetaMagic = 0x4346434d;  // "CFCM"
constexpr PageId kMetaPage = 1;

struct Meta {
  uint32_t num_nodes = 0;
  PageId tree_root = kInvalidPage;
  PageId schema_head = kInvalidPage;
  uint32_t schema_bytes = 0;
};

util::Status WriteMeta(BufferPool* pool, const Meta& meta);
util::StatusOr<Meta> ReadMeta(BufferPool* pool);

// Writes `blob` into a chain of fresh pages; returns the head page.
// Each chain page: [u32 next][data...].
util::StatusOr<PageId> WriteBlobChain(BufferPool* pool,
                                      const std::string& blob);
util::StatusOr<std::string> ReadBlobChain(BufferPool* pool, PageId head,
                                          uint32_t total_bytes);

}  // namespace ccam_internal

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_CCAM_STORE_H_
