// Slotted-page layout for variable-length records.
//
// Classic heap-file organization used by the CCAM data pages: a slot
// directory grows down from the page end, record bytes grow up from the
// header. Deleted slots keep their index (so record locators stay stable)
// with length 0; Compact() squeezes out dead space.
//
// Layout:
//   [u16 slot_count][u16 free_off] ... record bytes ... [slot dir]
// Slot i lives at page_size - 4*(i+1): [u16 offset][u16 length].
#ifndef CAPEFP_STORAGE_SLOTTED_PAGE_H_
#define CAPEFP_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <string_view>

#include "src/util/status.h"

namespace capefp::storage {

// A non-owning view over one page buffer. The caller guarantees `data`
// stays valid while the view is used.
class SlottedPage {
 public:
  SlottedPage(char* data, uint32_t page_size);

  // Zeroes the header of a fresh page.
  void Format();

  uint16_t slot_count() const;

  // Bytes available for one more AppendRecord of any size <= result
  // (accounts for the new slot directory entry).
  uint32_t ContiguousFreeBytes() const;

  // Total reclaimable bytes (contiguous free + dead record space).
  uint32_t TotalFreeBytes() const;

  // Appends a record; returns its slot index, or -1 if it does not fit
  // contiguously (caller may Compact() and retry).
  int AppendRecord(std::string_view record);

  // Record bytes of `slot` (empty view if deleted).
  std::string_view Record(uint16_t slot) const;

  // Marks `slot` dead. Its index is never reused.
  void DeleteRecord(uint16_t slot);

  // Overwrites `slot` in place when the new record is not longer than the
  // old one; returns false otherwise (caller relocates).
  bool UpdateRecordInPlace(uint16_t slot, std::string_view record);

  // Rewrites live records contiguously, preserving slot indices.
  void Compact();

  // Deep audit of the page structure: the slot directory fits the page,
  // free_off lies between the header and the directory, every live slot's
  // [offset, offset+length) sits inside [header, free_off), and no two
  // live records overlap. Returns OK or Corruption naming the offending
  // slot and offsets. (Whole-page bit rot is covered separately by the
  // pager's per-page CRC trailer.)
  util::Status ValidateInvariants() const;

 private:
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);

  char* data_;
  uint32_t page_size_;
};

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_SLOTTED_PAGE_H_
