#include "src/storage/pager.h"

#include <chrono>
#include <cstring>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/crc32.h"

namespace capefp::storage {

namespace {

constexpr uint32_t kMagic = 0x43465047;  // "CFPG"
constexpr uint32_t kVersion = 1;

// Header layout (page 0): magic, version, page_size, num_pages, free_head,
// then the CRC-32C of those fields.
constexpr size_t kHeaderBytes = 5 * sizeof(uint32_t);
constexpr size_t kHeaderBytesWithCrc = kHeaderBytes + sizeof(uint32_t);

void EncodeU32(char* buf, uint32_t v) { std::memcpy(buf, &v, sizeof(v)); }

uint32_t DecodeU32(const char* buf) {
  uint32_t v;
  std::memcpy(&v, buf, sizeof(v));
  return v;
}

using IoClock = std::chrono::steady_clock;

uint64_t MicrosSince(IoClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(IoClock::now() -
                                                            start)
          .count());
}

}  // namespace

Pager::Pager(std::FILE* file, uint32_t page_size, uint32_t num_pages,
             PageId free_head)
    : file_(file),
      page_size_(page_size),
      num_pages_(num_pages),
      free_head_(free_head),
      io_buffer_(PhysicalPageSize()) {}

Pager::~Pager() {
  // The lock is uncontended here (destruction implies exclusive access);
  // held so the analysis sees the guarded members' last rites checked.
  util::MutexLock lock(&mu_);
  if (file_ != nullptr) {
    WriteHeader();  // Best effort; Sync() reports errors to callers.
    std::fclose(file_);
    file_ = nullptr;
  }
}

util::StatusOr<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                                     uint32_t page_size) {
  if (page_size < kMinPageSize) {
    return util::Status::InvalidArgument("page size too small");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return util::Status::IoError("cannot create page file: " + path);
  }
  auto pager = std::unique_ptr<Pager>(
      new Pager(file, page_size, /*num_pages=*/1, kInvalidPage));
  {
    // Materialize the header page. Nobody else can hold a brand-new
    // pager's lock; taken to satisfy WriteHeader's REQUIRES contract.
    util::MutexLock lock(&pager->mu_);
    CAPEFP_RETURN_IF_ERROR(pager->WriteHeader());
  }
  return pager;
}

util::StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return util::Status::IoError("cannot open page file: " + path);
  }
  char header[kHeaderBytesWithCrc];
  if (std::fread(header, 1, kHeaderBytesWithCrc, file) !=
      kHeaderBytesWithCrc) {
    std::fclose(file);
    return util::Status::Corruption("short page-file header");
  }
  if (DecodeU32(header) != kMagic) {
    std::fclose(file);
    return util::Status::Corruption("bad page-file magic");
  }
  if (DecodeU32(header + kHeaderBytes) !=
      util::Crc32c(header, kHeaderBytes)) {
    std::fclose(file);
    return util::Status::Corruption("page-file header checksum mismatch");
  }
  if (DecodeU32(header + 4) != kVersion) {
    std::fclose(file);
    return util::Status::Corruption("unsupported page-file version");
  }
  const uint32_t page_size = DecodeU32(header + 8);
  const uint32_t num_pages = DecodeU32(header + 12);
  const PageId free_head = DecodeU32(header + 16);
  if (page_size < kMinPageSize || num_pages == 0) {
    std::fclose(file);
    return util::Status::Corruption("implausible page-file header");
  }
  return std::unique_ptr<Pager>(
      new Pager(file, page_size, num_pages, free_head));
}

util::Status Pager::WriteHeader() {
  char header[kHeaderBytesWithCrc];
  EncodeU32(header, kMagic);
  EncodeU32(header + 4, kVersion);
  EncodeU32(header + 8, page_size_);
  EncodeU32(header + 12, num_pages_);
  EncodeU32(header + 16, free_head_);
  EncodeU32(header + kHeaderBytes, util::Crc32c(header, kHeaderBytes));
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderBytesWithCrc, file_) !=
          kHeaderBytesWithCrc) {
    return util::Status::IoError("header write failed");
  }
  return util::Status::Ok();
}

util::Status Pager::ReadPage(PageId id, char* buf) {
  util::MutexLock lock(&mu_);
  return ReadPageLocked(id, buf);
}

util::Status Pager::WritePage(PageId id, const char* buf) {
  util::MutexLock lock(&mu_);
  return WritePageLocked(id, buf);
}

util::Status Pager::ReadPageLocked(PageId id, char* buf) {
  if (id == 0 || id >= num_pages_) {
    return util::Status::OutOfRange("page id out of range");
  }
  const IoClock::time_point io_start = IoClock::now();
  const auto stride = static_cast<long>(PhysicalPageSize());
  const long offset = static_cast<long>(id) * stride;
  if (std::fseek(file_, offset, SEEK_SET) != 0 ||
      std::fread(io_buffer_.data(), 1, PhysicalPageSize(), file_) !=
          PhysicalPageSize()) {
    return util::Status::IoError("page read failed");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, io_buffer_.data() + page_size_,
              sizeof(stored_crc));
  const uint32_t actual_crc = util::Crc32c(io_buffer_.data(), page_size_);
  if (stored_crc != actual_crc) {
    return util::Status::Corruption("page " + std::to_string(id) +
                                    " checksum mismatch");
  }
  std::memcpy(buf, io_buffer_.data(), page_size_);
  ++stats_.page_reads;
  stats_.read_micros += MicrosSince(io_start);
  return util::Status::Ok();
}

util::Status Pager::WritePageLocked(PageId id, const char* buf) {
  if (id == 0 || id >= num_pages_) {
    return util::Status::OutOfRange("page id out of range");
  }
  const IoClock::time_point io_start = IoClock::now();
  const auto stride = static_cast<long>(PhysicalPageSize());
  const long offset = static_cast<long>(id) * stride;
  std::memcpy(io_buffer_.data(), buf, page_size_);
  const uint32_t crc = util::Crc32c(buf, page_size_);
  std::memcpy(io_buffer_.data() + page_size_, &crc, sizeof(crc));
  if (std::fseek(file_, offset, SEEK_SET) != 0 ||
      std::fwrite(io_buffer_.data(), 1, PhysicalPageSize(), file_) !=
          PhysicalPageSize()) {
    return util::Status::IoError("page write failed");
  }
  ++stats_.page_writes;
  stats_.write_micros += MicrosSince(io_start);
  return util::Status::Ok();
}

util::StatusOr<PageId> Pager::AllocatePage() {
  util::MutexLock lock(&mu_);
  if (free_head_ != kInvalidPage) {
    const PageId id = free_head_;
    // The free list chains through the first 4 bytes of each free page.
    std::vector<char> buf(page_size_);
    CAPEFP_RETURN_IF_ERROR(ReadPageLocked(id, buf.data()));
    free_head_ = DecodeU32(buf.data());
    return id;
  }
  const PageId id = num_pages_;
  ++num_pages_;
  // Extend the file so the new page is addressable.
  std::vector<char> zeros(page_size_, 0);
  util::Status status = WritePageLocked(id, zeros.data());
  if (!status.ok()) {
    --num_pages_;
    return status;
  }
  return id;
}

util::Status Pager::FreePage(PageId id) {
  util::MutexLock lock(&mu_);
  if (id == 0 || id >= num_pages_) {
    return util::Status::OutOfRange("page id out of range");
  }
  std::vector<char> buf(page_size_, 0);
  EncodeU32(buf.data(), free_head_);
  CAPEFP_RETURN_IF_ERROR(WritePageLocked(id, buf.data()));
  free_head_ = id;
  return util::Status::Ok();
}

util::StatusOr<std::vector<PageId>> Pager::FreeListPages() {
  util::MutexLock lock(&mu_);
  std::vector<PageId> pages;
  std::vector<char> buf(page_size_);
  PageId id = free_head_;
  while (id != kInvalidPage) {
    if (id == 0 || id >= num_pages_) {
      return util::Status::Corruption("free list links to page " +
                                      std::to_string(id) +
                                      " outside the file");
    }
    if (pages.size() >= num_pages_) {
      return util::Status::Corruption("free list cycle detected");
    }
    pages.push_back(id);
    CAPEFP_RETURN_IF_ERROR(ReadPageLocked(id, buf.data()));
    id = DecodeU32(buf.data());
  }
  return pages;
}

void Pager::RegisterMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) const {
  registry->AddCallbackCounter(prefix + ".page_reads",
                               [this] { return stats().page_reads; });
  registry->AddCallbackCounter(prefix + ".page_writes",
                               [this] { return stats().page_writes; });
  registry->AddCallbackCounter(prefix + ".read_micros",
                               [this] { return stats().read_micros; });
  registry->AddCallbackCounter(prefix + ".write_micros",
                               [this] { return stats().write_micros; });
  registry->AddCallbackGauge(prefix + ".file_pages", [this] {
    return static_cast<double>(num_pages());
  });
}

util::Status Pager::Sync() {
  util::MutexLock lock(&mu_);
  CAPEFP_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) {
    return util::Status::IoError("fflush failed");
  }
  return util::Status::Ok();
}

}  // namespace capefp::storage
