// LRU buffer pool over a Pager.
//
// Caches a fixed number of page frames; a cache miss ("page fault") costs a
// physical read and possibly a dirty write-back. The paper reports
// expanded-node counts because they are hardware-independent; the buffer
// pool's fault counters give the matching I/O picture for the CCAM store.
//
// Pages are pinned through RAII PageHandles. Pinned frames are never
// evicted; acquiring more distinct pages than the pool capacity while all
// are pinned is an error.
//
// Thread-safe for concurrent readers: a mutex guards the page table, LRU
// list, pin ledger, and counters, so a single pool (and its pager) can be
// shared by parallel query workers. PageHandle::data() is deliberately
// lock-free — the frame array never reallocates and a pinned frame's bytes
// cannot be evicted or overwritten, so the pin taken under the lock in
// Acquire() is the synchronization point. Writers (mutable_data) must not
// run concurrently with FlushAll on the same page; the build path that
// mutates pages is single-threaded.
//
// The guarded members below are compiler-checked under
// CAPEFP_THREAD_SAFETY, and mu_ is declared CAPEFP_ACQUIRED_BEFORE the
// pager's mutex — the one cross-component lock order in the repo
// (Acquire() faults pages while holding the pool lock; nothing in the
// pager calls back into the pool). The pin-protected data() path is the
// single sanctioned CAPEFP_NO_THREAD_SAFETY_ANALYSIS exception.
#ifndef CAPEFP_STORAGE_BUFFER_POOL_H_
#define CAPEFP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/pager.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace capefp::obs {
class MetricsRegistry;
}  // namespace capefp::obs

namespace capefp::storage {

class BufferPool;

// RAII pin on a cached page frame. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  // Read-only view of the page contents.
  const char* data() const;

  // Mutable view; marks the frame dirty (written back on eviction or
  // FlushAll).
  char* mutable_data();

  // Releases the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id);

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPage;
};

// Cache statistics. A "fault" is a miss that required a physical read.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t faults = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  uint64_t lookups() const { return hits + faults; }
  // Fraction of page acquisitions served from the pool; 0.0 before any
  // lookup (never NaN).
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class BufferPool {
 public:
  // `pager` must outlive the pool. `capacity_pages` >= 1.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins the page, reading it from disk on a miss.
  util::StatusOr<PageHandle> Acquire(PageId id) CAPEFP_EXCLUDES(mu_);

  // Allocates a fresh page from the pager and pins it zero-filled and
  // dirty (no physical read).
  util::StatusOr<PageHandle> AllocateAndAcquire() CAPEFP_EXCLUDES(mu_);

  // Writes back all dirty frames (pinned or not) and syncs the pager.
  util::Status FlushAll() CAPEFP_EXCLUDES(mu_);

  // Drops `id` from the cache without write-back and frees it in the pager.
  // The page must not be pinned.
  util::Status FreePage(PageId id) CAPEFP_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  uint32_t page_size() const { return pager_->page_size(); }
  Pager* pager() const { return pager_; }

  BufferPoolStats stats() const CAPEFP_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() CAPEFP_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    stats_ = BufferPoolStats();
  }

  // Publishes the pool counters into `registry` under `prefix` as
  // snapshot-time callbacks (see obs::MetricsRegistry). The pool must
  // outlive the registry's snapshots.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  // Deep audit of the frame ledger: every frame is either mapped (its page
  // id resolves back to it through the page table) or on the free list;
  // pin counts are non-negative; a frame sits in the LRU list iff it is
  // mapped and unpinned, and its stored LRU position points back at it.
  // Returns OK or Internal naming the inconsistent frame. O(capacity).
  util::Status ValidateInvariants() const CAPEFP_EXCLUDES(mu_);

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPage;
    int pin_count = 0;
    bool dirty = false;
    std::vector<char> data;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame_index, bool dirty) CAPEFP_EXCLUDES(mu_);
  // Finds a frame to (re)use, evicting an unpinned LRU victim if needed.
  util::StatusOr<size_t> GrabFrame() CAPEFP_REQUIRES(mu_);
  util::Status ValidateInvariantsLocked() const CAPEFP_REQUIRES(mu_);

  // Guards everything below except the page *bytes* of pinned frames
  // (see the class comment). Always acquired before the pager's mutex:
  // Acquire()/GrabFrame() fault and write back pages under mu_, so the
  // compiler holds every future path to pool → pager under
  // -Wthread-safety-beta.
  mutable util::Mutex mu_ CAPEFP_ACQUIRED_BEFORE(pager_->mu_);
  Pager* pager_;
  size_t capacity_;
  std::vector<Frame> frames_ CAPEFP_GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> page_to_frame_ CAPEFP_GUARDED_BY(mu_);
  // Unpinned frames, least recently used first.
  std::list<size_t> lru_ CAPEFP_GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ CAPEFP_GUARDED_BY(mu_);
  BufferPoolStats stats_ CAPEFP_GUARDED_BY(mu_);
};

}  // namespace capefp::storage

#endif  // CAPEFP_STORAGE_BUFFER_POOL_H_
